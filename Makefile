GO ?= go

.PHONY: check vet build test race bench clean

## check: the full gate — vet, build, and the race-enabled test suite.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: machine-readable perf/accuracy snapshot (BENCH_<date>.json).
bench:
	$(GO) run ./cmd/mlpa bench -size tiny

clean:
	rm -f BENCH_*.json
