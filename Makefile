GO ?= go

.PHONY: check vet lint build test race bench clean

## check: the full gate — vet, lint, build, and the race-enabled test suite.
check: vet lint build race

vet:
	$(GO) vet ./...

## lint: repo-specific hygiene rules (see cmd/mlpalint).
lint:
	$(GO) run ./cmd/mlpalint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: machine-readable perf/accuracy snapshot (BENCH_<date>.json).
bench:
	$(GO) run ./cmd/mlpa bench -size tiny

clean:
	rm -f BENCH_*.json
