GO ?= go

.PHONY: check vet lint build test race fuzz bench clean

## check: the full gate — vet, lint, build, the race-enabled test
## suite, and a short fuzz pass over every fuzz target.
check: vet lint build race fuzz

vet:
	$(GO) vet ./...

## lint: repo-specific hygiene rules (see cmd/mlpalint).
lint:
	$(GO) run ./cmd/mlpalint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz: short fuzzing pass — 20s per target ('go test -fuzz' takes
## exactly one matching target per invocation, hence one run each).
FUZZTIME ?= 20s
fuzz:
	$(GO) test -fuzz=FuzzAssembleRoundTrip -fuzztime=$(FUZZTIME) ./internal/prog/
	$(GO) test -fuzz=FuzzVerify -fuzztime=$(FUZZTIME) ./internal/staticanalysis/
	$(GO) test -fuzz=FuzzRunVsStep -fuzztime=$(FUZZTIME) ./internal/emu/
	$(GO) test -fuzz=FuzzLiveness -fuzztime=$(FUZZTIME) ./internal/staticanalysis/dataflow/
	$(GO) test -fuzz=FuzzServeRequest -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -fuzz=FuzzCkptRoundTrip -fuzztime=$(FUZZTIME) ./internal/ckpt/

## bench: machine-readable perf/accuracy snapshot (BENCH_<date>.json).
bench:
	$(GO) run ./cmd/mlpa bench -size tiny

clean:
	rm -f BENCH_*.json
