package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeTree materializes a fake repo under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func keys(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = fmt.Sprintf("%s:%d:%s", filepath.ToSlash(f.File), f.Line, f.Rule)
	}
	return out
}

func TestLintFlagsDeterminismViolations(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/emu/a.go": `package emu

import (
	"math/rand"
	"time"
)

func bad() int64 {
	t := time.Now()
	return t.Unix() + int64(rand.Intn(10))
}

func good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
`,
		// The same constructs outside a deterministic package pass.
		"cmd/tool/c.go": `package main

import "time"

func main() { _ = time.Now() }
`,
	})
	fs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"internal/emu/a.go:9:time-now",
		"internal/emu/a.go:10:unseeded-rand",
	}
	got := keys(fs)
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLintPanicRule(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/foo/f.go": `package foo

func Bad() {
	panic("boom")
}

// MustGood is exempt by the Must* convention.
func MustGood() {
	panic("fine")
}
`,
		// Test files are never linted.
		"internal/foo/f_test.go": `package foo

func helper() { panic("test-only") }
`,
		// panic outside internal/ (a command) passes.
		"cmd/tool/main.go": `package main

func main() { panic("cli") }
`,
	})
	fs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	got := keys(fs)
	if len(got) != 1 || got[0] != "internal/foo/f.go:4:panic" {
		t.Errorf("findings = %v, want exactly internal/foo/f.go:4:panic", got)
	}
}

func TestLintAllowDirective(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/emu/a.go": `package emu

import "time"

func sameLine() int64 {
	return time.Now().Unix() //mlpalint:allow time-now (metrics only)
}

func lineAbove() int64 {
	//mlpalint:allow time-now
	return time.Now().Unix()
}

func wrongRule() int64 {
	return time.Now().Unix() //mlpalint:allow panic
}
`,
	})
	fs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	got := keys(fs)
	if len(got) != 1 || got[0] != "internal/emu/a.go:15:time-now" {
		t.Errorf("findings = %v, want only the wrong-rule site at line 15", got)
	}
}

// TestLintHTTPListenRule: direct listener setup is flagged everywhere
// except the sanctioned listener packages — internal/obs (obs.Serve)
// and internal/serve (the sampling-service daemon).
func TestLintHTTPListenRule(t *testing.T) {
	root := writeTree(t, map[string]string{
		"cmd/tool/main.go": `package main

import "net/http"

func main() {
	_ = http.ListenAndServe(":8080", nil)
}
`,
		"internal/foo/f.go": `package foo

import "net"

func Bad() error {
	_, err := net.Listen("tcp", ":0")
	return err
}
`,
		// internal/obs is a sanctioned home of listener setup.
		"internal/obs/server.go": `package obs

import "net"

func Serve(addr string) error {
	_, err := net.Listen("tcp", addr)
	return err
}
`,
		// internal/serve is the other sanctioned listener package: the
		// service daemon binds its own socket in Start.
		"internal/serve/serve.go": `package serve

import (
	"net"
	"net/http"
)

func Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return http.Serve(ln, nil)
}
`,
		// An allow directive suppresses the rule like any other.
		"cmd/other/main.go": `package main

import "net"

func main() {
	net.Listen("tcp", ":0") //mlpalint:allow http-listen (test fixture)
}
`,
		// Unrelated Listen methods on other receivers pass.
		"cmd/quiet/main.go": `package main

type mux struct{}

func (mux) Listen() {}

func main() { mux{}.Listen() }
`,
	})
	fs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"cmd/tool/main.go:6:http-listen",
		"internal/foo/f.go:6:http-listen",
	}
	got := keys(fs)
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestLintRepoClean: the repository itself must pass its own linter —
// this is the same gate `make check` runs.
func TestLintRepoClean(t *testing.T) {
	fs, err := lint("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("repo has lint findings: %v", keys(fs))
	}
}

// TestLintMapRangeOrderRule: ranging over a map while writing output is
// flagged; order-insensitive map loops and slice loops pass.
func TestLintMapRangeOrderRule(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // expected finding keys within internal/foo/f.go
	}{
		{
			name: "map_var_printf",
			src: `package foo

import "fmt"

func Bad(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`,
			want: []string{"internal/foo/f.go:6:map-range-order"},
		},
		{
			name: "map_literal_emit",
			src: `package foo

type journal struct{}

func (journal) Emit(string, any) {}

func Bad(j journal) {
	for k, v := range map[string]int{"a": 1} {
		j.Emit(k, v)
	}
}
`,
			want: []string{"internal/foo/f.go:8:map-range-order"},
		},
		{
			name: "make_map_writestring",
			src: `package foo

import "strings"

func Bad() string {
	var sb strings.Builder
	m := make(map[int]string)
	for _, v := range m {
		sb.WriteString(v)
	}
	return sb.String()
}
`,
			want: []string{"internal/foo/f.go:8:map-range-order"},
		},
		{
			name: "map_decl_addrow",
			src: `package foo

type table struct{}

func (table) AddRow(...string) {}

func Bad(t table) {
	var m map[string]string
	for k := range m {
		t.AddRow(k)
	}
}
`,
			want: []string{"internal/foo/f.go:9:map-range-order"},
		},
		{
			name: "accumulation_passes",
			src: `package foo

func Good(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
`,
		},
		{
			name: "slice_range_passes",
			src: `package foo

import "fmt"

func Good(s []int) {
	for _, v := range s {
		fmt.Println(v)
	}
}
`,
		},
		{
			name: "sorted_keys_passes",
			src: `package foo

import (
	"fmt"
	"sort"
)

func Good(m map[string]int) {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		fmt.Println(k, m[k])
	}
}
`,
		},
		{
			name: "allow_directive",
			src: `package foo

import "fmt"

func Exempt(m map[string]int) {
	//mlpalint:allow map-range-order (order-insensitive debug dump)
	for k := range m {
		fmt.Println(k)
	}
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := writeTree(t, map[string]string{"internal/foo/f.go": tc.src})
			fs, err := lint(root)
			if err != nil {
				t.Fatal(err)
			}
			got := keys(fs)
			if len(got) != len(tc.want) {
				t.Fatalf("findings = %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Errorf("finding %d = %s, want %s", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestLintSubdirScoping: pointing the linter at a package subtree must
// apply the same module-relative rule scoping as linting the module
// root — a go.mod above the lint root anchors the package paths.
func TestLintSubdirScoping(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module fixture\n\ngo 1.22\n",
		"internal/emu/a.go": `package emu

import "time"

func bad() int64 { return time.Now().Unix() }
`,
		"cmd/tool/main.go": `package main

import "net/http"

func main() { _ = http.ListenAndServe(":8080", nil) }
`,
	})
	for _, sub := range []string{".", "internal", "internal/emu"} {
		fs, err := lint(filepath.Join(root, sub))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, k := range keys(fs) {
			if k == "internal/emu/a.go:5:time-now" {
				found = true
			}
		}
		if !found {
			t.Errorf("lint %q: time-now finding missing: %v", sub, keys(fs))
		}
	}
	// cmd/ is scoped identically: the http-listen finding fires whether
	// the whole tree or just cmd/ is linted.
	for _, sub := range []string{".", "cmd"} {
		fs, err := lint(filepath.Join(root, sub))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, k := range keys(fs) {
			if k == "cmd/tool/main.go:5:http-listen" {
				found = true
			}
		}
		if !found {
			t.Errorf("lint %q: http-listen finding missing: %v", sub, keys(fs))
		}
	}
}

// TestLintCoversTraceConstruction pins the rule scoping for the
// superblock trace engine: trace construction lives in internal/emu,
// a deterministic package, so wall-clock reads and global rand in
// stitching heuristics (e.g. a randomized trace-selection order or a
// time-based construction budget) must be flagged, while the
// seeded/pure constructs the real trace.go uses pass clean.
func TestLintCoversTraceConstruction(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/emu/trace.go": `package emu

import (
	"math/rand"
	"time"
)

// badBudget would make trace construction wall-clock dependent.
func badBudget(deadline time.Duration) time.Time {
	return time.Now().Add(deadline)
}

// badOrder would make the stitched trace set depend on global rand.
func badOrder(leaders []int64) int64 {
	return leaders[rand.Intn(len(leaders))]
}

// goodOrder is the acceptable form: seeded, a pure function of its
// inputs.
func goodOrder(leaders []int64, seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	return leaders[rng.Intn(len(leaders))]
}

// goodBudget is how the real engine bounds construction: by code
// size, not by time.
func goodBudget(codeLen int) int {
	return 64 * codeLen
}
`,
	})
	fs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"internal/emu/trace.go:10:time-now",
		"internal/emu/trace.go:15:unseeded-rand",
	}
	got := keys(fs)
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestLintCoversCheckpointPackage pins internal/ckpt into the
// deterministic scope: checkpoint bytes are content-hashed and used as
// cache keys, so a wall-clock header stamp or an unseeded-rand salt in
// the encoder would silently fork set identity. Both must be flagged,
// while the pure encoder constructs pass, and panic stays banned like
// in any library package.
func TestLintCoversCheckpointPackage(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/ckpt/wire.go": `package ckpt

import (
	"math/rand"
	"time"
)

// badStamp would make two encodings of the same state differ.
func badStamp() int64 {
	return time.Now().UnixNano()
}

// badSalt would randomize the wire bytes.
func badSalt() uint64 {
	return rand.Uint64()
}

// goodEncode is the acceptable form: a pure function of the state.
func goodEncode(words []uint64) int {
	n := 0
	for _, w := range words {
		if w != 0 {
			n++
		}
	}
	return n
}

func badReject(n int) {
	if n < 0 {
		panic("negative")
	}
}
`,
	})
	fs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"internal/ckpt/wire.go:10:time-now",
		"internal/ckpt/wire.go:15:unseeded-rand",
		"internal/ckpt/wire.go:31:panic",
	}
	got := keys(fs)
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d = %s, want %s", i, got[i], want[i])
		}
	}
}
