// Command mlpalint enforces repo-specific hygiene rules on the Go
// sources (not the guest programs — those are checked by
// internal/staticanalysis):
//
//   - time-now: no time.Now in deterministic simulation packages
//     (internal/emu, internal/cpu, internal/kmeans, internal/ckpt);
//     wall-clock reads there would make simulated results (or
//     checkpoint bytes, which are content-hashed) time-dependent.
//   - unseeded-rand: no package-level math/rand calls in the same
//     packages; randomness must flow through an explicitly seeded
//     *rand.Rand so runs stay reproducible.
//   - panic: no panic in library packages (under internal/) outside
//     tests; functions named Must* are exempt by convention.
//   - http-listen: no direct listener setup (http.ListenAndServe,
//     http.Serve, net.Listen, ...) outside the sanctioned listener
//     packages internal/obs and internal/serve; telemetry must go
//     through obs.Serve and service endpoints through serve.Server so
//     every endpoint gets the same handler, lifecycle and shutdown
//     behaviour.
//   - map-range-order: no `range` over a map whose body writes output
//     (fmt printing, journal Emit, Write*) — map iteration order is
//     random, so such loops make journals and reports
//     non-reproducible. Iterate a sorted key slice instead.
//
// Rule scoping is by package directory relative to the module root
// (located by walking up from the lint root to the nearest go.mod), so
// linting the repository root, `internal/`, or a single package
// subtree applies exactly the same rules to every file.
//
// A site that is legitimately exceptional carries a
// `//mlpalint:allow <rule>` comment on the same line or the line
// above. Findings are printed as path:line: rule: message and make the
// command exit nonzero.
//
//	mlpalint [dir]
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := lint(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlpalint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s:%d: %s: %s\n", f.File, f.Line, f.Rule, f.Msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mlpalint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// deterministicPkgs are the packages whose results must be a pure
// function of their inputs and seeds.
var deterministicPkgs = map[string]bool{
	"internal/emu":    true,
	"internal/cpu":    true,
	"internal/kmeans": true,
	// Checkpoint encode/decode must be bit-stable: the on-disk bytes
	// are content-hashed and reused as cache keys, so a wall-clock or
	// unseeded-rand dependence would silently break set identity.
	"internal/ckpt": true,
}

// rule is one lint rule: its name (as used by `//mlpalint:allow`) and
// the package-directory scope it applies to. The check logic itself
// lives in lintFile; the table keeps name->scope in one place so every
// rule is scoped the same way.
type rule struct {
	name      string
	appliesTo func(dir string) bool
}

func isDeterministicPkg(dir string) bool { return deterministicPkgs[dir] }

func isLibraryPkg(dir string) bool {
	return dir == "internal" || strings.HasPrefix(dir, "internal/")
}

// listenerPkgs are the packages sanctioned to bind listeners:
// internal/obs owns the telemetry listener (obs.Serve) and
// internal/serve owns the sampling-service daemon listener; everywhere
// else the http-listen rule applies so ad-hoc endpoints can't bypass
// their shared handler, lifecycle and shutdown behaviour.
var listenerPkgs = map[string]bool{
	"internal/obs":   true,
	"internal/serve": true,
}

func outsideListenerPkgs(dir string) bool { return !listenerPkgs[dir] }

func everywhere(string) bool { return true }

// rules is the rule table. Scopes are module-relative package
// directories, so cmd/ and internal/ are linted uniformly no matter
// which subtree the command is pointed at.
var rules = []rule{
	{"time-now", isDeterministicPkg},
	{"unseeded-rand", isDeterministicPkg},
	{"panic", isLibraryPkg},
	{"http-listen", outsideListenerPkgs},
	{"map-range-order", everywhere},
}

// unseededRandFuncs are the math/rand package-level functions that
// draw from the implicitly-seeded global source.
var unseededRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
}

// httpListenFuncs are the net/http package-level entry points that
// bind a listener directly.
var httpListenFuncs = map[string]bool{
	"ListenAndServe": true, "ListenAndServeTLS": true, "Serve": true, "ServeTLS": true,
}

// netListenFuncs are the net package-level listener constructors.
var netListenFuncs = map[string]bool{
	"Listen": true, "ListenTCP": true, "ListenUnix": true, "ListenPacket": true,
}

// orderedWriteFuncs are method names whose call inside a map-range body
// marks the loop as emitting ordered output: fmt-style printing,
// journal emission and stream writes.
var orderedWriteFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Emit": true, "Write": true, "WriteString": true,
	"WriteByte": true, "WriteRune": true, "AddRow": true,
}

// Finding is one rule violation.
type Finding struct {
	File string // path relative to the module root (or lint root without a go.mod)
	Line int
	Rule string
	Msg  string
}

// moduleRoot walks up from root looking for a go.mod, so rule scoping
// is always computed against module-relative package directories no
// matter which subtree is linted. Without a go.mod (test fixtures,
// stray trees) the lint root itself anchors the paths.
func moduleRoot(root string) (string, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return "", err
	}
	for dir := abs; ; {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return abs, nil
		}
		dir = parent
	}
}

// lint walks root and applies every rule to the non-test Go sources,
// returning findings sorted by file and line.
func lint(root string) ([]Finding, error) {
	modRoot, err := moduleRoot(root)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(modRoot, abs)
		if err != nil {
			return err
		}
		fs, err := lintFile(path, filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		findings = append(findings, fs...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		return findings[i].Line < findings[j].Line
	})
	return findings, nil
}

// lintFile parses one source file and applies the rules the table
// activates for its module-relative package directory.
func lintFile(path, rel string) ([]Finding, error) {
	dir := filepath.ToSlash(filepath.Dir(rel))
	active := map[string]bool{}
	anyActive := false
	for _, r := range rules {
		on := r.appliesTo(dir)
		active[r.name] = on
		anyActive = anyActive || on
	}
	if !anyActive {
		return nil, nil
	}

	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	allowed := allowDirectives(fset, file)
	randName := importName(file, "math/rand")
	httpName := importName(file, "net/http")
	netName := importName(file, "net")

	var findings []Finding
	report := func(pos token.Pos, rule, msg string) {
		if !active[rule] {
			return
		}
		line := fset.Position(pos).Line
		if allowed[rule][line] {
			return
		}
		findings = append(findings, Finding{File: rel, Line: line, Rule: rule, Msg: msg})
	}

	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if ok && fn.Body == nil {
			continue
		}
		mustFunc := ok && strings.HasPrefix(fn.Name.Name, "Must")
		ast.Inspect(decl, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if rangeSubjectIsMap(n) && bodyWritesOutput(n.Body) {
					report(n.Pos(), "map-range-order",
						"range over a map with output writes in the body; map order is random — iterate sorted keys")
				}
			case *ast.CallExpr:
				switch fun := n.Fun.(type) {
				case *ast.Ident:
					if fun.Name == "panic" && !mustFunc {
						report(n.Pos(), "panic",
							"panic in a library package; return an error (Must* wrappers are exempt)")
					}
				case *ast.SelectorExpr:
					pkg, ok := fun.X.(*ast.Ident)
					if !ok || pkg.Obj != nil { // shadowed by a local identifier
						return true
					}
					if pkg.Name == "time" && fun.Sel.Name == "Now" {
						report(n.Pos(), "time-now",
							"wall-clock read in a deterministic simulation package")
					}
					if randName != "" && pkg.Name == randName && unseededRandFuncs[fun.Sel.Name] {
						report(n.Pos(), "unseeded-rand",
							fmt.Sprintf("global rand.%s in a deterministic package; use a seeded *rand.Rand", fun.Sel.Name))
					}
					if httpName != "" && pkg.Name == httpName && httpListenFuncs[fun.Sel.Name] {
						report(n.Pos(), "http-listen",
							fmt.Sprintf("direct http.%s outside the sanctioned listener packages (internal/obs, internal/serve); use obs.Serve or serve.Server", fun.Sel.Name))
					}
					if netName != "" && pkg.Name == netName && netListenFuncs[fun.Sel.Name] {
						report(n.Pos(), "http-listen",
							fmt.Sprintf("direct net.%s outside the sanctioned listener packages (internal/obs, internal/serve); use obs.Serve or serve.Server", fun.Sel.Name))
					}
				}
			}
			return true
		})
	}
	return findings, nil
}

// rangeSubjectIsMap reports whether the range statement iterates a
// value the single-file AST can prove is a map: a map composite
// literal, or an identifier declared with a map type, a map literal or
// make(map[...]...). Calls and cross-file identifiers are not
// resolvable without type information and pass.
func rangeSubjectIsMap(rs *ast.RangeStmt) bool {
	switch x := ast.Unparen(rs.X).(type) {
	case *ast.CompositeLit:
		_, ok := x.Type.(*ast.MapType)
		return ok
	case *ast.Ident:
		return identIsMap(x)
	}
	return false
}

// identIsMap inspects the identifier's declaration site.
func identIsMap(id *ast.Ident) bool {
	if id.Obj == nil {
		return false
	}
	switch decl := id.Obj.Decl.(type) {
	case *ast.ValueSpec:
		if decl.Type != nil {
			_, ok := decl.Type.(*ast.MapType)
			return ok
		}
		for i, name := range decl.Names {
			if name.Name == id.Name && i < len(decl.Values) {
				return exprIsMap(decl.Values[i])
			}
		}
	case *ast.AssignStmt:
		if len(decl.Lhs) != len(decl.Rhs) {
			return false // multi-value unpacking: unresolvable
		}
		for i, lhs := range decl.Lhs {
			if l, ok := lhs.(*ast.Ident); ok && l.Name == id.Name {
				return exprIsMap(decl.Rhs[i])
			}
		}
	case *ast.Field:
		_, ok := decl.Type.(*ast.MapType)
		return ok
	}
	return false
}

// exprIsMap reports whether an initializer expression evidently builds
// a map.
func exprIsMap(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		_, ok := v.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if fn, ok := v.Fun.(*ast.Ident); ok && fn.Name == "make" && len(v.Args) > 0 {
			_, ok := v.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}

// bodyWritesOutput reports whether the loop body contains a call that
// emits ordered output (printing, journal emission, stream writes).
func bodyWritesOutput(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && orderedWriteFuncs[sel.Sel.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// allowDirectives collects `//mlpalint:allow <rule>` comments; each
// suppresses its rule on the comment's own line and the next line.
func allowDirectives(fset *token.FileSet, file *ast.File) map[string]map[int]bool {
	allowed := map[string]map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "mlpalint:allow ")
			if !ok {
				continue
			}
			// The first word is the rule; anything after is a free-form
			// reason for the reader.
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			rule := fields[0]
			if allowed[rule] == nil {
				allowed[rule] = map[int]bool{}
			}
			line := fset.Position(c.Pos()).Line
			allowed[rule][line] = true
			allowed[rule][line+1] = true
		}
	}
	return allowed
}

// importName returns the local name of an imported package path, or ""
// when the file does not import it.
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return path[strings.LastIndex(path, "/")+1:]
	}
	return ""
}
