// Command mlpalint enforces repo-specific hygiene rules on the Go
// sources (not the guest programs — those are checked by
// internal/staticanalysis):
//
//   - time-now: no time.Now in deterministic simulation packages
//     (internal/emu, internal/cpu, internal/kmeans); wall-clock reads
//     there would make simulated results time-dependent.
//   - unseeded-rand: no package-level math/rand calls in the same
//     packages; randomness must flow through an explicitly seeded
//     *rand.Rand so runs stay reproducible.
//   - panic: no panic in library packages (under internal/) outside
//     tests; functions named Must* are exempt by convention.
//   - http-listen: no direct listener setup (http.ListenAndServe,
//     http.Serve, net.Listen, ...) outside internal/obs; live
//     telemetry must go through obs.Serve so every endpoint gets the
//     same handler, lifecycle and shutdown behaviour.
//
// A site that is legitimately exceptional carries a
// `//mlpalint:allow <rule>` comment on the same line or the line
// above. Findings are printed as path:line: rule: message and make the
// command exit nonzero.
//
//	mlpalint [dir]
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := lint(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlpalint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s:%d: %s: %s\n", f.File, f.Line, f.Rule, f.Msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mlpalint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// deterministicPkgs are the packages whose results must be a pure
// function of their inputs and seeds.
var deterministicPkgs = map[string]bool{
	"internal/emu":    true,
	"internal/cpu":    true,
	"internal/kmeans": true,
}

// unseededRandFuncs are the math/rand package-level functions that
// draw from the implicitly-seeded global source.
var unseededRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
}

// httpListenFuncs are the net/http package-level entry points that
// bind a listener directly.
var httpListenFuncs = map[string]bool{
	"ListenAndServe": true, "ListenAndServeTLS": true, "Serve": true, "ServeTLS": true,
}

// netListenFuncs are the net package-level listener constructors.
var netListenFuncs = map[string]bool{
	"Listen": true, "ListenTCP": true, "ListenUnix": true, "ListenPacket": true,
}

// Finding is one rule violation.
type Finding struct {
	File string // path relative to the lint root
	Line int
	Rule string
	Msg  string
}

// lint walks root and applies every rule to the non-test Go sources,
// returning findings sorted by file and line.
func lint(root string) ([]Finding, error) {
	var findings []Finding
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		fs, err := lintFile(path, rel)
		if err != nil {
			return err
		}
		findings = append(findings, fs...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		return findings[i].Line < findings[j].Line
	})
	return findings, nil
}

// lintFile parses one source file and applies the rules that its
// package location activates.
func lintFile(path, rel string) ([]Finding, error) {
	dir := filepath.ToSlash(filepath.Dir(rel))
	deterministic := deterministicPkgs[dir]
	library := dir == "internal" || strings.HasPrefix(dir, "internal/")
	// internal/obs owns the repository's one sanctioned listener setup
	// (obs.Serve); everywhere else the http-listen rule applies.
	listenChecked := dir != "internal/obs"
	if !deterministic && !library && !listenChecked {
		return nil, nil
	}

	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	allowed := allowDirectives(fset, file)
	randName := importName(file, "math/rand")
	httpName := importName(file, "net/http")
	netName := importName(file, "net")

	var findings []Finding
	report := func(pos token.Pos, rule, msg string) {
		line := fset.Position(pos).Line
		if allowed[rule][line] {
			return
		}
		findings = append(findings, Finding{File: rel, Line: line, Rule: rule, Msg: msg})
	}

	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if ok && fn.Body == nil {
			continue
		}
		mustFunc := ok && strings.HasPrefix(fn.Name.Name, "Must")
		ast.Inspect(decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if library && fun.Name == "panic" && !mustFunc {
					report(call.Pos(), "panic",
						"panic in a library package; return an error (Must* wrappers are exempt)")
				}
			case *ast.SelectorExpr:
				pkg, ok := fun.X.(*ast.Ident)
				if !ok || pkg.Obj != nil { // shadowed by a local identifier
					return true
				}
				if deterministic && pkg.Name == "time" && fun.Sel.Name == "Now" {
					report(call.Pos(), "time-now",
						"wall-clock read in a deterministic simulation package")
				}
				if deterministic && pkg.Name == randName && unseededRandFuncs[fun.Sel.Name] {
					report(call.Pos(), "unseeded-rand",
						fmt.Sprintf("global rand.%s in a deterministic package; use a seeded *rand.Rand", fun.Sel.Name))
				}
				if listenChecked && httpName != "" && pkg.Name == httpName && httpListenFuncs[fun.Sel.Name] {
					report(call.Pos(), "http-listen",
						fmt.Sprintf("direct http.%s outside internal/obs; serve telemetry through obs.Serve", fun.Sel.Name))
				}
				if listenChecked && netName != "" && pkg.Name == netName && netListenFuncs[fun.Sel.Name] {
					report(call.Pos(), "http-listen",
						fmt.Sprintf("direct net.%s outside internal/obs; serve telemetry through obs.Serve", fun.Sel.Name))
				}
			}
			return true
		})
	}
	return findings, nil
}

// allowDirectives collects `//mlpalint:allow <rule>` comments; each
// suppresses its rule on the comment's own line and the next line.
func allowDirectives(fset *token.FileSet, file *ast.File) map[string]map[int]bool {
	allowed := map[string]map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "mlpalint:allow ")
			if !ok {
				continue
			}
			// The first word is the rule; anything after is a free-form
			// reason for the reader.
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			rule := fields[0]
			if allowed[rule] == nil {
				allowed[rule] = map[int]bool{}
			}
			line := fset.Position(c.Pos()).Line
			allowed[rule][line] = true
			allowed[rule][line+1] = true
		}
	}
	return allowed
}

// importName returns the local name of an imported package path, or ""
// when the file does not import it.
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return path[strings.LastIndex(path, "/")+1:]
	}
	return ""
}
