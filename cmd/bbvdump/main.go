// Command bbvdump runs the profiling stage on a suite benchmark and
// emits per-interval basic-block-vector data: CSV of the projected
// signatures (optionally reduced to principal components), or a binary
// trace file consumable by later pipeline stages.
//
//	bbvdump -bench lucas -granularity fine -pca 2 > lucas.csv
//	bbvdump -bench gcc -granularity coarse -o gcc.trc
//	bbvdump -in gcc.trc -pca 1
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"mlpa/internal/bbv"
	"mlpa/internal/bench"
	"mlpa/internal/coasts"
	"mlpa/internal/linalg"
	"mlpa/internal/obs"
	"mlpa/internal/phase"
	"mlpa/internal/staticanalysis"
	"mlpa/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bbvdump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		benchName   = flag.String("bench", "", "suite benchmark to profile")
		in          = flag.String("in", "", "read a previously saved trace instead of profiling")
		size        = flag.String("size", "small", "suite scale: tiny, small or ref")
		granularity = flag.String("granularity", "fine", "fine (fixed-length) or coarse (loop iterations)")
		dims        = flag.Int("dims", bbv.DefaultDims, "projected BBV dimensionality")
		seed        = flag.Int64("seed", 1, "projection seed")
		pca         = flag.Int("pca", 0, "emit only the first N principal components (0 = raw signature)")
		out         = flag.String("o", "", "write a binary trace file instead of CSV")
		verbose     = flag.Bool("v", false, "emit profiling-stage spans as JSONL on stderr")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		cf, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			cf.Close()
		}()
	}
	var rt *obs.Runtime
	if *verbose {
		// CSV goes to stdout, so the span stream stays on stderr.
		rt = obs.New(obs.NewJSONLSink(os.Stderr))
	}

	tr, err := obtainTrace(*benchName, *in, *size, *granularity, *dims, *seed, rt)
	if err != nil {
		return err
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Write(f, tr); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d intervals (%s) to %s\n", len(tr.Intervals), tr.Kind, *out)
		return nil
	}
	return writeCSV(tr, *pca)
}

func obtainTrace(benchName, in, size, granularity string, dims int, seed int64, rt *obs.Runtime) (*phase.Trace, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	}
	if benchName == "" {
		return nil, fmt.Errorf("need -bench or -in (suite: %v)", bench.Names())
	}
	spec, err := bench.ByName(benchName)
	if err != nil {
		return nil, err
	}
	var sz bench.Size
	switch size {
	case "tiny":
		sz = bench.SizeTiny
	case "small":
		sz = bench.SizeSmall
	case "ref":
		sz = bench.SizeRef
	default:
		return nil, fmt.Errorf("unknown size %q", size)
	}
	p, err := spec.Program(sz)
	if err != nil {
		return nil, err
	}
	// The coarse path preflights inside CollectBoundaries; the fine path
	// drives the emulator directly, so verify here before profiling.
	if err := staticanalysis.Preflight(p); err != nil {
		return nil, fmt.Errorf("preflight for %s: %w", p.Name, err)
	}
	proj, err := bbv.NewProjector(p.NumBlocks(), dims, seed)
	if err != nil {
		return nil, err
	}
	switch granularity {
	case "fine":
		return phase.CollectFixed(p, proj, bench.FineInterval(sz))
	case "coarse":
		cfg := coasts.Config{Dims: dims, Seed: seed, Obs: rt}
		b, err := coasts.CollectBoundaries(p, cfg)
		if err != nil {
			return nil, err
		}
		return coasts.Profile(p, b, cfg)
	}
	return nil, fmt.Errorf("unknown granularity %q", granularity)
}

func writeCSV(tr *phase.Trace, pcaDims int) error {
	cols := 0
	if len(tr.Intervals) > 0 {
		cols = len(tr.Intervals[0].Vector)
	}
	var projected [][]float64
	if pcaDims > 0 {
		p, err := linalg.FitPCA(tr.Vectors())
		if err != nil {
			return err
		}
		projected = make([][]float64, len(tr.Intervals))
		for i, iv := range tr.Intervals {
			projected[i] = p.Project(iv.Vector, pcaDims)
		}
		cols = len(projected[0])
	}

	fmt.Printf("# benchmark=%s kind=%s total=%d\n", tr.Benchmark, tr.Kind, tr.TotalInsts)
	fmt.Print("interval,start,end")
	for c := 0; c < cols; c++ {
		if pcaDims > 0 {
			fmt.Printf(",pc%d", c+1)
		} else {
			fmt.Printf(",d%d", c)
		}
	}
	fmt.Println()
	for i, iv := range tr.Intervals {
		fmt.Printf("%d,%d,%d", iv.Index, iv.Start, iv.End)
		row := iv.Vector
		if pcaDims > 0 {
			row = projected[i]
		}
		for _, x := range row {
			fmt.Printf(",%g", x)
		}
		fmt.Println()
	}
	return nil
}
