package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mlpa/internal/bbv"
	"mlpa/internal/trace"
)

func TestObtainTraceFine(t *testing.T) {
	tr, err := obtainTrace("gzip", "", "tiny", "fine", bbv.DefaultDims, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kind != "fixed" || len(tr.Intervals) < 10 {
		t.Errorf("trace kind=%v intervals=%d", tr.Kind, len(tr.Intervals))
	}
}

func TestObtainTraceCoarse(t *testing.T) {
	tr, err := obtainTrace("gzip", "", "tiny", "coarse", bbv.DefaultDims, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kind != "iteration" {
		t.Errorf("trace kind = %v", tr.Kind)
	}
}

func TestObtainTraceFromFile(t *testing.T) {
	tr, err := obtainTrace("swim", "", "tiny", "fine", 8, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.trc")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := obtainTrace("", path, "", "", 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Intervals) != len(tr.Intervals) {
		t.Errorf("loaded %d intervals, want %d", len(back.Intervals), len(tr.Intervals))
	}
}

func TestObtainTraceErrors(t *testing.T) {
	if _, err := obtainTrace("", "", "tiny", "fine", 15, 1, nil); err == nil {
		t.Error("no source accepted")
	}
	if _, err := obtainTrace("bogus", "", "tiny", "fine", 15, 1, nil); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := obtainTrace("gzip", "", "huge", "fine", 15, 1, nil); err == nil {
		t.Error("unknown size accepted")
	}
	if _, err := obtainTrace("gzip", "", "tiny", "diagonal", 15, 1, nil); err == nil {
		t.Error("unknown granularity accepted")
	}
}
