// Command simrun is the sim-outorder stand-in: it runs one suite
// benchmark (or an assembly file) under the functional emulator or the
// detailed out-of-order model and prints execution statistics.
//
//	simrun -bench gzip -size small -mode detailed -config A
//	simrun -file prog.s -mode functional
//	simrun -bench swim -mode warm          # cache/branch stats only (sim-cache)
//	simrun -bench gcc -mode detailed -max 1000000
//	simrun -bench gzip -metrics - -cpuprofile cpu.prof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"mlpa/internal/bench"
	"mlpa/internal/config"
	"mlpa/internal/cpu"
	"mlpa/internal/emu"
	"mlpa/internal/obs"
	"mlpa/internal/prog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simrun:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		benchName  = flag.String("bench", "", "suite benchmark to run")
		file       = flag.String("file", "", "assembly file to run instead of a suite benchmark")
		size       = flag.String("size", "small", "suite scale: tiny, small or ref")
		mode       = flag.String("mode", "detailed", "functional, detailed, or warm (cache/branch stats without timing)")
		cfgName    = flag.String("config", "A", "machine configuration (A or B) for detailed mode")
		maxInsts   = flag.Uint64("max", 0, "instruction budget (0 = run to completion)")
		metricsOut = flag.String("metrics", "", "write a metrics-registry JSON snapshot to this file (- for stderr)")
		serveAddr  = flag.String("serve", "", "serve live telemetry (/metrics, /progress, /debug/pprof/) on this address")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		cf, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			cf.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			if err != nil {
				return
			}
			mf, merr := os.Create(*memprofile)
			if merr != nil {
				err = merr
				return
			}
			defer mf.Close()
			runtime.GC()
			err = pprof.WriteHeapProfile(mf)
		}()
	}
	var reg *obs.Registry
	var rt *obs.Runtime
	if *metricsOut != "" || *serveAddr != "" {
		rt = obs.New(nil)
		reg = rt.Metrics()
	}
	if *serveAddr != "" {
		srv, serr := obs.Serve(*serveAddr, rt)
		if serr != nil {
			return serr
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "simrun: serving live telemetry on http://%s/ (/metrics, /debug/pprof/)\n", srv.Addr())
	}
	if *metricsOut != "" {
		defer func() {
			if err != nil {
				return
			}
			w := os.Stderr
			if *metricsOut != "-" {
				f, ferr := os.Create(*metricsOut)
				if ferr != nil {
					err = ferr
					return
				}
				defer f.Close()
				w = f
			}
			err = reg.WriteJSON(w)
		}()
	}

	p, err := loadProgram(*benchName, *file, *size)
	if err != nil {
		return err
	}
	m := emu.New(p, 0)
	m.Metrics = reg

	switch *mode {
	case "functional":
		t0 := time.Now()
		budget := *maxInsts
		if budget == 0 {
			budget = 1 << 40
		}
		n, err := m.RunToCompletion(budget)
		if err != nil {
			return err
		}
		dur := time.Since(t0)
		fmt.Printf("program:      %s\n", p.Name)
		fmt.Printf("instructions: %d\n", n)
		fmt.Printf("wall time:    %v (%.1f M inst/s)\n", dur.Round(time.Millisecond), float64(n)/dur.Seconds()/1e6)
		return nil
	case "detailed":
		cfg, err := config.ByName(*cfgName)
		if err != nil {
			return err
		}
		sim, err := cpu.New(cfg)
		if err != nil {
			return err
		}
		sim.Metrics = reg
		t0 := time.Now()
		res, err := sim.Run(m, *maxInsts)
		if err != nil {
			return err
		}
		dur := time.Since(t0)
		printDetailed(p.Name, cfg, res, dur)
		return nil
	case "warm":
		// Functional execution driving caches and predictor only —
		// the sim-cache / sim-bpred equivalent.
		cfg, err := config.ByName(*cfgName)
		if err != nil {
			return err
		}
		sim, err := cpu.New(cfg)
		if err != nil {
			return err
		}
		sim.Metrics = reg
		budget := *maxInsts
		if budget == 0 {
			budget = 1 << 40
		}
		t0 := time.Now()
		res, err := sim.WarmMeasured(m, budget)
		if err != nil {
			return err
		}
		dur := time.Since(t0)
		fmt.Printf("program:        %s (config %s, warm mode: no timing)\n", p.Name, cfg.Name)
		fmt.Printf("instructions:   %d\n", res.Insts)
		fmt.Printf("IL1:            %d accesses, %.4f hit rate\n", res.IL1.Accesses, res.IL1.HitRate())
		fmt.Printf("DL1:            %d accesses, %.4f hit rate\n", res.DL1.Accesses, res.DL1.HitRate())
		fmt.Printf("UL2:            %d accesses, %.4f hit rate\n", res.L2.Accesses, res.L2.HitRate())
		fmt.Printf("branches:       %d lookups, %.4f accuracy\n", res.Branch.Lookups, res.Branch.Accuracy())
		fmt.Printf("wall time:      %v (%.2f M inst/s)\n", dur.Round(time.Millisecond), float64(res.Insts)/dur.Seconds()/1e6)
		return nil
	}
	return fmt.Errorf("unknown mode %q", *mode)
}

func loadProgram(benchName, file, size string) (*prog.Program, error) {
	switch {
	case benchName != "" && file != "":
		return nil, fmt.Errorf("use either -bench or -file, not both")
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return prog.Assemble(file, string(src))
	case benchName != "":
		spec, err := bench.ByName(benchName)
		if err != nil {
			return nil, err
		}
		var sz bench.Size
		switch size {
		case "tiny":
			sz = bench.SizeTiny
		case "small":
			sz = bench.SizeSmall
		case "ref":
			sz = bench.SizeRef
		default:
			return nil, fmt.Errorf("unknown size %q", size)
		}
		return spec.Program(sz)
	}
	return nil, fmt.Errorf("need -bench or -file (suite: %v)", bench.Names())
}

func printDetailed(name string, cfg cpu.Config, res cpu.Result, dur time.Duration) {
	fmt.Printf("program:        %s (config %s)\n", name, cfg.Name)
	fmt.Printf("instructions:   %d\n", res.Insts)
	fmt.Printf("cycles:         %d\n", res.Cycles)
	fmt.Printf("CPI:            %.4f  (IPC %.3f)\n", res.CPI(), res.IPC())
	fmt.Printf("IL1:            %d accesses, %.4f hit rate\n", res.IL1.Accesses, res.IL1.HitRate())
	fmt.Printf("DL1:            %d accesses, %.4f hit rate\n", res.DL1.Accesses, res.DL1.HitRate())
	fmt.Printf("L1 (combined):  %.4f hit rate\n", res.L1HitRate())
	fmt.Printf("UL2:            %d accesses, %.4f hit rate\n", res.L2.Accesses, res.L2HitRate())
	fmt.Printf("branches:       %d lookups, %.4f accuracy (%d dir, %d target misses)\n",
		res.Branch.Lookups, res.Branch.Accuracy(), res.Branch.DirMisses, res.Branch.TargetMisses)
	fmt.Printf("wall time:      %v (%.2f M inst/s)\n", dur.Round(time.Millisecond), float64(res.Insts)/dur.Seconds()/1e6)
}
