package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadProgramFromSuite(t *testing.T) {
	p, err := loadProgram("gzip", "", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "gzip" {
		t.Errorf("name = %q", p.Name)
	}
	for _, size := range []string{"tiny", "small", "ref"} {
		if _, err := loadProgram("swim", "", size); err != nil {
			t.Errorf("size %s: %v", size, err)
		}
	}
}

func TestLoadProgramFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.s")
	if err := os.WriteFile(path, []byte("addi r1, r0, 1\nhalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := loadProgram("", path, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 2 {
		t.Errorf("code length = %d", len(p.Code))
	}
}

func TestLoadProgramErrors(t *testing.T) {
	if _, err := loadProgram("gzip", "x.s", "tiny"); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := loadProgram("", "", "tiny"); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadProgram("bogus", "", "tiny"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := loadProgram("gzip", "", "huge"); err == nil {
		t.Error("unknown size accepted")
	}
	if _, err := loadProgram("", "/nonexistent.s", "tiny"); err == nil {
		t.Error("missing file accepted")
	}
}
