// Command mlpa regenerates the paper's evaluation artifacts:
//
//	mlpa fig1   [-bench lucas]      Figure 1 phase trajectories
//	mlpa fig3                       Figure 3: COASTS speedup over SimPoint
//	mlpa fig4                       Figure 4: multi-level speedup over SimPoint
//	mlpa table2 [-config A,B]       Table II: metric deviations
//	mlpa table3                     Table III: simulation-point statistics
//	mlpa points [-bench name]       selected simulation points per method
//	mlpa motivation                 Section III coarse-phase analysis
//	mlpa ablation [-bench name]     design-choice sweeps (granularity, Kmax, ...)
//	mlpa checkpoint [-bench -method -dir] checkpointed-point simulation flow
//	mlpa ckpt save -dir d [-bench -method]  build + persist a portable checkpoint set
//	mlpa ckpt info -dir d                verify a set's integrity and describe it
//	mlpa ckpt exec -dir d [-config A,B]  zero-fast-forward estimates from a set
//	mlpa bench [-config A,B -dir d]  machine-readable BENCH_<date>.json harness
//	mlpa bench -compare old.json new.json  gate on significant perf regressions
//	mlpa inspect <run.jsonl>        render a recorded run journal
//	mlpa analyze [-bench name | file.s] static analysis: verifier, CFG, dominators, loops
//	mlpa analyze -dataflow ...      add liveness/reaching-defs: live sets, dead writes
//	mlpa serve [-addr host:port]    sampling-as-a-service HTTP daemon (docs/SERVICE.md)
//	mlpa loadtest [-addr -clients -requests -dup -min-hit-rate] load harness for serve
//	mlpa all                        figures and tables above
//
// Shared flags: -size tiny|small|ref, -seed N, -benchmarks a,b,c,
// -rates simplescalar|measured, -workers N (parallel simulation fan-out
// across benchmarks and simulation points; 0 = GOMAXPROCS, 1 =
// sequential; results are bit-identical for every worker count).
//
// Observability flags (every command): -journal file.jsonl records a
// structured run journal (manifest, stage spans, per-point records,
// estimates, deviations) that `mlpa inspect` renders; -metrics file
// dumps the metrics registry as JSON on exit; -v logs stage progress
// to stderr; -serve addr exposes the run live over HTTP (/metrics in
// Prometheus text or JSON, /progress per-stage completion, and the
// pprof mux) without perturbing results; -sample 5s streams periodic
// metrics_sample records to the journal; -pprof addr serves
// net/http/pprof; -cpuprofile/-memprofile write runtime profiles. See
// docs/OBSERVABILITY.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mlpa/internal/bench"
	"mlpa/internal/config"
	"mlpa/internal/cpu"
	"mlpa/internal/experiments"
	"mlpa/internal/obs"
	"mlpa/internal/pipeline"
	"mlpa/internal/report"
	"mlpa/internal/sampling"
	"mlpa/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mlpa:", err)
		os.Exit(1)
	}
}

type flags struct {
	size       string
	seed       int64
	benchmarks string
	configs    string
	benchmark  string
	rates      string
	method     string
	dir        string
	dynamic    bool
	dataflow   bool
	workers    int

	// Observability surface.
	journal    string
	metrics    string
	verbose    bool
	serveAddr  string
	sample     time.Duration
	pprofAddr  string
	cpuprofile string
	memprofile string

	// compare switches `bench` into report-comparison mode
	// (`mlpa bench -compare old.json new.json`).
	compare bool
	// gateParallel makes `bench` fail after writing its report when the
	// micro section's ExecutePlan wall at workers=4 exceeds workers=1 —
	// the parallel-is-never-a-loss CI gate.
	gateParallel bool

	// serve/loadtest surface (see cmd/mlpa/serve.go and docs/SERVICE.md).
	addr           string
	requestWorkers int
	requestTimeout time.Duration
	drainTimeout   time.Duration
	endpoint       string
	clients        int
	requests       int
	dup            float64
	minHitRate     float64
	report         string

	// rt is the observability runtime wired by setupObs; nil-safe, so
	// commands use it unconditionally.
	rt *obs.Runtime
	// ctx is cancelled on SIGINT/SIGTERM so parallel simulation stages
	// abort cleanly; never nil after run() sets it up.
	ctx context.Context
	// args are the positional arguments after the flags (inspect).
	args []string
}

func parseFlags(cmd string, args []string) (*flags, error) {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	f := &flags{}
	fs.StringVar(&f.size, "size", "small", "suite scale: tiny, small or ref")
	fs.Int64Var(&f.seed, "seed", 1, "random seed for projection and clustering")
	fs.StringVar(&f.benchmarks, "benchmarks", "", "comma-separated benchmark subset (default: all)")
	fs.StringVar(&f.configs, "config", "A,B", "Table I configurations for table2")
	fs.StringVar(&f.benchmark, "bench", "lucas", "benchmark for fig1/points")
	fs.StringVar(&f.rates, "rates", "simplescalar", "time model: simplescalar or measured")
	fs.StringVar(&f.method, "method", "multilevel", "sampling method for checkpoint: coasts, simpoint or multilevel")
	fs.StringVar(&f.dir, "dir", "", "directory to persist checkpoint files (checkpoint command)")
	fs.BoolVar(&f.dynamic, "dynamic", false, "analyze: also profile dynamically and cross-check against the static forest")
	fs.BoolVar(&f.dataflow, "dataflow", false, "analyze: print per-block live sets, statically-dead writes and the predecode cross-check")
	fs.IntVar(&f.workers, "workers", 0, "parallel simulation workers (0 = GOMAXPROCS, 1 = sequential; results are identical for every value)")
	fs.StringVar(&f.journal, "journal", "", "write a JSONL run journal to this file (see `mlpa inspect`)")
	fs.StringVar(&f.metrics, "metrics", "", "write a JSON metrics-registry snapshot to this file on exit")
	fs.BoolVar(&f.verbose, "v", false, "log stage progress to stderr")
	fs.StringVar(&f.serveAddr, "serve", "", "serve live telemetry (/metrics, /progress, /debug/pprof/) on this address (e.g. localhost:8080)")
	fs.DurationVar(&f.sample, "sample", 0, "stream periodic metrics_sample records to the journal (or stderr without -journal) at this interval")
	fs.BoolVar(&f.compare, "compare", false, "bench: compare two BENCH_*.json reports and fail on significant regressions")
	fs.BoolVar(&f.gateParallel, "gate-parallel", false, "bench: fail if the micro plan wall at workers=4 exceeds workers=1 (small noise allowance)")
	fs.StringVar(&f.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&f.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&f.addr, "addr", defaultServeAddr, "serve: listen address; loadtest: daemon address to target")
	fs.IntVar(&f.requestWorkers, "request-workers", 1, "serve: parallel workers per admitted execution (results are identical for every value)")
	fs.DurationVar(&f.requestTimeout, "request-timeout", 2*time.Minute, "serve/loadtest: per-request computation timeout")
	fs.DurationVar(&f.drainTimeout, "drain-timeout", defaultDrainTimeout, "serve: how long shutdown waits for in-flight requests")
	fs.StringVar(&f.endpoint, "endpoint", "plan", "loadtest: API endpoint to exercise (analyze, plan or estimate)")
	fs.IntVar(&f.clients, "clients", 4, "loadtest: concurrent requesters")
	fs.IntVar(&f.requests, "requests", 64, "loadtest: total requests to issue")
	fs.Float64Var(&f.dup, "dup", 0.75, "loadtest: duplicate-traffic fraction in [0,1)")
	fs.Float64Var(&f.minHitRate, "min-hit-rate", 0, "loadtest: fail unless (hits+coalesced)/ok reaches this fraction")
	fs.StringVar(&f.report, "report", "", "loadtest: write the JSON load report to this file")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	f.args = fs.Args()
	return f, nil
}

func (f *flags) suiteSize() (bench.Size, error) {
	switch f.size {
	case "tiny":
		return bench.SizeTiny, nil
	case "small":
		return bench.SizeSmall, nil
	case "ref":
		return bench.SizeRef, nil
	}
	return 0, fmt.Errorf("unknown size %q", f.size)
}

func (f *flags) options() (experiments.Options, error) {
	size, err := f.suiteSize()
	if err != nil {
		return experiments.Options{}, err
	}
	o := experiments.Options{Size: size, Seed: f.seed, Obs: f.rt, Workers: f.workers, Ctx: f.ctx}
	if f.benchmarks != "" {
		o.Benchmarks = strings.Split(f.benchmarks, ",")
	}
	switch f.rates {
	case "", "simplescalar":
		o.TimeModel = sampling.SimpleScalarRates
	case "measured":
		spec, err := bench.ByName("gzip")
		if err != nil {
			return o, err
		}
		p, err := spec.Program(size)
		if err != nil {
			return o, err
		}
		tm, err := pipeline.MeasuredRates(p, config.BaseA(), 0)
		if err != nil {
			return o, err
		}
		fmt.Printf("measured rates: detailed %.2f M inst/s, functional %.2f M inst/s\n",
			tm.DetailedRate/1e6, tm.FunctionalRate/1e6)
		o.TimeModel = tm
	default:
		return o, fmt.Errorf("unknown rates %q", f.rates)
	}
	return o, nil
}

func (f *flags) cpuConfigs() ([]cpu.Config, error) {
	var out []cpu.Config
	for _, name := range strings.Split(f.configs, ",") {
		cfg, err := config.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}

func run(args []string) (err error) {
	if len(args) == 0 {
		return fmt.Errorf("usage: mlpa <fig1|fig3|fig4|table2|table3|points|motivation|ablation|checkpoint|ckpt|bench|inspect|analyze|serve|loadtest|all> [flags]")
	}
	cmd := args[0]
	fargs := args[1:]
	// ckpt takes its subcommand before the flags (mlpa ckpt save -dir d);
	// lift it out so the flag parser sees only flags.
	var ckptSub string
	if cmd == "ckpt" && len(fargs) > 0 && !strings.HasPrefix(fargs[0], "-") {
		ckptSub = fargs[0]
		fargs = fargs[1:]
	}
	f, err := parseFlags(cmd, fargs)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	f.ctx = ctx
	if cmd == "inspect" {
		// inspect only reads an existing journal; no run to observe.
		return runInspect(f)
	}
	cleanup, err := setupObs(f, cmd)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := cleanup(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	switch cmd {
	case "fig1":
		return runFig1(f)
	case "fig3", "fig4", "table3":
		return withStudy(f, func(st *experiments.Study) error {
			switch cmd {
			case "fig3":
				return printSpeedups(st.Fig3())
			case "fig4":
				return printSpeedups(st.Fig4())
			default:
				return printTable3(st)
			}
		})
	case "table2":
		return withStudy(f, func(st *experiments.Study) error { return printTable2(f, st) })
	case "points":
		return runPoints(f)
	case "motivation":
		return runMotivation(f)
	case "ablation":
		return runAblations(f)
	case "checkpoint":
		return runCheckpoint(f)
	case "ckpt":
		return runCkpt(f, ckptSub)
	case "bench":
		return runBench(f)
	case "analyze":
		return runAnalyze(f)
	case "serve":
		return runServe(f)
	case "loadtest":
		return runLoadtest(f)
	case "all":
		if err := runFig1(f); err != nil {
			return err
		}
		if err := runMotivation(f); err != nil {
			return err
		}
		return withStudy(f, func(st *experiments.Study) error {
			if err := printSpeedups(st.Fig3()); err != nil {
				return err
			}
			if err := printSpeedups(st.Fig4()); err != nil {
				return err
			}
			if err := printTable3(st); err != nil {
				return err
			}
			return printTable2(f, st)
		})
	}
	return fmt.Errorf("unknown command %q", cmd)
}

func withStudy(f *flags, fn func(*experiments.Study) error) error {
	o, err := f.options()
	if err != nil {
		return err
	}
	fmt.Printf("selecting simulation points (size=%s, seed=%d)...\n", f.size, f.seed)
	st, err := experiments.NewStudy(o)
	if err != nil {
		return err
	}
	return fn(st)
}

func printSpeedups(res *experiments.SpeedupResult, err error) error {
	if err != nil {
		return err
	}
	names := make([]string, 0, len(res.Rows)+1)
	vals := make([]float64, 0, len(res.Rows)+1)
	for _, r := range res.Rows {
		names = append(names, r.Benchmark)
		vals = append(vals, r.Speedup)
	}
	names = append(names, "GEOMEAN")
	vals = append(vals, res.GeoMean)
	fmt.Println()
	fmt.Print(report.BarChart(res.Title, names, vals, "x", 50))
	return nil
}

func printTable3(st *experiments.Study) error {
	rows, err := st.Table3()
	if err != nil {
		return err
	}
	t := report.NewTable("\nTable III: simulation points statistics",
		"Algorithm", "Mean Interval Size (inst)", "Mean Sample Number", "Mean Detail", "Mean Functional")
	for _, r := range rows {
		t.AddRow(r.Method,
			fmt.Sprintf("%.0f", r.MeanIntervalSize),
			fmt.Sprintf("%.1f", r.MeanSampleNumber),
			stats.FormatPct(r.MeanDetailPct),
			stats.FormatPct(r.MeanFunctionalPct))
	}
	fmt.Print(t.String())
	return nil
}

func printTable2(f *flags, st *experiments.Study) error {
	configs, err := f.cpuConfigs()
	if err != nil {
		return err
	}
	fmt.Println("\nrunning ground-truth and sampled simulations for Table II...")
	res, err := st.Table2(configs)
	if err != nil {
		return err
	}
	headers := []string{"Metric", "Method"}
	for _, cfg := range configs {
		headers = append(headers, "Config "+cfg.Name+" AVG", "Config "+cfg.Name+" Worst")
	}
	t := report.NewTable("\nTable II: deviation comparison", headers...)
	for _, metric := range res.Metrics {
		for _, method := range experiments.Methods() {
			row := []string{metric, method}
			for _, cfg := range configs {
				cell := res.Cells[metric][method][cfg.Name]
				row = append(row, stats.FormatPct(cell.Avg),
					fmt.Sprintf("%s (%s)", stats.FormatPct(cell.Worst), cell.WorstBench))
			}
			t.AddRow(row...)
		}
	}
	fmt.Print(t.String())
	return nil
}

func runFig1(f *flags) error {
	o, err := f.options()
	if err != nil {
		return err
	}
	res, err := experiments.Fig1(o, f.benchmark)
	if err != nil {
		return err
	}
	fmt.Printf("\nFig. 1: first principal component of BBVs per interval, %s\n\n", res.Benchmark)
	fmt.Print(report.LinePlot(
		fmt.Sprintf("(a) fine-grained, %d fixed-length intervals (roughness %.3f)",
			len(res.Fine), experiments.Roughness(res.Fine)),
		res.Fine, res.FineMarks, 72, 14))
	fmt.Println()
	fmt.Print(report.LinePlot(
		fmt.Sprintf("(b) coarse-grained, %d iteration intervals (roughness %.3f)",
			len(res.Coarse), experiments.Roughness(res.Coarse)),
		res.Coarse, res.CoarseMarks, 72, 14))
	return nil
}

func runPoints(f *flags) error {
	o, err := f.options()
	if err != nil {
		return err
	}
	o.Benchmarks = []string{f.benchmark}
	st, err := experiments.NewStudy(o)
	if err != nil {
		return err
	}
	pl := st.Plans[0]
	for _, method := range experiments.Methods() {
		plan, err := pl.ByMethod(method)
		if err != nil {
			return err
		}
		t := report.NewTable(
			fmt.Sprintf("\n%s: %s simulation points (total %d instructions)", f.benchmark, method, plan.TotalInsts),
			"Start", "End", "Length", "Weight", "Level")
		for _, pt := range plan.Points {
			t.AddRow(
				fmt.Sprintf("%d", pt.Start),
				fmt.Sprintf("%d", pt.End),
				fmt.Sprintf("%d", pt.Len()),
				fmt.Sprintf("%.4f", pt.Weight),
				fmt.Sprintf("%d", pt.Level))
		}
		t.AddRow("detail", stats.FormatPct(plan.DetailedFraction()),
			"functional", stats.FormatPct(plan.FunctionalFraction()),
			fmt.Sprintf("last@%s", stats.FormatPct(plan.LastPosition())))
		fmt.Print(t.String())
	}
	return nil
}

// runMotivation reproduces the Section III analysis: coarse-grained
// phase counts and the position of the last coarse phase, per
// benchmark (paper: average phase count 3, average position ~17%).
func runMotivation(f *flags) error {
	o, err := f.options()
	if err != nil {
		return err
	}
	o.CoarseKmax = 8 // analysis uses a freer clustering than COASTS's 3
	st, err := experiments.NewStudy(o)
	if err != nil {
		return err
	}
	t := report.NewTable("\nSection III motivation: coarse-grained phase analysis",
		"Benchmark", "Coarse Phases", "Last Point Position", "Scripted Phases", "Scripted Position")
	var phases, pos []float64
	for _, pl := range st.Plans {
		k := len(pl.Coasts.Points)
		p := pl.Coasts.LastPosition()
		phases = append(phases, float64(k))
		pos = append(pos, p)
		t.AddRow(pl.Spec.Name,
			fmt.Sprintf("%d", k),
			stats.FormatPct(p),
			fmt.Sprintf("%d", pl.Spec.Phases),
			stats.FormatPct(pl.Spec.LastPhasePos))
	}
	t.AddRow("AVERAGE", fmt.Sprintf("%.1f", stats.ArithMean(phases)), stats.FormatPct(stats.ArithMean(pos)))
	fmt.Print(t.String())
	return nil
}

// runAblations prints the design-choice sweeps: interval granularity
// (the Section III tradeoff), coarse Kmax, the re-sampling threshold,
// the projection dimension, and the cold-start policy.
func runAblations(f *flags) error {
	o, err := f.options()
	if err != nil {
		return err
	}
	benchName := f.benchmark

	gran, err := experiments.GranularitySweep(o, benchName, []float64{0.25, 0.5, 1, 2, 4, 8, 16, 37.5})
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("\nAblation: interval granularity on %s (Section III tradeoff)", benchName),
		"Interval", "Points", "Detail", "Functional", "Last Pos", "Modeled Time")
	for _, r := range gran {
		t.AddRow(fmt.Sprintf("%d", r.IntervalLen),
			fmt.Sprintf("%d", r.Points),
			stats.FormatPct(r.DetailPct),
			stats.FormatPct(r.FunctionalPct),
			stats.FormatPct(r.LastPosition),
			fmt.Sprintf("%.2fs", r.ModeledTime))
	}
	fmt.Print(t.String())

	kmax, err := experiments.CoarseKmaxSweep(o, benchName, []int{1, 2, 3, 4, 6, 8})
	if err != nil {
		return err
	}
	t = report.NewTable(
		fmt.Sprintf("\nAblation: COASTS Kmax on %s (paper default 3)", benchName),
		"Kmax", "Points", "Detail", "Functional", "Last Pos", "Modeled Time")
	for _, r := range kmax {
		t.AddRow(fmt.Sprintf("%d", r.Kmax),
			fmt.Sprintf("%d", r.Points),
			stats.FormatPct(r.DetailPct),
			stats.FormatPct(r.FunctionalPct),
			stats.FormatPct(r.LastPosition),
			fmt.Sprintf("%.2fs", r.ModeledTime))
	}
	fmt.Print(t.String())

	thr, err := experiments.ThresholdSweep(o, benchName, []float64{0.25, 0.5, 1, 2, 4, 1000})
	if err != nil {
		return err
	}
	t = report.NewTable(
		fmt.Sprintf("\nAblation: multi-level re-sampling threshold on %s (paper rule: fine interval x Kmax)", benchName),
		"Threshold", "Points", "Resampled", "Detail", "Functional", "Modeled Time")
	for _, r := range thr {
		t.AddRow(fmt.Sprintf("%d", r.Threshold),
			fmt.Sprintf("%d", r.Points),
			fmt.Sprintf("%d", r.Resampled),
			stats.FormatPct(r.DetailPct),
			stats.FormatPct(r.FunctionalPct),
			fmt.Sprintf("%.2fs", r.ModeledTime))
	}
	fmt.Print(t.String())

	dims, err := experiments.ProjectionDimSweep(o, benchName, []int{2, 4, 8, 15, 32})
	if err != nil {
		return err
	}
	t = report.NewTable(
		fmt.Sprintf("\nAblation: BBV projection dimension on %s (SimPoint default 15)", benchName),
		"Dims", "Points", "CPI Deviation")
	for _, r := range dims {
		t.AddRow(fmt.Sprintf("%d", r.Dims),
			fmt.Sprintf("%d", r.Points),
			stats.FormatPct(r.CPIDev))
	}
	fmt.Print(t.String())

	cold, err := experiments.ColdStartAblation(o, benchName)
	if err != nil {
		return err
	}
	t = report.NewTable(
		fmt.Sprintf("\nAblation: cold-start vs warmed point execution on %s (see DESIGN.md)", benchName),
		"Method", "Cold CPI Dev", "Warmed CPI Dev")
	for _, r := range cold {
		t.AddRow(r.Method, stats.FormatPct(r.ColdDev), stats.FormatPct(r.WarmDev))
	}
	fmt.Print(t.String())

	early, err := experiments.EarlySPComparison(o, []string{"gzip", "swim", "crafty", "equake"})
	if err != nil {
		return err
	}
	t = report.NewTable(
		"\nAblation: EarlySP (Perelman et al.) vs standard SimPoint vs COASTS (functional fraction)",
		"Benchmark", "Standard", "EarlySP", "COASTS", "EarlySP Speedup", "COASTS Speedup")
	for _, r := range early {
		t.AddRow(r.Benchmark,
			stats.FormatPct(r.StandardFunctional),
			stats.FormatPct(r.EarlySPFunctional),
			stats.FormatPct(r.CoastsFunctional),
			fmt.Sprintf("%.2fx", r.EarlySPSpeedup),
			fmt.Sprintf("%.2fx", r.CoastsSpeedup))
	}
	fmt.Print(t.String())
	return printVLI(o)
}

// printVLI renders the VLI-vs-fixed comparison appended to ablations.
func printVLI(o experiments.Options) error {
	rows, err := experiments.VLIComparison(o, []string{"gzip", "swim", "crafty", "equake"})
	if err != nil {
		return err
	}
	t := report.NewTable(
		"\nAblation: variable-length intervals vs fixed SimPoint (paper: VLI gains nothing)",
		"Benchmark", "VLI Points", "Fixed Points", "Mean VLI Interval", "Time Ratio")
	for _, r := range rows {
		t.AddRow(r.Benchmark,
			fmt.Sprintf("%d", r.VLIPoints),
			fmt.Sprintf("%d", r.FixedPoints),
			fmt.Sprintf("%.0f", r.MeanVLILength),
			fmt.Sprintf("%.2fx", r.TimeRatio))
	}
	fmt.Print(t.String())
	return nil
}

// runCheckpoint demonstrates the checkpointed-simulation flow: select
// a plan, snapshot the architectural state before every point (one
// functional pass), optionally persist the snapshots, then replay the
// points from the snapshots under the chosen configuration.
func runCheckpoint(f *flags) error {
	o, err := f.options()
	if err != nil {
		return err
	}
	o.Benchmarks = []string{f.benchmark}
	st, err := experiments.NewStudy(o)
	if err != nil {
		return err
	}
	plan, err := st.Plans[0].ByMethod(f.method)
	if err != nil {
		return err
	}
	spec := st.Plans[0].Spec
	p, err := spec.Program(o.Size)
	if err != nil {
		return err
	}

	ck, err := pipeline.MakeCheckpoints(p, plan)
	if err != nil {
		return err
	}
	var total int
	for _, s := range ck.States {
		total += len(s)
	}
	fmt.Printf("created %d checkpoints for %s/%s (%.1f KiB total)\n",
		len(ck.States), f.benchmark, f.method, float64(total)/1024)

	if f.dir != "" {
		if err := os.MkdirAll(f.dir, 0o755); err != nil {
			return err
		}
		for i, state := range ck.States {
			name := filepath.Join(f.dir, fmt.Sprintf("%s_%s_point%03d.ckpt", f.benchmark, f.method, i))
			if err := os.WriteFile(name, state, 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("wrote checkpoint files to %s\n", f.dir)
	}

	for _, cfgName := range strings.Split(f.configs, ",") {
		cfg, err := config.ByName(strings.TrimSpace(cfgName))
		if err != nil {
			return err
		}
		est, err := pipeline.ExecuteFromCheckpoints(p, ck, cfg)
		if err != nil {
			return err
		}
		truth, _, err := pipeline.FullDetailed(p, cfg)
		if err != nil {
			return err
		}
		cpiDev, l1Dev, l2Dev := pipeline.Deviations(est, truth)
		fmt.Printf("config %s: CPI est %.4f (true %.4f, %s off), L1 %s off, L2 %s off, wall %v\n",
			cfg.Name, est.CPI, truth.CPI(), stats.FormatPct(cpiDev),
			stats.FormatPct(l1Dev), stats.FormatPct(l2Dev), est.Wall().Round(1e6))
	}
	return nil
}
