// Observability wiring for the mlpa command: run journal, metrics
// snapshot, verbose logging and Go runtime profiling. All of it is
// opt-in per flag and costs nothing when disabled — the obs.Runtime is
// nil-safe, so command code threads it through unconditionally.
package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"mlpa/internal/obs"
)

// setupObs builds the observability runtime the flags describe, stores
// it on f, and returns a teardown function that flushes everything
// (metrics snapshot, heap profile, journal file) when the command
// finishes.
func setupObs(f *flags, cmd string) (func() error, error) {
	var journalFile *os.File
	var sink *obs.JSONLSink
	if f.journal != "" {
		jf, err := os.Create(f.journal)
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		journalFile = jf
		sink = obs.NewJSONLSink(jf)
	}
	if sink != nil {
		f.rt = obs.New(sink)
	} else {
		f.rt = obs.New(nil)
	}
	if f.verbose {
		f.rt.SetLogger(os.Stderr)
	}
	f.rt.EmitManifest(obs.Manifest{
		Tool:      "mlpa",
		Command:   cmd,
		Benchmark: f.benchmarks,
		Method:    f.method,
		Size:      f.size,
		Seed:      f.seed,
		Configs:   strings.Split(f.configs, ","),
		// The hash fingerprints every knob that changes results, so two
		// journals are comparable iff their hashes match.
		ConfigHash: obs.ConfigHash(map[string]any{
			"size": f.size, "seed": f.seed, "benchmarks": f.benchmarks,
			"configs": f.configs, "rates": f.rates, "method": f.method,
		}),
		Args: os.Args[1:],
	})

	// Live telemetry: -serve exposes /metrics, /progress and the pprof
	// mux; -pprof is the legacy spelling and serves the same handler.
	// The server only reads atomic registry/progress snapshots, so
	// estimates and journals are bit-identical with and without it.
	var servers []*obs.Server
	for _, addr := range []string{f.serveAddr, f.pprofAddr} {
		if addr == "" {
			continue
		}
		srv, err := obs.Serve(addr, f.rt)
		if err != nil {
			return nil, err
		}
		servers = append(servers, srv)
		fmt.Fprintf(os.Stderr, "mlpa: serving live telemetry on http://%s/ (/metrics, /progress, /debug/pprof/)\n", srv.Addr())
	}

	// -sample streams periodic metrics_sample records so a journal (or
	// stderr) shows the run's trajectory, not just its final state.
	var sampler *obs.Sampler
	if f.sample > 0 {
		var ssink obs.Sink = obs.NewJSONLSink(os.Stderr)
		if sink != nil {
			ssink = sink
		}
		sampler = obs.StartSampler(f.rt.Metrics(), ssink, obs.SamplerOptions{Interval: f.sample})
	}

	var cpuFile *os.File
	if f.cpuprofile != "" {
		cf, err := os.Create(f.cpuprofile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = cf
	}

	return func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		// The sampler emits a final sample on Stop, and must settle
		// before the journal's closing metrics record and file close.
		sampler.Stop()
		for _, srv := range servers {
			keep(srv.Close())
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			keep(cpuFile.Close())
		}
		if f.memprofile != "" {
			mf, err := os.Create(f.memprofile)
			if err != nil {
				keep(fmt.Errorf("memprofile: %w", err))
			} else {
				runtime.GC() // settle allocations so the heap profile is current
				keep(pprof.WriteHeapProfile(mf))
				keep(mf.Close())
			}
		}
		if f.metrics != "" {
			mf, err := os.Create(f.metrics)
			if err != nil {
				keep(fmt.Errorf("metrics: %w", err))
			} else {
				keep(f.rt.Metrics().WriteJSON(mf))
				keep(mf.Close())
			}
		}
		if sink != nil {
			// Close the journal with a final metrics record so every
			// journal carries the run's counters.
			f.rt.EmitMetrics()
			keep(sink.Err())
			keep(journalFile.Close())
		}
		return firstErr
	}, nil
}
