// Substrate micro-benchmarks for the bench report: raw emulator
// throughput (fast path, hooked path, and the per-instruction Step
// loop it must match), clustering wall time, and end-to-end plan
// execution at two worker counts. These are the numbers the
// fast-forward optimizations are judged by; docs/PERFORMANCE.md
// explains how to compare them across commits.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"mlpa/internal/ckpt"
	"mlpa/internal/config"
	"mlpa/internal/cpu"
	"mlpa/internal/emu"
	"mlpa/internal/experiments"
	"mlpa/internal/kmeans"
	"mlpa/internal/linalg"
	"mlpa/internal/parallel"
	"mlpa/internal/pipeline"
	"mlpa/internal/prog"
)

// microReport carries the substrate micro-benchmark results.
type microReport struct {
	// Emulator throughput in millions of instructions per second on a
	// reference triple-nested loop kernel.
	EmuFastMIPS   float64 `json:"emu_fast_mips"`
	EmuHookedMIPS float64 `json:"emu_hooked_mips"`
	EmuStepMIPS   float64 `json:"emu_step_mips"`
	// EmuSpeedup is fast-path over Step-loop throughput.
	EmuSpeedup float64 `json:"emu_speedup"`
	// EmuSuperblockMIPS (schema 4) is default-Run throughput on a
	// branchy diamond-loop kernel whose per-iteration path crosses four
	// basic blocks — the workload superblock-trace chaining targets.
	EmuSuperblockMIPS float64 `json:"emu_superblock_mips,omitempty"`

	// KMeansWall is the wall time of a reference clustering problem.
	KMeansWall int64 `json:"kmeans_wall_ns"`

	// Plan-execution wall times for the first benchmark's multi-level
	// plan across the worker curve (schema 3: workers 1/2/4/8, keyed by
	// worker count), plus the legacy workers-1/4 fields so schema-2
	// baselines stay comparable.
	PlanBenchmark string           `json:"plan_benchmark"`
	PlanWall1     int64            `json:"plan_wall_workers1_ns"`
	PlanWall4     int64            `json:"plan_wall_workers4_ns"`
	PlanWalls     map[string]int64 `json:"plan_wall_by_workers_ns,omitempty"`
	// PlanChunks (schema 4) is the chunk count the cost-aware scheduler
	// partitioned the same plan into at each worker count. It explains
	// the wall curve: equal chunk counts mean the scheduler decided the
	// extra workers could not pay for their startup.
	PlanChunks map[string]int `json:"plan_chunks_by_workers,omitempty"`

	// Checkpoint round trip (schema 5): the wall cost of persisting one
	// portable checkpoint set for the same plan to disk, and of loading
	// it back into runnable machines (integrity verification included).
	// Both are best-of-three over the whole set.
	CkptSaveNs    int64 `json:"ckpt_save_ns,omitempty"`
	CkptRestoreNs int64 `json:"ckpt_restore_ns,omitempty"`
	// Sweep (schema 5): a 4-config sensitivity sweep over the same
	// plan, from scratch — every config pays its own fast-forward, the
	// shape of independent sweep jobs — versus checkpoint-backed, where
	// fast-forward is paid once when the set is built and every config
	// restores. SweepBuildNs is that one-time set construction, and
	// SweepSpeedup = total scratch / (build + total ckpt) — the number
	// the checkpoint subsystem is judged by.
	SweepSeries  []sweepSample `json:"sweep_wall_scratch_vs_ckpt,omitempty"`
	SweepBuildNs int64         `json:"sweep_ckpt_build_ns,omitempty"`
	SweepSpeedup float64       `json:"sweep_speedup,omitempty"`
}

// sweepSample is one config's scratch-vs-checkpoint wall pair in the
// schema-5 sweep series.
type sweepSample struct {
	Config    string `json:"config"`
	ScratchNs int64  `json:"scratch_ns"`
	CkptNs    int64  `json:"ckpt_ns"`
}

// Warm policy of the checkpoint micros. Warmup is finite and modest:
// in the sweep scenario each point's warm window is the only pre-point
// work a checkpoint cannot skip, so the scratch-vs-ckpt gap is exactly
// the plain fast-forward to each warm start. Estimates are
// bit-identical between the two modes under any one policy; the policy
// only sets how much fast-forward there is to save.
const (
	microSweepWarmup = 1 << 12
	microSweepLeadIn = 256
)

// microSweepConfigs is the 4-point sensitivity sweep of the checkpoint
// micros: Table I's A and B plus two variants of A that move only the
// memory system — the axis checkpoint-backed sweeps exist to explore.
// Four configs is the sweep width the checkpoint-reuse speedup target
// is specified at.
func microSweepConfigs() []cpu.Config {
	slow := config.BaseA()
	slow.Name = "A-slowmem"
	slow.Caches.MemFirst, slow.Caches.MemNext = 300, 20
	small := config.BaseA()
	small.Name = "A-smallL2"
	small.Caches.L2.TotalBytes = 256 << 10
	small.Caches.L2.Latency = 12
	return []cpu.Config{config.BaseA(), config.SensitivityB(), slow, small}
}

// microPlanWorkers is the ExecutePlan fan-out curve the bench report
// records. Tracking every point of the curve (not just 1 and 4) keeps
// the known small-suite parallel regression visible end to end while
// it is being fixed (ROADMAP item 5a).
var microPlanWorkers = []int{1, 2, 4, 8}

// microEmuProgram is the emulator reference kernel: a triple loop nest
// of roughly 5M instructions dominated by short basic blocks.
func microEmuProgram() *prog.Program {
	return prog.ExampleTripleNested(400, 60, 50)
}

// microSuperblockProgram is the superblock showcase kernel: a long
// diamond loop (if/else on counter parity inside a counted loop) whose
// hot path chains head → cond block → arm → join every iteration.
func microSuperblockProgram() *prog.Program {
	return prog.ExampleDiamondLoop(1_000_000)
}

func measureEmu(run func(m *emu.Machine) (uint64, error)) (float64, error) {
	return measureEmuOn(microEmuProgram(), run)
}

func measureEmuOn(p *prog.Program, run func(m *emu.Machine) (uint64, error)) (float64, error) {
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		m := emu.New(p, 0)
		t0 := time.Now()
		n, err := run(m)
		if err != nil {
			return 0, err
		}
		if mips := float64(n) / time.Since(t0).Seconds() / 1e6; mips > best {
			best = mips
		}
	}
	return best, nil
}

func runMicro(f *flags) (*microReport, error) {
	rep := &microReport{}

	var err error
	if rep.EmuFastMIPS, err = measureEmu(func(m *emu.Machine) (uint64, error) {
		return m.RunToCompletion(1 << 40)
	}); err != nil {
		return nil, err
	}
	if rep.EmuHookedMIPS, err = measureEmu(func(m *emu.Machine) (uint64, error) {
		var taken uint64
		m.Branch = func(from, to int64) { taken++ }
		return m.RunToCompletion(1 << 40)
	}); err != nil {
		return nil, err
	}
	if rep.EmuStepMIPS, err = measureEmu(func(m *emu.Machine) (uint64, error) {
		var n uint64
		for !m.Halted {
			if _, err := m.Step(); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	}); err != nil {
		return nil, err
	}
	if rep.EmuStepMIPS > 0 {
		rep.EmuSpeedup = rep.EmuFastMIPS / rep.EmuStepMIPS
	}
	if rep.EmuSuperblockMIPS, err = measureEmuOn(microSuperblockProgram(), func(m *emu.Machine) (uint64, error) {
		return m.RunToCompletion(1 << 40)
	}); err != nil {
		return nil, err
	}

	// Clustering: a BBV-shaped matrix, sized to run in about a second.
	rng := rand.New(rand.NewSource(f.seed))
	points := make([][]float64, 2000)
	for i := range points {
		row := make([]float64, 32)
		for j := 0; j < 8; j++ {
			row[rng.Intn(len(row))] = rng.Float64()
		}
		linalg.NormalizeL1(row)
		points[i] = row
	}
	t0 := time.Now()
	if _, err := kmeans.Best(points, 10, kmeans.Options{Seed: f.seed, Metrics: f.rt.Metrics()}); err != nil {
		return nil, err
	}
	rep.KMeansWall = time.Since(t0).Nanoseconds()

	// End-to-end: the first configured benchmark's multi-level plan at
	// workers 1 and 4, sharing one state cache the way table2 does.
	o, err := f.options()
	if err != nil {
		return nil, err
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = []string{"gzip"}
	}
	o.Benchmarks = o.Benchmarks[:1]
	o.Workers = 1
	o.Ctx = f.ctx
	rep.PlanBenchmark = o.Benchmarks[0]
	st, err := experiments.NewStudy(o)
	if err != nil {
		return nil, err
	}
	configs, err := f.cpuConfigs()
	if err != nil {
		return nil, err
	}
	pl := st.Plans[0]
	p, err := pl.Spec.Program(o.Size)
	if err != nil {
		return nil, err
	}
	plan, err := pl.ByMethod(experiments.MethodMultiLevel)
	if err != nil {
		return nil, err
	}
	rep.PlanWalls = make(map[string]int64, len(microPlanWorkers))
	rep.PlanChunks = make(map[string]int, len(microPlanWorkers))
	for _, workers := range microPlanWorkers {
		execOpts := pipeline.ExecOptions{
			Warmup: st.Opts.Warmup, DetailLeadIn: st.Opts.DetailLeadIn,
			Obs: f.rt, Workers: workers, Ctx: f.ctx,
		}
		chunks, err := pipeline.PlanChunks(plan, execOpts, workers)
		if err != nil {
			return nil, err
		}
		rep.PlanChunks[strconv.Itoa(workers)] = chunks
		// Best of three: the workers 1-vs-4 comparison is a CI gate
		// (-gate-parallel), so each wall is the minimum over repeats —
		// the standard way to strip scheduler noise from a wall-clock
		// comparison of near-equal quantities.
		var wall int64
		for attempt := 0; attempt < 3; attempt++ {
			execOpts.Cache = parallel.NewStateCache(p, 0, f.rt.Metrics())
			t0 := time.Now()
			if _, err := pipeline.ExecutePlan(p, plan, configs[0], execOpts); err != nil {
				return nil, err
			}
			if w := time.Since(t0).Nanoseconds(); attempt == 0 || w < wall {
				wall = w
			}
		}
		rep.PlanWalls[strconv.Itoa(workers)] = wall
		switch workers {
		case 1:
			rep.PlanWall1 = wall
		case 4:
			rep.PlanWall4 = wall
		}
	}

	// Checkpoint round trip and the scratch-vs-ckpt sweep (schema 5).
	sweepOpts := func() pipeline.ExecOptions {
		return pipeline.ExecOptions{
			Warmup: microSweepWarmup, DetailLeadIn: microSweepLeadIn,
			Obs: f.rt, Workers: 1, Ctx: f.ctx,
		}
	}
	buildStart := time.Now()
	set, err := pipeline.BuildCheckpointSet(p, plan, sweepOpts())
	if err != nil {
		return nil, err
	}
	rep.SweepBuildNs = time.Since(buildStart).Nanoseconds()

	ckptDir, err := os.MkdirTemp("", "mlpa-bench-ckpt-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(ckptDir)
	for attempt := 0; attempt < 3; attempt++ {
		t0 := time.Now()
		if err := set.Save(ckptDir); err != nil {
			return nil, err
		}
		if w := time.Since(t0).Nanoseconds(); attempt == 0 || w < rep.CkptSaveNs {
			rep.CkptSaveNs = w
		}
	}
	// Restore the way the pipeline does: one machine per chunk, every
	// further state restored in place (O(touched pages) via the dirty-
	// page tracker), so the micro tracks the cost that actually bounds
	// checkpoint-backed execution.
	for attempt := 0; attempt < 3; attempt++ {
		t0 := time.Now()
		loaded, err := ckpt.Load(ckptDir)
		if err != nil {
			return nil, err
		}
		var m *emu.Machine
		for i := range loaded.States {
			if m == nil {
				if m, err = loaded.States[i].NewMachine(loaded.Program); err != nil {
					return nil, err
				}
			} else if err := loaded.States[i].RestoreInto(m); err != nil {
				return nil, err
			}
		}
		if w := time.Since(t0).Nanoseconds(); attempt == 0 || w < rep.CkptRestoreNs {
			rep.CkptRestoreNs = w
		}
	}

	// Scratch walls use a private state cache per config (opts.Cache
	// nil), the shape of independent sweep jobs; checkpoint-backed
	// walls share nothing but the set. Both modes must agree exactly —
	// the sweep is a perf comparison, never an accuracy trade.
	var scratchTotal, ckptTotal int64
	for _, cfg := range microSweepConfigs() {
		t0 := time.Now()
		sEst, err := pipeline.ExecutePlan(p, plan, cfg, sweepOpts())
		if err != nil {
			return nil, err
		}
		scratchNs := time.Since(t0).Nanoseconds()
		opts := sweepOpts()
		opts.Checkpoints = set
		t0 = time.Now()
		cEst, err := pipeline.ExecutePlan(p, plan, cfg, opts)
		if err != nil {
			return nil, err
		}
		ckptNs := time.Since(t0).Nanoseconds()
		if sEst.CPI != cEst.CPI {
			return nil, fmt.Errorf("micro sweep config %s: checkpoint-backed CPI %v differs from scratch %v",
				cfg.Name, cEst.CPI, sEst.CPI)
		}
		rep.SweepSeries = append(rep.SweepSeries, sweepSample{Config: cfg.Name, ScratchNs: scratchNs, CkptNs: ckptNs})
		scratchTotal += scratchNs
		ckptTotal += ckptNs
	}
	if denom := rep.SweepBuildNs + ckptTotal; denom > 0 {
		rep.SweepSpeedup = float64(scratchTotal) / float64(denom)
	}

	planCurve := make([]string, 0, len(microPlanWorkers))
	for _, workers := range microPlanWorkers {
		planCurve = append(planCurve, fmt.Sprintf("%d:%v", workers,
			time.Duration(rep.PlanWalls[strconv.Itoa(workers)]).Round(time.Millisecond)))
	}
	fmt.Printf("micro: emu fast %.1f M-inst/s, superblock %.1f, hooked %.1f, step %.1f (%.2fx), kmeans %v, plan workers %s\n",
		rep.EmuFastMIPS, rep.EmuSuperblockMIPS, rep.EmuHookedMIPS, rep.EmuStepMIPS, rep.EmuSpeedup,
		time.Duration(rep.KMeansWall).Round(time.Millisecond),
		strings.Join(planCurve, " "))
	fmt.Printf("micro: ckpt save %v, restore %v, %d-config sweep scratch %v vs build %v + ckpt %v (%.2fx)\n",
		time.Duration(rep.CkptSaveNs).Round(time.Microsecond),
		time.Duration(rep.CkptRestoreNs).Round(time.Microsecond),
		len(rep.SweepSeries),
		time.Duration(scratchTotal).Round(time.Millisecond),
		time.Duration(rep.SweepBuildNs).Round(time.Millisecond),
		time.Duration(ckptTotal).Round(time.Millisecond),
		rep.SweepSpeedup)
	return rep, nil
}
