// The serve and loadtest subcommands: the sampling-as-a-service daemon
// and its load harness. See docs/SERVICE.md.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"mlpa/internal/serve"
	"mlpa/internal/serve/loadgen"
)

// runServe boots the daemon and blocks until SIGINT/SIGTERM, then
// drains: admitted requests complete, new ones get 503, and the
// process exits 0 on a clean drain.
func runServe(f *flags) error {
	s := serve.New(serve.Options{
		Obs:            f.rt,
		MaxConcurrent:  f.workers,
		RequestWorkers: f.requestWorkers,
		RequestTimeout: f.requestTimeout,
	})
	if err := s.Start(f.addr); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mlpa: serving sampling API on http://%s/ (/v1/analyze, /v1/plan, /v1/estimate, /healthz, /metrics)\n", s.Addr())
	<-f.ctx.Done()
	fmt.Fprintln(os.Stderr, "mlpa: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), f.drainTimeout)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "mlpa: drained cleanly")
	return nil
}

// runLoadtest drives duplicate-heavy traffic at a running daemon and
// fails on any request failure or an insufficient cache hit rate.
func runLoadtest(f *flags) error {
	o := loadgen.Options{
		BaseURL:     "http://" + f.addr,
		Endpoint:    f.endpoint,
		Clients:     f.clients,
		Requests:    f.requests,
		DupFraction: f.dup,
		Size:        f.size,
		Method:      f.method,
		Seed:        f.seed,
		Timeout:     f.requestTimeout,
	}
	if f.benchmarks != "" {
		o.Benchmarks = strings.Split(f.benchmarks, ",")
	}
	rep, err := loadgen.Run(f.ctx, o)
	if err != nil {
		return err
	}
	fmt.Println(rep.Summary())
	if f.report != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(f.report, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote load report to %s\n", f.report)
	}
	if rep.Failures > 0 {
		return fmt.Errorf("loadtest: %d request(s) failed", rep.Failures)
	}
	if rep.HitRate < f.minHitRate {
		return fmt.Errorf("loadtest: hit rate %.2f below required %.2f", rep.HitRate, f.minHitRate)
	}
	return nil
}

// Defaults for the serve/loadtest flag group, applied in parseFlags.
const (
	defaultServeAddr    = "localhost:8080"
	defaultDrainTimeout = 30 * time.Second
)
