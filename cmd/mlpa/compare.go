// Perf-trajectory gating: `mlpa bench -compare old.json new.json`
// walks two BENCH_*.json reports and fails when a tracked metric has
// shifted significantly, turning the checked-in baselines into an
// actual regression guard. Significance comes from
// internal/changepoint's median/MAD shift test: metric families that
// span the suite (per-method deviations and wall times) are compared
// as paired series, so the verdict reflects the whole trajectory
// rather than one noisy cell, and scalar micro-benchmarks degrade to a
// relative-threshold gate.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"mlpa/internal/changepoint"
	"mlpa/internal/report"
)

// Gate thresholds. Deterministic accuracy metrics gate at 10%; wall
// times are machine-noise-prone, so they need 25% and (for series) a
// robust z-score before they fail the gate.
const (
	minRelAccuracy = 0.10
	minRelMIPS     = 0.10
	minRelWall     = 0.25
)

// metricKind selects formatting and gate direction for one finding.
type metricKind int

const (
	kindMIPS  metricKind = iota // higher is better, rate in M-inst/s
	kindWall                    // lower is better, nanoseconds
	kindDev                     // lower is better, relative deviation
	kindRatio                   // higher is better, dimensionless multiple
)

// compareFinding is one compared metric family.
type compareFinding struct {
	Metric  string
	Kind    metricKind
	N       int // paired samples behind the comparison
	Shift   changepoint.Shift
	Verdict string // "ok", "regression" or "improvement"
}

// regressed reports whether the shift is significant in the bad
// direction for the metric's kind.
func (c *compareFinding) regressed() bool { return c.Verdict == "regression" }

// finish derives the verdict from the shift and the kind's good
// direction.
func (c *compareFinding) finish() {
	c.Verdict = "ok"
	if !c.Shift.Significant {
		return
	}
	worse := c.Shift.Rel > 0 // wall and deviation regress upward
	if c.Kind == kindMIPS || c.Kind == kindRatio {
		worse = c.Shift.Rel < 0
	}
	if worse {
		c.Verdict = "regression"
	} else {
		c.Verdict = "improvement"
	}
}

func readBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &benchReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("bench compare: %s: %w", path, err)
	}
	if rep.Schema < 2 {
		return nil, fmt.Errorf("bench compare: %s: schema %d predates the micro section; regenerate it", path, rep.Schema)
	}
	return rep, nil
}

// runCompare implements `mlpa bench -compare old.json new.json`.
func runCompare(f *flags) error {
	if len(f.args) != 2 {
		return fmt.Errorf("usage: mlpa bench -compare old.json new.json")
	}
	oldRep, err := readBenchReport(f.args[0])
	if err != nil {
		return err
	}
	newRep, err := readBenchReport(f.args[1])
	if err != nil {
		return err
	}
	findings, warnings := compareReports(oldRep, newRep)
	for _, w := range warnings {
		fmt.Printf("warning: %s\n", w)
	}

	t := report.NewTable(
		fmt.Sprintf("\nBench comparison: %s (%s) vs %s (%s)", f.args[0], oldRep.Date, f.args[1], newRep.Date),
		"Metric", "Old", "New", "Change", "Z", "N", "Verdict")
	var regressions []string
	for i := range findings {
		c := &findings[i]
		t.AddRow(c.Metric,
			formatMetricValue(c.Kind, c.Shift.OldCenter),
			formatMetricValue(c.Kind, c.Shift.NewCenter),
			formatRel(c.Shift.Rel),
			formatZ(c.Shift.Z),
			strconv.Itoa(c.N),
			c.Verdict)
		if c.regressed() {
			regressions = append(regressions, c.Metric)
		}
	}
	fmt.Print(t.String())
	if len(regressions) > 0 {
		return fmt.Errorf("bench compare: %d significant regression(s): %s",
			len(regressions), strings.Join(regressions, ", "))
	}
	fmt.Printf("\nbench compare: no significant regressions across %d metric(s)\n", len(findings))
	return nil
}

// compareReports walks every tracked metric family of the two reports
// and returns the findings (stable order: micro scalars, then plan
// walls, then per-method series) plus provenance/comparability
// warnings.
func compareReports(oldRep, newRep *benchReport) ([]compareFinding, []string) {
	warnings := comparabilityWarnings(oldRep, newRep)
	var out []compareFinding

	scalar := func(metric string, kind metricKind, minRel, ov, nv float64) {
		if ov == 0 && nv == 0 {
			return
		}
		c := compareFinding{Metric: metric, Kind: kind, N: 1,
			Shift: changepoint.ShiftTest([]float64{ov}, []float64{nv}, changepoint.ShiftOptions{MinRel: minRel})}
		c.finish()
		out = append(out, c)
	}
	if oldRep.Micro != nil && newRep.Micro != nil {
		om, nm := oldRep.Micro, newRep.Micro
		scalar("micro.emu_fast_mips", kindMIPS, minRelMIPS, om.EmuFastMIPS, nm.EmuFastMIPS)
		if om.EmuSuperblockMIPS > 0 && nm.EmuSuperblockMIPS > 0 {
			// Schema 4; older baselines simply lack the kernel.
			scalar("micro.emu_superblock_mips", kindMIPS, minRelMIPS, om.EmuSuperblockMIPS, nm.EmuSuperblockMIPS)
		}
		scalar("micro.emu_hooked_mips", kindMIPS, minRelMIPS, om.EmuHookedMIPS, nm.EmuHookedMIPS)
		scalar("micro.emu_step_mips", kindMIPS, minRelMIPS, om.EmuStepMIPS, nm.EmuStepMIPS)
		scalar("micro.kmeans_wall", kindWall, minRelWall, float64(om.KMeansWall), float64(nm.KMeansWall))
		for _, workers := range planWallKeys(om, nm) {
			scalar(fmt.Sprintf("micro.plan_wall[workers=%s]", workers), kindWall, minRelWall,
				float64(planWall(om, workers)), float64(planWall(nm, workers)))
		}
		// Schema 5. Each checkpoint metric gates only when both reports
		// carry it, so schema-4 baselines stay accepted: the new columns
		// simply do not appear until the baseline is regenerated.
		if om.CkptSaveNs > 0 && nm.CkptSaveNs > 0 {
			scalar("micro.ckpt_save", kindWall, minRelWall, float64(om.CkptSaveNs), float64(nm.CkptSaveNs))
		}
		if om.CkptRestoreNs > 0 && nm.CkptRestoreNs > 0 {
			scalar("micro.ckpt_restore", kindWall, minRelWall, float64(om.CkptRestoreNs), float64(nm.CkptRestoreNs))
		}
		if oldS, newS := sweepPairs(om, nm); len(oldS[0]) > 0 {
			for i, mode := range []string{"scratch", "ckpt"} {
				c := compareFinding{Metric: "micro.sweep_wall[" + mode + "]", Kind: kindWall, N: len(oldS[i]),
					Shift: changepoint.ShiftTest(oldS[i], newS[i], changepoint.ShiftOptions{MinRel: minRelWall})}
				c.finish()
				out = append(out, c)
			}
		}
		if om.SweepSpeedup > 0 && nm.SweepSpeedup > 0 {
			scalar("micro.sweep_speedup", kindRatio, minRelWall, om.SweepSpeedup, nm.SweepSpeedup)
		}
	}

	out = append(out, compareMethodSeries(oldRep, newRep)...)
	return out, warnings
}

// sweepPairs pairs the two reports' schema-5 sweep series by config
// name and returns the scratch and ckpt walls as matched old/new
// series ([2][]float64 each, indexed scratch=0, ckpt=1). Empty when
// either report predates schema 5 or no config is shared.
func sweepPairs(om, nm *microReport) (oldS, newS [2][]float64) {
	byConfig := func(m *microReport) map[string]sweepSample {
		idx := make(map[string]sweepSample, len(m.SweepSeries))
		for _, s := range m.SweepSeries {
			idx[s.Config] = s
		}
		return idx
	}
	newIdx := byConfig(nm)
	for _, o := range om.SweepSeries {
		n, ok := newIdx[o.Config]
		if !ok {
			continue
		}
		oldS[0] = append(oldS[0], float64(o.ScratchNs))
		newS[0] = append(newS[0], float64(n.ScratchNs))
		oldS[1] = append(oldS[1], float64(o.CkptNs))
		newS[1] = append(newS[1], float64(n.CkptNs))
	}
	return oldS, newS
}

// planWall reads the ExecutePlan wall for a worker count from either
// schema: the schema-3 curve when present, the legacy 1/4 fields
// otherwise.
func planWall(m *microReport, workers string) int64 {
	if v, ok := m.PlanWalls[workers]; ok {
		return v
	}
	switch workers {
	case "1":
		return m.PlanWall1
	case "4":
		return m.PlanWall4
	}
	return 0
}

// planWallKeys returns the worker counts both micro sections cover, in
// ascending numeric order.
func planWallKeys(om, nm *microReport) []string {
	have := func(m *microReport) map[string]bool {
		set := make(map[string]bool, len(m.PlanWalls)+2)
		for k, v := range m.PlanWalls {
			if v > 0 {
				set[k] = true
			}
		}
		if m.PlanWall1 > 0 {
			set["1"] = true
		}
		if m.PlanWall4 > 0 {
			set["4"] = true
		}
		return set
	}
	on, nn := have(om), have(nm)
	var keys []string
	for k := range on {
		if nn[k] {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, _ := strconv.Atoi(keys[i])
		b, _ := strconv.Atoi(keys[j])
		return a < b
	})
	return keys
}

// compareMethodSeries pairs the two reports' per-benchmark method
// results by (benchmark, method, config) and tests each
// (method, config) family's cpi_dev and wall_estimate trajectories
// across the common benchmarks.
func compareMethodSeries(oldRep, newRep *benchReport) []compareFinding {
	type cell struct{ cpiDev, wall float64 }
	index := func(rep *benchReport) (map[string]map[string]cell, []string) {
		byFamily := make(map[string]map[string]cell)
		var families []string
		for _, e := range rep.Benchmarks {
			for _, m := range e.Methods {
				fam := m.Method + "/" + m.Config
				if byFamily[fam] == nil {
					byFamily[fam] = make(map[string]cell)
					families = append(families, fam)
				}
				byFamily[fam][e.Benchmark] = cell{cpiDev: m.CPIDev, wall: float64(m.WallEstimate)}
			}
		}
		return byFamily, families
	}
	oldIdx, families := index(oldRep)
	newIdx, _ := index(newRep)

	var out []compareFinding
	series := func(metric string, kind metricKind, minRel float64, oldS, newS []float64) {
		if len(oldS) == 0 {
			return
		}
		c := compareFinding{Metric: metric, Kind: kind, N: len(oldS),
			Shift: changepoint.ShiftTest(oldS, newS, changepoint.ShiftOptions{MinRel: minRel})}
		c.finish()
		out = append(out, c)
	}
	for _, fam := range families {
		newCells, ok := newIdx[fam]
		if !ok {
			continue
		}
		oldCells := oldIdx[fam]
		benchNames := make([]string, 0, len(oldCells))
		for name := range oldCells {
			if _, ok := newCells[name]; ok {
				benchNames = append(benchNames, name)
			}
		}
		sort.Strings(benchNames)
		var oldDev, newDev, oldWall, newWall []float64
		for _, name := range benchNames {
			oldDev = append(oldDev, oldCells[name].cpiDev)
			newDev = append(newDev, newCells[name].cpiDev)
			oldWall = append(oldWall, oldCells[name].wall)
			newWall = append(newWall, newCells[name].wall)
		}
		series("cpi_dev["+fam+"]", kindDev, minRelAccuracy, oldDev, newDev)
		series("wall_estimate["+fam+"]", kindWall, minRelWall, oldWall, newWall)
	}
	return out
}

// comparabilityWarnings reports everything that makes the two reports
// hard to interpret side by side without being a gateable regression:
// schema, size/seed knobs, and every provenance field.
func comparabilityWarnings(oldRep, newRep *benchReport) []string {
	var w []string
	if oldRep.Schema != newRep.Schema {
		w = append(w, fmt.Sprintf("schema mismatch: old %d vs new %d", oldRep.Schema, newRep.Schema))
	}
	if oldRep.Size != newRep.Size {
		w = append(w, fmt.Sprintf("suite size mismatch: old %q vs new %q — walls and deviations are not comparable", oldRep.Size, newRep.Size))
	}
	if oldRep.Seed != newRep.Seed {
		w = append(w, fmt.Sprintf("seed mismatch: old %d vs new %d — selections differ by construction", oldRep.Seed, newRep.Seed))
	}
	op, np := oldRep.Provenance, newRep.Provenance
	switch {
	case op == nil && np == nil:
		w = append(w, "neither report carries provenance (schema 2); treat wall-time shifts with suspicion")
	case op == nil || np == nil:
		w = append(w, "only one report carries provenance; treat wall-time shifts with suspicion")
	default:
		field := func(name, ov, nv string) {
			if ov != nv {
				w = append(w, fmt.Sprintf("provenance mismatch: %s old %q vs new %q", name, ov, nv))
			}
		}
		field("go_version", op.GoVersion, np.GoVersion)
		field("goos", op.GOOS, np.GOOS)
		field("goarch", op.GOARCH, np.GOARCH)
		field("gomaxprocs", strconv.Itoa(op.GOMAXPROCS), strconv.Itoa(np.GOMAXPROCS))
		field("num_cpu", strconv.Itoa(op.NumCPU), strconv.Itoa(np.NumCPU))
	}
	return w
}

func formatMetricValue(kind metricKind, v float64) string {
	switch kind {
	case kindMIPS:
		return fmt.Sprintf("%.1f M/s", v)
	case kindWall:
		return time.Duration(v).Round(10 * time.Microsecond).String()
	case kindRatio:
		return fmt.Sprintf("%.2fx", v)
	default:
		return fmt.Sprintf("%.3f%%", v*100)
	}
}

func formatRel(rel float64) string {
	if math.IsInf(rel, 0) {
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", rel*100)
}

func formatZ(z float64) string {
	if math.IsNaN(z) {
		return "-"
	}
	return fmt.Sprintf("%.1f", z)
}
