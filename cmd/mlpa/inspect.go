// The inspect subcommand renders a run journal recorded with -journal:
// the manifest, a stage wall-time breakdown aggregated from spans, the
// whole-program estimates with their per-point deviation tables, and
// any ground-truth deviation records the run produced.
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"mlpa/internal/obs"
	"mlpa/internal/report"
	"mlpa/internal/stats"
)

func runInspect(f *flags) error {
	if len(f.args) != 1 {
		return fmt.Errorf("usage: mlpa inspect <run.jsonl>")
	}
	jf, err := os.Open(f.args[0])
	if err != nil {
		return err
	}
	defer jf.Close()
	recs, err := obs.ReadJournal(jf)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("inspect: %s holds no journal records", f.args[0])
	}

	var manifest obs.Record
	var spans, points, estimates, selections, deviations []obs.Record
	var metrics obs.Record
	for _, rec := range recs {
		switch rec["ev"] {
		case "manifest":
			manifest = rec
		case "span":
			spans = append(spans, rec)
		case "point":
			points = append(points, rec)
		case "estimate":
			estimates = append(estimates, rec)
		case "selection":
			selections = append(selections, rec)
		case "deviation":
			deviations = append(deviations, rec)
		case "metrics":
			metrics = rec // the last one wins; setupObs writes it at exit
		}
	}

	printManifest(f.args[0], manifest, len(recs))
	printStageBreakdown(spans)
	printSelections(selections)
	printEstimates(estimates, points)
	printDeviationRecords(deviations)
	printJournalMetrics(metrics)
	return nil
}

// jnum reads a numeric journal field; encoding/json decodes every JSON
// number into float64, so this is the one conversion point.
func jnum(rec obs.Record, key string) float64 {
	v, _ := rec[key].(float64)
	return v
}

func jstr(rec obs.Record, key string) string {
	v, _ := rec[key].(string)
	return v
}

func printManifest(path string, m obs.Record, total int) {
	fmt.Printf("journal %s: %d records\n", path, total)
	if m == nil {
		fmt.Println("  (no manifest record — journal predates the manifest schema?)")
		return
	}
	fmt.Printf("  tool %s, command %q, schema %d\n", jstr(m, "tool"), jstr(m, "command"), int(jnum(m, "schema")))
	if s := jstr(m, "size"); s != "" {
		fmt.Printf("  size %s, seed %d\n", s, int64(jnum(m, "seed")))
	}
	if h := jstr(m, "config_hash"); h != "" {
		fmt.Printf("  config hash %s\n", h)
	}
}

// printStageBreakdown aggregates span records by span name: the stage
// wall-time profile of the run.
func printStageBreakdown(spans []obs.Record) {
	if len(spans) == 0 {
		return
	}
	type agg struct {
		name  string
		count int
		total time.Duration
		max   time.Duration
	}
	byName := map[string]*agg{}
	for _, s := range spans {
		name := jstr(s, "name")
		a := byName[name]
		if a == nil {
			a = &agg{name: name}
			byName[name] = a
		}
		d := time.Duration(jnum(s, "dur_ns"))
		a.count++
		a.total += d
		if d > a.max {
			a.max = d
		}
	}
	aggs := make([]*agg, 0, len(byName))
	for _, a := range byName {
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool { return aggs[i].total > aggs[j].total })
	t := report.NewTable("\nStage wall-time breakdown (from spans)",
		"Stage", "Calls", "Total", "Mean", "Max")
	for _, a := range aggs {
		t.AddRow(a.name,
			fmt.Sprintf("%d", a.count),
			fmt.Sprintf("%v", a.total.Round(time.Microsecond)),
			fmt.Sprintf("%v", (a.total/time.Duration(a.count)).Round(time.Microsecond)),
			fmt.Sprintf("%v", a.max.Round(time.Microsecond)))
	}
	fmt.Print(t.String())
}

func printSelections(sel []obs.Record) {
	if len(sel) == 0 {
		return
	}
	t := report.NewTable("\nPoint selections", "Benchmark", "Method", "K", "Points", "Detail")
	for _, s := range sel {
		k := "-"
		if _, ok := s["k"]; ok {
			k = fmt.Sprintf("%d", int(jnum(s, "k")))
		}
		t.AddRow(jstr(s, "benchmark"), jstr(s, "method"), k,
			fmt.Sprintf("%d", int(jnum(s, "points"))),
			stats.FormatPct(jnum(s, "detailed")))
	}
	fmt.Print(t.String())
}

// printEstimates renders each whole-program estimate followed by its
// per-point deviation table: every point's metrics next to how far its
// CPI sits from the weighted whole-program estimate, which is exactly
// the variance the weighted sum hides.
func printEstimates(estimates, points []obs.Record) {
	type key struct{ bench, method, cfg string }
	grouped := map[key][]obs.Record{}
	for _, p := range points {
		k := key{jstr(p, "benchmark"), jstr(p, "method"), jstr(p, "config")}
		grouped[k] = append(grouped[k], p)
	}
	for _, est := range estimates {
		k := key{jstr(est, "benchmark"), jstr(est, "method"), jstr(est, "config")}
		cpi := jnum(est, "cpi")
		fmt.Printf("\nestimate %s/%s config %s: CPI %.4f, L1 %s, L2 %s, detail %s, wall %v detailed + %v functional\n",
			k.bench, k.method, k.cfg, cpi,
			stats.FormatPct(jnum(est, "l1_hit")), stats.FormatPct(jnum(est, "l2_hit")),
			stats.FormatPct(jnum(est, "detailed_insts")/jnum(est, "total_insts")),
			time.Duration(jnum(est, "wall_detailed_ns")).Round(time.Microsecond),
			time.Duration(jnum(est, "wall_functional_ns")).Round(time.Microsecond))
		pts := grouped[k]
		delete(grouped, k)
		if len(pts) == 0 {
			continue
		}
		t := report.NewTable(fmt.Sprintf("per-point records, %s/%s config %s", k.bench, k.method, k.cfg),
			"Idx", "Range", "Weight", "Insts", "CPI", "CPI vs est", "L1", "L2", "Detailed Wall")
		for _, p := range pts {
			pcpi := jnum(p, "cpi")
			dev := 0.0
			if cpi != 0 {
				dev = (pcpi - cpi) / cpi
			}
			t.AddRow(
				fmt.Sprintf("%d", int(jnum(p, "index"))),
				fmt.Sprintf("[%d,%d)", uint64(jnum(p, "start")), uint64(jnum(p, "end"))),
				fmt.Sprintf("%.4f", jnum(p, "weight")),
				fmt.Sprintf("%d", uint64(jnum(p, "insts"))),
				fmt.Sprintf("%.4f", pcpi),
				fmt.Sprintf("%+.2f%%", 100*dev),
				stats.FormatPct(jnum(p, "l1_hit")),
				stats.FormatPct(jnum(p, "l2_hit")),
				fmt.Sprintf("%v", time.Duration(jnum(p, "wall_detailed_ns")).Round(time.Microsecond)))
		}
		fmt.Print(t.String())
	}
	// Point groups with no matching estimate (aborted runs) still print,
	// in sorted key order so the report is reproducible.
	orphans := make([]key, 0, len(grouped))
	for k := range grouped {
		orphans = append(orphans, k)
	}
	sort.Slice(orphans, func(i, j int) bool {
		a, b := orphans[i], orphans[j]
		if a.bench != b.bench {
			return a.bench < b.bench
		}
		if a.method != b.method {
			return a.method < b.method
		}
		return a.cfg < b.cfg
	})
	for _, k := range orphans {
		fmt.Printf("\n%d point records for %s/%s config %s with no estimate record (run aborted?)\n",
			len(grouped[k]), k.bench, k.method, k.cfg)
	}
}

func printDeviationRecords(devs []obs.Record) {
	if len(devs) == 0 {
		return
	}
	t := report.NewTable("\nGround-truth deviations", "Benchmark", "Method", "Config",
		"True CPI", "Est CPI", "CPI Dev", "L1 Dev", "L2 Dev")
	for _, d := range devs {
		t.AddRow(jstr(d, "benchmark"), jstr(d, "method"), jstr(d, "config"),
			fmt.Sprintf("%.4f", jnum(d, "true_cpi")),
			fmt.Sprintf("%.4f", jnum(d, "est_cpi")),
			stats.FormatPct(jnum(d, "cpi_dev")),
			stats.FormatPct(jnum(d, "l1_dev")),
			stats.FormatPct(jnum(d, "l2_dev")))
	}
	fmt.Print(t.String())
}

func printJournalMetrics(m obs.Record) {
	if m == nil {
		return
	}
	counters, _ := m["counters"].(map[string]any)
	if len(counters) == 0 {
		return
	}
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	t := report.NewTable("\nRun counters", "Counter", "Value")
	for _, name := range names {
		t.AddRow(name, fmt.Sprintf("%.0f", counters[name].(float64)))
	}
	fmt.Print(t.String())
}
