package main

import (
	"os"
	"testing"
)

// The CLI tests exercise each subcommand end-to-end at tiny scale with
// a benchmark subset, writing to the real stdout (discarded by `go
// test` unless -v).

func TestMain(m *testing.M) {
	// Silence subcommand output during tests.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err == nil {
		os.Stdout = devnull
	}
	code := m.Run()
	os.Stdout = old
	os.Exit(code)
}

func TestRunUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-args run succeeded")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command succeeded")
	}
	if err := run([]string{"fig3", "-size", "huge"}); err == nil {
		t.Error("bad size accepted")
	}
	if err := run([]string{"fig3", "-size", "tiny", "-rates", "warp"}); err == nil {
		t.Error("bad rates accepted")
	}
	if err := run([]string{"table2", "-size", "tiny", "-benchmarks", "gzip", "-config", "Z"}); err == nil {
		t.Error("bad config accepted")
	}
	if err := run([]string{"fig1", "-size", "tiny", "-bench", "bogus"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunFig1(t *testing.T) {
	if err := run([]string{"fig1", "-size", "tiny", "-bench", "lucas"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig3AndFig4(t *testing.T) {
	for _, cmd := range []string{"fig3", "fig4", "table3"} {
		if err := run([]string{cmd, "-size", "tiny", "-benchmarks", "gzip,swim"}); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
}

func TestRunTable2(t *testing.T) {
	if err := run([]string{"table2", "-size", "tiny", "-benchmarks", "gzip", "-config", "A"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPoints(t *testing.T) {
	if err := run([]string{"points", "-size", "tiny", "-bench", "swim"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMotivation(t *testing.T) {
	if err := run([]string{"motivation", "-size", "tiny", "-benchmarks", "gzip,art"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMeasuredRates(t *testing.T) {
	if err := run([]string{"fig3", "-size", "tiny", "-benchmarks", "gzip", "-rates", "measured"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"checkpoint", "-size", "tiny", "-bench", "crafty", "-method", "coasts", "-config", "A", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Error("no checkpoint files written")
	}
	if err := run([]string{"checkpoint", "-size", "tiny", "-bench", "crafty", "-method", "bogus"}); err == nil {
		t.Error("unknown method accepted")
	}
}
