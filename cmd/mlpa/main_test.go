package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"mlpa/internal/obs"
)

// The CLI tests exercise each subcommand end-to-end at tiny scale with
// a benchmark subset, writing to the real stdout (discarded by `go
// test` unless -v).

func TestMain(m *testing.M) {
	// Silence subcommand output during tests. Set MLPA_TEST_STDOUT=1 to
	// keep it (and the test framework's own failure output) visible.
	old := os.Stdout
	if os.Getenv("MLPA_TEST_STDOUT") == "" {
		if devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0); err == nil {
			os.Stdout = devnull
		}
	}
	code := m.Run()
	os.Stdout = old
	os.Exit(code)
}

func TestRunUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-args run succeeded")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command succeeded")
	}
	if err := run([]string{"fig3", "-size", "huge"}); err == nil {
		t.Error("bad size accepted")
	}
	if err := run([]string{"fig3", "-size", "tiny", "-rates", "warp"}); err == nil {
		t.Error("bad rates accepted")
	}
	if err := run([]string{"table2", "-size", "tiny", "-benchmarks", "gzip", "-config", "Z"}); err == nil {
		t.Error("bad config accepted")
	}
	if err := run([]string{"fig1", "-size", "tiny", "-bench", "bogus"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunFig1(t *testing.T) {
	if err := run([]string{"fig1", "-size", "tiny", "-bench", "lucas"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig3AndFig4(t *testing.T) {
	for _, cmd := range []string{"fig3", "fig4", "table3"} {
		if err := run([]string{cmd, "-size", "tiny", "-benchmarks", "gzip,swim"}); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
}

func TestRunTable2(t *testing.T) {
	if err := run([]string{"table2", "-size", "tiny", "-benchmarks", "gzip", "-config", "A"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPoints(t *testing.T) {
	if err := run([]string{"points", "-size", "tiny", "-bench", "swim"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMotivation(t *testing.T) {
	if err := run([]string{"motivation", "-size", "tiny", "-benchmarks", "gzip,art"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMeasuredRates(t *testing.T) {
	if err := run([]string{"fig3", "-size", "tiny", "-benchmarks", "gzip", "-rates", "measured"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"checkpoint", "-size", "tiny", "-bench", "crafty", "-method", "coasts", "-config", "A", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Error("no checkpoint files written")
	}
	if err := run([]string{"checkpoint", "-size", "tiny", "-bench", "crafty", "-method", "bogus"}); err == nil {
		t.Error("unknown method accepted")
	}
}

// TestRunJournalAndInspect records a full table2 run journal, checks
// its structure, and renders it back through inspect.
func TestRunJournalAndInspect(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.jsonl")
	metrics := filepath.Join(dir, "metrics.json")
	err := run([]string{"table2", "-size", "tiny", "-benchmarks", "gzip", "-config", "A",
		"-journal", journal, "-metrics", metrics})
	if err != nil {
		t.Fatal(err)
	}

	jf, err := os.Open(journal)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadJournal(jf)
	jf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty journal")
	}
	if recs[0]["ev"] != "manifest" || recs[0]["tool"] != "mlpa" || recs[0]["command"] != "table2" {
		t.Errorf("first record is not the manifest: %v", recs[0])
	}
	counts := map[any]int{}
	for _, rec := range recs {
		counts[rec["ev"]]++
	}
	for _, ev := range []string{"span", "point", "estimate", "selection", "deviation", "metrics"} {
		if counts[ev] == 0 {
			t.Errorf("journal has no %q records (got %v)", ev, counts)
		}
	}

	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["pipeline.points_executed"] == 0 || snap.Counters["emu.run_insts"] == 0 {
		t.Errorf("metrics snapshot missing pipeline/emu counters: %v", snap.Counters)
	}

	if err := run([]string{"inspect", journal}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := run([]string{"inspect"}); err == nil {
		t.Error("inspect without a journal path succeeded")
	}
	if err := run([]string{"inspect", filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Error("inspect of a missing file succeeded")
	}
}

// TestRunBench checks the machine-readable harness output.
func TestRunBench(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"bench", "-size", "tiny", "-benchmarks", "gzip", "-config", "A", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("bench report files: %v (err %v)", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != benchSchema || len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Benchmark != "gzip" {
		t.Fatalf("report shape: %+v", rep)
	}
	if rep.Provenance == nil || rep.Provenance.GoVersion == "" || rep.Provenance.GOMAXPROCS <= 0 {
		t.Fatalf("provenance incomplete: %+v", rep.Provenance)
	}
	if rep.Micro == nil || rep.Micro.EmuFastMIPS <= 0 || rep.Micro.EmuStepMIPS <= 0 ||
		rep.Micro.EmuSpeedup <= 0 || rep.Micro.PlanWall1 <= 0 || rep.Micro.PlanWall4 <= 0 {
		t.Fatalf("micro section incomplete: %+v", rep.Micro)
	}
	for _, workers := range microPlanWorkers {
		if rep.Micro.PlanWalls[strconv.Itoa(workers)] <= 0 {
			t.Errorf("plan wall curve missing workers=%d: %+v", workers, rep.Micro.PlanWalls)
		}
	}
	e := rep.Benchmarks[0]
	if e.WallSelection <= 0 || e.WallTruth["A"] <= 0 || len(e.Methods) != 3 {
		t.Errorf("bench entry incomplete: %+v", e)
	}
	for _, m := range e.Methods {
		if m.EstCPI <= 0 || m.TrueCPI <= 0 || m.WallEstimate <= 0 {
			t.Errorf("bench method %s/%s has empty measurements: %+v", m.Method, m.Config, m)
		}
	}
}

// TestRunProfilingFlags drives the -cpuprofile/-memprofile path.
func TestRunProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.prof"), filepath.Join(dir, "mem.prof")
	if err := run([]string{"points", "-size", "tiny", "-bench", "gzip", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err %v)", f, err)
		}
	}
}

// TestRunAnalyze drives the static-analysis subcommand against a suite
// benchmark, an assembled source file, and a malformed program.
func TestRunAnalyze(t *testing.T) {
	if err := run([]string{"analyze", "-size", "tiny", "-bench", "gzip", "-dynamic"}); err != nil {
		t.Fatalf("analyze gzip: %v", err)
	}
	dir := t.TempDir()
	good := filepath.Join(dir, "good.s")
	src := `
    addi r1, r0, 5
loop:
    addi r2, r2, 1
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
`
	if err := os.WriteFile(good, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"analyze", good}); err != nil {
		t.Fatalf("analyze %s: %v", good, err)
	}
	// A program whose verification fails must make the command fail.
	bad := filepath.Join(dir, "bad.s")
	badSrc := `
    addi r1, r0, 5
    jmp  skip
    addi r9, r9, 1
skip:
    halt
`
	if err := os.WriteFile(bad, []byte(badSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"analyze", bad}); err == nil {
		t.Error("analyze accepted a program with an unreachable block")
	}
	if err := run([]string{"analyze", "-bench", "bogus"}); err == nil {
		t.Error("analyze accepted an unknown benchmark")
	}
	if err := run([]string{"analyze", filepath.Join(dir, "missing.s")}); err == nil {
		t.Error("analyze accepted a missing file")
	}
}
