package main

import (
	"fmt"
	"strings"

	"mlpa/internal/ckpt"
	"mlpa/internal/config"
	"mlpa/internal/experiments"
	"mlpa/internal/pipeline"
	"mlpa/internal/stats"
)

// Warm policy the `ckpt save` flow bakes into a set. Finite warmup is
// what gives checkpoints something to skip: each point's warm start
// then sits deep inside the program, and restoring it replaces the
// functional fast-forward that position would otherwise cost. `ckpt
// exec` never consults these constants — it replays under the policy
// stored in the set's manifest, so a set built by any producer
// executes consistently.
const (
	ckptSaveWarmup   = 1 << 16
	ckptSaveLeadIn   = 512
	ckptSaveRunAhead = 0
)

// runCkpt dispatches the portable-checkpoint subcommands:
//
//	mlpa ckpt save -dir d [-bench -method -size -seed]  build + persist a set
//	mlpa ckpt info -dir d                               verify + describe a set
//	mlpa ckpt exec -dir d [-config A,B -workers N]      estimate from a set
func runCkpt(f *flags, sub string) error {
	if sub == "" {
		return fmt.Errorf("usage: mlpa ckpt <save|exec|info> -dir <dir> [flags]")
	}
	if f.dir == "" {
		return fmt.Errorf("mlpa ckpt %s: -dir is required", sub)
	}
	switch sub {
	case "save":
		return runCkptSave(f)
	case "info":
		return runCkptInfo(f)
	case "exec":
		return runCkptExec(f)
	}
	return fmt.Errorf("unknown ckpt subcommand %q (want save, exec or info)", sub)
}

// ckptExecOptions is the execution policy a set prescribes: the warm
// policy from its manifest plus this invocation's runtime knobs.
func ckptExecOptions(f *flags, pol ckpt.Policy) pipeline.ExecOptions {
	return pipeline.ExecOptions{
		Warmup:       pol.Warmup,
		DetailLeadIn: pol.DetailLeadIn,
		RunAhead:     pol.RunAhead,
		Workers:      f.workers,
		Ctx:          f.ctx,
		Obs:          f.rt,
	}
}

func runCkptSave(f *flags) error {
	o, err := f.options()
	if err != nil {
		return err
	}
	o.Benchmarks = []string{f.benchmark}
	st, err := experiments.NewStudy(o)
	if err != nil {
		return err
	}
	plan, err := st.Plans[0].ByMethod(f.method)
	if err != nil {
		return err
	}
	p, err := st.Plans[0].Spec.Program(o.Size)
	if err != nil {
		return err
	}
	pol := ckpt.Policy{Warmup: ckptSaveWarmup, DetailLeadIn: ckptSaveLeadIn, RunAhead: ckptSaveRunAhead}
	set, err := pipeline.BuildCheckpointSet(p, plan, ckptExecOptions(f, pol))
	if err != nil {
		return err
	}
	if err := set.Save(f.dir); err != nil {
		return err
	}
	fmt.Printf("saved %d checkpoints for %s/%s to %s (%.1f KiB, program %s)\n",
		len(set.States), f.benchmark, f.method, f.dir,
		float64(set.ApproxBytes())/1024, set.ProgramHash[:12])
	return nil
}

func runCkptInfo(f *flags) error {
	set, err := ckpt.Load(f.dir)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint set %s\n", f.dir)
	fmt.Printf("  program   %s (%s, data %d B)\n", set.ProgramName, set.ProgramHash[:12], set.DataSize)
	fmt.Printf("  plan      %s/%s: %d points over %d insts\n",
		set.Plan.Benchmark, set.Plan.Method, len(set.Plan.Points), set.Plan.TotalInsts)
	fmt.Printf("  policy    warmup %d, lead-in %d, run-ahead %d\n",
		set.Policy.Warmup, set.Policy.DetailLeadIn, set.Policy.RunAhead)
	fmt.Printf("  size      %.1f KiB across %d states\n", float64(set.ApproxBytes())/1024, len(set.States))
	for _, s := range set.States {
		pt := set.Plan.Points[s.Index]
		fmt.Printf("  point %3d  insts %d, pc %d, live int %#x fp %#x mem %v, pages %d -> [%d,%d)\n",
			s.Index, s.Insts, s.PC, s.LiveIn.Int, s.LiveIn.FP, s.LiveIn.Mem, len(s.Pages), pt.Start, pt.End)
	}
	fmt.Println("  integrity verified")
	return nil
}

func runCkptExec(f *flags) error {
	set, err := ckpt.Load(f.dir)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d checkpoints for %s/%s (program %s)\n",
		len(set.States), set.Plan.Benchmark, set.Plan.Method, set.ProgramHash[:12])
	for _, cfgName := range strings.Split(f.configs, ",") {
		cfg, err := config.ByName(strings.TrimSpace(cfgName))
		if err != nil {
			return err
		}
		opts := ckptExecOptions(f, set.Policy)
		opts.Checkpoints = set
		est, err := pipeline.ExecutePlan(set.Program, set.Plan, cfg, opts)
		if err != nil {
			return err
		}
		truth, _, err := pipeline.FullDetailed(set.Program, cfg)
		if err != nil {
			return err
		}
		cpiDev, l1Dev, l2Dev := pipeline.Deviations(est, truth)
		fmt.Printf("config %s: CPI est %.4f (true %.4f, %s off), L1 %s off, L2 %s off, wall %v\n",
			cfg.Name, est.CPI, truth.CPI(), stats.FormatPct(cpiDev),
			stats.FormatPct(l1Dev), stats.FormatPct(l2Dev), est.Wall().Round(1e6))
	}
	return nil
}
