package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mlpa/internal/bench"
	"mlpa/internal/emu"
	"mlpa/internal/isa"
	"mlpa/internal/prog"
	"mlpa/internal/staticanalysis"
	"mlpa/internal/staticanalysis/dataflow"
)

// runAnalyze implements `mlpa analyze`: print the verifier report, CFG,
// dominator tree, and natural-loop forest for a suite benchmark
// (-bench) or an assembly file given as a positional argument. With
// -dataflow it additionally prints the register dataflow solution
// (per-block live sets, statically-dead writes, the whole-program
// region summary) and cross-checks the static model against the
// emulator's predecoded register slots. With -dynamic it also runs the
// loop profiler and cross-checks every dynamically-observed structure
// against the static forest, which is the same comparison COASTS
// journals during boundary collection.
func runAnalyze(f *flags) error {
	p, err := analyzeTarget(f)
	if err != nil {
		return err
	}
	a := staticanalysis.Analyze(p)

	fmt.Printf("program %s: %d instructions\n\n", p.Name, len(p.Code))
	fmt.Print(a.Summary())
	fmt.Printf("\nCFG:\n%s", a.CFG)
	fmt.Printf("\nDominator tree:\n%s", a.Dom)
	fmt.Printf("\nLoop forest:\n%s", a.Loops)

	if !a.Report.OK() {
		// Still render everything above, but make the failure the exit
		// status so scripts can gate on it.
		return fmt.Errorf("verification failed: %d diagnostic(s)", len(a.Report.Diags))
	}
	if f.dataflow {
		rep, err := dataflowReport(p)
		if err != nil {
			return err
		}
		fmt.Print(rep)
	}
	if f.dynamic {
		return analyzeDynamic(p, a)
	}
	return nil
}

// dataflowReport renders the register dataflow solution: per-block
// live/gen/kill sets with memory flags, the statically-dead writes, a
// whole-program region summary, and the result of cross-checking the
// static model against the emulator's predecoded register slots. It
// returns an error — failing the command — if the cross-check finds a
// disagreement between the two models.
func dataflowReport(p *prog.Program) (string, error) {
	d := dataflow.For(p)
	var sb strings.Builder
	sb.WriteString("\nDataflow:\n")
	for id := range d.CFG.Blocks {
		start, end := d.BlockRange(id)
		mem := ""
		if d.Loads[id] {
			mem += "L"
		}
		if d.Stores[id] {
			mem += "S"
		}
		if mem != "" {
			mem = " mem=" + mem
		}
		note := ""
		if !d.CFG.Reachable[id] {
			note = " (unreachable)"
		}
		fmt.Fprintf(&sb, "  B%d [%d,%d): liveIn=%s liveOut=%s gen=%s kill=%s%s%s\n",
			id, start, end, d.LiveIn[id], d.LiveOut[id], d.Gen[id], d.Kill[id], mem, note)
	}
	dead := d.DeadWrites()
	if len(dead) == 0 {
		sb.WriteString("  dead writes: none\n")
	} else {
		fmt.Fprintf(&sb, "  dead writes: %d\n", len(dead))
		for _, dw := range dead {
			fmt.Fprintf(&sb, "    pc %d: %s  %s\n", dw.PC, dw.Reg, p.Code[dw.PC])
		}
	}
	if halt := firstHalt(p); halt > 0 {
		rs, err := d.RegionSummary(0, halt)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "  region [0,%d): liveIn=%s memLiveIn=%v defs=%s blocks=%d insts=%d\n",
			halt, rs.LiveIn, rs.LiveInMem, rs.Defs, len(rs.Blocks), rs.Insts)
	}
	fmt.Fprintf(&sb, "  def sites: %d\n", len(d.Reach.Sites))
	if err := emu.CrossCheckDataflow(p); err != nil {
		return "", fmt.Errorf("predecode cross-check: %w", err)
	}
	sb.WriteString("  predecode cross-check: ok\n")
	return sb.String(), nil
}

// firstHalt returns the PC of the program's first halt instruction, or
// 0 if there is none (or it is the entry instruction).
func firstHalt(p *prog.Program) int64 {
	for pc, in := range p.Code {
		if in.Op == isa.OpHalt {
			return int64(pc)
		}
	}
	return 0
}

// analyzeTarget resolves the program to analyze: a positional .s file
// takes precedence over the -bench suite benchmark.
func analyzeTarget(f *flags) (*prog.Program, error) {
	if len(f.args) > 0 {
		path := f.args[0]
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		return prog.Assemble(name, string(src))
	}
	spec, err := bench.ByName(f.benchmark)
	if err != nil {
		return nil, err
	}
	size, err := f.suiteSize()
	if err != nil {
		return nil, err
	}
	return spec.Program(size)
}

// analyzeDynamic runs the dynamic loop profiler to completion and
// prints the static/dynamic agreement table.
func analyzeDynamic(p *prog.Program, a *staticanalysis.Analysis) error {
	m := emu.New(p, 0)
	lp := emu.NewLoopProfiler(m)
	m.Branch = lp.OnBranch
	if _, err := m.RunToCompletion(1 << 40); err != nil {
		return fmt.Errorf("dynamic profile: %w", err)
	}
	lp.Finish()
	all := lp.Structures()
	heads := make([]int64, len(all))
	depths := make([]int, len(all))
	for i, s := range all {
		heads[i] = s.Head
		depths[i] = s.Depth
	}
	fmt.Printf("\nDynamic cross-check (%d structures over %d instructions):\n", len(all), m.Insts)
	disagreements := 0
	for i, ag := range a.Loops.CheckDynamic(heads, depths) {
		verdict := "ok"
		if !ag.InStatic {
			verdict = "NOT A STATIC LOOP"
			disagreements++
		} else if ag.DynamicDepth > ag.StaticDepth {
			verdict = "DEEPER THAN STATIC"
			disagreements++
		}
		fmt.Printf("  head=%-6d iters=%-8d dynDepth=%d staticDepth=%d  %s\n",
			ag.Head, all[i].Iterations, ag.DynamicDepth, ag.StaticDepth, verdict)
	}
	if disagreements > 0 {
		return fmt.Errorf("dynamic profile disagrees with static forest on %d structure(s)", disagreements)
	}
	fmt.Println("  static and dynamic loop structure agree")
	return nil
}
