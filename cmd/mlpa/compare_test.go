package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureReport builds a schema-3 report with plausible numbers across
// the metric families -compare tracks.
func fixtureReport() *benchReport {
	rep := &benchReport{
		Schema: benchSchema,
		Date:   "2026-08-01",
		Size:   "small",
		Seed:   42,
		Micro: &microReport{
			EmuFastMIPS:   120,
			EmuHookedMIPS: 80,
			EmuStepMIPS:   30,
			KMeansWall:    250_000_000,
			PlanWall1:     46_000_000,
			PlanWall4:     108_000_000,
			PlanWalls: map[string]int64{
				"1": 46_000_000, "2": 70_000_000, "4": 108_000_000, "8": 150_000_000,
			},
			CkptSaveNs:    900_000,
			CkptRestoreNs: 400_000,
			SweepSeries: []sweepSample{
				{Config: "A", ScratchNs: 50_000_000, CkptNs: 16_000_000},
				{Config: "B", ScratchNs: 52_000_000, CkptNs: 17_000_000},
				{Config: "A-slowmem", ScratchNs: 51_000_000, CkptNs: 16_500_000},
				{Config: "A-smallL2", ScratchNs: 50_500_000, CkptNs: 16_200_000},
			},
			SweepBuildNs: 30_000_000,
			SweepSpeedup: 2.1,
		},
		Provenance: captureProvenance(),
	}
	for _, name := range []string{"art", "crafty", "gcc", "gzip", "lucas", "swim"} {
		entry := benchEntry{Benchmark: name, WallTruth: map[string]int64{"A": 2_000_000_000}}
		for _, method := range []string{"coasts", "offline", "online"} {
			entry.Methods = append(entry.Methods, benchMethod{
				Method: method, Config: "A", Points: 12,
				TrueCPI: 1.5, EstCPI: 1.52, CPIDev: 0.013,
				WallEstimate: 400_000_000,
			})
		}
		rep.Benchmarks = append(rep.Benchmarks, entry)
	}
	return rep
}

func writeReport(t *testing.T, dir, name string, rep *benchReport) string {
	t.Helper()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareIdenticalReports: comparing a report against itself exits
// clean with zero regressions — the acceptance criterion's happy path.
func TestCompareIdenticalReports(t *testing.T) {
	dir := t.TempDir()
	rep := fixtureReport()
	oldPath := writeReport(t, dir, "old.json", rep)
	newPath := writeReport(t, dir, "new.json", rep)
	if err := run([]string{"bench", "-compare", oldPath, newPath}); err != nil {
		t.Fatalf("identical reports flagged: %v", err)
	}
	findings, warnings := compareReports(rep, rep)
	if len(warnings) != 0 {
		t.Errorf("identical reports warned: %v", warnings)
	}
	for _, c := range findings {
		if c.Verdict != "ok" {
			t.Errorf("%s verdict = %s on identical reports", c.Metric, c.Verdict)
		}
	}
}

// TestCompareInjectedMIPSDrop: a synthetic 20% emulator-throughput drop
// must fail the gate and name the regressed metric — the acceptance
// criterion's unhappy path.
func TestCompareInjectedMIPSDrop(t *testing.T) {
	dir := t.TempDir()
	oldRep := fixtureReport()
	newRep := fixtureReport()
	newRep.Micro.EmuFastMIPS *= 0.80
	oldPath := writeReport(t, dir, "old.json", oldRep)
	newPath := writeReport(t, dir, "new.json", newRep)
	err := run([]string{"bench", "-compare", oldPath, newPath})
	if err == nil {
		t.Fatal("20% MIPS drop passed the gate")
	}
	if !strings.Contains(err.Error(), "micro.emu_fast_mips") {
		t.Errorf("gate failure does not name the regressed metric: %v", err)
	}
}

// TestCompareVerdictDirections: the gate is direction-aware — MIPS
// regress downward, walls and deviations upward, and shifts in the
// good direction are improvements, not failures.
func TestCompareVerdictDirections(t *testing.T) {
	oldRep := fixtureReport()
	newRep := fixtureReport()
	newRep.Micro.EmuFastMIPS *= 1.30 // faster emulator: improvement
	newRep.Micro.KMeansWall = int64(float64(newRep.Micro.KMeansWall) * 1.40)
	for i := range newRep.Benchmarks {
		for j := range newRep.Benchmarks[i].Methods {
			newRep.Benchmarks[i].Methods[j].CPIDev *= 2 // accuracy collapse
		}
	}
	findings, _ := compareReports(oldRep, newRep)
	byMetric := make(map[string]compareFinding, len(findings))
	for _, c := range findings {
		byMetric[c.Metric] = c
	}
	if got := byMetric["micro.emu_fast_mips"].Verdict; got != "improvement" {
		t.Errorf("faster MIPS verdict = %q, want improvement", got)
	}
	if got := byMetric["micro.kmeans_wall"].Verdict; got != "regression" {
		t.Errorf("slower kmeans verdict = %q, want regression", got)
	}
	if got := byMetric["cpi_dev[coasts/A]"].Verdict; got != "regression" {
		t.Errorf("doubled cpi_dev verdict = %q, want regression", got)
	}
	if got := byMetric["wall_estimate[coasts/A]"].Verdict; got != "ok" {
		t.Errorf("unchanged wall verdict = %q, want ok", got)
	}
	// Small shifts under the thresholds never gate.
	mild := fixtureReport()
	mild.Micro.EmuFastMIPS *= 0.95 // -5% < the 10% MIPS gate
	findings, _ = compareReports(oldRep, mild)
	for _, c := range findings {
		if c.Metric == "micro.emu_fast_mips" && c.Verdict != "ok" {
			t.Errorf("5%% MIPS dip verdict = %q, want ok", c.Verdict)
		}
	}
}

// TestComparePlanWallSchemaBridge: a schema-2 report (legacy 1/4
// fields, no curve) still compares against a schema-3 report on the
// worker counts both cover, with a schema warning.
func TestComparePlanWallSchemaBridge(t *testing.T) {
	oldRep := fixtureReport()
	oldRep.Schema = 2
	oldRep.Provenance = nil
	oldRep.Micro.PlanWalls = nil
	newRep := fixtureReport()
	findings, warnings := compareReports(oldRep, newRep)
	var keys []string
	for _, c := range findings {
		if strings.HasPrefix(c.Metric, "micro.plan_wall") {
			keys = append(keys, c.Metric)
		}
	}
	want := []string{"micro.plan_wall[workers=1]", "micro.plan_wall[workers=4]"}
	if strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Errorf("plan wall metrics = %v, want %v", keys, want)
	}
	var schemaWarned, provWarned bool
	for _, w := range warnings {
		if strings.Contains(w, "schema mismatch") {
			schemaWarned = true
		}
		if strings.Contains(w, "provenance") {
			provWarned = true
		}
	}
	if !schemaWarned || !provWarned {
		t.Errorf("missing schema/provenance warnings: %v", warnings)
	}
}

// TestCompareCkptSchemaBridge: a schema-4 baseline (no checkpoint
// micros) still compares cleanly against a schema-5 report — the
// checkpoint metrics simply do not appear — and once both sides carry
// them, a collapsed sweep speedup gates while an improved one does
// not.
func TestCompareCkptSchemaBridge(t *testing.T) {
	dir := t.TempDir()
	oldRep := fixtureReport()
	oldRep.Schema = 4
	oldRep.Micro.CkptSaveNs = 0
	oldRep.Micro.CkptRestoreNs = 0
	oldRep.Micro.SweepSeries = nil
	oldRep.Micro.SweepBuildNs = 0
	oldRep.Micro.SweepSpeedup = 0
	newRep := fixtureReport()
	oldPath := writeReport(t, dir, "old.json", oldRep)
	newPath := writeReport(t, dir, "new.json", newRep)
	if err := run([]string{"bench", "-compare", oldPath, newPath}); err != nil {
		t.Fatalf("schema-4 baseline rejected against schema-5 report: %v", err)
	}
	findings, warnings := compareReports(oldRep, newRep)
	for _, c := range findings {
		if strings.Contains(c.Metric, "ckpt") || strings.Contains(c.Metric, "sweep") {
			t.Errorf("metric %s compared against a baseline that cannot carry it", c.Metric)
		}
	}
	var schemaWarned bool
	for _, w := range warnings {
		schemaWarned = schemaWarned || strings.Contains(w, "schema mismatch")
	}
	if !schemaWarned {
		t.Errorf("no schema warning for 4-vs-5 comparison: %v", warnings)
	}

	// Both sides schema 5: halving the sweep speedup is a regression
	// that names the metric; doubling it is an improvement, not a gate
	// failure.
	slower := fixtureReport()
	slower.Micro.SweepSpeedup = fixtureReport().Micro.SweepSpeedup / 2
	for i := range slower.Micro.SweepSeries {
		slower.Micro.SweepSeries[i].CkptNs *= 3
	}
	err := run([]string{"bench", "-compare",
		writeReport(t, dir, "base.json", fixtureReport()),
		writeReport(t, dir, "slower.json", slower)})
	if err == nil {
		t.Fatal("halved sweep speedup passed the gate")
	}
	if !strings.Contains(err.Error(), "micro.sweep_speedup") {
		t.Errorf("gate failure does not name micro.sweep_speedup: %v", err)
	}
	if !strings.Contains(err.Error(), "micro.sweep_wall[ckpt]") {
		t.Errorf("gate failure does not name micro.sweep_wall[ckpt]: %v", err)
	}

	faster := fixtureReport()
	faster.Micro.SweepSpeedup = fixtureReport().Micro.SweepSpeedup * 2
	findings, _ = compareReports(fixtureReport(), faster)
	for _, c := range findings {
		if c.Metric == "micro.sweep_speedup" && c.Verdict != "improvement" {
			t.Errorf("doubled sweep speedup verdict = %q, want improvement", c.Verdict)
		}
	}
}

// TestCompareProvenanceMismatchWarnsOnly: different hosts warn but do
// not gate.
func TestCompareProvenanceMismatchWarnsOnly(t *testing.T) {
	dir := t.TempDir()
	oldRep := fixtureReport()
	oldRep.Provenance = &benchProvenance{
		GoVersion: "go1.0", GOOS: "plan9", GOARCH: "mips", GOMAXPROCS: 64, NumCPU: 64,
	}
	oldPath := writeReport(t, dir, "old.json", oldRep)
	newPath := writeReport(t, dir, "new.json", fixtureReport())
	if err := run([]string{"bench", "-compare", oldPath, newPath}); err != nil {
		t.Fatalf("provenance mismatch gated: %v", err)
	}
	_, warnings := compareReports(oldRep, fixtureReport())
	if len(warnings) < 4 {
		t.Errorf("expected per-field provenance warnings, got %v", warnings)
	}
}

// TestCompareBadInputs: malformed invocations and reports fail cleanly.
func TestCompareBadInputs(t *testing.T) {
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json", fixtureReport())
	if err := run([]string{"bench", "-compare", good}); err == nil {
		t.Error("single-argument -compare accepted")
	}
	if err := run([]string{"bench", "-compare", good, filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing report accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"bench", "-compare", good, bad}); err == nil {
		t.Error("malformed report accepted")
	}
	ancient := fixtureReport()
	ancient.Schema = 1
	ancientPath := writeReport(t, dir, "ancient.json", ancient)
	if err := run([]string{"bench", "-compare", ancientPath, good}); err == nil {
		t.Error("schema-1 report accepted")
	}
}
