package main

import (
	"os"
	"path/filepath"
	"testing"

	"mlpa/internal/prog"
)

// dataflowGoldenASM is a small verified program exercising every piece
// of the dataflow report: a loop with live-through registers, memory
// traffic in the exit block, and two statically-dead writes.
const dataflowGoldenASM = `
    addi r1, r0, 10
    addi r2, r0, 3
    addi r4, r0, 64
loop:
    add  r3, r1, r2
    addi r1, r1, -1
    bne  r1, r0, loop
    st   r3, (r4)
    ld   r6, (r4)
    addi r5, r0, 7
    halt
`

// dataflowGolden is the exact report dataflowReport must render for
// dataflowGoldenASM.
const dataflowGolden = `
Dataflow:
  B0 [0,3): liveIn={} liveOut={r1 r2 r4} gen={} kill={r1 r2 r4}
  B1 [3,6): liveIn={r1 r2 r4} liveOut={r1 r2 r3 r4} gen={r1 r2} kill={r1 r3}
  B2 [6,10): liveIn={r3 r4} liveOut={} gen={r3 r4} kill={r5 r6} mem=LS
  dead writes: 2
    pc 7: {r6}  ld r6, 0(r4)
    pc 8: {r5}  addi r5, r0, 7
  region [0,9): liveIn={} memLiveIn=true defs={r1 r2 r3 r4 r5 r6} blocks=3 insts=9
  def sites: 7
  predecode cross-check: ok
`

func TestDataflowReportGolden(t *testing.T) {
	p, err := prog.Assemble("df", dataflowGoldenASM)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dataflowReport(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != dataflowGolden {
		t.Errorf("dataflow report drifted from golden:\n got: %q\nwant: %q", got, dataflowGolden)
	}
}

func TestRunAnalyzeDataflow(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "df.s")
	if err := os.WriteFile(file, []byte(dataflowGoldenASM), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"analyze", "-dataflow", file}); err != nil {
		t.Fatal(err)
	}
	// The flag composes with -dynamic and with suite benchmarks.
	if err := run([]string{"analyze", "-dataflow", "-dynamic", file}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"analyze", "-dataflow", "-size", "tiny", "-bench", "gzip"}); err != nil {
		t.Fatal(err)
	}
}
