// The bench subcommand is the machine-readable companion to table2: it
// times selection, ground truth and sampled execution per benchmark and
// writes everything to BENCH_<date>.json, so runs are diffable across
// commits without scraping table output.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"

	"mlpa/internal/bench"
	"mlpa/internal/experiments"
	"mlpa/internal/parallel"
	"mlpa/internal/pipeline"
)

// benchSchema is the BENCH_<date>.json document version. Schema 2
// added the substrate micro-benchmarks (see micro.go); schema 3 added
// the provenance block and the ExecutePlan worker curve; schema 4
// added the superblock-kernel throughput and the chunked-scheduler
// partition counts; schema 5 added the checkpoint round-trip micros
// and the scratch-vs-checkpoint config-sweep series. Every earlier
// field is retained unchanged, so `mlpa bench -compare` works across
// the whole BENCH_*.json trajectory.
const benchSchema = 5

// gateParallelSlack is the measurement-noise allowance of the
// -gate-parallel check: workers=4 must not be slower than workers=1 by
// more than this fraction. The walls compared are each best-of-three
// (see runMicro), so the slack only absorbs residual host jitter, not
// a real scheduling loss like the 2.3x regression this gate pins down.
const gateParallelSlack = 0.05

// benchReport is the BENCH_<date>.json document.
type benchReport struct {
	Schema     int              `json:"schema"`
	Date       string           `json:"date"`
	Size       string           `json:"size"`
	Seed       int64            `json:"seed"`
	Configs    []string         `json:"configs"`
	Provenance *benchProvenance `json:"provenance,omitempty"`
	WallTotal  int64            `json:"wall_total_ns"`
	Micro      *microReport     `json:"micro"`
	Benchmarks []benchEntry     `json:"benchmarks"`
}

// benchProvenance records where a report's numbers came from, so two
// reports are interpretable before they are compared: wall times from
// different machines or toolchains shift for reasons that are not
// regressions. `mlpa bench -compare` warns on any mismatch instead of
// gating on it.
type benchProvenance struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	GitRevision string `json:"git_revision,omitempty"`
}

// captureProvenance snapshots the running toolchain and host. The git
// revision comes from the binary's embedded VCS stamp when the build
// carried one (`go build`/`go run` from a clean checkout).
func captureProvenance() *benchProvenance {
	p := &benchProvenance{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				p.GitRevision = s.Value
			}
		}
	}
	return p
}

type benchEntry struct {
	Benchmark     string `json:"benchmark"`
	TotalInsts    uint64 `json:"total_insts"`
	WallSelection int64  `json:"wall_selection_ns"`
	// WallTruth maps config name to the full detailed run's wall time.
	WallTruth map[string]int64 `json:"wall_truth_ns"`
	Methods   []benchMethod    `json:"methods"`
}

type benchMethod struct {
	Method           string  `json:"method"`
	Config           string  `json:"config"`
	Points           int     `json:"points"`
	DetailedFraction float64 `json:"detailed_fraction"`
	TrueCPI          float64 `json:"true_cpi"`
	EstCPI           float64 `json:"est_cpi"`
	CPIDev           float64 `json:"cpi_dev"`
	L1Dev            float64 `json:"l1_dev"`
	L2Dev            float64 `json:"l2_dev"`
	WallEstimate     int64   `json:"wall_estimate_ns"`
}

func runBench(f *flags) error {
	if f.compare {
		return runCompare(f)
	}
	o, err := f.options()
	if err != nil {
		return err
	}
	configs, err := f.cpuConfigs()
	if err != nil {
		return err
	}
	rep := &benchReport{
		Schema:     benchSchema,
		Date:       time.Now().Format("2006-01-02"),
		Size:       f.size,
		Seed:       f.seed,
		Provenance: captureProvenance(),
	}
	if rep.Micro, err = runMicro(f); err != nil {
		return fmt.Errorf("bench micro: %w", err)
	}
	for _, cfg := range configs {
		rep.Configs = append(rep.Configs, cfg.Name)
	}

	// One single-benchmark study per entry, so selection wall time is
	// attributable per benchmark rather than amortized over the suite.
	names := o.Benchmarks
	if len(names) == 0 {
		names = bench.Names()
	}

	// Benchmarks are independent: fan the suite out over the worker
	// budget, with each worker covering every configuration and method
	// for its benchmark (selection, ground truth, plan execution). A
	// per-benchmark state cache shares fast-forward work across configs
	// and methods. Entries land in slot order, so the report is
	// byte-identical for every -workers value (wall fields excepted).
	t0 := time.Now()
	entries := make([]benchEntry, len(names))
	err = parallel.ForEachOpt(f.ctx, f.workers, len(names), func(ctx context.Context, i int) error {
		name := names[i]
		bo := o
		bo.Benchmarks = []string{name}
		// The suite level already fans out; keep each plan's points
		// sequential so the machine is not oversubscribed.
		bo.Workers = 1
		bo.Ctx = ctx
		selStart := time.Now()
		st, err := experiments.NewStudy(bo)
		if err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}
		entry := benchEntry{
			Benchmark:     name,
			WallSelection: time.Since(selStart).Nanoseconds(),
			WallTruth:     make(map[string]int64),
		}
		pl := st.Plans[0]
		p, err := pl.Spec.Program(o.Size)
		if err != nil {
			return err
		}
		cache := parallel.NewStateCache(p, 0, f.rt.Metrics())
		for _, cfg := range configs {
			truth, truthWall, err := pipeline.FullDetailed(p, cfg)
			if err != nil {
				return fmt.Errorf("bench %s config %s: %w", name, cfg.Name, err)
			}
			entry.WallTruth[cfg.Name] = truthWall.Nanoseconds()
			for _, method := range experiments.Methods() {
				plan, err := pl.ByMethod(method)
				if err != nil {
					return err
				}
				est, err := pipeline.ExecutePlan(p, plan, cfg, pipeline.ExecOptions{
					Warmup: st.Opts.Warmup, DetailLeadIn: st.Opts.DetailLeadIn,
					Obs: f.rt, Workers: 1, Ctx: ctx, Cache: cache,
				})
				if err != nil {
					return fmt.Errorf("bench %s/%s config %s: %w", name, method, cfg.Name, err)
				}
				cpiDev, l1Dev, l2Dev := pipeline.Deviations(est, truth)
				entry.Methods = append(entry.Methods, benchMethod{
					Method:           method,
					Config:           cfg.Name,
					Points:           est.Points,
					DetailedFraction: est.DetailedFraction(),
					TrueCPI:          truth.CPI(),
					EstCPI:           est.CPI,
					CPIDev:           cpiDev,
					L1Dev:            l1Dev,
					L2Dev:            l2Dev,
					WallEstimate:     est.Wall().Nanoseconds(),
				})
				entry.TotalInsts = est.TotalInsts
			}
		}
		entries[i] = entry
		return nil
	}, parallel.ForEachOptions{Metrics: f.rt.Metrics(), Stage: f.rt.Progress().Stage("bench.benchmarks")})
	if err != nil {
		return err
	}
	rep.Benchmarks = entries
	for _, entry := range entries {
		fmt.Printf("bench %s: selection %v, truth %v (config %s)\n",
			entry.Benchmark, time.Duration(entry.WallSelection).Round(time.Millisecond),
			time.Duration(entry.WallTruth[configs[0].Name]).Round(time.Millisecond), configs[0].Name)
	}
	rep.WallTotal = time.Since(t0).Nanoseconds()

	out := fmt.Sprintf("BENCH_%s.json", rep.Date)
	if f.dir != "" {
		if err := os.MkdirAll(f.dir, 0o755); err != nil {
			return err
		}
		out = filepath.Join(f.dir, out)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks x %d configs)\n", out, len(rep.Benchmarks), len(configs))
	if f.gateParallel {
		w1, w4 := rep.Micro.PlanWall1, rep.Micro.PlanWall4
		if w4 > int64(float64(w1)*(1+gateParallelSlack)) {
			return fmt.Errorf("bench: parallel gate failed: plan wall workers=4 %v exceeds workers=1 %v (allowance %.0f%%)",
				time.Duration(w4).Round(time.Millisecond), time.Duration(w1).Round(time.Millisecond), 100*gateParallelSlack)
		}
		fmt.Printf("parallel gate ok: plan wall workers=4 %v <= workers=1 %v\n",
			time.Duration(w4).Round(time.Millisecond), time.Duration(w1).Round(time.Millisecond))
	}
	return nil
}
