// Package mlpa is the public API of the multi-level phase analysis
// framework — a from-scratch reproduction of "Multi-level Phase
// Analysis for Sampling Simulation" (Li, Zhang, Chen, Zang; DATE
// 2013).
//
// The package exposes three layers:
//
//   - The sampling methods themselves: fine-grained SimPoint
//     (SelectSimPoint), the paper's coarse-grained COASTS
//     (SelectCoasts) and the two-level multi-level framework
//     (SelectMultiLevel), all producing sampling Plans over programs
//     for the built-in mini ISA.
//   - The simulation substrate: the functional emulator and the
//     detailed out-of-order model with the paper's Table I machine
//     configurations (ConfigA, ConfigB), plus plan execution that
//     yields weighted CPI and cache hit-rate estimates
//     (Execute, GroundTruth).
//   - The evaluation harness: the synthetic SPEC2000-model benchmark
//     suite (Suite, BenchmarkByName) and the experiment runners that
//     regenerate every figure and table of the paper (NewStudy, Fig1,
//     and the Study methods Fig3, Fig4, Table2, Table3).
//
// See examples/quickstart for the three-method tour, and DESIGN.md for
// the substitutions this reproduction makes for the paper's
// SimpleScalar/SPEC2000 environment.
package mlpa

import (
	"mlpa/internal/bench"
	"mlpa/internal/coasts"
	"mlpa/internal/config"
	"mlpa/internal/cpu"
	"mlpa/internal/emu"
	"mlpa/internal/experiments"
	"mlpa/internal/multilevel"
	"mlpa/internal/phasepred"
	"mlpa/internal/pipeline"
	"mlpa/internal/prog"
	"mlpa/internal/sampling"
	"mlpa/internal/simpoint"
	"mlpa/internal/smarts"
	"mlpa/internal/vli"
)

// Program construction and execution substrate.
type (
	// Program is an executable for the mini ISA.
	Program = prog.Program
	// Builder constructs Programs with structured control flow.
	Builder = prog.Builder
	// Machine is the functional emulator state.
	Machine = emu.Machine
	// MachineConfig is a detailed-simulator machine configuration
	// (Table I).
	MachineConfig = cpu.Config
	// DetailedResult is the outcome of a detailed simulation region.
	DetailedResult = cpu.Result
)

// Sampling vocabulary.
type (
	// Plan is a sampling recipe: simulation points with weights.
	Plan = sampling.Plan
	// Point is one selected simulation point.
	Point = sampling.Point
	// TimeModel converts instruction splits into simulation time.
	TimeModel = sampling.TimeModel
	// Estimate is the weighted outcome of executing a Plan.
	Estimate = pipeline.Estimate
	// ExecOptions controls plan execution (warmup policy).
	ExecOptions = pipeline.ExecOptions
)

// Method configurations.
type (
	// SimPointConfig parameterizes fine-grained SimPoint.
	SimPointConfig = simpoint.Config
	// CoastsConfig parameterizes the coarse-grained first level.
	CoastsConfig = coasts.Config
	// MultiLevelConfig parameterizes the two-level framework.
	MultiLevelConfig = multilevel.Config
	// MultiLevelReport exposes the intermediate artifacts of a
	// multi-level selection.
	MultiLevelReport = multilevel.Report
)

// Benchmark suite.
type (
	// BenchmarkSpec describes one synthetic SPEC2000-model benchmark.
	BenchmarkSpec = bench.Spec
	// SuiteSize selects the suite scale preset.
	SuiteSize = bench.Size
)

// Suite scale presets.
const (
	SizeTiny  = bench.SizeTiny
	SizeSmall = bench.SizeSmall
	SizeRef   = bench.SizeRef
)

// Experiment harness.
type (
	// StudyOptions configures an experiment study.
	StudyOptions = experiments.Options
	// Study holds selected plans for the suite and generates the
	// paper's figures and tables.
	Study = experiments.Study
	// SpeedupResult is a Figure 3 / Figure 4 dataset.
	SpeedupResult = experiments.SpeedupResult
	// Table2Result holds Table II deviation cells.
	Table2Result = experiments.Table2Result
	// Table3Row is one Table III line.
	Table3Row = experiments.Table3Row
	// Fig1Result holds the Figure 1 phase trajectories.
	Fig1Result = experiments.Fig1Result
)

// NewBuilder returns a Program builder (see Builder).
func NewBuilder(name string) *Builder { return prog.NewBuilder(name) }

// Assemble parses textual assembly into a Program.
func Assemble(name, src string) (*Program, error) { return prog.Assemble(name, src) }

// NewMachine creates a functional emulator for p. memWords <= 0
// selects a default data-memory size.
func NewMachine(p *Program, memWords int64) *Machine { return emu.New(p, memWords) }

// ConfigA returns Table I Part A, the base machine configuration.
func ConfigA() MachineConfig { return config.BaseA() }

// ConfigB returns Table I Part B, the sensitivity configuration.
func ConfigB() MachineConfig { return config.SensitivityB() }

// SimpleScalarRates is the paper-calibrated simulation time model.
var SimpleScalarRates = sampling.SimpleScalarRates

// SelectSimPoint runs the fine-grained SimPoint baseline on p.
func SelectSimPoint(p *Program, cfg SimPointConfig) (*Plan, error) {
	plan, _, _, err := simpoint.Select(p, cfg)
	return plan, err
}

// SelectCoasts runs the paper's coarse-grained first-level sampling.
func SelectCoasts(p *Program, cfg CoastsConfig) (*Plan, error) {
	plan, _, _, err := coasts.Select(p, cfg)
	return plan, err
}

// SelectMultiLevel runs the complete two-level framework.
func SelectMultiLevel(p *Program, cfg MultiLevelConfig) (*Plan, *MultiLevelReport, error) {
	return multilevel.Select(p, cfg)
}

// Execute performs the sampled simulation a plan describes under a
// machine configuration and returns weighted metric estimates.
func Execute(p *Program, plan *Plan, cfg MachineConfig, opts ExecOptions) (*Estimate, error) {
	return pipeline.ExecutePlan(p, plan, cfg, opts)
}

// GroundTruth runs the whole program through the detailed simulator.
func GroundTruth(p *Program, cfg MachineConfig) (DetailedResult, error) {
	res, _, err := pipeline.FullDetailed(p, cfg)
	return res, err
}

// Deviations compares an estimate against ground truth, returning the
// relative errors of CPI, L1 hit rate and L2 hit rate.
func Deviations(est *Estimate, truth DetailedResult) (cpi, l1, l2 float64) {
	return pipeline.Deviations(est, truth)
}

// Suite returns the synthetic SPEC2000-model benchmark catalog.
func Suite() []*BenchmarkSpec { return bench.Suite() }

// BenchmarkByName returns one suite benchmark.
func BenchmarkByName(name string) (*BenchmarkSpec, error) { return bench.ByName(name) }

// FineInterval returns the fine-grained interval length (the paper's
// "10M instructions") at a suite scale.
func FineInterval(size SuiteSize) uint64 { return bench.FineInterval(size) }

// NewStudy selects all three methods' plans over the suite.
func NewStudy(o StudyOptions) (*Study, error) { return experiments.NewStudy(o) }

// Fig1 reproduces Figure 1 for a benchmark (the paper uses lucas).
func Fig1(o StudyOptions, benchmark string) (*Fig1Result, error) {
	return experiments.Fig1(o, benchmark)
}

// Extension methods and flows beyond the paper's three core methods.

type (
	// VLIConfig parameterizes the variable-length-interval variant
	// (SPM-style boundaries).
	VLIConfig = vli.Config
	// SmartsConfig parameterizes systematic statistical sampling.
	SmartsConfig = smarts.Config
	// Checkpoints holds per-point architectural snapshots.
	Checkpoints = pipeline.Checkpoints
	// PhasePredictor predicts the next interval's phase at run time.
	PhasePredictor = phasepred.Predictor
)

// SelectVLI runs the variable-length-interval fine-grained method.
func SelectVLI(p *Program, cfg VLIConfig) (*Plan, error) {
	plan, _, _, err := vli.Select(p, cfg)
	return plan, err
}

// SelectSmarts builds a SMARTS-style systematic sampling plan.
func SelectSmarts(p *Program, cfg SmartsConfig) (*Plan, error) {
	return smarts.Select(p, cfg)
}

// MakeCheckpoints snapshots the architectural state ahead of every
// simulation point in one functional pass.
func MakeCheckpoints(p *Program, plan *Plan) (*Checkpoints, error) {
	return pipeline.MakeCheckpoints(p, plan)
}

// ExecuteFromCheckpoints replays a plan's points from their snapshots
// under a machine configuration.
func ExecuteFromCheckpoints(p *Program, ck *Checkpoints, cfg MachineConfig) (*Estimate, error) {
	return pipeline.ExecuteFromCheckpoints(p, ck, cfg)
}

// NewLastPhasePredictor returns the last-phase baseline predictor.
func NewLastPhasePredictor() PhasePredictor { return phasepred.NewLast() }

// NewMarkovPhasePredictor returns an order-k Markov phase predictor.
func NewMarkovPhasePredictor(order int) PhasePredictor { return phasepred.NewMarkov(order) }

// NewRLEMarkovPhasePredictor returns the run-length-encoded Markov
// phase predictor.
func NewRLEMarkovPhasePredictor() PhasePredictor { return phasepred.NewRLEMarkov() }
