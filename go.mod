module mlpa

go 1.22
