// Benchmarks regenerating every table and figure of the paper, plus
// micro-benchmarks of the substrates. Each experiment benchmark
// reports the headline numbers of its artifact via b.ReportMetric, so
// `go test -bench . -benchmem` doubles as the reproduction harness at
// benchmark scale (suite size "small"; run cmd/mlpa -size ref for the
// full-scale tables).
package mlpa_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mlpa"
	"mlpa/internal/bbv"
	"mlpa/internal/bench"
	"mlpa/internal/coasts"
	"mlpa/internal/config"
	"mlpa/internal/cpu"
	"mlpa/internal/emu"
	"mlpa/internal/experiments"
	"mlpa/internal/kmeans"
	"mlpa/internal/linalg"
	"mlpa/internal/multilevel"
	"mlpa/internal/parallel"
	"mlpa/internal/phase"
	"mlpa/internal/phasepred"
	"mlpa/internal/pipeline"
	"mlpa/internal/prog"
	"mlpa/internal/simpoint"
	"mlpa/internal/smarts"
	"mlpa/internal/vli"
)

// The experiment benchmarks share one study (point selection for the
// whole suite) built lazily at small scale.
var (
	studyOnce sync.Once
	studyVal  *experiments.Study
	studyErr  error
)

func sharedStudy(b *testing.B) *experiments.Study {
	b.Helper()
	studyOnce.Do(func() {
		studyVal, studyErr = experiments.NewStudy(experiments.Options{
			Size: bench.SizeSmall,
			Seed: 1,
		})
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return studyVal
}

// BenchmarkFig1PhaseTrajectory regenerates Figure 1: the fine- and
// coarse-grained BBV trajectories of lucas with selected points.
// Reported metrics: trajectory roughness (fine should be an order of
// magnitude rougher than coarse).
func BenchmarkFig1PhaseTrajectory(b *testing.B) {
	var res *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig1(experiments.Options{Size: bench.SizeTiny, Seed: 1}, "lucas")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(experiments.Roughness(res.Fine), "fine-roughness")
	b.ReportMetric(experiments.Roughness(res.Coarse), "coarse-roughness")
	b.ReportMetric(float64(len(res.Fine)), "fine-intervals")
	b.ReportMetric(float64(len(res.Coarse)), "coarse-intervals")
}

// BenchmarkFig3CoastsSpeedup regenerates Figure 3: per-benchmark and
// geometric-mean speedup of COASTS over 10M SimPoint (paper: 6.78x).
func BenchmarkFig3CoastsSpeedup(b *testing.B) {
	st := sharedStudy(b)
	b.ResetTimer()
	var res *experiments.SpeedupResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = st.Fig3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GeoMean, "geomean-speedup-x")
}

// BenchmarkFig4MultiLevelSpeedup regenerates Figure 4: speedup of the
// multi-level framework over 10M SimPoint (paper: 14.04x, gcc ~0.97x).
func BenchmarkFig4MultiLevelSpeedup(b *testing.B) {
	st := sharedStudy(b)
	b.ResetTimer()
	var res *experiments.SpeedupResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = st.Fig4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GeoMean, "geomean-speedup-x")
	for _, r := range res.Rows {
		if r.Benchmark == "gcc" {
			b.ReportMetric(r.Speedup, "gcc-speedup-x")
		}
	}
}

// BenchmarkTable3PointStatistics regenerates Table III: mean interval
// size, sample count, detailed and functional fractions per method.
func BenchmarkTable3PointStatistics(b *testing.B) {
	st := sharedStudy(b)
	b.ResetTimer()
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = st.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Method {
		case experiments.MethodCoasts:
			b.ReportMetric(r.MeanSampleNumber, "coasts-samples")
			b.ReportMetric(r.MeanFunctionalPct*100, "coasts-functional-pct")
		case experiments.MethodSimPoint:
			b.ReportMetric(r.MeanSampleNumber, "simpoint-samples")
			b.ReportMetric(r.MeanFunctionalPct*100, "simpoint-functional-pct")
		case experiments.MethodMultiLevel:
			b.ReportMetric(r.MeanDetailPct*100, "multilevel-detail-pct")
		}
	}
}

// table2Bench regenerates one configuration column of Table II at tiny
// scale (ground-truth detailed runs dominate the cost).
func table2Bench(b *testing.B, cfg cpu.Config) {
	o := experiments.Options{Size: bench.SizeTiny, Seed: 1}
	st, err := experiments.NewStudy(o)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		res, err = st.Table2([]cpu.Config{cfg})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, method := range experiments.Methods() {
		cell := res.Cells["CPI"][method][cfg.Name]
		b.ReportMetric(cell.Avg*100, method+"-cpi-avg-dev-pct")
	}
}

// BenchmarkTable2DeviationA regenerates Table II under configuration A.
func BenchmarkTable2DeviationA(b *testing.B) { table2Bench(b, config.BaseA()) }

// BenchmarkTable2DeviationB regenerates Table II under configuration B.
func BenchmarkTable2DeviationB(b *testing.B) { table2Bench(b, config.SensitivityB()) }

// Substrate micro-benchmarks.

// BenchmarkFunctionalEmulator measures the fast-forward engine rate.
func BenchmarkFunctionalEmulator(b *testing.B) {
	spec, err := bench.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		m := emu.New(p, 0)
		n, err := m.RunToCompletion(1 << 30)
		if err != nil {
			b.Fatal(err)
		}
		insts += n
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "M-inst/s")
}

// emuThroughputBench measures raw execution rate (machine construction
// hoisted out, Reset per iteration) on a loop-nest kernel, for one of
// the three engine variants. The fast/step pair quantifies the
// predecoded batched loop's speedup over the per-instruction
// reference; hooked shows the cost of an attached Branch hook.
func emuThroughputBench(b *testing.B, run func(m *emu.Machine) (uint64, error)) {
	p := prog.ExampleTripleNested(100, 40, 30)
	m := emu.New(p, 0)
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		m.Reset()
		n, err := run(m)
		if err != nil {
			b.Fatal(err)
		}
		insts += n
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "M-inst/s")
}

// BenchmarkEmulatorFastPath measures the default Run loop — predecoded
// block batching with superblock-trace dispatch on hot heads.
func BenchmarkEmulatorFastPath(b *testing.B) {
	emuThroughputBench(b, func(m *emu.Machine) (uint64, error) {
		return m.RunToCompletion(1 << 40)
	})
}

// BenchmarkEmulatorBlockBatched measures the same loop with superblock
// traces disabled — the PR-4 engine — so the trace dispatcher's win is
// an A/B on identical hardware in every run.
func BenchmarkEmulatorBlockBatched(b *testing.B) {
	emuThroughputBench(b, func(m *emu.Machine) (uint64, error) {
		m.NoTraces = true
		return m.RunToCompletion(1 << 40)
	})
}

// BenchmarkEmulatorSuperblock measures trace dispatch on a branchy
// diamond-loop kernel whose per-iteration path crosses four basic
// blocks — the shape superblock chaining exists for (the loop-nest
// kernel above is mostly back-to-back loop latches).
func BenchmarkEmulatorSuperblock(b *testing.B) {
	p := prog.ExampleDiamondLoop(200000)
	m := emu.New(p, 0)
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		m.Reset()
		n, err := m.RunToCompletion(1 << 40)
		if err != nil {
			b.Fatal(err)
		}
		insts += n
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "M-inst/s")
}

// BenchmarkEmulatorHooked measures Run with a Branch hook attached
// (the profiled fast-forward mode).
func BenchmarkEmulatorHooked(b *testing.B) {
	emuThroughputBench(b, func(m *emu.Machine) (uint64, error) {
		var taken uint64
		m.Branch = func(from, to int64) { taken++ }
		return m.RunToCompletion(1 << 40)
	})
}

// BenchmarkEmulatorStepLoop measures the per-instruction Step loop the
// fast path is differentially tested against.
func BenchmarkEmulatorStepLoop(b *testing.B) {
	emuThroughputBench(b, func(m *emu.Machine) (uint64, error) {
		var n uint64
		for !m.Halted {
			if _, err := m.Step(); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	})
}

// BenchmarkKMeansCluster measures one fixed-k clustering of a
// BBV-shaped matrix (the pruned Lloyd + k-means++ inner loops).
func BenchmarkKMeansCluster(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	points := make([][]float64, 2000)
	for i := range points {
		row := make([]float64, 32)
		for j := 0; j < 8; j++ {
			row[rng.Intn(len(row))] = rng.Float64()
		}
		linalg.NormalizeL1(row)
		points[i] = row
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kmeans.Cluster(points, 12, kmeans.Options{Seed: 9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetailedSimulator measures the out-of-order model rate
// (the sim-outorder stand-in, configuration A).
func BenchmarkDetailedSimulator(b *testing.B) {
	spec, err := bench.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		m := emu.New(p, 0)
		sim := cpu.MustNew(config.BaseA())
		res, err := sim.Run(m, 200_000)
		if err != nil {
			b.Fatal(err)
		}
		insts += res.Insts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "M-inst/s")
}

// BenchmarkBBVCollection measures fixed-interval profiling (emulation
// plus per-interval projection).
func BenchmarkBBVCollection(b *testing.B) {
	spec, err := bench.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	proj := bbv.MustNewProjector(p.NumBlocks(), bbv.DefaultDims, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phase.CollectFixed(p, proj, bench.FineInterval(bench.SizeTiny)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKMeansBIC measures the clustering stage with BIC model
// selection over Kmax=30, SimPoint-style.
func BenchmarkKMeansBIC(b *testing.B) {
	spec, err := bench.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	proj := bbv.MustNewProjector(p.NumBlocks(), bbv.DefaultDims, 1)
	tr, err := phase.CollectFixed(p, proj, bench.FineInterval(bench.SizeTiny))
	if err != nil {
		b.Fatal(err)
	}
	vecs := tr.Vectors()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kmeans.Best(vecs, 30, kmeans.Options{Seed: 1, SampleCap: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimPointSelect measures the full fine-grained pipeline.
func BenchmarkSimPointSelect(b *testing.B) {
	spec, err := bench.ByName("lucas")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	cfg := simpoint.Config{IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 30, Seed: 1, SampleCap: 2000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := simpoint.Select(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoastsSelect measures the coarse-grained pipeline
// (boundary profiling, iteration metrics, Kmax=3 clustering).
func BenchmarkCoastsSelect(b *testing.B) {
	spec, err := bench.ByName("lucas")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := coasts.Select(p, coasts.Config{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiLevelSelect measures the complete two-level pipeline.
func BenchmarkMultiLevelSelect(b *testing.B) {
	spec, err := bench.ByName("lucas")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	cfg := multilevel.Config{
		Coarse: coasts.Config{Seed: 1},
		Fine:   simpoint.Config{IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 30, Seed: 1, SampleCap: 2000},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := multilevel.Select(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanExecution measures executing a multi-level plan
// (functional fast-forward plus detailed points with warmup).
func BenchmarkPlanExecution(b *testing.B) {
	spec, err := bench.ByName("lucas")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	plan, _, err := multilevel.Select(p, multilevel.Config{
		Coarse: coasts.Config{Seed: 1},
		Fine:   simpoint.Config{IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 30, Seed: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	opts := pipeline.ExecOptions{Warmup: 10 * bench.FineInterval(bench.SizeTiny), DetailLeadIn: 512}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.ExecutePlan(p, plan, config.BaseA(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanExecutionWorkers sweeps the same multi-level plan
// across the ExecutePlan worker curve, so the cost-aware chunk
// scheduler's parallel-is-never-a-loss property is measurable from
// `go test -bench` alone. Each worker count gets a fresh state cache —
// the cold-cache case the scheduler's startup model assumes.
func BenchmarkPlanExecutionWorkers(b *testing.B) {
	spec, err := bench.ByName("lucas")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	plan, _, err := multilevel.Select(p, multilevel.Config{
		Coarse: coasts.Config{Seed: 1},
		Fine:   simpoint.Config{IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 30, Seed: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := pipeline.ExecOptions{
				Warmup:       10 * bench.FineInterval(bench.SizeTiny),
				DetailLeadIn: 512,
				Workers:      workers,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts.Cache = parallel.NewStateCache(p, 0, nil)
				if _, err := pipeline.ExecutePlan(p, plan, config.BaseA(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblationColdStart contrasts cold-start point execution
// (the paper's plain fast-forward) with the warmed policy, reporting
// both CPI deviations.
func BenchmarkAblationColdStart(b *testing.B) {
	spec, err := bench.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	truth, err := mlpa.GroundTruth(p, config.BaseA())
	if err != nil {
		b.Fatal(err)
	}
	var coldDev, warmDev float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold, err := pipeline.ExecutePlan(p, plan, config.BaseA(), pipeline.ExecOptions{})
		if err != nil {
			b.Fatal(err)
		}
		warm, err := pipeline.ExecutePlan(p, plan, config.BaseA(), pipeline.ExecOptions{
			Warmup: 10 * bench.FineInterval(bench.SizeTiny), DetailLeadIn: 512,
		})
		if err != nil {
			b.Fatal(err)
		}
		coldDev, _, _ = pipeline.Deviations(cold, truth)
		warmDev, _, _ = pipeline.Deviations(warm, truth)
	}
	b.ReportMetric(coldDev*100, "cold-cpi-dev-pct")
	b.ReportMetric(warmDev*100, "warm-cpi-dev-pct")
}

// BenchmarkAblationEarlySP contrasts the EarlySP variant's last-point
// position against standard SimPoint's.
func BenchmarkAblationEarlySP(b *testing.B) {
	spec, err := bench.ByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	base := simpoint.Config{IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 30, Seed: 1}
	early := base
	early.EarlySP = true
	var stdPos, earlyPos float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		std, _, _, err := simpoint.Select(p, base)
		if err != nil {
			b.Fatal(err)
		}
		ep, _, _, err := simpoint.Select(p, early)
		if err != nil {
			b.Fatal(err)
		}
		stdPos = std.LastPosition()
		earlyPos = ep.LastPosition()
	}
	b.ReportMetric(stdPos*100, "standard-lastpos-pct")
	b.ReportMetric(earlyPos*100, "earlysp-lastpos-pct")
}

// BenchmarkVLISelect measures the variable-length-interval variant.
func BenchmarkVLISelect(b *testing.B) {
	spec, err := bench.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	cfg := vli.Config{TargetLen: bench.FineInterval(bench.SizeTiny), Kmax: 30, Seed: 1, SampleCap: 2000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := vli.Select(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmartsSelect measures systematic statistical sampling plan
// construction.
func BenchmarkSmartsSelect(b *testing.B) {
	spec, err := bench.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	fine := bench.FineInterval(bench.SizeTiny)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smarts.Select(p, smarts.Config{UnitLen: fine, Period: fine * 25}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointRoundTrip measures checkpoint creation plus
// replay of a plan's points under configuration A.
func BenchmarkCheckpointRoundTrip(b *testing.B) {
	spec, err := bench.ByName("crafty")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	plan, _, _, err := coasts.Select(p, coasts.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ck, err := pipeline.MakeCheckpoints(p, plan)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pipeline.ExecuteFromCheckpoints(p, ck, config.BaseA()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhasePrediction measures runtime phase predictors over the
// suite's coarse phase sequences, reporting accuracies.
func BenchmarkPhasePrediction(b *testing.B) {
	spec, err := bench.ByName("equake")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	_, tr, km, err := coasts.Select(p, coasts.Config{Seed: 1, Kmax: 8})
	if err != nil {
		b.Fatal(err)
	}
	seq, err := phasepred.PhaseSequence(tr, km)
	if err != nil {
		b.Fatal(err)
	}
	var last, markov, rle float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = phasepred.Evaluate(seq, phasepred.NewLast())
		markov = phasepred.Evaluate(seq, phasepred.NewMarkov(2))
		rle = phasepred.Evaluate(seq, phasepred.NewRLEMarkov())
	}
	b.ReportMetric(last*100, "last-accuracy-pct")
	b.ReportMetric(markov*100, "markov2-accuracy-pct")
	b.ReportMetric(rle*100, "rle-accuracy-pct")
}
