// Public-API tests: exercise the facade end-to-end the way a
// downstream user would, without touching internal packages.
package mlpa_test

import (
	"strings"
	"testing"

	"mlpa"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	spec, err := mlpa.BenchmarkByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	program, err := spec.Program(mlpa.SizeTiny)
	if err != nil {
		t.Fatal(err)
	}
	fine := mlpa.FineInterval(mlpa.SizeTiny)

	sp, err := mlpa.SelectSimPoint(program, mlpa.SimPointConfig{IntervalLen: fine, Kmax: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	co, err := mlpa.SelectCoasts(program, mlpa.CoastsConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ml, rep, err := mlpa.SelectMultiLevel(program, mlpa.MultiLevelConfig{
		Coarse: mlpa.CoastsConfig{Seed: 1},
		Fine:   mlpa.SimPointConfig{IntervalLen: fine, Kmax: 10, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || len(rep.CoarsePlan.Points) == 0 {
		t.Fatal("empty multi-level report")
	}

	truth, err := mlpa.GroundTruth(program, mlpa.ConfigA())
	if err != nil {
		t.Fatal(err)
	}
	opts := mlpa.ExecOptions{Warmup: 1 << 62, DetailLeadIn: 512}
	for _, plan := range []*mlpa.Plan{sp, co, ml} {
		est, err := mlpa.Execute(program, plan, mlpa.ConfigA(), opts)
		if err != nil {
			t.Fatalf("%s: %v", plan.Method, err)
		}
		cpiDev, l1Dev, _ := mlpa.Deviations(est, truth)
		if cpiDev > 0.6 || l1Dev > 0.2 {
			t.Errorf("%s deviations: cpi %v, l1 %v", plan.Method, cpiDev, l1Dev)
		}
	}

	// Time model ordering: multi-level at least as fast as SimPoint
	// for this early-phase benchmark.
	tm := mlpa.SimpleScalarRates
	if tm.Speedup(ml, sp) < 1 {
		t.Errorf("multi-level speedup %v < 1", tm.Speedup(ml, sp))
	}
}

func TestPublicAPIExtensions(t *testing.T) {
	spec, err := mlpa.BenchmarkByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	program, err := spec.Program(mlpa.SizeTiny)
	if err != nil {
		t.Fatal(err)
	}
	fine := mlpa.FineInterval(mlpa.SizeTiny)

	vliPlan, err := mlpa.SelectVLI(program, mlpa.VLIConfig{TargetLen: fine, Kmax: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := vliPlan.Validate(); err != nil {
		t.Fatal(err)
	}

	smPlan, err := mlpa.SelectSmarts(program, mlpa.SmartsConfig{UnitLen: fine, Period: fine * 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(smPlan.Points) < 2 {
		t.Fatalf("smarts points = %d", len(smPlan.Points))
	}

	ck, err := mlpa.MakeCheckpoints(program, smPlan)
	if err != nil {
		t.Fatal(err)
	}
	est, err := mlpa.ExecuteFromCheckpoints(program, ck, mlpa.ConfigB())
	if err != nil {
		t.Fatal(err)
	}
	if est.CPI <= 0 {
		t.Errorf("checkpointed estimate CPI = %v", est.CPI)
	}

	// Phase predictors through the facade.
	for _, p := range []mlpa.PhasePredictor{
		mlpa.NewLastPhasePredictor(),
		mlpa.NewMarkovPhasePredictor(2),
		mlpa.NewRLEMarkovPhasePredictor(),
	} {
		p.Observe(0)
		p.Observe(1)
		if got := p.Predict(); got < 0 {
			t.Errorf("%s cold after observations", p.Name())
		}
	}
}

func TestPublicAPIProgramConstruction(t *testing.T) {
	// Builder path.
	b := mlpa.NewBuilder("api")
	b.Li(1, 100)
	b.Label("l")
	b.Addi(2, 2, 1)
	b.Addi(1, 1, -1)
	b.Bne(1, 0, "l")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mlpa.NewMachine(p, 0)
	if _, err := m.RunToCompletion(1 << 20); err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[2] != 100 {
		t.Errorf("r2 = %d", m.IntRegs[2])
	}

	// Assembler path.
	p2, err := mlpa.Assemble("api2", "addi r1, r0, 5\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p2.NumBlocks() == 0 {
		t.Error("no blocks")
	}
	if _, err := mlpa.Assemble("bad", "junk"); err == nil || !strings.Contains(err.Error(), "unknown mnemonic") {
		t.Errorf("assembler error = %v", err)
	}
}

func TestPublicAPISuiteAndConfigs(t *testing.T) {
	if len(mlpa.Suite()) != 26 {
		t.Errorf("suite size = %d, want 26 (SPEC2000)", len(mlpa.Suite()))
	}
	a, b := mlpa.ConfigA(), mlpa.ConfigB()
	if a.Name != "A" || b.Name != "B" {
		t.Errorf("config names %q, %q", a.Name, b.Name)
	}
	if a.Caches.L2.TotalBytes >= b.Caches.L2.TotalBytes {
		t.Error("config B should have the larger L2")
	}
}
