// Quickstart: sample one benchmark with all three methods and compare
// estimated metrics against ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mlpa"
)

func main() {
	// Pick a benchmark from the synthetic SPEC2000-model suite.
	spec, err := mlpa.BenchmarkByName("equake")
	if err != nil {
		log.Fatal(err)
	}
	program, err := spec.Program(mlpa.SizeSmall)
	if err != nil {
		log.Fatal(err)
	}
	fine := mlpa.FineInterval(mlpa.SizeSmall)

	// Select simulation points with each method.
	simpointPlan, err := mlpa.SelectSimPoint(program, mlpa.SimPointConfig{
		IntervalLen: fine, // the paper's "10M instructions" at this scale
		Kmax:        30,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	coastsPlan, err := mlpa.SelectCoasts(program, mlpa.CoastsConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	multiPlan, _, err := mlpa.SelectMultiLevel(program, mlpa.MultiLevelConfig{
		Coarse: mlpa.CoastsConfig{Seed: 1},
		Fine:   mlpa.SimPointConfig{IntervalLen: fine, Kmax: 30, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: the full program through the detailed simulator.
	truth, err := mlpa.GroundTruth(program, mlpa.ConfigA())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d instructions, true CPI %.4f\n\n", spec.Name, truth.Insts, truth.CPI())

	// Execute each plan: fast-forward functionally, simulate points in
	// detail, combine by weight.
	opts := mlpa.ExecOptions{Warmup: 10 * fine, DetailLeadIn: 512}
	tm := mlpa.SimpleScalarRates
	fmt.Printf("%-12s %6s %9s %11s %10s %10s\n",
		"method", "points", "CPI est", "CPI error", "detail%", "speedup")
	for _, plan := range []*mlpa.Plan{coastsPlan, simpointPlan, multiPlan} {
		est, err := mlpa.Execute(program, plan, mlpa.ConfigA(), opts)
		if err != nil {
			log.Fatal(err)
		}
		cpiDev, _, _ := mlpa.Deviations(est, truth)
		fmt.Printf("%-12s %6d %9.4f %10.2f%% %9.3f%% %9.2fx\n",
			plan.Method, len(plan.Points), est.CPI, cpiDev*100,
			plan.DetailedFraction()*100,
			tm.Speedup(plan, simpointPlan))
	}
	fmt.Println("\nspeedups are modeled against the SimPoint plan under SimpleScalar rates;")
	fmt.Println("see cmd/mlpa for the full figure and table reproductions.")
}
