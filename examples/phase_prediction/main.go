// phase_prediction demonstrates the dynamic-optimization side of phase
// analysis: a runtime system tracking coarse phase IDs can predict the
// next interval's phase and reconfigure ahead of time. It compares a
// last-phase predictor, Markov predictors, and the run-length-encoded
// Markov predictor over the suite's coarse phase sequences.
//
//	go run ./examples/phase_prediction
package main

import (
	"fmt"
	"log"

	"mlpa/internal/bench"
	"mlpa/internal/coasts"
	"mlpa/internal/phasepred"
	"mlpa/internal/report"
)

func main() {
	table := report.NewTable(
		"Runtime phase prediction accuracy over coarse phase sequences",
		"Benchmark", "Intervals", "Transitions", "last-phase", "markov-1", "markov-2", "rle-markov")

	for _, name := range []string{"gzip", "gcc", "mcf", "equake", "fma3d", "lucas", "art"} {
		spec, err := bench.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		program, err := spec.Program(bench.SizeTiny)
		if err != nil {
			log.Fatal(err)
		}
		// Coarse phase classification with a free cluster budget, as a
		// phase tracker would maintain.
		_, trace, km, err := coasts.Select(program, coasts.Config{Seed: 1, Kmax: 8})
		if err != nil {
			log.Fatal(err)
		}
		seq, err := phasepred.PhaseSequence(trace, km)
		if err != nil {
			log.Fatal(err)
		}
		eval := func(p phasepred.Predictor) string {
			return fmt.Sprintf("%.1f%%", phasepred.Evaluate(seq, p)*100)
		}
		table.AddRow(name,
			fmt.Sprintf("%d", len(seq)),
			fmt.Sprintf("%d", phasepred.Transitions(seq)),
			eval(phasepred.NewLast()),
			eval(phasepred.NewMarkov(1)),
			eval(phasepred.NewMarkov(2)),
			eval(phasepred.NewRLEMarkov()))
	}
	fmt.Print(table.String())
	fmt.Println("\nthe suite interleaves phases per iteration, so last-phase prediction")
	fmt.Println("fails at every rotation while Markov predictors learn the pattern;")
	fmt.Println("history order matters where the pattern has structure (gcc, lucas).")
}
