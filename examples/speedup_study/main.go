// speedup_study runs the paper's headline evaluation over the whole
// synthetic suite: Figure 3 (COASTS vs SimPoint), Figure 4
// (multi-level vs SimPoint) and Table III (simulation-point
// statistics), using the SimpleScalar-calibrated time model.
//
//	go run ./examples/speedup_study          # small scale, ~1 minute
//	go run ./examples/speedup_study tiny     # fastest
package main

import (
	"fmt"
	"log"
	"os"

	"mlpa"
	"mlpa/internal/report"
	"mlpa/internal/stats"
)

func main() {
	size := mlpa.SizeSmall
	if len(os.Args) > 1 && os.Args[1] == "tiny" {
		size = mlpa.SizeTiny
	}

	fmt.Println("selecting simulation points for all three methods over the suite...")
	study, err := mlpa.NewStudy(mlpa.StudyOptions{Size: size, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fig3, err := study.Fig3()
	if err != nil {
		log.Fatal(err)
	}
	fig4, err := study.Fig4()
	if err != nil {
		log.Fatal(err)
	}
	printFigure(fig3, "paper geometric mean: 6.78x")
	printFigure(fig4, "paper geometric mean: 14.04x; gcc ~0.97x")

	rows, err := study.Table3()
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("\nTable III: simulation points statistics",
		"Algorithm", "Mean Interval Size", "Mean Samples", "Mean Detail", "Mean Functional")
	for _, r := range rows {
		t.AddRow(r.Method,
			fmt.Sprintf("%.0f inst", r.MeanIntervalSize),
			fmt.Sprintf("%.1f", r.MeanSampleNumber),
			stats.FormatPct(r.MeanDetailPct),
			stats.FormatPct(r.MeanFunctionalPct))
	}
	fmt.Print(t.String())
	fmt.Println("\npaper row shapes: COASTS 444M/1.6/0.37%/2.21%; SimPoint 10M/20.1/0.09%/93.76%;")
	fmt.Println("multi-level 16M/7.3/0.05%/5.06% (absolute sizes differ by the suite scale factor).")
}

func printFigure(res *mlpa.SpeedupResult, note string) {
	names := make([]string, 0, len(res.Rows)+1)
	vals := make([]float64, 0, len(res.Rows)+1)
	for _, r := range res.Rows {
		names = append(names, r.Benchmark)
		vals = append(vals, r.Speedup)
	}
	names = append(names, "GEOMEAN")
	vals = append(vals, res.GeoMean)
	fmt.Println()
	fmt.Print(report.BarChart(res.Title, names, vals, "x", 50))
	fmt.Println("(" + note + ")")
}
