// phase_viz reproduces the paper's Figure 1: the first principal
// component of per-interval basic-block vectors for the lucas model,
// under fine (fixed-length) and coarse (loop-iteration) granularity,
// with the selected simulation points marked. The fine trajectory is
// chaotic and scatters late simulation points; the coarse trajectory
// is smooth with few, early points.
//
//	go run ./examples/phase_viz [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"mlpa"
	"mlpa/internal/experiments"
	"mlpa/internal/report"
)

func main() {
	benchmark := "lucas"
	if len(os.Args) > 1 {
		benchmark = os.Args[1]
	}
	res, err := mlpa.Fig1(mlpa.StudyOptions{Size: mlpa.SizeTiny, Seed: 1}, benchmark)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Figure 1 reproduction for %q\n\n", res.Benchmark)
	fmt.Print(report.LinePlot(
		fmt.Sprintf("(a) fine-grained: %d fixed-length intervals, roughness %.3f",
			len(res.Fine), experiments.Roughness(res.Fine)),
		res.Fine, res.FineMarks, 72, 14))
	fmt.Println()
	fmt.Print(report.LinePlot(
		fmt.Sprintf("(b) coarse-grained: %d iteration intervals, roughness %.3f",
			len(res.Coarse), experiments.Roughness(res.Coarse)),
		res.Coarse, res.CoarseMarks, 72, 14))

	count := func(marks []bool) int {
		n := 0
		for _, m := range marks {
			if m {
				n++
			}
		}
		return n
	}
	lastPos := func(marks []bool) float64 {
		last := 0
		for i, m := range marks {
			if m {
				last = i
			}
		}
		if len(marks) < 2 {
			return 0
		}
		return float64(last) / float64(len(marks)-1)
	}
	fmt.Printf("\nfine:   %d simulation points, last at %.0f%% of the trace\n",
		count(res.FineMarks), lastPos(res.FineMarks)*100)
	fmt.Printf("coarse: %d simulation points, last at %.0f%% of the trace\n",
		count(res.CoarseMarks), lastPos(res.CoarseMarks)*100)
	fmt.Println("\nthe coarse curve is smooth with few early points — everything after")
	fmt.Println("the last point needs no functional simulation at all.")
}
