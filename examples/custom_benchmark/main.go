// custom_benchmark shows the framework applied to a user-written
// program: build a program with the structured Builder API (or
// assembly), then profile, sample and execute it like any suite
// benchmark.
//
//	go run ./examples/custom_benchmark
package main

import (
	"fmt"
	"log"

	"mlpa"
)

// buildProgram constructs a two-phase workload by hand: an outer loop
// whose iterations alternate between a multiply-heavy kernel and a
// memory-touching kernel.
func buildProgram() (*mlpa.Program, error) {
	b := mlpa.NewBuilder("custom")
	b.ReserveData(1 << 13)

	const outerTrips = 150
	b.Li(1, outerTrips) // r1: outer counter
	b.Label("outer")
	b.Andi(2, 1, 1)
	b.Bne(2, 0, "mem")

	// Phase A: serial integer multiplies.
	b.Li(3, 4000)
	b.Label("mulloop")
	b.Mul(4, 4, 4)
	b.Addi(4, 4, 7)
	b.Addi(3, 3, -1)
	b.Bne(3, 0, "mulloop")
	b.Jmp("next")

	// Phase B: walk an 8 KiB buffer (L1-resident once warm; see
	// DESIGN.md on why larger reused working sets need warmup care
	// at small program scales).
	b.Label("mem")
	b.Li(3, 4000)
	b.Li(5, 0)
	b.Label("memloop")
	b.Ld(6, 5, 0)
	b.Addi(6, 6, 1)
	b.St(6, 5, 0)
	b.Addi(5, 5, 64)
	b.Andi(5, 5, (1<<13)-1)
	b.Addi(3, 3, -1)
	b.Bne(3, 0, "memloop")

	b.Label("next")
	b.Addi(1, 1, -1)
	b.Bne(1, 0, "outer")
	b.Halt()
	return b.Build()
}

func main() {
	program, err := buildProgram()
	if err != nil {
		log.Fatal(err)
	}

	// Functional run to see the scale of the workload.
	m := mlpa.NewMachine(program, 0)
	if _, err := m.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom program: %d instructions, %d basic blocks\n\n", m.Insts, program.NumBlocks())

	// Multi-level sampling with a fine interval sized to the workload.
	fine := m.Insts / 500
	plan, rep, err := mlpa.SelectMultiLevel(program, mlpa.MultiLevelConfig{
		Coarse: mlpa.CoastsConfig{Seed: 7},
		Fine:   mlpa.SimPointConfig{IntervalLen: fine, Kmax: 10, Seed: 7},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first level found %d coarse points (threshold %d instructions):\n",
		len(rep.CoarsePlan.Points), rep.Threshold)
	for i, pt := range rep.CoarsePlan.Points {
		resampled := "kept whole"
		if rep.Resampled[i] != nil {
			resampled = fmt.Sprintf("re-sampled into %d fine points", len(rep.Resampled[i].Points))
		}
		fmt.Printf("  coarse point [%d, %d) weight %.3f — %s\n", pt.Start, pt.End, pt.Weight, resampled)
	}

	fmt.Printf("\nfinal plan: %d points, %.3f%% detailed, %.3f%% functional, last point at %.1f%%\n",
		len(plan.Points), plan.DetailedFraction()*100, plan.FunctionalFraction()*100,
		plan.LastPosition()*100)

	// Validate against ground truth under Table I config A.
	truth, err := mlpa.GroundTruth(program, mlpa.ConfigA())
	if err != nil {
		log.Fatal(err)
	}
	est, err := mlpa.Execute(program, plan, mlpa.ConfigA(), mlpa.ExecOptions{
		Warmup:       10 * fine,
		DetailLeadIn: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	cpiDev, l1Dev, l2Dev := mlpa.Deviations(est, truth)
	fmt.Printf("\nestimated CPI %.4f vs true %.4f (%.2f%% off); L1 %.2f%%, L2 %.2f%% off\n",
		est.CPI, truth.CPI(), cpiDev*100, l1Dev*100, l2Dev*100)
	fmt.Printf("simulated %.2f%% of the program in detail instead of 100%%\n",
		plan.DetailedFraction()*100)
}
