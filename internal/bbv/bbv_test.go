package bbv

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewProjectorErrors(t *testing.T) {
	if _, err := NewProjector(0, 15, 1); err == nil {
		t.Error("numBlocks=0 accepted")
	}
	if _, err := NewProjector(10, 0, 1); err == nil {
		t.Error("dims=0 accepted")
	}
}

func TestProjectorDeterministic(t *testing.T) {
	p1 := MustNewProjector(20, 15, 99)
	p2 := MustNewProjector(20, 15, 99)
	counts := make([]uint64, 20)
	counts[3] = 7
	counts[11] = 2
	v1, err := p1.Project(counts)
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := p2.Project(counts)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("same seed produced different projections")
		}
	}
	p3 := MustNewProjector(20, 15, 100)
	v3, _ := p3.Project(counts)
	same := true
	for i := range v1 {
		if v1[i] != v3[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical projections")
	}
}

func TestProjectDimensions(t *testing.T) {
	p := MustNewProjector(8, 5, 1)
	if p.Dims() != 5 || p.NumBlocks() != 8 {
		t.Errorf("Dims/NumBlocks = %d/%d", p.Dims(), p.NumBlocks())
	}
	v, err := p.Project(make([]uint64, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 5 {
		t.Errorf("projected length = %d", len(v))
	}
	if _, err := p.Project(make([]uint64, 7)); err == nil {
		t.Error("wrong-length vector accepted")
	}
}

func TestProjectLinearity(t *testing.T) {
	// Projection is linear: P(2a) = 2 P(a).
	p := MustNewProjector(6, 4, 5)
	a := []uint64{1, 0, 3, 0, 2, 1}
	b := []uint64{2, 0, 6, 0, 4, 2}
	va, _ := p.Project(a)
	vb, _ := p.Project(b)
	for i := range va {
		if math.Abs(vb[i]-2*va[i]) > 1e-9 {
			t.Fatalf("linearity violated at %d: %v vs %v", i, vb[i], 2*va[i])
		}
	}
}

func TestSignatureNormalized(t *testing.T) {
	p := MustNewProjector(10, 15, 7)
	counts := make([]uint64, 10)
	counts[0] = 1000
	counts[9] = 500
	sig, err := p.Signature(counts)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, x := range sig {
		sum += math.Abs(x)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("signature L1 norm = %v", sum)
	}
}

// Property: signatures are scale-invariant — an interval twice as long
// with the same block mix yields the same signature.
func TestSignatureScaleInvariance(t *testing.T) {
	p := MustNewProjector(12, 15, 3)
	f := func(raw [12]uint16, mult uint8) bool {
		m := uint64(mult%7) + 2
		a := make([]uint64, 12)
		b := make([]uint64, 12)
		nonzero := false
		for i, x := range raw {
			a[i] = uint64(x)
			b[i] = uint64(x) * m
			if x != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			return true
		}
		sa, err1 := p.Signature(a)
		sb, err2 := p.Signature(b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range sa {
			if math.Abs(sa[i]-sb[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distinct block mixes produce distinct signatures (random
// projection separates them almost surely).
func TestSignatureSeparation(t *testing.T) {
	p := MustNewProjector(10, 15, 11)
	a := make([]uint64, 10)
	b := make([]uint64, 10)
	a[2] = 100
	b[7] = 100
	sa, _ := p.Signature(a)
	sb, _ := p.Signature(b)
	var dist float64
	for i := range sa {
		d := sa[i] - sb[i]
		dist += d * d
	}
	if dist < 1e-6 {
		t.Errorf("distinct mixes projected to same signature (dist %v)", dist)
	}
}

func TestConcat(t *testing.T) {
	sig := Concat([][]float64{{1, 1}, {2}})
	if len(sig) != 3 {
		t.Fatalf("len = %d", len(sig))
	}
	var sum float64
	for _, x := range sig {
		sum += math.Abs(x)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("concat L1 norm = %v", sum)
	}
	if math.Abs(sig[0]-0.25) > 1e-9 || math.Abs(sig[2]-0.5) > 1e-9 {
		t.Errorf("concat = %v", sig)
	}
	if got := Concat(nil); len(got) != 0 {
		t.Errorf("Concat(nil) = %v", got)
	}
}

func TestFrequencies(t *testing.T) {
	f := Frequencies([]uint64{1, 3, 0})
	if f[0] != 0.25 || f[1] != 0.75 || f[2] != 0 {
		t.Errorf("Frequencies = %v", f)
	}
	z := Frequencies([]uint64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("Frequencies(zero) = %v", z)
	}
}
