// Package bbv implements basic-block vectors, the program-behaviour
// metric of the SimPoint family: per-interval instruction counts per
// basic block, reduced by a deterministic random projection to a small
// dimension (15 in the paper) and L1-normalized so each vector
// describes the *distribution* of execution over the code, independent
// of interval length.
package bbv

import (
	"fmt"
	"math/rand"

	"mlpa/internal/linalg"
)

// DefaultDims is the projected dimensionality used by SimPoint and by
// the paper.
const DefaultDims = 15

// Projector maps raw basic-block count vectors into a fixed
// low-dimensional space via a seeded random matrix, preserving
// relative distances (Johnson-Lindenstrauss style) while bounding the
// clustering cost and trace size.
type Projector struct {
	numBlocks int
	dims      int
	matrix    []float64 // numBlocks x dims, row-major
}

// NewProjector creates a projector for numBlocks basic blocks down to
// dims dimensions. The same (numBlocks, dims, seed) triple always
// yields the same matrix.
func NewProjector(numBlocks, dims int, seed int64) (*Projector, error) {
	if numBlocks <= 0 {
		return nil, fmt.Errorf("bbv: numBlocks = %d", numBlocks)
	}
	if dims <= 0 {
		return nil, fmt.Errorf("bbv: dims = %d", dims)
	}
	rng := rand.New(rand.NewSource(seed))
	m := make([]float64, numBlocks*dims)
	for i := range m {
		m[i] = rng.Float64()
	}
	return &Projector{numBlocks: numBlocks, dims: dims, matrix: m}, nil
}

// MustNewProjector is NewProjector, panicking on error.
func MustNewProjector(numBlocks, dims int, seed int64) *Projector {
	p, err := NewProjector(numBlocks, dims, seed)
	if err != nil {
		panic(err)
	}
	return p
}

// Dims returns the projected dimensionality.
func (p *Projector) Dims() int { return p.dims }

// NumBlocks returns the expected raw vector length.
func (p *Projector) NumBlocks() int { return p.numBlocks }

// Project maps a raw per-block count vector to the projected space.
// The result is not normalized; callers normalize signatures once they
// are fully assembled.
func (p *Projector) Project(counts []uint64) ([]float64, error) {
	if len(counts) != p.numBlocks {
		return nil, fmt.Errorf("bbv: count vector has %d blocks, projector expects %d", len(counts), p.numBlocks)
	}
	out := make([]float64, p.dims)
	for b, c := range counts {
		if c == 0 {
			continue
		}
		fc := float64(c)
		row := p.matrix[b*p.dims : (b+1)*p.dims]
		for d := range out {
			out[d] += fc * row[d]
		}
	}
	return out, nil
}

// Signature builds the final interval signature: the projection of
// counts, L1-normalized as in the SimPoint pipeline.
func (p *Projector) Signature(counts []uint64) ([]float64, error) {
	v, err := p.Project(counts)
	if err != nil {
		return nil, err
	}
	linalg.NormalizeL1(v)
	return v, nil
}

// Concat concatenates per-chunk projected vectors into one signature
// and L1-normalizes the result. The paper's COASTS metric collection
// concatenates the projected BBVs of an iteration instance into a
// signature vector and then normalizes by the element sum.
func Concat(chunks [][]float64) []float64 {
	var total int
	for _, c := range chunks {
		total += len(c)
	}
	out := make([]float64, 0, total)
	for _, c := range chunks {
		out = append(out, c...)
	}
	linalg.NormalizeL1(out)
	return out
}

// Frequencies converts a raw count vector to block frequencies (an
// unprojected normalized BBV, useful for inspection and tests).
func Frequencies(counts []uint64) []float64 {
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	out := make([]float64, len(counts))
	if sum == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(sum)
	}
	return out
}
