package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "Name", "Value")
	tb.AddRow("alpha", "1.0")
	tb.AddRow("b", "22.5")
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "Name") || !strings.Contains(out, "Value") {
		t.Error("missing headers")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22.5") {
		t.Error("missing cells")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: both rows have the same prefix width before col 2.
	idx1 := strings.Index(lines[3], "1.0")
	idx2 := strings.Index(lines[4], "22.5")
	if idx1 != idx2 {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only")
	if out := tb.String(); !strings.Contains(out, "only") {
		t.Errorf("short row lost: %s", out)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("Speedups", []string{"x", "longer"}, []float64{1, 4}, "x", 20)
	if !strings.Contains(out, "Speedups") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "####################") {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "#####") {
		t.Error("missing proportional bar")
	}
	if !strings.Contains(out, "4.00x") {
		t.Error("missing value label")
	}
}

func TestBarChartZeroValues(t *testing.T) {
	out := BarChart("", []string{"z"}, []float64{0}, "", 10)
	if !strings.Contains(out, "0.00") {
		t.Errorf("zero chart: %s", out)
	}
}

func TestLinePlot(t *testing.T) {
	ys := []float64{0, 1, 2, 3, 2, 1, 0, 1, 2, 3}
	marks := make([]bool, len(ys))
	marks[3] = true
	out := LinePlot("Trajectory", ys, marks, 40, 8)
	if !strings.Contains(out, "Trajectory") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "o") {
		t.Error("missing mark glyph")
	}
	if !strings.Contains(out, ".") {
		t.Error("missing data glyphs")
	}
	if !strings.Contains(out, "interval 0 .. 9") {
		t.Error("missing axis label")
	}
}

func TestLinePlotEmpty(t *testing.T) {
	out := LinePlot("E", nil, nil, 10, 5)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty plot: %s", out)
	}
}

func TestLinePlotConstantSeries(t *testing.T) {
	out := LinePlot("C", []float64{5, 5, 5}, nil, 10, 4)
	if out == "" {
		t.Error("constant series produced nothing")
	}
}
