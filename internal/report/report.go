// Package report renders experiment results as ASCII tables and
// plots, matching the artifacts of the paper: per-benchmark bar lists
// for the speedup figures, deviation tables, and the Figure 1 phase
// trajectories.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned ASCII table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// BarChart renders named values as horizontal ASCII bars (the Fig. 3 /
// Fig. 4 style), scaled to maxWidth characters.
func BarChart(title string, names []string, values []float64, unit string, maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 50
	}
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		max = 1
	}
	nameW := 0
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	for i, n := range names {
		bar := int(math.Round(values[i] / max * float64(maxWidth)))
		if bar < 0 {
			bar = 0
		}
		sb.WriteString(fmt.Sprintf("%s  %s %.2f%s\n", pad(n, nameW), strings.Repeat("#", bar), values[i], unit))
	}
	return sb.String()
}

// LinePlot renders one or more y-series over a shared integer x-axis
// as an ASCII scatter (the Fig. 1 style). marks[i], when true, plots
// the sample at x=i with 'o' instead of the series glyph (the
// simulation-point check marks).
func LinePlot(title string, ys []float64, marks []bool, width, height int) string {
	if len(ys) == 0 {
		return title + "\n(no data)\n"
	}
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, y := range ys {
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	n := len(ys)
	for i, y := range ys {
		col := i * (width - 1) / max1(n-1)
		row := int((maxY - y) / (maxY - minY) * float64(height-1))
		glyph := byte('.')
		if i < len(marks) && marks[i] {
			glyph = 'o'
		}
		if grid[row][col] != 'o' { // marks win collisions
			grid[row][col] = glyph
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	sb.WriteString(fmt.Sprintf("%10.3g +%s\n", maxY, ""))
	for _, row := range grid {
		sb.WriteString("           |" + string(row) + "\n")
	}
	sb.WriteString(fmt.Sprintf("%10.3g +%s\n", minY, strings.Repeat("-", width)))
	sb.WriteString(fmt.Sprintf("            interval 0 .. %d   ('o' = selected simulation point)\n", n-1))
	return sb.String()
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}
