package experiments

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"mlpa/internal/bench"
	"mlpa/internal/config"
	"mlpa/internal/cpu"
)

// TestForEachPropagatesFirstError: the suite fan-out must surface the
// lowest-index failure — the one a sequential run would have hit —
// instead of silently dropping errors.
func TestForEachPropagatesFirstError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		o := Options{Workers: workers}
		err := o.forEach("test.errors", 10, func(ctx context.Context, i int) error {
			if i == 2 || i == 6 {
				return fmt.Errorf("bench %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "bench 2 failed" {
			t.Errorf("workers=%d: err = %v, want bench 2 failed", workers, err)
		}
	}
}

// TestForEachRespectsCancellation: cancelling Options.Ctx aborts the
// fan-out with the context's error instead of running to completion.
func TestForEachRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := Options{Workers: 2, Ctx: ctx}
	ran := 0
	err := o.forEach("test.cancel", 50, func(ctx context.Context, i int) error {
		ran++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d items ran under a cancelled context", ran)
	}
}

// TestStudyCancelled: a cancelled context aborts NewStudy itself.
func TestStudyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewStudy(Options{
		Size: bench.SizeTiny, Seed: 1, Benchmarks: []string{"gzip"}, Ctx: ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("NewStudy under cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestTable2WorkerCountInvariant: Table II results must be identical
// whether the suite fan-out is sequential or parallel.
func TestTable2WorkerCountInvariant(t *testing.T) {
	run := func(workers int) *Table2Result {
		t.Helper()
		st, err := NewStudy(Options{
			Size: bench.SizeTiny, Seed: 1,
			Benchmarks: []string{"gzip", "crafty"},
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := st.Table2([]cpu.Config{config.BaseA(), config.SensitivityB()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(4)
	for _, metric := range seq.Metrics {
		for method, byCfg := range seq.Cells[metric] {
			for cfgName, want := range byCfg {
				got := par.Cells[metric][method][cfgName]
				if got != want {
					t.Errorf("%s/%s/%s: parallel cell %+v != sequential %+v",
						metric, method, cfgName, got, want)
				}
			}
		}
	}
}
