package experiments

import (
	"fmt"

	"mlpa/internal/bench"
	"mlpa/internal/coasts"
	"mlpa/internal/config"
	"mlpa/internal/multilevel"
	"mlpa/internal/pipeline"
	"mlpa/internal/simpoint"
	"mlpa/internal/smarts"
	"mlpa/internal/vli"
)

// Ablation studies for the design choices DESIGN.md calls out: the
// phase-granularity tradeoff of Section III, COASTS's Kmax, the
// multi-level re-sampling threshold, the BBV projection dimension, and
// the cold-start-vs-warming execution policy.

// GranularityRow is one interval length in the granularity sweep.
type GranularityRow struct {
	IntervalLen   uint64
	Points        int
	DetailPct     float64
	FunctionalPct float64
	LastPosition  float64
	ModeledTime   float64 // seconds under the study's time model
}

// GranularitySweep reproduces the Section III tradeoff on one
// benchmark: finer intervals shrink each simulation point but push the
// last selected point later, inflating the functional portion; coarser
// intervals do the opposite. Lengths are multiples of the preset's
// fine interval.
func GranularitySweep(o Options, benchmark string, multipliers []float64) ([]GranularityRow, error) {
	o = o.withDefaults()
	spec, err := bench.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	p, err := spec.Program(o.Size)
	if err != nil {
		return nil, err
	}
	base := bench.FineInterval(o.Size)
	var out []GranularityRow
	for _, mult := range multipliers {
		cfg := o.fineConfig()
		cfg.IntervalLen = uint64(float64(base) * mult)
		if cfg.IntervalLen == 0 {
			return nil, fmt.Errorf("experiments: zero interval from multiplier %v", mult)
		}
		plan, _, _, err := simpoint.Select(p, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, GranularityRow{
			IntervalLen:   cfg.IntervalLen,
			Points:        len(plan.Points),
			DetailPct:     plan.DetailedFraction(),
			FunctionalPct: plan.FunctionalFraction(),
			LastPosition:  plan.LastPosition(),
			ModeledTime:   o.TimeModel.PlanTime(plan),
		})
	}
	return out, nil
}

// KmaxRow is one Kmax setting in the coarse-Kmax sweep.
type KmaxRow struct {
	Kmax          int
	Points        int
	DetailPct     float64
	FunctionalPct float64
	LastPosition  float64
	ModeledTime   float64
}

// CoarseKmaxSweep varies COASTS's cluster budget around the paper's
// default of 3.
func CoarseKmaxSweep(o Options, benchmark string, kmaxes []int) ([]KmaxRow, error) {
	o = o.withDefaults()
	spec, err := bench.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	p, err := spec.Program(o.Size)
	if err != nil {
		return nil, err
	}
	var out []KmaxRow
	for _, k := range kmaxes {
		cfg := o.coarseConfig()
		cfg.Kmax = k
		plan, _, _, err := coasts.Select(p, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, KmaxRow{
			Kmax:          k,
			Points:        len(plan.Points),
			DetailPct:     plan.DetailedFraction(),
			FunctionalPct: plan.FunctionalFraction(),
			LastPosition:  plan.LastPosition(),
			ModeledTime:   o.TimeModel.PlanTime(plan),
		})
	}
	return out, nil
}

// ThresholdRow is one re-sampling threshold in the threshold sweep.
type ThresholdRow struct {
	Threshold     uint64
	Points        int
	Resampled     int // coarse points that were re-sampled
	DetailPct     float64
	FunctionalPct float64
	ModeledTime   float64
}

// ThresholdSweep varies the multi-level re-sampling threshold around
// the paper's rule (fine interval x fine Kmax). Multipliers scale that
// default.
func ThresholdSweep(o Options, benchmark string, multipliers []float64) ([]ThresholdRow, error) {
	o = o.withDefaults()
	spec, err := bench.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	p, err := spec.Program(o.Size)
	if err != nil {
		return nil, err
	}
	fine := o.fineConfig()
	baseThreshold := fine.IntervalLen * uint64(o.FineKmax)
	var out []ThresholdRow
	for _, mult := range multipliers {
		cfg := multilevel.Config{
			Coarse:    o.coarseConfig(),
			Fine:      fine,
			Threshold: uint64(float64(baseThreshold) * mult),
		}
		plan, rep, err := multilevel.Select(p, cfg)
		if err != nil {
			return nil, err
		}
		resampled := 0
		for _, sub := range rep.Resampled {
			if sub != nil {
				resampled++
			}
		}
		out = append(out, ThresholdRow{
			Threshold:     cfg.Threshold,
			Points:        len(plan.Points),
			Resampled:     resampled,
			DetailPct:     plan.DetailedFraction(),
			FunctionalPct: plan.FunctionalFraction(),
			ModeledTime:   o.TimeModel.PlanTime(plan),
		})
	}
	return out, nil
}

// DimRow is one projection dimensionality in the dimension sweep.
type DimRow struct {
	Dims   int
	Points int
	CPIDev float64
}

// ProjectionDimSweep varies the random-projection dimensionality
// (paper and SimPoint default: 15) and measures the resulting SimPoint
// CPI deviation on one benchmark under configuration A.
func ProjectionDimSweep(o Options, benchmark string, dims []int) ([]DimRow, error) {
	o = o.withDefaults()
	spec, err := bench.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	p, err := spec.Program(o.Size)
	if err != nil {
		return nil, err
	}
	truth, _, err := pipeline.FullDetailed(p, config.BaseA())
	if err != nil {
		return nil, err
	}
	var out []DimRow
	for _, d := range dims {
		cfg := o.fineConfig()
		cfg.Dims = d
		plan, _, _, err := simpoint.Select(p, cfg)
		if err != nil {
			return nil, err
		}
		est, err := pipeline.ExecutePlan(p, plan, config.BaseA(), pipeline.ExecOptions{
			Warmup:       o.Warmup,
			DetailLeadIn: o.DetailLeadIn,
			Workers:      o.Workers,
			Ctx:          o.Ctx,
		})
		if err != nil {
			return nil, err
		}
		dev, _, _ := pipeline.Deviations(est, truth)
		out = append(out, DimRow{Dims: d, Points: len(plan.Points), CPIDev: dev})
	}
	return out, nil
}

// ColdStartRow contrasts execution policies for one method.
type ColdStartRow struct {
	Method  string
	ColdDev float64 // CPI deviation with plain fast-forward (paper methodology)
	WarmDev float64 // CPI deviation with the scaled-execution policy
}

// ColdStartAblation quantifies the scale substitution DESIGN.md
// documents: at reduced scale, plain fast-forwarded (cold) points carry
// transients that the warming policy removes.
func ColdStartAblation(o Options, benchmark string) ([]ColdStartRow, error) {
	o = o.withDefaults()
	spec, err := bench.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	p, err := spec.Program(o.Size)
	if err != nil {
		return nil, err
	}
	truth, _, err := pipeline.FullDetailed(p, config.BaseA())
	if err != nil {
		return nil, err
	}
	st, err := NewStudy(Options{
		Size: o.Size, Seed: o.Seed, Benchmarks: []string{benchmark},
		Warmup: o.Warmup, DetailLeadIn: o.DetailLeadIn,
	})
	if err != nil {
		return nil, err
	}
	var out []ColdStartRow
	for _, method := range Methods() {
		plan, err := st.Plans[0].ByMethod(method)
		if err != nil {
			return nil, err
		}
		cold, err := pipeline.ExecutePlan(p, plan, config.BaseA(), pipeline.ExecOptions{
			Workers: o.Workers,
			Ctx:     o.Ctx,
		})
		if err != nil {
			return nil, err
		}
		warm, err := pipeline.ExecutePlan(p, plan, config.BaseA(), pipeline.ExecOptions{
			Warmup:       o.Warmup,
			DetailLeadIn: o.DetailLeadIn,
			Workers:      o.Workers,
			Ctx:          o.Ctx,
		})
		if err != nil {
			return nil, err
		}
		coldDev, _, _ := pipeline.Deviations(cold, truth)
		warmDev, _, _ := pipeline.Deviations(warm, truth)
		out = append(out, ColdStartRow{Method: method, ColdDev: coldDev, WarmDev: warmDev})
	}
	return out, nil
}

// VLIRow compares the variable-length-interval variant against fixed
// SimPoint on one benchmark.
type VLIRow struct {
	Benchmark     string
	VLIPoints     int
	FixedPoints   int
	VLITime       float64
	FixedTime     float64
	TimeRatio     float64 // VLI time / fixed time (paper: ~1, no gain)
	VLIIntervals  int
	MeanVLILength float64
}

// VLIComparison reproduces the paper's Section V observation that
// variable-length intervals "make the phase boundaries more natural
// but do not gain performance improvement" over fixed-length SimPoint.
func VLIComparison(o Options, benchmarks []string) ([]VLIRow, error) {
	o = o.withDefaults()
	var out []VLIRow
	for _, name := range benchmarks {
		spec, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		p, err := spec.Program(o.Size)
		if err != nil {
			return nil, err
		}
		fixedPlan, _, _, err := simpoint.Select(p, o.fineConfig())
		if err != nil {
			return nil, err
		}
		vliPlan, vliTrace, _, err := vli.Select(p, vli.Config{
			TargetLen:   bench.FineInterval(o.Size),
			Kmax:        o.FineKmax,
			Seed:        o.Seed,
			BICFraction: o.FineBICFraction,
			SampleCap:   o.SampleCap,
		})
		if err != nil {
			return nil, err
		}
		vt := o.TimeModel.PlanTime(vliPlan)
		ft := o.TimeModel.PlanTime(fixedPlan)
		var meanLen float64
		if len(vliTrace.Intervals) > 0 {
			meanLen = float64(vliTrace.TotalInsts) / float64(len(vliTrace.Intervals))
		}
		out = append(out, VLIRow{
			Benchmark:     name,
			VLIPoints:     len(vliPlan.Points),
			FixedPoints:   len(fixedPlan.Points),
			VLITime:       vt,
			FixedTime:     ft,
			TimeRatio:     vt / ft,
			VLIIntervals:  len(vliTrace.Intervals),
			MeanVLILength: meanLen,
		})
	}
	return out, nil
}

// EarlySPRow compares the EarlySP variant (Perelman et al., PACT'03)
// against standard SimPoint and COASTS on one benchmark.
type EarlySPRow struct {
	Benchmark           string
	StandardFunctional  float64
	EarlySPFunctional   float64
	CoastsFunctional    float64
	EarlySPSpeedup      float64 // over standard SimPoint
	CoastsSpeedup       float64 // over standard SimPoint
	EarlySPLastPosition float64
}

// EarlySPComparison reproduces the paper's related-work observation
// about early simulation points: constraining the last cluster's
// position "can only reduce some functional simulation time" — it
// helps, but far less than coarse-grained earliest-instance selection.
func EarlySPComparison(o Options, benchmarks []string) ([]EarlySPRow, error) {
	o = o.withDefaults()
	var out []EarlySPRow
	for _, name := range benchmarks {
		spec, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		p, err := spec.Program(o.Size)
		if err != nil {
			return nil, err
		}
		std, _, _, err := simpoint.Select(p, o.fineConfig())
		if err != nil {
			return nil, err
		}
		earlyCfg := o.fineConfig()
		earlyCfg.EarlySP = true
		early, _, _, err := simpoint.Select(p, earlyCfg)
		if err != nil {
			return nil, err
		}
		co, _, _, err := coasts.Select(p, o.coarseConfig())
		if err != nil {
			return nil, err
		}
		out = append(out, EarlySPRow{
			Benchmark:           name,
			StandardFunctional:  std.FunctionalFraction(),
			EarlySPFunctional:   early.FunctionalFraction(),
			CoastsFunctional:    co.FunctionalFraction(),
			EarlySPSpeedup:      o.TimeModel.Speedup(early, std),
			CoastsSpeedup:       o.TimeModel.Speedup(co, std),
			EarlySPLastPosition: early.LastPosition(),
		})
	}
	return out, nil
}

// StatSamplingRow compares systematic statistical sampling (SMARTS
// style) against the representative methods on one benchmark.
type StatSamplingRow struct {
	Benchmark     string
	Units         int
	CPIDev        float64
	FunctionalPct float64
	ModeledTime   float64
	CoastsTime    float64
	SimPointTime  float64
}

// StatisticalSamplingComparison contrasts the two sampling families:
// systematic sampling achieves good accuracy with no phase analysis,
// but its functional portion spans the whole run — the cost structure
// the paper's coarse-grained level eliminates.
func StatisticalSamplingComparison(o Options, benchmarks []string) ([]StatSamplingRow, error) {
	o = o.withDefaults()
	var out []StatSamplingRow
	for _, name := range benchmarks {
		spec, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		p, err := spec.Program(o.Size)
		if err != nil {
			return nil, err
		}
		fine := bench.FineInterval(o.Size)
		smPlan, err := smarts.Select(p, smarts.Config{UnitLen: fine / 2, Period: fine * 25})
		if err != nil {
			return nil, err
		}
		truth, _, err := pipeline.FullDetailed(p, config.BaseA())
		if err != nil {
			return nil, err
		}
		est, err := pipeline.ExecutePlan(p, smPlan, config.BaseA(), pipeline.ExecOptions{
			Warmup:       o.Warmup,
			DetailLeadIn: o.DetailLeadIn,
			Workers:      o.Workers,
			Ctx:          o.Ctx,
		})
		if err != nil {
			return nil, err
		}
		dev, _, _ := pipeline.Deviations(est, truth)

		co, _, _, err := coasts.Select(p, o.coarseConfig())
		if err != nil {
			return nil, err
		}
		sp, _, _, err := simpoint.Select(p, o.fineConfig())
		if err != nil {
			return nil, err
		}
		out = append(out, StatSamplingRow{
			Benchmark:     name,
			Units:         len(smPlan.Points),
			CPIDev:        dev,
			FunctionalPct: smPlan.FunctionalFraction(),
			ModeledTime:   o.TimeModel.PlanTime(smPlan),
			CoastsTime:    o.TimeModel.PlanTime(co),
			SimPointTime:  o.TimeModel.PlanTime(sp),
		})
	}
	return out, nil
}
