// Package experiments reproduces the paper's evaluation: Figure 1
// (phase trajectories), Figures 3 and 4 (speedups of COASTS and
// multi-level sampling over 10M SimPoint), Table II (metric
// deviations under both Table I configurations) and Table III
// (simulation-point statistics).
package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"mlpa/internal/bench"
	"mlpa/internal/ckpt"
	"mlpa/internal/coasts"
	"mlpa/internal/cpu"
	"mlpa/internal/linalg"
	"mlpa/internal/multilevel"
	"mlpa/internal/obs"
	"mlpa/internal/parallel"
	"mlpa/internal/pipeline"
	"mlpa/internal/sampling"
	"mlpa/internal/simpoint"
	"mlpa/internal/stats"
)

// Method names in table order.
const (
	MethodCoasts     = coasts.MethodName
	MethodSimPoint   = simpoint.MethodName
	MethodMultiLevel = multilevel.MethodName
)

// Methods lists the three compared methods in the paper's table order.
func Methods() []string {
	return []string{MethodCoasts, MethodSimPoint, MethodMultiLevel}
}

// Options configures a study.
type Options struct {
	// Size selects the suite scale (default bench.SizeSmall).
	Size bench.Size
	// Seed drives all randomized stages (default 1).
	Seed int64
	// Warmup is the functional-warming window per point; 0 chooses
	// continuous functional warming of the entire fast-forward gap
	// (SMARTS-style; see pipeline.ExecOptions on why scaled points
	// need warming).
	Warmup uint64
	// DetailLeadIn is the discarded detailed warmup per point; 0
	// chooses 512 instructions (4x the reorder buffer).
	DetailLeadIn uint64
	// RunAhead is the discarded detailed run-ahead past each point
	// (an ablation knob: it lets tail latencies overlap successor
	// work, but pollutes the measured region's fetch-side cache and
	// branch statistics with successor instructions; default 0).
	RunAhead uint64
	// SampleCap bounds fine-grained clustering input (default 2000).
	SampleCap int
	// TimeModel converts instruction splits to simulation time
	// (default sampling.SimpleScalarRates; see DESIGN.md).
	TimeModel sampling.TimeModel
	// Benchmarks restricts the suite (nil = all).
	Benchmarks []string
	// FineKmax is SimPoint's Kmax (default 30, the release default).
	FineKmax int
	// FineBICFraction is the BIC selection fraction for the
	// fine-grained clustering. The harness default is 0.99 rather than
	// SimPoint's 0.9: the synthetic suite's BBVs are noiseless, so the
	// BIC curve saturates at very small k under the 0.9 rule, merging
	// unlike intervals; 0.99 yields cluster counts (~16-25) matching
	// SimPoint's observed behavior on SPEC2000 (20.1 points on
	// average). The ablation benchmark sweeps this fraction.
	FineBICFraction float64
	// CoarseKmax is COASTS's Kmax (default 3, the paper default).
	CoarseKmax int
	// Obs, if non-nil, threads the observability runtime through every
	// stage: selection spans, per-point journal records, deviation
	// events and progress logging.
	Obs *obs.Runtime
	// Workers caps the study's fan-out: how many benchmarks select or
	// simulate concurrently (0 = GOMAXPROCS). Results are deterministic
	// for every value — stages merge in suite order. Within
	// suite-parallel regions each plan executes its points sequentially
	// so the machine is not oversubscribed; single-benchmark helpers
	// (the ablation sweeps) instead pass Workers down to
	// pipeline.ExecutePlan to parallelize across points.
	Workers int
	// Ctx, when non-nil, cancels the study between and inside stages;
	// the first stage to observe cancellation aborts the run with the
	// context's error. Nil means context.Background().
	Ctx context.Context
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Warmup == 0 {
		o.Warmup = math.MaxUint64
	}
	if o.DetailLeadIn == 0 {
		o.DetailLeadIn = 512
	}
	if o.SampleCap == 0 {
		o.SampleCap = 2000
	}
	if o.TimeModel.DetailedRate == 0 {
		o.TimeModel = sampling.SimpleScalarRates
	}
	if o.FineKmax == 0 {
		o.FineKmax = 30
	}
	if o.CoarseKmax == 0 {
		o.CoarseKmax = 3
	}
	if o.FineBICFraction == 0 {
		o.FineBICFraction = 0.99
	}
	return o
}

func (o Options) fineConfig() simpoint.Config {
	return simpoint.Config{
		IntervalLen: bench.FineInterval(o.Size),
		Kmax:        o.FineKmax,
		Seed:        o.Seed,
		SampleCap:   o.SampleCap,
		BICFraction: o.FineBICFraction,
		Obs:         o.Obs,
	}
}

func (o Options) coarseConfig() coasts.Config {
	return coasts.Config{Kmax: o.CoarseKmax, Seed: o.Seed, Obs: o.Obs}
}

func (o Options) specs() ([]*bench.Spec, error) {
	if len(o.Benchmarks) == 0 {
		return bench.Suite(), nil
	}
	var out []*bench.Spec
	for _, name := range o.Benchmarks {
		s, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Plans carries the three methods' sampling plans for one benchmark.
type Plans struct {
	Spec       *bench.Spec
	SimPoint   *sampling.Plan
	Coasts     *sampling.Plan
	MultiLevel *sampling.Plan
}

// ByMethod returns the plan for a method name.
func (p *Plans) ByMethod(method string) (*sampling.Plan, error) {
	switch method {
	case MethodSimPoint:
		return p.SimPoint, nil
	case MethodCoasts:
		return p.Coasts, nil
	case MethodMultiLevel:
		return p.MultiLevel, nil
	}
	return nil, fmt.Errorf("experiments: unknown method %q", method)
}

// Study holds selected plans for a benchmark set; the table and
// figure generators derive their results from it.
type Study struct {
	Opts  Options
	Plans []*Plans
}

// NewStudy runs the profiling and point-selection stages of all three
// methods over the configured benchmarks.
func NewStudy(o Options) (*Study, error) {
	o = o.withDefaults()
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	st := &Study{Opts: o, Plans: make([]*Plans, len(specs))}
	span := o.Obs.StartSpan("experiments.select", obs.KV("benchmarks", len(specs)))
	defer span.End()
	// Selection is independent and deterministic per benchmark; run it
	// across the suite in parallel.
	err = o.forEach("experiments.select", len(specs), func(ctx context.Context, i int) error {
		spec := specs[i]
		bspan := span.StartSpan("experiments.select_benchmark", obs.KV("benchmark", spec.Name))
		defer bspan.End()
		p, err := spec.Program(o.Size)
		if err != nil {
			return err
		}
		sp, _, _, err := simpoint.Select(p, o.fineConfig())
		if err != nil {
			return fmt.Errorf("experiments: simpoint on %s: %w", spec.Name, err)
		}
		co, _, _, err := coasts.Select(p, o.coarseConfig())
		if err != nil {
			return fmt.Errorf("experiments: coasts on %s: %w", spec.Name, err)
		}
		ml, _, err := multilevel.Select(p, multilevel.Config{
			Coarse: o.coarseConfig(),
			Fine:   o.fineConfig(),
		})
		if err != nil {
			return fmt.Errorf("experiments: multilevel on %s: %w", spec.Name, err)
		}
		st.Plans[i] = &Plans{Spec: spec, SimPoint: sp, Coasts: co, MultiLevel: ml}
		o.Obs.Logf("selected points for %s: simpoint %d, coasts %d, multilevel %d",
			spec.Name, len(sp.Points), len(co.Points), len(ml.Points))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// execOpts is the plan-execution policy every Table II evaluation
// runs under. The suite already fans out benchmark-wide, so each
// plan's points run sequentially (the machine is not oversubscribed)
// while the fast-forward cache is shared per benchmark.
func (st *Study) execOpts(ctx context.Context, cache *parallel.StateCache) pipeline.ExecOptions {
	return pipeline.ExecOptions{
		Warmup:       st.Opts.Warmup,
		DetailLeadIn: st.Opts.DetailLeadIn,
		RunAhead:     st.Opts.RunAhead,
		Obs:          st.Opts.Obs,
		Workers:      1,
		Ctx:          ctx,
		Cache:        cache,
	}
}

// ctx returns the study's context (never nil).
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// forEach fans fn out over the study's worker budget, reporting live
// completion under the named progress stage. Work items must be
// independent; result slots are written by index, so output order
// stays deterministic. The first error (by lowest index, the same one
// a sequential loop would surface) cancels the remaining work and is
// returned; external cancellation through Options.Ctx surfaces as the
// context's error.
func (o Options) forEach(stage string, n int, fn func(ctx context.Context, i int) error) error {
	return parallel.ForEachOpt(o.ctx(), o.Workers, n, fn,
		parallel.ForEachOptions{Metrics: o.Obs.Metrics(), Stage: o.Obs.Progress().Stage(stage)})
}

// SpeedupRow is one bar of Figure 3 or 4.
type SpeedupRow struct {
	Benchmark string
	Speedup   float64
}

// SpeedupResult is a full speedup figure.
type SpeedupResult struct {
	Title   string
	Rows    []SpeedupRow
	GeoMean float64
}

func (st *Study) speedups(title, method string) (*SpeedupResult, error) {
	res := &SpeedupResult{Title: title}
	var vals []float64
	for _, pl := range st.Plans {
		target, err := pl.ByMethod(method)
		if err != nil {
			return nil, err
		}
		s := st.Opts.TimeModel.Speedup(target, pl.SimPoint)
		res.Rows = append(res.Rows, SpeedupRow{Benchmark: pl.Spec.Name, Speedup: s})
		vals = append(vals, s)
	}
	res.GeoMean = stats.GeoMean(vals)
	return res, nil
}

// Fig3 reproduces Figure 3: speedup of COASTS over 10M SimPoint
// (paper geometric mean: 6.78x).
func (st *Study) Fig3() (*SpeedupResult, error) {
	return st.speedups("Fig. 3: speedup of COASTS over SimPoint", MethodCoasts)
}

// Fig4 reproduces Figure 4: speedup of multi-level sampling over 10M
// SimPoint (paper geometric mean: 14.04x; gcc ~0.97x).
func (st *Study) Fig4() (*SpeedupResult, error) {
	return st.speedups("Fig. 4: speedup of multi-level sampling over SimPoint", MethodMultiLevel)
}

// Table3Row is one line of Table III. All columns use geometric means
// over the suite, the paper's AVG convention; zero fractions are
// floored at 0.01% so benchmarks whose plans need no fast-forwarding
// at all (contiguous points from instruction 0) stay representable.
type Table3Row struct {
	Method            string
	MeanIntervalSize  float64
	MeanSampleNumber  float64
	MeanDetailPct     float64
	MeanFunctionalPct float64
}

// geoFloor is the smallest fraction Table III's geometric means admit.
const geoFloor = 1e-4

// Table3 reproduces Table III (simulation-point statistics).
func (st *Study) Table3() ([]Table3Row, error) {
	var out []Table3Row
	for _, method := range []string{MethodCoasts, MethodSimPoint, MethodMultiLevel} {
		var sizes, counts, det, fun []float64
		for _, pl := range st.Plans {
			p, err := pl.ByMethod(method)
			if err != nil {
				return nil, err
			}
			sizes = append(sizes, p.MeanPointLen())
			counts = append(counts, float64(len(p.Points)))
			det = append(det, math.Max(p.DetailedFraction(), geoFloor))
			fun = append(fun, math.Max(p.FunctionalFraction(), geoFloor))
		}
		out = append(out, Table3Row{
			Method:            method,
			MeanIntervalSize:  stats.GeoMean(sizes),
			MeanSampleNumber:  stats.GeoMean(counts),
			MeanDetailPct:     stats.GeoMean(det),
			MeanFunctionalPct: stats.GeoMean(fun),
		})
	}
	return out, nil
}

// DevCell is one (metric, method, config) cell of Table II.
type DevCell struct {
	Avg        float64
	Worst      float64
	WorstBench string
}

// Table2Result maps metric -> method -> config name -> deviations.
type Table2Result struct {
	Metrics []string // "CPI", "L1 Cache Hit", "L2 Cache Hit"
	Cells   map[string]map[string]map[string]DevCell
}

// Table2 reproduces Table II: it runs ground-truth full detailed
// simulations and executes every method's plan under each supplied
// configuration, reporting average and worst relative deviations of
// CPI and cache hit rates.
func (st *Study) Table2(configs []cpu.Config) (*Table2Result, error) {
	metrics := []string{"CPI", "L1 Cache Hit", "L2 Cache Hit"}
	res := &Table2Result{Metrics: metrics}
	res.Cells = make(map[string]map[string]map[string]DevCell)
	aggs := make(map[string]map[string]map[string]*stats.Agg)
	for _, m := range metrics {
		res.Cells[m] = make(map[string]map[string]DevCell)
		aggs[m] = make(map[string]map[string]*stats.Agg)
		for _, method := range Methods() {
			res.Cells[m][method] = make(map[string]DevCell)
			aggs[m][method] = make(map[string]*stats.Agg)
			for _, cfg := range configs {
				aggs[m][method][cfg.Name] = &stats.Agg{}
			}
		}
	}

	// The ground-truth and sampled simulations are independent per
	// (benchmark, configuration) pair; run the benchmarks in parallel
	// with each worker covering every configuration and method for its
	// benchmark — one functional-state cache per benchmark then serves
	// all of them, since architectural state is configuration-
	// independent — and aggregate in suite order so worst cases and
	// averages stay deterministic.
	type devs struct{ cpi, l1, l2 [3]float64 }
	span := st.Opts.Obs.StartSpan("experiments.table2", obs.KV("configs", len(configs)))
	defer span.End()
	results := make([]map[string]devs, len(st.Plans))
	err := st.Opts.forEach("experiments.table2", len(st.Plans), func(ctx context.Context, i int) error {
		pl := st.Plans[i]
		bspan := span.StartSpan("experiments.table2_benchmark", obs.KV("benchmark", pl.Spec.Name))
		defer bspan.End()
		p, err := pl.Spec.Program(st.Opts.Size)
		if err != nil {
			return err
		}
		cache := parallel.NewStateCache(p, 0, st.Opts.Obs.Metrics())
		// Architectural state is configuration-independent, so one
		// checkpoint set per method serves every sensitivity config in
		// the sweep: the fast-forward to each point's warm start is paid
		// once here and each config evaluation below restores in
		// O(checkpoint size). Results stay bit-identical to from-scratch
		// execution (pipeline's differential harness proves it).
		sets := make(map[string]*ckpt.Set, len(Methods()))
		for _, method := range Methods() {
			plan, err := pl.ByMethod(method)
			if err != nil {
				return err
			}
			set, err := pipeline.BuildCheckpointSet(p, plan, st.execOpts(ctx, cache))
			if err != nil {
				return fmt.Errorf("experiments: checkpoint set for %s/%s: %w", pl.Spec.Name, method, err)
			}
			sets[method] = set
		}
		results[i] = make(map[string]devs, len(configs))
		for _, cfg := range configs {
			tspan := bspan.StartSpan("experiments.ground_truth", obs.KV("config", cfg.Name))
			truth, truthWall, err := pipeline.FullDetailed(p, cfg)
			tspan.End()
			if err != nil {
				return err
			}
			var r devs
			for mi, method := range Methods() {
				plan, err := pl.ByMethod(method)
				if err != nil {
					return err
				}
				opts := st.execOpts(ctx, cache)
				opts.Checkpoints = sets[method]
				est, err := pipeline.ExecutePlan(p, plan, cfg, opts)
				if err != nil {
					return fmt.Errorf("experiments: %s/%s under config %s: %w", pl.Spec.Name, method, cfg.Name, err)
				}
				cpiDev, l1Dev, l2Dev := pipeline.Deviations(est, truth)
				r.cpi[mi], r.l1[mi], r.l2[mi] = cpiDev, l1Dev, l2Dev
				st.Opts.Obs.Emit("deviation", map[string]any{
					"benchmark": pl.Spec.Name,
					"method":    method,
					"config":    cfg.Name,
					"cpi_dev":   cpiDev,
					"l1_dev":    l1Dev,
					"l2_dev":    l2Dev,
					"true_cpi":  truth.CPI(),
					"est_cpi":   est.CPI,
				})
				st.Opts.Obs.Logf("table2 %s/%s config %s: CPI dev %.4f%% (est %.4f true %.4f, truth wall %v)",
					pl.Spec.Name, method, cfg.Name, 100*cpiDev, est.CPI, truth.CPI(), truthWall.Round(time.Millisecond))
			}
			results[i][cfg.Name] = r
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, cfg := range configs {
		for i, pl := range st.Plans {
			r := results[i][cfg.Name]
			for mi, method := range Methods() {
				aggs["CPI"][method][cfg.Name].Add(pl.Spec.Name, r.cpi[mi])
				aggs["L1 Cache Hit"][method][cfg.Name].Add(pl.Spec.Name, r.l1[mi])
				aggs["L2 Cache Hit"][method][cfg.Name].Add(pl.Spec.Name, r.l2[mi])
			}
		}
	}

	for _, m := range metrics {
		for _, method := range Methods() {
			for _, cfg := range configs {
				a := aggs[m][method][cfg.Name]
				worst, bench := a.Worst()
				res.Cells[m][method][cfg.Name] = DevCell{Avg: a.Avg(), Worst: worst, WorstBench: bench}
			}
		}
	}
	return res, nil
}

// Fig1Result carries the two phase trajectories of Figure 1.
type Fig1Result struct {
	Benchmark string
	// Fine is the first principal component of each fixed-length
	// interval's BBV; FineMarks flags selected simulation points.
	Fine      []float64
	FineMarks []bool
	// Coarse is the same for iteration intervals under COASTS.
	Coarse      []float64
	CoarseMarks []bool
}

// Fig1 reproduces Figure 1 for a benchmark (the paper uses lucas):
// BBV trajectories under fine and coarse granularity with the
// selected simulation points marked.
func Fig1(o Options, benchmark string) (*Fig1Result, error) {
	o = o.withDefaults()
	spec, err := bench.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	p, err := spec.Program(o.Size)
	if err != nil {
		return nil, err
	}

	fineTrace, err := simpoint.Profile(p, o.fineConfig())
	if err != nil {
		return nil, err
	}
	finePlan, _, err := simpoint.SelectFromTrace(fineTrace, o.fineConfig())
	if err != nil {
		return nil, err
	}
	finePCA, err := linalg.FitPCA(fineTrace.Vectors())
	if err != nil {
		return nil, err
	}

	coarsePlan, coarseTrace, _, err := coasts.Select(p, o.coarseConfig())
	if err != nil {
		return nil, err
	}
	coarsePCA, err := linalg.FitPCA(coarseTrace.Vectors())
	if err != nil {
		return nil, err
	}

	res := &Fig1Result{
		Benchmark:   benchmark,
		Fine:        finePCA.FirstComponent(fineTrace.Vectors()),
		FineMarks:   make([]bool, len(fineTrace.Intervals)),
		Coarse:      coarsePCA.FirstComponent(coarseTrace.Vectors()),
		CoarseMarks: make([]bool, len(coarseTrace.Intervals)),
	}
	for _, pt := range finePlan.Points {
		res.FineMarks[pt.Interval] = true
	}
	for _, pt := range coarsePlan.Points {
		res.CoarseMarks[pt.Interval] = true
	}
	return res, nil
}

// Roughness quantifies Figure 1's visual contrast: the mean absolute
// step between consecutive trajectory samples, normalized by the
// trajectory's range. Fine-grained trajectories are "chaotic with
// violent changes" (high roughness); coarse ones are smooth.
func Roughness(ys []float64) float64 {
	if len(ys) < 2 {
		return 0
	}
	minY, maxY := ys[0], ys[0]
	var step float64
	for i := 1; i < len(ys); i++ {
		d := ys[i] - ys[i-1]
		if d < 0 {
			d = -d
		}
		step += d
		if ys[i] < minY {
			minY = ys[i]
		}
		if ys[i] > maxY {
			maxY = ys[i]
		}
	}
	if maxY == minY {
		return 0
	}
	return step / float64(len(ys)-1) / (maxY - minY)
}
