package experiments

import (
	"math"
	"testing"

	"mlpa/internal/bench"
	"mlpa/internal/config"
	"mlpa/internal/cpu"
)

// tinyOpts keeps experiment tests fast: three benchmarks at tiny size.
func tinyOpts() Options {
	return Options{
		Size:       bench.SizeTiny,
		Seed:       1,
		Benchmarks: []string{"gzip", "lucas", "swim"},
	}
}

func newTinyStudy(t *testing.T) *Study {
	t.Helper()
	st, err := NewStudy(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewStudySelectsAllMethods(t *testing.T) {
	st := newTinyStudy(t)
	if len(st.Plans) != 3 {
		t.Fatalf("plans for %d benchmarks, want 3", len(st.Plans))
	}
	for _, pl := range st.Plans {
		if pl.SimPoint == nil || pl.Coasts == nil || pl.MultiLevel == nil {
			t.Fatalf("%s: missing plans", pl.Spec.Name)
		}
		for _, m := range Methods() {
			p, err := pl.ByMethod(m)
			if err != nil || p == nil {
				t.Errorf("%s: ByMethod(%s) = %v, %v", pl.Spec.Name, m, p, err)
			}
		}
		if _, err := pl.ByMethod("nope"); err == nil {
			t.Error("unknown method accepted")
		}
	}
}

func TestNewStudyUnknownBenchmark(t *testing.T) {
	o := tinyOpts()
	o.Benchmarks = []string{"nonexistent"}
	if _, err := NewStudy(o); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFig3AndFig4Shapes(t *testing.T) {
	st := newTinyStudy(t)
	f3, err := st.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	f4, err := st.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Rows) != 3 || len(f4.Rows) != 3 {
		t.Fatalf("rows = %d, %d", len(f3.Rows), len(f4.Rows))
	}
	if math.IsNaN(f3.GeoMean) || math.IsNaN(f4.GeoMean) {
		t.Fatal("NaN geomeans")
	}
	for i := range f3.Rows {
		if f3.Rows[i].Speedup <= 0 || f4.Rows[i].Speedup <= 0 {
			t.Errorf("non-positive speedup: %+v %+v", f3.Rows[i], f4.Rows[i])
		}
	}
	// Multi-level must not be slower than COASTS overall: it only
	// shrinks detailed work at a small functional cost.
	if f4.GeoMean < f3.GeoMean*0.8 {
		t.Errorf("multi-level geomean %v far below COASTS %v", f4.GeoMean, f3.GeoMean)
	}
}

func TestTable3Structure(t *testing.T) {
	st := newTinyStudy(t)
	rows, err := st.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byMethod := map[string]Table3Row{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	co, sp, ml := byMethod[MethodCoasts], byMethod[MethodSimPoint], byMethod[MethodMultiLevel]
	// Table III orderings from the paper:
	// coarse intervals are much larger than fine ones,
	if co.MeanIntervalSize <= sp.MeanIntervalSize {
		t.Errorf("coarse interval %v <= fine %v", co.MeanIntervalSize, sp.MeanIntervalSize)
	}
	// COASTS uses far fewer samples,
	if co.MeanSampleNumber >= sp.MeanSampleNumber {
		t.Errorf("COASTS samples %v >= SimPoint %v", co.MeanSampleNumber, sp.MeanSampleNumber)
	}
	// SimPoint's functional portion dominates everyone else's,
	if sp.MeanFunctionalPct <= co.MeanFunctionalPct || sp.MeanFunctionalPct <= ml.MeanFunctionalPct {
		t.Errorf("SimPoint functional %v not dominant (coasts %v, ml %v)",
			sp.MeanFunctionalPct, co.MeanFunctionalPct, ml.MeanFunctionalPct)
	}
	// and multi-level cuts COASTS's detailed portion.
	if ml.MeanDetailPct >= co.MeanDetailPct {
		t.Errorf("multi-level detail %v >= COASTS %v", ml.MeanDetailPct, co.MeanDetailPct)
	}
}

func TestTable2TinySingleConfig(t *testing.T) {
	o := tinyOpts()
	o.Benchmarks = []string{"gzip"}
	st, err := NewStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Table2([]cpu.Config{config.BaseA()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != 3 {
		t.Fatalf("metrics = %v", res.Metrics)
	}
	for _, m := range res.Metrics {
		for _, method := range Methods() {
			cell, ok := res.Cells[m][method]["A"]
			if !ok {
				t.Fatalf("missing cell %s/%s/A", m, method)
			}
			if math.IsNaN(cell.Avg) || cell.Avg < 0 {
				t.Errorf("%s/%s avg = %v", m, method, cell.Avg)
			}
			if cell.Worst < cell.Avg {
				t.Errorf("%s/%s worst %v < avg %v", m, method, cell.Worst, cell.Avg)
			}
			if cell.WorstBench == "" && cell.Worst > 0 {
				t.Errorf("%s/%s worst bench missing", m, method)
			}
		}
	}
	// Accuracy sanity: no method should be catastrophically wrong on
	// CPI at tiny scale with warmup.
	for _, method := range Methods() {
		if avg := res.Cells["CPI"][method]["A"].Avg; avg > 0.6 {
			t.Errorf("CPI avg deviation for %s = %v", method, avg)
		}
	}
}

func TestFig1LucasContrast(t *testing.T) {
	res, err := Fig1(tinyOpts(), "lucas")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fine) < 10 || len(res.Coarse) < 5 {
		t.Fatalf("trajectory lengths %d, %d", len(res.Fine), len(res.Coarse))
	}
	if len(res.Fine) != len(res.FineMarks) || len(res.Coarse) != len(res.CoarseMarks) {
		t.Fatal("marks misaligned")
	}
	// The paper's point: fine trajectories are chaotic, coarse smooth.
	rf, rc := Roughness(res.Fine), Roughness(res.Coarse)
	if rf <= rc {
		t.Errorf("fine roughness %v <= coarse %v", rf, rc)
	}
	// The coarse trace has far fewer intervals.
	if len(res.Coarse)*5 > len(res.Fine) {
		t.Errorf("coarse intervals %d not much fewer than fine %d", len(res.Coarse), len(res.Fine))
	}
	// At least one mark per trajectory.
	anyMark := func(ms []bool) bool {
		for _, m := range ms {
			if m {
				return true
			}
		}
		return false
	}
	if !anyMark(res.FineMarks) || !anyMark(res.CoarseMarks) {
		t.Error("missing simulation-point marks")
	}
}

func TestFig1UnknownBenchmark(t *testing.T) {
	if _, err := Fig1(tinyOpts(), "bogus"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRoughness(t *testing.T) {
	if got := Roughness([]float64{1, 1, 1}); got != 0 {
		t.Errorf("flat roughness = %v", got)
	}
	if got := Roughness([]float64{5}); got != 0 {
		t.Errorf("single-sample roughness = %v", got)
	}
	smooth := Roughness([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	rough := Roughness([]float64{0, 7, 0, 7, 0, 7, 0, 7})
	if rough <= smooth {
		t.Errorf("rough %v <= smooth %v", rough, smooth)
	}
}

func TestMethodsList(t *testing.T) {
	ms := Methods()
	if len(ms) != 3 {
		t.Fatalf("methods = %v", ms)
	}
	if ms[0] != "coasts" || ms[1] != "simpoint" || ms[2] != "multilevel" {
		t.Errorf("methods = %v", ms)
	}
}
