package experiments

import (
	"testing"

	"mlpa/internal/bench"
)

func TestGranularitySweepTradeoff(t *testing.T) {
	o := Options{Size: bench.SizeTiny, Seed: 1}
	rows, err := GranularitySweep(o, "gzip", []float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Section III: coarser intervals -> fewer or equal points and more
	// detail per point.
	if rows[2].Points > rows[0].Points {
		t.Errorf("coarse points %d > fine points %d", rows[2].Points, rows[0].Points)
	}
	if rows[2].DetailPct <= rows[0].DetailPct {
		t.Errorf("coarse detail %v <= fine detail %v", rows[2].DetailPct, rows[0].DetailPct)
	}
	for _, r := range rows {
		if r.ModeledTime <= 0 {
			t.Errorf("non-positive modeled time: %+v", r)
		}
	}
}

func TestGranularitySweepErrors(t *testing.T) {
	o := Options{Size: bench.SizeTiny}
	if _, err := GranularitySweep(o, "nope", []float64{1}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := GranularitySweep(o, "gzip", []float64{0}); err == nil {
		t.Error("zero multiplier accepted")
	}
}

func TestCoarseKmaxSweep(t *testing.T) {
	o := Options{Size: bench.SizeTiny, Seed: 1}
	rows, err := CoarseKmaxSweep(o, "equake", []int{1, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More clusters can never select fewer points than Kmax=1.
	if rows[2].Points < rows[0].Points {
		t.Errorf("Kmax=6 points %d < Kmax=1 points %d", rows[2].Points, rows[0].Points)
	}
	if rows[0].Points != 1 {
		t.Errorf("Kmax=1 selected %d points", rows[0].Points)
	}
}

func TestThresholdSweep(t *testing.T) {
	o := Options{Size: bench.SizeTiny, Seed: 1}
	rows, err := ThresholdSweep(o, "swim", []float64{0.2, 1, 100})
	if err != nil {
		t.Fatal(err)
	}
	// A tiny threshold re-samples everything; a huge one nothing.
	if rows[0].Resampled == 0 {
		t.Errorf("tiny threshold re-sampled nothing: %+v", rows[0])
	}
	if rows[2].Resampled != 0 {
		t.Errorf("huge threshold re-sampled %d points", rows[2].Resampled)
	}
	// Re-sampling must cut the detailed fraction.
	if rows[0].DetailPct >= rows[2].DetailPct {
		t.Errorf("re-sampled detail %v >= whole-point detail %v", rows[0].DetailPct, rows[2].DetailPct)
	}
}

func TestProjectionDimSweep(t *testing.T) {
	o := Options{Size: bench.SizeTiny, Seed: 1}
	rows, err := ProjectionDimSweep(o, "swim", []int{2, 15})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CPIDev < 0 || r.Points < 1 {
			t.Errorf("row = %+v", r)
		}
	}
}

func TestColdStartAblation(t *testing.T) {
	o := Options{Size: bench.SizeTiny, Seed: 1}
	rows, err := ColdStartAblation(o, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The warming policy must not be worse overall; cold runs carry the
	// transients DESIGN.md describes.
	betterOrEqual := 0
	for _, r := range rows {
		if r.WarmDev <= r.ColdDev+0.02 {
			betterOrEqual++
		}
	}
	if betterOrEqual < 2 {
		t.Errorf("warming helped only %d of 3 methods: %+v", betterOrEqual, rows)
	}
}

func TestEarlySPComparison(t *testing.T) {
	o := Options{Size: bench.SizeTiny, Seed: 1}
	rows, err := EarlySPComparison(o, []string{"gzip", "swim"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// EarlySP reduces the functional portion relative to standard
		// SimPoint, but "can only reduce some functional simulation
		// time" — COASTS's earliest-instance coarse points cut it far
		// deeper (paper Section II). Speedups only separate at larger
		// suite scales, so the structural claim is on the fractions.
		if r.EarlySPFunctional > r.StandardFunctional+1e-9 {
			t.Errorf("%s: EarlySP functional %v above standard %v", r.Benchmark, r.EarlySPFunctional, r.StandardFunctional)
		}
		if r.CoastsFunctional >= r.EarlySPFunctional {
			t.Errorf("%s: COASTS functional %v not below EarlySP %v", r.Benchmark, r.CoastsFunctional, r.EarlySPFunctional)
		}
	}
}

func TestVLIComparisonRows(t *testing.T) {
	o := Options{Size: bench.SizeTiny, Seed: 1}
	rows, err := VLIComparison(o, []string{"gzip"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.TimeRatio < 0.2 || r.TimeRatio > 5 {
		t.Errorf("VLI time ratio %v far from parity", r.TimeRatio)
	}
	if r.MeanVLILength < float64(bench.FineInterval(bench.SizeTiny)) {
		t.Errorf("mean VLI interval %v below target", r.MeanVLILength)
	}
	if _, err := VLIComparison(o, []string{"bogus"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestStatisticalSamplingComparison(t *testing.T) {
	o := Options{Size: bench.SizeTiny, Seed: 1}
	rows, err := StatisticalSamplingComparison(o, []string{"crafty"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Units < 3 {
		t.Errorf("units = %d", r.Units)
	}
	// Accuracy fine, cost structure poor: functional spans the run.
	if r.CPIDev > 0.25 {
		t.Errorf("systematic CPI deviation %v", r.CPIDev)
	}
	if r.FunctionalPct < 0.9 {
		t.Errorf("systematic functional fraction %v, want ~1", r.FunctionalPct)
	}
}
