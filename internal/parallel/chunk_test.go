package parallel

import (
	"math"
	"testing"
)

// checkPartition asserts the structural invariants every partition of
// [0, n) must satisfy: chunks are non-empty, contiguous, ascending and
// cover every index exactly once.
func checkPartition(t *testing.T, chunks []Chunk, n int) {
	t.Helper()
	if n <= 0 {
		if chunks != nil {
			t.Fatalf("partition of %d items: got %v, want nil", n, chunks)
		}
		return
	}
	if len(chunks) == 0 {
		t.Fatalf("partition of %d items is empty", n)
	}
	cursor := 0
	for k, c := range chunks {
		if c.Start != cursor {
			t.Fatalf("chunk %d starts at %d, want %d (chunks %v)", k, c.Start, cursor, chunks)
		}
		if c.Len() <= 0 {
			t.Fatalf("chunk %d is empty (chunks %v)", k, chunks)
		}
		cursor = c.End
	}
	if cursor != n {
		t.Fatalf("partition covers [0,%d), want [0,%d) (chunks %v)", cursor, n, chunks)
	}
}

// TestPartitionChunksEmpty: an empty task list partitions to nil, for
// any worker count and with or without cost models.
func TestPartitionChunksEmpty(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 8} {
		if got := PartitionChunks(0, ChunkOptions{Workers: workers}); got != nil {
			t.Errorf("workers=%d: PartitionChunks(0) = %v, want nil", workers, got)
		}
		if got := PartitionChunks(-3, ChunkOptions{Workers: workers}); got != nil {
			t.Errorf("workers=%d: PartitionChunks(-3) = %v, want nil", workers, got)
		}
	}
	got := PartitionChunks(0, ChunkOptions{
		Workers:   4,
		Cost:      func(i int) float64 { t.Fatal("cost queried for empty list"); return 0 },
		StartCost: func(i int) float64 { t.Fatal("start cost queried for empty list"); return 0 },
	})
	if got != nil {
		t.Errorf("with cost models: PartitionChunks(0) = %v, want nil", got)
	}
}

// TestPartitionChunksSingleTask: one task is always exactly one chunk
// [0,1), regardless of workers, costs or minimum chunk cost.
func TestPartitionChunksSingleTask(t *testing.T) {
	opts := []ChunkOptions{
		{},
		{Workers: 16},
		{Workers: 16, Cost: func(int) float64 { return 0 }},
		{Workers: 16, Cost: func(int) float64 { return math.MaxInt64 }},
		{Workers: 16, MinChunkCost: 1e18},
	}
	for i, opt := range opts {
		got := PartitionChunks(1, opt)
		checkPartition(t, got, 1)
		if len(got) != 1 || got[0] != (Chunk{Start: 0, End: 1}) {
			t.Errorf("case %d: PartitionChunks(1) = %v, want [{0 1}]", i, got)
		}
	}
}

// TestPartitionChunksAllZeroCosts: a task list whose every item costs
// zero must still produce a valid cover — no division blowups from the
// zero total, no empty chunks — and the zero total means splitting can
// never pay, so one chunk is the expected shape.
func TestPartitionChunksAllZeroCosts(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100} {
		got := PartitionChunks(n, ChunkOptions{
			Workers:      8,
			Cost:         func(int) float64 { return 0 },
			StartCost:    func(int) float64 { return 1000 },
			MinChunkCost: 1,
		})
		checkPartition(t, got, n)
		if len(got) != 1 {
			t.Errorf("n=%d all-zero costs: %d chunks, want 1 (%v)", n, len(got), got)
		}
		// Zero costs with free startup must also stay valid.
		got = PartitionChunks(n, ChunkOptions{Workers: 8, Cost: func(int) float64 { return 0 }})
		checkPartition(t, got, n)
	}
}

// TestPartitionChunksCostOverflow: per-item costs near MaxInt64 sum
// far past int64 range; float64 accumulation must neither overflow to
// +Inf in a way that breaks the cover nor produce NaN targets, and the
// partition must stay balanced.
func TestPartitionChunksCostOverflow(t *testing.T) {
	const n = 64
	huge := float64(math.MaxInt64) // ~9.2e18; 64 of these ≈ 5.9e20, well past int64
	got := PartitionChunks(n, ChunkOptions{
		Workers: 4,
		Cost:    func(int) float64 { return huge },
	})
	checkPartition(t, got, n)
	if len(got) != 4 {
		t.Fatalf("uniform huge costs across 4 workers: %d chunks, want 4 (%v)", len(got), got)
	}
	for k, c := range got {
		if c.Len() != n/4 {
			t.Errorf("chunk %d has %d items, want %d (uniform costs must balance)", k, c.Len(), n/4)
		}
	}
	// A single outlier at MaxInt64 among unit costs: the outlier
	// dominates the makespan, so the model can never profit from
	// splitting the cheap remainder — but whatever it picks must cover.
	got = PartitionChunks(n, ChunkOptions{
		Workers: 4,
		Cost: func(i int) float64 {
			if i == n/2 {
				return huge
			}
			return 1
		},
		MinChunkCost: 1 << 21,
	})
	checkPartition(t, got, n)
}

// TestPartitionChunksNegativeCostsClamped: negative estimates are
// treated as zero, not allowed to corrupt the running totals.
func TestPartitionChunksNegativeCostsClamped(t *testing.T) {
	const n = 10
	got := PartitionChunks(n, ChunkOptions{
		Workers: 4,
		Cost:    func(i int) float64 { return -1e18 },
	})
	checkPartition(t, got, n)
	if len(got) != 1 {
		t.Errorf("all-negative costs: %d chunks, want 1 (zero-cost work never splits)", len(got))
	}
}
