package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"mlpa/internal/obs"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 0} {
		n := 37
		seen := make([]atomic.Int32, n)
		err := ForEach(context.Background(), workers, n, func(ctx context.Context, i int) error {
			seen[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(context.Context, int) error {
		t.Error("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestForEachLowestIndexErrorWins: when several indices fail, ForEach
// must return the lowest-index error — the one a sequential loop would
// have surfaced — regardless of completion order or worker count.
func TestForEachLowestIndexErrorWins(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		n := 16
		err := ForEach(context.Background(), workers, n, func(ctx context.Context, i int) error {
			switch i {
			case 3, 7, 11:
				// Later failures finish first, tempting a naive
				// first-completion policy to return the wrong error.
				time.Sleep(time.Duration(16-i) * time.Millisecond)
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom at 3" {
			t.Errorf("workers=%d: err = %v, want boom at 3", workers, err)
		}
	}
}

// TestForEachErrorStopsClaiming: after a failure, indices that were not
// yet claimed must not start.
func TestForEachErrorStopsClaiming(t *testing.T) {
	n := 1000
	var ran atomic.Int32
	err := ForEach(context.Background(), 2, n, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early failure")
		}
		// Give the scheduler time to observe the cancellation.
		time.Sleep(time.Millisecond)
		return ctx.Err()
	})
	if err == nil || err.Error() != "early failure" {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); int(got) == n {
		t.Errorf("all %d indices ran despite early failure", n)
	}
}

// TestForEachCollateralCancelFiltered: a worker that surfaces the
// internal cancellation (ctx.Err after another index failed) must not
// mask the root-cause error, even though its index is lower.
func TestForEachCollateralCancelFiltered(t *testing.T) {
	release := make(chan struct{})
	err := ForEach(context.Background(), 2, 2, func(ctx context.Context, i int) error {
		if i == 0 {
			<-release
			// By now index 1 has failed and cancelled the pool; index 0
			// reports the collateral cancellation.
			<-ctx.Done()
			return ctx.Err()
		}
		defer close(release)
		return errors.New("root cause")
	})
	if err == nil || err.Error() != "root cause" {
		t.Errorf("err = %v, want root cause", err)
	}
}

func TestForEachExternalCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 2, 100, func(ctx context.Context, i int) error {
		if ran.Add(1) == 1 {
			cancel()
		}
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestForEachSingleWorkerInline(t *testing.T) {
	// workers == 1 must run on the calling goroutine in index order.
	var order []int
	err := ForEach(context.Background(), 1, 5, func(ctx context.Context, i int) error {
		order = append(order, i) // data race here would fail under -race if not inline
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestForEachMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	err := ForEachOpt(context.Background(), 4, 10, func(ctx context.Context, i int) error {
		return nil
	}, ForEachOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["parallel.tasks_done"]; got != 10 {
		t.Errorf("tasks_done = %d, want 10", got)
	}
	if _, ok := snap.Gauges["parallel.workers"]; !ok {
		t.Error("parallel.workers gauge missing")
	}
}
