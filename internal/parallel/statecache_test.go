package parallel

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"mlpa/internal/emu"
	"mlpa/internal/obs"
	"mlpa/internal/prog"
)

// testProgram returns an example guest long enough for interesting
// fast-forward positions.
func testProgram() *prog.Program {
	return prog.ExampleTripleNested(6, 5, 7)
}

// checkpointBytes serializes m's full architectural state.
func checkpointBytes(t *testing.T, m *emu.Machine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMachineAtMatchesFreshFastForward: a machine restored from the
// cache must match a fresh fast-forward instruction-for-instruction —
// identical serialized state at the target position, and identical
// state after every subsequent step.
func TestMachineAtMatchesFreshFastForward(t *testing.T) {
	p := testProgram()
	c := NewStateCache(p, 0, nil)
	ctx := context.Background()
	for _, pos := range []uint64{0, 1, 17, 100, 250} {
		got, err := c.MachineAt(ctx, pos)
		if err != nil {
			t.Fatalf("MachineAt(%d): %v", pos, err)
		}
		want := emu.New(p, 0)
		if pos > 0 {
			if _, err := want.Run(pos); err != nil {
				t.Fatalf("fresh run to %d: %v", pos, err)
			}
		}
		if got.Insts != pos || want.Insts != pos {
			t.Fatalf("pos %d: cached at %d, fresh at %d", pos, got.Insts, want.Insts)
		}
		if !bytes.Equal(checkpointBytes(t, got), checkpointBytes(t, want)) {
			t.Fatalf("pos %d: restored state differs from fresh fast-forward", pos)
		}
		// Step both to the end of the program, comparing committed
		// state after every instruction.
		for step := 0; !want.Halted; step++ {
			if _, err := want.Step(); err != nil {
				t.Fatalf("fresh step: %v", err)
			}
			if _, err := got.Step(); err != nil {
				t.Fatalf("restored step: %v", err)
			}
			if got.PC != want.PC || got.Insts != want.Insts || got.Halted != want.Halted {
				t.Fatalf("pos %d: divergence at step %d: restored (pc %d insts %d) vs fresh (pc %d insts %d)",
					pos, step, got.PC, got.Insts, want.PC, want.Insts)
			}
		}
		if !bytes.Equal(checkpointBytes(t, got), checkpointBytes(t, want)) {
			t.Fatalf("pos %d: final state differs after stepping to halt", pos)
		}
	}
}

// TestMachineAtSingleFlight: N goroutines requesting the same position
// concurrently must trigger exactly one underlying fast-forward (one
// cache miss); everyone still gets a correct, independent machine.
func TestMachineAtSingleFlight(t *testing.T) {
	p := testProgram()
	reg := obs.NewRegistry()
	c := NewStateCache(p, 0, reg)
	const pos, goroutines = 200, 16

	var (
		start = make(chan struct{})
		wg    sync.WaitGroup
		mu    sync.Mutex
		state []byte
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			m, err := c.MachineAt(context.Background(), pos)
			if err != nil {
				t.Error(err)
				return
			}
			if m.Insts != pos {
				t.Errorf("machine at %d, want %d", m.Insts, pos)
				return
			}
			var buf bytes.Buffer
			if err := m.SaveCheckpoint(&buf); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if state == nil {
				state = buf.Bytes()
			} else if !bytes.Equal(state, buf.Bytes()) {
				t.Error("goroutines observed different states for the same position")
			}
		}()
	}
	close(start)
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["parallel.state_cache.misses"]; got != 1 {
		t.Errorf("misses = %d, want exactly 1 (single-flight)", got)
	}
	hits := snap.Counters["parallel.state_cache.hits"]
	if hits != goroutines-1 {
		t.Errorf("hits = %d, want %d", hits, goroutines-1)
	}
	// The build fast-forwarded the prefix exactly once.
	if got := snap.Counters["parallel.state_cache.ff_insts"]; got != pos {
		t.Errorf("ff_insts = %d, want %d", got, pos)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
	if c.Bytes() <= 0 {
		t.Error("cache reports zero serialized bytes")
	}
}

// TestMachineAtChainsFromNearestPredecessor: ascending requests reuse
// the deepest completed entry instead of rebuilding from scratch, so
// total fast-forward work is one pass over the prefix.
func TestMachineAtChainsFromNearestPredecessor(t *testing.T) {
	p := testProgram()
	reg := obs.NewRegistry()
	c := NewStateCache(p, 0, reg)
	ctx := context.Background()
	positions := []uint64{50, 120, 300}
	for _, pos := range positions {
		if _, err := c.MachineAt(ctx, pos); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	want := int64(positions[len(positions)-1]) // 50 + 70 + 180
	if got := snap.Counters["parallel.state_cache.ff_insts"]; got != want {
		t.Errorf("chained ff_insts = %d, want %d (one pass)", got, want)
	}
}

// TestMachineAtIndependentMutation: machines handed out for the same
// position must not share state.
func TestMachineAtIndependentMutation(t *testing.T) {
	p := testProgram()
	c := NewStateCache(p, 0, nil)
	ctx := context.Background()
	a, err := c.MachineAt(ctx, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.MachineAt(ctx, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(10); err != nil {
		t.Fatal(err)
	}
	if b.Insts != 40 {
		t.Errorf("mutating one machine moved the other to %d", b.Insts)
	}
}

func TestMachineAtPastHalt(t *testing.T) {
	p := testProgram()
	m := emu.New(p, 0)
	total, err := m.RunToCompletion(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	c := NewStateCache(p, 0, nil)
	_, err = c.MachineAt(context.Background(), total+100)
	if err == nil || !strings.Contains(err.Error(), "halted") {
		t.Errorf("err = %v, want halt diagnostic", err)
	}
	// The failed position must not be poisoned; a valid one still works.
	if _, err := c.MachineAt(context.Background(), total); err != nil {
		t.Errorf("valid position after failed build: %v", err)
	}
}

func TestMachineAtCancelledContext(t *testing.T) {
	p := testProgram()
	c := NewStateCache(p, 0, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.MachineAt(ctx, 100); err == nil {
		t.Fatal("cancelled build succeeded")
	}
	// A retry with a live context must succeed (no poisoned entry).
	m, err := c.MachineAt(context.Background(), 100)
	if err != nil || m.Insts != 100 {
		t.Fatalf("retry after cancellation: m=%v err=%v", m, err)
	}
}
