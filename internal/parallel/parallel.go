// Package parallel provides the fan-out machinery shared by the
// sampling pipeline and the experiment harness: a context-aware
// indexed worker pool with deterministic error selection, and a
// single-flight cache of functional machine states that lets
// concurrent simulation points share fast-forward work.
//
// The package deliberately contains no simulation policy: callers
// decide what runs per index and how results merge. Determinism is the
// design center — see docs/PARALLELISM.md for the contract.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mlpa/internal/obs"
)

// ForEachOptions tunes a ForEach run. The zero value is ready to use.
type ForEachOptions struct {
	// Metrics, when non-nil, receives scheduler telemetry:
	// gauge parallel.workers (pool size), gauge parallel.queue_depth
	// (indices not yet claimed), counter parallel.tasks_done, gauge
	// parallel.utilization (mean fraction of pool wall time spent
	// inside fn) and histogram parallel.task_seconds.
	Metrics *obs.Registry
	// Stage, when non-nil, receives live fan-out progress: the pool
	// grows the stage's total by n up front and marks one item done per
	// completed fn call, so /progress shows the run mid-flight. A nil
	// Stage (including one from a nil tracker) costs nothing.
	Stage *obs.Stage
}

// ForEach runs fn(ctx, i) for every i in [0, n) on up to workers
// goroutines (workers <= 0 selects GOMAXPROCS). Indices are claimed in
// ascending order, so callers that write results into slot i of a
// pre-sized slice get deterministic output regardless of completion
// order.
//
// Error policy: the first error cancels the context passed to the
// remaining fn calls and stops new indices from being claimed; after
// all in-flight calls drain, ForEach returns the error with the LOWEST
// index — the same error a sequential loop would have returned for any
// failure set, as long as every failing index was attempted.
// Collateral context.Canceled errors from calls aborted by that
// internal cancellation never mask the root cause. If ctx is cancelled
// from outside before any fn fails, ForEach returns ctx.Err().
//
// workers == 1 never spawns a goroutine: fn runs on the calling
// goroutine, index by index, preserving the exact semantics of a plain
// loop.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	return ForEachOpt(ctx, workers, n, fn, ForEachOptions{})
}

// ForEachOpt is ForEach with scheduler telemetry.
func ForEachOpt(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error, opt ForEachOptions) error {
	if n <= 0 {
		return ctx.Err()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	reg := opt.Metrics
	reg.Gauge("parallel.workers").Set(float64(workers))
	opt.Stage.AddTotal(int64(n))

	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			reg.Gauge("parallel.queue_depth").Set(float64(n - i - 1))
			if err := fn(ctx, i); err != nil {
				return err
			}
			reg.Counter("parallel.tasks_done").Inc()
			opt.Stage.Add(1)
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		mu       sync.Mutex
		bestIdx  = n // lowest failing index seen so far
		bestErr  error
		busyNS   atomic.Int64
		poolWall = time.Now() //mlpalint:allow time-now (scheduler telemetry, not simulated state)
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		// A fn aborted by our own cancellation is collateral damage of
		// the true first error; never let it win error selection.
		if errors.Is(err, context.Canceled) && ctx.Err() == nil {
			return
		}
		mu.Lock()
		if i < bestIdx {
			bestIdx, bestErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || wctx.Err() != nil {
					return
				}
				reg.Gauge("parallel.queue_depth").Set(float64(max(n-i-1, 0)))
				t0 := time.Now() //mlpalint:allow time-now (scheduler telemetry, not simulated state)
				err := fn(wctx, i)
				d := time.Since(t0)
				busyNS.Add(d.Nanoseconds())
				reg.Histogram("parallel.task_seconds").Observe(d.Seconds())
				if err != nil {
					record(i, err)
					return
				}
				reg.Counter("parallel.tasks_done").Inc()
				opt.Stage.Add(1)
			}
		}()
	}
	wg.Wait()
	if wall := time.Since(poolWall); wall > 0 {
		reg.Gauge("parallel.utilization").Set(
			float64(busyNS.Load()) / float64(wall.Nanoseconds()) / float64(workers))
	}
	if bestErr != nil {
		return bestErr
	}
	return ctx.Err()
}
