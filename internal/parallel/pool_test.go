package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlpa/internal/obs"
)

// TestPoolBoundsConcurrency: with a pool of capacity 2, at most two
// holders observe each other concurrently no matter how many goroutines
// contend.
func TestPoolBoundsConcurrency(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(2, reg)
	if p.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", p.Cap())
	}
	var inUse, maxSeen atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			n := inUse.Add(1)
			for {
				m := maxSeen.Load()
				if n <= m || maxSeen.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inUse.Add(-1)
			p.Release()
		}()
	}
	wg.Wait()
	if got := maxSeen.Load(); got > 2 {
		t.Errorf("observed %d concurrent holders, cap 2", got)
	}
	if got := reg.Counter("parallel.pool.acquired").Value(); got != 16 {
		t.Errorf("acquired counter = %d, want 16", got)
	}
}

// TestPoolAcquireCancellation: a full pool unblocks a waiting Acquire
// with the context's error when the context dies.
func TestPoolAcquireCancellation(t *testing.T) {
	p := NewPool(1, nil)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- p.Acquire(ctx) }()
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Errorf("Acquire under cancellation = %v, want context.Canceled", err)
	}
	p.Release()
}

// TestNilPool: a nil pool admits everything and is safe to release.
func TestNilPool(t *testing.T) {
	var p *Pool
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.Release()
	if p.Cap() != 0 {
		t.Errorf("nil pool Cap = %d, want 0", p.Cap())
	}
}
