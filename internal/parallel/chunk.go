package parallel

// Cost-aware chunking. ForEach hands every index to the pool
// individually, which is the right shape when tasks are heavy and
// uniform — and a measurable loss when they are fine-grained: each
// task then pays its fixed setup (for simulation points, materializing
// a functional machine) far more often than a sequential pass would.
// PartitionChunks coalesces an index range into contiguous chunks
// sized by estimated cost, and adapts the chunk count to the work
// actually available: when the model says extra workers cannot pay for
// their startup, fewer chunks (down to one — a plain sequential loop)
// are produced, so parallel execution is never slower than workers==1
// by construction.
//
// The partition is a pure function of (n, options): no timing, no
// randomness, no GOMAXPROCS probing unless Workers<=0 is passed. A
// caller that resolves Workers itself gets a machine-independent,
// bit-reproducible schedule.

import (
	"context"
	"runtime"

	"mlpa/internal/obs"
)

// Chunk is a contiguous index range [Start, End).
type Chunk struct {
	Start, End int
}

// Len returns the number of indices in the chunk.
func (c Chunk) Len() int { return c.End - c.Start }

// ChunkOptions parameterizes PartitionChunks. The zero value chunks n
// uniform-cost items across GOMAXPROCS workers.
type ChunkOptions struct {
	// Workers caps the number of chunks (one worker runs one chunk).
	// <= 0 selects GOMAXPROCS.
	Workers int

	// Cost estimates the execution cost of item i in any consistent
	// unit. Nil means every item costs 1. Negative estimates are
	// treated as 0.
	Cost func(i int) float64

	// StartCost estimates the one-time cost a chunk pays before its
	// first item runs when that item is i — for simulation points, the
	// fast-forward or state restore to the chunk's starting position.
	// This is what makes the partitioner conservative about splitting:
	// a split only survives if the shortened per-chunk work outweighs
	// the extra startup. Nil means chunks start for free.
	StartCost func(i int) float64

	// MinChunkCost, when positive, is the smallest summed item cost
	// worth dispatching as its own chunk; the chunk count is capped so
	// no chunk falls below it. It guards against splitting work that is
	// too small to amortize any per-chunk overhead the cost model does
	// not capture.
	MinChunkCost float64
}

// chunkGainThreshold is how much a larger chunk count must improve the
// modeled makespan to be preferred. Ties and marginal wins go to fewer
// chunks: cost models are estimates, and fewer chunks means less
// startup work and less scheduling surface.
const chunkGainThreshold = 0.05

// PartitionChunks splits [0, n) into at most opt.Workers contiguous
// chunks, choosing the chunk count c whose greedy balanced partition
// minimizes the modeled makespan
//
//	max over chunks of StartCost(first item) + sum of item costs,
//
// preferring smaller c unless a larger one wins by more than
// chunkGainThreshold. n <= 0 returns nil; otherwise every index
// appears in exactly one chunk and chunks ascend.
func PartitionChunks(n int, opt ChunkOptions) []Chunk {
	if n <= 0 {
		return nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	cost := make([]float64, n)
	var total float64
	for i := range cost {
		c := 1.0
		if opt.Cost != nil {
			c = opt.Cost(i)
			if c < 0 {
				c = 0
			}
		}
		cost[i] = c
		total += c
	}
	cmax := workers
	if opt.MinChunkCost > 0 {
		if m := int(total / opt.MinChunkCost); m < cmax {
			cmax = max(m, 1)
		}
	}
	best := partitionGreedy(cost, total, 1)
	bestSpan := makespan(best, cost, opt.StartCost)
	for c := 2; c <= cmax; c++ {
		p := partitionGreedy(cost, total, c)
		if s := makespan(p, cost, opt.StartCost); s < bestSpan*(1-chunkGainThreshold) {
			best, bestSpan = p, s
		}
	}
	return best
}

// partitionGreedy cuts the items into c contiguous chunks, each chunk
// absorbing items until it reaches an equal share of the cost that
// remains (the final chunk takes everything left). Chunks are never
// empty: each takes at least one item and leaves at least one per
// chunk still to come.
func partitionGreedy(cost []float64, total float64, c int) []Chunk {
	n := len(cost)
	chunks := make([]Chunk, 0, c)
	start := 0
	remaining := total
	for k := 0; k < c; k++ {
		end := start + 1
		acc := cost[start]
		if k == c-1 {
			for ; end < n; end++ {
				acc += cost[end]
			}
		} else {
			target := remaining / float64(c-k)
			for end < n-(c-k-1) && acc < target {
				acc += cost[end]
				end++
			}
		}
		chunks = append(chunks, Chunk{Start: start, End: end})
		remaining -= acc
		start = end
	}
	return chunks
}

// makespan is the modeled parallel wall time of a partition: the
// heaviest chunk's startup plus work.
func makespan(chunks []Chunk, cost []float64, startCost func(i int) float64) float64 {
	var worst float64
	for _, c := range chunks {
		var load float64
		if startCost != nil {
			load = startCost(c.Start)
		}
		for i := c.Start; i < c.End; i++ {
			load += cost[i]
		}
		if load > worst {
			worst = load
		}
	}
	return worst
}

// ChunkedOptions tunes a ForEachChunked run.
type ChunkedOptions struct {
	ChunkOptions
	// Metrics, when non-nil, receives the pool telemetry of the
	// underlying ForEachOpt plus gauge parallel.chunks (how many chunks
	// the partitioner produced).
	Metrics *obs.Registry
	// Stage, when non-nil, tracks per-item (not per-chunk) progress.
	Stage *obs.Stage
}

// ForEachChunked runs fn(ctx, i) for every i in [0, n) like ForEach,
// but coalesces indices into cost-aware chunks first: each chunk runs
// its indices sequentially in ascending order on one worker, and the
// chunk count adapts to the work available (a single chunk degenerates
// to the exact inline sequential loop). Error selection follows
// ForEach: because chunks are contiguous and ascending and each stops
// at its first failure, the error with the lowest chunk index — the
// sequential loop's error for that failure set — wins.
func ForEachChunked(ctx context.Context, n int, fn func(ctx context.Context, i int) error, opt ChunkedOptions) error {
	chunks := PartitionChunks(n, opt.ChunkOptions)
	if chunks == nil {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	opt.Metrics.Gauge("parallel.chunks").Set(float64(len(chunks)))
	opt.Stage.AddTotal(int64(n))
	return ForEachOpt(ctx, len(chunks), len(chunks), func(ctx context.Context, k int) error {
		c := chunks[k]
		for i := c.Start; i < c.End; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
			opt.Stage.Add(1)
		}
		return nil
	}, ForEachOptions{Metrics: opt.Metrics})
}
