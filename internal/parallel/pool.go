package parallel

import (
	"context"
	"runtime"

	"mlpa/internal/obs"
)

// Pool is a process-wide bounded admission pool: a counting semaphore
// that callers acquire around expensive work so the total concurrency
// across independent requests stays capped regardless of how many
// arrive at once. It carries no work itself — pair it with ForEach (or
// plain code) inside the held slot.
//
// A nil *Pool is valid and admits everything immediately, so callers
// can thread an optional pool through without branching.
type Pool struct {
	sem chan struct{}
	reg *obs.Registry
}

// NewPool creates a pool admitting up to n concurrent holders (n <= 0
// selects GOMAXPROCS). reg, when non-nil, receives gauge
// parallel.pool.in_use and counter parallel.pool.acquired.
func NewPool(n int, reg *obs.Registry) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, n), reg: reg}
}

// Acquire blocks until a slot is free or ctx is done, returning
// ctx.Err() in the latter case. Every successful Acquire must be paired
// with exactly one Release.
func (p *Pool) Acquire(ctx context.Context) error {
	if p == nil {
		return nil
	}
	select {
	case p.sem <- struct{}{}:
		p.reg.Counter("parallel.pool.acquired").Inc()
		p.reg.Gauge("parallel.pool.in_use").Set(float64(len(p.sem)))
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot taken by Acquire.
func (p *Pool) Release() {
	if p == nil {
		return
	}
	<-p.sem
	p.reg.Gauge("parallel.pool.in_use").Set(float64(len(p.sem)))
}

// Cap returns the pool's concurrency bound (0 for a nil pool).
func (p *Pool) Cap() int {
	if p == nil {
		return 0
	}
	return cap(p.sem)
}
