package parallel

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"

	"mlpa/internal/emu"
	"mlpa/internal/obs"
	"mlpa/internal/prog"
)

// StateCache caches functional-machine architectural states at
// instruction boundaries of one program, so concurrent simulation
// points fast-forwarding past the same prefix share the work instead
// of redoing it. Entries are serialized checkpoints (zero words
// elided), created single-flight: when several workers ask for the
// same instruction position at once, exactly one executes the
// fast-forward and the rest wait for its checkpoint.
//
// The cache is keyed by instruction count alone. A machine's
// architectural state at instruction N is a pure function of (program,
// memory size, N) — it does not depend on the microarchitectural
// configuration the caller will simulate the point under — so one
// cache serves every cpu.Config, which is what lets Table II's config
// A and B sweeps reuse each other's fast-forwards.
//
// A build for position N starts from the nearest already-completed
// entry at or below N (falling back to the initial state), so a plan's
// sorted points naturally chain: each point's worker extends the
// deepest prefix any earlier worker has published.
type StateCache struct {
	p        *prog.Program
	memWords int64

	// chunk bounds the instructions executed between context-
	// cancellation checks during a build.
	chunk uint64

	// Metrics, when non-nil, receives counter parallel.state_cache.hits
	// (waits on an existing entry), counter parallel.state_cache.misses
	// (builds), counter parallel.state_cache.ff_insts (instructions
	// actually fast-forwarded by builds) and gauge
	// parallel.state_cache.bytes (serialized footprint).
	metrics *obs.Registry

	mu      sync.Mutex
	entries map[uint64]*stateEntry
	keys    []uint64 // sorted positions with an entry (ready or in flight)
	bytes   int64
}

type stateEntry struct {
	pos   uint64
	done  chan struct{}
	state []byte
	err   error
}

func (e *stateEntry) ready() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// defaultChunk keeps cancellation latency of a build in the
// low-millisecond range at interpreter speed.
const defaultChunk = 1 << 20

// NewStateCache creates an empty cache for p. memWords, if positive,
// fixes the data-memory size of the machines the cache materializes
// (the same value callers would pass emu.New); reg may be nil.
func NewStateCache(p *prog.Program, memWords int64, reg *obs.Registry) *StateCache {
	return &StateCache{
		p:        p,
		memWords: memWords,
		chunk:    defaultChunk,
		metrics:  reg,
		entries:  make(map[uint64]*stateEntry),
	}
}

// MachineAt returns an independent machine positioned exactly at
// instruction pos (committed-instruction count), materialized from the
// cache. The machine is the caller's to mutate. Position 0 is the
// initial state. An error is returned if the program halts before pos
// or ctx is cancelled while fast-forwarding.
func (c *StateCache) MachineAt(ctx context.Context, pos uint64) (*emu.Machine, error) {
	if pos == 0 {
		return emu.New(c.p, c.memWords), nil
	}
	c.mu.Lock()
	if e, ok := c.entries[pos]; ok {
		c.mu.Unlock()
		c.metrics.Counter("parallel.state_cache.hits").Inc()
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err != nil {
			return nil, e.err
		}
		return c.restore(e.state)
	}
	e := &stateEntry{pos: pos, done: make(chan struct{})}
	c.entries[pos] = e
	c.insertKey(pos)
	base := c.nearestReadyBelowLocked(pos)
	c.mu.Unlock()
	c.metrics.Counter("parallel.state_cache.misses").Inc()

	m, err := c.build(ctx, base, pos)
	if err != nil {
		e.err = err
		close(e.done)
		// A cancelled or failed build must not poison the position for
		// future callers (a retry with a live context should succeed):
		// drop the entry.
		c.mu.Lock()
		delete(c.entries, pos)
		c.removeKey(pos)
		c.mu.Unlock()
		return nil, err
	}
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		e.err = err
		close(e.done)
		return nil, err
	}
	e.state = buf.Bytes()
	close(e.done)
	c.mu.Lock()
	c.bytes += int64(len(e.state))
	c.metrics.Gauge("parallel.state_cache.bytes").Set(float64(c.bytes))
	c.mu.Unlock()
	return m, nil
}

// build fast-forwards from the base entry (nil = initial state) to pos.
func (c *StateCache) build(ctx context.Context, base *stateEntry, pos uint64) (*emu.Machine, error) {
	var m *emu.Machine
	if base != nil && base.err == nil {
		var err error
		if m, err = c.restore(base.state); err != nil {
			return nil, err
		}
	} else {
		m = emu.New(c.p, c.memWords)
	}
	var ffed uint64
	for m.Insts < pos {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		step := pos - m.Insts
		if step > c.chunk {
			step = c.chunk
		}
		n, err := m.Run(step)
		ffed += n
		if err != nil {
			return nil, fmt.Errorf("parallel: fast-forward to instruction %d of %s: %w", pos, c.p.Name, err)
		}
		if n < step && m.Halted {
			return nil, fmt.Errorf("parallel: %s halted at instruction %d before reaching %d", c.p.Name, m.Insts, pos)
		}
	}
	c.metrics.Counter("parallel.state_cache.ff_insts").Add(int64(ffed))
	return m, nil
}

func (c *StateCache) restore(state []byte) (*emu.Machine, error) {
	m := emu.New(c.p, c.memWords)
	if err := m.LoadCheckpoint(bytes.NewReader(state)); err != nil {
		return nil, fmt.Errorf("parallel: restore cached state: %w", err)
	}
	return m, nil
}

// nearestReadyBelowLocked returns the deepest completed entry at or
// below pos, or nil. Caller holds mu.
func (c *StateCache) nearestReadyBelowLocked(pos uint64) *stateEntry {
	i := sort.Search(len(c.keys), func(i int) bool { return c.keys[i] > pos })
	for i--; i >= 0; i-- {
		if e := c.entries[c.keys[i]]; e != nil && e.ready() && e.err == nil {
			return e
		}
	}
	return nil
}

func (c *StateCache) insertKey(pos uint64) {
	i := sort.Search(len(c.keys), func(i int) bool { return c.keys[i] >= pos })
	c.keys = append(c.keys, 0)
	copy(c.keys[i+1:], c.keys[i:])
	c.keys[i] = pos
}

func (c *StateCache) removeKey(pos uint64) {
	i := sort.Search(len(c.keys), func(i int) bool { return c.keys[i] >= pos })
	if i < len(c.keys) && c.keys[i] == pos {
		c.keys = append(c.keys[:i], c.keys[i+1:]...)
	}
}

// Program returns the program this cache materializes states for.
func (c *StateCache) Program() *prog.Program { return c.p }

// Bytes returns the serialized footprint of all completed entries.
func (c *StateCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the number of cached (or in-flight) positions.
func (c *StateCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
