package vli

import (
	"testing"

	"mlpa/internal/bench"
	"mlpa/internal/sampling"
	"mlpa/internal/simpoint"
)

func testCfg() Config {
	return Config{
		TargetLen: bench.FineInterval(bench.SizeTiny),
		Kmax:      30,
		Seed:      1,
	}
}

func TestChooseStructureFindsInnerLoop(t *testing.T) {
	spec, err := bench.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	heads, err := ChooseStructures(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(heads) == 0 {
		t.Fatal("no structures chosen for a loop-heavy benchmark")
	}
	// The outer loop must not be among them: its iterations are far
	// larger than half the target.
	for _, h := range heads {
		if h == bench.OuterLoopHead(p) {
			t.Error("chose the outer loop as fine boundary structure")
		}
	}
}

func TestProfileBoundariesAreVariable(t *testing.T) {
	spec, err := bench.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	cfg := testCfg()
	heads, err := ChooseStructures(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Profile(p, heads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Intervals are at least the target long and genuinely variable.
	varied := false
	first := tr.Intervals[0].Len()
	for _, iv := range tr.Intervals[:len(tr.Intervals)-1] {
		if iv.Len() < cfg.TargetLen {
			t.Fatalf("interval %d shorter (%d) than target %d", iv.Index, iv.Len(), cfg.TargetLen)
		}
		if iv.Len() != first {
			varied = true
		}
	}
	if !varied {
		t.Error("all intervals identical; boundaries not variable")
	}
}

func TestProfileFixedFallback(t *testing.T) {
	spec, err := bench.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	cfg := testCfg()
	tr, err := Profile(p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kind != "fixed" {
		t.Errorf("fallback kind = %v", tr.Kind)
	}
}

func TestProfileErrors(t *testing.T) {
	spec, _ := bench.ByName("gzip")
	p := spec.MustProgram(bench.SizeTiny)
	if _, err := Profile(p, nil, Config{}); err == nil {
		t.Error("zero TargetLen accepted")
	}
}

// TestPaperClaimVLINoSpeedup reproduces the Section V observation:
// variable-length intervals do not reduce simulation time relative to
// fixed-length SimPoint — the dominant functional portion stays.
func TestPaperClaimVLINoSpeedup(t *testing.T) {
	tm := sampling.SimpleScalarRates
	var ratios []float64
	for _, name := range []string{"gzip", "swim", "crafty"} {
		spec, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p := spec.MustProgram(bench.SizeTiny)
		vliPlan, _, _, err := Select(p, testCfg())
		if err != nil {
			t.Fatal(err)
		}
		spPlan, _, _, err := simpoint.Select(p, simpoint.Config{
			IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 30, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, tm.Speedup(vliPlan, spPlan))
	}
	for i, r := range ratios {
		// "Does not gain performance improvement": within ~2x either
		// way of fixed SimPoint, nothing like the coarse method's
		// order-of-magnitude wins.
		if r > 3 || r < 1.0/3 {
			t.Errorf("VLI/SimPoint time ratio %d = %v; expected near parity", i, r)
		}
	}
}

func TestSelectPlanValid(t *testing.T) {
	spec, _ := bench.ByName("equake")
	p := spec.MustProgram(bench.SizeTiny)
	plan, tr, km, err := Select(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != MethodName {
		t.Errorf("method = %q", plan.Method)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if km.K < 2 || len(tr.Intervals) < 10 {
		t.Errorf("K=%d intervals=%d", km.K, len(tr.Intervals))
	}
}
