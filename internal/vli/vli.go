// Package vli implements a variable-length-interval fine-grained
// sampling method in the spirit of the Software Phase Marker work (Lau
// et al., CGO'06) that the paper compares against: instead of fixed
// instruction counts, interval boundaries align with iterations of an
// inner cyclic program structure, grouped to approximately a target
// length. The paper's Section V observation — variable-length
// intervals make phase boundaries more natural but do not reduce the
// dominant functional simulation time — is reproduced by the
// corresponding ablation.
package vli

import (
	"fmt"

	"mlpa/internal/bbv"
	"mlpa/internal/emu"
	"mlpa/internal/kmeans"
	"mlpa/internal/phase"
	"mlpa/internal/prog"
	"mlpa/internal/sampling"
	"mlpa/internal/simpoint"
)

// Config parameterizes VLI sampling.
type Config struct {
	// TargetLen is the approximate interval length in instructions;
	// intervals end at the first structure boundary at or beyond it.
	TargetLen uint64
	// Kmax bounds the cluster count (default 30, as for SimPoint).
	Kmax int
	// Dims is the projected BBV dimensionality (default 15).
	Dims int
	// Seed drives projection and clustering.
	Seed int64
	// BICFraction is the model-selection threshold (default 0.9).
	BICFraction float64
	// SampleCap bounds clustering input (0 = all intervals).
	SampleCap int
	// MinCoverage filters candidate structures (default 1%).
	MinCoverage float64
}

// MethodName is the plan label.
const MethodName = "vli"

// ChooseStructures picks the boundary-providing cyclic structures:
// every significant structure whose mean iteration is at most half the
// target length, so several boundaries fall within each target-sized
// interval in every phase of the program (SPM marks loops and
// procedures throughout the code, not a single site). Returns nil when
// none qualifies (callers fall back to fixed intervals).
func ChooseStructures(p *prog.Program, cfg Config) ([]int64, error) {
	minCov := cfg.MinCoverage
	if minCov <= 0 {
		minCov = 0.01
	}
	m := emu.New(p, 0)
	lp := emu.NewLoopProfiler(m)
	m.Branch = lp.OnBranch
	if _, err := m.RunToCompletion(1 << 40); err != nil {
		return nil, fmt.Errorf("vli: boundary collection for %s: %w", p.Name, err)
	}
	lp.Finish()
	var heads []int64
	for _, s := range lp.Significant(m.Insts, minCov) {
		if s.MeanIter() > float64(cfg.TargetLen)/2 {
			continue
		}
		heads = append(heads, s.Head)
	}
	return heads, nil
}

// Profile collects variable-length intervals: each interval ends at
// the first back-edge of any marked structure after TargetLen
// instructions have accumulated. An empty head set degrades to
// fixed-length intervals.
func Profile(p *prog.Program, heads []int64, cfg Config) (*phase.Trace, error) {
	if cfg.TargetLen == 0 {
		return nil, fmt.Errorf("vli: TargetLen = 0")
	}
	dims := cfg.Dims
	if dims <= 0 {
		dims = bbv.DefaultDims
	}
	proj, err := bbv.NewProjector(p.NumBlocks(), dims, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if len(heads) == 0 {
		return phase.CollectFixed(p, proj, cfg.TargetLen)
	}

	headSet := make(map[int64]bool, len(heads))
	for _, h := range heads {
		headSet[h] = true
	}
	m := emu.New(p, 0)
	tr := &phase.Trace{Benchmark: p.Name, Kind: phase.Kind("vli")}
	var (
		start  uint64
		bounds []uint64
		raws   [][]uint64
	)
	m.Branch = func(from, to int64) {
		if to > from || !headSet[to] {
			return
		}
		if m.Insts-start < cfg.TargetLen {
			return
		}
		raws = append(raws, m.SnapshotBlockCounts())
		m.ResetBlockCounts()
		bounds = append(bounds, m.Insts)
		start = m.Insts
	}
	if _, err := m.RunToCompletion(1 << 40); err != nil {
		return nil, fmt.Errorf("vli: profile of %s: %w", p.Name, err)
	}
	final := m.SnapshotBlockCounts()
	nonzero := false
	for _, c := range final {
		if c != 0 {
			nonzero = true
			break
		}
	}
	if nonzero || len(raws) == 0 {
		raws = append(raws, final)
		bounds = append(bounds, m.Insts)
	} else {
		bounds[len(bounds)-1] = m.Insts
	}

	prev := uint64(0)
	for i, counts := range raws {
		vec, err := proj.Signature(counts)
		if err != nil {
			return nil, err
		}
		tr.Intervals = append(tr.Intervals, phase.Interval{
			Index:  i,
			Start:  prev,
			End:    bounds[i],
			Vector: vec,
		})
		prev = bounds[i]
	}
	tr.TotalInsts = m.Insts
	return tr, tr.Validate()
}

// Select runs the complete VLI pipeline: structure choice, profiling,
// clustering, representative selection. Weighting and representative
// choice match SimPoint (nearest centroid, instruction-share weights);
// only the interval boundaries differ, which is precisely the variable
// the paper's comparison isolates.
func Select(p *prog.Program, cfg Config) (*sampling.Plan, *phase.Trace, *kmeans.Result, error) {
	heads, err := ChooseStructures(p, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	tr, err := Profile(p, heads, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	spCfg := simpoint.Config{
		Kmax:        cfg.Kmax,
		Dims:        cfg.Dims,
		Seed:        cfg.Seed,
		BICFraction: cfg.BICFraction,
		SampleCap:   cfg.SampleCap,
		IntervalLen: cfg.TargetLen,
	}
	plan, km, err := simpoint.SelectFromTrace(tr, spCfg)
	if err != nil {
		return nil, nil, nil, err
	}
	plan.Method = MethodName
	return plan, tr, km, nil
}
