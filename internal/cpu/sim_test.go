package cpu

import (
	"testing"

	"mlpa/internal/bpred"
	"mlpa/internal/cache"
	"mlpa/internal/emu"
	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

// testConfig is a Table-I-A-like configuration assembled locally to
// avoid an import cycle with package config.
func testConfig() Config {
	cfg := Config{
		Name:        "test",
		FetchWidth:  8,
		IssueWidth:  8,
		CommitWidth: 8,
		ROBSize:     128,
		LSQSize:     64,
		Predictor:   bpred.KindCombined,
		BHTEntries:  8192,
		Caches: cache.HierarchyConfig{
			IL1:      cache.Config{Name: "il1", TotalBytes: 8 << 10, Assoc: 2, BlockBytes: 32, Latency: 1},
			DL1:      cache.Config{Name: "dl1", TotalBytes: 16 << 10, Assoc: 4, BlockBytes: 32, Latency: 2},
			L2:       cache.Config{Name: "ul2", TotalBytes: 1 << 20, Assoc: 4, BlockBytes: 32, Latency: 20},
			MemFirst: 150,
			MemNext:  10,
		},
		SchedWindow:       32,
		MispredictPenalty: 3,
	}
	cfg.FUs[isa.ClassIntALU] = 8
	cfg.FUs[isa.ClassLoad] = 4
	cfg.FUs[isa.ClassFPAdd] = 2
	cfg.FUs[isa.ClassIntMul] = 2
	cfg.FUs[isa.ClassFPMul] = 2
	return cfg
}

func runProgram(t *testing.T, src string) Result {
	t.Helper()
	p, err := prog.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p, 0)
	s := MustNew(testConfig())
	res, err := s.Run(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func counterLoop(trips int) string {
	return `
    addi r1, r0, ` + itoa(trips) + `
loop:
    addi r2, r2, 1
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
`
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := cfg
	bad.ROBSize = 1
	if err := bad.Validate(); err == nil {
		t.Error("tiny ROB accepted")
	}
	bad = cfg
	bad.FUs[isa.ClassIntALU] = 0
	if err := bad.Validate(); err == nil {
		t.Error("no-ALU config accepted")
	}
	bad = cfg
	bad.SchedWindow = 2
	if err := bad.Validate(); err == nil {
		t.Error("window < issue width accepted")
	}
	if _, err := New(bad); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestRunCommitsAllInstructions(t *testing.T) {
	res := runProgram(t, counterLoop(100))
	want := uint64(1 + 100*3 + 1)
	if res.Insts != want {
		t.Errorf("Insts = %d, want %d", res.Insts, want)
	}
	if res.Cycles == 0 {
		t.Error("Cycles = 0")
	}
	if res.CPI() <= 0 {
		t.Errorf("CPI = %v", res.CPI())
	}
}

func TestCPIBounds(t *testing.T) {
	res := runProgram(t, counterLoop(2000))
	cpi := res.CPI()
	// A dependent-chain loop can't beat 1/width and shouldn't be
	// catastrophically slow on an 8-wide machine with warm caches.
	if cpi < 1.0/8 {
		t.Errorf("CPI = %v below theoretical minimum", cpi)
	}
	if cpi > 20 {
		t.Errorf("CPI = %v implausibly high for an ALU loop", cpi)
	}
}

func TestDependentChainSlowerThanIndependent(t *testing.T) {
	// Serial chain: every mul depends on the previous one.
	serial := `
    addi r1, r0, 1
    addi r9, r0, 200
chain:
    mul r1, r1, r1
    mul r1, r1, r1
    mul r1, r1, r1
    mul r1, r1, r1
    addi r9, r9, -1
    bne r9, r0, chain
    halt
`
	// Independent muls: same op count, no chain.
	parallel := `
    addi r1, r0, 1
    addi r9, r0, 200
par:
    mul r2, r1, r1
    mul r3, r1, r1
    mul r4, r1, r1
    mul r5, r1, r1
    addi r9, r9, -1
    bne r9, r0, par
    halt
`
	rs := runProgram(t, serial)
	rp := runProgram(t, parallel)
	if rs.CPI() <= rp.CPI() {
		t.Errorf("serial CPI %v <= parallel CPI %v; dependences not modeled", rs.CPI(), rp.CPI())
	}
}

func TestCacheMissesRaiseCPI(t *testing.T) {
	// Streaming loads over 1 MiB (beyond L1, beyond nothing of L2) vs
	// repeatedly loading one word.
	missy := `
    addi r1, r0, 0
    addi r9, r0, 4000
miss:
    ld   r2, 0(r1)
    addi r1, r1, 4096
    addi r9, r9, -1
    bne  r9, r0, miss
    halt
`
	hitty := `
    addi r1, r0, 0
    addi r9, r0, 4000
hit:
    ld   r2, 0(r1)
    addi r3, r3, 1
    addi r9, r9, -1
    bne  r9, r0, hit
    halt
`
	rm := runProgram(t, missy)
	rh := runProgram(t, hitty)
	if rm.CPI() <= rh.CPI()*1.5 {
		t.Errorf("missing CPI %v not clearly above hitting CPI %v", rm.CPI(), rh.CPI())
	}
	if rm.DL1.MissRate() < 0.5 {
		t.Errorf("streaming loads DL1 miss rate = %v, want high", rm.DL1.MissRate())
	}
	if rh.DL1.MissRate() > 0.01 {
		t.Errorf("single-word loads DL1 miss rate = %v, want ~0", rh.DL1.MissRate())
	}
}

func TestBranchMispredictsRaiseCPI(t *testing.T) {
	// Data-dependent unpredictable branches via xorshift PRNG vs a
	// perfectly biased loop of the same size.
	random := `
    addi r1, r0, 12345
    addi r9, r0, 5000
rloop:
    shli r2, r1, 13
    xor  r1, r1, r2
    shri r2, r1, 7
    xor  r1, r1, r2
    shli r2, r1, 17
    xor  r1, r1, r2
    andi r3, r1, 1
    beq  r3, r0, skip
    addi r4, r4, 1
skip:
    addi r9, r9, -1
    bne  r9, r0, rloop
    halt
`
	biased := `
    addi r1, r0, 1
    addi r9, r0, 5000
bloop:
    addi r2, r2, 1
    addi r3, r3, 1
    addi r4, r4, 1
    addi r5, r5, 1
    addi r6, r6, 1
    addi r7, r7, 1
    addi r8, r8, 1
    beq  r0, r1, never
    addi r9, r9, -1
    bne  r9, r0, bloop
never:
    halt
`
	rr := runProgram(t, random)
	rb := runProgram(t, biased)
	if rr.Branch.Accuracy() >= 0.98 {
		t.Errorf("random branch accuracy = %v, want < 0.98", rr.Branch.Accuracy())
	}
	if rb.Branch.Accuracy() < 0.98 {
		t.Errorf("biased branch accuracy = %v, want >= 0.98", rb.Branch.Accuracy())
	}
	if rr.CPI() <= rb.CPI() {
		t.Errorf("random-branch CPI %v <= biased CPI %v; mispredict penalty not modeled", rr.CPI(), rb.CPI())
	}
}

func TestRunInChunksMatchesSingleRun(t *testing.T) {
	src := counterLoop(500)
	p, err := prog.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	// Single run.
	m1 := emu.New(p, 0)
	s1 := MustNew(testConfig())
	whole, err := s1.Run(m1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Chunked runs on one persistent context.
	m2 := emu.New(p, 0)
	s2 := MustNew(testConfig())
	var sum Result
	for !m2.Halted {
		r, err := s2.Run(m2, 300)
		if err != nil {
			t.Fatal(err)
		}
		sum.Add(r)
	}
	if sum.Insts != whole.Insts {
		t.Fatalf("chunked Insts %d != whole %d", sum.Insts, whole.Insts)
	}
	// Chunk boundaries drain the pipeline, so cycles differ slightly.
	ratio := float64(sum.Cycles) / float64(whole.Cycles)
	if ratio < 0.9 || ratio > 1.5 {
		t.Errorf("chunked cycles %d vs whole %d (ratio %v)", sum.Cycles, whole.Cycles, ratio)
	}
	if sum.L1.Accesses == 0 || sum.L2.Accesses == 0 {
		t.Error("chunked runs lost cache stats")
	}
}

func TestMaxInstsExact(t *testing.T) {
	p, err := prog.Assemble("t", counterLoop(1000))
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p, 0)
	s := MustNew(testConfig())
	res, err := s.Run(m, 123)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != 123 {
		t.Errorf("Insts = %d, want 123", res.Insts)
	}
	if m.Insts != 123 {
		t.Errorf("machine advanced %d, want 123", m.Insts)
	}
	if m.Halted {
		t.Error("machine halted prematurely")
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// Store then immediately load the same address repeatedly: loads
	// should forward, keeping DL1 load misses minimal and CPI low.
	src := `
    addi r1, r0, 256
    addi r9, r0, 1000
sl:
    st   r9, 0(r1)
    ld   r2, 0(r1)
    addi r9, r9, -1
    bne  r9, r0, sl
    halt
`
	res := runProgram(t, src)
	if res.CPI() > 5 {
		t.Errorf("store/load loop CPI = %v, forwarding broken?", res.CPI())
	}
	if res.Insts != uint64(2+1000*4+1) {
		t.Errorf("Insts = %d", res.Insts)
	}
}

func TestFPLatencyVisible(t *testing.T) {
	fdivChain := `
    addi r1, r0, 3
    cvtif f1, r1
    cvtif f2, r1
    addi r9, r0, 300
fl:
    fdiv f1, f1, f2
    addi r9, r9, -1
    bne  r9, r0, fl
    halt
`
	faddChain := `
    addi r1, r0, 3
    cvtif f1, r1
    cvtif f2, r1
    addi r9, r0, 300
al:
    fadd f1, f1, f2
    addi r9, r9, -1
    bne  r9, r0, al
    halt
`
	rd := runProgram(t, fdivChain)
	ra := runProgram(t, faddChain)
	if rd.CPI() <= ra.CPI() {
		t.Errorf("fdiv chain CPI %v <= fadd chain CPI %v", rd.CPI(), ra.CPI())
	}
}

func TestResultAdd(t *testing.T) {
	a := Result{Insts: 10, Cycles: 20, L1: cache.Stats{Accesses: 5, Misses: 1}}
	b := Result{Insts: 30, Cycles: 40, L1: cache.Stats{Accesses: 7, Misses: 2}}
	a.Add(b)
	if a.Insts != 40 || a.Cycles != 60 {
		t.Errorf("Add: %+v", a)
	}
	if a.L1.Accesses != 12 || a.L1.Misses != 3 {
		t.Errorf("Add stats: %+v", a.L1)
	}
}

func TestResultRates(t *testing.T) {
	r := Result{Insts: 100, Cycles: 250}
	if r.CPI() != 2.5 {
		t.Errorf("CPI = %v", r.CPI())
	}
	if r.IPC() != 0.4 {
		t.Errorf("IPC = %v", r.IPC())
	}
	var zero Result
	if zero.CPI() != 0 || zero.IPC() != 0 {
		t.Error("zero-result rates not 0")
	}
}

func TestDeterministicTiming(t *testing.T) {
	run := func() Result { return runProgram(t, counterLoop(777)) }
	r1, r2 := run(), run()
	if r1.Cycles != r2.Cycles || r1.Insts != r2.Insts {
		t.Errorf("non-deterministic timing: %+v vs %+v", r1, r2)
	}
	if r1.L1 != r2.L1 || r1.L2 != r2.L2 {
		t.Error("non-deterministic cache stats")
	}
}

func TestLSQPressure(t *testing.T) {
	// 100 back-to-back independent stores exceed the 64-entry LSQ; the
	// simulator must make progress without deadlock.
	src := `
    addi r9, r0, 50
outer:
    st r1, 0(r0)
    st r1, 8(r0)
    st r1, 16(r0)
    st r1, 24(r0)
    st r1, 32(r0)
    st r1, 40(r0)
    st r1, 48(r0)
    st r1, 56(r0)
    addi r9, r9, -1
    bne r9, r0, outer
    halt
`
	res := runProgram(t, src)
	if res.Insts != uint64(1+50*10+1) {
		t.Errorf("Insts = %d", res.Insts)
	}
}

func TestRunWindowMeasuresMiddle(t *testing.T) {
	p, err := prog.Assemble("t", counterLoop(3000))
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p, 0)
	s := MustNew(testConfig())
	res, err := s.RunWindow(m, 500, 1000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != 1000 {
		t.Errorf("measured %d instructions, want 1000", res.Insts)
	}
	// The machine advanced through lead + window + tail.
	if m.Insts != 2000 {
		t.Errorf("machine at %d, want 2000", m.Insts)
	}
	if res.Cycles == 0 || res.CPI() <= 0 {
		t.Errorf("window result = %+v", res)
	}
}

func TestRunWindowLeadRemovesRamp(t *testing.T) {
	// The same region measured with and without a lead-in: the cold
	// pipeline ramp should make the no-lead measurement slower.
	run := func(lead uint64) Result {
		p, err := prog.Assemble("t", counterLoop(3000))
		if err != nil {
			t.Fatal(err)
		}
		m := emu.New(p, 0)
		s := MustNew(testConfig())
		if lead == 0 {
			if _, err := m.Run(512); err != nil {
				t.Fatal(err)
			}
		}
		res, err := s.RunWindow(m, lead, 2000, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	warm := run(512)
	cold := run(0)
	if warm.CPI() >= cold.CPI() {
		t.Errorf("lead-in CPI %v not below cold CPI %v", warm.CPI(), cold.CPI())
	}
}

func TestRunWindowHaltInsideTail(t *testing.T) {
	p, err := prog.Assemble("t", counterLoop(100)) // 302 insts total
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p, 0)
	s := MustNew(testConfig())
	res, err := s.RunWindow(m, 50, 200, 1000) // tail exceeds program
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != 200 {
		t.Errorf("measured %d, want 200", res.Insts)
	}
	if !m.Halted {
		t.Error("program should have halted inside the tail")
	}
}

func TestWarmCodeLeavesDataCold(t *testing.T) {
	// 200 strided loads cover 12.8 KiB — resident in the 16 KiB DL1
	// once touched.
	src := `
    addi r9, r0, 200
w:
    ld   r2, 0(r1)
    addi r1, r1, 64
    addi r9, r9, -1
    bne  r9, r0, w
    halt
`
	p, err := prog.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	// WarmCode replay must not pre-fill the data cache: a detailed run
	// after WarmCode should still see DL1 misses, while after full
	// Warm it should not.
	measure := func(full bool) float64 {
		m := emu.New(p, 0)
		s := MustNew(testConfig())
		clone := m.Clone()
		var err error
		if full {
			err = s.Warm(clone, 4000)
		} else {
			err = s.WarmCode(clone, 4000)
		}
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(m, 4000)
		if err != nil {
			t.Fatal(err)
		}
		return res.DL1.MissRate()
	}
	codeOnly := measure(false)
	fullWarm := measure(true)
	if codeOnly <= fullWarm {
		t.Errorf("WarmCode DL1 miss rate %v not above full-warm %v", codeOnly, fullWarm)
	}
	if codeOnly < 0.2 {
		t.Errorf("WarmCode erased compulsory data misses: miss rate %v", codeOnly)
	}
}

func TestWarmMeasured(t *testing.T) {
	p, err := prog.Assemble("t", counterLoop(500))
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p, 0)
	s := MustNew(testConfig())
	res, err := s.WarmMeasured(m, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != 1000 {
		t.Errorf("Insts = %d, want 1000", res.Insts)
	}
	if res.Cycles != 0 {
		t.Errorf("warm mode reported %d cycles", res.Cycles)
	}
	if res.Branch.Lookups == 0 || res.IL1.Accesses == 0 {
		t.Errorf("warm mode lost stats: %+v", res)
	}
	// Runs to halt when the budget exceeds the program.
	res2, err := s.WarmMeasured(m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Halted {
		t.Error("machine not halted")
	}
	if res2.Insts == 0 {
		t.Error("second warm region empty")
	}
}
