// Package cpu implements the detailed cycle-level out-of-order
// processor model — the reproduction's stand-in for SimpleScalar 3.0
// sim-outorder. It is execution-driven: the functional emulator
// supplies the committed instruction stream (PCs, memory addresses,
// branch outcomes) and the timing model accounts cycles through an
// 8-wide fetch/issue/commit pipeline with a reorder buffer,
// load/store queue, functional-unit pools, branch prediction, and the
// IL1/DL1/UL2 cache hierarchy of Table I.
package cpu

import (
	"fmt"

	"mlpa/internal/bpred"
	"mlpa/internal/cache"
	"mlpa/internal/isa"
)

// Config is a machine configuration (Table I).
type Config struct {
	Name string

	FetchWidth  int
	IssueWidth  int
	CommitWidth int

	ROBSize int
	LSQSize int

	// FUs[class] is the number of functional units of each class.
	// ClassNop and ClassBranch are ignored (branches execute on the
	// integer ALUs, as in SimpleScalar).
	FUs [isa.NumClasses]int

	Predictor  bpred.Kind
	BHTEntries int

	Caches cache.HierarchyConfig

	// SchedWindow is the number of oldest un-issued instructions the
	// scheduler examines per cycle (the RUU scan width).
	SchedWindow int

	// MispredictPenalty is the front-end refill penalty in cycles
	// charged after a mispredicted branch resolves.
	MispredictPenalty int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FetchWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1 {
		return fmt.Errorf("cpu config %q: non-positive widths", c.Name)
	}
	if c.ROBSize < 2 || c.LSQSize < 1 {
		return fmt.Errorf("cpu config %q: ROB/LSQ too small", c.Name)
	}
	if c.FUs[isa.ClassIntALU] < 1 || c.FUs[isa.ClassLoad] < 1 {
		return fmt.Errorf("cpu config %q: missing integer ALU or load/store units", c.Name)
	}
	if c.SchedWindow < c.IssueWidth {
		return fmt.Errorf("cpu config %q: scheduler window %d below issue width %d", c.Name, c.SchedWindow, c.IssueWidth)
	}
	if c.MispredictPenalty < 0 {
		return fmt.Errorf("cpu config %q: negative mispredict penalty", c.Name)
	}
	if err := c.Caches.IL1.Validate(); err != nil {
		return err
	}
	if err := c.Caches.DL1.Validate(); err != nil {
		return err
	}
	if err := c.Caches.L2.Validate(); err != nil {
		return err
	}
	return nil
}

// Result reports the timing outcome of one detailed simulation region.
type Result struct {
	Insts  uint64
	Cycles uint64

	L1  cache.Stats // IL1+DL1 combined
	IL1 cache.Stats
	DL1 cache.Stats
	L2  cache.Stats

	Branch bpred.Stats
}

// CPI returns cycles per committed instruction.
func (r Result) CPI() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Insts)
}

// IPC returns committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// L1HitRate returns the combined L1 hit rate (paper Table II metric).
func (r Result) L1HitRate() float64 { return r.L1.HitRate() }

// L2HitRate returns the unified L2 hit rate (paper Table II metric).
func (r Result) L2HitRate() float64 { return r.L2.HitRate() }

// Add accumulates another region's counts into r (used to aggregate a
// full run simulated in chunks).
func (r *Result) Add(o Result) {
	r.Insts += o.Insts
	r.Cycles += o.Cycles
	addStats := func(dst *cache.Stats, s cache.Stats) {
		dst.Accesses += s.Accesses
		dst.Misses += s.Misses
		dst.Writebacks += s.Writebacks
	}
	addStats(&r.L1, o.L1)
	addStats(&r.IL1, o.IL1)
	addStats(&r.DL1, o.DL1)
	addStats(&r.L2, o.L2)
	r.Branch.Lookups += o.Branch.Lookups
	r.Branch.DirMisses += o.Branch.DirMisses
	r.Branch.TargetMisses += o.Branch.TargetMisses
}
