package cpu

import (
	"fmt"
	"time"

	"mlpa/internal/bpred"
	"mlpa/internal/cache"
	"mlpa/internal/emu"
	"mlpa/internal/isa"
	"mlpa/internal/obs"
)

// robEntry is one in-flight instruction.
type robEntry struct {
	seq     uint64
	class   isa.Class
	latency int

	// Dependencies: up to two producing ROB entries, identified by
	// (index, seq) so retired producers are recognized as satisfied.
	dep     [2]int32
	depSeq  [2]uint64
	numDeps int8

	issued  bool
	doneAt  uint64 // cycle result is available; valid once issued
	isLoad  bool
	isStore bool
	hasDst  bool
	dst     isa.Reg
	addr    int64 // block-aligned memory address for loads/stores

	mispredict bool // fetch is stalled until this branch resolves
}

// Sim is one detailed simulation context: pipeline state plus memory
// system and branch unit. State persists across Run calls so a full
// program can be simulated in consecutive regions with warm
// structures; use New for a cold context per sampled simulation point.
type Sim struct {
	cfg  Config
	hier *cache.Hierarchy
	bu   *bpred.Unit

	rob      []robEntry
	robHead  int
	robTail  int
	robCount int

	// pending holds ROB indices of not-yet-issued instructions in
	// program order (the scheduler's wakeup list).
	pending []int32

	// memq holds ROB indices of in-flight memory operations in
	// program order (the load/store queue); memqHead is its logical
	// front.
	memq     []int32
	memqHead int
	lsqCount int

	// regProducer[r] is the ROB index of the latest in-flight producer
	// of register r, or -1; regSeq[r] its sequence number.
	regProducer [64]int32
	regSeq      [64]uint64

	cycle   uint64
	nextSeq uint64

	// Occupancy and flush telemetry, accumulated over the context
	// lifetime (two integer adds per cycle; RunWindow differences them
	// per window when Metrics is set).
	robOccSum uint64
	lsqOccSum uint64
	flushes   uint64

	// Metrics, if non-nil, receives per-window telemetry from
	// RunWindow: gauge cpu.kips, gauges cpu.rob_occupancy /
	// cpu.lsq_occupancy (average entries per cycle) and counter
	// cpu.flushes (branch-mispredict pipeline redirects).
	Metrics *obs.Registry

	// Front-end state.
	fetchReadyAt   uint64 // cycle fetch may resume (I-miss or redirect)
	fetchBlockSeq  uint64 // seq of unresolved mispredicted branch, 0 if none
	lastFetchBlock int64

	committed uint64
}

// New creates a cold detailed-simulation context.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(cfg.Caches)
	if err != nil {
		return nil, err
	}
	bu, err := bpred.NewUnit(cfg.Predictor, cfg.BHTEntries)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:            cfg,
		hier:           hier,
		bu:             bu,
		rob:            make([]robEntry, cfg.ROBSize),
		lastFetchBlock: -1,
		nextSeq:        1,
	}
	for i := range s.regProducer {
		s.regProducer[i] = -1
	}
	return s, nil
}

// MustNew is New, panicking on configuration errors.
func MustNew(cfg Config) *Sim {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the machine configuration.
func (s *Sim) Config() Config { return s.cfg }

// Cycles returns the total cycles simulated by this context.
func (s *Sim) Cycles() uint64 { return s.cycle }

// Flushes returns the total branch-mispredict pipeline redirects this
// context has performed.
func (s *Sim) Flushes() uint64 { return s.flushes }

// watchdogLimit is the number of consecutive cycles without a commit
// after which Run reports a model deadlock (a bug, not a workload
// property).
const watchdogLimit = 1 << 20

// Run simulates up to maxInsts committed instructions (0 = until the
// program halts) starting from m's current state, and returns the
// timing result for exactly this region. The machine's architectural
// state advances with the simulation.
func (s *Sim) Run(m *emu.Machine, maxInsts uint64) (Result, error) {
	return s.RunWithLeadIn(m, 0, maxInsts)
}

// snapshot captures the counters needed to delimit a measured region.
type snapshot struct {
	cycles uint64
	insts  uint64
	il1    cache.Stats
	dl1    cache.Stats
	l2     cache.Stats
	branch bpred.Stats
}

func (s *Sim) snap() snapshot {
	return snapshot{
		cycles: s.cycle,
		insts:  s.committed,
		il1:    s.hier.IL1.Stats(),
		dl1:    s.hier.DL1.Stats(),
		l2:     s.hier.L2.Stats(),
		branch: s.bu.Stats(),
	}
}

// RunWithLeadIn simulates lead+maxInsts committed instructions as one
// continuous pipeline run (maxInsts 0 = until halt) but reports the
// timing result only for the portion after the first lead
// instructions. The pipeline stays filled across the lead boundary, so
// the measured region is free of start-up ramp (detailed warmup).
func (s *Sim) RunWithLeadIn(m *emu.Machine, lead, maxInsts uint64) (Result, error) {
	return s.RunWindow(m, lead, maxInsts, 0)
}

// RunWindow simulates lead+maxInsts+tail committed instructions as one
// continuous pipeline run but reports the timing result only for the
// maxInsts instructions after the lead (maxInsts 0 = until halt, in
// which case tail is ignored). The lead removes start-up ramp; the
// tail (run-ahead) lets the out-of-order window overlap the measured
// region's trailing latencies with successor work, exactly as a
// continuous simulation would, instead of charging the full drain to
// the measured region.
func (s *Sim) RunWindow(m *emu.Machine, lead, maxInsts, tail uint64) (Result, error) {
	startInsts := s.committed
	mid := s.snap()
	midTaken := lead == 0
	var end snapshot
	endTaken := false
	endAt := uint64(0) // commit count at which the measured region ends
	total := uint64(0)
	if maxInsts > 0 {
		endAt = lead + maxInsts
		total = lead + maxInsts + tail
	}

	var t0 time.Time
	var startCycles, startRobOcc, startLsqOcc, startFlushes uint64
	if s.Metrics != nil {
		t0 = time.Now() //mlpalint:allow time-now (metrics wall clock, not simulated state)
		startCycles = s.cycle
		startRobOcc, startLsqOcc, startFlushes = s.robOccSum, s.lsqOccSum, s.flushes
	}

	fetchDone := false // stop fetching: budget reached or program halted
	var sinceCommit uint64

	for {
		if total > 0 && s.committed-startInsts >= total {
			break
		}
		if fetchDone && s.robCount == 0 {
			break
		}
		s.cycle++
		s.robOccSum += uint64(s.robCount)
		s.lsqOccSum += uint64(s.lsqCount)

		// Commit stage.
		commits := 0
		for commits < s.cfg.CommitWidth && s.robCount > 0 {
			e := &s.rob[s.robHead]
			if !e.issued || e.doneAt > s.cycle {
				break
			}
			if e.isStore {
				// Stores write the cache at commit; latency is hidden
				// by the store buffer.
				s.hier.DL1.Access(e.addr, true)
			}
			if e.isLoad || e.isStore {
				s.lsqCount--
				// Memory ops commit in order, so this is memq's front.
				s.memqHead++
				if s.memqHead >= len(s.memq) {
					s.memq = s.memq[:0]
					s.memqHead = 0
				} else if s.memqHead > 64 && s.memqHead*2 > len(s.memq) {
					s.memq = append(s.memq[:0], s.memq[s.memqHead:]...)
					s.memqHead = 0
				}
			}
			s.retireRegs(s.robHead)
			s.robHead = (s.robHead + 1) % s.cfg.ROBSize
			s.robCount--
			s.committed++
			commits++
			if !midTaken && s.committed-startInsts == lead {
				mid = s.snap()
				midTaken = true
			}
			if !endTaken && endAt > 0 && s.committed-startInsts == endAt {
				end = s.snap()
				endTaken = true
			}
			if total > 0 && s.committed-startInsts >= total {
				break
			}
		}
		if commits > 0 {
			sinceCommit = 0
		} else {
			sinceCommit++
			if sinceCommit > watchdogLimit {
				return Result{}, fmt.Errorf("cpu: no commit in %d cycles (model deadlock) at cycle %d", watchdogLimit, s.cycle)
			}
		}

		// Issue stage: scan the oldest SchedWindow un-issued entries.
		s.issue()

		// Fetch/dispatch stage.
		if !fetchDone {
			halted, err := s.fetch(m, total, startInsts)
			if err != nil {
				return Result{}, err
			}
			if halted {
				fetchDone = true
			}
			if total > 0 && s.fetched()-startInsts >= total {
				fetchDone = true
			}
		}
	}

	if !midTaken {
		// The program halted before reaching the lead count: nothing
		// measured.
		mid = s.snap()
	}
	if !endTaken {
		// Run-to-halt, or the program ended inside the window.
		end = s.snap()
	}
	res := Result{
		Insts:  end.insts - mid.insts,
		Cycles: end.cycles - mid.cycles,
		IL1:    diffStats(end.il1, mid.il1),
		DL1:    diffStats(end.dl1, mid.dl1),
		L2:     diffStats(end.l2, mid.l2),
		Branch: bpred.Stats{
			Lookups:      end.branch.Lookups - mid.branch.Lookups,
			DirMisses:    end.branch.DirMisses - mid.branch.DirMisses,
			TargetMisses: end.branch.TargetMisses - mid.branch.TargetMisses,
		},
	}
	res.L1 = cache.Stats{
		Accesses:   res.IL1.Accesses + res.DL1.Accesses,
		Misses:     res.IL1.Misses + res.DL1.Misses,
		Writebacks: res.IL1.Writebacks + res.DL1.Writebacks,
	}
	if s.Metrics != nil {
		windowInsts := s.committed - startInsts
		if secs := time.Since(t0).Seconds(); secs > 0 && windowInsts > 0 {
			s.Metrics.Gauge("cpu.kips").Set(float64(windowInsts) / secs / 1e3)
		}
		if cycles := s.cycle - startCycles; cycles > 0 {
			s.Metrics.Gauge("cpu.rob_occupancy").Set(float64(s.robOccSum-startRobOcc) / float64(cycles))
			s.Metrics.Gauge("cpu.lsq_occupancy").Set(float64(s.lsqOccSum-startLsqOcc) / float64(cycles))
		}
		s.Metrics.Counter("cpu.flushes").Add(int64(s.flushes - startFlushes))
		s.Metrics.Counter("cpu.window_insts").Add(int64(windowInsts))
	}
	return res, nil
}

func diffStats(b, a cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:   b.Accesses - a.Accesses,
		Misses:     b.Misses - a.Misses,
		Writebacks: b.Writebacks - a.Writebacks,
	}
}

// fetched returns the count of instructions dispatched into the ROB
// over the context lifetime.
func (s *Sim) fetched() uint64 { return s.committed + uint64(s.robCount) }

// retireRegs clears the producer-tracking entry if it still points at
// the retiring ROB slot.
func (s *Sim) retireRegs(idx int) {
	e := &s.rob[idx]
	if e.hasDst && s.regProducer[e.dst] == int32(idx) && s.regSeq[e.dst] == e.seq {
		s.regProducer[e.dst] = -1
	}
}

// issue selects ready instructions oldest-first, bounded by issue
// width, functional-unit pools and the scheduler window. It walks the
// pending list (un-issued instructions in program order), compacting
// out the entries it issues.
func (s *Sim) issue() {
	var fuUsed [isa.NumClasses]int
	issued := 0
	scanned := 0
	w := 0
	for r := 0; r < len(s.pending); r++ {
		idx := s.pending[r]
		if issued >= s.cfg.IssueWidth || scanned >= s.cfg.SchedWindow {
			// Out of issue bandwidth or window: keep the rest.
			w += copy(s.pending[w:], s.pending[r:])
			break
		}
		e := &s.rob[idx]
		scanned++
		if !s.tryIssue(e, int(idx), &fuUsed) {
			s.pending[w] = idx
			w++
			continue
		}
		issued++
	}
	s.pending = s.pending[:w]
}

// tryIssue attempts to issue one entry this cycle.
func (s *Sim) tryIssue(e *robEntry, idx int, fuUsed *[isa.NumClasses]int) bool {
	if !s.depsReady(e) {
		return false
	}
	// Functional-unit availability. Branches use integer ALUs.
	cl := e.class
	switch cl {
	case isa.ClassBranch, isa.ClassNop:
		cl = isa.ClassIntALU
	case isa.ClassStore:
		cl = isa.ClassLoad // shared load/store units
	}
	if fuUsed[cl] >= s.cfg.FUs[cl] {
		return false
	}
	var fwd bool
	if e.isLoad {
		ok, forwarded := s.loadMayIssue(idx)
		if !ok {
			return false
		}
		fwd = forwarded
	}
	fuUsed[cl]++
	e.issued = true
	lat := e.latency
	if e.isLoad {
		if fwd {
			lat++ // store-to-load forwarding
		} else {
			lat += s.hier.DL1.Access(e.addr, false)
		}
	}
	e.doneAt = s.cycle + uint64(lat)
	if e.mispredict {
		// Redirect: fetch resumes after resolution plus refill.
		resume := e.doneAt + uint64(s.cfg.MispredictPenalty)
		if resume > s.fetchReadyAt {
			s.fetchReadyAt = resume
		}
		if s.fetchBlockSeq == e.seq {
			s.fetchBlockSeq = 0
		}
	}
	return true
}

// depsReady reports whether all register dependencies of e are
// satisfied this cycle.
func (s *Sim) depsReady(e *robEntry) bool {
	for d := int8(0); d < e.numDeps; d++ {
		p := &s.rob[e.dep[d]]
		if p.seq != e.depSeq[d] {
			continue // producer retired; value in the register file
		}
		if !p.issued || p.doneAt > s.cycle {
			return false
		}
	}
	return true
}

// loadMayIssue enforces load/store ordering by walking the in-flight
// memory-operation queue up to the load: the load waits until every
// older store to the same block has completed (ok=false); when the
// nearest such store has completed, its data forwards (fwd=true).
func (s *Sim) loadMayIssue(loadIdx int) (ok, fwd bool) {
	e := &s.rob[loadIdx]
	for q := s.memqHead; q < len(s.memq); q++ {
		idx := s.memq[q]
		if int(idx) == loadIdx {
			break
		}
		p := &s.rob[idx]
		if p.isStore && p.addr == e.addr {
			if !p.issued || p.doneAt > s.cycle {
				return false, false
			}
			fwd = true
		}
	}
	return true, fwd
}

const blockMask = ^int64(0) << 5 // 32-byte blocks for LSQ matching

// Warm functionally executes insts instructions on m while updating
// this context's caches and branch predictor, without advancing the
// timing model. It implements SMARTS-style functional warming, an
// extension over the paper's cold-start fast-forwarding, used by the
// warmup ablation.
func (s *Sim) Warm(m *emu.Machine, insts uint64) error {
	return s.warm(m, insts, true)
}

// WarmCode is Warm restricted to the instruction side — instruction
// cache and branch predictor only, leaving data-cache state untouched.
// It supports dry-run self-warming of a simulation point with no
// preceding execution context (a cloned machine replays the region):
// code and predictor state converge to steady state after one replay,
// while data behaviour must not be pre-touched or the point's
// compulsory data misses would vanish.
func (s *Sim) WarmCode(m *emu.Machine, insts uint64) error {
	return s.warm(m, insts, false)
}

// WarmMeasured functionally executes up to insts instructions driving
// the caches and branch predictor, and returns the accumulated
// statistics with zero cycles — the sim-cache / sim-bpred equivalent
// of the SimpleScalar toolchain.
func (s *Sim) WarmMeasured(m *emu.Machine, insts uint64) (Result, error) {
	before := s.snap()
	startInsts := m.Insts
	if err := s.warmRun(m, insts, true); err != nil {
		return Result{}, err
	}
	after := s.snap()
	res := Result{
		Insts: m.Insts - startInsts,
		IL1:   diffStats(after.il1, before.il1),
		DL1:   diffStats(after.dl1, before.dl1),
		L2:    diffStats(after.l2, before.l2),
		Branch: bpred.Stats{
			Lookups:      after.branch.Lookups - before.branch.Lookups,
			DirMisses:    after.branch.DirMisses - before.branch.DirMisses,
			TargetMisses: after.branch.TargetMisses - before.branch.TargetMisses,
		},
	}
	res.L1 = cache.Stats{
		Accesses:   res.IL1.Accesses + res.DL1.Accesses,
		Misses:     res.IL1.Misses + res.DL1.Misses,
		Writebacks: res.IL1.Writebacks + res.DL1.Writebacks,
	}
	return res, nil
}

func (s *Sim) warm(m *emu.Machine, insts uint64, data bool) error {
	if err := s.warmRun(m, insts, data); err != nil {
		return err
	}
	// Warmup accesses must not pollute the measured statistics.
	s.hier.IL1.ResetStats()
	s.hier.DL1.ResetStats()
	s.hier.L2.ResetStats()
	s.bu.ResetStats()
	return nil
}

func (s *Sim) warmRun(m *emu.Machine, insts uint64, data bool) error {
	for i := uint64(0); i < insts && !m.Halted; i++ {
		info, err := m.Step()
		if err != nil {
			return fmt.Errorf("cpu: warm step: %w", err)
		}
		blk := (info.PC * isa.InstBytes) & blockMask
		if blk != s.lastFetchBlock {
			s.hier.IL1.Access(info.PC*isa.InstBytes, false)
			s.lastFetchBlock = blk
		}
		op := info.Inst.Op
		if data && op.IsMem() {
			s.hier.DL1.Access(info.MemAddr&blockMask, op.IsStore())
		}
		if op.IsBranch() {
			switch op {
			case isa.OpJal:
				s.bu.PredictCall(info.PC, info.NextPC, info.PC+1)
			case isa.OpJr:
				s.bu.PredictReturn(info.PC, info.NextPC)
			case isa.OpJmp:
				s.bu.PredictJump(info.PC, info.NextPC)
			default:
				s.bu.PredictCond(info.PC, info.Taken, info.NextPC)
			}
		}
	}
	return nil
}

// fetch dispatches up to FetchWidth instructions from the emulator
// into the ROB, honoring I-cache and branch-redirect stalls. Returns
// true when the program has halted.
func (s *Sim) fetch(m *emu.Machine, maxInsts, startInsts uint64) (bool, error) {
	if s.cycle < s.fetchReadyAt || s.fetchBlockSeq != 0 {
		return m.Halted, nil
	}
	return s.fetchRun(m, maxInsts, startInsts)
}

func (s *Sim) fetchRun(m *emu.Machine, maxInsts, startInsts uint64) (bool, error) {
	for f := 0; f < s.cfg.FetchWidth; f++ {
		if m.Halted {
			return true, nil
		}
		if s.robCount >= s.cfg.ROBSize {
			return false, nil
		}
		if maxInsts > 0 && s.fetched()-startInsts >= maxInsts {
			return false, nil
		}
		// Stall before consuming a memory instruction when the LSQ is
		// full (peek at the next opcode without stepping).
		if m.Prog.Code[m.PC].Op.IsMem() && s.lsqCount >= s.cfg.LSQSize {
			return false, nil
		}
		// Instruction cache: one access per block transition.
		blk := (m.PC * isa.InstBytes) & blockMask
		if blk != s.lastFetchBlock {
			lat := s.hier.IL1.Access(m.PC*isa.InstBytes, false)
			s.lastFetchBlock = blk
			if lat > 1 {
				s.fetchReadyAt = s.cycle + uint64(lat)
				return false, nil
			}
		}
		info, err := m.Step()
		if err != nil {
			return false, fmt.Errorf("cpu: functional step: %w", err)
		}
		op := info.Inst.Op
		isMem := op.IsMem()

		idx := s.robTail
		e := &s.rob[idx]
		*e = robEntry{
			seq:     s.nextSeq,
			class:   op.Class(),
			latency: op.Latency(),
		}
		s.nextSeq++

		// Register dependencies.
		var srcBuf [4]isa.Reg
		srcs := info.Inst.Sources(srcBuf[:0])
		for _, r := range srcs {
			if e.numDeps >= 2 {
				break
			}
			pi := s.regProducer[r]
			if pi >= 0 {
				e.dep[e.numDeps] = pi
				e.depSeq[e.numDeps] = s.regSeq[r]
				e.numDeps++
			}
		}
		if rd, ok := info.Inst.Dests(); ok {
			e.hasDst = true
			e.dst = rd
			s.regProducer[rd] = int32(idx)
			s.regSeq[rd] = e.seq
		}

		if isMem {
			e.addr = info.MemAddr & blockMask
			e.isLoad = op.IsLoad()
			e.isStore = op.IsStore()
			s.lsqCount++
			s.memq = append(s.memq, int32(idx))
		}
		s.pending = append(s.pending, int32(idx))

		stopFetch := false
		if op.IsBranch() {
			correct := true
			switch op {
			case isa.OpJal:
				correct = s.bu.PredictCall(info.PC, info.NextPC, info.PC+1)
			case isa.OpJr:
				correct = s.bu.PredictReturn(info.PC, info.NextPC)
			case isa.OpJmp:
				correct = s.bu.PredictJump(info.PC, info.NextPC)
			default:
				correct = s.bu.PredictCond(info.PC, info.Taken, info.NextPC)
			}
			if !correct {
				e.mispredict = true
				s.fetchBlockSeq = e.seq
				s.flushes++
				stopFetch = true
			} else if info.Taken {
				// One taken branch per fetch cycle.
				stopFetch = true
			}
		}
		if op == isa.OpHalt {
			stopFetch = true
		}

		s.robTail = (s.robTail + 1) % s.cfg.ROBSize
		s.robCount++

		if stopFetch {
			return m.Halted, nil
		}
	}
	return m.Halted, nil
}
