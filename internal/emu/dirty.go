package emu

// Dirty-page tracking. A portable checkpoint must capture the touched
// memory footprint, not the whole data segment: with tracking enabled
// the machine maintains a page-granular bitmap of every data page
// written, so a checkpoint producer scans O(dirty pages) instead of
// O(memory). Because data memory starts all-zero, the dirty set is a
// superset of the pages holding non-zero words at any later time —
// clearing memory and replaying the dirty pages reconstructs the exact
// image. Tracking costs one predictable nil-check branch per store in
// the fast path and is off by default.

import "math/bits"

const (
	// PageWords is the dirty-tracking granularity in 64-bit words:
	// 512 words = 4 KiB pages, so the default 8 MiB memory needs a
	// 2048-bit (256-byte) bitmap that stays cache-resident.
	PageWords = 1 << pageShift
	pageShift = 9
)

// TrackDirtyPages enables dirty-page tracking on m. Pages already
// holding non-zero words are seeded into the dirty set, so the
// invariant "dirty pages ⊇ pages with non-zero content" holds no
// matter when tracking is enabled. Enabling twice is a no-op.
func (m *Machine) TrackDirtyPages() {
	if m.dirty != nil {
		return
	}
	pages := (len(m.mem) + PageWords - 1) / PageWords
	m.dirty = make([]uint64, (pages+63)/64)
	for i, v := range m.mem {
		if v != 0 {
			p := uint(i) >> pageShift
			m.dirty[p>>6] |= 1 << (p & 63)
		}
	}
}

// TracksDirtyPages reports whether dirty-page tracking is enabled.
func (m *Machine) TracksDirtyPages() bool { return m.dirty != nil }

// DirtyPages returns the sorted indices of every page written since
// tracking was enabled (plus the seeded non-zero pages). It returns
// nil when tracking is disabled.
func (m *Machine) DirtyPages() []int64 {
	if m.dirty == nil {
		return nil
	}
	var out []int64
	for wi, w := range m.dirty {
		for w != 0 {
			out = append(out, int64(wi<<6|bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}

// markDirty records a write to word index w (not a byte address) on
// the slow paths (Step, StoreWord, LoadCheckpoint); the batched loops
// mark inline in execSpan.
func (m *Machine) markDirty(w int64) {
	if m.dirty != nil {
		p := uint64(w) >> pageShift
		m.dirty[p>>6] |= 1 << (p & 63)
	}
}
