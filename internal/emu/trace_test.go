package emu

// Structural invariants of the superblock traces built at predecode
// time. The differential suite (fastpath_test.go, fuzz_test.go) proves
// dispatching through traces is bit-identical to Step; these tests pin
// the construction-side contracts that proof relies on: traces root
// only at block leaders, their accounting tables are internally
// consistent, no raw control-flow opcode survives inside trace code,
// and every guard's index round-trips through the fd byte it rides in.

import (
	"fmt"
	"math/rand"
	"testing"

	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

// checkTraceInvariants validates every trace of p and returns how many
// traces the program has.
func checkTraceInvariants(t *testing.T, p *prog.Program) int {
	t.Helper()
	d := predecode(p)
	leaders := make(map[int64]bool)
	for _, b := range p.BasicBlocks() {
		leaders[b.Start] = true
	}
	count := 0
	for pc, tr := range d.traces {
		if tr == nil {
			continue
		}
		count++
		label := fmt.Sprintf("%s: trace@%d", p.Name, pc)
		if !leaders[int64(pc)] {
			t.Errorf("%s: rooted at a non-leader PC", label)
		}
		if len(tr.segs) < minTraceSegs {
			t.Errorf("%s: only %d segments (min %d)", label, len(tr.segs), minTraceSegs)
		}
		if tr.total > maxTraceInsts {
			t.Errorf("%s: %d architectural instructions exceeds cap %d", label, tr.total, maxTraceInsts)
		}
		if len(tr.guards) > maxTraceGuards {
			t.Errorf("%s: %d guards exceeds cap %d", label, len(tr.guards), maxTraceGuards)
		}
		var segSum, acctSum uint64
		for _, s := range tr.segs {
			segSum += uint64(s.n)
		}
		for _, a := range tr.acct {
			acctSum += a.n
		}
		if segSum != tr.total || acctSum != tr.total {
			t.Errorf("%s: accounting mismatch: segs %d, acct %d, total %d", label, segSum, acctSum, tr.total)
		}
		prevInsts := uint64(0)
		for gi, g := range tr.guards {
			if g.seg < 0 || int(g.seg) >= len(tr.segs) {
				t.Errorf("%s: guard %d references segment %d of %d", label, gi, g.seg, len(tr.segs))
			}
			if g.insts <= prevInsts || g.insts > tr.total {
				t.Errorf("%s: guard %d accounts %d instructions (prev %d, total %d)",
					label, gi, g.insts, prevInsts, tr.total)
			}
			prevInsts = g.insts
		}
		// Walk the flat code: guards must carry sequential indices in
		// their fd byte, and no raw control-transfer or halt opcode may
		// survive stitching — those either became pseudo-ops or ended
		// the trace.
		gi := 0
		for i, di := range tr.code {
			op := isa.Op(di.op)
			switch {
			case op >= opGuardEQ && op <= opGuardGE:
				if int(di.fd) != gi {
					t.Errorf("%s: code[%d] guard index %d, want %d", label, i, di.fd, gi)
				}
				gi++
			case op == opLinkImm:
				// Link writes are plain register writes; nothing to check
				// beyond not being a raw jal below.
			case !op.Valid():
				t.Errorf("%s: code[%d] carries invalid opcode %d", label, i, di.op)
			case op.IsCondBranch() || op == isa.OpJmp || op == isa.OpJal || op == isa.OpJr || op == isa.OpHalt:
				t.Errorf("%s: code[%d] carries raw control opcode %v", label, i, op)
			}
		}
		if gi != len(tr.guards) {
			t.Errorf("%s: %d guard instructions in code, %d guard records", label, gi, len(tr.guards))
		}
	}
	return count
}

// TestTraceInvariantsExamples checks every builder example. The loopy
// examples must actually produce traces — an empty trace table would
// silently disable the superblock tier.
func TestTraceInvariantsExamples(t *testing.T) {
	total := 0
	for _, p := range prog.Examples() {
		total += checkTraceInvariants(t, p)
	}
	if total == 0 {
		t.Error("no example program produced any trace")
	}
}

// TestTraceInvariantsFuzzPrograms runs the same checks over
// byte-derived adversarial programs (invalid opcodes, wild targets),
// where most blocks must be rejected rather than mis-stitched.
func TestTraceInvariantsFuzzPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, 8*(rng.Intn(64)+2))
		rng.Read(data)
		p := fuzzProgram(data)
		if p == nil {
			continue
		}
		p.Name = fmt.Sprintf("fuzz-trial%d", trial)
		checkTraceInvariants(t, p)
	}
}

// TestNoTracesKnobIdentical runs the same program with the superblock
// tier enabled and disabled; NoTraces is a measurement knob and must
// not change a single architectural observable.
func TestNoTracesKnobIdentical(t *testing.T) {
	for _, p := range prog.Examples() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			withTraces := New(p, 1<<12)
			noTraces := New(p, 1<<12)
			noTraces.NoTraces = true
			for _, budget := range []uint64{101, 1009, 0} {
				nA, errA := withTraces.Run(budget)
				nB, errB := noTraces.Run(budget)
				compareOutcome(t, p.Name, nA, nB, errA, errB)
				compareMachines(t, withTraces, noTraces, p.Name)
				if errA != nil || withTraces.Halted {
					break
				}
			}
		})
	}
}
