package emu

import (
	"reflect"
	"testing"

	"mlpa/internal/prog"
)

// nonZeroPages returns the sorted page indices holding non-zero words.
func nonZeroPages(m *Machine) map[int64]bool {
	out := make(map[int64]bool)
	for i, v := range m.mem {
		if v != 0 {
			out[int64(i)>>pageShift] = true
		}
	}
	return out
}

// TestDirtyPagesSupersetOfNonZero: after any run, the dirty set must
// cover every page holding non-zero content — the invariant that makes
// "clear memory, replay dirty pages" an exact restore.
func TestDirtyPagesSupersetOfNonZero(t *testing.T) {
	for _, p := range prog.Examples() {
		t.Run(p.Name, func(t *testing.T) {
			m := New(p, 0)
			m.TrackDirtyPages()
			if _, err := m.Run(200_000); err != nil && !m.Halted {
				t.Fatal(err)
			}
			dirty := make(map[int64]bool)
			for _, pg := range m.DirtyPages() {
				dirty[pg] = true
			}
			for pg := range nonZeroPages(m) {
				if !dirty[pg] {
					t.Fatalf("page %d holds non-zero content but is not dirty", pg)
				}
			}
		})
	}
}

// TestDirtyPagesMatchStepLoop: the batched fast path (traces included)
// and the Step reference must mark the identical dirty set.
func TestDirtyPagesMatchStepLoop(t *testing.T) {
	for _, p := range prog.Examples() {
		t.Run(p.Name, func(t *testing.T) {
			fast := New(p, 0)
			fast.TrackDirtyPages()
			ref := New(p, 0)
			ref.TrackDirtyPages()
			if _, err := fast.Run(100_000); err != nil && !fast.Halted {
				t.Fatal(err)
			}
			for !ref.Halted && ref.Insts < 100_000 {
				if _, err := ref.Step(); err != nil {
					t.Fatal(err)
				}
			}
			if got, want := fast.DirtyPages(), ref.DirtyPages(); !reflect.DeepEqual(got, want) {
				t.Fatalf("fast path dirty pages %v, Step loop %v", got, want)
			}
		})
	}
}

// TestTrackDirtyPagesSeedsExistingContent: enabling tracking mid-run
// must seed pages that already hold data, so a late enable still
// satisfies the superset invariant.
func TestTrackDirtyPagesSeedsExistingContent(t *testing.T) {
	p := prog.Examples()[0]
	m := New(p, 0)
	if _, err := m.Run(50_000); err != nil && !m.Halted {
		t.Fatal(err)
	}
	m.TrackDirtyPages()
	dirty := make(map[int64]bool)
	for _, pg := range m.DirtyPages() {
		dirty[pg] = true
	}
	for pg := range nonZeroPages(m) {
		if !dirty[pg] {
			t.Fatalf("pre-existing non-zero page %d not seeded into dirty set", pg)
		}
	}
}

// TestDirtyPagesCloneIndependent: a clone inherits the dirty set but
// subsequent writes diverge independently.
func TestDirtyPagesCloneIndependent(t *testing.T) {
	p := prog.Examples()[0]
	m := New(p, 0)
	m.TrackDirtyPages()
	m.StoreWord(0, 1)
	c := m.Clone()
	c.StoreWord(int64(PageWords*8*5), 2) // page 5, bytes
	if got := m.DirtyPages(); !reflect.DeepEqual(got, []int64{0}) {
		t.Fatalf("original dirty set mutated through clone: %v", got)
	}
	if got := c.DirtyPages(); !reflect.DeepEqual(got, []int64{0, 5}) {
		t.Fatalf("clone dirty set = %v, want [0 5]", got)
	}
}

// TestDirtyPagesResetAndDisabled: Reset clears the set; without
// TrackDirtyPages the machine reports none.
func TestDirtyPagesResetAndDisabled(t *testing.T) {
	p := prog.Examples()[0]
	m := New(p, 0)
	if m.TracksDirtyPages() || m.DirtyPages() != nil {
		t.Fatal("tracking reported before TrackDirtyPages")
	}
	m.TrackDirtyPages()
	m.StoreWord(64, 7)
	if len(m.DirtyPages()) == 0 {
		t.Fatal("store did not dirty a page")
	}
	m.Reset()
	if got := m.DirtyPages(); len(got) != 0 {
		t.Fatalf("dirty pages after Reset: %v", got)
	}
}
