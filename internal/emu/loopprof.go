package emu

import (
	"sort"
)

// LoopProfiler discovers cyclic program structures (loops, shallow
// recursion) dynamically from taken-branch events, the way the
// boundary-collection profiling stage of the paper does. A backward
// taken transfer to PC h marks h as a cyclic-structure head; the spans
// between consecutive arrivals at h are its iteration instances.
//
// Attach with:
//
//	lp := emu.NewLoopProfiler(m)
//	m.Branch = lp.OnBranch
//	... run ...
//	lp.Finish()
//
// Finish must be called after the run to credit the final, danglig
// iteration of each still-active structure (a loop's last trip ends
// with a not-taken branch, which produces no event).
//
// Structures exited without a closing back edge (a not-taken branch
// falling out of the body) are popped at the next backward transfer
// whose source lies outside their observed [head, latch] extent, or at
// Finish; until then a later re-entry would count one oversized
// iteration. The structured loops emitted by the program Builder close
// every activation with a back edge.
type LoopProfiler struct {
	m     *Machine
	stats map[int64]*LoopStats
	stack []stackEntry
}

type stackEntry struct {
	head     int64
	lastIter uint64 // Insts at the start of the current iteration
	latch    int64  // highest back-edge source PC observed this activation
}

// LoopStats accumulates the dynamic profile of one cyclic structure.
type LoopStats struct {
	Head       int64  // PC of the structure head (backward-branch target)
	Iterations uint64 // iteration instances observed
	TotalInsts uint64 // instructions inside observed iterations
	MinIter    uint64 // shortest iteration length
	MaxIter    uint64 // longest iteration length
	Depth      int    // maximum observed dynamic nesting depth (0 = outermost)
	FirstSeen  uint64 // instruction count at first entry
	LastSeen   uint64 // instruction count at most recent boundary
}

// MeanIter returns the mean iteration length.
func (s *LoopStats) MeanIter() float64 {
	if s.Iterations == 0 {
		return 0
	}
	return float64(s.TotalInsts) / float64(s.Iterations)
}

// Coverage returns the fraction of the totalInsts instruction budget
// spent inside this structure's iterations.
func (s *LoopStats) Coverage(totalInsts uint64) float64 {
	if totalInsts == 0 {
		return 0
	}
	return float64(s.TotalInsts) / float64(totalInsts)
}

// NewLoopProfiler creates a profiler reading instruction counts from m.
func NewLoopProfiler(m *Machine) *LoopProfiler {
	return &LoopProfiler{
		m:     m,
		stats: make(map[int64]*LoopStats),
	}
}

// credit records one iteration of e's structure spanning
// [e.lastIter, now). Exact spans (back-edge to back-edge) pass
// approx=false. Approximate spans — the entry iteration measured from
// the enclosing structure's position, and the dangling final iteration
// flushed at pop/Finish time — pass approx=true and are capped by the
// shortest iteration observed so far, so a structure exited by a
// not-taken branch cannot absorb its enclosing structure's body and an
// inner structure's coverage stays strictly below its parent's.
func (lp *LoopProfiler) credit(e stackEntry, now uint64, approx bool) {
	iterLen := now - e.lastIter
	if iterLen == 0 {
		return
	}
	st := lp.stats[e.head]
	if approx && st.MinIter > 0 && iterLen > st.MinIter {
		iterLen = st.MinIter
	}
	st.Iterations++
	st.TotalInsts += iterLen
	if st.MinIter == 0 || iterLen < st.MinIter {
		st.MinIter = iterLen
	}
	if iterLen > st.MaxIter {
		st.MaxIter = iterLen
	}
	st.LastSeen = now
}

// OnBranch is the BranchHook entry point.
func (lp *LoopProfiler) OnBranch(from, to int64) {
	if to > from {
		return // forward transfer: not a loop-back edge
	}
	now := lp.m.Insts
	// Pop stack entries that cannot contain this transfer. Inner loops
	// have heads at higher PCs in linear code layout, so a backward
	// branch to a lower head closes them; and a structure whose
	// observed body [head, latch] ends before the transfer source was
	// exited earlier by a not-taken branch (which produced no event) —
	// popping it here keeps a sequentially-following loop from being
	// misread as nested inside it. Credit final iterations as they end.
	for len(lp.stack) > 0 {
		top := lp.stack[len(lp.stack)-1]
		if top.head == to || (top.head < to && top.latch >= from) {
			break
		}
		lp.credit(top, now, true)
		lp.stack = lp.stack[:len(lp.stack)-1]
	}
	if len(lp.stack) > 0 && lp.stack[len(lp.stack)-1].head == to {
		top := &lp.stack[len(lp.stack)-1]
		lp.credit(*top, now, false)
		top.lastIter = now
		if from > top.latch {
			top.latch = from
		}
		return
	}
	// First observed back-edge of a new activation: the first
	// iteration began when control entered the structure. Approximate
	// the entry point by the enclosing structure's current iteration
	// start (program start for the outermost), which attaches any
	// pre-loop straight-line code to the first iteration.
	var start uint64
	if len(lp.stack) > 0 {
		start = lp.stack[len(lp.stack)-1].lastIter
	}
	st := lp.stats[to]
	if st == nil {
		st = &LoopStats{Head: to, Depth: len(lp.stack), FirstSeen: start}
		lp.stats[to] = st
	} else if len(lp.stack) > st.Depth {
		// Deeper context than any earlier activation: an inner loop is
		// often discovered before its parent's first back edge, so the
		// depth ratchets up as enclosing structures appear.
		st.Depth = len(lp.stack)
	}
	lp.stack = append(lp.stack, stackEntry{head: to, lastIter: now, latch: from})
	lp.credit(stackEntry{head: to, lastIter: start}, now, true)
}

// Finish credits the dangling final iteration of every still-active
// structure and empties the stack. Call once after the profiled run.
func (lp *LoopProfiler) Finish() {
	now := lp.m.Insts
	for len(lp.stack) > 0 {
		lp.credit(lp.stack[len(lp.stack)-1], now, true)
		lp.stack = lp.stack[:len(lp.stack)-1]
	}
}

// Structures returns all discovered cyclic structures ordered by
// decreasing instruction coverage.
func (lp *LoopProfiler) Structures() []*LoopStats {
	out := make([]*LoopStats, 0, len(lp.stats))
	for _, s := range lp.stats {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalInsts != out[j].TotalInsts {
			return out[i].TotalInsts > out[j].TotalInsts
		}
		return out[i].Head < out[j].Head
	})
	return out
}

// Significant returns structures whose coverage of totalInsts is at
// least minCoverage (the paper discards structures below 1%).
func (lp *LoopProfiler) Significant(totalInsts uint64, minCoverage float64) []*LoopStats {
	var out []*LoopStats
	for _, s := range lp.Structures() {
		if s.Coverage(totalInsts) >= minCoverage && s.Iterations >= 1 {
			out = append(out, s)
		}
	}
	return out
}

// SelectCoarse picks the cyclic structure whose iterations will form
// the coarse-grained intervals: the significant structure with the
// greatest coverage, preferring shallower (more outer) structures on
// near ties. Returns nil if no structure qualifies.
func (lp *LoopProfiler) SelectCoarse(totalInsts uint64, minCoverage float64) *LoopStats {
	sig := lp.Significant(totalInsts, minCoverage)
	if len(sig) == 0 {
		return nil
	}
	best := sig[0]
	for _, s := range sig[1:] {
		// Prefer an outer structure when it covers at least as much
		// as the current best within 1%; otherwise higher coverage wins.
		if s.Depth < best.Depth && s.TotalInsts+totalInsts/100 >= best.TotalInsts {
			best = s
		}
	}
	return best
}

// IterationMarker invokes fn at each completed iteration of the
// structure headed at head: fn(iterationIndex, instsAtBoundary). Use it
// as a Machine BranchHook during the metric-collection pass.
func IterationMarker(m *Machine, head int64, fn func(iter int, insts uint64)) BranchHook {
	iter := 0
	return func(from, to int64) {
		if to == head && to <= from {
			fn(iter, m.Insts)
			iter++
		}
	}
}
