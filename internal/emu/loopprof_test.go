package emu

import (
	"testing"

	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

// nestedLoops builds: outer loop (outerTrips) containing an inner loop
// (innerTrips) plus some straight-line work per outer iteration.
func nestedLoops(t *testing.T, outerTrips, innerTrips int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("nested")
	b.Li(1, outerTrips)
	b.Label("outer")
	b.Addi(3, 3, 1) // outer body work
	b.Li(2, innerTrips)
	b.Label("inner")
	b.Addi(4, 4, 1)
	b.Addi(2, 2, -1)
	b.Bne(2, isa.RZero, "inner")
	b.Addi(1, 1, -1)
	b.Bne(1, isa.RZero, "outer")
	b.Halt()
	return b.MustBuild()
}

func profileProgram(t *testing.T, p *prog.Program) (*Machine, *LoopProfiler) {
	t.Helper()
	m := New(p, 0)
	lp := NewLoopProfiler(m)
	m.Branch = lp.OnBranch
	if _, err := m.RunToCompletion(1e8); err != nil {
		t.Fatal(err)
	}
	lp.Finish()
	return m, lp
}

func TestLoopProfilerFindsBothLoops(t *testing.T) {
	p := nestedLoops(t, 10, 20)
	m, lp := profileProgram(t, p)
	structs := lp.Structures()
	if len(structs) != 2 {
		t.Fatalf("found %d structures, want 2: %+v", len(structs), structs)
	}
	// The outer loop covers more instructions than the inner.
	outer, inner := structs[0], structs[1]
	if outer.Head != p.Labels["outer"] {
		t.Errorf("top structure head = %d, want outer at %d", outer.Head, p.Labels["outer"])
	}
	if inner.Head != p.Labels["inner"] {
		t.Errorf("second structure head = %d, want inner at %d", inner.Head, p.Labels["inner"])
	}
	if outer.TotalInsts <= inner.TotalInsts {
		t.Errorf("outer covers %d <= inner %d", outer.TotalInsts, inner.TotalInsts)
	}
	// 10 outer trips -> 10 iterations (9 back edges + final dangling
	// iteration credited by Finish).
	if outer.Iterations != 10 {
		t.Errorf("outer iterations = %d, want 10", outer.Iterations)
	}
	// Inner loop: 20 trips per activation, 10 activations.
	if inner.Iterations != 200 {
		t.Errorf("inner iterations = %d, want 200", inner.Iterations)
	}
	if outer.Depth != 0 {
		t.Errorf("outer depth = %d, want 0", outer.Depth)
	}
	_ = m
}

func TestLoopProfilerIterationLengthsUniform(t *testing.T) {
	p := nestedLoops(t, 8, 5)
	_, lp := profileProgram(t, p)
	outer := lp.Structures()[0]
	// Uniform loop: lengths equal except the first iteration (absorbs
	// the prologue) and the last (absorbs the epilogue).
	if outer.MaxIter-outer.MinIter > 6 {
		t.Errorf("uniform loop spread too wide: min %d, max %d", outer.MinIter, outer.MaxIter)
	}
	mean := outer.MeanIter()
	if mean < float64(outer.MinIter) || mean > float64(outer.MaxIter) {
		t.Errorf("mean %v outside [%d,%d]", mean, outer.MinIter, outer.MaxIter)
	}
}

func TestSignificantFiltersTinyLoops(t *testing.T) {
	// Big outer loop plus a tiny 2-trip prologue loop (<1% coverage).
	b := prog.NewBuilder("tiny")
	b.Li(1, 2)
	b.Label("tinyloop")
	b.Addi(1, 1, -1)
	b.Bne(1, isa.RZero, "tinyloop")
	b.Li(1, 500)
	b.Label("big")
	b.Addi(2, 2, 1)
	b.Addi(3, 3, 1)
	b.Addi(4, 4, 1)
	b.Addi(1, 1, -1)
	b.Bne(1, isa.RZero, "big")
	b.Halt()
	p := b.MustBuild()
	m, lp := profileProgram(t, p)

	sig := lp.Significant(m.Insts, 0.01)
	if len(sig) != 1 {
		t.Fatalf("significant structures = %d, want 1", len(sig))
	}
	if sig[0].Head != p.Labels["big"] {
		t.Errorf("significant head = %d, want big loop", sig[0].Head)
	}
}

func TestSelectCoarsePrefersOuter(t *testing.T) {
	p := nestedLoops(t, 10, 50)
	m, lp := profileProgram(t, p)
	sel := lp.SelectCoarse(m.Insts, 0.01)
	if sel == nil {
		t.Fatal("SelectCoarse returned nil")
	}
	if sel.Head != p.Labels["outer"] {
		t.Errorf("selected head = %d, want outer %d", sel.Head, p.Labels["outer"])
	}
}

func TestSelectCoarseNilWhenNoLoops(t *testing.T) {
	p, err := prog.Assemble("straight", "addi r1, r0, 1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	m, lp := profileProgram(t, p)
	if sel := lp.SelectCoarse(m.Insts, 0.01); sel != nil {
		t.Errorf("SelectCoarse = %+v, want nil", sel)
	}
}

func TestIterationMarker(t *testing.T) {
	p := nestedLoops(t, 6, 3)
	m := New(p, 0)
	var boundaries []uint64
	m.Branch = IterationMarker(m, p.Labels["outer"], func(iter int, insts uint64) {
		if iter != len(boundaries) {
			t.Errorf("iteration index %d, want %d", iter, len(boundaries))
		}
		boundaries = append(boundaries, insts)
	})
	if _, err := m.RunToCompletion(1e8); err != nil {
		t.Fatal(err)
	}
	if len(boundaries) != 5 { // 6 trips -> 5 back edges
		t.Fatalf("boundaries = %d, want 5", len(boundaries))
	}
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= boundaries[i-1] {
			t.Errorf("boundaries not increasing: %v", boundaries)
		}
	}
}

func TestCoverageMath(t *testing.T) {
	s := &LoopStats{TotalInsts: 50}
	if got := s.Coverage(200); got != 0.25 {
		t.Errorf("Coverage = %v, want 0.25", got)
	}
	if got := s.Coverage(0); got != 0 {
		t.Errorf("Coverage(0) = %v, want 0", got)
	}
	empty := &LoopStats{}
	if empty.MeanIter() != 0 {
		t.Errorf("MeanIter on empty = %v", empty.MeanIter())
	}
}

func TestProfilerVariableIterations(t *testing.T) {
	// Outer loop whose inner work varies by iteration: lengths differ.
	b := prog.NewBuilder("vary")
	b.Li(1, 5) // outer counter r1: 5..1
	b.Label("outer")
	b.Add(2, isa.RZero, 1) // r2 = r1 (inner trips = outer counter)
	b.Label("inner")
	b.Addi(3, 3, 1)
	b.Addi(2, 2, -1)
	b.Bne(2, isa.RZero, "inner")
	b.Addi(1, 1, -1)
	b.Bne(1, isa.RZero, "outer")
	b.Halt()
	p := b.MustBuild()
	_, lp := profileProgram(t, p)
	var outer *LoopStats
	for _, s := range lp.Structures() {
		if s.Head == p.Labels["outer"] {
			outer = s
		}
	}
	if outer == nil {
		t.Fatal("outer loop not found")
	}
	if outer.MinIter == outer.MaxIter {
		t.Errorf("variable loop has uniform iteration lengths min=max=%d", outer.MinIter)
	}
}
