package emu

// Superblock traces: the second tier of the predecoded fast path.
//
// The block-batched loop in run.go still pays one dispatch round
// (bounds check, span load, terminator switch, per-block accounting)
// per basic block, which dominates on branchy code where blocks are a
// handful of instructions. A trace stitches the statically-predicted
// path through several blocks — following taken branches, falling
// through not-taken ones, chasing direct jumps, and unrolling loops —
// into one flat, contiguous dinst array that execSpan can run in a
// single call. Conditional branches inside the trace become guard
// pseudo-instructions: a guard lets execution continue while the
// prediction holds and otherwise reports a side exit, from which the
// dispatcher restores exact architectural accounting (instruction
// count, per-block BlockCounts, next PC) for the prefix that actually
// ran. On full completion the trace's precomputed totals are applied
// in O(distinct blocks).
//
// Traces are built eagerly at predecode time from Program.Code alone —
// no runtime profiling, no mutation after construction — so they are
// deterministic and safely shared by every Machine of a program via
// the same Aux cache as the rest of the predecoded form. Correctness
// rests on a strict inclusion rule: a block joins a trace only if its
// whole body is one clean straight-line span (no invalid opcodes, no
// mid-block halt) and its terminator's successor is statically known.
// Halting blocks, indirect jumps (jr), and anything the predecoder
// already hands to the Step fallback stay on the block-batched path,
// as does every hooked run (runHooked never consults traces). The
// differential suite and FuzzRunVsStep enforce that dispatching
// through traces is bit-identical to Step.

import (
	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

// Trace construction limits. Every stitched block appends at least one
// instruction, so the instruction cap bounds construction; the guard
// cap keeps guard indices within the fd byte they are carried in.
const (
	maxTraceInsts  = 512 // flat instructions per trace (caps loop unrolling)
	maxTraceSegs   = 255 // stitched block segments per trace
	maxTraceGuards = 255 // guard index must fit the dinst fd byte
	minTraceSegs   = 2   // single-block traces add dispatch cost, no win
	// traceBudgetFactor bounds the total flattened footprint across all
	// of a program's traces to a small multiple of the code size, so
	// predecode stays O(code) even with aggressive unrolling. The floor
	// keeps tiny programs — whose few block leaders are exactly the hot
	// loop heads — from exhausting the budget before reaching them.
	traceBudgetFactor = 64
	traceBudgetFloor  = 1 << 13
)

// Pseudo-opcodes used only inside trace code. They start above
// isa.NumOps+1 so no dinst built from program code — including the
// deliberately-invalid opcodes fuzzed programs contain — can alias
// them, while keeping execSpan's dispatch switch dense.
const (
	// opGuardXX continues the trace iff the condition holds (it encodes
	// the branch direction the trace predicted) and otherwise side-exits
	// to the architectural PC in imm. The guard's index into
	// strace.guards rides in the fd byte.
	opGuardEQ = isa.Op(isa.NumOps) + 2 + iota
	opGuardNE
	opGuardLT
	opGuardGE
	// opLinkImm is a jal with the control transfer stitched away: it
	// only performs the link-register write (rd = imm, the return PC).
	opLinkImm
)

// traceSeg is one stitched block: the BlockCounts index it is
// accounted to and its instruction count.
type traceSeg struct {
	block int32
	n     uint32
}

// traceGuard is the accounting snapshot for a side exit: exiting at
// this guard means segments [0, seg] committed in full, for insts
// architectural instructions.
type traceGuard struct {
	seg   int32
	insts uint64
}

// traceAcct is the per-distinct-block instruction total applied on
// full completion (ordered by first appearance in the trace).
type traceAcct struct {
	block int32
	n     uint64
}

// strace is one immutable superblock trace rooted at a block leader.
type strace struct {
	code   []dinst
	segs   []traceSeg
	guards []traceGuard
	acct   []traceAcct
	total  uint64 // architectural instructions on full completion
	endPC  int64  // next PC on full completion
}

// buildTraces stitches a trace at every block leader where the
// inclusion rules allow one, in ascending leader order until the
// program-wide flattening budget runs out.
func buildTraces(p *prog.Program, d *predecoded) []*strace {
	blocks := p.BasicBlocks()
	blockAt := make(map[int64]prog.BasicBlock, len(blocks))
	for _, b := range blocks {
		blockAt[b.Start] = b
	}
	blockOf := p.BlockTable()
	traces := make([]*strace, len(p.Code))
	budget := traceBudgetFactor * len(p.Code)
	if budget < traceBudgetFloor {
		budget = traceBudgetFloor
	}
	for _, b := range blocks {
		if budget <= 0 {
			break
		}
		if tr := stitchTrace(p, d, blockAt, blockOf, b.Start); tr != nil {
			traces[b.Start] = tr
			budget -= len(tr.code)
		}
	}
	return traces
}

// stitchTrace grows one trace from head along the statically-predicted
// path (backward conditional branches predicted taken, forward ones
// not taken — the classic BTFNT heuristic), revisiting blocks freely
// so hot loops unroll up to the trace limits. It returns nil when the
// trace would not span at least minTraceSegs blocks.
func stitchTrace(p *prog.Program, d *predecoded, blockAt map[int64]prog.BasicBlock, blockOf []int32, head int64) *strace {
	codeLen := int64(len(p.Code))
	tr := &strace{endPC: head}
	pc := head
	for {
		if pc < 0 || pc >= codeLen {
			// Predicted successor out of range: end the trace here; the
			// dispatcher reproduces Step's out-of-range error exactly.
			break
		}
		b, ok := blockAt[pc]
		if !ok {
			break // not a block leader (defensive: stitch targets are leaders)
		}
		sp := int64(d.span[pc])
		if sp == 0 || pc+sp != b.End {
			// Invalid opcode at the head, or a mid-block halt/invalid
			// cutting the span short: this block belongs to the exact
			// block-batched/Step machinery.
			break
		}
		if tr.total+uint64(sp) > maxTraceInsts ||
			len(tr.segs) >= maxTraceSegs ||
			len(tr.guards) >= maxTraceGuards {
			break
		}
		last := b.End - 1
		term := p.Code[last].Op
		if term == isa.OpHalt || term == isa.OpJr {
			// Halting and indirect-jump blocks stay on the block path:
			// their successor is unknown or stops the machine.
			break
		}
		var next int64
		switch {
		case term.IsCondBranch():
			targ := d.code[last].imm
			taken := targ <= last
			cont, exit := last+1, targ
			if taken {
				cont, exit = targ, last+1
			}
			tr.code = append(tr.code, d.code[pc:last]...)
			tr.code = append(tr.code, dinst{
				op:  uint8(guardOp(term, taken)),
				rs1: d.code[last].rs1,
				rs2: d.code[last].rs2,
				fd:  uint8(len(tr.guards)),
				imm: exit,
			})
			tr.guards = append(tr.guards, traceGuard{
				seg:   int32(len(tr.segs)),
				insts: tr.total + uint64(sp),
			})
			next = cont
		case term == isa.OpJmp:
			// The jump disappears entirely: its only effect is the PC
			// redirect the stitching already encodes. It still counts —
			// the segment length below is the architectural sp.
			tr.code = append(tr.code, d.code[pc:last]...)
			next = d.code[last].imm
		case term == isa.OpJal:
			tr.code = append(tr.code, d.code[pc:last]...)
			tr.code = append(tr.code, dinst{
				op:  uint8(opLinkImm),
				rd:  d.code[last].rd,
				imm: last + 1,
			})
			next = d.code[last].imm
		default:
			// Fall-through block: every instruction including the final
			// one is plain.
			tr.code = append(tr.code, d.code[pc:b.End]...)
			next = b.End
		}
		tr.segs = append(tr.segs, traceSeg{block: blockOf[pc], n: uint32(sp)})
		tr.total += uint64(sp)
		tr.endPC = next
		pc = next
	}
	if len(tr.segs) < minTraceSegs {
		return nil
	}
	idx := make(map[int32]int, 4)
	for _, s := range tr.segs {
		if j, ok := idx[s.block]; ok {
			tr.acct[j].n += uint64(s.n)
		} else {
			idx[s.block] = len(tr.acct)
			tr.acct = append(tr.acct, traceAcct{block: s.block, n: uint64(s.n)})
		}
	}
	return tr
}

// guardOp maps a conditional branch and its predicted direction to the
// guard that continues the trace while the prediction holds.
func guardOp(op isa.Op, taken bool) isa.Op {
	switch op {
	case isa.OpBeq:
		if taken {
			return opGuardEQ
		}
		return opGuardNE
	case isa.OpBne:
		if taken {
			return opGuardNE
		}
		return opGuardEQ
	case isa.OpBlt:
		if taken {
			return opGuardLT
		}
		return opGuardGE
	default: // isa.OpBge
		if taken {
			return opGuardGE
		}
		return opGuardLT
	}
}
