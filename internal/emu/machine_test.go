package emu

import (
	"testing"

	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

func buildLoop(t *testing.T, trips int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("loop")
	b.Li(1, trips)
	b.Label("head")
	b.Addi(2, 2, 1)
	b.Addi(1, 1, -1)
	b.Bne(1, isa.RZero, "head")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunCountingLoop(t *testing.T) {
	p := buildLoop(t, 10)
	m := New(p, 0)
	n, err := m.RunToCompletion(1e6)
	if err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[2] != 10 {
		t.Errorf("r2 = %d, want 10", m.IntRegs[2])
	}
	// 1 init + 10*(3 body) + 1 halt
	want := uint64(1 + 30 + 1)
	if n != want || m.Insts != want {
		t.Errorf("executed %d (Insts=%d), want %d", n, m.Insts, want)
	}
	if !m.Halted {
		t.Error("machine not halted")
	}
}

func TestStepInfoBranch(t *testing.T) {
	p := buildLoop(t, 2)
	m := New(p, 0)
	// init
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	// body x2
	for i := 0; i < 2; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	info, err := m.Step() // bne taken (r1 == 1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Taken || info.NextPC != p.Labels["head"] {
		t.Errorf("branch info = %+v", info)
	}
}

func TestArithmeticOps(t *testing.T) {
	src := `
    addi r1, r0, 7
    addi r2, r0, 3
    add  r3, r1, r2
    sub  r4, r1, r2
    mul  r5, r1, r2
    div  r6, r1, r2
    rem  r7, r1, r2
    and  r8, r1, r2
    or   r9, r1, r2
    xor  r10, r1, r2
    slt  r11, r2, r1
    slti r12, r1, 100
    shli r13, r1, 2
    shri r14, r13, 1
    lui  r15, 2
    halt
`
	p, err := prog.Assemble("arith", src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, 0)
	if _, err := m.RunToCompletion(1000); err != nil {
		t.Fatal(err)
	}
	want := map[int]int64{
		3: 10, 4: 4, 5: 21, 6: 2, 7: 1,
		8: 3, 9: 7, 10: 4, 11: 1, 12: 1,
		13: 28, 14: 14, 15: 2 << 16,
	}
	for r, v := range want {
		if m.IntRegs[r] != v {
			t.Errorf("r%d = %d, want %d", r, m.IntRegs[r], v)
		}
	}
}

func TestDivRemByZero(t *testing.T) {
	src := `
    addi r1, r0, 5
    div  r2, r1, r0
    rem  r3, r1, r0
    halt
`
	p, err := prog.Assemble("divzero", src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, 0)
	if _, err := m.RunToCompletion(100); err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[2] != 0 || m.IntRegs[3] != 0 {
		t.Errorf("div/rem by zero = %d, %d; want 0, 0", m.IntRegs[2], m.IntRegs[3])
	}
}

func TestFloatingPoint(t *testing.T) {
	src := `
    addi r1, r0, 3
    cvtif f1, r1
    fadd f2, f1, f1
    fmul f3, f2, f1
    fsub f4, f3, f1
    fdiv f5, f3, f2
    fneg f6, f5
    fmov f7, f6
    fcmplt r2, f1, f2
    fcmpeq r3, f6, f7
    cvtfi r4, f3
    halt
`
	p, err := prog.Assemble("fp", src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, 0)
	if _, err := m.RunToCompletion(100); err != nil {
		t.Fatal(err)
	}
	if m.FPRegs[2] != 6 || m.FPRegs[3] != 18 || m.FPRegs[4] != 15 {
		t.Errorf("f2,f3,f4 = %v,%v,%v", m.FPRegs[2], m.FPRegs[3], m.FPRegs[4])
	}
	if m.FPRegs[5] != 3 || m.FPRegs[6] != -3 || m.FPRegs[7] != -3 {
		t.Errorf("f5,f6,f7 = %v,%v,%v", m.FPRegs[5], m.FPRegs[6], m.FPRegs[7])
	}
	if m.IntRegs[2] != 1 || m.IntRegs[3] != 1 || m.IntRegs[4] != 18 {
		t.Errorf("r2,r3,r4 = %d,%d,%d", m.IntRegs[2], m.IntRegs[3], m.IntRegs[4])
	}
}

func TestMemoryLoadStore(t *testing.T) {
	src := `
    addi r1, r0, 64
    addi r2, r0, 99
    st   r2, 8(r1)
    ld   r3, 8(r1)
    cvtif f1, r2
    fst  f1, 16(r1)
    fld  f2, 16(r1)
    halt
`
	p, err := prog.Assemble("mem", src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, 0)
	if _, err := m.RunToCompletion(100); err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[3] != 99 {
		t.Errorf("r3 = %d, want 99", m.IntRegs[3])
	}
	if m.FPRegs[2] != 99 {
		t.Errorf("f2 = %v, want 99", m.FPRegs[2])
	}
	if m.LoadWord(64+8) != 99 {
		t.Errorf("mem[72] = %d", m.LoadWord(72))
	}
}

func TestMemoryWraps(t *testing.T) {
	b := prog.NewBuilder("wrap")
	b.Li(1, 1<<40) // address far beyond physical memory
	b.Addi(2, isa.RZero, 7)
	b.St(2, 1, 0)
	b.Ld(3, 1, 0)
	b.Halt()
	m := New(b.MustBuild(), 1024)
	if _, err := m.RunToCompletion(100); err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[3] != 7 {
		t.Errorf("wrapped load = %d, want 7", m.IntRegs[3])
	}
}

func TestJalJr(t *testing.T) {
	src := `
    jal r31, func
    addi r1, r1, 100
    halt
func:
    addi r1, r1, 1
    jr r31
`
	p, err := prog.Assemble("call", src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, 0)
	if _, err := m.RunToCompletion(100); err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[1] != 101 {
		t.Errorf("r1 = %d, want 101", m.IntRegs[1])
	}
}

func TestWritesToR0Discarded(t *testing.T) {
	src := `
    addi r0, r0, 42
    add  r1, r0, r0
    halt
`
	p, err := prog.Assemble("r0", src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, 0)
	if _, err := m.RunToCompletion(100); err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[0] != 0 || m.IntRegs[1] != 0 {
		t.Errorf("r0 = %d, r1 = %d; want 0, 0", m.IntRegs[0], m.IntRegs[1])
	}
}

// TestCrossNamespaceWritesDiscarded pins the int/FP write-discard
// symmetry: an integer-writing opcode with an FP-named destination and
// an FP-writing opcode with an integer-named destination must both be
// dropped rather than aliasing into the other file.
func TestCrossNamespaceWritesDiscarded(t *testing.T) {
	p := &prog.Program{Name: "xns", Code: []isa.Inst{
		{Op: isa.OpAddi, Rd: isa.F(4), Rs1: isa.RZero, Imm: 42}, // int write, FP name
		{Op: isa.OpCvtIF, Rd: isa.F(5), Rs1: isa.RZero},         // f5 = 0.0
		{Op: isa.OpFadd, Rd: 6, Rs1: isa.F(5), Rs2: isa.F(5)},   // FP write, int name
		{Op: isa.OpHalt},
	}}
	for _, engine := range []string{"run", "step"} {
		m := New(p, 0)
		var err error
		if engine == "run" {
			_, err = m.Run(100)
		} else {
			for !m.Halted && err == nil {
				_, err = m.Step()
			}
		}
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if m.FPRegs[4] != 0 {
			t.Errorf("%s: integer write leaked into f4 = %v", engine, m.FPRegs[4])
		}
		if m.IntRegs[6] != 0 {
			t.Errorf("%s: FP write leaked into r6 = %d", engine, m.IntRegs[6])
		}
		if m.FPRegs[6] != 0 {
			t.Errorf("%s: fadd to integer name landed in f6 = %v", engine, m.FPRegs[6])
		}
	}
}

func TestBlockCountsSumToInsts(t *testing.T) {
	p := buildLoop(t, 25)
	m := New(p, 0)
	if _, err := m.RunToCompletion(1e6); err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, c := range m.BlockCounts {
		sum += c
	}
	if sum != m.Insts {
		t.Errorf("sum(BlockCounts) = %d, Insts = %d", sum, m.Insts)
	}
}

func TestBlockCountsResetAndSnapshot(t *testing.T) {
	p := buildLoop(t, 5)
	m := New(p, 0)
	if _, err := m.Run(3); err != nil {
		t.Fatal(err)
	}
	snap := m.SnapshotBlockCounts()
	m.ResetBlockCounts()
	for i, c := range m.BlockCounts {
		if c != 0 {
			t.Errorf("BlockCounts[%d] = %d after reset", i, c)
		}
	}
	var sum uint64
	for _, c := range snap {
		sum += c
	}
	if sum != 3 {
		t.Errorf("snapshot sum = %d, want 3", sum)
	}
}

func TestStepAfterHalt(t *testing.T) {
	p := buildLoop(t, 1)
	m := New(p, 0)
	if _, err := m.RunToCompletion(1e6); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(); err == nil {
		t.Error("Step after halt succeeded")
	}
}

func TestRunToCompletionBound(t *testing.T) {
	// Infinite loop must trip the bound.
	src := "x:\njmp x\nhalt"
	p, err := prog.Assemble("inf", src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, 0)
	if _, err := m.RunToCompletion(1000); err == nil {
		t.Error("RunToCompletion on infinite loop succeeded")
	}
}

func TestReset(t *testing.T) {
	p := buildLoop(t, 5)
	m := New(p, 0)
	if _, err := m.RunToCompletion(1e6); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.Insts != 0 || m.PC != 0 || m.Halted || m.IntRegs[2] != 0 {
		t.Error("Reset did not clear state")
	}
	if _, err := m.RunToCompletion(1e6); err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[2] != 5 {
		t.Errorf("after reset rerun r2 = %d, want 5", m.IntRegs[2])
	}
}

func TestBranchHookFires(t *testing.T) {
	p := buildLoop(t, 4)
	m := New(p, 0)
	var taken int
	m.Branch = func(from, to int64) {
		if to > from {
			t.Errorf("loop program produced forward taken transfer %d->%d", from, to)
		}
		taken++
	}
	if _, err := m.RunToCompletion(1e6); err != nil {
		t.Fatal(err)
	}
	if taken != 3 { // bne taken 3 times for 4 trips
		t.Errorf("taken branches = %d, want 3", taken)
	}
}

func TestDeterminism(t *testing.T) {
	p := buildLoop(t, 100)
	run := func() ([]uint64, uint64) {
		m := New(p, 0)
		if _, err := m.RunToCompletion(1e6); err != nil {
			t.Fatal(err)
		}
		return m.SnapshotBlockCounts(), m.Insts
	}
	c1, n1 := run()
	c2, n2 := run()
	if n1 != n2 {
		t.Fatalf("instruction counts differ: %d != %d", n1, n2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Errorf("block %d: %d != %d", i, c1[i], c2[i])
		}
	}
}

func TestClone(t *testing.T) {
	p := buildLoop(t, 50)
	m := New(p, 0)
	if _, err := m.Run(20); err != nil {
		t.Fatal(err)
	}
	m.StoreWord(128, 77)
	c := m.Clone()
	if c.PC != m.PC || c.Insts != m.Insts || c.IntRegs != m.IntRegs {
		t.Fatal("clone state differs")
	}
	if c.LoadWord(128) != 77 {
		t.Error("clone memory differs")
	}
	// Diverge the clone; original must be unaffected.
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	c.StoreWord(128, 99)
	if m.LoadWord(128) != 77 {
		t.Error("clone write leaked into original")
	}
	if m.Insts == c.Insts {
		t.Error("original advanced with clone")
	}
	// Both finish identically from their own states.
	if _, err := m.RunToCompletion(1e6); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunToCompletion(1e6); err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[2] != c.IntRegs[2] {
		t.Errorf("divergent results: %d vs %d", m.IntRegs[2], c.IntRegs[2])
	}
}
