package emu

import (
	"strings"
	"testing"

	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

func TestCrossCheckDataflowExamples(t *testing.T) {
	for _, p := range prog.Examples() {
		if err := CrossCheckDataflow(p); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestCrossCheckDataflowCrossNamespace(t *testing.T) {
	// Hand-built programs whose operands name the "wrong" register
	// file: the machine folds sources and discards mismatched
	// destinations, and both models must agree on the result.
	ps := []*prog.Program{
		{Name: "discard_int", Code: []isa.Inst{
			{Op: isa.OpAdd, Rd: isa.F(3), Rs1: 1, Rs2: 2},
			{Op: isa.OpAddi, Rd: 0, Rs1: 1, Imm: 4},
			{Op: isa.OpLd, Rd: isa.F(7), Rs1: 1},
			{Op: isa.OpHalt},
		}},
		{Name: "discard_fp", Code: []isa.Inst{
			{Op: isa.OpFadd, Rd: 1, Rs1: 5, Rs2: 6},
			{Op: isa.OpFld, Rd: 2, Rs1: 1},
			{Op: isa.OpFmov, Rd: 4, Rs1: isa.F(9)},
			{Op: isa.OpHalt},
		}},
		{Name: "fold_sources", Code: []isa.Inst{
			{Op: isa.OpAdd, Rd: 3, Rs1: isa.F(5), Rs2: 2},
			{Op: isa.OpFadd, Rd: isa.F(1), Rs1: 5, Rs2: 6},
			{Op: isa.OpFst, Rs1: isa.F(4), Rs2: 8},
			{Op: isa.OpCvtIF, Rd: 9, Rs1: isa.F(2)},
			{Op: isa.OpJal, Rd: isa.F(6), Targ: 5},
			{Op: isa.OpHalt},
		}},
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := CrossCheckDataflow(p); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestCrossCheckDataflowSkipsInvalidOpcodes(t *testing.T) {
	p := &prog.Program{Name: "invalid", Code: []isa.Inst{
		{Op: isa.OpAddi, Rd: 1, Rs1: 0, Imm: 1},
		{Op: isa.Op(200)},
		{Op: isa.OpHalt},
	}}
	if err := CrossCheckDataflow(p); err != nil {
		t.Fatalf("invalid opcodes should be skipped, got %v", err)
	}
}

func TestCrossCheckDataflowDetectsSlotDrift(t *testing.T) {
	p := &prog.Program{Name: "drift", Code: []isa.Inst{
		{Op: isa.OpAdd, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: isa.OpHalt},
	}}
	dec := predecode(p)
	saved := dec.code[0]
	defer func() { dec.code[0] = saved }()

	// Reroute the destination to the sink, as if the predecoder had
	// wrongly discarded the write.
	dec.code[0].rd = intSink
	err := CrossCheckDataflow(p)
	if err == nil || !strings.Contains(err.Error(), "pc 0") {
		t.Fatalf("slot drift not detected: %v", err)
	}

	// Misfold a source register.
	dec.code[0] = saved
	dec.code[0].rs1 = 7
	if err := CrossCheckDataflow(p); err == nil {
		t.Fatal("source drift not detected")
	}
}
