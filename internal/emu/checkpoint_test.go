package emu

import (
	"bytes"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	p := buildLoop(t, 100)
	m := New(p, 1024)
	if _, err := m.Run(150); err != nil {
		t.Fatal(err)
	}
	m.StoreWord(256, 0xdeadbeef)

	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	restored := New(p, 1024)
	if err := restored.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.PC != m.PC || restored.Insts != m.Insts || restored.IntRegs != m.IntRegs {
		t.Fatal("restored state differs")
	}
	if restored.LoadWord(256) != 0xdeadbeef {
		t.Error("memory not restored")
	}

	// Both continue identically to completion.
	if _, err := m.RunToCompletion(1e6); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.RunToCompletion(1e6); err != nil {
		t.Fatal(err)
	}
	if m.Insts != restored.Insts || m.IntRegs[2] != restored.IntRegs[2] {
		t.Errorf("divergence after restore: %d/%d vs %d/%d",
			m.Insts, m.IntRegs[2], restored.Insts, restored.IntRegs[2])
	}
}

func TestCheckpointSparseEncoding(t *testing.T) {
	// A machine with little non-zero memory should checkpoint far
	// smaller than its memory footprint.
	p := buildLoop(t, 5)
	m := New(p, 1<<16)
	m.StoreWord(8, 1)
	m.StoreWord(800, 2)
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 2048 {
		t.Errorf("sparse checkpoint is %d bytes", buf.Len())
	}
}

func TestCheckpointErrors(t *testing.T) {
	p := buildLoop(t, 5)
	m := New(p, 1024)

	// Bad magic.
	if err := m.LoadCheckpoint(bytes.NewReader([]byte("NOTACKPT12345678"))); err == nil {
		t.Error("bad magic accepted")
	}

	// Memory size mismatch.
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other := New(p, 4096)
	if err := other.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("memory-size mismatch accepted")
	}

	// Truncation.
	data := buf.Bytes()
	for _, cut := range []int{4, 20, len(data) / 2} {
		m2 := New(p, 1024)
		if err := m2.LoadCheckpoint(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestCheckpointOfHaltedMachine(t *testing.T) {
	p := buildLoop(t, 3)
	m := New(p, 1024)
	if _, err := m.RunToCompletion(1e6); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r := New(p, 1024)
	if err := r.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if !r.Halted {
		t.Error("halted flag not restored")
	}
}
