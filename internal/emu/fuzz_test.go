package emu

// FuzzRunVsStep is the differential fuzz target for the predecoded
// fast path: arbitrary bytes become a short program (including invalid
// opcodes, cross-namespace register names, and out-of-range branch
// targets), and the fast Run loops — superblock traces included —
// must produce bit-identical machine state, counts, errors, and hook
// observations to the Step reference loop under the same budget
// schedule. Hooked inputs additionally attach and detach the hook
// between chunks, at whatever trace-interior PC the budget expired on.

import (
	"encoding/binary"
	"math"
	"testing"

	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

// fuzzProgram decodes data into a program, 8 bytes per instruction:
//
//	b0      opcode, modulo NumOps+2 so invalid opcodes appear
//	b1..b3  rd, rs1, rs2 across the full 64-name register space
//	b4,b5   16-bit signed immediate
//	b6      branch/jump target: in-range when b7 is even, raw
//	        (possibly negative or past the end) when odd
//
// Returns nil when data is too short for even one instruction.
func fuzzProgram(data []byte) *prog.Program {
	n := len(data) / 8
	if n == 0 {
		return nil
	}
	code := make([]isa.Inst, n)
	for i := 0; i < n; i++ {
		b := data[i*8 : i*8+8]
		targ := int64(int8(b[6]))
		if b[7]&1 == 0 {
			targ = ((targ % int64(n)) + int64(n)) % int64(n)
		}
		code[i] = isa.Inst{
			Op:   isa.Op(b[0] % uint8(isa.NumOps+2)),
			Rd:   isa.Reg(b[1] & 63),
			Rs1:  isa.Reg(b[2] & 63),
			Rs2:  isa.Reg(b[3] & 63),
			Imm:  int64(int16(binary.LittleEndian.Uint16(b[4:6]))),
			Targ: targ,
		}
	}
	return &prog.Program{Name: "fuzz", Code: code}
}

type hookEvent struct {
	from, to int64
	insts    uint64
}

func FuzzRunVsStep(f *testing.F) {
	// Seed a halt, a counting loop, an invalid opcode, and a jr.
	f.Add([]byte{0}, false)
	f.Add([]byte{
		0, byte(isa.OpAddi), 1, 0, 0, 5, 0, 0, 0,
		byte(isa.OpAddi), 1, 1, 0, 0xff, 0xff, 0, 0,
		byte(isa.OpBne), 0, 1, 0, 0, 0, 1, 0,
		byte(isa.OpHalt), 0, 0, 0, 0, 0, 0, 0,
	}, true)
	f.Add([]byte{
		3, byte(isa.NumOps), 0, 0, 0, 0, 0, 0, 0,
		byte(isa.OpJr), 0, 1, 0, 0, 0, 0, 1,
	}, false)
	f.Fuzz(func(t *testing.T, data []byte, hooked bool) {
		if len(data) < 9 {
			return
		}
		cfg := data[0]
		p := fuzzProgram(data[1:])
		if p == nil {
			return
		}
		// A bounded schedule: never Run(0), since fuzz programs may
		// loop forever. Cap total work at a few thousand instructions.
		budgets := []uint64{uint64(cfg)%97 + 1, uint64(cfg)%13 + 1, 4096}

		fast := New(p, 1<<8)
		ref := New(p, 1<<8)
		var evFast, evRef []hookEvent
		attach := func(on bool) {
			if !on {
				fast.Branch, ref.Branch = nil, nil
				return
			}
			fast.Branch = func(from, to int64) {
				evFast = append(evFast, hookEvent{from, to, fast.Insts})
			}
			ref.Branch = func(from, to int64) {
				evRef = append(evRef, hookEvent{from, to, ref.Insts})
			}
		}
		for bi, budget := range budgets {
			// Hooked inputs toggle the hook between chunks, driven by cfg
			// bits: budget boundaries land at arbitrary instruction counts,
			// i.e. at PCs inside regions the superblock engine covers with
			// traces, so every attach exercises the trace→hooked state
			// flush and every detach the re-entry into trace dispatch.
			if hooked {
				attach(cfg>>(bi&7)&1 == 0)
			}
			nFast, errFast := fast.Run(budget)
			nRef, errRef := ref.runStep(budget)
			if nFast != nRef {
				t.Fatalf("executed %d != reference %d", nFast, nRef)
			}
			if (errFast == nil) != (errRef == nil) ||
				(errFast != nil && errFast.Error() != errRef.Error()) {
				t.Fatalf("error %v != reference %v", errFast, errRef)
			}
			fuzzCompare(t, fast, ref)
			if errFast != nil || fast.Halted {
				break
			}
		}
		if len(evFast) != len(evRef) {
			t.Fatalf("hook fired %d times, reference %d", len(evFast), len(evRef))
		}
		for i := range evFast {
			if evFast[i] != evRef[i] {
				t.Fatalf("hook event %d: %+v != reference %+v", i, evFast[i], evRef[i])
			}
		}
	})
}

func fuzzCompare(t *testing.T, fast, ref *Machine) {
	t.Helper()
	if fast.PC != ref.PC || fast.Halted != ref.Halted || fast.haltedAt != ref.haltedAt {
		t.Fatalf("control state diverges: PC %d/%d Halted %v/%v haltedAt %d/%d",
			fast.PC, ref.PC, fast.Halted, ref.Halted, fast.haltedAt, ref.haltedAt)
	}
	if fast.Insts != ref.Insts {
		t.Fatalf("Insts %d != reference %d", fast.Insts, ref.Insts)
	}
	if fast.IntRegs != ref.IntRegs {
		t.Fatalf("IntRegs diverge:\n  fast %v\n  ref  %v", fast.IntRegs, ref.IntRegs)
	}
	for i := range fast.FPRegs {
		if math.Float64bits(fast.FPRegs[i]) != math.Float64bits(ref.FPRegs[i]) {
			t.Fatalf("FPRegs[%d] %x != reference %x", i,
				math.Float64bits(fast.FPRegs[i]), math.Float64bits(ref.FPRegs[i]))
		}
	}
	for i := range fast.BlockCounts {
		if fast.BlockCounts[i] != ref.BlockCounts[i] {
			t.Fatalf("BlockCounts[%d] %d != reference %d", i, fast.BlockCounts[i], ref.BlockCounts[i])
		}
	}
	for i := range fast.mem {
		if fast.mem[i] != ref.mem[i] {
			t.Fatalf("mem[%d] %#x != reference %#x", i, fast.mem[i], ref.mem[i])
		}
	}
}
