package emu_test

import (
	"testing"

	"mlpa/internal/bench"
	"mlpa/internal/emu"
)

// TestCrossCheckDataflowBenchSuite runs the predecode/static-model
// differential validator over every generated benchmark program.
func TestCrossCheckDataflowBenchSuite(t *testing.T) {
	for _, spec := range bench.Suite() {
		p, err := spec.Program(bench.SizeTiny)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := emu.CrossCheckDataflow(p); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}
