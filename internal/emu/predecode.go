package emu

// Predecoding lowers a prog.Program once into a dense internal
// representation the fast execution loops in run.go consume: register
// operands resolved to direct file indices (with the R0-reads-as-zero
// and discarded-write rules folded into dedicated slots), shift and
// LUI immediates pre-applied, and a per-PC straight-line batch length
// so the inner loop can account a whole basic block with one
// BlockCounts addition instead of one per instruction.
//
// The predecoded form is derived from Program.Code alone and cached on
// the Program via its Aux cache, so the many short-lived Machines the
// parallel state cache materializes share a single predecode pass.
// Like the basic-block decomposition, it assumes Code is not mutated
// after the first Machine is created.

import (
	"math"

	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

// Register-slot encoding. The fast loops keep the integer file in a
// 64-entry array: slots 0..31 are the architectural registers,
// intZero is a constant-zero slot reads of R0 resolve to (never
// written), and intSink absorbs discarded writes (destinations of R0
// or a floating-point register name on an integer-writing opcode,
// mirroring setInt). The FP file works the same way with fpSink
// absorbing writes whose destination is not an FP register (mirroring
// setFP). Slot values are always < 64, so the loops index with &63
// and the compiler drops every bounds check.
const (
	intZero = 32
	intSink = 33
	fpSink  = 32
)

// dinst is one predecoded instruction, packed to 16 bytes so a basic
// block's worth of them stays within a cache line or two. No opcode
// uses both an immediate and a branch target, so they share one field:
// imm holds the (pre-masked, pre-shifted) immediate for ALU and memory
// ops and the absolute target for branch and jump ops.
type dinst struct {
	op  uint8 // isa.Op, known-valid (invalid opcodes get span 0)
	rd  uint8 // integer destination slot (or intSink)
	rs1 uint8 // integer source slot (or intZero)
	rs2 uint8
	fd  uint8 // FP destination slot (or fpSink)
	fs1 uint8 // FP source slot
	fs2 uint8
	_   uint8

	imm int64 // immediate, or absolute branch/jump target
}

// predecoded is the per-program fast-path representation.
type predecoded struct {
	code []dinst
	// span[pc] is the number of instructions in the straight-line
	// batch beginning at pc: execution from pc proceeds without any
	// control transfer, halt, or PC bounds concern until the batch's
	// final instruction, which is the only one that may redirect or
	// stop the machine. All instructions of a batch lie in one basic
	// block, so the whole batch is accounted to one BlockCounts entry.
	// A span of 0 marks an instruction the fast path must hand to the
	// exact Step fallback (an invalid opcode).
	span []int32
	// traces[pc] is the superblock trace rooted at pc, or nil; only
	// block leaders passing the stitching rules have one. See trace.go.
	traces []*strace
}

type predecodeKey struct{}

// predecode returns the cached predecoded form of p, building it on
// first use.
func predecode(p *prog.Program) *predecoded {
	return p.Aux(predecodeKey{}, func() any { return buildPredecode(p) }).(*predecoded)
}

func intRead(r isa.Reg) uint8 {
	if r == isa.RZero {
		return intZero
	}
	return uint8(r & 31)
}

func intWrite(r isa.Reg) uint8 {
	if r == isa.RZero || r.IsFP() {
		return intSink
	}
	return uint8(r & 31)
}

func fpWrite(r isa.Reg) uint8 {
	if !r.IsFP() {
		return fpSink
	}
	return uint8(r & 31)
}

func buildPredecode(p *prog.Program) *predecoded {
	n := len(p.Code)
	d := &predecoded{
		code: make([]dinst, n),
		span: make([]int32, n),
	}
	for i, in := range p.Code {
		di := dinst{
			op:  uint8(in.Op),
			rd:  intWrite(in.Rd),
			rs1: intRead(in.Rs1),
			rs2: intRead(in.Rs2),
			fd:  fpWrite(in.Rd),
			fs1: uint8(in.Rs1 & 31),
			fs2: uint8(in.Rs2 & 31),
			imm: in.Imm,
		}
		switch {
		case in.Op == isa.OpShli || in.Op == isa.OpShri:
			di.imm = int64(uint64(in.Imm) & 63)
		case in.Op == isa.OpLui:
			di.imm = in.Imm << 16
		case in.Op.IsBranch():
			di.imm = in.Targ
		}
		d.code[i] = di
	}
	// Batch spans, per basic block, computed backwards so each span
	// extends the successor's. A batch ends at the block's terminator,
	// at a halt (inclusive — halt stops the machine), or just before
	// an invalid opcode (exclusive — the invalid instruction itself is
	// executed by the exact Step fallback).
	for _, b := range p.BasicBlocks() {
		for pc := b.End - 1; pc >= b.Start; pc-- {
			op := p.Code[pc].Op
			switch {
			case !op.Valid():
				d.span[pc] = 0
			case op == isa.OpHalt, op.IsBranch():
				d.span[pc] = 1
			case pc+1 < b.End && d.span[pc+1] > 0:
				d.span[pc] = d.span[pc+1] + 1
			default:
				d.span[pc] = 1
			}
		}
	}
	d.traces = buildTraces(p, d)
	return d
}

// execSpan executes the instructions [from, to) against the given
// register files and memory. Callers guarantee the range contains only
// plain (non-control, non-halt, valid) operations plus, for trace
// code, the guard/link pseudo-ops — the predecoder's batch spans and
// the trace stitcher enforce this — so the body needs no PC bounds
// checks, no error paths, and no per-instruction accounting. The
// return value is the index (relative to dc) of the first failing
// guard, or -1 when the whole range ran; block-batched callers pass
// guard-free ranges and ignore it. dirty, when non-nil, is the
// machine's written-page bitmap (see dirty.go); stores mark it.
func execSpan(dc []dinst, from, to int64, R *[64]int64, F *[64]float64, mem []uint64, memMask int64, dirty []uint64) int64 {
	batch := dc[from:to]
	for i := range batch {
		d := &batch[i]
		switch isa.Op(d.op) {
		case isa.OpNop:
		case isa.OpAdd:
			R[d.rd&63] = R[d.rs1&63] + R[d.rs2&63]
		case isa.OpSub:
			R[d.rd&63] = R[d.rs1&63] - R[d.rs2&63]
		case isa.OpMul:
			R[d.rd&63] = R[d.rs1&63] * R[d.rs2&63]
		case isa.OpDiv:
			if v := R[d.rs2&63]; v == 0 {
				R[d.rd&63] = 0
			} else {
				R[d.rd&63] = R[d.rs1&63] / v
			}
		case isa.OpRem:
			if v := R[d.rs2&63]; v == 0 {
				R[d.rd&63] = 0
			} else {
				R[d.rd&63] = R[d.rs1&63] % v
			}
		case isa.OpAnd:
			R[d.rd&63] = R[d.rs1&63] & R[d.rs2&63]
		case isa.OpOr:
			R[d.rd&63] = R[d.rs1&63] | R[d.rs2&63]
		case isa.OpXor:
			R[d.rd&63] = R[d.rs1&63] ^ R[d.rs2&63]
		case isa.OpShl:
			R[d.rd&63] = R[d.rs1&63] << (uint64(R[d.rs2&63]) & 63)
		case isa.OpShr:
			R[d.rd&63] = int64(uint64(R[d.rs1&63]) >> (uint64(R[d.rs2&63]) & 63))
		case isa.OpSlt:
			R[d.rd&63] = b2i(R[d.rs1&63] < R[d.rs2&63])
		case isa.OpAddi:
			R[d.rd&63] = R[d.rs1&63] + d.imm
		case isa.OpAndi:
			R[d.rd&63] = R[d.rs1&63] & d.imm
		case isa.OpOri:
			R[d.rd&63] = R[d.rs1&63] | d.imm
		case isa.OpXori:
			R[d.rd&63] = R[d.rs1&63] ^ d.imm
		case isa.OpShli:
			R[d.rd&63] = R[d.rs1&63] << uint64(d.imm)
		case isa.OpShri:
			R[d.rd&63] = int64(uint64(R[d.rs1&63]) >> uint64(d.imm))
		case isa.OpSlti:
			R[d.rd&63] = b2i(R[d.rs1&63] < d.imm)
		case isa.OpLui:
			R[d.rd&63] = d.imm
		case isa.OpLd:
			addr := R[d.rs1&63] + d.imm
			R[d.rd&63] = int64(mem[(addr>>3)&memMask])
		case isa.OpSt:
			addr := R[d.rs1&63] + d.imm
			w := (addr >> 3) & memMask
			mem[w] = uint64(R[d.rs2&63])
			if dirty != nil {
				p := uint64(w) >> pageShift
				dirty[p>>6] |= 1 << (p & 63)
			}
		case isa.OpFld:
			addr := R[d.rs1&63] + d.imm
			F[d.fd&63] = math.Float64frombits(mem[(addr>>3)&memMask])
		case isa.OpFst:
			addr := R[d.rs1&63] + d.imm
			w := (addr >> 3) & memMask
			mem[w] = math.Float64bits(F[d.fs2&63])
			if dirty != nil {
				p := uint64(w) >> pageShift
				dirty[p>>6] |= 1 << (p & 63)
			}
		case isa.OpFadd:
			F[d.fd&63] = F[d.fs1&63] + F[d.fs2&63]
		case isa.OpFsub:
			F[d.fd&63] = F[d.fs1&63] - F[d.fs2&63]
		case isa.OpFmul:
			F[d.fd&63] = F[d.fs1&63] * F[d.fs2&63]
		case isa.OpFdiv:
			F[d.fd&63] = F[d.fs1&63] / F[d.fs2&63]
		case isa.OpFneg:
			F[d.fd&63] = -F[d.fs1&63]
		case isa.OpFmov:
			F[d.fd&63] = F[d.fs1&63]
		case isa.OpCvtIF:
			F[d.fd&63] = float64(R[d.rs1&63])
		case isa.OpCvtFI:
			f := F[d.fs1&63]
			if math.IsNaN(f) || math.IsInf(f, 0) {
				R[d.rd&63] = 0
			} else {
				R[d.rd&63] = int64(f)
			}
		case isa.OpFcmpLt:
			R[d.rd&63] = b2i(F[d.fs1&63] < F[d.fs2&63])
		case isa.OpFcmpEq:
			R[d.rd&63] = b2i(F[d.fs1&63] == F[d.fs2&63])
		case opGuardEQ:
			if R[d.rs1&63] != R[d.rs2&63] {
				return from + int64(i)
			}
		case opGuardNE:
			if R[d.rs1&63] == R[d.rs2&63] {
				return from + int64(i)
			}
		case opGuardLT:
			if R[d.rs1&63] >= R[d.rs2&63] {
				return from + int64(i)
			}
		case opGuardGE:
			if R[d.rs1&63] < R[d.rs2&63] {
				return from + int64(i)
			}
		case opLinkImm:
			R[d.rd&63] = d.imm
		}
	}
	return -1
}
