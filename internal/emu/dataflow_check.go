package emu

// Differential validation of the static dataflow model against the
// emulator's predecoded form. The dataflow package claims EffectOf
// mirrors the machine's register semantics exactly; the predecoder
// independently resolves every operand to a register-file slot (with
// the zero and sink rules folded in). CrossCheckDataflow re-derives
// each instruction's def/use sets from those slots — using a
// per-opcode table of which slots run.go's execution loops actually
// touch — and demands equality, so a drift in either model surfaces as
// a concrete per-PC mismatch instead of a silent unsoundness in
// checkpoint live-in sets.

import (
	"fmt"

	"mlpa/internal/isa"
	"mlpa/internal/prog"
	"mlpa/internal/staticanalysis/dataflow"
)

// slotIntUse converts an integer-file read slot to a register cell.
// Slot intZero is the hard-wired zero, and slot 0 (an FP-named operand
// folding onto the never-written IntRegs[0]) reads a constant — neither
// is a use.
func slotIntUse(s uint8) dataflow.RegSet {
	if s >= intZero || s == 0 {
		return 0
	}
	return dataflow.RegSet(1) << s
}

// slotIntDef converts an integer-file write slot to a register cell;
// intSink absorbs discarded writes.
func slotIntDef(s uint8) dataflow.RegSet {
	if s >= intZero {
		return 0
	}
	return dataflow.RegSet(1) << s
}

// slotFPUse converts an FP-file read slot to a register cell; every FP
// cell is writable, so every read is a use.
func slotFPUse(s uint8) dataflow.RegSet {
	return dataflow.RegSet(1) << (32 + uint(s&31))
}

// slotFPDef converts an FP-file write slot to a register cell.
func slotFPDef(s uint8) dataflow.RegSet {
	if s >= fpSink {
		return 0
	}
	return dataflow.RegSet(1) << (32 + uint(s))
}

// slotEffect derives an instruction's effect purely from its predecoded
// slots, using a table of which slots the fast loops (execSpan and the
// terminator handling in run.go) read and write per opcode. ok is false
// for opcodes outside the table (invalid encodings, which the fast path
// defers to Step).
func slotEffect(d dinst) (eff dataflow.Effect, ok bool) {
	switch isa.Op(d.op) {
	case isa.OpNop, isa.OpHalt, isa.OpJmp:
		return dataflow.Effect{}, true
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSlt:
		return dataflow.Effect{Use: slotIntUse(d.rs1) | slotIntUse(d.rs2), Def: slotIntDef(d.rd)}, true
	case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpShli, isa.OpShri, isa.OpSlti:
		return dataflow.Effect{Use: slotIntUse(d.rs1), Def: slotIntDef(d.rd)}, true
	case isa.OpLui:
		return dataflow.Effect{Def: slotIntDef(d.rd)}, true
	case isa.OpLd:
		return dataflow.Effect{Use: slotIntUse(d.rs1), Def: slotIntDef(d.rd), Load: true}, true
	case isa.OpSt:
		return dataflow.Effect{Use: slotIntUse(d.rs1) | slotIntUse(d.rs2), Store: true}, true
	case isa.OpFld:
		return dataflow.Effect{Use: slotIntUse(d.rs1), Def: slotFPDef(d.fd), Load: true}, true
	case isa.OpFst:
		return dataflow.Effect{Use: slotIntUse(d.rs1) | slotFPUse(d.fs2), Store: true}, true
	case isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFdiv:
		return dataflow.Effect{Use: slotFPUse(d.fs1) | slotFPUse(d.fs2), Def: slotFPDef(d.fd)}, true
	case isa.OpFneg, isa.OpFmov:
		return dataflow.Effect{Use: slotFPUse(d.fs1), Def: slotFPDef(d.fd)}, true
	case isa.OpCvtIF:
		return dataflow.Effect{Use: slotIntUse(d.rs1), Def: slotFPDef(d.fd)}, true
	case isa.OpCvtFI:
		return dataflow.Effect{Use: slotFPUse(d.fs1), Def: slotIntDef(d.rd)}, true
	case isa.OpFcmpLt, isa.OpFcmpEq:
		return dataflow.Effect{Use: slotFPUse(d.fs1) | slotFPUse(d.fs2), Def: slotIntDef(d.rd)}, true
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		return dataflow.Effect{Use: slotIntUse(d.rs1) | slotIntUse(d.rs2)}, true
	case isa.OpJal:
		return dataflow.Effect{Def: slotIntDef(d.rd)}, true
	case isa.OpJr:
		return dataflow.Effect{Use: slotIntUse(d.rs1)}, true
	default:
		return dataflow.Effect{}, false
	}
}

// destFile reports which register file an opcode writes its
// destination through: 'i' (setInt / integer slots), 'f' (setFP / FP
// slots), or 0 for opcodes with no destination.
func destFile(op isa.Op) byte {
	switch op {
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSlt,
		isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpShli, isa.OpShri, isa.OpSlti,
		isa.OpLui, isa.OpLd, isa.OpCvtFI, isa.OpFcmpLt, isa.OpFcmpEq, isa.OpJal:
		return 'i'
	case isa.OpFld, isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFdiv,
		isa.OpFneg, isa.OpFmov, isa.OpCvtIF:
		return 'f'
	}
	return 0
}

// CrossCheckDataflow verifies, for every instruction of p, that the
// static dataflow model (dataflow.EffectOf) agrees with the emulator's
// predecoded register slots: identical use/def sets and memory flags,
// and — for instructions whose syntactic destination is discarded by
// the machine — that the predecoder routed the write to a sink slot.
// It returns the first disagreement as an error, or nil if the two
// models agree on the whole program.
func CrossCheckDataflow(p *prog.Program) error {
	dec := predecode(p)
	for pc, in := range p.Code {
		if dec.span[pc] == 0 {
			// Invalid opcode: the fast path defers to Step, which
			// refuses to execute it, so there is nothing to cross-check.
			continue
		}
		d := dec.code[pc]
		got, ok := slotEffect(d)
		if !ok {
			return fmt.Errorf("emu: %s pc %d: opcode %v has a batch span but no slot-effect entry",
				p.Name, pc, in.Op)
		}
		want := dataflow.EffectOf(in)
		if got != want {
			return fmt.Errorf("emu: %s pc %d (%v): predecoded slots imply effect %+v, static model says %+v",
				p.Name, pc, in, got, want)
		}
		// Dead-destination agreement: a destination whose write the
		// static model discards must be routed to the sink slot of the
		// file the opcode writes through, and an effective static def
		// requires a syntactic destination.
		if rd, hasDest := in.Dests(); hasDest && want.Def == 0 {
			var sunk bool
			switch destFile(in.Op) {
			case 'i':
				sunk = d.rd == intSink
			case 'f':
				sunk = d.fd == fpSink
			}
			if !sunk {
				return fmt.Errorf("emu: %s pc %d (%v): destination %v is statically dead but predecodes to live slots rd=%d fd=%d",
					p.Name, pc, in, rd, d.rd, d.fd)
			}
		}
		if want.Def != 0 {
			if _, hasDest := in.Dests(); !hasDest {
				return fmt.Errorf("emu: %s pc %d (%v): static model defines %v but isa.Dests reports no destination",
					p.Name, pc, in, want.Def)
			}
		}
	}
	return nil
}
