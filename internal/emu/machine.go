// Package emu implements the functional emulator — the fast-forward
// engine of the sampling-simulation framework. It executes mini-ISA
// programs at interpreter speed while maintaining the committed
// instruction count, per-basic-block instruction counts (the raw
// material of basic-block vectors), and an optional taken-branch hook
// used by the dynamic loop profiler.
package emu

import (
	"fmt"
	"math"
	"math/bits"
	"time"

	"mlpa/internal/isa"
	"mlpa/internal/obs"
	"mlpa/internal/prog"
)

// BranchHook observes taken control transfers. from is the PC of the
// transferring instruction, to the destination PC. Backward transfers
// (to <= from) delimit loop iterations.
type BranchHook func(from, to int64)

// StepInfo describes one committed instruction for execution-driven
// timing simulation.
type StepInfo struct {
	PC      int64
	Inst    isa.Inst
	NextPC  int64
	MemAddr int64 // virtual byte address for loads/stores, else -1
	Taken   bool  // control transfer taken (always true for jumps)
}

// Machine is the architectural state of one program execution.
type Machine struct {
	Prog *prog.Program

	IntRegs [isa.NumIntRegs]int64
	FPRegs  [isa.NumFPRegs]float64

	// PC is the next instruction index to execute.
	PC     int64
	Halted bool

	// Insts is the number of committed instructions so far.
	Insts uint64

	// BlockCounts[b] is the number of instructions committed within
	// basic block b since the last ResetBlockCounts. This is the
	// instruction-weighted BBV accumulator.
	BlockCounts []uint64

	// Branch, if non-nil, is invoked for every taken control transfer.
	Branch BranchHook

	// Metrics, if non-nil, receives functional-execution rate metrics
	// from Run (gauge emu.mips, counter emu.run_insts). It adds one
	// branch per Run call, not per instruction.
	Metrics *obs.Registry

	// NoTraces disables superblock-trace dispatch in Run's fast path,
	// forcing pure block-batched execution. Results are bit-identical
	// either way (the differential suite proves it); the knob exists
	// for A/B measurement and tests.
	NoTraces bool

	mem      []uint64 // word-addressed data memory, power-of-two length
	memMask  int64
	code     []isa.Inst
	blockOf  []int32
	haltedAt int64
	dec      *predecoded // shared per-program fast-path representation
	dirty    []uint64    // written-page bitmap; nil unless TrackDirtyPages
}

// DefaultMemWords is the data-memory size used when a program does not
// declare one: 1M words = 8 MiB, comfortably larger than the L2.
const DefaultMemWords = 1 << 20

// New creates a Machine for p. memWords, if positive, overrides the
// data-memory size; it is rounded up to a power of two words.
func New(p *prog.Program, memWords int64) *Machine {
	if memWords <= 0 {
		memWords = (p.DataSize + 7) / 8
		if memWords < DefaultMemWords {
			memWords = DefaultMemWords
		}
	}
	words := int64(1)
	for words < memWords {
		words <<= 1
	}
	return &Machine{
		Prog:        p,
		mem:         make([]uint64, words),
		memMask:     words - 1,
		code:        p.Code,
		blockOf:     p.BlockTable(),
		BlockCounts: make([]uint64, p.NumBlocks()),
		dec:         predecode(p),
	}
}

// Clone returns an independent deep copy of the machine (registers,
// memory, counters). Hooks are not copied. Cloning costs a full
// data-memory copy; it exists for dry-run warming passes.
func (m *Machine) Clone() *Machine {
	c := &Machine{
		Prog:        m.Prog,
		IntRegs:     m.IntRegs,
		FPRegs:      m.FPRegs,
		PC:          m.PC,
		Halted:      m.Halted,
		Insts:       m.Insts,
		mem:         append([]uint64(nil), m.mem...),
		memMask:     m.memMask,
		code:        m.code,
		blockOf:     m.blockOf,
		BlockCounts: append([]uint64(nil), m.BlockCounts...),
		haltedAt:    m.haltedAt,
		dec:         m.dec,
		NoTraces:    m.NoTraces,
	}
	if m.dirty != nil {
		c.dirty = append([]uint64(nil), m.dirty...)
	}
	return c
}

// Reset rewinds the machine to the initial state (registers, memory,
// PC, counters all zero). With dirty-page tracking enabled it zeroes
// only the tracked pages — dirty pages are a superset of non-zero ones
// — so a reset costs O(touched memory), not O(memory). That is what
// makes restoring a sequence of checkpoints into one machine cheap.
func (m *Machine) Reset() {
	m.IntRegs = [isa.NumIntRegs]int64{}
	m.FPRegs = [isa.NumFPRegs]float64{}
	if m.dirty == nil {
		clear(m.mem)
	} else {
		m.scrubDirtyPages()
	}
	m.PC = 0
	m.Halted = false
	m.Insts = 0
	m.ResetBlockCounts()
	// All-zero memory has no pages worth capturing.
	clear(m.dirty)
}

// scrubDirtyPages zeroes every page in the dirty set.
func (m *Machine) scrubDirtyPages() {
	for wi, w := range m.dirty {
		for w != 0 {
			p := int64(wi)<<6 | int64(bits.TrailingZeros64(w))
			lo := p << pageShift
			hi := lo + PageWords
			if hi > int64(len(m.mem)) {
				hi = int64(len(m.mem))
			}
			clear(m.mem[lo:hi])
			w &= w - 1
		}
	}
}

// ResetBlockCounts zeroes the BBV accumulator (used at interval
// boundaries).
func (m *Machine) ResetBlockCounts() {
	clear(m.BlockCounts)
}

// SnapshotBlockCounts returns a copy of the BBV accumulator.
func (m *Machine) SnapshotBlockCounts() []uint64 {
	out := make([]uint64, len(m.BlockCounts))
	copy(out, m.BlockCounts)
	return out
}

// MemWords returns the data-memory size in 64-bit words.
func (m *Machine) MemWords() int64 { return int64(len(m.mem)) }

// LoadWord reads the data word at virtual byte address addr.
func (m *Machine) LoadWord(addr int64) uint64 { return m.mem[(addr>>3)&m.memMask] }

// StoreWord writes the data word at virtual byte address addr.
func (m *Machine) StoreWord(addr int64, v uint64) {
	w := (addr >> 3) & m.memMask
	m.mem[w] = v
	m.markDirty(w)
}

// Step executes a single instruction and reports what happened. It is
// the execution-driven interface used by the detailed timing model.
func (m *Machine) Step() (StepInfo, error) {
	if m.Halted {
		return StepInfo{}, fmt.Errorf("emu: program %q already halted", m.Prog.Name)
	}
	pc := m.PC
	if pc < 0 || pc >= int64(len(m.code)) {
		m.Halted = true
		return StepInfo{}, fmt.Errorf("emu: program %q: PC %d out of range", m.Prog.Name, pc)
	}
	in := m.code[pc]
	info := StepInfo{PC: pc, Inst: in, MemAddr: -1}

	m.BlockCounts[m.blockOf[pc]]++
	m.Insts++

	next := pc + 1
	taken := false

	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		m.Halted = true
		m.haltedAt = pc
		next = pc
	case isa.OpAdd:
		m.setInt(in.Rd, m.geti(in.Rs1)+m.geti(in.Rs2))
	case isa.OpSub:
		m.setInt(in.Rd, m.geti(in.Rs1)-m.geti(in.Rs2))
	case isa.OpMul:
		m.setInt(in.Rd, m.geti(in.Rs1)*m.geti(in.Rs2))
	case isa.OpDiv:
		d := m.geti(in.Rs2)
		if d == 0 {
			m.setInt(in.Rd, 0)
		} else {
			m.setInt(in.Rd, m.geti(in.Rs1)/d)
		}
	case isa.OpRem:
		d := m.geti(in.Rs2)
		if d == 0 {
			m.setInt(in.Rd, 0)
		} else {
			m.setInt(in.Rd, m.geti(in.Rs1)%d)
		}
	case isa.OpAnd:
		m.setInt(in.Rd, m.geti(in.Rs1)&m.geti(in.Rs2))
	case isa.OpOr:
		m.setInt(in.Rd, m.geti(in.Rs1)|m.geti(in.Rs2))
	case isa.OpXor:
		m.setInt(in.Rd, m.geti(in.Rs1)^m.geti(in.Rs2))
	case isa.OpShl:
		m.setInt(in.Rd, m.geti(in.Rs1)<<(uint64(m.geti(in.Rs2))&63))
	case isa.OpShr:
		m.setInt(in.Rd, int64(uint64(m.geti(in.Rs1))>>(uint64(m.geti(in.Rs2))&63)))
	case isa.OpSlt:
		m.setInt(in.Rd, b2i(m.geti(in.Rs1) < m.geti(in.Rs2)))
	case isa.OpAddi:
		m.setInt(in.Rd, m.geti(in.Rs1)+in.Imm)
	case isa.OpAndi:
		m.setInt(in.Rd, m.geti(in.Rs1)&in.Imm)
	case isa.OpOri:
		m.setInt(in.Rd, m.geti(in.Rs1)|in.Imm)
	case isa.OpXori:
		m.setInt(in.Rd, m.geti(in.Rs1)^in.Imm)
	case isa.OpShli:
		m.setInt(in.Rd, m.geti(in.Rs1)<<(uint64(in.Imm)&63))
	case isa.OpShri:
		m.setInt(in.Rd, int64(uint64(m.geti(in.Rs1))>>(uint64(in.Imm)&63)))
	case isa.OpSlti:
		m.setInt(in.Rd, b2i(m.geti(in.Rs1) < in.Imm))
	case isa.OpLui:
		m.setInt(in.Rd, in.Imm<<16)
	case isa.OpLd:
		addr := m.geti(in.Rs1) + in.Imm
		info.MemAddr = addr
		m.setInt(in.Rd, int64(m.mem[(addr>>3)&m.memMask]))
	case isa.OpSt:
		addr := m.geti(in.Rs1) + in.Imm
		info.MemAddr = addr
		w := (addr >> 3) & m.memMask
		m.mem[w] = uint64(m.geti(in.Rs2))
		m.markDirty(w)
	case isa.OpFld:
		addr := m.geti(in.Rs1) + in.Imm
		info.MemAddr = addr
		m.setFP(in.Rd, math.Float64frombits(m.mem[(addr>>3)&m.memMask]))
	case isa.OpFst:
		addr := m.geti(in.Rs1) + in.Imm
		info.MemAddr = addr
		w := (addr >> 3) & m.memMask
		m.mem[w] = math.Float64bits(m.getf(in.Rs2))
		m.markDirty(w)
	case isa.OpFadd:
		m.setFP(in.Rd, m.getf(in.Rs1)+m.getf(in.Rs2))
	case isa.OpFsub:
		m.setFP(in.Rd, m.getf(in.Rs1)-m.getf(in.Rs2))
	case isa.OpFmul:
		m.setFP(in.Rd, m.getf(in.Rs1)*m.getf(in.Rs2))
	case isa.OpFdiv:
		m.setFP(in.Rd, m.getf(in.Rs1)/m.getf(in.Rs2))
	case isa.OpFneg:
		m.setFP(in.Rd, -m.getf(in.Rs1))
	case isa.OpFmov:
		m.setFP(in.Rd, m.getf(in.Rs1))
	case isa.OpCvtIF:
		m.setFP(in.Rd, float64(m.geti(in.Rs1)))
	case isa.OpCvtFI:
		f := m.getf(in.Rs1)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			m.setInt(in.Rd, 0)
		} else {
			m.setInt(in.Rd, int64(f))
		}
	case isa.OpFcmpLt:
		m.setInt(in.Rd, b2i(m.getf(in.Rs1) < m.getf(in.Rs2)))
	case isa.OpFcmpEq:
		m.setInt(in.Rd, b2i(m.getf(in.Rs1) == m.getf(in.Rs2)))
	case isa.OpBeq:
		taken = m.geti(in.Rs1) == m.geti(in.Rs2)
	case isa.OpBne:
		taken = m.geti(in.Rs1) != m.geti(in.Rs2)
	case isa.OpBlt:
		taken = m.geti(in.Rs1) < m.geti(in.Rs2)
	case isa.OpBge:
		taken = m.geti(in.Rs1) >= m.geti(in.Rs2)
	case isa.OpJmp:
		taken = true
	case isa.OpJal:
		m.setInt(in.Rd, pc+1)
		taken = true
	case isa.OpJr:
		taken = true
		next = m.geti(in.Rs1)
	default:
		return info, fmt.Errorf("emu: program %q: unimplemented opcode %v at pc %d", m.Prog.Name, in.Op, pc)
	}

	if taken && in.Op != isa.OpJr {
		next = in.Targ
	}
	if taken && m.Branch != nil {
		m.Branch(pc, next)
	}
	info.Taken = taken
	info.NextPC = next
	m.PC = next
	return info, nil
}

// Run executes up to maxInsts instructions (or until halt if maxInsts
// is 0) and returns the number executed. It is the fast path used for
// functional fast-forwarding and profiling: the program is executed
// from its predecoded form in basic-block batches (see predecode.go
// and run.go), which is bit-identical to driving the machine with
// Step but several times faster.
func (m *Machine) Run(maxInsts uint64) (uint64, error) {
	var t0 time.Time
	if m.Metrics != nil {
		t0 = time.Now() //mlpalint:allow time-now (metrics wall clock, not simulated state)
	}
	var done uint64
	var err error
	switch {
	case m.Halted:
		// Nothing to do; like the Step loop, a halted machine runs
		// zero instructions without error.
	case m.dec == nil:
		// Machines not built by New have no predecoded program.
		done, err = m.runStep(maxInsts)
	case m.Branch != nil:
		done, err = m.runHooked(maxInsts)
	default:
		done, err = m.runFast(maxInsts)
	}
	if m.Metrics != nil && done > 0 {
		if secs := time.Since(t0).Seconds(); secs > 0 {
			m.Metrics.Gauge("emu.mips").Set(float64(done) / secs / 1e6)
		}
		m.Metrics.Counter("emu.run_insts").Add(int64(done))
	}
	return done, err
}

// RunToCompletion executes until the program halts, with a safety
// bound to catch runaway programs.
func (m *Machine) RunToCompletion(bound uint64) (uint64, error) {
	n, err := m.Run(bound)
	if err != nil {
		return n, err
	}
	if !m.Halted {
		return n, fmt.Errorf("emu: program %q did not halt within %d instructions", m.Prog.Name, bound)
	}
	return n, nil
}

func (m *Machine) geti(r isa.Reg) int64 {
	if r == isa.RZero {
		return 0
	}
	return m.IntRegs[r&31]
}

func (m *Machine) getf(r isa.Reg) float64 {
	return m.FPRegs[r&31]
}

func (m *Machine) setInt(r isa.Reg, v int64) {
	if r != isa.RZero && !r.IsFP() {
		m.IntRegs[r&31] = v
	}
}

// setFP writes FP register r, discarding writes whose destination is
// not an FP register name — symmetric with setInt, which discards
// writes to R0 and to FP register names. Verifier-passing programs
// never hit the guard; it exists so malformed programs behave
// identically under Step and the predecoded fast path.
func (m *Machine) setFP(r isa.Reg, v float64) {
	if r.IsFP() {
		m.FPRegs[r&31] = v
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
