package emu

// Differential tests of the predecoded fast path: Run (block-batched,
// monomorphic loops) must be bit-identical to driving the machine with
// Step — same registers, memory, PC, counters, halt state, errors, and
// identical hook observations. The fuzz target in fuzz_test.go chews
// on the same comparison with adversarial programs.

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

// stepMachine drives m with the reference per-instruction loop,
// replicating the legacy Run semantics exactly.
func stepMachine(m *Machine, maxInsts uint64) (uint64, error) {
	return m.runStep(maxInsts)
}

// compareMachines fails the test unless every architectural observable
// of the two machines is identical. FP registers are compared by bit
// pattern so NaNs with different payloads are distinguished.
func compareMachines(t *testing.T, fast, ref *Machine, label string) {
	t.Helper()
	if fast.PC != ref.PC {
		t.Errorf("%s: PC %d != reference %d", label, fast.PC, ref.PC)
	}
	if fast.Halted != ref.Halted {
		t.Errorf("%s: Halted %v != reference %v", label, fast.Halted, ref.Halted)
	}
	if fast.haltedAt != ref.haltedAt {
		t.Errorf("%s: haltedAt %d != reference %d", label, fast.haltedAt, ref.haltedAt)
	}
	if fast.Insts != ref.Insts {
		t.Errorf("%s: Insts %d != reference %d", label, fast.Insts, ref.Insts)
	}
	if fast.IntRegs != ref.IntRegs {
		t.Errorf("%s: IntRegs diverge:\n  fast %v\n  ref  %v", label, fast.IntRegs, ref.IntRegs)
	}
	for i := range fast.FPRegs {
		if math.Float64bits(fast.FPRegs[i]) != math.Float64bits(ref.FPRegs[i]) {
			t.Errorf("%s: FPRegs[%d] %x != reference %x", label, i,
				math.Float64bits(fast.FPRegs[i]), math.Float64bits(ref.FPRegs[i]))
		}
	}
	for i := range fast.BlockCounts {
		if fast.BlockCounts[i] != ref.BlockCounts[i] {
			t.Errorf("%s: BlockCounts[%d] %d != reference %d", label, i,
				fast.BlockCounts[i], ref.BlockCounts[i])
		}
	}
	for i := range fast.mem {
		if fast.mem[i] != ref.mem[i] {
			t.Fatalf("%s: mem[%d] %#x != reference %#x", label, i, fast.mem[i], ref.mem[i])
		}
	}
}

func compareOutcome(t *testing.T, label string, nFast, nRef uint64, errFast, errRef error) {
	t.Helper()
	if nFast != nRef {
		t.Errorf("%s: executed %d != reference %d", label, nFast, nRef)
	}
	if (errFast == nil) != (errRef == nil) {
		t.Errorf("%s: error %v != reference %v", label, errFast, errRef)
	} else if errFast != nil && errFast.Error() != errRef.Error() {
		t.Errorf("%s: error %q != reference %q", label, errFast, errRef)
	}
}

// runBothChunked runs the same program on a fast-path machine and a
// Step-loop machine in identical chunk schedules, comparing all state
// after every chunk. A chunk of 0 runs to completion.
func runBothChunked(t *testing.T, p *prog.Program, memWords int64, chunks []uint64) {
	t.Helper()
	fast := New(p, memWords)
	ref := New(p, memWords)
	for ci, chunk := range chunks {
		nFast, errFast := fast.Run(chunk)
		nRef, errRef := stepMachine(ref, chunk)
		label := fmt.Sprintf("%s chunk %d (budget %d)", p.Name, ci, chunk)
		compareOutcome(t, label, nFast, nRef, errFast, errRef)
		compareMachines(t, fast, ref, label)
		if t.Failed() || errFast != nil || fast.Halted {
			break
		}
	}
}

// TestRunMatchesStepLoop runs every builder example program to
// completion under several chunk schedules, including ragged budgets
// that expire mid-batch.
func TestRunMatchesStepLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range prog.Examples() {
		schedules := [][]uint64{
			{0},                    // one unbounded run
			{1, 2, 3, 5, 8, 13, 0}, // tiny ragged chunks, then the rest
		}
		var random []uint64
		for i := 0; i < 64; i++ {
			random = append(random, uint64(rng.Intn(97)+1))
		}
		schedules = append(schedules, append(random, 0))
		for si, chunks := range schedules {
			chunks := chunks
			t.Run(fmt.Sprintf("%s/schedule%d", p.Name, si), func(t *testing.T) {
				runBothChunked(t, p, 1<<12, chunks)
			})
		}
	}
}

// TestRunMatchesStepLoopProfiler attaches a LoopProfiler to a
// fast-path machine and to a Step-driven machine and requires the
// discovered loop structures to be identical — the hook must observe
// the same (from, to, Insts) sequence either way.
func TestRunMatchesStepLoopProfiler(t *testing.T) {
	for _, p := range prog.Examples() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			fast := New(p, 1<<12)
			ref := New(p, 1<<12)
			lpFast := NewLoopProfiler(fast)
			lpRef := NewLoopProfiler(ref)
			fast.Branch = lpFast.OnBranch
			ref.Branch = lpRef.OnBranch
			nFast, errFast := fast.Run(0)
			nRef, errRef := stepMachine(ref, 0)
			compareOutcome(t, p.Name, nFast, nRef, errFast, errRef)
			compareMachines(t, fast, ref, p.Name)
			lpFast.Finish()
			lpRef.Finish()
			sFast, sRef := lpFast.Structures(), lpRef.Structures()
			if !reflect.DeepEqual(sFast, sRef) {
				t.Errorf("loop structures diverge:\n  fast %+v\n  ref  %+v", sFast, sRef)
			}
			if len(sFast) == 0 {
				t.Errorf("profiler discovered no structures in %s", p.Name)
			}
		})
	}
}

// TestRunMatchesStepLoopSnapshotHook exercises a vli-style hook that
// reads m.Insts and snapshots/resets BlockCounts mid-run; the observed
// event streams must be identical between the two engines.
func TestRunMatchesStepLoopSnapshotHook(t *testing.T) {
	type event struct {
		from, to int64
		insts    uint64
		snap     []uint64
	}
	collect := func(m *Machine, run func(uint64) (uint64, error)) ([]event, uint64, error) {
		var events []event
		n := 0
		m.Branch = func(from, to int64) {
			n++
			if to <= from && n%3 == 0 {
				events = append(events, event{from, to, m.Insts, m.SnapshotBlockCounts()})
				m.ResetBlockCounts()
			}
		}
		done, err := run(0)
		return events, done, err
	}
	for _, p := range prog.Examples() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			fast := New(p, 1<<12)
			ref := New(p, 1<<12)
			evFast, nFast, errFast := collect(fast, fast.Run)
			evRef, nRef, errRef := collect(ref, ref.runStep)
			compareOutcome(t, p.Name, nFast, nRef, errFast, errRef)
			compareMachines(t, fast, ref, p.Name)
			if !reflect.DeepEqual(evFast, evRef) {
				t.Errorf("hook event streams diverge: %d fast events vs %d reference", len(evFast), len(evRef))
			}
		})
	}
}

// TestRunHookToggleAtTraceBoundaries attaches and detaches the Branch
// hook between budget chunks that stop at arbitrary instruction counts
// — PCs that land in the interior of regions the superblock engine
// covers with traces. A hooked chunk must run on the exact hooked path
// with all superblock state flushed (counts, PC, registers identical
// to the Step reference), and re-detaching must drop straight back
// into trace dispatch with no residue; the observed event stream must
// match the reference under the identical toggle schedule.
func TestRunHookToggleAtTraceBoundaries(t *testing.T) {
	type event struct {
		from, to int64
		insts    uint64
	}
	rng := rand.New(rand.NewSource(11))
	for _, p := range prog.Examples() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if countTraces(predecode(p).traces) == 0 {
				t.Fatalf("%s built no traces; toggle test would not cross trace interiors", p.Name)
			}
			fast := New(p, 1<<12)
			ref := New(p, 1<<12)
			var evFast, evRef []event
			toggle := func(on bool) {
				if !on {
					fast.Branch, ref.Branch = nil, nil
					return
				}
				fast.Branch = func(from, to int64) { evFast = append(evFast, event{from, to, fast.Insts}) }
				ref.Branch = func(from, to int64) { evRef = append(evRef, event{from, to, ref.Insts}) }
			}
			for ci := 0; ci < 200 && !fast.Halted; ci++ {
				toggle(rng.Intn(2) == 0)
				budget := uint64(rng.Intn(211) + 1)
				nFast, errFast := fast.Run(budget)
				nRef, errRef := stepMachine(ref, budget)
				label := fmt.Sprintf("%s chunk %d (budget %d, hooked %v)", p.Name, ci, budget, fast.Branch != nil)
				compareOutcome(t, label, nFast, nRef, errFast, errRef)
				compareMachines(t, fast, ref, label)
				if t.Failed() || errFast != nil {
					return
				}
			}
			if len(evFast) != len(evRef) {
				t.Fatalf("hook fired %d times, reference %d", len(evFast), len(evRef))
			}
			for i := range evFast {
				if evFast[i] != evRef[i] {
					t.Fatalf("hook event %d: %+v != reference %+v", i, evFast[i], evRef[i])
				}
			}
		})
	}
}

// countTraces reports how many non-nil traces a predecoded trace table
// holds.
func countTraces(traces []*strace) int {
	n := 0
	for _, tr := range traces {
		if tr != nil {
			n++
		}
	}
	return n
}

// TestRunMatchesStepRandomPrograms feeds byte-derived adversarial
// programs (the fuzz generator) through both engines: invalid opcodes,
// mid-block halts, wild register names, out-of-range branch and jr
// targets.
func TestRunMatchesStepRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		data := make([]byte, 8*(rng.Intn(48)+2))
		rng.Read(data)
		p := fuzzProgram(data)
		if p == nil {
			continue
		}
		chunks := []uint64{uint64(rng.Intn(300) + 1), uint64(rng.Intn(300) + 1), 4096}
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			runBothChunked(t, p, 1<<8, chunks)
		})
	}
}

// TestRunEdgeCases pins the interesting control-flow corners directly.
func TestRunEdgeCases(t *testing.T) {
	mk := func(name string, code ...isa.Inst) *prog.Program {
		return &prog.Program{Name: name, Code: code}
	}
	cases := []*prog.Program{
		// Halt in the middle of a straight-line block.
		mk("midblock-halt",
			isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: isa.RZero, Imm: 3},
			isa.Inst{Op: isa.OpAddi, Rd: 2, Rs1: 2, Imm: 1},
			isa.Inst{Op: isa.OpHalt},
			isa.Inst{Op: isa.OpAddi, Rd: 2, Rs1: 2, Imm: 10},
			isa.Inst{Op: isa.OpHalt},
		),
		// jr into a block's tail, past the first halt.
		mk("jr-midblock",
			isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: isa.RZero, Imm: 4},
			isa.Inst{Op: isa.OpJr, Rs1: 1},
			isa.Inst{Op: isa.OpHalt},
			isa.Inst{Op: isa.OpAddi, Rd: 2, Rs1: 2, Imm: 7},
			isa.Inst{Op: isa.OpAddi, Rd: 2, Rs1: 2, Imm: 9},
			isa.Inst{Op: isa.OpHalt},
		),
		// jr to an out-of-range PC.
		mk("jr-wild",
			isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: isa.RZero, Imm: 1 << 20},
			isa.Inst{Op: isa.OpJr, Rs1: 1},
			isa.Inst{Op: isa.OpHalt},
		),
		// jr to a negative PC.
		mk("jr-negative",
			isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: isa.RZero, Imm: -5},
			isa.Inst{Op: isa.OpJr, Rs1: 1},
			isa.Inst{Op: isa.OpHalt},
		),
		// An invalid opcode mid-stream.
		mk("invalid-op",
			isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: isa.RZero, Imm: 2},
			isa.Inst{Op: isa.Op(200)},
			isa.Inst{Op: isa.OpHalt},
		),
		// Writes to R0 and cross-namespace register names are discarded
		// on both sides of the int/FP split.
		mk("weird-regs",
			isa.Inst{Op: isa.OpAddi, Rd: isa.RZero, Rs1: isa.RZero, Imm: 9},
			isa.Inst{Op: isa.OpAddi, Rd: isa.F(3), Rs1: isa.RZero, Imm: 8},
			isa.Inst{Op: isa.OpFadd, Rd: 7, Rs1: isa.F(1), Rs2: isa.F(2)},
			isa.Inst{Op: isa.OpAdd, Rd: 5, Rs1: isa.F(3), Rs2: isa.RZero},
			isa.Inst{Op: isa.OpJal, Rd: isa.F(9), Targ: 5},
			isa.Inst{Op: isa.OpHalt},
		),
		// Program ending without a halt: falls off the end.
		mk("falls-off-end",
			isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: 1, Imm: 1},
			isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: 1, Imm: 1},
		),
		// Conditional branch whose target is out of range: taking it
		// must error exactly like Step on the following Run call.
		mk("branch-wild-target",
			isa.Inst{Op: isa.OpBeq, Rs1: isa.RZero, Rs2: isa.RZero, Targ: 99},
			isa.Inst{Op: isa.OpHalt},
		),
	}
	for _, p := range cases {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			for _, chunks := range [][]uint64{
				{4096, 4096},
				{1, 1, 1, 1, 1, 1, 1, 1, 4096},
				{2, 4096},
			} {
				runBothChunked(t, p, 1<<8, chunks)
			}
		})
	}
}

// TestRunAfterPartialStep drives a Step-only prefix on both machines
// so the fast path has to resume from a PC in the middle of a basic
// block, then compares the completion runs.
func TestRunAfterPartialStep(t *testing.T) {
	for _, p := range prog.Examples() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			ref := New(p, 1<<12)
			fast := New(p, 1<<12)
			if _, err := stepMachine(ref, 137); err != nil {
				t.Fatalf("reference prefix: %v", err)
			}
			if _, err := stepMachine(fast, 137); err != nil {
				t.Fatalf("fast prefix: %v", err)
			}
			if ref.Halted {
				t.Skip("program shorter than prefix")
			}
			nFast, errFast := fast.Run(0)
			nRef, errRef := stepMachine(ref, 0)
			compareOutcome(t, p.Name, nFast, nRef, errFast, errRef)
			compareMachines(t, fast, ref, p.Name)
		})
	}
}

// TestRunAlreadyHalted checks Run on a halted machine is a no-op for
// both engines.
func TestRunAlreadyHalted(t *testing.T) {
	p := prog.Examples()[0]
	fast := New(p, 1<<12)
	ref := New(p, 1<<12)
	if _, err := fast.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, err := stepMachine(ref, 0); err != nil {
		t.Fatal(err)
	}
	nFast, errFast := fast.Run(100)
	nRef, errRef := stepMachine(ref, 100)
	compareOutcome(t, "halted", nFast, nRef, errFast, errRef)
	if nFast != 0 {
		t.Errorf("Run on halted machine executed %d instructions", nFast)
	}
	compareMachines(t, fast, ref, "halted")
}
