package emu

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mlpa/internal/isa"
)

// Checkpointing serializes a machine's architectural state (registers,
// PC, instruction count, data memory) so a sampled simulation can jump
// straight to a simulation point without re-executing the fast-forward
// prefix — the way production SimPoint flows store checkpoints per
// simulation point. Memory is run-length encoded over zero words,
// which dominates the address space of typical programs.

var ckptMagic = [8]byte{'M', 'L', 'P', 'A', 'C', 'K', 'P', '1'}

// SaveCheckpoint writes the machine's architectural state.
func (m *Machine) SaveCheckpoint(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(ckptMagic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	write := func(v uint64) error { return binary.Write(bw, le, v) }
	halted := uint64(0)
	if m.Halted {
		halted = 1
	}
	for _, v := range []uint64{uint64(m.PC), m.Insts, halted, uint64(len(m.mem))} {
		if err := write(v); err != nil {
			return err
		}
	}
	for _, r := range m.IntRegs {
		if err := write(uint64(r)); err != nil {
			return err
		}
	}
	for _, f := range m.FPRegs {
		if err := binary.Write(bw, le, f); err != nil {
			return err
		}
	}
	// Memory: (index, value) pairs for non-zero words, then a
	// terminator with index = len(mem).
	for i, v := range m.mem {
		if v == 0 {
			continue
		}
		if err := write(uint64(i)); err != nil {
			return err
		}
		if err := write(v); err != nil {
			return err
		}
	}
	if err := write(uint64(len(m.mem))); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadCheckpoint restores state saved by SaveCheckpoint into a machine
// created for the same program and memory size.
func (m *Machine) LoadCheckpoint(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("emu: checkpoint magic: %w", err)
	}
	if magic != ckptMagic {
		return fmt.Errorf("emu: bad checkpoint magic %q", magic)
	}
	le := binary.LittleEndian
	read := func() (uint64, error) {
		var v uint64
		err := binary.Read(br, le, &v)
		return v, err
	}
	var hdr [4]uint64
	for i := range hdr {
		v, err := read()
		if err != nil {
			return fmt.Errorf("emu: checkpoint header: %w", err)
		}
		hdr[i] = v
	}
	if hdr[3] != uint64(len(m.mem)) {
		return fmt.Errorf("emu: checkpoint memory size %d does not match machine %d", hdr[3], len(m.mem))
	}
	pc := int64(hdr[0])
	if pc < 0 || pc > int64(len(m.code)) {
		return fmt.Errorf("emu: checkpoint PC %d out of range", pc)
	}
	m.PC = pc
	m.Insts = hdr[1]
	m.Halted = hdr[2] != 0
	for i := range m.IntRegs {
		v, err := read()
		if err != nil {
			return fmt.Errorf("emu: checkpoint int regs: %w", err)
		}
		m.IntRegs[i] = int64(v)
	}
	for i := range m.FPRegs {
		if err := binary.Read(br, le, &m.FPRegs[i]); err != nil {
			return fmt.Errorf("emu: checkpoint fp regs: %w", err)
		}
	}
	clear(m.mem)
	for {
		idx, err := read()
		if err != nil {
			return fmt.Errorf("emu: checkpoint memory: %w", err)
		}
		if idx == uint64(len(m.mem)) {
			break
		}
		if idx > uint64(len(m.mem)) {
			return fmt.Errorf("emu: checkpoint memory index %d out of range", idx)
		}
		v, err := read()
		if err != nil {
			return fmt.Errorf("emu: checkpoint memory value: %w", err)
		}
		m.mem[idx] = v
		m.markDirty(int64(idx))
	}
	m.ResetBlockCounts()
	return nil
}

// compile-time assertion that register counts stay in sync with the
// serialized layout.
var _ = [1]struct{}{}[isa.NumIntRegs-32]
