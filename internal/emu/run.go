package emu

// The fast execution loops. Run dispatches to one of two monomorphic
// loops over the predecoded program: runFast for the common no-hook
// fast-forward (zero indirect calls, registers held in local arrays,
// per-block instead of per-instruction accounting) and runHooked for
// profiled runs with a Branch hook attached (same batching, but the
// architectural state is flushed around every hook invocation so the
// hook observes exactly what a Step-driven run would).
//
// Both loops are bit-identical to driving the machine with Step: same
// final registers, memory, PC, Insts, BlockCounts, halt state, same
// returned instruction count, and same errors on the same inputs.
// TestRunMatchesStepLoop and FuzzRunVsStep enforce the contract.

import (
	"fmt"

	"mlpa/internal/isa"
)

// runStep is the legacy per-instruction loop, retained as the
// reference semantics (and the fallback for machines constructed
// without New, which have no predecoded program).
func (m *Machine) runStep(maxInsts uint64) (uint64, error) {
	var done uint64
	for !m.Halted && (maxInsts == 0 || done < maxInsts) {
		if _, err := m.Step(); err != nil {
			return done, err
		}
		done++
	}
	return done, nil
}

// runFast is the no-hook loop. The register files live in local
// 64-entry arrays (slots 32/33 implement the zero and sink registers,
// see predecode.go) and are flushed back on every exit path; counters
// are accumulated locally and flushed once. When the PC sits on a
// superblock trace head (trace.go) and the full trace fits the
// remaining budget, the whole multi-block trace runs as one execSpan
// call; a failing guard side-exits with exact prefix accounting, and
// everything else — cold blocks, budget tails, invalid opcodes —
// stays on the block-batched path below.
func (m *Machine) runFast(maxInsts uint64) (uint64, error) {
	d := m.dec
	dc := d.code
	spans := d.span
	traces := d.traces
	if m.NoTraces {
		traces = nil
	}
	codeLen := int64(len(dc))
	blockOf := m.blockOf
	bc := m.BlockCounts
	mem, mask := m.mem, m.memMask
	dirty := m.dirty

	var R [64]int64
	copy(R[:32], m.IntRegs[:])
	var F [64]float64
	copy(F[:32], m.FPRegs[:])

	pc := m.PC
	var done, uncounted uint64
	var err error

loop:
	for maxInsts == 0 || done < maxInsts {
		if pc < 0 || pc >= codeLen {
			m.Halted = true
			err = fmt.Errorf("emu: program %q: PC %d out of range", m.Prog.Name, pc)
			break
		}
		if traces != nil {
			if tr := traces[pc]; tr != nil && (maxInsts == 0 || tr.total <= maxInsts-done) {
				if gi := execSpan(tr.code, 0, int64(len(tr.code)), &R, &F, mem, mask, dirty); gi >= 0 {
					// Side exit: the guard at flat index gi failed. Its
					// accounting snapshot covers exactly the segments
					// that committed (the guard's own branch included).
					g := tr.guards[tr.code[gi].fd]
					for _, s := range tr.segs[:g.seg+1] {
						bc[s.block] += uint64(s.n)
					}
					done += g.insts
					pc = tr.code[gi].imm
				} else {
					for _, a := range tr.acct {
						bc[a.block] += a.n
					}
					done += tr.total
					pc = tr.endPC
				}
				continue
			}
		}
		sp := int64(spans[pc])
		if sp == 0 {
			// Invalid opcode: reproduce Step's exact accounting — the
			// instruction is counted in Insts and BlockCounts, the PC
			// does not advance, and the caller's executed count
			// excludes it (Run never increments done on an error).
			bc[blockOf[pc]]++
			uncounted = 1
			err = fmt.Errorf("emu: program %q: unimplemented opcode %v at pc %d", m.Prog.Name, m.code[pc].Op, pc)
			break
		}
		if maxInsts != 0 {
			if rem := maxInsts - done; uint64(sp) > rem {
				// Budget expires mid-batch. Everything before a
				// batch's final instruction is plain straight-line
				// code, so the partial prefix needs no terminator
				// handling.
				execSpan(dc, pc, pc+int64(rem), &R, &F, mem, mask, dirty)
				bc[blockOf[pc]] += rem
				done += rem
				pc += int64(rem)
				break
			}
		}
		bc[blockOf[pc]] += uint64(sp)
		done += uint64(sp)
		last := pc + sp - 1
		t := &dc[last]
		switch isa.Op(t.op) {
		case isa.OpHalt:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			m.Halted = true
			m.haltedAt = last
			pc = last
			break loop
		case isa.OpBeq:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			if R[t.rs1&63] == R[t.rs2&63] {
				pc = t.imm
			} else {
				pc = last + 1
			}
		case isa.OpBne:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			if R[t.rs1&63] != R[t.rs2&63] {
				pc = t.imm
			} else {
				pc = last + 1
			}
		case isa.OpBlt:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			if R[t.rs1&63] < R[t.rs2&63] {
				pc = t.imm
			} else {
				pc = last + 1
			}
		case isa.OpBge:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			if R[t.rs1&63] >= R[t.rs2&63] {
				pc = t.imm
			} else {
				pc = last + 1
			}
		case isa.OpJmp:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			pc = t.imm
		case isa.OpJal:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			R[t.rd&63] = last + 1
			pc = t.imm
		case isa.OpJr:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			pc = R[t.rs1&63]
		default:
			// Fall-through batch: the final instruction is plain too.
			execSpan(dc, pc, last+1, &R, &F, mem, mask, dirty)
			pc = last + 1
		}
	}

	copy(m.IntRegs[:], R[:32])
	copy(m.FPRegs[:], F[:32])
	m.PC = pc
	m.Insts += done + uncounted
	return done, err
}

// runHooked is the Branch-hook loop. It batches exactly like runFast,
// but on every taken control transfer it flushes the architectural
// state (registers, PC of the transferring instruction, Insts) before
// invoking the hook and reloads afterwards, so hooks — which may read
// counters, snapshot or reset BlockCounts, or even mutate registers —
// observe precisely the state a Step-driven run would give them.
func (m *Machine) runHooked(maxInsts uint64) (uint64, error) {
	d := m.dec
	dc := d.code
	spans := d.span
	codeLen := int64(len(dc))
	blockOf := m.blockOf
	mem, mask := m.mem, m.memMask
	dirty := m.dirty
	hook := m.Branch

	var R [64]int64
	copy(R[:32], m.IntRegs[:])
	var F [64]float64
	copy(F[:32], m.FPRegs[:])

	pc := m.PC
	instsBase := m.Insts
	var done, uncounted uint64
	var err error

	// fire flushes state, invokes the hook for a taken transfer from
	// the instruction at `from` to `to`, and reloads.
	fire := func(from, to int64) {
		copy(m.IntRegs[:], R[:32])
		copy(m.FPRegs[:], F[:32])
		m.PC = from
		m.Insts = instsBase + done
		hook(from, to)
		copy(R[:32], m.IntRegs[:])
		copy(F[:32], m.FPRegs[:])
		instsBase = m.Insts - done
	}

loop:
	for maxInsts == 0 || done < maxInsts {
		if pc < 0 || pc >= codeLen {
			m.Halted = true
			err = fmt.Errorf("emu: program %q: PC %d out of range", m.Prog.Name, pc)
			break
		}
		sp := int64(spans[pc])
		if sp == 0 {
			m.BlockCounts[blockOf[pc]]++
			uncounted = 1
			err = fmt.Errorf("emu: program %q: unimplemented opcode %v at pc %d", m.Prog.Name, m.code[pc].Op, pc)
			break
		}
		if maxInsts != 0 {
			if rem := maxInsts - done; uint64(sp) > rem {
				execSpan(dc, pc, pc+int64(rem), &R, &F, mem, mask, dirty)
				m.BlockCounts[blockOf[pc]] += rem
				done += rem
				pc += int64(rem)
				break
			}
		}
		m.BlockCounts[blockOf[pc]] += uint64(sp)
		done += uint64(sp)
		last := pc + sp - 1
		t := &dc[last]
		switch isa.Op(t.op) {
		case isa.OpHalt:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			m.Halted = true
			m.haltedAt = last
			pc = last
			break loop
		case isa.OpBeq:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			if R[t.rs1&63] == R[t.rs2&63] {
				fire(last, t.imm)
				pc = t.imm
			} else {
				pc = last + 1
			}
		case isa.OpBne:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			if R[t.rs1&63] != R[t.rs2&63] {
				fire(last, t.imm)
				pc = t.imm
			} else {
				pc = last + 1
			}
		case isa.OpBlt:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			if R[t.rs1&63] < R[t.rs2&63] {
				fire(last, t.imm)
				pc = t.imm
			} else {
				pc = last + 1
			}
		case isa.OpBge:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			if R[t.rs1&63] >= R[t.rs2&63] {
				fire(last, t.imm)
				pc = t.imm
			} else {
				pc = last + 1
			}
		case isa.OpJmp:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			fire(last, t.imm)
			pc = t.imm
		case isa.OpJal:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			R[t.rd&63] = last + 1
			fire(last, t.imm)
			pc = t.imm
		case isa.OpJr:
			execSpan(dc, pc, last, &R, &F, mem, mask, dirty)
			// Like Step, the jump target is read before the hook runs
			// and is not re-read afterwards.
			next := R[t.rs1&63]
			fire(last, next)
			pc = next
		default:
			execSpan(dc, pc, last+1, &R, &F, mem, mask, dirty)
			pc = last + 1
		}
	}

	copy(m.IntRegs[:], R[:32])
	copy(m.FPRegs[:], F[:32])
	m.PC = pc
	m.Insts = instsBase + done + uncounted
	return done, err
}
