// Package config encodes the machine configurations of the paper's
// Table I: Part A, the base configuration matching Perelman et al. and
// the SPM work, and Part B, the sensitivity-analysis configuration
// with larger caches and longer memory latency.
package config

import (
	"fmt"

	"mlpa/internal/bpred"
	"mlpa/internal/cache"
	"mlpa/internal/cpu"
	"mlpa/internal/isa"
)

// BaseA returns Table I Part A:
//
//	8-way decode/issue/commit; ROB 128, LSQ 64;
//	8 int ALU, 4 load/store, 2 FP adders, 2 int MUL/DIV, 2 FP MUL/DIV;
//	IL1 8k 2-way 32B 1cy; DL1 16k 4-way 32B 2cy; UL2 1M 4-way 32B 20cy;
//	combined predictor, 8K BHT; memory 150/10.
func BaseA() cpu.Config {
	cfg := cpu.Config{
		Name:        "A",
		FetchWidth:  8,
		IssueWidth:  8,
		CommitWidth: 8,
		ROBSize:     128,
		LSQSize:     64,
		Predictor:   bpred.KindCombined,
		BHTEntries:  8192,
		Caches: cache.HierarchyConfig{
			IL1:      cache.Config{Name: "il1", TotalBytes: 8 << 10, Assoc: 2, BlockBytes: 32, Latency: 1},
			DL1:      cache.Config{Name: "dl1", TotalBytes: 16 << 10, Assoc: 4, BlockBytes: 32, Latency: 2},
			L2:       cache.Config{Name: "ul2", TotalBytes: 1 << 20, Assoc: 4, BlockBytes: 32, Latency: 20},
			MemFirst: 150,
			MemNext:  10,
		},
		SchedWindow:       32,
		MispredictPenalty: 3,
	}
	cfg.FUs[isa.ClassIntALU] = 8
	cfg.FUs[isa.ClassLoad] = 4
	cfg.FUs[isa.ClassFPAdd] = 2
	cfg.FUs[isa.ClassIntMul] = 2
	cfg.FUs[isa.ClassFPMul] = 2
	return cfg
}

// SensitivityB returns Table I Part B: same widths and buffers, but
// 6 int ALU, 2 load/store, 6 FP adders, 4 int MUL/DIV, 4 FP MUL/DIV;
// IL1 32k direct-mapped 1cy; DL1 128k 2-way 1cy; UL2 4M 8-way 30cy;
// bimodal predictor with 2K BHT; memory 200/15.
func SensitivityB() cpu.Config {
	cfg := cpu.Config{
		Name:        "B",
		FetchWidth:  8,
		IssueWidth:  8,
		CommitWidth: 8,
		ROBSize:     128,
		LSQSize:     64,
		Predictor:   bpred.KindBimodal,
		BHTEntries:  2048,
		Caches: cache.HierarchyConfig{
			IL1:      cache.Config{Name: "il1", TotalBytes: 32 << 10, Assoc: 1, BlockBytes: 32, Latency: 1},
			DL1:      cache.Config{Name: "dl1", TotalBytes: 128 << 10, Assoc: 2, BlockBytes: 32, Latency: 1},
			L2:       cache.Config{Name: "ul2", TotalBytes: 4 << 20, Assoc: 8, BlockBytes: 32, Latency: 30},
			MemFirst: 200,
			MemNext:  15,
		},
		SchedWindow:       32,
		MispredictPenalty: 3,
	}
	cfg.FUs[isa.ClassIntALU] = 6
	cfg.FUs[isa.ClassLoad] = 2
	cfg.FUs[isa.ClassFPAdd] = 6
	cfg.FUs[isa.ClassIntMul] = 4
	cfg.FUs[isa.ClassFPMul] = 4
	return cfg
}

// ByName returns a named configuration ("A" or "B").
func ByName(name string) (cpu.Config, error) {
	switch name {
	case "A", "a":
		return BaseA(), nil
	case "B", "b":
		return SensitivityB(), nil
	}
	return cpu.Config{}, fmt.Errorf("config: unknown configuration %q (want A or B)", name)
}

// All returns both Table I configurations in order.
func All() []cpu.Config {
	return []cpu.Config{BaseA(), SensitivityB()}
}
