package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// KV builds an Attr.
func KV(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Tracer assigns span identities and emits completed spans to a sink.
// Span nesting is explicit — a child is started from its parent — so
// tracing stays correct when sibling spans run on concurrent worker
// goroutines (no goroutine-local ambient state).
type Tracer struct {
	sink Sink
	ids  atomic.Uint64
	now  func() time.Time // overridable for deterministic tests
}

// NewTracer creates a tracer emitting to sink. A nil sink yields a
// tracer whose spans are all no-ops.
func NewTracer(sink Sink) *Tracer {
	return &Tracer{sink: sink, now: time.Now}
}

// StartSpan opens a root span. Nil-safe: on a nil tracer (or one with
// a nil sink) it returns a nil span, whose methods all no-op.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	if t == nil || t.sink == nil {
		return nil
	}
	return &Span{
		t:     t,
		id:    t.ids.Add(1),
		name:  name,
		attrs: attrs,
		start: t.now(),
	}
}

// Span is one timed region of a run. Completed spans are emitted as
// journal records of the form
//
//	{"ev":"span","name":...,"id":N,"parent":P,"dur_ns":D,"attrs":{...}}
//
// with parent 0 for root spans.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// StartSpan opens a child span. Nil-safe.
func (s *Span) StartSpan(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := s.t.StartSpan(name, attrs...)
	c.parent = s.id
	return c
}

// SetAttr attaches or overrides an annotation. Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span and emits its record. Subsequent Ends are
// ignored. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	rec := Record{
		"ev":     "span",
		"name":   s.name,
		"id":     s.id,
		"parent": s.parent,
		"dur_ns": s.t.now().Sub(s.start).Nanoseconds(),
	}
	if len(attrs) > 0 {
		m := make(map[string]any, len(attrs))
		for _, a := range attrs {
			m[a.Key] = a.Value
		}
		rec["attrs"] = m
	}
	s.t.sink.Emit(rec)
}
