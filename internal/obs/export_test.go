package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenSnapshot builds a registry with fixed contents, so its
// snapshot encodes identically on every run and platform.
func goldenSnapshot() Snapshot {
	reg := NewRegistry()
	reg.Counter("points_total").Add(42)
	reg.Counter("emu.insts").Add(1_000_000)
	reg.Gauge("kmeans.inertia").Set(12.5)
	h := reg.Histogram("plan/exec wall") // name needs sanitizing for Prometheus
	for _, v := range []float64{0.5, 1.0, 2.0, 4.0} {
		h.Observe(v)
	}
	return reg.Snapshot()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestJSONExporterGolden pins the JSON encoding byte-for-byte: sorted
// keys, two-space indent, quantile fields present.
func TestJSONExporterGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := (JSONExporter{Indent: true}).Export(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.json.golden", buf.Bytes())
}

// TestPromExporterGolden pins the Prometheus text exposition
// byte-for-byte: TYPE lines, sanitized names, summary quantiles.
func TestPromExporterGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := (PromExporter{}).Export(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.prom.golden", buf.Bytes())
}

// TestExportersDeterministic: two exports of the same snapshot are
// byte-identical — the property the golden files and the journal
// determinism contract rest on.
func TestExportersDeterministic(t *testing.T) {
	s := goldenSnapshot()
	for _, exp := range []Exporter{JSONExporter{}, JSONExporter{Indent: true}, PromExporter{}, PromExporter{Namespace: "x"}} {
		var a, b bytes.Buffer
		if err := exp.Export(&a, s); err != nil {
			t.Fatal(err)
		}
		if err := exp.Export(&b, s); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%T: two exports of one snapshot differ", exp)
		}
	}
}

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"points_total", "mlpa_points_total"},
		{"plan/exec wall", "mlpa_plan_exec_wall"},
		{"a.b-c", "mlpa_a_b_c"},
	} {
		if got := promName("mlpa", tc.in); got != tc.want {
			t.Errorf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestHistogramQuantiles checks the log2-bucket estimates against a
// known sample set: midpoints inside the data, exact at the extremes.
func TestHistogramQuantiles(t *testing.T) {
	h := new(Histogram)
	for _, v := range []float64{0.5, 1.0, 2.0, 4.0} {
		h.Observe(v)
	}
	st := h.Stat()
	if st.P50 < 1.0 || st.P50 > 2.0 {
		t.Errorf("P50 = %v, want within [1,2]", st.P50)
	}
	if st.P90 != 4.0 || st.P99 != 4.0 {
		t.Errorf("P90/P99 = %v/%v, want clamped to max 4.0", st.P90, st.P99)
	}
	if got := h.Quantile(0); got != 0.5 {
		t.Errorf("Quantile(0) = %v, want min 0.5", got)
	}
	if got := h.Quantile(1); got != 4.0 {
		t.Errorf("Quantile(1) = %v, want max 4.0", got)
	}
	// Single-sample histograms are exact at every quantile.
	one := new(Histogram)
	one.Observe(3.7)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 3.7 {
			t.Errorf("single sample Quantile(%v) = %v, want 3.7", q, got)
		}
	}
}

// TestDeltaSince covers the delta semantics: counters subtract,
// histogram count/sum subtract with the mean recomputed, gauges report
// only changes, and new metrics contribute their full value.
func TestDeltaSince(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	g := reg.Gauge("v")
	h := reg.Histogram("h")
	c.Add(10)
	g.Set(1.5)
	h.Observe(2)
	prev := reg.Snapshot()

	c.Add(5)
	h.Observe(4)
	h.Observe(6)
	reg.Counter("fresh").Add(3)
	cur := reg.Snapshot()

	d := cur.DeltaSince(prev)
	if d.Counters["n"] != 5 {
		t.Errorf("counter delta = %d, want 5", d.Counters["n"])
	}
	if d.Counters["fresh"] != 3 {
		t.Errorf("new counter delta = %d, want full value 3", d.Counters["fresh"])
	}
	if _, ok := d.Gauges["v"]; ok {
		t.Error("unchanged gauge appears in delta")
	}
	hd := d.Histograms["h"]
	if hd.Count != 2 || hd.Sum != 10 || hd.Mean != 5 {
		t.Errorf("hist delta = %+v, want count 2 sum 10 mean 5", hd)
	}

	g.Set(2.5)
	d2 := reg.Snapshot().DeltaSince(cur)
	if d2.Gauges["v"] != 2.5 {
		t.Errorf("changed gauge delta = %v, want 2.5", d2.Gauges["v"])
	}

	if !(Snapshot{}).Empty() {
		t.Error("zero snapshot not Empty")
	}
	if cur.Empty() {
		t.Error("populated snapshot reports Empty")
	}
}

// TestSnapshotDeltaConcurrent hammers a registry from writer
// goroutines while a reader takes snapshot/delta pairs, asserting
// every delta is non-negative and the final total is exact. Run under
// -race this is the satellite's concurrent-correctness check.
func TestSnapshotDeltaConcurrent(t *testing.T) {
	reg := NewRegistry()
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				reg.Counter("points").Inc()
				reg.Histogram("wall").Observe(1)
				reg.Gauge("frac").Set(float64(i))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var prev Snapshot
		for i := 0; i < 200; i++ {
			cur := reg.Snapshot()
			d := cur.DeltaSince(prev)
			if d.Counters["points"] < 0 {
				t.Errorf("negative counter delta %d", d.Counters["points"])
				return
			}
			if hd := d.Histograms["wall"]; hd.Count < 0 {
				t.Errorf("negative histogram count delta %d", hd.Count)
				return
			}
			prev = cur
		}
	}()
	wg.Wait()
	<-done
	if got := reg.Counter("points").Value(); got != writers*perWriter {
		t.Errorf("final count = %d, want %d", got, writers*perWriter)
	}
	if st := reg.Histogram("wall").Stat(); st.Count != writers*perWriter {
		t.Errorf("final hist count = %d, want %d", st.Count, writers*perWriter)
	}
}
