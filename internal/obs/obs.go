// Package obs is the run-level observability layer of the sampling
// simulation framework: a metrics registry (counters, gauges,
// histograms), span-based stage tracing, a JSONL event journal, and a
// run manifest. Every piece is nil-safe — instrumented code holds an
// optional *Runtime and calls it unconditionally; when observability
// is disabled the calls collapse to cheap no-ops — so the simulator
// hot paths carry no configuration branches of their own.
package obs

import (
	"fmt"
	"io"
	"sync"
)

// Runtime bundles the observability facilities of one run: a metrics
// registry, a tracer, the journal sink they share, and an optional
// progress logger. A nil *Runtime disables everything.
type Runtime struct {
	metrics  *Registry
	tracer   *Tracer
	sink     Sink
	progress *Progress

	logMu sync.Mutex
	logw  io.Writer
}

// New creates a runtime journaling to sink. A nil sink is allowed:
// metrics are still collected and Logf still works, but spans and
// journal records go nowhere.
func New(sink Sink) *Runtime {
	return &Runtime{
		metrics:  NewRegistry(),
		tracer:   NewTracer(sink),
		sink:     sink,
		progress: NewProgress(),
	}
}

// Metrics returns the run's registry, or nil on a nil runtime (a nil
// *Registry still hands out working detached instruments).
func (r *Runtime) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.metrics
}

// Progress returns the run's per-stage progress tracker, or nil on a
// nil runtime (a nil *Progress still hands out detached stages).
func (r *Runtime) Progress() *Progress {
	if r == nil {
		return nil
	}
	return r.progress
}

// StartSpan opens a root span on the run's tracer. Nil-safe.
func (r *Runtime) StartSpan(name string, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	return r.tracer.StartSpan(name, attrs...)
}

// Emit appends one journal record of type ev with the given fields.
// The "ev" key is set by this method. Nil-safe.
func (r *Runtime) Emit(ev string, fields map[string]any) {
	if r == nil || r.sink == nil {
		return
	}
	rec := make(Record, len(fields)+1)
	for k, v := range fields {
		rec[k] = v
	}
	rec["ev"] = ev
	r.sink.Emit(rec)
}

// EmitMetrics appends the current metrics snapshot to the journal as
// a {"ev":"metrics"} record. Nil-safe.
func (r *Runtime) EmitMetrics() {
	if r == nil || r.sink == nil {
		return
	}
	s := r.metrics.Snapshot()
	rec := Record{"ev": "metrics"}
	if len(s.Counters) > 0 {
		rec["counters"] = s.Counters
	}
	if len(s.Gauges) > 0 {
		rec["gauges"] = s.Gauges
	}
	if len(s.Histograms) > 0 {
		rec["histograms"] = s.Histograms
	}
	r.sink.Emit(rec)
}

// SetLogger directs Logf progress output to w (typically stderr under
// a -v flag). Nil-safe.
func (r *Runtime) SetLogger(w io.Writer) {
	if r == nil {
		return
	}
	r.logMu.Lock()
	r.logw = w
	r.logMu.Unlock()
}

// Logf writes one progress line when a logger is configured. Nil-safe
// and safe for concurrent use.
func (r *Runtime) Logf(format string, args ...any) {
	if r == nil {
		return
	}
	r.logMu.Lock()
	defer r.logMu.Unlock()
	if r.logw == nil {
		return
	}
	fmt.Fprintf(r.logw, format+"\n", args...)
}
