package obs

import (
	"sync"
	"time"
)

// SamplerOptions tunes a Sampler.
type SamplerOptions struct {
	// Interval between samples; zero or negative defaults to 5s.
	Interval time.Duration
	// Delta, when true, emits per-interval deltas (counters and
	// histogram count/sum since the previous sample) instead of
	// cumulative snapshots.
	Delta bool
}

// Sampler periodically snapshots a registry and streams the result to
// a sink as {"ev":"metrics_sample"} records, so a long run's metrics
// are observable while it is in flight rather than only at exit. The
// sampler reads the registry through the same atomic snapshot path as
// /metrics; it never perturbs instrumented code, only observes it.
type Sampler struct {
	reg      *Registry
	sink     Sink
	interval time.Duration
	delta    bool

	stop chan struct{}
	done chan struct{}

	mu   sync.Mutex
	seq  int64
	prev Snapshot
	last Snapshot
}

// StartSampler begins sampling reg into sink every opt.Interval. It
// returns nil (a valid no-op sampler) when reg or sink is nil, so
// callers can wire it unconditionally.
func StartSampler(reg *Registry, sink Sink, opt SamplerOptions) *Sampler {
	if reg == nil || sink == nil {
		return nil
	}
	if opt.Interval <= 0 {
		opt.Interval = 5 * time.Second
	}
	s := &Sampler{
		reg:      reg,
		sink:     sink,
		interval: opt.Interval,
		delta:    opt.Delta,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *Sampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			// Final sample so the stream always ends current.
			s.Sample()
			return
		case <-t.C:
			s.Sample()
		}
	}
}

// Sample takes one snapshot immediately and emits it. Nil-safe; safe
// to call concurrently with the periodic loop.
func (s *Sampler) Sample() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.reg.Snapshot()
	s.last = snap
	out := snap
	if s.delta {
		out = snap.DeltaSince(s.prev)
		s.prev = snap
	}
	if out.Empty() {
		return
	}
	s.seq++
	rec := Record{"ev": "metrics_sample", "seq": s.seq}
	if s.delta {
		rec["delta"] = true
	}
	if len(out.Counters) > 0 {
		rec["counters"] = out.Counters
	}
	if len(out.Gauges) > 0 {
		rec["gauges"] = out.Gauges
	}
	if len(out.Histograms) > 0 {
		rec["histograms"] = out.Histograms
	}
	s.sink.Emit(rec)
}

// Last returns the most recent snapshot taken (cumulative, even in
// delta mode). Nil-safe.
func (s *Sampler) Last() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Stop halts the periodic loop, emits one final sample, and waits for
// the loop goroutine to exit. Nil-safe and idempotent-unsafe: call
// once.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}
