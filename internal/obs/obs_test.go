package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	tests := []struct {
		name string
		do   func()
		want func() bool
	}{
		{
			name: "counter accumulates",
			do:   func() { r.Counter("c").Add(3); r.Counter("c").Inc() },
			want: func() bool { return r.Counter("c").Value() == 4 },
		},
		{
			name: "gauge last value wins",
			do:   func() { r.Gauge("g").Set(1.5); r.Gauge("g").Set(-2.25) },
			want: func() bool { return r.Gauge("g").Value() == -2.25 },
		},
		{
			name: "histogram summary",
			do: func() {
				h := r.Histogram("h")
				for _, v := range []float64{2, -1, 5} {
					h.Observe(v)
				}
			},
			want: func() bool {
				s := r.Histogram("h").Stat()
				return s.Count == 3 && s.Sum == 6 && s.Min == -1 && s.Max == 5 && s.Mean == 2
			},
		},
		{
			name: "same name returns same instrument",
			do:   func() { r.Counter("shared").Inc(); r.Counter("shared").Inc() },
			want: func() bool { return r.Counter("shared").Value() == 2 },
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tc.do()
			if !tc.want() {
				t.Errorf("%s: unexpected state", tc.name)
			}
		})
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Add(2)
	reg.Gauge("y").Set(1)
	reg.Histogram("z").Observe(3)
	if s := reg.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}

	var rt *Runtime
	rt.Logf("ignored %d", 1)
	rt.Emit("point", map[string]any{"a": 1})
	rt.EmitMetrics()
	rt.EmitManifest(Manifest{Tool: "test"})
	sp := rt.StartSpan("root")
	sp.SetAttr("k", "v")
	child := sp.StartSpan("child")
	child.End()
	sp.End()
	if rt.Metrics() != nil {
		t.Error("nil runtime returned non-nil registry")
	}

	var tr *Tracer
	tr.StartSpan("x").End()
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insertion order differs between the two builds; the JSON
		// encoding must not.
		names := []string{"z.last", "a.first", "m.mid"}
		for i, n := range names {
			r.Counter(n).Add(int64(i + 1))
			r.Gauge(n).Set(float64(i) * 1.5)
			r.Histogram(n).Observe(float64(i))
		}
		return r
	}
	build2 := func() *Registry {
		r := NewRegistry()
		names := []string{"m.mid", "z.last", "a.first"}
		vals := map[string]int64{"z.last": 1, "a.first": 2, "m.mid": 3}
		gvals := map[string]float64{"z.last": 0, "a.first": 1.5, "m.mid": 3}
		hvals := map[string]float64{"z.last": 0, "a.first": 1, "m.mid": 2}
		for _, n := range names {
			r.Counter(n).Add(vals[n])
			r.Gauge(n).Set(gvals[n])
			r.Histogram(n).Observe(hvals[n])
		}
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build2().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("snapshot JSON depends on insertion order:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h").Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Stat().Count; got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestSpanNestingAndJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(sink)
	// Fixed clock: every span lasts exactly 5ms.
	now := time.Unix(100, 0)
	tr.now = func() time.Time {
		now = now.Add(5 * time.Millisecond)
		return now
	}

	root := tr.StartSpan("select", KV("benchmark", "gzip"))
	child := root.StartSpan("cluster")
	child.SetAttr("k", 3)
	grand := child.StartSpan("lloyd")
	grand.End()
	child.End()
	root.SetAttr("points", 4)
	root.End()
	root.End() // double End must not re-emit

	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (double End re-emitted?)", len(recs))
	}
	// Emission order is End order: lloyd, cluster, select.
	names := []string{"lloyd", "cluster", "select"}
	for i, rec := range recs {
		if rec["ev"] != "span" {
			t.Errorf("record %d ev = %v, want span", i, rec["ev"])
		}
		if rec["name"] != names[i] {
			t.Errorf("record %d name = %v, want %s", i, rec["name"], names[i])
		}
		if rec["dur_ns"].(float64) <= 0 {
			t.Errorf("record %d has non-positive duration", i)
		}
	}
	byName := map[string]Record{}
	for _, rec := range recs {
		byName[rec["name"].(string)] = rec
	}
	if byName["cluster"]["parent"] != byName["select"]["id"] {
		t.Errorf("cluster parent %v != select id %v", byName["cluster"]["parent"], byName["select"]["id"])
	}
	if byName["lloyd"]["parent"] != byName["cluster"]["id"] {
		t.Errorf("lloyd parent %v != cluster id %v", byName["lloyd"]["parent"], byName["cluster"]["id"])
	}
	if byName["select"]["parent"].(float64) != 0 {
		t.Errorf("root parent = %v, want 0", byName["select"]["parent"])
	}
	attrs := byName["select"]["attrs"].(map[string]any)
	if attrs["benchmark"] != "gzip" || attrs["points"].(float64) != 4 {
		t.Errorf("root attrs = %v", attrs)
	}
	if byName["cluster"]["attrs"].(map[string]any)["k"].(float64) != 3 {
		t.Errorf("cluster attrs = %v", byName["cluster"]["attrs"])
	}
}

func TestRuntimeEmitAndManifest(t *testing.T) {
	var sink MemorySink
	rt := New(&sink)
	rt.EmitManifest(Manifest{
		Tool:      "mlpa",
		Command:   "table2",
		Benchmark: "gzip",
		Seed:      7,
		Configs:   []string{"A"},
	})
	rt.Emit("point", map[string]any{"index": 0, "cpi": 1.25})
	rt.Metrics().Counter("pipeline.points").Inc()
	rt.EmitMetrics()

	recs := sink.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0]["ev"] != "manifest" || recs[0]["schema"] != ManifestSchema {
		t.Errorf("manifest record = %v", recs[0])
	}
	if recs[1]["ev"] != "point" || recs[1]["cpi"] != 1.25 {
		t.Errorf("point record = %v", recs[1])
	}
	counters, ok := recs[2]["counters"].(map[string]int64)
	if !ok || counters["pipeline.points"] != 1 {
		t.Errorf("metrics record = %v", recs[2])
	}
}

func TestJSONLRoundTripPreservesFloats(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	want := 0.1 + 0.2 // not exactly representable as a decimal literal
	sink.Emit(Record{"ev": "point", "cpi": want})
	recs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := recs[0]["cpi"].(float64); got != want {
		t.Errorf("float round-trip changed value: %v != %v", got, want)
	}
}

func TestReadJournalErrors(t *testing.T) {
	_, err := ReadJournal(strings.NewReader("{\"ev\":\"a\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("malformed line error = %v", err)
	}
	recs, err := ReadJournal(strings.NewReader("\n{\"ev\":\"a\"}\n\n"))
	if err != nil || len(recs) != 1 {
		t.Errorf("blank-line handling: recs=%v err=%v", recs, err)
	}
}

func TestConfigHashStable(t *testing.T) {
	type cfg struct {
		A int
		B string
	}
	h1 := ConfigHash(cfg{1, "x"})
	h2 := ConfigHash(cfg{1, "x"})
	h3 := ConfigHash(cfg{2, "x"})
	if h1 != h2 {
		t.Errorf("identical configs hash differently: %s vs %s", h1, h2)
	}
	if h1 == h3 {
		t.Errorf("different configs collide: %s", h1)
	}
	if len(h1) != 16 {
		t.Errorf("hash length = %d, want 16", len(h1))
	}
}

func TestHistogramTimer(t *testing.T) {
	var h Histogram
	done := h.Time()
	time.Sleep(time.Millisecond)
	done()
	s := h.Stat()
	if s.Count != 1 || s.Sum <= 0 {
		t.Errorf("timer stat = %+v", s)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["a"] != 2 {
		t.Errorf("snapshot decode = %+v", s)
	}
}
