package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Record is one journal entry: a flat JSON object whose "ev" field
// names the record type ("manifest", "span", "point", "estimate",
// "metrics", ...). Using a map keeps the journal schema open — every
// producer can attach whatever fields its stage knows — while
// encoding/json's sorted map keys keep the byte stream deterministic
// for identical inputs.
type Record = map[string]any

// Sink consumes journal records. Implementations must be safe for
// concurrent use: spans and per-point records are emitted from the
// experiment harness's worker goroutines.
type Sink interface {
	Emit(rec Record)
}

// JSONLSink writes one JSON object per line. It serializes concurrent
// emitters and retains the first write error (Err).
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps w in a line-oriented JSON sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit appends one record as a JSON line.
func (s *JSONLSink) Emit(rec Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(rec)
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// MemorySink collects records in order; it backs tests and inspection
// of freshly produced journals.
type MemorySink struct {
	mu   sync.Mutex
	recs []Record
}

// Emit appends one record.
func (s *MemorySink) Emit(rec Record) {
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
}

// Records returns a copy of the collected records.
func (s *MemorySink) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.recs...)
}

// ReadJournal parses a JSONL journal. Blank lines are skipped; a
// malformed line aborts with its line number.
func ReadJournal(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("obs: journal line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading journal: %w", err)
	}
	return out, nil
}
