package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// ManifestSchema is the journal schema version written by this
// package. Bump it whenever the meaning or shape of journal records
// changes incompatibly.
const ManifestSchema = 1

// Manifest identifies one run: what was executed, under which knobs,
// by which tool. It is written as the journal's first record so a
// journal file is self-describing.
type Manifest struct {
	Schema     int      `json:"schema"`
	Tool       string   `json:"tool"`
	Command    string   `json:"command,omitempty"`
	Benchmark  string   `json:"benchmark,omitempty"`
	Method     string   `json:"method,omitempty"`
	Size       string   `json:"size,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
	Configs    []string `json:"configs,omitempty"`
	ConfigHash string   `json:"config_hash,omitempty"`
	Args       []string `json:"args,omitempty"`
}

// EmitManifest journals m with its schema field forced to the current
// version. Nil-safe.
func (r *Runtime) EmitManifest(m Manifest) {
	if r == nil || r.sink == nil {
		return
	}
	m.Schema = ManifestSchema
	rec := Record{
		"ev":     "manifest",
		"schema": m.Schema,
		"tool":   m.Tool,
	}
	if m.Command != "" {
		rec["command"] = m.Command
	}
	if m.Benchmark != "" {
		rec["benchmark"] = m.Benchmark
	}
	if m.Method != "" {
		rec["method"] = m.Method
	}
	if m.Size != "" {
		rec["size"] = m.Size
	}
	if m.Seed != 0 {
		rec["seed"] = m.Seed
	}
	if len(m.Configs) > 0 {
		rec["configs"] = m.Configs
	}
	if m.ConfigHash != "" {
		rec["config_hash"] = m.ConfigHash
	}
	if len(m.Args) > 0 {
		rec["args"] = m.Args
	}
	r.sink.Emit(rec)
}

// ConfigHash returns a short stable fingerprint of any
// JSON-serializable configuration value: FNV-64a over its canonical
// JSON encoding (encoding/json sorts map keys, and struct fields keep
// declaration order, so identical configs hash identically across
// runs).
func ConfigHash(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return "unhashable"
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}
