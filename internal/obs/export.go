package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Exporter encodes one metrics snapshot onto a writer. Exporters are
// stateless and safe for concurrent use; both implementations emit
// deterministically ordered output (sorted metric names), so identical
// snapshots encode to identical bytes.
type Exporter interface {
	// Export writes the encoded snapshot.
	Export(w io.Writer, s Snapshot) error
	// ContentType is the MIME type of the encoding, for HTTP export.
	ContentType() string
}

// JSONExporter encodes snapshots as JSON (the -metrics file format).
type JSONExporter struct {
	// Indent, when true, pretty-prints with two-space indentation.
	Indent bool
}

// Export implements Exporter.
func (e JSONExporter) Export(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	if e.Indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(s)
}

// ContentType implements Exporter.
func (e JSONExporter) ContentType() string { return "application/json" }

// PromExporter encodes snapshots in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as summaries with p50/p90/p99 quantile samples plus _sum
// and _count. Metric names are prefixed with Namespace and sanitized
// (every character outside [a-zA-Z0-9_] becomes '_').
type PromExporter struct {
	// Namespace prefixes every metric name; empty means "mlpa".
	Namespace string
}

// ContentType implements Exporter.
func (e PromExporter) ContentType() string { return "text/plain; version=0.0.4" }

// Export implements Exporter.
func (e PromExporter) Export(w io.Writer, s Snapshot) error {
	ns := e.Namespace
	if ns == "" {
		ns = "mlpa"
	}
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(ns, name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(ns, name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(ns, name)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
			return err
		}
		for _, q := range [...]struct {
			label string
			value float64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n", pn, q.label, promFloat(q.value)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName prefixes and sanitizes a registry metric name.
func promName(ns, name string) string {
	var b strings.Builder
	b.Grow(len(ns) + 1 + len(name))
	b.WriteString(ns)
	b.WriteByte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects (shortest
// round-trippable representation).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
