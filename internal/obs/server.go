package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Mount registers the live-export telemetry routes on mux:
//
//	/metrics        metrics snapshot — Prometheus text by default,
//	                ?format=json for the JSON encoding, ?delta=1 for
//	                the change since this handler's previous ?delta
//	                scrape (counters and histogram count/sum)
//	/progress       per-stage completion as a JSON array of
//	                {name,total,done,frac}, first-registration order
//	/debug/pprof/*  the standard Go profiling endpoints
//
// The handlers only read atomic snapshots of the registry and progress
// tracker; serving them concurrently with a run never perturbs
// results. Nil-safe: on a nil runtime every endpoint serves empty
// data. Mount is how other sanctioned servers (internal/serve) export
// the same telemetry surface on their own mux; Handler wraps it with a
// plain-text index for the standalone diagnostics listener.
func Mount(mux *http.ServeMux, rt *Runtime) {
	var deltaMu sync.Mutex
	var deltaPrev Snapshot
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := rt.Metrics().Snapshot()
		if r.URL.Query().Get("delta") != "" {
			deltaMu.Lock()
			snap, deltaPrev = snap.DeltaSince(deltaPrev), snap
			deltaMu.Unlock()
		}
		var exp Exporter = PromExporter{}
		if r.URL.Query().Get("format") == "json" {
			exp = JSONExporter{Indent: true}
		}
		w.Header().Set("Content-Type", exp.ContentType())
		if err := exp.Export(w, snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		stages := rt.Progress().Snapshot()
		if stages == nil {
			stages = []StageStatus{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stages); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns the live-export mux for a run: the Mount routes plus
// a plain-text index at /.
func Handler(rt *Runtime) http.Handler {
	mux := http.NewServeMux()
	Mount(mux, rt)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "mlpa live export\n\n/metrics\n/metrics?format=json\n/metrics?delta=1\n/progress\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running live-export listener started by Serve.
type Server struct {
	ln   net.Listener
	done chan struct{}
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener and waits for the serve loop to exit.
// In-flight requests are not drained; this is a diagnostics endpoint,
// not a production API.
func (s *Server) Close() error {
	err := s.ln.Close()
	<-s.done
	return err
}

// Serve binds addr and serves Handler(rt) until Close. It is the
// repository's single sanctioned HTTP listener setup: everything that
// wants a diagnostics endpoint goes through it, so the surface stays
// uniform and the mlpalint http-listen rule can forbid ad-hoc
// listeners everywhere else.
func Serve(addr string, rt *Runtime) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: serve %s: %w", addr, err)
	}
	s := &Server{ln: ln, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		// Serve returns with an error once the listener closes; that is
		// the normal shutdown path, so the error is discarded.
		_ = http.Serve(ln, Handler(rt))
	}()
	return s, nil
}
