package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrency-safe collection of named metrics. A nil
// *Registry is valid: metric lookups return detached instruments that
// accept updates but register nowhere, so instrumented code never has
// to branch on whether observability is enabled.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. On a nil registry it returns a detached counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. On a nil registry it returns a detached gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// on first use. On a nil registry it returns a detached histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return new(Histogram)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins floating-point metric.
type Gauge struct{ bits atomic.Uint64 }

// Set records the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last recorded value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bucket layout: hbuckets log2-spaced buckets, bucket i
// covering [2^(i-hoffset), 2^(i-hoffset+1)). Samples at or below
// 2^-hoffset (including zero and negatives) land in bucket 0, samples
// beyond the top bound in the last bucket. The span 2^-32..2^32 covers
// everything the pipeline observes — nanosecond timers through
// iteration counts — with ~half-bucket (~41%) worst-case quantile
// error, tightened by clamping to the exact observed min/max.
const (
	hbuckets = 64
	hoffset  = 32
)

// Histogram accumulates summary statistics of observed samples: count,
// sum, min, max, mean and log-bucketed quantiles. It doubles as a
// timer via Observe of elapsed seconds (see Time).
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [hbuckets]int64
}

// bucketIndex maps a sample to its log2 bucket.
func bucketIndex(v float64) int {
	if v <= 0 {
		return 0
	}
	i := int(math.Floor(math.Log2(v))) + hoffset
	if i < 0 {
		return 0
	}
	if i >= hbuckets {
		return hbuckets - 1
	}
	return i
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketIndex(v)]++
	h.mu.Unlock()
}

// Time starts a timer; the returned function observes the elapsed
// wall-clock seconds when called (defer h.Time()()).
func (h *Histogram) Time() func() {
	t0 := time.Now()
	return func() { h.Observe(time.Since(t0).Seconds()) }
}

// Stat returns the histogram's current summary.
func (h *Histogram) Stat() HistStat {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistStat{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
		s.P50 = h.quantileLocked(0.50)
		s.P90 = h.quantileLocked(0.90)
		s.P99 = h.quantileLocked(0.99)
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the log2
// buckets, clamped to the exact observed [min, max].
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < hbuckets; i++ {
		cum += h.buckets[i]
		if cum >= rank {
			// Geometric midpoint of the bucket, clamped to observed
			// extremes so degenerate histograms stay exact.
			v := math.Exp2(float64(i-hoffset) + 0.5)
			if i == 0 {
				v = h.min
			}
			return math.Min(math.Max(v, h.min), h.max)
		}
	}
	return h.max
}

// HistStat is a point-in-time histogram summary. P50/P90/P99 are
// log2-bucket quantile estimates (see Histogram.Quantile).
type HistStat struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of every registered metric. Its
// JSON encoding is deterministic: encoding/json emits map keys in
// sorted order.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]float64  `json:"gauges,omitempty"`
	Histograms map[string]HistStat `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistStat, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Stat()
		}
	}
	return s
}

// WriteJSON writes the current snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// DeltaSince returns the change from prev to s: counters are
// subtracted (a counter absent from prev contributes its full value),
// histogram count/sum are subtracted with the remaining summary fields
// carried over cumulatively, and gauges — last-value-wins by nature —
// report only entries whose value changed. Entries that did not change
// are omitted entirely, so a quiet interval yields an Empty delta.
// Two snapshots of the same registry taken in order always yield
// non-negative counter deltas.
func (s Snapshot) DeltaSince(prev Snapshot) Snapshot {
	var d Snapshot
	for name, v := range s.Counters {
		dv := v - prev.Counters[name]
		if dv == 0 {
			continue
		}
		if d.Counters == nil {
			d.Counters = make(map[string]int64, len(s.Counters))
		}
		d.Counters[name] = dv
	}
	for name, v := range s.Gauges {
		pv, ok := prev.Gauges[name]
		if ok && pv == v {
			continue
		}
		if d.Gauges == nil {
			d.Gauges = make(map[string]float64, len(s.Gauges))
		}
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		h.Count -= p.Count
		h.Sum -= p.Sum
		if h.Count == 0 && h.Sum == 0 {
			continue
		}
		if h.Count > 0 {
			h.Mean = h.Sum / float64(h.Count)
		} else {
			h.Mean = 0
		}
		if d.Histograms == nil {
			d.Histograms = make(map[string]HistStat, len(s.Histograms))
		}
		d.Histograms[name] = h
	}
	return d
}

// Empty reports whether the snapshot carries no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}
