package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrency-safe collection of named metrics. A nil
// *Registry is valid: metric lookups return detached instruments that
// accept updates but register nowhere, so instrumented code never has
// to branch on whether observability is enabled.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. On a nil registry it returns a detached counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. On a nil registry it returns a detached gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// on first use. On a nil registry it returns a detached histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return new(Histogram)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins floating-point metric.
type Gauge struct{ bits atomic.Uint64 }

// Set records the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last recorded value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates summary statistics of observed samples:
// count, sum, min, max and mean. It doubles as a timer via Observe of
// elapsed seconds (see Time).
type Histogram struct {
	mu    sync.Mutex
	count int64
	sum   float64
	min   float64
	max   float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Time starts a timer; the returned function observes the elapsed
// wall-clock seconds when called (defer h.Time()()).
func (h *Histogram) Time() func() {
	t0 := time.Now()
	return func() { h.Observe(time.Since(t0).Seconds()) }
}

// Stat returns the histogram's current summary.
func (h *Histogram) Stat() HistStat {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistStat{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	return s
}

// HistStat is a point-in-time histogram summary.
type HistStat struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// Snapshot is a point-in-time copy of every registered metric. Its
// JSON encoding is deterministic: encoding/json emits map keys in
// sorted order.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]float64  `json:"gauges,omitempty"`
	Histograms map[string]HistStat `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistStat, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Stat()
		}
	}
	return s
}

// WriteJSON writes the current snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
