package obs

import (
	"sync"
	"sync/atomic"
)

// Progress tracks per-stage completion of a run: each named Stage
// carries a total work count and a done count that concurrent workers
// advance. Like the rest of the package it is nil-safe — a nil
// *Progress hands out detached stages that accept updates and register
// nowhere — so producers (the parallel worker pool, the pipeline)
// never branch on whether live export is enabled.
type Progress struct {
	mu     sync.Mutex
	order  []string
	stages map[string]*Stage
}

// NewProgress creates an empty progress tracker.
func NewProgress() *Progress {
	return &Progress{stages: make(map[string]*Stage)}
}

// Stage returns the stage registered under name, creating it on first
// use. On a nil tracker it returns a detached stage.
func (p *Progress) Stage(name string) *Stage {
	if p == nil {
		return new(Stage)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.stages[name]
	if !ok {
		s = &Stage{name: name}
		p.stages[name] = s
		p.order = append(p.order, name)
	}
	return s
}

// Stage is one unit of tracked work: a monotonically growing total
// (work discovered) and a done count (work finished). Both are safe
// for concurrent update.
type Stage struct {
	name  string
	total atomic.Int64
	done  atomic.Int64
}

// AddTotal grows the stage's expected work count by n. Nil-safe.
func (s *Stage) AddTotal(n int64) {
	if s == nil {
		return
	}
	s.total.Add(n)
}

// Add records n completed work items. Nil-safe.
func (s *Stage) Add(n int64) {
	if s == nil {
		return
	}
	s.done.Add(n)
}

// StageStatus is a point-in-time copy of one stage.
type StageStatus struct {
	Name  string  `json:"name"`
	Total int64   `json:"total"`
	Done  int64   `json:"done"`
	Frac  float64 `json:"frac"`
}

// Snapshot copies every stage in first-registration order. A nil
// tracker yields nil.
func (p *Progress) Snapshot() []StageStatus {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]StageStatus, 0, len(p.order))
	for _, name := range p.order {
		s := p.stages[name]
		st := StageStatus{Name: name, Total: s.total.Load(), Done: s.done.Load()}
		if st.Total > 0 {
			st.Frac = float64(st.Done) / float64(st.Total)
		}
		out = append(out, st)
	}
	return out
}
