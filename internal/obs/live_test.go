package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// recordingSink captures emitted records for assertions.
type recordingSink struct {
	mu   sync.Mutex
	recs []Record
}

func (s *recordingSink) Emit(rec Record) {
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
}

func (s *recordingSink) all() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.recs...)
}

func TestProgressStages(t *testing.T) {
	p := NewProgress()
	a := p.Stage("select")
	a.AddTotal(10)
	a.Add(3)
	b := p.Stage("points")
	b.AddTotal(4)
	b.Add(4)
	if same := p.Stage("select"); same != a {
		t.Error("Stage did not return the registered stage")
	}

	snap := p.Snapshot()
	if len(snap) != 2 || snap[0].Name != "select" || snap[1].Name != "points" {
		t.Fatalf("snapshot order = %+v, want select then points", snap)
	}
	if snap[0].Done != 3 || snap[0].Total != 10 || snap[0].Frac != 0.3 {
		t.Errorf("select = %+v, want 3/10 frac 0.3", snap[0])
	}
	if snap[1].Frac != 1.0 {
		t.Errorf("points frac = %v, want 1.0", snap[1].Frac)
	}

	// Nil-safety: detached stages accept updates, snapshots are nil.
	var np *Progress
	np.Stage("x").AddTotal(1)
	np.Stage("x").Add(1)
	if np.Snapshot() != nil {
		t.Error("nil Progress snapshot not nil")
	}
	var nr *Runtime
	nr.Progress().Stage("y").Add(1)
}

func TestProgressConcurrent(t *testing.T) {
	p := NewProgress()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := p.Stage("work")
			st.AddTotal(100)
			for i := 0; i < 100; i++ {
				st.Add(1)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			for _, st := range p.Snapshot() {
				if st.Done > st.Total {
					t.Errorf("done %d overtook total %d", st.Done, st.Total)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	snap := p.Snapshot()
	if len(snap) != 1 || snap[0].Done != 800 || snap[0].Total != 800 {
		t.Errorf("final = %+v, want 800/800", snap)
	}
}

// TestSamplerCumulative drives Sample directly (no timer dependence)
// and checks sequence numbers and cumulative values.
func TestSamplerCumulative(t *testing.T) {
	reg := NewRegistry()
	sink := &recordingSink{}
	s := StartSampler(reg, sink, SamplerOptions{Interval: time.Hour})

	s.Sample() // empty registry: suppressed
	reg.Counter("n").Add(2)
	s.Sample()
	reg.Counter("n").Add(3)
	s.Stop() // emits the final sample

	recs := sink.all()
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2 (empty sample suppressed)", len(recs))
	}
	for i, rec := range recs {
		if rec["ev"] != "metrics_sample" {
			t.Errorf("rec %d ev = %v", i, rec["ev"])
		}
		if rec["seq"] != int64(i+1) {
			t.Errorf("rec %d seq = %v, want %d", i, rec["seq"], i+1)
		}
	}
	c0 := recs[0]["counters"].(map[string]int64)
	c1 := recs[1]["counters"].(map[string]int64)
	if c0["n"] != 2 || c1["n"] != 5 {
		t.Errorf("cumulative counters = %d, %d, want 2, 5", c0["n"], c1["n"])
	}
	if got := s.Last().Counters["n"]; got != 5 {
		t.Errorf("Last = %d, want 5", got)
	}
}

// TestSamplerDelta: in delta mode each record carries only the change
// since the previous sample, and quiet intervals are suppressed.
func TestSamplerDelta(t *testing.T) {
	reg := NewRegistry()
	sink := &recordingSink{}
	s := StartSampler(reg, sink, SamplerOptions{Interval: time.Hour, Delta: true})

	reg.Counter("n").Add(2)
	s.Sample()
	s.Sample() // nothing changed: suppressed
	reg.Counter("n").Add(3)
	s.Stop()

	recs := sink.all()
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2 (quiet interval suppressed)", len(recs))
	}
	c0 := recs[0]["counters"].(map[string]int64)
	c1 := recs[1]["counters"].(map[string]int64)
	if c0["n"] != 2 || c1["n"] != 3 {
		t.Errorf("delta counters = %d, %d, want 2, 3", c0["n"], c1["n"])
	}
	if recs[0]["delta"] != true {
		t.Error("delta record not marked delta")
	}
	// Last stays cumulative even in delta mode.
	if got := s.Last().Counters["n"]; got != 5 {
		t.Errorf("Last = %d, want cumulative 5", got)
	}
}

func TestSamplerNilSafe(t *testing.T) {
	if s := StartSampler(nil, &recordingSink{}, SamplerOptions{}); s != nil {
		t.Error("sampler on nil registry not nil")
	}
	var s *Sampler
	s.Sample()
	s.Stop()
	_ = s.Last()
}

// TestSamplerTicker lets the periodic loop run for real, checking that
// samples arrive without explicit Sample calls.
func TestSamplerTicker(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("n").Add(1)
	sink := &recordingSink{}
	s := StartSampler(reg, sink, SamplerOptions{Interval: time.Millisecond})
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.all()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if len(sink.all()) == 0 {
		t.Fatal("no periodic samples within deadline")
	}
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

// TestHandlerEndpoints exercises every route of the live-export mux
// against a live runtime.
func TestHandlerEndpoints(t *testing.T) {
	rt := New(nil)
	rt.Metrics().Counter("points").Add(7)
	rt.Metrics().Histogram("wall").Observe(0.25)
	stage := rt.Progress().Stage("pipeline.points")
	stage.AddTotal(10)
	stage.Add(4)

	srv := httptest.NewServer(Handler(rt))
	defer srv.Close()

	body, resp := get(t, srv.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "mlpa_points 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, `mlpa_wall{quantile="0.5"}`) {
		t.Errorf("/metrics missing summary quantile:\n%s", body)
	}

	body, resp = get(t, srv.URL+"/metrics?format=json")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics?format=json: %v", err)
	}
	if snap.Counters["points"] != 7 {
		t.Errorf("json counter = %d, want 7", snap.Counters["points"])
	}

	// Delta scrapes: first carries everything, a quiet second carries a
	// zero counter delta, one after activity carries just the change.
	body, _ = get(t, srv.URL+"/metrics?format=json&delta=1")
	var d Snapshot
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatal(err)
	}
	if d.Counters["points"] != 7 {
		t.Errorf("first delta = %d, want full 7", d.Counters["points"])
	}
	rt.Metrics().Counter("points").Add(2)
	body, _ = get(t, srv.URL+"/metrics?format=json&delta=1")
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatal(err)
	}
	if d.Counters["points"] != 2 {
		t.Errorf("second delta = %d, want 2", d.Counters["points"])
	}

	body, resp = get(t, srv.URL+"/progress")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/progress content type = %q", ct)
	}
	var stages []StageStatus
	if err := json.Unmarshal([]byte(body), &stages); err != nil {
		t.Fatalf("/progress: %v\n%s", err, body)
	}
	if len(stages) != 1 || stages[0].Name != "pipeline.points" || stages[0].Done != 4 {
		t.Errorf("/progress = %+v", stages)
	}

	body, _ = get(t, srv.URL+"/")
	if !strings.Contains(body, "/metrics") || !strings.Contains(body, "/progress") {
		t.Errorf("index missing endpoints:\n%s", body)
	}
	_, resp = get(t, srv.URL+"/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
	body, _ = get(t, srv.URL+"/debug/pprof/cmdline")
	if body == "" {
		t.Error("pprof cmdline empty")
	}
}

// TestHandlerNilRuntime: every endpoint serves empty-but-valid data on
// a nil runtime.
func TestHandlerNilRuntime(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	body, _ := get(t, srv.URL+"/metrics?format=json")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Empty() {
		t.Errorf("nil runtime metrics = %+v", snap)
	}
	body, _ = get(t, srv.URL+"/progress")
	var stages []StageStatus
	if err := json.Unmarshal([]byte(body), &stages); err != nil {
		t.Fatal(err)
	}
	if len(stages) != 0 {
		t.Errorf("nil runtime progress = %+v", stages)
	}
}

// TestServeLifecycle: Serve binds, serves the same handler, and Close
// releases the port and stops the loop.
func TestServeLifecycle(t *testing.T) {
	rt := New(nil)
	rt.Metrics().Counter("up").Inc()
	srv, err := Serve("127.0.0.1:0", rt)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := get(t, "http://"+srv.Addr().String()+"/metrics")
	if !strings.Contains(body, "mlpa_up 1") {
		t.Errorf("served metrics missing counter:\n%s", body)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	// Drop the pooled keep-alive connection: Close only stops the
	// listener, so a fresh dial is what must fail.
	http.DefaultClient.CloseIdleConnections()
	if _, err := http.Get("http://" + srv.Addr().String() + "/metrics"); err == nil {
		t.Error("listener not accepting new connections after Close")
	}
}
