package smarts

import (
	"math"
	"testing"

	"mlpa/internal/bench"
	"mlpa/internal/config"
	"mlpa/internal/pipeline"
	"mlpa/internal/sampling"
	"mlpa/internal/simpoint"
)

func TestSelectSystematicPlan(t *testing.T) {
	spec, err := bench.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	cfg := Config{UnitLen: 100, Period: 10_000}
	plan, err := Select(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.Method != MethodName {
		t.Errorf("method = %q", plan.Method)
	}
	// Units are equally spaced and equally weighted.
	for i, pt := range plan.Points {
		if pt.Len() != 100 {
			t.Errorf("unit %d length %d", i, pt.Len())
		}
		if i > 0 && pt.Start-plan.Points[i-1].Start != 10_000 {
			t.Errorf("unit %d spacing %d", i, pt.Start-plan.Points[i-1].Start)
		}
		if math.Abs(pt.Weight-plan.Points[0].Weight) > 1e-12 {
			t.Errorf("unit %d weight %v differs", i, pt.Weight)
		}
	}
	want := SampleSize(plan.TotalInsts, cfg)
	if diff := len(plan.Points) - want; diff < -1 || diff > 1 {
		t.Errorf("points = %d, SampleSize = %d", len(plan.Points), want)
	}
	// Systematic sampling fast-forwards essentially the whole program.
	if plan.LastPosition() < 0.9 {
		t.Errorf("last unit at %v, want near program end", plan.LastPosition())
	}
}

func TestSelectErrors(t *testing.T) {
	spec, _ := bench.ByName("gzip")
	p := spec.MustProgram(bench.SizeTiny)
	if _, err := Select(p, Config{UnitLen: 0, Period: 100}); err == nil {
		t.Error("zero unit accepted")
	}
	if _, err := Select(p, Config{UnitLen: 200, Period: 100}); err == nil {
		t.Error("period below unit accepted")
	}
}

func TestShortProgramSingleUnit(t *testing.T) {
	spec, _ := bench.ByName("gzip")
	p := spec.MustProgram(bench.SizeTiny)
	plan, err := Select(p, Config{UnitLen: 1 << 30, Period: 1 << 31})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Points) != 1 || plan.Points[0].Len() != plan.TotalInsts {
		t.Errorf("plan = %+v", plan.Points)
	}
}

// TestAccuracyComparableToSimPoint: systematic sampling with enough
// units estimates CPI comparably to representative sampling — its cost
// problem is time (full-program fast-forward), not accuracy.
func TestAccuracyComparableToSimPoint(t *testing.T) {
	spec, err := bench.ByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	truth, _, err := pipeline.FullDetailed(p, config.BaseA())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Select(p, Config{UnitLen: 160, Period: 4_000})
	if err != nil {
		t.Fatal(err)
	}
	est, err := pipeline.ExecutePlan(p, plan, config.BaseA(), pipeline.ExecOptions{
		Warmup: math.MaxUint32, DetailLeadIn: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, _, _ := pipeline.Deviations(est, truth)
	if dev > 0.2 {
		t.Errorf("systematic-sampling CPI deviation %v", dev)
	}
}

// TestTimeProfileWorseThanCoastsStyle: under the paper's time model, a
// systematic plan costs at least as much as fine SimPoint because the
// functional portion spans the entire run.
func TestTimeProfileVsSimPoint(t *testing.T) {
	spec, _ := bench.ByName("swim")
	p := spec.MustProgram(bench.SizeTiny)
	smPlan, err := Select(p, Config{UnitLen: 160, Period: 8_000})
	if err != nil {
		t.Fatal(err)
	}
	spPlan, _, _, err := simpoint.Select(p, simpoint.Config{
		IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 30, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tm := sampling.SimpleScalarRates
	// Functional fractions: systematic ~100%, SimPoint depends on its
	// last point; systematic can never be meaningfully faster.
	if tm.PlanTime(smPlan) < tm.PlanTime(spPlan)*0.8 {
		t.Errorf("systematic %v clearly faster than SimPoint %v", tm.PlanTime(smPlan), tm.PlanTime(spPlan))
	}
}

func TestConfidenceHalfWidth(t *testing.T) {
	if got := ConfidenceHalfWidth(2, 0, 1.96); !math.IsInf(got, 1) {
		t.Errorf("n=0 half-width = %v", got)
	}
	hw100 := ConfidenceHalfWidth(2, 100, 1.96)
	hw400 := ConfidenceHalfWidth(2, 400, 1.96)
	if math.Abs(hw100/hw400-2) > 1e-9 {
		t.Errorf("quadrupling n should halve the interval: %v vs %v", hw100, hw400)
	}
}
