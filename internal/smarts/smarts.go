// Package smarts implements systematic statistical sampling in the
// style of SMARTS (Wunderlich et al., ISCA'03) as a comparison family
// for the paper's representative sampling: instead of clustering
// program behaviour and picking representatives, it measures every
// k-th interval of a small fixed size and estimates metrics as the
// mean, relying on the central limit theorem rather than phase
// structure. Its plans fast-forward through the whole program (like
// fine-grained SimPoint's worst case), which is exactly the cost
// profile the paper's coarse-grained first level removes.
package smarts

import (
	"fmt"
	"math"

	"mlpa/internal/emu"
	"mlpa/internal/prog"
	"mlpa/internal/sampling"
)

// Config parameterizes systematic sampling.
type Config struct {
	// UnitLen is the detailed measurement unit length in instructions
	// (SMARTS uses ~1000).
	UnitLen uint64
	// Period is the sampling period: one unit is measured every
	// Period instructions.
	Period uint64
	// Offset shifts the first unit (0 = start at the beginning).
	Offset uint64
}

func (c Config) validate() error {
	if c.UnitLen == 0 {
		return fmt.Errorf("smarts: UnitLen = 0")
	}
	if c.Period < c.UnitLen {
		return fmt.Errorf("smarts: period %d below unit length %d", c.Period, c.UnitLen)
	}
	return nil
}

// MethodName is the plan label.
const MethodName = "smarts"

// Select builds the systematic sampling plan for p: units of UnitLen
// every Period instructions, each weighted equally. No profiling or
// clustering pass is needed — the defining property of statistical
// sampling.
func Select(p *prog.Program, cfg Config) (*sampling.Plan, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// One functional pass to learn the program length.
	m := emu.New(p, 0)
	total, err := m.RunToCompletion(1 << 40)
	if err != nil {
		return nil, fmt.Errorf("smarts: measuring %s: %w", p.Name, err)
	}

	plan := &sampling.Plan{
		Benchmark:  p.Name,
		Method:     MethodName,
		TotalInsts: total,
	}
	for start := cfg.Offset; start+cfg.UnitLen <= total; start += cfg.Period {
		plan.Points = append(plan.Points, sampling.Point{
			Start:  start,
			End:    start + cfg.UnitLen,
			Weight: 1, // normalized below: equal weights
			Level:  1,
			Parent: -1,
		})
	}
	if len(plan.Points) == 0 {
		// Program shorter than one period: measure it whole.
		plan.Points = append(plan.Points, sampling.Point{
			Start: 0, End: total, Weight: 1, Level: 1, Parent: -1,
		})
	}
	plan.NormalizeWeights()
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// SampleSize returns the number of units a (UnitLen, Period) design
// yields on a program of the given length.
func SampleSize(totalInsts uint64, cfg Config) int {
	if cfg.Period == 0 {
		return 0
	}
	n := int((totalInsts - cfg.Offset) / cfg.Period)
	if n < 1 {
		n = 1
	}
	return n
}

// ConfidenceHalfWidth returns the half-width of the (approximate)
// normal-theory confidence interval for a mean estimated from n unit
// measurements with the given sample standard deviation, at z standard
// errors (z = 1.96 for ~95%).
func ConfidenceHalfWidth(stddev float64, n int, z float64) float64 {
	if n <= 1 {
		return math.Inf(1)
	}
	return z * stddev / math.Sqrt(float64(n))
}
