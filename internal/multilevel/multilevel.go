// Package multilevel implements the paper's main contribution: the
// two-level sampling framework of Section IV. The first level runs
// COASTS to pick a small number of early, coarse-grained simulation
// points. The second level re-samples every coarse point larger than a
// threshold (the paper uses fine-interval-length x fine-Kmax = 10M x
// 30 = 300M instructions) with the fine-grained SimPoint method
// *inside* the coarse point, composing the weights multiplicatively.
// Because the fine points represent only the selected coarse points —
// not the entire program — both the functional and the detailed
// portions of the sampled simulation shrink.
package multilevel

import (
	"fmt"

	"mlpa/internal/bbv"
	"mlpa/internal/coasts"
	"mlpa/internal/obs"
	"mlpa/internal/phase"
	"mlpa/internal/prog"
	"mlpa/internal/sampling"
	"mlpa/internal/simpoint"
)

// Config parameterizes the framework.
type Config struct {
	// Coarse is the first-level COASTS configuration.
	Coarse coasts.Config

	// Fine is the second-level SimPoint configuration applied inside
	// oversized coarse points. Fine.IntervalLen must be set.
	Fine simpoint.Config

	// Threshold is the coarse-point size above which re-sampling
	// applies. Zero defaults to Fine.IntervalLen x Fine.Kmax, the
	// paper's rule.
	Threshold uint64

	// Obs, if non-nil, receives stage spans and journal records; it
	// propagates to the coarse and fine sub-configurations unless they
	// carry their own.
	Obs *obs.Runtime
}

func (c Config) withDefaults() Config {
	c.Coarse = coastsDefaults(c.Coarse)
	if c.Fine.Kmax <= 0 {
		c.Fine.Kmax = 30
	}
	if c.Fine.Dims <= 0 {
		c.Fine.Dims = bbv.DefaultDims
	}
	if c.Threshold == 0 {
		c.Threshold = c.Fine.IntervalLen * uint64(c.Fine.Kmax)
	}
	if c.Obs != nil {
		if c.Coarse.Obs == nil {
			c.Coarse.Obs = c.Obs
		}
		if c.Fine.Obs == nil {
			c.Fine.Obs = c.Obs
		}
	}
	return c
}

// coastsDefaults mirrors coasts.Config defaulting without exporting
// that package's internal helper.
func coastsDefaults(c coasts.Config) coasts.Config {
	if c.Kmax <= 0 {
		c.Kmax = 3
	}
	if c.Dims <= 0 {
		c.Dims = bbv.DefaultDims
	}
	if c.MinCoverage <= 0 {
		c.MinCoverage = 0.01
	}
	return c
}

// MethodName is the plan label for multi-level sampling.
const MethodName = "multilevel"

// Report captures the intermediate artifacts of a multi-level
// selection for inspection and experiments.
type Report struct {
	CoarsePlan *sampling.Plan
	// Resampled[i] is the fine-grained sub-plan for coarse point i, or
	// nil when the point was below the threshold and kept whole.
	Resampled []*sampling.Plan
	Threshold uint64
}

// Select runs the complete two-level pipeline on a program.
func Select(p *prog.Program, cfg Config) (*sampling.Plan, *Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Fine.IntervalLen == 0 {
		return nil, nil, fmt.Errorf("multilevel: Fine.IntervalLen = 0")
	}

	coarsePlan, _, _, err := coasts.Select(p, cfg.Coarse)
	if err != nil {
		return nil, nil, fmt.Errorf("multilevel: first level: %w", err)
	}
	return Resample(p, coarsePlan, cfg)
}

// Resample applies the second level to an existing coarse plan.
func Resample(p *prog.Program, coarsePlan *sampling.Plan, cfg Config) (*sampling.Plan, *Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Fine.IntervalLen == 0 {
		return nil, nil, fmt.Errorf("multilevel: Fine.IntervalLen = 0")
	}
	span := cfg.Obs.StartSpan("multilevel.resample",
		obs.KV("benchmark", coarsePlan.Benchmark),
		obs.KV("coarse_points", len(coarsePlan.Points)),
		obs.KV("threshold", cfg.Threshold))
	defer span.End()
	report := &Report{
		CoarsePlan: coarsePlan,
		Resampled:  make([]*sampling.Plan, len(coarsePlan.Points)),
		Threshold:  cfg.Threshold,
	}

	proj, err := bbv.NewProjector(p.NumBlocks(), cfg.Fine.Dims, cfg.Fine.Seed)
	if err != nil {
		return nil, nil, err
	}

	out := &sampling.Plan{
		Benchmark:  coarsePlan.Benchmark,
		Method:     MethodName,
		TotalInsts: coarsePlan.TotalInsts,
	}

	for ci, cp := range coarsePlan.Points {
		if cp.Len() <= cfg.Threshold {
			kept := cp
			kept.Parent = -1
			out.Points = append(out.Points, kept)
			continue
		}
		// Second-level profiling inside the coarse point.
		tr, err := phase.CollectFixedRange(p, proj, cfg.Fine.IntervalLen, cp.Start, cp.End)
		if err != nil {
			return nil, nil, fmt.Errorf("multilevel: re-sampling coarse point %d: %w", ci, err)
		}
		sub, _, err := simpoint.SelectFromTrace(tr, cfg.Fine)
		if err != nil {
			return nil, nil, fmt.Errorf("multilevel: re-sampling coarse point %d: %w", ci, err)
		}
		report.Resampled[ci] = sub
		for _, fp := range sub.Points {
			out.Points = append(out.Points, sampling.Point{
				Start: fp.Start,
				End:   fp.End,
				// The fine point represents fp.Weight of the coarse
				// point, which itself represents cp.Weight of the
				// program.
				Weight:   cp.Weight * fp.Weight,
				Level:    2,
				Interval: fp.Interval,
				Parent:   cp.Interval,
			})
		}
	}

	out.Sort()
	out.NormalizeWeights()
	if err := out.Validate(); err != nil {
		return nil, nil, err
	}
	resampled := 0
	for _, sub := range report.Resampled {
		if sub != nil {
			resampled++
		}
	}
	span.SetAttr("resampled", resampled)
	span.SetAttr("points", len(out.Points))
	cfg.Obs.Emit("selection", map[string]any{
		"benchmark": out.Benchmark,
		"method":    MethodName,
		"points":    len(out.Points),
		"resampled": resampled,
		"detailed":  out.DetailedFraction(),
	})
	return out, report, nil
}
