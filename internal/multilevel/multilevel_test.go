package multilevel

import (
	"testing"

	"mlpa/internal/coasts"
	"mlpa/internal/isa"
	"mlpa/internal/prog"
	"mlpa/internal/simpoint"
)

// bigPhaseProgram builds an outer loop with two alternating kernels
// whose iterations are large (thousands of instructions), so coarse
// points exceed small re-sampling thresholds.
func bigPhaseProgram(t *testing.T, trips, inner int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("bigphase")
	b.Li(1, trips)
	b.Label("outer")
	b.Andi(2, 1, 1)
	b.Bne(2, isa.RZero, "kb")
	b.CountedLoop("ka", 3, inner, func() {
		b.Add(4, 4, 4)
		b.Xor(5, 5, 4)
		b.Addi(6, 6, 1)
	})
	b.Jmp("next")
	b.Label("kb")
	b.CountedLoop("kbl", 3, inner, func() {
		b.Mul(7, 7, 7)
		b.Addi(7, 7, 3)
		b.Sub(8, 8, 7)
	})
	b.Label("next")
	b.Addi(1, 1, -1)
	b.Bne(1, isa.RZero, "outer")
	b.Halt()
	return b.MustBuild()
}

func TestSelectResamplesBigPoints(t *testing.T) {
	p := bigPhaseProgram(t, 10, 400) // iterations ~2000 insts
	cfg := Config{
		Coarse:    coasts.Config{Seed: 1},
		Fine:      simpoint.Config{IntervalLen: 100, Kmax: 5, Seed: 1},
		Threshold: 500,
	}
	plan, report, err := Select(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.Method != MethodName {
		t.Errorf("Method = %q", plan.Method)
	}
	// Coarse points exceed the threshold, so all must be re-sampled.
	resampled := 0
	for _, sub := range report.Resampled {
		if sub != nil {
			resampled++
		}
	}
	if resampled != len(report.CoarsePlan.Points) {
		t.Errorf("resampled %d of %d coarse points", resampled, len(report.CoarsePlan.Points))
	}
	// All final points are level-2 with parents.
	for _, pt := range plan.Points {
		if pt.Level != 2 || pt.Parent < 0 {
			t.Errorf("point = %+v, want level 2 with parent", pt)
		}
	}
	// Multi-level detail must be below the coarse plan's detail.
	if plan.DetailedInsts() >= report.CoarsePlan.DetailedInsts() {
		t.Errorf("multilevel detail %d >= coarse detail %d", plan.DetailedInsts(), report.CoarsePlan.DetailedInsts())
	}
}

func TestSmallPointsKeptWhole(t *testing.T) {
	p := bigPhaseProgram(t, 10, 400)
	cfg := Config{
		Coarse:    coasts.Config{Seed: 2},
		Fine:      simpoint.Config{IntervalLen: 100, Kmax: 5, Seed: 2},
		Threshold: 1 << 40, // nothing exceeds this
	}
	plan, report, err := Select(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range report.Resampled {
		if sub != nil {
			t.Error("point re-sampled despite huge threshold")
		}
	}
	if len(plan.Points) != len(report.CoarsePlan.Points) {
		t.Errorf("points = %d, want %d (coarse kept whole)", len(plan.Points), len(report.CoarsePlan.Points))
	}
	for _, pt := range plan.Points {
		if pt.Level != 1 {
			t.Errorf("kept point has level %d", pt.Level)
		}
	}
}

func TestDefaultThresholdRule(t *testing.T) {
	cfg := Config{
		Fine: simpoint.Config{IntervalLen: 100, Kmax: 30},
	}
	got := cfg.withDefaults().Threshold
	if got != 3000 {
		t.Errorf("default threshold = %d, want IntervalLen*Kmax = 3000", got)
	}
}

func TestWeightsComposeMultiplicatively(t *testing.T) {
	p := bigPhaseProgram(t, 10, 400)
	cfg := Config{
		Coarse:    coasts.Config{Seed: 3},
		Fine:      simpoint.Config{IntervalLen: 100, Kmax: 5, Seed: 3},
		Threshold: 500,
	}
	plan, report, err := Select(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of final weights descending from one coarse point must equal
	// that coarse point's weight (up to normalization).
	perParent := make(map[int]float64)
	for _, pt := range plan.Points {
		perParent[pt.Parent] += pt.Weight
	}
	for _, cp := range report.CoarsePlan.Points {
		got := perParent[cp.Interval]
		if diff := got - cp.Weight; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("descendants of coarse interval %d weigh %v, coarse weight %v", cp.Interval, got, cp.Weight)
		}
	}
}

func TestMissingFineIntervalLen(t *testing.T) {
	p := bigPhaseProgram(t, 4, 50)
	if _, _, err := Select(p, Config{}); err == nil {
		t.Error("missing Fine.IntervalLen accepted")
	}
}

func TestFinePointsInsideCoarsePoints(t *testing.T) {
	p := bigPhaseProgram(t, 10, 400)
	cfg := Config{
		Coarse:    coasts.Config{Seed: 4},
		Fine:      simpoint.Config{IntervalLen: 150, Kmax: 4, Seed: 4},
		Threshold: 500,
	}
	plan, report, err := Select(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coarseByInterval := make(map[int][2]uint64)
	for _, cp := range report.CoarsePlan.Points {
		coarseByInterval[cp.Interval] = [2]uint64{cp.Start, cp.End}
	}
	for _, pt := range plan.Points {
		rng, ok := coarseByInterval[pt.Parent]
		if !ok {
			t.Fatalf("point parent %d not a coarse interval", pt.Parent)
		}
		if pt.Start < rng[0] || pt.End > rng[1] {
			t.Errorf("fine point [%d,%d) escapes coarse range [%d,%d)", pt.Start, pt.End, rng[0], rng[1])
		}
	}
}

func TestDeterministic(t *testing.T) {
	p := bigPhaseProgram(t, 8, 300)
	cfg := Config{
		Coarse:    coasts.Config{Seed: 5},
		Fine:      simpoint.Config{IntervalLen: 120, Kmax: 4, Seed: 5},
		Threshold: 400,
	}
	p1, _, err := Select(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := Select(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Points) != len(p2.Points) {
		t.Fatal("nondeterministic point count")
	}
	for i := range p1.Points {
		if p1.Points[i] != p2.Points[i] {
			t.Errorf("point %d differs", i)
		}
	}
}
