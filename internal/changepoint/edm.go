package changepoint

import (
	"math"
	"math/rand"
	"sort"
)

// Changepoint is one detected distribution shift in a series.
type Changepoint struct {
	// Index is the first position of the new regime: the series splits
	// into [..., Index) and [Index, ...).
	Index int
	// Stat is the median-divergence statistic at the split.
	Stat float64
	// P is the permutation-test p-value that admitted the split.
	P float64
}

// Options tunes Detect. The zero value picks the defaults.
type Options struct {
	// MinSegment is the minimum length of every resulting segment
	// (default 5). Splits closer than this to a segment edge are never
	// considered.
	MinSegment int
	// Perms is the number of permutations behind each significance
	// test (default 99). The resolution of p-values is 1/(Perms+1).
	Perms int
	// Alpha is the significance level a split must clear (default
	// 0.05).
	Alpha float64
	// Seed drives the permutation shuffles; Detect is deterministic
	// for a fixed (series, Options) pair (default 1).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MinSegment == 0 {
		o.MinSegment = 5
	}
	if o.Perms == 0 {
		o.Perms = 99
	}
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Detect segments x by hierarchical bisection with an E-divisive-style
// statistic built on medians: each candidate split is scored by the
// difference of segment medians scaled by the segment's MAD and the
// split's effective sample size, the best split is admitted when a
// seeded permutation test finds it significant, and both halves are
// then searched recursively. Returned change points are sorted by
// index. Robustness is the point — a few outlier samples move a
// mean-based statistic but not this one — which is what makes it
// usable on noisy wall-time trajectories and BBV distance series
// alike.
func Detect(x []float64, opt Options) []Changepoint {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	var out []Changepoint
	detect(x, 0, opt, rng, &out)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// detect recursively splits x (whose first element is series position
// base), appending admitted change points to out.
func detect(x []float64, base int, opt Options, rng *rand.Rand, out *[]Changepoint) {
	if len(x) < 2*opt.MinSegment {
		return
	}
	tau, stat := bestSplit(x, opt.MinSegment)
	if tau < 0 || stat == 0 {
		return
	}
	// Permutation test: how often does a reshuffled segment produce an
	// equally extreme best split by chance?
	perm := append([]float64(nil), x...)
	exceed := 0
	for i := 0; i < opt.Perms; i++ {
		rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		if _, s := bestSplit(perm, opt.MinSegment); s >= stat {
			exceed++
		}
	}
	p := float64(exceed+1) / float64(opt.Perms+1)
	if p > opt.Alpha {
		return
	}
	*out = append(*out, Changepoint{Index: base + tau, Stat: stat, P: p})
	detect(x[:tau], base, opt, rng, out)
	detect(x[tau:], base+tau, opt, rng, out)
}

// bestSplit scores every admissible split of x and returns the argmax
// and its statistic (tau -1 when no split is admissible).
func bestSplit(x []float64, minSeg int) (int, float64) {
	n := len(x)
	if n < 2*minSeg {
		return -1, 0
	}
	scale := madScale * MAD(x)
	if scale == 0 {
		// Degenerate spread (over half the segment identical): fall
		// back to a tiny scale relative to the segment's magnitude so
		// any real median shift still scores, while a constant segment
		// scores zero everywhere.
		scale = 1e-12 * math.Max(1, math.Abs(Median(x)))
	}
	left := runningMedians(x)
	rev := make([]float64, n)
	for i, v := range x {
		rev[n-1-i] = v
	}
	right := runningMedians(rev)
	bestTau, bestStat := -1, 0.0
	for tau := minSeg; tau <= n-minSeg; tau++ {
		lm := left[tau-1]    // median of x[:tau]
		rm := right[n-tau-1] // median of x[tau:]
		w := float64(tau) * float64(n-tau) / float64(n)
		stat := math.Sqrt(w) * math.Abs(lm-rm) / scale
		if stat > bestStat {
			bestTau, bestStat = tau, stat
		}
	}
	return bestTau, bestStat
}

// runningMedians returns m where m[k] is the median of xs[:k+1],
// maintained by binary-search insertion (O(n²) worst case, cheap at
// the series lengths change detection sees).
func runningMedians(xs []float64) []float64 {
	out := make([]float64, len(xs))
	sorted := make([]float64, 0, len(xs))
	for i, v := range xs {
		at := sort.SearchFloat64s(sorted, v)
		sorted = append(sorted, 0)
		copy(sorted[at+1:], sorted[at:])
		sorted[at] = v
		k := i + 1
		if k%2 == 1 {
			out[i] = sorted[k/2]
		} else {
			out[i] = (sorted[k/2-1] + sorted[k/2]) / 2
		}
	}
	return out
}
