package changepoint

import (
	"math"
	"math/rand"
	"testing"
)

func TestMedianAndMAD(t *testing.T) {
	cases := []struct {
		xs       []float64
		med, mad float64
	}{
		{[]float64{3}, 3, 0},
		{[]float64{1, 2, 3}, 2, 1},
		{[]float64{1, 2, 3, 4}, 2.5, 1},
		{[]float64{5, 5, 5, 5}, 5, 0},
		{[]float64{1, 1, 1, 100}, 1, 0},
	}
	for _, c := range cases {
		if got := Median(c.xs); got != c.med {
			t.Errorf("Median(%v) = %v, want %v", c.xs, got, c.med)
		}
		if got := MAD(c.xs); got != c.mad {
			t.Errorf("MAD(%v) = %v, want %v", c.xs, got, c.mad)
		}
	}
	if !math.IsNaN(Median(nil)) || !math.IsNaN(MAD(nil)) {
		t.Error("empty median/MAD should be NaN")
	}
	// The input must not be reordered.
	xs := []float64{3, 1, 2}
	Median(xs)
	MAD(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median/MAD mutated their input: %v", xs)
	}
}

// golden builds the package's reference synthetic series: three
// regimes with seeded noise, shifts at 40 and 70.
func golden() []float64 {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 100)
	for i := range x {
		level := 0.0
		switch {
		case i >= 70:
			level = 1.5
		case i >= 40:
			level = 5.0
		}
		x[i] = level + 0.3*rng.NormFloat64()
	}
	return x
}

// TestDetectGoldenSeries is the package's acceptance test: E-divisive
// with medians must reproduce the two known change points of the
// golden synthetic series (and nothing else).
func TestDetectGoldenSeries(t *testing.T) {
	cps := Detect(golden(), Options{})
	if len(cps) != 2 {
		t.Fatalf("Detect found %d change points (%+v), want 2", len(cps), cps)
	}
	for i, want := range []int{40, 70} {
		got := cps[i].Index
		if got < want-2 || got > want+2 {
			t.Errorf("change point %d at index %d, want %d +/- 2", i, got, want)
		}
		if cps[i].P > 0.05 {
			t.Errorf("change point %d has p=%v, want <= 0.05", i, cps[i].P)
		}
	}
}

func TestDetectDeterministic(t *testing.T) {
	x := golden()
	a := Detect(x, Options{})
	b := Detect(x, Options{})
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d change points", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("non-deterministic change point %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDetectQuietSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 80)
	for i := range x {
		x[i] = 10 + 0.5*rng.NormFloat64()
	}
	if cps := Detect(x, Options{}); len(cps) != 0 {
		t.Errorf("Detect on a stationary series found %+v, want none", cps)
	}
	// Constant and too-short series must also stay quiet.
	if cps := Detect(make([]float64, 50), Options{}); len(cps) != 0 {
		t.Errorf("Detect on a constant series found %+v, want none", cps)
	}
	if cps := Detect([]float64{1, 2, 3}, Options{}); len(cps) != 0 {
		t.Errorf("Detect on a tiny series found %+v, want none", cps)
	}
}

// TestDetectOutlierRobust plants two spikes in an otherwise stationary
// series: the median statistic must not split on them.
func TestDetectOutlierRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, 80)
	for i := range x {
		x[i] = 1 + 0.1*rng.NormFloat64()
	}
	x[20], x[55] = 50, -50
	if cps := Detect(x, Options{}); len(cps) != 0 {
		t.Errorf("Detect split on outliers: %+v", cps)
	}
}

func TestShiftTestIdenticalSamples(t *testing.T) {
	s := []float64{1.0, 1.1, 0.9, 1.05, 0.95}
	sh := ShiftTest(s, s, ShiftOptions{})
	if sh.Significant {
		t.Errorf("identical samples flagged significant: %+v", sh)
	}
	if sh.Rel != 0 {
		t.Errorf("identical samples Rel = %v, want 0", sh.Rel)
	}
}

func TestShiftTestScalarRelGate(t *testing.T) {
	// Single-point samples: pure relative threshold.
	if sh := ShiftTest([]float64{100}, []float64{95}, ShiftOptions{}); sh.Significant {
		t.Errorf("5%% scalar shift flagged significant: %+v", sh)
	}
	sh := ShiftTest([]float64{100}, []float64{80}, ShiftOptions{})
	if !sh.Significant {
		t.Errorf("20%% scalar shift not flagged: %+v", sh)
	}
	if math.Abs(sh.Rel - -0.2) > 1e-12 {
		t.Errorf("Rel = %v, want -0.2", sh.Rel)
	}
}

func TestShiftTestSpreadGate(t *testing.T) {
	// A 15% median shift well inside the samples' own noise must not
	// gate; the same shift on tight samples must.
	noisyOld := []float64{1.0, 2.0, 0.5, 1.5, 0.8, 2.2, 1.2, 0.6}
	noisyNew := make([]float64, len(noisyOld))
	for i, v := range noisyOld {
		noisyNew[i] = v * 1.15
	}
	if sh := ShiftTest(noisyOld, noisyNew, ShiftOptions{}); sh.Significant {
		t.Errorf("within-noise shift flagged significant: %+v", sh)
	}
	tightOld := []float64{1.00, 1.01, 0.99, 1.02, 0.98, 1.00, 1.01, 0.99}
	tightNew := make([]float64, len(tightOld))
	for i, v := range tightOld {
		tightNew[i] = v * 1.15
	}
	sh := ShiftTest(tightOld, tightNew, ShiftOptions{})
	if !sh.Significant {
		t.Errorf("clear tight-sample shift not flagged: %+v", sh)
	}
	if sh.Z < 3 {
		t.Errorf("tight-sample Z = %v, want >= 3", sh.Z)
	}
}

func TestShiftTestZeroOldCenter(t *testing.T) {
	sh := ShiftTest([]float64{0}, []float64{1}, ShiftOptions{})
	if !math.IsInf(sh.Rel, 1) {
		t.Errorf("Rel from zero center = %v, want +Inf", sh.Rel)
	}
	if !sh.Significant {
		t.Errorf("appearance from zero not flagged: %+v", sh)
	}
}
