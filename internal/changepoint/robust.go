// Package changepoint provides robust change detection for performance
// and phase series: an E-divisive-with-medians segmenter (after the
// EDM family used by golang.org/x/benchmarks to gate benchmark
// regressions) and a median/MAD two-sample shift test. Medians and
// median absolute deviations replace means and standard deviations
// throughout, so a handful of outlier intervals — a GC pause in a wall
// time, one pathological benchmark in a deviation series — cannot
// manufacture or mask a shift.
package changepoint

import (
	"math"
	"sort"
)

// madScale rescales a median absolute deviation to estimate the
// standard deviation of normal data (1 / Phi^-1(3/4)).
const madScale = 1.4826

// Median returns the median of xs (NaN for an empty slice). The input
// is not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation of xs around its median
// (NaN for an empty slice). Unscaled; multiply by 1.4826 to estimate a
// normal standard deviation.
func MAD(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	m := Median(xs)
	dev := make([]float64, n)
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return Median(dev)
}

// ShiftOptions tunes ShiftTest. The zero value picks the defaults.
type ShiftOptions struct {
	// MinRel is the minimum relative center shift |new-old|/|old| that
	// counts as significant (default 0.10). It is the noise floor for
	// tiny samples, where no spread estimate exists.
	MinRel float64
	// Z is the robust z-score (center shift over MAD-derived standard
	// error) additionally required once both samples carry a usable
	// spread estimate (default 3).
	Z float64
}

func (o ShiftOptions) withDefaults() ShiftOptions {
	if o.MinRel == 0 {
		o.MinRel = 0.10
	}
	if o.Z == 0 {
		o.Z = 3
	}
	return o
}

// Shift is the outcome of a robust two-sample comparison.
type Shift struct {
	// OldCenter and NewCenter are the sample medians.
	OldCenter, NewCenter float64
	// Rel is the relative shift (NewCenter-OldCenter)/|OldCenter|
	// (sign preserved; +Inf magnitude when OldCenter is zero and the
	// centers differ).
	Rel float64
	// Z is the robust z-score of the shift, or NaN when neither sample
	// yields a spread estimate (fewer than two points, or zero MAD).
	Z float64
	// Significant reports whether the shift clears both gates: |Rel|
	// >= MinRel always, and Z >= opt.Z whenever Z is available.
	Significant bool
}

// ShiftTest compares two samples of the same metric with a median/MAD
// shift test. The center shift is the difference of medians; its
// standard error is estimated from the pooled scaled MADs
// (sqrt(s_old²/n_old + s_new²/n_new)). Samples need not be the same
// length; single-point samples (the bench report's scalar metrics)
// degrade to the pure relative-threshold gate.
func ShiftTest(oldS, newS []float64, opt ShiftOptions) Shift {
	opt = opt.withDefaults()
	sh := Shift{
		OldCenter: Median(oldS),
		NewCenter: Median(newS),
		Z:         math.NaN(),
	}
	if len(oldS) == 0 || len(newS) == 0 {
		return sh
	}
	diff := sh.NewCenter - sh.OldCenter
	switch {
	case sh.OldCenter != 0:
		sh.Rel = diff / math.Abs(sh.OldCenter)
	case diff != 0:
		sh.Rel = math.Inf(1) * sign(diff)
	}
	var se float64
	if len(oldS) >= 2 && len(newS) >= 2 {
		so := madScale * MAD(oldS)
		sn := madScale * MAD(newS)
		se = math.Sqrt(so*so/float64(len(oldS)) + sn*sn/float64(len(newS)))
	}
	if se > 0 {
		sh.Z = math.Abs(diff) / se
	}
	sh.Significant = math.Abs(sh.Rel) >= opt.MinRel &&
		(math.IsNaN(sh.Z) || sh.Z >= opt.Z)
	return sh
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
