package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding of instructions. Each instruction packs into 16
// bytes (a word pair): one control word holding opcode and registers,
// and one 64-bit payload holding the immediate or target. The encoding
// exists for the trace/serialization substrate and for checkpointing,
// not for density.

// EncodedSize is the number of bytes one instruction occupies in the
// binary encoding.
const EncodedSize = 16

// immediate-bearing opcodes store Imm in the payload; control-flow
// opcodes store Targ. Memory ops store Imm (displacement).
func usesTarget(op Op) bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpJal:
		return true
	}
	return false
}

// Encode writes the instruction into buf, which must be at least
// EncodedSize bytes long, and returns EncodedSize.
func Encode(in Inst, buf []byte) int {
	_ = buf[EncodedSize-1]
	buf[0] = byte(in.Op)
	buf[1] = byte(in.Rd)
	buf[2] = byte(in.Rs1)
	buf[3] = byte(in.Rs2)
	buf[4], buf[5], buf[6], buf[7] = 0, 0, 0, 0
	payload := in.Imm
	if usesTarget(in.Op) {
		payload = in.Targ
	}
	binary.LittleEndian.PutUint64(buf[8:], uint64(payload))
	return EncodedSize
}

// Decode parses one instruction from buf.
func Decode(buf []byte) (Inst, error) {
	if len(buf) < EncodedSize {
		return Inst{}, fmt.Errorf("isa: short instruction encoding: %d bytes", len(buf))
	}
	op := Op(buf[0])
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d", buf[0])
	}
	in := Inst{
		Op:  op,
		Rd:  Reg(buf[1]),
		Rs1: Reg(buf[2]),
		Rs2: Reg(buf[3]),
	}
	payload := int64(binary.LittleEndian.Uint64(buf[8:]))
	if usesTarget(op) {
		in.Targ = payload
	} else {
		in.Imm = payload
	}
	return in, nil
}

// EncodeProgram encodes a full instruction slice.
func EncodeProgram(code []Inst) []byte {
	out := make([]byte, len(code)*EncodedSize)
	for i, in := range code {
		Encode(in, out[i*EncodedSize:])
	}
	return out
}

// DecodeProgram decodes a byte stream produced by EncodeProgram.
func DecodeProgram(data []byte) ([]Inst, error) {
	if len(data)%EncodedSize != 0 {
		return nil, fmt.Errorf("isa: program encoding length %d not a multiple of %d", len(data), EncodedSize)
	}
	code := make([]Inst, len(data)/EncodedSize)
	for i := range code {
		in, err := Decode(data[i*EncodedSize:])
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		code[i] = in
	}
	return code, nil
}
