package isa

import (
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{0, "r0"},
		{5, "r5"},
		{31, "r31"},
		{F(0), "f0"},
		{F(31), "f31"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestFIsFP(t *testing.T) {
	for i := 0; i < NumFPRegs; i++ {
		if !F(i).IsFP() {
			t.Errorf("F(%d).IsFP() = false", i)
		}
	}
	for i := 0; i < NumIntRegs; i++ {
		if Reg(i).IsFP() {
			t.Errorf("Reg(%d).IsFP() = true", i)
		}
	}
}

func TestOpClassCoverage(t *testing.T) {
	// Every defined opcode must have a name and a class.
	for o := Op(0); int(o) < NumOps; o++ {
		if o.String() == "" {
			t.Errorf("op %d has empty mnemonic", o)
		}
		if o != OpNop && o != OpHalt && o.Class() == ClassNop {
			t.Errorf("op %s has ClassNop", o)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpBeq.IsBranch() || !OpBeq.IsCondBranch() {
		t.Error("beq should be a conditional branch")
	}
	if !OpJmp.IsBranch() || OpJmp.IsCondBranch() {
		t.Error("jmp should be an unconditional branch")
	}
	if !OpLd.IsMem() || !OpLd.IsLoad() || OpLd.IsStore() {
		t.Error("ld predicates wrong")
	}
	if !OpFst.IsMem() || !OpFst.IsStore() || OpFst.IsLoad() {
		t.Error("fst predicates wrong")
	}
	if !OpFadd.IsFP() || OpAdd.IsFP() {
		t.Error("FP predicate wrong")
	}
	if OpHalt.IsBranch() || OpHalt.IsMem() {
		t.Error("halt predicates wrong")
	}
}

func TestDests(t *testing.T) {
	cases := []struct {
		in   Inst
		want bool
	}{
		{Inst{Op: OpAdd, Rd: 3}, true},
		{Inst{Op: OpAdd, Rd: RZero}, false}, // writes to r0 discarded
		{Inst{Op: OpSt, Rd: 3}, false},
		{Inst{Op: OpBeq, Rd: 3}, false},
		{Inst{Op: OpJal, Rd: RRA}, true},
		{Inst{Op: OpFld, Rd: F(2)}, true},
		{Inst{Op: OpHalt}, false},
	}
	for _, c := range cases {
		_, ok := c.in.Dests()
		if ok != c.want {
			t.Errorf("%v Dests() ok = %v, want %v", c.in, ok, c.want)
		}
	}
}

func TestSources(t *testing.T) {
	cases := []struct {
		in   Inst
		want int
	}{
		{Inst{Op: OpAdd, Rs1: 1, Rs2: 2}, 2},
		{Inst{Op: OpAdd, Rs1: RZero, Rs2: 2}, 1}, // r0 excluded
		{Inst{Op: OpAddi, Rs1: 1, Rs2: 9}, 1},    // rs2 unused by addi
		{Inst{Op: OpSt, Rs1: 1, Rs2: 2}, 2},
		{Inst{Op: OpJmp}, 0},
		{Inst{Op: OpJr, Rs1: RRA}, 1},
		{Inst{Op: OpLui, Rs1: 7}, 0},
		{Inst{Op: OpFmov, Rs1: F(1), Rs2: F(9)}, 1},
	}
	for _, c := range cases {
		got := c.in.Sources(nil)
		if len(got) != c.want {
			t.Errorf("%v Sources() = %v, want %d regs", c.in, got, c.want)
		}
	}
}

func TestLatencyPositive(t *testing.T) {
	for o := Op(0); int(o) < NumOps; o++ {
		if o.Latency() < 1 {
			t.Errorf("op %s latency %d < 1", o, o.Latency())
		}
	}
	if OpDiv.Latency() <= OpMul.Latency() {
		t.Error("div should be slower than mul")
	}
	if OpFdiv.Latency() <= OpFmul.Latency() {
		t.Error("fdiv should be slower than fmul")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -42},
		{Op: OpLd, Rd: 4, Rs1: 5, Imm: 1 << 40},
		{Op: OpBeq, Rs1: 1, Rs2: 2, Targ: 123456},
		{Op: OpJal, Rd: RRA, Targ: 7},
		{Op: OpHalt},
		{Op: OpFmul, Rd: F(1), Rs1: F(2), Rs2: F(3)},
	}
	var buf [EncodedSize]byte
	for _, in := range cases {
		Encode(in, buf[:])
		got, err := Decode(buf[:])
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		if got != in {
			t.Errorf("round trip %v -> %v", in, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 3)); err == nil {
		t.Error("Decode(short) succeeded")
	}
	bad := make([]byte, EncodedSize)
	bad[0] = byte(NumOps) + 10
	if _, err := Decode(bad); err == nil {
		t.Error("Decode(invalid opcode) succeeded")
	}
}

func TestEncodeDecodeProgram(t *testing.T) {
	prog := []Inst{
		{Op: OpAddi, Rd: 1, Rs1: RZero, Imm: 10},
		{Op: OpAdd, Rd: 2, Rs1: 1, Rs2: 1},
		{Op: OpBne, Rs1: 2, Rs2: RZero, Targ: 1},
		{Op: OpHalt},
	}
	data := EncodeProgram(prog)
	if len(data) != len(prog)*EncodedSize {
		t.Fatalf("encoded length %d", len(data))
	}
	back, err := DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(prog) {
		t.Fatalf("decoded %d instructions, want %d", len(back), len(prog))
	}
	for i := range prog {
		if back[i] != prog[i] {
			t.Errorf("inst %d: %v != %v", i, back[i], prog[i])
		}
	}
	if _, err := DecodeProgram(data[:EncodedSize-1]); err == nil {
		t.Error("DecodeProgram(misaligned) succeeded")
	}
}

// Property: encode/decode round-trips for arbitrary valid instructions.
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, payload int64) bool {
		in := Inst{
			Op:  Op(op % uint8(NumOps)),
			Rd:  Reg(rd % 64),
			Rs1: Reg(rs1 % 64),
			Rs2: Reg(rs2 % 64),
		}
		if usesTarget(in.Op) {
			in.Targ = payload
		} else {
			in.Imm = payload
		}
		var buf [EncodedSize]byte
		Encode(in, buf[:])
		got, err := Decode(buf[:])
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpNop}, "nop"},
		{Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: OpAddi, Rd: 1, Rs1: 2, Imm: 5}, "addi r1, r2, 5"},
		{Inst{Op: OpLd, Rd: 1, Rs1: 2, Imm: 8}, "ld r1, 8(r2)"},
		{Inst{Op: OpSt, Rs1: 2, Rs2: 3, Imm: 8}, "st r3, 8(r2)"},
		{Inst{Op: OpBeq, Rs1: 1, Rs2: 2, Targ: 9}, "beq r1, r2, 9"},
		{Inst{Op: OpJmp, Targ: 4}, "jmp 4"},
		{Inst{Op: OpJr, Rs1: 31}, "jr r31"},
		{Inst{Op: OpFmov, Rd: F(1), Rs1: F(2)}, "fmov f1, f2"},
		{Inst{Op: OpLui, Rd: 1, Imm: 3}, "lui r1, 3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
