// Package isa defines the mini RISC instruction set used by the
// functional emulator and the detailed out-of-order timing model.
//
// The ISA is a stand-in for SimpleScalar's PISA: a load/store
// architecture with 32 integer and 32 floating-point registers,
// fixed-size instructions and a small, orthogonal opcode set. It is
// deliberately simple — the sampling framework only needs a
// deterministic committed-instruction stream with realistic control
// flow and memory behaviour, not a full commercial ISA.
package isa

import "fmt"

// NumIntRegs and NumFPRegs are the architectural register-file sizes
// (32 integer, 32 floating point, per Table I of the paper).
const (
	NumIntRegs = 32
	NumFPRegs  = 32
)

// Reg names an architectural register. Integer registers are
// [0, NumIntRegs); floating-point registers are offset by FPBase so a
// single namespace covers both files.
type Reg uint8

// FPBase is the offset of the floating-point register file within the
// unified Reg namespace.
const FPBase Reg = 32

// Conventional integer register roles. R0 is hard-wired to zero, like
// MIPS $zero; writes to it are discarded.
const (
	RZero Reg = 0  // always reads as 0
	RSP   Reg = 29 // stack pointer by convention
	RRA   Reg = 31 // link register for JAL
)

// F returns the unified-namespace register for floating-point register
// number i.
func F(i int) Reg { return FPBase + Reg(i) }

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= FPBase }

// String renders the register in assembly syntax (r0..r31, f0..f31).
func (r Reg) String() string {
	if r.IsFP() {
		return fmt.Sprintf("f%d", int(r-FPBase))
	}
	return fmt.Sprintf("r%d", int(r))
}

// Op is an operation code.
type Op uint8

// Opcode space. Grouped by functional class; Class() derives the
// class used for functional-unit scheduling in the timing model.
const (
	OpNop Op = iota

	// Integer ALU, register-register.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSlt // set-less-than

	// Integer ALU, register-immediate.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpShli
	OpShri
	OpSlti
	OpLui // load upper immediate (rd = imm << 16)

	// Memory.
	OpLd  // rd = mem[rs1+imm] (64-bit int)
	OpSt  // mem[rs1+imm] = rs2
	OpFld // fd = mem[rs1+imm] (float64)
	OpFst // mem[rs1+imm] = fs2

	// Floating point.
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFneg
	OpFmov
	OpCvtIF // int -> float
	OpCvtFI // float -> int (truncate)
	OpFcmpLt
	OpFcmpEq

	// Control.
	OpBeq // branch if rs1 == rs2
	OpBne
	OpBlt
	OpBge
	OpJmp // unconditional direct jump
	OpJal // jump and link (rd = return address)
	OpJr  // jump register (indirect)
	OpHalt

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// Class partitions opcodes by the functional unit that executes them
// in the detailed model.
type Class uint8

// Functional-unit classes, mirroring SimpleScalar's resource pools
// (Table I: integer ALU, load/store units, FP adders, integer
// MULT/DIV, FP MULT/DIV).
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul // integer multiply/divide
	ClassLoad
	ClassStore
	ClassFPAdd // FP add/sub/compare/convert/move
	ClassFPMul // FP multiply/divide
	ClassBranch
	NumClasses
)

var opInfo = [NumOps]struct {
	name  string
	class Class
}{
	OpNop:    {"nop", ClassNop},
	OpAdd:    {"add", ClassIntALU},
	OpSub:    {"sub", ClassIntALU},
	OpMul:    {"mul", ClassIntMul},
	OpDiv:    {"div", ClassIntMul},
	OpRem:    {"rem", ClassIntMul},
	OpAnd:    {"and", ClassIntALU},
	OpOr:     {"or", ClassIntALU},
	OpXor:    {"xor", ClassIntALU},
	OpShl:    {"shl", ClassIntALU},
	OpShr:    {"shr", ClassIntALU},
	OpSlt:    {"slt", ClassIntALU},
	OpAddi:   {"addi", ClassIntALU},
	OpAndi:   {"andi", ClassIntALU},
	OpOri:    {"ori", ClassIntALU},
	OpXori:   {"xori", ClassIntALU},
	OpShli:   {"shli", ClassIntALU},
	OpShri:   {"shri", ClassIntALU},
	OpSlti:   {"slti", ClassIntALU},
	OpLui:    {"lui", ClassIntALU},
	OpLd:     {"ld", ClassLoad},
	OpSt:     {"st", ClassStore},
	OpFld:    {"fld", ClassLoad},
	OpFst:    {"fst", ClassStore},
	OpFadd:   {"fadd", ClassFPAdd},
	OpFsub:   {"fsub", ClassFPAdd},
	OpFmul:   {"fmul", ClassFPMul},
	OpFdiv:   {"fdiv", ClassFPMul},
	OpFneg:   {"fneg", ClassFPAdd},
	OpFmov:   {"fmov", ClassFPAdd},
	OpCvtIF:  {"cvtif", ClassFPAdd},
	OpCvtFI:  {"cvtfi", ClassFPAdd},
	OpFcmpLt: {"fcmplt", ClassFPAdd},
	OpFcmpEq: {"fcmpeq", ClassFPAdd},
	OpBeq:    {"beq", ClassBranch},
	OpBne:    {"bne", ClassBranch},
	OpBlt:    {"blt", ClassBranch},
	OpBge:    {"bge", ClassBranch},
	OpJmp:    {"jmp", ClassBranch},
	OpJal:    {"jal", ClassBranch},
	OpJr:     {"jr", ClassBranch},
	OpHalt:   {"halt", ClassNop},
}

// String returns the assembly mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < NumOps {
		return opInfo[o].name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class returns the functional-unit class executing o.
func (o Op) Class() Class {
	if int(o) < NumOps {
		return opInfo[o].class
	}
	return ClassNop
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return int(o) < NumOps }

// IsBranch reports whether the opcode redirects control flow.
func (o Op) IsBranch() bool { return o.Class() == ClassBranch }

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// IsMem reports whether the opcode accesses data memory.
func (o Op) IsMem() bool {
	c := o.Class()
	return c == ClassLoad || c == ClassStore
}

// IsLoad reports whether the opcode is a memory load.
func (o Op) IsLoad() bool { return o.Class() == ClassLoad }

// IsStore reports whether the opcode is a memory store.
func (o Op) IsStore() bool { return o.Class() == ClassStore }

// IsFP reports whether the opcode executes in the FP pipeline.
func (o Op) IsFP() bool {
	c := o.Class()
	return c == ClassFPAdd || c == ClassFPMul
}

// Inst is a decoded instruction. PC-relative targets of branches are
// held as absolute instruction indices (the program counter counts
// instructions, not bytes; InstBytes converts for cache indexing).
type Inst struct {
	Op   Op
	Rd   Reg   // destination (integer or FP namespace)
	Rs1  Reg   // first source
	Rs2  Reg   // second source
	Imm  int64 // immediate / displacement
	Targ int64 // absolute branch/jump target (instruction index)
}

// InstBytes is the architectural size of one instruction in bytes,
// used to derive instruction-cache addresses from PC indices.
const InstBytes = 8

// Dests returns the destination register, if any, and whether one
// exists. R0 never counts as a destination.
func (in *Inst) Dests() (Reg, bool) {
	switch in.Op {
	case OpNop, OpHalt, OpSt, OpFst, OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpJr:
		return 0, false
	}
	if in.Rd == RZero {
		return 0, false
	}
	return in.Rd, true
}

// Sources appends the source registers of the instruction to dst and
// returns the extended slice. R0 is excluded (it has no producer).
func (in *Inst) Sources(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != RZero {
			dst = append(dst, r)
		}
	}
	switch in.Op {
	case OpNop, OpHalt, OpJmp, OpJal, OpLui:
		// no register sources
	case OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpSlti, OpLd, OpFld, OpJr:
		add(in.Rs1)
	case OpSt, OpFst:
		add(in.Rs1)
		add(in.Rs2)
	case OpFneg, OpFmov, OpCvtIF, OpCvtFI:
		add(in.Rs1)
	default:
		add(in.Rs1)
		add(in.Rs2)
	}
	return dst
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch in.Op {
	case OpNop, OpHalt:
		return in.Op.String()
	case OpJmp:
		return fmt.Sprintf("jmp %d", in.Targ)
	case OpJal:
		return fmt.Sprintf("jal %s, %d", in.Rd, in.Targ)
	case OpJr:
		return fmt.Sprintf("jr %s", in.Rs1)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rs1, in.Rs2, in.Targ)
	case OpLd, OpFld:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case OpSt, OpFst:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpSlti:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpLui:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case OpFneg, OpFmov, OpCvtIF, OpCvtFI:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs1)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

// Latency returns the execution latency in cycles of the opcode on its
// functional unit, mirroring SimpleScalar's defaults.
func (o Op) Latency() int {
	switch o.Class() {
	case ClassIntALU:
		return 1
	case ClassIntMul:
		if o == OpMul {
			return 3
		}
		return 12 // div/rem
	case ClassLoad, ClassStore:
		return 1 // address generation; cache latency added separately
	case ClassFPAdd:
		return 2
	case ClassFPMul:
		if o == OpFmul {
			return 4
		}
		return 12 // fdiv
	case ClassBranch:
		return 1
	}
	return 1
}
