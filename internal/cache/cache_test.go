package cache

import (
	"testing"
	"testing/quick"
)

func testMem() *Memory { return NewMemory(150, 10, 8, 32) }

func smallCache(t *testing.T, bytes int64, assoc int, next Level) *Cache {
	t.Helper()
	c, err := New(Config{Name: "t", TotalBytes: bytes, Assoc: assoc, BlockBytes: 32, Latency: 1}, next)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "ok", TotalBytes: 8192, Assoc: 2, BlockBytes: 32, Latency: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "zero", TotalBytes: 0, Assoc: 1, BlockBytes: 32, Latency: 1},
		{Name: "npot-block", TotalBytes: 8192, Assoc: 2, BlockBytes: 48, Latency: 1},
		{Name: "npot-sets", TotalBytes: 96, Assoc: 1, BlockBytes: 32, Latency: 1},
		{Name: "tiny", TotalBytes: 32, Assoc: 4, BlockBytes: 32, Latency: 1},
		{Name: "latency", TotalBytes: 8192, Assoc: 2, BlockBytes: 32, Latency: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted", c.Name)
		}
	}
	if _, err := New(good, nil); err == nil {
		t.Error("New with nil next accepted")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := smallCache(t, 1024, 2, testMem())
	lat1 := c.Access(0x100, false)
	if lat1 <= 1 {
		t.Errorf("cold access latency %d, want miss latency > 1", lat1)
	}
	lat2 := c.Access(0x100, false)
	if lat2 != 1 {
		t.Errorf("second access latency %d, want 1 (hit)", lat2)
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Misses != 1 || s.Hits() != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSameBlockDifferentWordsHit(t *testing.T) {
	c := smallCache(t, 1024, 2, testMem())
	c.Access(0x100, false)
	if lat := c.Access(0x118, false); lat != 1 { // same 32B block
		t.Errorf("same-block access latency %d, want 1", lat)
	}
	if lat := c.Access(0x120, false); lat == 1 { // next block
		t.Errorf("next-block access latency %d, want miss", lat)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 sets x 2 ways x 32B = 128 B. Blocks mapping to set 0 are
	// multiples of 64.
	c := smallCache(t, 128, 2, testMem())
	c.Access(0*64, false)   // set 0, block A
	c.Access(1*64+32, true) // set 1
	c.Access(2*64, false)   // set 0, block B
	c.Access(0*64, false)   // touch A: makes B the LRU
	c.Access(4*64, false)   // set 0, block C: evicts B
	if lat := c.Access(0*64, false); lat != 1 {
		t.Error("A evicted but should have been MRU")
	}
	if lat := c.Access(2*64, false); lat == 1 {
		t.Error("B still resident but should have been LRU-evicted")
	}
}

func TestWritebackCounted(t *testing.T) {
	c := smallCache(t, 64, 1, testMem()) // 2 sets, direct mapped
	c.Access(0, true)                    // dirty block in set 0
	c.Access(64, false)                  // evicts dirty block
	if wb := c.Stats().Writebacks; wb != 1 {
		t.Errorf("writebacks = %d, want 1", wb)
	}
	// Clean eviction: no writeback.
	c.Access(128, false)
	if wb := c.Stats().Writebacks; wb != 1 {
		t.Errorf("writebacks = %d after clean eviction, want 1", wb)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := smallCache(t, 64, 1, testMem())
	// Two blocks mapping to the same set always conflict.
	for i := 0; i < 10; i++ {
		c.Access(0, false)
		c.Access(64, false)
	}
	s := c.Stats()
	if s.Misses != 20 {
		t.Errorf("misses = %d, want 20 (ping-pong)", s.Misses)
	}
}

func TestMemoryLatency(t *testing.T) {
	m := testMem()
	// 32B block in 8B chunks: 150 + 3*10.
	if lat := m.Access(0, false); lat != 180 {
		t.Errorf("memory latency = %d, want 180", lat)
	}
	if m.Stats().Accesses != 1 || m.Stats().Misses != 1 {
		t.Errorf("memory stats = %+v", m.Stats())
	}
}

func TestHierarchyComposition(t *testing.T) {
	h, err := NewHierarchy(HierarchyConfig{
		IL1:      Config{Name: "il1", TotalBytes: 8 << 10, Assoc: 2, BlockBytes: 32, Latency: 1},
		DL1:      Config{Name: "dl1", TotalBytes: 16 << 10, Assoc: 4, BlockBytes: 32, Latency: 2},
		L2:       Config{Name: "ul2", TotalBytes: 1 << 20, Assoc: 4, BlockBytes: 32, Latency: 20},
		MemFirst: 150,
		MemNext:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cold DL1 access goes DL1 -> L2 -> memory.
	lat := h.DL1.Access(0x1000, false)
	want := 2 + 20 + 180
	if lat != want {
		t.Errorf("cold DL1 latency = %d, want %d", lat, want)
	}
	// Second access: DL1 hit.
	if lat := h.DL1.Access(0x1000, false); lat != 2 {
		t.Errorf("warm DL1 latency = %d, want 2", lat)
	}
	// IL1 miss to a block already in shared L2: no memory access.
	h.Mem.ResetStats()
	lat = h.IL1.Access(0x1000, false)
	if lat != 1+20 {
		t.Errorf("IL1 miss/L2 hit latency = %d, want 21", lat)
	}
	if h.Mem.Stats().Accesses != 0 {
		t.Error("L2 hit still accessed memory")
	}
}

func TestHierarchyL1StatsAggregate(t *testing.T) {
	h, err := NewHierarchy(HierarchyConfig{
		IL1:      Config{Name: "il1", TotalBytes: 1 << 10, Assoc: 2, BlockBytes: 32, Latency: 1},
		DL1:      Config{Name: "dl1", TotalBytes: 1 << 10, Assoc: 2, BlockBytes: 32, Latency: 2},
		L2:       Config{Name: "ul2", TotalBytes: 1 << 16, Assoc: 4, BlockBytes: 32, Latency: 20},
		MemFirst: 150,
		MemNext:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.IL1.Access(0, false)
	h.IL1.Access(0, false)
	h.DL1.Access(4096, true)
	s := h.L1Stats()
	if s.Accesses != 3 || s.Misses != 2 {
		t.Errorf("aggregate L1 stats = %+v", s)
	}
}

func TestFlush(t *testing.T) {
	c := smallCache(t, 1024, 2, testMem())
	c.Access(0x40, true)
	c.Flush()
	if s := c.Stats(); s.Accesses != 0 {
		t.Errorf("stats after flush = %+v", s)
	}
	if lat := c.Access(0x40, false); lat == 1 {
		t.Error("block survived flush")
	}
}

func TestHitRateEdgeCases(t *testing.T) {
	var s Stats
	if s.HitRate() != 1 {
		t.Errorf("empty HitRate = %v, want 1", s.HitRate())
	}
	s = Stats{Accesses: 10, Misses: 4}
	if s.HitRate() != 0.6 {
		t.Errorf("HitRate = %v, want 0.6", s.HitRate())
	}
	if s.MissRate() != 0.4 {
		t.Errorf("MissRate = %v, want 0.4", s.MissRate())
	}
}

// Property: a cache with capacity >= working set never misses after
// the first pass, for any access pattern within the working set.
func TestNoCapacityMissesWithinWorkingSet(t *testing.T) {
	f := func(pattern []uint8) bool {
		c := MustNew(Config{Name: "q", TotalBytes: 16 << 10, Assoc: 8, BlockBytes: 32, Latency: 1}, testMem())
		// Warm all 256 possible blocks (8 KiB worth).
		for i := int64(0); i < 256; i++ {
			c.Access(i*32, false)
		}
		for _, p := range pattern {
			if lat := c.Access(int64(p)*32, false); lat != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: misses never exceed accesses; stats are monotone.
func TestStatsInvariant(t *testing.T) {
	f := func(addrs []int64, writes []bool) bool {
		c := MustNew(Config{Name: "q", TotalBytes: 1 << 10, Assoc: 2, BlockBytes: 32, Latency: 1}, testMem())
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			if a < 0 {
				a = -a
			}
			c.Access(a, w)
		}
		s := c.Stats()
		return s.Misses <= s.Accesses && s.Accesses == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFIFOIgnoresReuse(t *testing.T) {
	// 1 set, 2 ways. Under FIFO, touching A doesn't protect it.
	cfg := Config{Name: "fifo", TotalBytes: 64, Assoc: 2, BlockBytes: 32, Latency: 1, Policy: FIFO}
	c := MustNew(cfg, testMem())
	c.Access(0, false)  // A inserted
	c.Access(32, false) // B inserted
	c.Access(0, false)  // touch A (hit, no stamp refresh under FIFO)
	c.Access(64, false) // C evicts A (oldest insert)
	if lat := c.Access(32, false); lat != 1 {
		t.Error("FIFO evicted the newer block")
	}
	if lat := c.Access(0, false); lat == 1 {
		t.Error("FIFO kept the reused oldest block")
	}
	// Same pattern under LRU keeps A.
	l := MustNew(Config{Name: "lru", TotalBytes: 64, Assoc: 2, BlockBytes: 32, Latency: 1}, testMem())
	l.Access(0, false)
	l.Access(32, false)
	l.Access(0, false)
	l.Access(64, false) // evicts B under LRU
	if lat := l.Access(0, false); lat != 1 {
		t.Error("LRU evicted the recently used block")
	}
}

func TestRandomPolicyDeterministic(t *testing.T) {
	run := func() []uint64 {
		cfg := Config{Name: "rnd", TotalBytes: 128, Assoc: 4, BlockBytes: 32, Latency: 1, Policy: Random}
		c := MustNew(cfg, testMem())
		var lats []uint64
		for i := int64(0); i < 64; i++ {
			lats = append(lats, uint64(c.Access((i%9)*32, false)))
		}
		return lats
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("random policy nondeterministic at access %d", i)
		}
	}
}

func TestRandomPolicyFillsInvalidFirst(t *testing.T) {
	cfg := Config{Name: "rnd", TotalBytes: 128, Assoc: 4, BlockBytes: 32, Latency: 1, Policy: Random}
	c := MustNew(cfg, testMem())
	// Fill one set's 4 ways with distinct blocks; all must coexist
	// because invalid ways are preferred over eviction.
	for i := int64(0); i < 4; i++ {
		c.Access(i*32*1, false) // same set? blocks 0..3 map to sets 0..0? sets = 1
	}
	hits := 0
	for i := int64(0); i < 4; i++ {
		if c.Access(i*32, false) == 1 {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("only %d of 4 blocks resident after cold fill", hits)
	}
}

func TestPolicyValidation(t *testing.T) {
	bad := Config{Name: "p", TotalBytes: 1024, Assoc: 2, BlockBytes: 32, Latency: 1, Policy: "plru"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
}
