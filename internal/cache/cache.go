// Package cache models the memory hierarchy of the detailed
// simulator: set-associative write-back caches with LRU replacement
// composed into an IL1/DL1 + unified-L2 + main-memory hierarchy, with
// the hit/miss statistics the paper's Table II reports (L1 and L2 hit
// rates).
package cache

import "fmt"

// Replacement selects the victim policy of a set-associative cache.
type Replacement string

// Replacement policies.
const (
	// LRU evicts the least recently used block (the default, matching
	// sim-outorder's "l").
	LRU Replacement = "lru"
	// FIFO evicts the oldest-inserted block regardless of reuse.
	FIFO Replacement = "fifo"
	// Random evicts a deterministic pseudo-random way (xorshift), like
	// sim-outorder's "r" but reproducible.
	Random Replacement = "random"
)

// Config describes one cache level.
type Config struct {
	Name       string
	TotalBytes int64 // capacity
	Assoc      int   // ways; 1 = direct mapped
	BlockBytes int64
	Latency    int // access latency in cycles on a hit
	// Policy selects the replacement policy; empty means LRU.
	Policy Replacement
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.TotalBytes <= 0 || c.Assoc <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache %q: block size %d not a power of two", c.Name, c.BlockBytes)
	}
	sets := c.TotalBytes / (c.BlockBytes * int64(c.Assoc))
	if sets <= 0 {
		return fmt.Errorf("cache %q: capacity %d too small for %d-way, %dB blocks", c.Name, c.TotalBytes, c.Assoc, c.BlockBytes)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	if c.Latency < 1 {
		return fmt.Errorf("cache %q: latency %d < 1", c.Name, c.Latency)
	}
	switch c.Policy {
	case "", LRU, FIFO, Random:
	default:
		return fmt.Errorf("cache %q: unknown replacement policy %q", c.Name, c.Policy)
	}
	return nil
}

// Stats holds access statistics for one level.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// Hits returns the hit count.
func (s Stats) Hits() uint64 { return s.Accesses - s.Misses }

// HitRate returns hits/accesses, or 1 when the level was never
// accessed (a never-touched cache cannot have missed).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 1
	}
	return float64(s.Hits()) / float64(s.Accesses)
}

// MissRate returns 1 - HitRate.
func (s Stats) MissRate() float64 { return 1 - s.HitRate() }

// Level is anything that can service a block access: a cache or main
// memory.
type Level interface {
	// Access services a read or write of the block containing addr and
	// returns the total latency in cycles.
	Access(addr int64, write bool) int
	// Name identifies the level.
	Name() string
}

// Cache is one set-associative write-back, write-allocate cache level.
type Cache struct {
	cfg      Config
	next     Level
	setMask  int64
	blkShift uint
	tags     []int64 // sets*assoc; -1 = invalid
	dirty    []bool
	stamp    []uint64 // LRU or FIFO timestamps
	clock    uint64
	policy   Replacement
	rngState uint64 // xorshift state for Random
	stats    Stats
}

// New builds a cache level backed by next (the next-outer level).
func New(cfg Config, next Level) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if next == nil {
		return nil, fmt.Errorf("cache %q: nil next level", cfg.Name)
	}
	sets := cfg.TotalBytes / (cfg.BlockBytes * int64(cfg.Assoc))
	shift := uint(0)
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		shift++
	}
	n := int(sets) * cfg.Assoc
	policy := cfg.Policy
	if policy == "" {
		policy = LRU
	}
	c := &Cache{
		cfg:      cfg,
		next:     next,
		setMask:  sets - 1,
		blkShift: shift,
		tags:     make([]int64, n),
		dirty:    make([]bool, n),
		stamp:    make([]uint64, n),
		policy:   policy,
		rngState: 0x9e3779b97f4a7c15,
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c, nil
}

// MustNew is New, panicking on configuration errors.
func MustNew(cfg Config, next Level) *Cache {
	c, err := New(cfg, next)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the configured level name.
func (c *Cache) Name() string { return c.cfg.Name }

// Config returns the level configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the access statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes statistics without flushing contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Flush invalidates all blocks and zeroes statistics.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = -1
		c.dirty[i] = false
		c.stamp[i] = 0
	}
	c.clock = 0
	c.stats = Stats{}
}

// Access looks up the block containing addr, filling on miss, and
// returns the total latency including any next-level latency.
func (c *Cache) Access(addr int64, write bool) int {
	c.stats.Accesses++
	c.clock++
	block := addr >> c.blkShift
	set := block & c.setMask
	base := int(set) * c.cfg.Assoc

	victim := base
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if c.tags[i] == block {
			if c.policy == LRU {
				c.stamp[i] = c.clock
			}
			if write {
				c.dirty[i] = true
			}
			return c.cfg.Latency
		}
		if c.stamp[i] < c.stamp[victim] {
			victim = i
		}
	}
	if c.policy == Random {
		// Prefer an invalid way; otherwise evict pseudo-randomly.
		victim = -1
		for w := 0; w < c.cfg.Assoc; w++ {
			if c.tags[base+w] < 0 {
				victim = base + w
				break
			}
		}
		if victim < 0 {
			c.rngState ^= c.rngState << 13
			c.rngState ^= c.rngState >> 7
			c.rngState ^= c.rngState << 17
			victim = base + int(c.rngState%uint64(c.cfg.Assoc))
		}
	}

	// Miss: fill from the next level, evicting the victim.
	c.stats.Misses++
	if c.tags[victim] >= 0 && c.dirty[victim] {
		c.stats.Writebacks++
		// Write-back traffic is accounted but, as in sim-outorder's
		// default, does not add to the demand-miss latency (the
		// writeback buffer hides it).
	}
	lat := c.cfg.Latency + c.next.Access(addr, false)
	c.tags[victim] = block
	c.dirty[victim] = write
	c.stamp[victim] = c.clock
	return lat
}

// Memory is the hierarchy terminal with SimpleScalar's two-part
// latency: First cycles for the first chunk and Next cycles for each
// following ChunkBytes chunk of the requested block.
type Memory struct {
	First      int
	Next       int
	ChunkBytes int64
	BlockBytes int64 // block size transferred per request
	stats      Stats
}

// NewMemory builds the main-memory model. blockBytes is the size of
// the blocks requested by the innermost cache above memory.
func NewMemory(first, next int, chunkBytes, blockBytes int64) *Memory {
	if chunkBytes <= 0 {
		chunkBytes = 8
	}
	if blockBytes < chunkBytes {
		blockBytes = chunkBytes
	}
	return &Memory{First: first, Next: next, ChunkBytes: chunkBytes, BlockBytes: blockBytes}
}

// Name implements Level.
func (m *Memory) Name() string { return "mem" }

// Stats returns access statistics.
func (m *Memory) Stats() Stats { return m.stats }

// ResetStats zeroes statistics.
func (m *Memory) ResetStats() { m.stats = Stats{} }

// Access implements Level: every access is a miss to DRAM.
func (m *Memory) Access(addr int64, write bool) int {
	m.stats.Accesses++
	m.stats.Misses++
	chunks := int(m.BlockBytes / m.ChunkBytes)
	return m.First + (chunks-1)*m.Next
}

// Hierarchy bundles the full memory system of one core.
type Hierarchy struct {
	IL1 *Cache
	DL1 *Cache
	L2  *Cache
	Mem *Memory
}

// HierarchyConfig describes a complete memory system.
type HierarchyConfig struct {
	IL1      Config
	DL1      Config
	L2       Config
	MemFirst int
	MemNext  int
}

// NewHierarchy builds IL1 and DL1 sharing a unified L2 over memory.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	mem := NewMemory(cfg.MemFirst, cfg.MemNext, 8, cfg.L2.BlockBytes)
	l2, err := New(cfg.L2, mem)
	if err != nil {
		return nil, err
	}
	il1, err := New(cfg.IL1, l2)
	if err != nil {
		return nil, err
	}
	dl1, err := New(cfg.DL1, l2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{IL1: il1, DL1: dl1, L2: l2, Mem: mem}, nil
}

// Flush invalidates every level.
func (h *Hierarchy) Flush() {
	h.IL1.Flush()
	h.DL1.Flush()
	h.L2.Flush()
	h.Mem.ResetStats()
}

// L1Stats returns the combined IL1+DL1 statistics (the paper's "L1
// cache hit rate" aggregates both).
func (h *Hierarchy) L1Stats() Stats {
	i, d := h.IL1.Stats(), h.DL1.Stats()
	return Stats{
		Accesses:   i.Accesses + d.Accesses,
		Misses:     i.Misses + d.Misses,
		Writebacks: i.Writebacks + d.Writebacks,
	}
}
