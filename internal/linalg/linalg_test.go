package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDotNormDist(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	if got := Dot(a, b); got != 12 {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := Dist2(a, b); got != 9+49+9 {
		t.Errorf("Dist2 = %v", got)
	}
	if got := Dist([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAXPYScale(t *testing.T) {
	dst := []float64{1, 2}
	AXPY(dst, 2, []float64{10, 20})
	if dst[0] != 21 || dst[1] != 42 {
		t.Errorf("AXPY = %v", dst)
	}
	Scale(dst, 0.5)
	if dst[0] != 10.5 || dst[1] != 21 {
		t.Errorf("Scale = %v", dst)
	}
}

func TestNormalizeL1(t *testing.T) {
	v := []float64{2, 6, 2}
	NormalizeL1(v)
	if !approx(v[0], 0.2, 1e-12) || !approx(v[1], 0.6, 1e-12) {
		t.Errorf("NormalizeL1 = %v", v)
	}
	zero := []float64{0, 0}
	NormalizeL1(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("NormalizeL1 zero vector = %v", zero)
	}
}

func TestMean(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	mu := Mean(rows)
	if mu[0] != 3 || mu[1] != 4 {
		t.Errorf("Mean = %v", mu)
	}
	if Mean(nil) != nil {
		t.Error("Mean(nil) != nil")
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Perfectly correlated 2D data: x, 2x.
	rows := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	cov := Covariance(rows)
	if !approx(cov[0][0], 1, 1e-12) {
		t.Errorf("cov[0][0] = %v, want 1", cov[0][0])
	}
	if !approx(cov[0][1], 2, 1e-12) || !approx(cov[1][0], 2, 1e-12) {
		t.Errorf("cov off-diag = %v, %v", cov[0][1], cov[1][0])
	}
	if !approx(cov[1][1], 4, 1e-12) {
		t.Errorf("cov[1][1] = %v, want 4", cov[1][1])
	}
}

func TestJacobiEigenDiagonal(t *testing.T) {
	a := [][]float64{{3, 0}, {0, 1}}
	vals, vecs, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(vals[0], 3, 1e-12) || !approx(vals[1], 1, 1e-12) {
		t.Errorf("vals = %v", vals)
	}
	// First eigenvector should align with e0.
	if !approx(math.Abs(vecs[0][0]), 1, 1e-9) || !approx(vecs[0][1], 0, 1e-9) {
		t.Errorf("vecs[0] = %v", vecs[0])
	}
}

func TestJacobiEigenSymmetric(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := [][]float64{{2, 1}, {1, 2}}
	vals, vecs, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(vals[0], 3, 1e-9) || !approx(vals[1], 1, 1e-9) {
		t.Errorf("vals = %v", vals)
	}
	// Eigenvector for 3 is (1,1)/sqrt2 up to sign.
	want := 1 / math.Sqrt(2)
	if !approx(math.Abs(vecs[0][0]), want, 1e-9) || !approx(math.Abs(vecs[0][1]), want, 1e-9) {
		t.Errorf("vecs[0] = %v", vecs[0])
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	// Random symmetric matrix: A = V^T diag(vals) V must reproduce A.
	rng := rand.New(rand.NewSource(7))
	n := 6
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			x := rng.NormFloat64()
			a[i][j] = x
			a[j][i] = x
		}
	}
	vals, vecs, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += vecs[k][i] * vals[k] * vecs[k][j]
			}
			if !approx(s, a[i][j], 1e-8) {
				t.Fatalf("reconstruction (%d,%d) = %v, want %v", i, j, s, a[i][j])
			}
		}
	}
	// Eigenvalues descending.
	for i := 1; i < n; i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Errorf("eigenvalues not descending: %v", vals)
		}
	}
	// Eigenvectors orthonormal.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !approx(Dot(vecs[i], vecs[j]), want, 1e-9) {
				t.Errorf("vecs not orthonormal at (%d,%d)", i, j)
			}
		}
	}
}

func TestJacobiEigenNonSquare(t *testing.T) {
	if _, _, err := JacobiEigen([][]float64{{1, 2}}); err == nil {
		t.Error("non-square accepted")
	}
}

func TestFitPCADirection(t *testing.T) {
	// Points along the (1,1) diagonal with small noise: first PC must
	// align with (1,1)/sqrt2 and capture most variance.
	rng := rand.New(rand.NewSource(3))
	var rows [][]float64
	for i := 0; i < 200; i++ {
		x := rng.NormFloat64() * 10
		rows = append(rows, []float64{x + rng.NormFloat64()*0.1, x + rng.NormFloat64()*0.1})
	}
	p, err := FitPCA(rows)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Sqrt(2)
	if !approx(math.Abs(p.Components[0][0]), want, 0.01) || !approx(math.Abs(p.Components[0][1]), want, 0.01) {
		t.Errorf("first PC = %v", p.Components[0])
	}
	if p.Variances[0] < 100*p.Variances[1] {
		t.Errorf("variance ratio too small: %v", p.Variances)
	}
}

func TestPCAProjectAndFirstComponent(t *testing.T) {
	rows := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	p, err := FitPCA(rows)
	if err != nil {
		t.Fatal(err)
	}
	fc := p.FirstComponent(rows)
	if len(fc) != 4 {
		t.Fatalf("FirstComponent length %d", len(fc))
	}
	// Projections of collinear equally spaced points are equally
	// spaced and centered.
	var sum float64
	for _, v := range fc {
		sum += v
	}
	if !approx(sum, 0, 1e-9) {
		t.Errorf("projections not centered: %v", fc)
	}
	d1 := fc[1] - fc[0]
	for i := 2; i < 4; i++ {
		if !approx(fc[i]-fc[i-1], d1, 1e-9) {
			t.Errorf("projections not equally spaced: %v", fc)
		}
	}
	// Project with k larger than dimension clamps.
	if got := p.Project([]float64{1, 1}, 10); len(got) != 2 {
		t.Errorf("Project clamp = %v", got)
	}
}

func TestFitPCAEmpty(t *testing.T) {
	if _, err := FitPCA(nil); err == nil {
		t.Error("FitPCA(nil) succeeded")
	}
}

// Property: Dist2 is symmetric, non-negative, and zero iff equal
// inputs (for finite data).
func TestDistProperties(t *testing.T) {
	f := func(a, b [4]float64) bool {
		av, bv := a[:], b[:]
		d1, d2 := Dist2(av, bv), Dist2(bv, av)
		if math.IsNaN(d1) || math.IsInf(d1, 0) {
			return true // overflow of quick-generated extremes
		}
		return d1 == d2 && d1 >= 0 && Dist2(av, av) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: NormalizeL1 yields an L1 norm of ~1 for non-zero input.
func TestNormalizeL1Property(t *testing.T) {
	f := func(raw [8]float64) bool {
		v := make([]float64, 8)
		nonzero := false
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			v[i] = math.Mod(x, 1000)
			if v[i] != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			return true
		}
		NormalizeL1(v)
		var sum float64
		for _, x := range v {
			sum += math.Abs(x)
		}
		return approx(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dist2Bounded is bit-identical to Dist2 whenever the true
// distance does not exceed the bound, and returns a value strictly
// greater than the bound otherwise.
func TestDist2BoundedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 2000; trial++ {
		d := rng.Intn(40) + 1
		a := make([]float64, d)
		b := make([]float64, d)
		for i := range a {
			a[i] = rng.NormFloat64() * 10
			b[i] = rng.NormFloat64() * 10
		}
		exact := Dist2(a, b)
		for _, bound := range []float64{
			math.Inf(1), exact, exact * 1.5, exact * 0.5, exact * 0.01, 0,
		} {
			got := Dist2Bounded(a, b, bound)
			if exact <= bound {
				if math.Float64bits(got) != math.Float64bits(exact) {
					t.Fatalf("d=%d bound=%v: got %v, want exact %v", d, bound, got, exact)
				}
			} else if !(got > bound) {
				t.Fatalf("d=%d bound=%v: got %v, want > bound (exact %v)", d, bound, got, exact)
			}
		}
	}
}

// Dist2Bounded must propagate NaN exactly like Dist2 instead of
// early-exiting past it.
func TestDist2BoundedNaN(t *testing.T) {
	a := []float64{1, math.NaN(), 2, 3, 4}
	b := []float64{0, 0, 0, 0, 0}
	if got := Dist2Bounded(a, b, 0.5); !math.IsNaN(got) {
		t.Errorf("Dist2Bounded with NaN input = %v, want NaN", got)
	}
}
