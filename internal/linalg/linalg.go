// Package linalg provides the small dense linear-algebra kernel the
// phase-analysis pipeline needs: vector arithmetic, covariance
// matrices, a Jacobi eigensolver for symmetric matrices, and PCA
// (used to project BBV trajectories onto their first principal
// component for Figure 1).
package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Dot returns the inner product of a and b, which must have equal
// length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		//mlpalint:allow panic (length assertion: caller bug, not runtime input)
		panic(fmt.Sprintf("linalg: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Dist2 returns the squared Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		//mlpalint:allow panic (length assertion: caller bug, not runtime input)
		panic(fmt.Sprintf("linalg: Dist2 length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(Dist2(a, b)) }

// Dist2Bounded returns the squared Euclidean distance between a and b,
// abandoning the accumulation early once the partial sum exceeds
// bound. The partial sums are formed in exactly Dist2's order, one
// squared difference at a time, and the early exit triggers only when
// the partial sum is strictly greater than bound — so whenever the
// true distance is <= bound the returned value is bit-identical to
// Dist2(a, b), and otherwise the returned value is some partial sum
// that is itself > bound. Callers comparing the result against a
// threshold no larger than bound therefore decide exactly as if they
// had called Dist2. This is the pruning primitive for the k-means
// assignment loops; unlike norm-expansion or triangle-inequality
// bounds it changes no floating-point result (see docs/PERFORMANCE.md).
//
// A NaN coordinate makes the partial sum NaN, which is never > bound,
// so NaN inputs run to completion and return NaN exactly like Dist2.
func Dist2Bounded(a, b []float64, bound float64) float64 {
	if len(a) != len(b) {
		//mlpalint:allow panic (length assertion: caller bug, not runtime input)
		panic(fmt.Sprintf("linalg: Dist2Bounded length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	i := 0
	// Check the bound every four dimensions: often enough to cut work
	// on far-away candidates, rare enough to stay out of the way on
	// the dense accumulation.
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		s += d0 * d0
		d1 := a[i+1] - b[i+1]
		s += d1 * d1
		d2 := a[i+2] - b[i+2]
		s += d2 * d2
		d3 := a[i+3] - b[i+3]
		s += d3 * d3
		if s > bound {
			return s
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// AXPY computes dst += alpha * x element-wise.
func AXPY(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		//mlpalint:allow panic (length assertion: caller bug, not runtime input)
		panic(fmt.Sprintf("linalg: AXPY length mismatch %d != %d", len(dst), len(x)))
	}
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// Scale multiplies v by alpha in place.
func Scale(v []float64, alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// NormalizeL1 scales v so its elements sum to 1 (the BBV
// normalization of the SimPoint pipeline). A zero vector is left
// unchanged.
func NormalizeL1(v []float64) {
	var sum float64
	for _, x := range v {
		sum += math.Abs(x)
	}
	if sum == 0 {
		return
	}
	Scale(v, 1/sum)
}

// Mean returns the element-wise mean of the rows.
func Mean(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	mu := make([]float64, len(rows[0]))
	for _, r := range rows {
		AXPY(mu, 1, r)
	}
	Scale(mu, 1/float64(len(rows)))
	return mu
}

// Covariance returns the sample covariance matrix of the rows
// (observations in rows, variables in columns), as a dense d x d
// symmetric matrix in row-major order.
func Covariance(rows [][]float64) [][]float64 {
	n := len(rows)
	if n == 0 {
		return nil
	}
	d := len(rows[0])
	mu := Mean(rows)
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	denom := float64(n - 1)
	if n == 1 {
		denom = 1
	}
	centered := make([]float64, d)
	for _, r := range rows {
		for i := range r {
			centered[i] = r[i] - mu[i]
		}
		for i := 0; i < d; i++ {
			ci := centered[i]
			if ci == 0 {
				continue
			}
			row := cov[i]
			for j := i; j < d; j++ {
				row[j] += ci * centered[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] /= denom
			cov[j][i] = cov[i][j]
		}
	}
	return cov
}

// JacobiEigen diagonalizes the symmetric matrix a (which it does not
// modify) and returns eigenvalues in descending order with their
// eigenvectors as rows of vecs. It fails if a is not square or does
// not converge.
func JacobiEigen(a [][]float64) (vals []float64, vecs [][]float64, err error) {
	n := len(a)
	for _, row := range a {
		if len(row) != n {
			return nil, nil, fmt.Errorf("linalg: JacobiEigen: matrix not square")
		}
	}
	if n == 0 {
		return nil, nil, nil
	}
	// Working copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	// Eigenvector accumulator starts as identity.
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}

	offdiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += m[i][j] * m[i][j]
			}
		}
		return s
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offdiag() < 1e-22 {
			break
		}
		if sweep == maxSweeps-1 {
			return nil, nil, fmt.Errorf("linalg: JacobiEigen did not converge in %d sweeps", maxSweeps)
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-300 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/cols p and q of m.
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				// Accumulate rotation into v (rows are eigenvectors).
				for k := 0; k < n; k++ {
					vpk, vqk := v[p][k], v[q][k]
					v[p][k] = c*vpk - s*vqk
					v[q][k] = s*vpk + c*vqk
				}
			}
		}
	}

	vals = make([]float64, n)
	for i := range vals {
		vals[i] = m[i][i]
	}
	// Sort descending by eigenvalue, carrying eigenvectors along.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return vals[order[i]] > vals[order[j]] })
	outVals := make([]float64, n)
	outVecs := make([][]float64, n)
	for i, o := range order {
		outVals[i] = vals[o]
		outVecs[i] = v[o]
	}
	return outVals, outVecs, nil
}

// PCA holds a principal-component basis fitted to a data set.
type PCA struct {
	MeanVec    []float64
	Components [][]float64 // rows: principal directions, descending variance
	Variances  []float64   // eigenvalues
}

// FitPCA computes the PCA basis of rows.
func FitPCA(rows [][]float64) (*PCA, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("linalg: FitPCA on empty data")
	}
	cov := Covariance(rows)
	vals, vecs, err := JacobiEigen(cov)
	if err != nil {
		return nil, err
	}
	return &PCA{MeanVec: Mean(rows), Components: vecs, Variances: vals}, nil
}

// Project returns the coordinates of v in the first k principal
// components.
func (p *PCA) Project(v []float64, k int) []float64 {
	if k > len(p.Components) {
		k = len(p.Components)
	}
	out := make([]float64, k)
	centered := make([]float64, len(v))
	for i := range v {
		centered[i] = v[i] - p.MeanVec[i]
	}
	for i := 0; i < k; i++ {
		out[i] = Dot(p.Components[i], centered)
	}
	return out
}

// FirstComponent projects each row onto the first principal component
// (the y-axis of the paper's Figure 1).
func (p *PCA) FirstComponent(rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = p.Project(r, 1)[0]
	}
	return out
}
