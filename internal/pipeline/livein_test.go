package pipeline

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"mlpa/internal/bench"
	"mlpa/internal/ckpt"
	"mlpa/internal/config"
	"mlpa/internal/obs"
	"mlpa/internal/simpoint"
	"mlpa/internal/staticanalysis/dataflow"
)

// TestScrubDeadRegsSoundness is the execution-based soundness harness
// for the static live-in sets, run over the full builder suite: at
// every selected simulation point's boundary, clearing each register
// NOT in the static live-in set must leave the sampled simulation
// bit-identical — same estimates, same per-point metrics, same journal
// stream (wall-clock fields excepted). Run with -race in CI.
func TestScrubDeadRegsSoundness(t *testing.T) {
	cfg := config.BaseA()
	for _, spec := range bench.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p := spec.MustProgram(bench.SizeTiny)
			plan, _, _, err := simpoint.Select(p, simpoint.Config{
				IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 8, Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			run := func(scrub bool) (*Estimate, []map[string]any) {
				t.Helper()
				var buf bytes.Buffer
				sink := obs.NewJSONLSink(&buf)
				est, err := ExecutePlan(p, plan, cfg, ExecOptions{
					Warmup:        2000,
					DetailLeadIn:  256,
					RunAhead:      128,
					Workers:       4,
					Obs:           obs.New(sink),
					ScrubDeadRegs: scrub,
				})
				if err != nil {
					t.Fatalf("scrub=%v: %v", scrub, err)
				}
				if err := sink.Err(); err != nil {
					t.Fatal(err)
				}
				return stripWall(est), journalSkeleton(t, &buf)
			}
			refEst, refJournal := run(false)
			scrubEst, scrubJournal := run(true)
			if !reflect.DeepEqual(refEst, scrubEst) {
				t.Errorf("scrubbing statically-dead registers changed the estimate:\n got %s\nwant %s",
					dumpEstimate(scrubEst), dumpEstimate(refEst))
			}
			if !reflect.DeepEqual(refJournal, scrubJournal) {
				t.Error("scrubbing statically-dead registers changed the journal stream")
			}
			// Every point must carry a live-in summary for its boundary.
			for i, rec := range refEst.PointRecords {
				if rec.LiveIn.PC < 0 || rec.LiveIn.PC >= int64(len(p.Code)) {
					t.Fatalf("point %d: live-in pc %d out of range", i, rec.LiveIn.PC)
				}
				if dataflow.FromMasks(rec.LiveIn.Int, rec.LiveIn.FP)&^dataflow.AllRegs != 0 {
					t.Fatalf("point %d: live-in masks set the r0 bit", i)
				}
			}
		})
	}
}

// TestStaticLiveinJournaled: the journal stream carries one
// static_livein record per point, keyed like the point records and
// consistent with the estimate's live-in summaries.
func TestStaticLiveinJournaled(t *testing.T) {
	p := phasedProgram(t, 20)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: 1000, Kmax: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	est, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{Workers: 2, Obs: obs.New(sink)})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var livein []map[string]any
	for _, rec := range recs {
		if ev, _ := rec["ev"].(string); ev == "static_livein" {
			livein = append(livein, rec)
		}
	}
	if len(livein) != len(est.PointRecords) {
		t.Fatalf("%d static_livein records for %d points", len(livein), len(est.PointRecords))
	}
	for i, rec := range livein {
		want := est.PointRecords[i]
		if int(rec["index"].(float64)) != want.Index {
			t.Errorf("record %d: index %v, want %d", i, rec["index"], want.Index)
		}
		if int64(rec["pc"].(float64)) != want.LiveIn.PC {
			t.Errorf("record %d: pc %v, want %d", i, rec["pc"], want.LiveIn.PC)
		}
		if uint32(rec["live_int"].(float64)) != want.LiveIn.Int {
			t.Errorf("record %d: live_int %v, want %d", i, rec["live_int"], want.LiveIn.Int)
		}
		if uint32(rec["live_fp"].(float64)) != want.LiveIn.FP {
			t.Errorf("record %d: live_fp %v, want %d", i, rec["live_fp"], want.LiveIn.FP)
		}
		if rec["mem"].(bool) != want.LiveIn.Mem {
			t.Errorf("record %d: mem %v, want %v", i, rec["mem"], want.LiveIn.Mem)
		}
		if want := dataflow.FromMasks(want.LiveIn.Int, want.LiveIn.FP).String(); rec["regs"] != want {
			t.Errorf("record %d: regs %q, want %q", i, rec["regs"], want)
		}
	}
}

// TestCheckpointLiveIns: MakeCheckpoints records a live-in summary per
// point and ExecuteFromCheckpoints (which scrubs through it) still
// reproduces the plain execution's estimates; a checkpoint whose
// live-in pc disagrees with its state is rejected.
func TestCheckpointLiveIns(t *testing.T) {
	p := phasedProgram(t, 20)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: 1000, Kmax: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := MakeCheckpoints(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.LiveIns) != len(plan.Points) {
		t.Fatalf("%d live-ins for %d points", len(ck.LiveIns), len(plan.Points))
	}
	if _, err := ExecuteFromCheckpoints(p, ck, config.BaseA()); err != nil {
		t.Fatal(err)
	}

	// Corrupt one live-in position: the replay must refuse it.
	ck.LiveIns[0].PC++
	if _, err := ExecuteFromCheckpoints(p, ck, config.BaseA()); err == nil {
		t.Error("mismatched live-in pc not rejected")
	}
	ck.LiveIns[0].PC--

	// Checkpoints without one live-in mask per point are malformed: the
	// scrub is the replay's verification step, so a missing or truncated
	// LiveIns slice is a hard ErrMismatch, never a silent unscrubbed
	// replay.
	ck.LiveIns = nil
	if _, err := ExecuteFromCheckpoints(p, ck, config.BaseA()); !errors.Is(err, ckpt.ErrMismatch) {
		t.Errorf("live-in-free checkpoints: got %v, want ckpt.ErrMismatch", err)
	}
	ck, err = MakeCheckpoints(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	ck.LiveIns = ck.LiveIns[:len(ck.LiveIns)-1]
	if _, err := ExecuteFromCheckpoints(p, ck, config.BaseA()); !errors.Is(err, ckpt.ErrMismatch) {
		t.Errorf("truncated live-ins: got %v, want ckpt.ErrMismatch", err)
	}
}
