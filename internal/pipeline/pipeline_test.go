package pipeline

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"mlpa/internal/coasts"
	"mlpa/internal/config"
	"mlpa/internal/emu"
	"mlpa/internal/isa"
	"mlpa/internal/obs"
	"mlpa/internal/prog"
	"mlpa/internal/sampling"
	"mlpa/internal/simpoint"
)

// phasedProgram: outer loop alternating a memory-bound kernel and an
// ALU kernel, so sampling accuracy is actually at stake. Each phase
// sweeps its working set repeatedly, so any interval of a few hundred
// instructions observes steady-state behaviour rather than pure
// cold-start transients (mirroring how the paper's 10M-instruction
// intervals relate to SPEC working sets).
func phasedProgram(t *testing.T, trips int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("pipephase")
	b.ReserveData(1 << 18)
	b.Li(1, trips)
	b.Label("outer")
	b.Andi(2, 1, 1)
	b.Bne(2, isa.RZero, "alu")
	// 20 sweeps of 64 strided loads over 128 KiB: misses L1, hits L2
	// once warm; steady state is reached early in each phase instance.
	b.CountedLoop("sweep", 7, 20, func() {
		b.Li(3, 0)
		b.CountedLoop("mem", 4, 64, func() {
			b.Ld(5, 3, 0)
			b.Addi(3, 3, 2048)
		})
	})
	b.Jmp("next")
	b.Label("alu")
	b.CountedLoop("alul", 4, 1300, func() {
		b.Mul(6, 6, 6)
		b.Addi(6, 6, 1)
	})
	b.Label("next")
	b.Addi(1, 1, -1)
	b.Bne(1, isa.RZero, "outer")
	b.Halt()
	return b.MustBuild()
}

func TestFullDetailed(t *testing.T) {
	p := phasedProgram(t, 10)
	res, wall, err := FullDetailed(p, config.BaseA())
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts == 0 || res.Cycles == 0 {
		t.Fatalf("result = %+v", res)
	}
	if wall <= 0 {
		t.Error("wall time not measured")
	}
}

func TestExecutePlanSimPoint(t *testing.T) {
	p := phasedProgram(t, 30)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: 2000, Kmax: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	truth, _, err := FullDetailed(p, config.BaseA())
	if err != nil {
		t.Fatal(err)
	}
	// At this test's tiny interval scale, cold
	// structures dominate a point's cycles, so points are functionally
	// warmed — the policy the top-level harness applies uniformly to
	// every method (see DESIGN.md on scale substitution).
	est, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{Warmup: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if est.Points != len(plan.Points) || est.TotalInsts != plan.TotalInsts {
		t.Errorf("estimate bookkeeping: %+v", est)
	}
	cpiDev, l1Dev, l2Dev := Deviations(est, truth)
	// The sampled estimate should be in the right ballpark: the two
	// kernels differ by >5x in CPI, so a broken estimator would show
	// enormous deviation.
	if cpiDev > 0.5 {
		t.Errorf("CPI deviation = %v (est %v, truth %v)", cpiDev, est.CPI, truth.CPI())
	}
	if l1Dev > 0.5 || l2Dev > 0.9 {
		t.Errorf("hit-rate deviations = %v, %v", l1Dev, l2Dev)
	}
}

func TestColdStartBiasExistsAndWarmupRemovesIt(t *testing.T) {
	p := phasedProgram(t, 20)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: 120, Kmax: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	truth, _, err := FullDetailed(p, config.BaseA())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{Warmup: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CPI <= warm.CPI {
		t.Errorf("cold CPI %v <= warm CPI %v; cold-start bias should inflate CPI", cold.CPI, warm.CPI)
	}
	coldDev, _, _ := Deviations(cold, truth)
	warmDev, _, _ := Deviations(warm, truth)
	if warmDev >= coldDev {
		t.Errorf("warmup did not improve deviation: warm %v, cold %v", warmDev, coldDev)
	}
}

func TestExecutePlanCoasts(t *testing.T) {
	p := phasedProgram(t, 20)
	plan, _, _, err := coasts.Select(p, coasts.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	truth, _, err := FullDetailed(p, config.BaseA())
	if err != nil {
		t.Fatal(err)
	}
	est, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{Warmup: 3000})
	if err != nil {
		t.Fatal(err)
	}
	cpiDev, _, _ := Deviations(est, truth)
	if cpiDev > 0.5 {
		t.Errorf("COASTS CPI deviation = %v (est %v, truth %v)", cpiDev, est.CPI, truth.CPI())
	}
	// Coarse early points: functional fraction must be far below the
	// ~1.0 a late fine plan would need.
	if f := est.FunctionalFraction(); f > 0.6 {
		t.Errorf("COASTS functional fraction = %v", f)
	}
}

func TestExecutePlanWithWarmup(t *testing.T) {
	p := phasedProgram(t, 20)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: 120, Kmax: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{Warmup: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExecutePlanRejectsInvalid(t *testing.T) {
	p := phasedProgram(t, 5)
	bad := &sampling.Plan{Benchmark: "x", Method: "m", TotalInsts: 100}
	if _, err := ExecutePlan(p, bad, config.BaseA(), ExecOptions{}); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestEstimateFractions(t *testing.T) {
	e := &Estimate{DetailedInsts: 10, FunctionalInsts: 40, TotalInsts: 100}
	if e.DetailedFraction() != 0.1 || e.FunctionalFraction() != 0.4 {
		t.Errorf("fractions = %v, %v", e.DetailedFraction(), e.FunctionalFraction())
	}
	var z Estimate
	if z.DetailedFraction() != 0 || z.FunctionalFraction() != 0 {
		t.Error("zero estimate fractions != 0")
	}
}

func TestMeasuredRates(t *testing.T) {
	p := phasedProgram(t, 30)
	tm, err := MeasuredRates(p, config.BaseA(), 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if tm.DetailedRate <= 0 || tm.FunctionalRate <= 0 {
		t.Fatalf("rates = %+v", tm)
	}
	if tm.FunctionalRate <= tm.DetailedRate {
		t.Errorf("functional rate %v not above detailed rate %v", tm.FunctionalRate, tm.DetailedRate)
	}
}

func TestDeterministicEstimates(t *testing.T) {
	p := phasedProgram(t, 15)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: 100, Kmax: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	e1, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e1.CPI != e2.CPI || e1.L1Hit != e2.L1Hit || e1.L2Hit != e2.L2Hit {
		t.Errorf("nondeterministic estimates: %+v vs %+v", e1, e2)
	}
}

func TestConfigBPresent(t *testing.T) {
	// Both Table I configs must run the pipeline.
	p := phasedProgram(t, 8)
	plan, _, _, err := coasts.Select(p, coasts.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range config.All() {
		if _, err := ExecutePlan(p, plan, cfg, ExecOptions{}); err != nil {
			t.Errorf("config %s: %v", cfg.Name, err)
		}
	}
}

// TestJournalRecordsReproduceEstimate is the observability acceptance
// test: the per-point records — both the in-memory copies on the
// Estimate and their JSONL journal round-trip — must reproduce the
// reported whole-program aggregates exactly (same summation order,
// CPI within 1e-12), and the wall/point bookkeeping must add up.
func TestJournalRecordsReproduceEstimate(t *testing.T) {
	p := phasedProgram(t, 30)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: 2000, Kmax: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	rt := obs.New(sink)
	est, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{Warmup: 3000, Obs: rt})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if len(est.PointRecords) != est.Points || est.Points != len(plan.Points) {
		t.Fatalf("point records = %d, estimate points = %d, plan points = %d",
			len(est.PointRecords), est.Points, len(plan.Points))
	}

	check := func(src string, recs []PointRecord) {
		t.Helper()
		var cpi float64
		var l1Num, l1Den, l2Num, l2Den float64
		var wallF, wallD time.Duration
		for _, r := range recs {
			cpi += r.Weight * r.CPI
			perInst := 1 / float64(r.Insts)
			l1Den += r.Weight * float64(r.L1Accesses) * perInst
			l1Num += r.Weight * float64(r.L1Hits) * perInst
			l2Den += r.Weight * float64(r.L2Accesses) * perInst
			l2Num += r.Weight * float64(r.L2Hits) * perInst
			wallF += r.WallFunctional
			wallD += r.WallDetailed
		}
		if math.Abs(cpi-est.CPI) > 1e-12 {
			t.Errorf("%s: CPI from records %v != estimate %v", src, cpi, est.CPI)
		}
		l1 := l1Num / l1Den
		l2 := l2Num / l2Den
		if l1Den == 0 {
			l1 = 1
		}
		if l2Den == 0 {
			l2 = 1
		}
		if math.Abs(l1-est.L1Hit) > 1e-12 || math.Abs(l2-est.L2Hit) > 1e-12 {
			t.Errorf("%s: hit rates from records %v/%v != estimate %v/%v", src, l1, l2, est.L1Hit, est.L2Hit)
		}
		if wallF != est.WallFunctional || wallD != est.WallDetailed {
			t.Errorf("%s: wall split from records %v/%v != estimate %v/%v",
				src, wallF, wallD, est.WallFunctional, est.WallDetailed)
		}
	}
	check("in-memory", est.PointRecords)

	// JSONL round-trip: decode the journal's point events back into
	// records and re-check. JSON float64 encoding is exact, so the
	// journal is as authoritative as the in-memory copy.
	recs, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var fromJournal []PointRecord
	var sawEstimate, sawSpan bool
	for _, rec := range recs {
		switch rec["ev"] {
		case "span":
			sawSpan = true
		case "estimate":
			sawEstimate = true
			if rec["cpi"].(float64) != est.CPI {
				t.Errorf("journal estimate CPI %v != %v", rec["cpi"], est.CPI)
			}
		case "point":
			if rec["benchmark"] != plan.Benchmark || rec["method"] != plan.Method {
				t.Errorf("point record mislabeled: %v", rec)
			}
			fromJournal = append(fromJournal, PointRecord{
				Index:          int(rec["index"].(float64)),
				Weight:         rec["weight"].(float64),
				Insts:          uint64(rec["insts"].(float64)),
				CPI:            rec["cpi"].(float64),
				L1Accesses:     uint64(rec["l1_accesses"].(float64)),
				L1Hits:         uint64(rec["l1_hits"].(float64)),
				L2Accesses:     uint64(rec["l2_accesses"].(float64)),
				L2Hits:         uint64(rec["l2_hits"].(float64)),
				WallFunctional: time.Duration(rec["wall_functional_ns"].(float64)),
				WallDetailed:   time.Duration(rec["wall_detailed_ns"].(float64)),
			})
		}
	}
	if !sawEstimate {
		t.Error("journal missing estimate record")
	}
	if !sawSpan {
		t.Error("journal missing pipeline span")
	}
	check("journal", fromJournal)

	// Metrics side: the registry's counters must agree with the run.
	reg := rt.Metrics()
	if got := reg.Counter("pipeline.points_executed").Value(); got != int64(est.Points) {
		t.Errorf("points_executed counter = %d, want %d", got, est.Points)
	}
	if got := reg.Counter("pipeline.detailed_insts").Value(); got != int64(est.DetailedInsts) {
		t.Errorf("detailed_insts counter = %d, want %d", got, est.DetailedInsts)
	}
	if reg.Counter("cpu.flushes").Value() < 0 || reg.Histogram("pipeline.point_wall_seconds").Stat().Count != int64(est.Points) {
		t.Errorf("point wall histogram count = %d, want %d",
			reg.Histogram("pipeline.point_wall_seconds").Stat().Count, est.Points)
	}
}

// TestPlanErrorsNamePoint pins the diagnostic content of plan
// execution errors: the failing point's index and its [start,end)
// offsets must appear, so a bad plan is debuggable from the message
// alone.
func TestPlanErrorsNamePoint(t *testing.T) {
	p := phasedProgram(t, 5)

	// Overlapping points: rejected up front, naming point 1's offsets.
	overlap := &sampling.Plan{
		Benchmark:  "pipephase",
		Method:     "handmade",
		TotalInsts: 1 << 30,
		Points: []sampling.Point{
			{Start: 500, End: 600, Weight: 0.5},
			{Start: 550, End: 700, Weight: 0.5},
		},
	}
	_, err := ExecutePlan(p, overlap, config.BaseA(), ExecOptions{})
	if err == nil || !strings.Contains(err.Error(), "point 1") || !strings.Contains(err.Error(), "550") {
		t.Errorf("overlap error %q does not name the point and offset", err)
	}

	// A point past the program's actual halt: the plan validates (the
	// declared TotalInsts is inflated) but the detailed window comes up
	// short, and the error must identify which point and range.
	m := emu.New(p, 0)
	total, err := m.RunToCompletion(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	short := &sampling.Plan{
		Benchmark:  "pipephase",
		Method:     "handmade",
		TotalInsts: total + 10_000,
		Points: []sampling.Point{
			{Start: total - 100, End: total + 500, Weight: 1},
		},
	}
	_, err = ExecutePlan(p, short, config.BaseA(), ExecOptions{})
	if err == nil {
		t.Fatal("plan past program end unexpectedly succeeded")
	}
	for _, want := range []string{"point 0", "simulated", "want 600"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("short-simulation error %q missing %q", err, want)
		}
	}
}

func TestMeasuredRatesDegenerateError(t *testing.T) {
	err := degenerateProbeErr("toybench", 4096, 17, 3*time.Microsecond, 0, 5*time.Microsecond)
	for _, want := range []string{"toybench", "4096", "functional 17 insts in 3µs", "detailed 0 insts in 5µs"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("degenerate-probe error %q missing %q", err, want)
		}
	}
}
