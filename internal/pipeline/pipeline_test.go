package pipeline

import (
	"testing"

	"mlpa/internal/coasts"
	"mlpa/internal/config"
	"mlpa/internal/isa"
	"mlpa/internal/prog"
	"mlpa/internal/sampling"
	"mlpa/internal/simpoint"
)

// phasedProgram: outer loop alternating a memory-bound kernel and an
// ALU kernel, so sampling accuracy is actually at stake. Each phase
// sweeps its working set repeatedly, so any interval of a few hundred
// instructions observes steady-state behaviour rather than pure
// cold-start transients (mirroring how the paper's 10M-instruction
// intervals relate to SPEC working sets).
func phasedProgram(t *testing.T, trips int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("pipephase")
	b.ReserveData(1 << 18)
	b.Li(1, trips)
	b.Label("outer")
	b.Andi(2, 1, 1)
	b.Bne(2, isa.RZero, "alu")
	// 20 sweeps of 64 strided loads over 128 KiB: misses L1, hits L2
	// once warm; steady state is reached early in each phase instance.
	b.CountedLoop("sweep", 7, 20, func() {
		b.Li(3, 0)
		b.CountedLoop("mem", 4, 64, func() {
			b.Ld(5, 3, 0)
			b.Addi(3, 3, 2048)
		})
	})
	b.Jmp("next")
	b.Label("alu")
	b.CountedLoop("alul", 4, 1300, func() {
		b.Mul(6, 6, 6)
		b.Addi(6, 6, 1)
	})
	b.Label("next")
	b.Addi(1, 1, -1)
	b.Bne(1, isa.RZero, "outer")
	b.Halt()
	return b.MustBuild()
}

func TestFullDetailed(t *testing.T) {
	p := phasedProgram(t, 10)
	res, wall, err := FullDetailed(p, config.BaseA())
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts == 0 || res.Cycles == 0 {
		t.Fatalf("result = %+v", res)
	}
	if wall <= 0 {
		t.Error("wall time not measured")
	}
}

func TestExecutePlanSimPoint(t *testing.T) {
	p := phasedProgram(t, 30)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: 2000, Kmax: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	truth, _, err := FullDetailed(p, config.BaseA())
	if err != nil {
		t.Fatal(err)
	}
	// At this test's tiny interval scale, cold
	// structures dominate a point's cycles, so points are functionally
	// warmed — the policy the top-level harness applies uniformly to
	// every method (see DESIGN.md on scale substitution).
	est, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{Warmup: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if est.Points != len(plan.Points) || est.TotalInsts != plan.TotalInsts {
		t.Errorf("estimate bookkeeping: %+v", est)
	}
	cpiDev, l1Dev, l2Dev := Deviations(est, truth)
	// The sampled estimate should be in the right ballpark: the two
	// kernels differ by >5x in CPI, so a broken estimator would show
	// enormous deviation.
	if cpiDev > 0.5 {
		t.Errorf("CPI deviation = %v (est %v, truth %v)", cpiDev, est.CPI, truth.CPI())
	}
	if l1Dev > 0.5 || l2Dev > 0.9 {
		t.Errorf("hit-rate deviations = %v, %v", l1Dev, l2Dev)
	}
}

func TestColdStartBiasExistsAndWarmupRemovesIt(t *testing.T) {
	p := phasedProgram(t, 20)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: 120, Kmax: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	truth, _, err := FullDetailed(p, config.BaseA())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{Warmup: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CPI <= warm.CPI {
		t.Errorf("cold CPI %v <= warm CPI %v; cold-start bias should inflate CPI", cold.CPI, warm.CPI)
	}
	coldDev, _, _ := Deviations(cold, truth)
	warmDev, _, _ := Deviations(warm, truth)
	if warmDev >= coldDev {
		t.Errorf("warmup did not improve deviation: warm %v, cold %v", warmDev, coldDev)
	}
}

func TestExecutePlanCoasts(t *testing.T) {
	p := phasedProgram(t, 20)
	plan, _, _, err := coasts.Select(p, coasts.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	truth, _, err := FullDetailed(p, config.BaseA())
	if err != nil {
		t.Fatal(err)
	}
	est, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{Warmup: 3000})
	if err != nil {
		t.Fatal(err)
	}
	cpiDev, _, _ := Deviations(est, truth)
	if cpiDev > 0.5 {
		t.Errorf("COASTS CPI deviation = %v (est %v, truth %v)", cpiDev, est.CPI, truth.CPI())
	}
	// Coarse early points: functional fraction must be far below the
	// ~1.0 a late fine plan would need.
	if f := est.FunctionalFraction(); f > 0.6 {
		t.Errorf("COASTS functional fraction = %v", f)
	}
}

func TestExecutePlanWithWarmup(t *testing.T) {
	p := phasedProgram(t, 20)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: 120, Kmax: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{Warmup: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExecutePlanRejectsInvalid(t *testing.T) {
	p := phasedProgram(t, 5)
	bad := &sampling.Plan{Benchmark: "x", Method: "m", TotalInsts: 100}
	if _, err := ExecutePlan(p, bad, config.BaseA(), ExecOptions{}); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestEstimateFractions(t *testing.T) {
	e := &Estimate{DetailedInsts: 10, FunctionalInsts: 40, TotalInsts: 100}
	if e.DetailedFraction() != 0.1 || e.FunctionalFraction() != 0.4 {
		t.Errorf("fractions = %v, %v", e.DetailedFraction(), e.FunctionalFraction())
	}
	var z Estimate
	if z.DetailedFraction() != 0 || z.FunctionalFraction() != 0 {
		t.Error("zero estimate fractions != 0")
	}
}

func TestMeasuredRates(t *testing.T) {
	p := phasedProgram(t, 30)
	tm, err := MeasuredRates(p, config.BaseA(), 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if tm.DetailedRate <= 0 || tm.FunctionalRate <= 0 {
		t.Fatalf("rates = %+v", tm)
	}
	if tm.FunctionalRate <= tm.DetailedRate {
		t.Errorf("functional rate %v not above detailed rate %v", tm.FunctionalRate, tm.DetailedRate)
	}
}

func TestDeterministicEstimates(t *testing.T) {
	p := phasedProgram(t, 15)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: 100, Kmax: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	e1, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e1.CPI != e2.CPI || e1.L1Hit != e2.L1Hit || e1.L2Hit != e2.L2Hit {
		t.Errorf("nondeterministic estimates: %+v vs %+v", e1, e2)
	}
}

func TestConfigBPresent(t *testing.T) {
	// Both Table I configs must run the pipeline.
	p := phasedProgram(t, 8)
	plan, _, _, err := coasts.Select(p, coasts.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range config.All() {
		if _, err := ExecutePlan(p, plan, cfg, ExecOptions{}); err != nil {
			t.Errorf("config %s: %v", cfg.Name, err)
		}
	}
}
