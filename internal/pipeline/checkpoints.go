package pipeline

import (
	"bytes"
	"fmt"
	"time"

	"mlpa/internal/ckpt"
	"mlpa/internal/cpu"
	"mlpa/internal/emu"
	"mlpa/internal/prog"
	"mlpa/internal/sampling"
	"mlpa/internal/staticanalysis"
)

// Checkpoints holds per-point architectural snapshots for a plan, so
// the points can be simulated without re-executing the fast-forward
// prefix — production SimPoint flows store exactly such checkpoints.
// One functional pass creates them; they can then be replayed under
// any number of machine configurations.
type Checkpoints struct {
	Plan   *sampling.Plan
	States [][]byte // serialized machine state per point
	// Leads[i] is how many instructions before point i its checkpoint
	// was taken; the replay uses them as detailed lead-in so the
	// measured region starts with a filled pipeline.
	Leads []uint64
	// LiveIns[i] is the static live-in summary at checkpoint i's save
	// position: the registers (and whether memory) the replay may read
	// before writing. It is the portable-checkpoint storage schema —
	// a producer only needs to capture the state inside the masks —
	// and the replay verifies it by scrubbing everything outside them.
	LiveIns []sampling.LiveIn
}

// ckptLeadIn is the detailed lead-in budget each checkpoint carries.
const ckptLeadIn = 512

// MakeCheckpoints runs one functional pass over the program, saving
// the architectural state shortly before the start of every simulation
// point (the slack becomes detailed lead-in at replay).
func MakeCheckpoints(p *prog.Program, plan *sampling.Plan) (*Checkpoints, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if err := staticanalysis.Preflight(p); err != nil {
		return nil, fmt.Errorf("pipeline: preflight for %s: %w", p.Name, err)
	}
	m := emu.New(p, 0)
	ck := &Checkpoints{Plan: plan}
	for _, pt := range plan.Points {
		if pt.Start < m.Insts {
			return nil, fmt.Errorf("pipeline: checkpoint plan not sorted")
		}
		lead := uint64(ckptLeadIn)
		if avail := pt.Start - m.Insts; lead > avail {
			lead = avail
		}
		if skip := pt.Start - lead - m.Insts; skip > 0 {
			if _, err := m.Run(skip); err != nil {
				return nil, fmt.Errorf("pipeline: checkpoint fast-forward: %w", err)
			}
		}
		var buf bytes.Buffer
		if err := m.SaveCheckpoint(&buf); err != nil {
			return nil, err
		}
		livein, err := boundaryLiveIn(m)
		if err != nil {
			return nil, fmt.Errorf("pipeline: checkpoint live-in: %w", err)
		}
		ck.States = append(ck.States, buf.Bytes())
		ck.Leads = append(ck.Leads, lead)
		ck.LiveIns = append(ck.LiveIns, livein)
		// Execute through the point so the next checkpoint's prefix
		// continues from here.
		if _, err := m.Run(lead + pt.Len()); err != nil {
			return nil, fmt.Errorf("pipeline: checkpoint advance: %w", err)
		}
	}
	return ck, nil
}

// ExecuteFromCheckpoints performs the sampled simulation from stored
// checkpoints: every point starts from its snapshot on a fresh
// detailed context, with instruction-side self-warming (checkpoints
// restore architectural state only, so the I-cache and predictor are
// warmed by replaying the region on a clone; data state relies on the
// warm-invariance the suite kernels guarantee — see DESIGN.md).
func ExecuteFromCheckpoints(p *prog.Program, ck *Checkpoints, cfg cpu.Config) (*Estimate, error) {
	plan := ck.Plan
	if len(ck.States) != len(plan.Points) {
		return nil, fmt.Errorf("pipeline: %d checkpoints for %d points", len(ck.States), len(plan.Points))
	}
	// A set without one live-in mask per point is malformed — silently
	// skipping the scrub would turn a truncated or stale LiveIns slice
	// into an unverified replay of unportable state, so it is a hard
	// error rather than a degraded mode.
	if len(ck.LiveIns) != len(plan.Points) {
		return nil, fmt.Errorf("pipeline: %w: %d live-in masks for %d points; every checkpoint must carry its live-in mask",
			ckpt.ErrMismatch, len(ck.LiveIns), len(plan.Points))
	}
	est := &Estimate{
		Benchmark:       plan.Benchmark,
		Method:          plan.Method + "+ckpt",
		TotalInsts:      plan.TotalInsts,
		DetailedInsts:   plan.DetailedInsts(),
		FunctionalInsts: plan.FunctionalInsts(),
		Points:          len(plan.Points),
	}
	var l1Num, l1Den, l2Num, l2Den float64
	for i, pt := range plan.Points {
		m := emu.New(p, 0)
		t0 := time.Now()
		if err := m.LoadCheckpoint(bytes.NewReader(ck.States[i])); err != nil {
			return nil, fmt.Errorf("pipeline: checkpoint %d: %w", i, err)
		}
		if m.Insts+ck.Leads[i] != pt.Start {
			return nil, fmt.Errorf("pipeline: checkpoint %d at instruction %d, point starts at %d (lead %d)", i, m.Insts, pt.Start, ck.Leads[i])
		}
		// Checkpoints replay through their live-in metadata: scrub every
		// register outside the masks, so any under-approximation in the
		// static analysis (or a stale mask) surfaces as a hard divergence
		// in the equivalence tests instead of silently reading unportable
		// state.
		li := ck.LiveIns[i]
		if li.PC != m.PC {
			return nil, fmt.Errorf("pipeline: checkpoint %d live-in recorded at pc %d, state restores to pc %d", i, li.PC, m.PC)
		}
		scrubDeadRegs(m, li)
		sim, err := cpu.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := sim.WarmCode(m.Clone(), ck.Leads[i]+pt.Len()); err != nil {
			return nil, err
		}
		est.WallFunctional += time.Since(t0)

		t0 = time.Now()
		res, err := sim.RunWithLeadIn(m, ck.Leads[i], pt.Len())
		est.WallDetailed += time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("pipeline: checkpointed point %d: %w", i, err)
		}
		est.CPI += pt.Weight * res.CPI()
		perInst := 1 / float64(res.Insts)
		l1Den += pt.Weight * float64(res.L1.Accesses) * perInst
		l1Num += pt.Weight * float64(res.L1.Hits()) * perInst
		l2Den += pt.Weight * float64(res.L2.Accesses) * perInst
		l2Num += pt.Weight * float64(res.L2.Hits()) * perInst
	}
	est.L1Hit = ratioOr1(l1Num, l1Den)
	est.L2Hit = ratioOr1(l2Num, l2Den)
	return est, nil
}
