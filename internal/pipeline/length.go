package pipeline

import (
	"fmt"

	"mlpa/internal/emu"
	"mlpa/internal/prog"
	"mlpa/internal/staticanalysis"
)

// MeasureLength runs p functionally to completion and returns its
// dynamic instruction count, refusing to execute more than bound
// instructions. It is the admission probe long-running services use
// before spending profiling or simulation time on an untrusted guest:
// a program that fails the probe (malformed, or not halting within the
// budget) is rejected up front, and a program that passes is known to
// bound every later functional pass — profiling, fast-forward,
// warming — by the measured length.
func MeasureLength(p *prog.Program, bound uint64) (uint64, error) {
	if err := staticanalysis.Preflight(p); err != nil {
		return 0, fmt.Errorf("pipeline: preflight for %s: %w", p.Name, err)
	}
	m := emu.New(p, 0)
	n, err := m.RunToCompletion(bound)
	if err != nil {
		return n, fmt.Errorf("pipeline: length probe of %s: %w", p.Name, err)
	}
	return n, nil
}
