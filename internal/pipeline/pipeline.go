// Package pipeline orchestrates end-to-end sampled simulation: it
// executes a sampling plan (functional fast-forward between points,
// cold detailed simulation of each point), combines point metrics by
// weight into whole-program estimates, obtains ground truth from a
// full detailed run, and evaluates both the paper's modeled speedups
// and measured wall-clock splits.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"mlpa/internal/ckpt"
	"mlpa/internal/cpu"
	"mlpa/internal/emu"
	"mlpa/internal/obs"
	"mlpa/internal/parallel"
	"mlpa/internal/prog"
	"mlpa/internal/sampling"
	"mlpa/internal/staticanalysis"
	"mlpa/internal/staticanalysis/dataflow"
	"mlpa/internal/stats"
)

// ExecOptions controls plan execution.
type ExecOptions struct {
	// Warmup, when non-zero, functionally warms caches and predictor
	// over up to this many instructions immediately preceding each
	// point's detailed lead-in (SMARTS-style functional warming). The
	// warm window may extend back past the fast-forward gap into
	// regions earlier points measured — warming replays them
	// functionally without re-measuring — so a large Warmup approaches
	// continuously warmed state regardless of point spacing. When
	// zero, every point runs on a cold context, which is what plain
	// fast-forwarding implies.
	//
	// At this reproduction's nominal-to-emulated scale, interval
	// lengths shrink by the scale factor while cache capacities and
	// miss latencies do not, so cold-start transients that cost a few
	// percent at the paper's 10M-instruction intervals would dominate
	// scaled points entirely. The experiment harness therefore applies
	// the same warmup policy to every method; the cold variant remains
	// available for the cold-start ablation.
	Warmup uint64

	// DetailLeadIn, when non-zero, additionally simulates up to this
	// many instructions in detail immediately before each point with
	// the statistics discarded, so the measured region starts with a
	// filled out-of-order window instead of an empty pipeline
	// (detailed warmup). Scaled-down points are short enough that the
	// pipeline ramp would otherwise bias every point's CPI upward.
	DetailLeadIn uint64

	// RunAhead, when non-zero, continues detailed execution up to this
	// many instructions past each point with the statistics discarded,
	// so the point's trailing memory latencies overlap successor work
	// as they would in continuous simulation instead of draining into
	// the point's own cycle count. Without it, short scaled points
	// containing miss bursts absorb a full drain latency apiece.
	RunAhead uint64

	// Workers selects how many simulation points execute concurrently.
	// 0 picks GOMAXPROCS; 1 executes sequentially in line on the
	// calling goroutine (no goroutines are spawned). Every point runs
	// on its own fresh detailed context from functional state that is
	// a pure function of its instruction position, so the resulting
	// Estimate, point records and journal aggregates are bit-for-bit
	// identical for every worker count (wall-clock fields excepted);
	// see docs/PARALLELISM.md for the contract.
	Workers int

	// Ctx, when non-nil, cancels plan execution: in-flight points
	// finish, queued points are abandoned, and ExecutePlan returns the
	// context's error. A nil Ctx means context.Background().
	Ctx context.Context

	// Cache, when non-nil, is a shared functional-state cache for this
	// plan's program: concurrent and repeated executions (for example
	// the same plan under both Table I configurations) reuse each
	// other's fast-forward work through it. It must have been created
	// by parallel.NewStateCache for the same *prog.Program; a
	// mismatched cache is ignored. Nil gives each ExecutePlan call a
	// private cache.
	Cache *parallel.StateCache

	// Obs, when non-nil, receives per-point journal records, stage
	// spans and pipeline metrics for the run. A nil Obs costs nothing.
	Obs *obs.Runtime

	// ScrubDeadRegs, when set, zeroes every register outside the static
	// live-in set at each point's boundary before detailed simulation.
	// Liveness soundness (see internal/staticanalysis/dataflow) makes
	// the scrub architecturally invisible, so results are bit-identical
	// with and without it — the property the soundness harness asserts
	// on the whole benchmark suite, and the property that makes live-in
	// masks a safe storage schema for portable checkpoints.
	ScrubDeadRegs bool

	// Checkpoints, when non-nil, switches ExecutePlan to checkpoint-
	// backed execution: instead of fast-forwarding to each point's warm
	// start, the scheduler restores the point's machine from the set in
	// O(checkpoint size). Fast-forward is thereby paid once per
	// (program, plan, warm policy) — by BuildCheckpointSet or a loaded
	// ckpt.Set — and every subsequent configuration evaluation reuses
	// it. Liveness soundness makes the restored (live-in-scrubbed,
	// touched-pages-only) state architecturally indistinguishable from
	// the fast-forwarded machine, so estimates, point records and
	// journals stay bit-identical to from-scratch execution at every
	// worker count. The set must match this program, plan and warm
	// policy; a mismatch fails with an error wrapping ckpt.ErrMismatch.
	Checkpoints *ckpt.Set
}

// PointRecord is the observable outcome of one executed simulation
// point. ExecutePlan retains one record per point on the Estimate and
// journals it through ExecOptions.Obs, so per-point behaviour — which
// the weighted sums would otherwise discard — stays inspectable. The
// raw hit/access counts are kept alongside the derived rates so the
// whole-program aggregates can be reproduced from the records alone.
type PointRecord struct {
	Index  int     `json:"index"`
	Start  uint64  `json:"start"`
	End    uint64  `json:"end"`
	Weight float64 `json:"weight"`

	// Measured-region metrics.
	Insts  uint64  `json:"insts"`
	Cycles uint64  `json:"cycles"`
	CPI    float64 `json:"cpi"`
	L1Hit  float64 `json:"l1_hit"`
	L2Hit  float64 `json:"l2_hit"`

	// Raw cache counts for exact re-aggregation.
	L1Accesses uint64 `json:"l1_accesses"`
	L1Hits     uint64 `json:"l1_hits"`
	L2Accesses uint64 `json:"l2_accesses"`
	L2Hits     uint64 `json:"l2_hits"`

	// Warmup split: how the gap before the point (and the discarded
	// detailed regions around it) was spent, in instructions.
	FastForward uint64 `json:"ff"`
	Warmed      uint64 `json:"warmed"`
	Lead        uint64 `json:"lead"`
	Tail        uint64 `json:"tail"`

	// Wall-clock split attributable to this point.
	WallFunctional time.Duration `json:"wall_functional_ns"`
	WallDetailed   time.Duration `json:"wall_detailed_ns"`

	// LiveIn is the static live-in summary at the point's boundary
	// (the position the machine enters detailed simulation at).
	LiveIn sampling.LiveIn `json:"livein"`
}

// Estimate is the outcome of executing one sampling plan.
type Estimate struct {
	Benchmark string
	Method    string

	// Weighted whole-program metric estimates (Table II metrics).
	CPI   float64
	L1Hit float64
	L2Hit float64

	// Instruction split (Table III metrics).
	DetailedInsts   uint64
	FunctionalInsts uint64
	TotalInsts      uint64
	Points          int

	// Measured wall-clock split of this reproduction's own simulators.
	WallDetailed   time.Duration
	WallFunctional time.Duration

	// PointRecords holds one record per executed point, in plan order.
	PointRecords []PointRecord
}

// DetailedFraction returns DetailedInsts / TotalInsts.
func (e *Estimate) DetailedFraction() float64 {
	if e.TotalInsts == 0 {
		return 0
	}
	return float64(e.DetailedInsts) / float64(e.TotalInsts)
}

// FunctionalFraction returns FunctionalInsts / TotalInsts.
func (e *Estimate) FunctionalFraction() float64 {
	if e.TotalInsts == 0 {
		return 0
	}
	return float64(e.FunctionalInsts) / float64(e.TotalInsts)
}

// Wall returns the total measured wall time.
func (e *Estimate) Wall() time.Duration { return e.WallDetailed + e.WallFunctional }

// FullDetailed runs the whole program through the detailed simulator
// (the sim-outorder baseline that defines ground truth).
func FullDetailed(p *prog.Program, cfg cpu.Config) (cpu.Result, time.Duration, error) {
	if err := staticanalysis.Preflight(p); err != nil {
		return cpu.Result{}, 0, fmt.Errorf("pipeline: preflight for %s: %w", p.Name, err)
	}
	m := emu.New(p, 0)
	s, err := cpu.New(cfg)
	if err != nil {
		return cpu.Result{}, 0, err
	}
	t0 := time.Now()
	res, err := s.Run(m, 0)
	if err != nil {
		return cpu.Result{}, 0, fmt.Errorf("pipeline: full detailed run of %s: %w", p.Name, err)
	}
	return res, time.Since(t0), nil
}

// pointTask is the precomputed execution budget of one simulation
// point: the plain fast-forward from the previous point's run-ahead
// end, the functional-warming window and discarded detailed lead-in
// before the point, and the discarded run-ahead after it. Tasks are a
// pure function of (plan, options), so every worker count derives the
// same schedule.
type pointTask struct {
	skip uint64 // plain fast-forward beyond the previous point's reach
	warm uint64 // functional warming (may replay earlier points' regions)
	lead uint64 // discarded detailed lead-in
	tail uint64 // discarded detailed run-ahead
	// warmStart is the instruction position warming begins at:
	// pt.Start - lead - warm.
	warmStart uint64
}

// planTasks derives the per-point execution budgets.
func planTasks(plan *sampling.Plan, opts ExecOptions) ([]pointTask, error) {
	tasks := make([]pointTask, len(plan.Points))
	var cursor uint64
	for pi, pt := range plan.Points {
		if pt.Start < cursor {
			return nil, fmt.Errorf("pipeline: plan %s/%s: point %d [%d,%d) overlaps the previous point or is unsorted (machine already at instruction %d)",
				plan.Benchmark, plan.Method, pi, pt.Start, pt.End, cursor)
		}
		ff := pt.Start - cursor
		lead := opts.DetailLeadIn
		if lead > ff {
			lead = ff
		}
		// The warm window is capped by available history, not by the
		// gap: when Warmup exceeds the distance to the previous point,
		// warming replays regions earlier points measured (functional
		// warming does not re-measure), so closely spaced points still
		// enter detailed simulation with deep cache and predictor
		// history — matching a continuously warmed run.
		warm := opts.Warmup
		if warm > pt.Start-lead {
			warm = pt.Start - lead
		}
		// Run-ahead is bounded by the distance to the next point (or
		// program end), so the machine never advances into a region
		// another point will measure.
		tail := opts.RunAhead
		limit := plan.TotalInsts
		if pi+1 < len(plan.Points) {
			limit = plan.Points[pi+1].Start
		}
		if avail := limit - pt.End; tail > avail {
			tail = avail
		}
		warmStart := pt.Start - lead - warm
		var skip uint64
		if warmStart > cursor {
			skip = warmStart - cursor
		}
		tasks[pi] = pointTask{skip: skip, warm: warm, lead: lead, tail: tail, warmStart: warmStart}
		cursor = pt.End + tail
	}
	return tasks, nil
}

// runPoint executes one simulation point on a fresh detailed context.
// m must be positioned at the task's warm start; it advances through
// warming, lead-in, the measured region and run-ahead. t0 is when this
// point's functional phase (fast-forward or state materialization)
// began, so the wall split charges state reconstruction to the point.
func runPoint(m *emu.Machine, cfg cpu.Config, reg *obs.Registry, plan *sampling.Plan, pi int, task pointTask, opts ExecOptions, t0 time.Time) (PointRecord, error) {
	pt := plan.Points[pi]
	sim, err := cpu.New(cfg)
	if err != nil {
		return PointRecord{}, err
	}
	sim.Metrics = reg
	if task.warm > 0 {
		if err := sim.Warm(m, task.warm); err != nil {
			return PointRecord{}, err
		}
	}
	// The machine now sits at the point's boundary (pt.Start - lead).
	// Record the static live-in set there — the portable-checkpoint
	// storage schema — and, under the soundness harness, scrub the
	// statically-dead registers before any further execution touches
	// them.
	livein, err := boundaryLiveIn(m)
	if err != nil {
		return PointRecord{}, fmt.Errorf("pipeline: point %d in %s/%s: %w",
			pi, plan.Benchmark, plan.Method, err)
	}
	if opts.ScrubDeadRegs {
		scrubDeadRegs(m, livein)
	}
	if opts.Warmup > 0 && task.warm < pt.Len() {
		// The context would enter the point with less warmed history
		// than the point is long — typically the contiguous points a
		// plan places at the very start of the program. Dry-run the
		// point region on a cloned machine to warm the instruction
		// cache and branch predictor (data state is left untouched; see
		// cpu.WarmCode), so the point measures the steady-state
		// behaviour of the phase it represents rather than one-time
		// code-fill transients.
		if err := sim.WarmCode(m.Clone(), pt.Len()); err != nil {
			return PointRecord{}, err
		}
	}
	wallFunc := time.Since(t0)

	t0 = time.Now()
	res, err := sim.RunWindow(m, task.lead, pt.Len(), task.tail)
	wallDet := time.Since(t0)
	if err != nil {
		return PointRecord{}, fmt.Errorf("pipeline: detailed point %d [%d,%d) in %s/%s: %w",
			pi, pt.Start, pt.End, plan.Benchmark, plan.Method, err)
	}
	if res.Insts != pt.Len() {
		return PointRecord{}, fmt.Errorf("pipeline: point %d [%d,%d) in %s/%s simulated %d instructions, want %d",
			pi, pt.Start, pt.End, plan.Benchmark, plan.Method, res.Insts, pt.Len())
	}
	return PointRecord{
		Index:          pi,
		Start:          pt.Start,
		End:            pt.End,
		Weight:         pt.Weight,
		Insts:          res.Insts,
		Cycles:         res.Cycles,
		CPI:            res.CPI(),
		L1Hit:          res.L1.HitRate(),
		L2Hit:          res.L2.HitRate(),
		L1Accesses:     res.L1.Accesses,
		L1Hits:         res.L1.Hits(),
		L2Accesses:     res.L2.Accesses,
		L2Hits:         res.L2.Hits(),
		FastForward:    task.skip,
		Warmed:         task.warm,
		Lead:           task.lead,
		Tail:           task.tail,
		WallFunctional: wallFunc,
		WallDetailed:   wallDet,
		LiveIn:         livein,
	}, nil
}

// boundaryLiveIn computes the static live-in summary at the machine's
// current position. The dataflow solution is cached per program, so
// per-point queries cost one backward block walk each.
func boundaryLiveIn(m *emu.Machine) (sampling.LiveIn, error) {
	live, mem, err := dataflow.For(m.Prog).LiveInAt(m.PC)
	if err != nil {
		return sampling.LiveIn{}, err
	}
	ints, fps := live.Split()
	return sampling.LiveIn{PC: m.PC, Int: ints, FP: fps, Mem: mem}, nil
}

// scrubDeadRegs zeroes every register cell outside the live-in masks.
// By liveness soundness this cannot change the execution.
func scrubDeadRegs(m *emu.Machine, li sampling.LiveIn) {
	for i := 1; i < len(m.IntRegs); i++ {
		if li.Int&(1<<uint(i)) == 0 {
			m.IntRegs[i] = 0
		}
	}
	for i := range m.FPRegs {
		if li.FP&(1<<uint(i)) == 0 {
			m.FPRegs[i] = 0
		}
	}
}

// ExecutePlan performs the sampled simulation a plan describes and
// returns the weighted estimates. Every point runs on a fresh detailed
// context from functional state that is a pure function of its
// instruction position: plain fast-forward to the point's warm window,
// functional warming across the window (pass ExecOptions.Warmup; zero
// keeps every point cold, as the paper's plain fast-forward
// methodology implies), then the measured detailed region. Because
// points are independent, ExecOptions.Workers of them execute
// concurrently, and a deterministic merge orders the outcome by plan
// index — estimates are bit-for-bit identical for every worker count.
func ExecutePlan(p *prog.Program, plan *sampling.Plan, cfg cpu.Config, opts ExecOptions) (*Estimate, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	// Preflight: refuse to spend emulation time on a malformed guest.
	// Memoized per program, so re-executing plans costs nothing extra.
	if err := staticanalysis.Preflight(p); err != nil {
		return nil, fmt.Errorf("pipeline: preflight for %s/%s: %w", plan.Benchmark, plan.Method, err)
	}
	tasks, err := planTasks(plan, opts)
	if err != nil {
		return nil, err
	}
	if opts.Checkpoints != nil {
		// A stale or foreign set must fail loudly up front, not silently
		// produce estimates for a different program, plan or warm policy.
		if err := opts.Checkpoints.Match(p, plan, ckptPolicy(opts)); err != nil {
			return nil, fmt.Errorf("pipeline: checkpoint set for %s/%s: %w", plan.Benchmark, plan.Method, err)
		}
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plan.Points) {
		workers = len(plan.Points)
	}
	span := opts.Obs.StartSpan("pipeline.execute_plan",
		obs.KV("benchmark", plan.Benchmark),
		obs.KV("method", plan.Method),
		obs.KV("config", cfg.Name),
		obs.KV("points", len(plan.Points)),
		obs.KV("workers", workers))
	defer span.End()
	reg := opts.Obs.Metrics()

	recs := make([]PointRecord, len(plan.Points))
	if err := executePoints(ctx, p, plan, cfg, reg, tasks, opts, workers, recs); err != nil {
		return nil, err
	}

	// Deterministic merge: aggregate and journal in plan-index order,
	// so weighted sums, journal streams and worst-case bookkeeping are
	// independent of worker count and completion order.
	est := &Estimate{
		Benchmark:       plan.Benchmark,
		Method:          plan.Method,
		TotalInsts:      plan.TotalInsts,
		DetailedInsts:   plan.DetailedInsts(),
		FunctionalInsts: plan.FunctionalInsts(),
		Points:          len(plan.Points),
		PointRecords:    recs,
	}
	var l1Num, l1Den, l2Num, l2Den float64
	for i := range recs {
		rec := &recs[i]
		est.WallFunctional += rec.WallFunctional
		est.WallDetailed += rec.WallDetailed
		est.CPI += rec.Weight * rec.CPI
		// Hit rates are access-weighted: each point contributes its
		// access *density* scaled by its representativeness weight, so
		// phases that barely touch a cache level cannot dominate its
		// estimated hit rate.
		perInst := 1 / float64(rec.Insts)
		l1Den += rec.Weight * float64(rec.L1Accesses) * perInst
		l1Num += rec.Weight * float64(rec.L1Hits) * perInst
		l2Den += rec.Weight * float64(rec.L2Accesses) * perInst
		l2Num += rec.Weight * float64(rec.L2Hits) * perInst
		journalPoint(opts.Obs, plan, cfg.Name, *rec)
	}
	reg.Counter("pipeline.points_executed").Add(int64(len(plan.Points)))
	reg.Counter("pipeline.detailed_insts").Add(int64(est.DetailedInsts))
	reg.Counter("pipeline.functional_insts").Add(int64(est.FunctionalInsts))
	est.L1Hit = ratioOr1(l1Num, l1Den)
	est.L2Hit = ratioOr1(l2Num, l2Den)
	opts.Obs.Emit("estimate", map[string]any{
		"benchmark":          est.Benchmark,
		"method":             est.Method,
		"config":             cfg.Name,
		"cpi":                est.CPI,
		"l1_hit":             est.L1Hit,
		"l2_hit":             est.L2Hit,
		"points":             est.Points,
		"detailed_insts":     est.DetailedInsts,
		"functional_insts":   est.FunctionalInsts,
		"total_insts":        est.TotalInsts,
		"wall_detailed_ns":   est.WallDetailed.Nanoseconds(),
		"wall_functional_ns": est.WallFunctional.Nanoseconds(),
	})
	return est, nil
}

// Cost-model factors for the chunked point scheduler, in units of one
// plain fast-forwarded instruction. They only steer load balancing —
// results are bit-identical for any partition — so rough interpreter-
// speed ratios are all that is needed: functional warming drives the
// cache/predictor models, detailed simulation runs the full
// out-of-order core.
const (
	warmCostFactor   = 8
	detailCostFactor = 64
	// minChunkCost keeps a chunk worth at least a few milliseconds of
	// work (~2M fast-forward-instruction equivalents), so the scheduler
	// never splits below what a checkpoint restore costs to set up.
	minChunkCost = 1 << 21
	// ckptRestoreCost is the chunk-startup estimate under checkpoint-
	// backed execution, in the same fast-forward-instruction units:
	// decoding registers plus replaying the touched pages of a typical
	// state is on the order of a few tens of microseconds, ~64k
	// fast-forwarded instructions.
	ckptRestoreCost = 1 << 16
)

// taskCost estimates one point's execution cost for the partitioner.
func taskCost(t pointTask, ptLen uint64) float64 {
	return float64(t.skip) +
		warmCostFactor*float64(t.warm) +
		detailCostFactor*float64(t.lead+ptLen+t.tail)
}

// planPartition derives the cost-aware chunk schedule for a plan: a
// pure function of (plan, tasks, workers) and the host's GOMAXPROCS,
// so every worker observes the same partition. A chunk's startup
// estimate is the full fast-forward to its first warm start —
// pessimistic when a shared cache already holds nearby states, which
// only biases toward fewer chunks. The worker budget is clamped to
// GOMAXPROCS before partitioning: chunks beyond the cores actually
// available cannot shorten the real makespan, only time-slice against
// each other, so a -workers value above the machine (and in
// particular any workers>1 on a single-core host) degenerates to the
// sequential schedule instead of a guaranteed loss. Results are
// bit-identical for every partition, so the clamp affects wall time
// only.
func planPartition(plan *sampling.Plan, tasks []pointTask, workers int, ckptBacked bool) []parallel.Chunk {
	if g := runtime.GOMAXPROCS(0); workers > g {
		workers = g
	}
	startCost := func(i int) float64 { return float64(tasks[i].warmStart) }
	if ckptBacked {
		// Checkpoint restore replaces the fast-forward to the chunk's
		// first warm start with an O(checkpoint size) state load, so
		// chunk startup is a small constant instead of proportional to
		// the warm-start position. This frees the partitioner to open
		// more chunks for deep-in-the-program plans — exactly the plans
		// plain fast-forward keeps nearly sequential.
		startCost = func(int) float64 { return ckptRestoreCost }
	}
	return parallel.PartitionChunks(len(plan.Points), parallel.ChunkOptions{
		Workers:      workers,
		Cost:         func(i int) float64 { return taskCost(tasks[i], plan.Points[i].Len()) },
		StartCost:    startCost,
		MinChunkCost: minChunkCost,
	})
}

// PlanChunks reports how many chunks ExecutePlan's cost-aware
// scheduler would run (plan, opts) with at the given worker count
// (<= 0 selects GOMAXPROCS). It is the measurement hook for bench
// reports; the schedule itself never influences results.
func PlanChunks(plan *sampling.Plan, opts ExecOptions, workers int) (int, error) {
	tasks, err := planTasks(plan, opts)
	if err != nil {
		return 0, err
	}
	return len(planPartition(plan, tasks, workers, opts.Checkpoints != nil)), nil
}

// executePoints runs the points through the cost-aware chunk
// scheduler. Each chunk materializes one machine at its first point's
// warm start from the shared state cache, then *chains* it through the
// chunk's remaining points: after runPoint the machine sits exactly at
// the next task's fast-forward cursor (planTasks guarantees
// cursor = pt.End + tail), so within a chunk no checkpoint is ever
// saved or restored and no fast-forward work is repeated. Chunks are
// contiguous and cost-balanced, and the chunk count adapts to the work
// available — one chunk is exactly the sequential workers==1 loop — so
// parallel execution never regresses below sequential. Functional
// state remains a pure function of instruction position, which keeps
// results bit-identical for every worker count and partition.
func executePoints(ctx context.Context, p *prog.Program, plan *sampling.Plan, cfg cpu.Config, reg *obs.Registry, tasks []pointTask, opts ExecOptions, workers int, recs []PointRecord) error {
	cache := opts.Cache
	if cache == nil || cache.Program() != p {
		cache = parallel.NewStateCache(p, 0, reg)
	}
	set := opts.Checkpoints
	chunks := planPartition(plan, tasks, workers, set != nil)
	reg.Gauge("pipeline.plan_chunks").Set(float64(len(chunks)))
	stage := opts.Obs.Progress().Stage("pipeline.points")
	stage.AddTotal(int64(len(plan.Points)))
	return parallel.ForEachOpt(ctx, len(chunks), len(chunks), func(ctx context.Context, k int) error {
		var m *emu.Machine
		for pi := chunks[k].Start; pi < chunks[k].End; pi++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			task := tasks[pi]
			t0 := time.Now()
			if set != nil && (m == nil || m.Insts != task.warmStart) {
				// Checkpoint-backed: restore the point's warm-start state
				// in O(checkpoint size) instead of fast-forwarding from
				// program start. Chaining within a chunk still applies —
				// a machine already sitting exactly at the warm start
				// (planTasks' cursor invariant) is reused as-is, so the
				// restored path does strictly less functional work.
				// After the chunk's first point the machine is restored
				// in place: NewMachine leaves dirty-page tracking on, so
				// RestoreInto resets memory in O(touched pages) instead
				// of paying a fresh memory image per point.
				var err error
				if m == nil {
					m, err = set.States[pi].NewMachine(p)
				} else {
					err = set.States[pi].RestoreInto(m)
				}
				if err != nil {
					return fmt.Errorf("pipeline: checkpoint restore of point %d in %s: %w", pi, plan.Benchmark, err)
				}
				m.Metrics = reg
				reg.Counter("pipeline.ckpt_restores").Add(1)
			} else if m == nil || m.Insts > task.warmStart {
				// First point of the chunk (or, defensively, a machine
				// past the cursor): materialize from the shared cache,
				// publishing the chunk-start state for other executions.
				var err error
				m, err = cache.MachineAt(ctx, task.warmStart)
				if err != nil {
					return fmt.Errorf("pipeline: fast-forward in %s: %w", plan.Benchmark, err)
				}
				m.Metrics = reg
			} else if m.Insts < task.warmStart {
				if err := fastForward(ctx, m, task.warmStart); err != nil {
					return fmt.Errorf("pipeline: fast-forward in %s: %w", plan.Benchmark, err)
				}
			}
			rec, err := runPoint(m, cfg, reg, plan, pi, task, opts, t0)
			if err != nil {
				return err
			}
			recs[pi] = rec
			stage.Add(1)
		}
		return nil
	}, parallel.ForEachOptions{Metrics: reg})
}

// fastForward advances m to instruction position pos in cancellation-
// checked slices (the in-chunk analogue of the state cache's build
// loop).
func fastForward(ctx context.Context, m *emu.Machine, pos uint64) error {
	const slice = 1 << 20
	for m.Insts < pos {
		if err := ctx.Err(); err != nil {
			return err
		}
		step := pos - m.Insts
		if step > slice {
			step = slice
		}
		n, err := m.Run(step)
		if err != nil {
			return fmt.Errorf("fast-forward to instruction %d of %s: %w", pos, m.Prog.Name, err)
		}
		if n < step && m.Halted {
			return fmt.Errorf("%s halted at instruction %d before reaching %d", m.Prog.Name, m.Insts, pos)
		}
	}
	return nil
}

// journalPoint emits one per-point journal record. The record carries
// enough raw counts that the plan's whole-program aggregates can be
// recomputed exactly from the journal alone (see docs/OBSERVABILITY.md
// for the schema).
func journalPoint(rt *obs.Runtime, plan *sampling.Plan, cfgName string, rec PointRecord) {
	if rt == nil {
		return
	}
	rt.Metrics().Histogram("pipeline.point_wall_seconds").
		Observe((rec.WallFunctional + rec.WallDetailed).Seconds())
	rt.Emit("point", map[string]any{
		"benchmark":          plan.Benchmark,
		"method":             plan.Method,
		"config":             cfgName,
		"index":              rec.Index,
		"start":              rec.Start,
		"end":                rec.End,
		"weight":             rec.Weight,
		"insts":              rec.Insts,
		"cycles":             rec.Cycles,
		"cpi":                rec.CPI,
		"l1_hit":             rec.L1Hit,
		"l2_hit":             rec.L2Hit,
		"l1_accesses":        rec.L1Accesses,
		"l1_hits":            rec.L1Hits,
		"l2_accesses":        rec.L2Accesses,
		"l2_hits":            rec.L2Hits,
		"ff":                 rec.FastForward,
		"warmed":             rec.Warmed,
		"lead":               rec.Lead,
		"tail":               rec.Tail,
		"wall_functional_ns": rec.WallFunctional.Nanoseconds(),
		"wall_detailed_ns":   rec.WallDetailed.Nanoseconds(),
	})
	// The live-in record is the storage schema for portable
	// checkpoints: together with the point record it specifies exactly
	// which architectural state a checkpoint at this boundary must
	// capture (see docs/OBSERVABILITY.md).
	rt.Emit("static_livein", map[string]any{
		"benchmark": plan.Benchmark,
		"method":    plan.Method,
		"config":    cfgName,
		"index":     rec.Index,
		"start":     rec.Start,
		"pc":        rec.LiveIn.PC,
		"live_int":  rec.LiveIn.Int,
		"live_fp":   rec.LiveIn.FP,
		"mem":       rec.LiveIn.Mem,
		"regs":      dataflow.FromMasks(rec.LiveIn.Int, rec.LiveIn.FP).String(),
	})
}

func ratioOr1(num, den float64) float64 {
	if den == 0 {
		return 1
	}
	return num / den
}

// Deviations compares an estimate against ground truth and returns the
// relative errors of the three Table II metrics.
func Deviations(est *Estimate, truth cpu.Result) (cpiDev, l1Dev, l2Dev float64) {
	return stats.Deviation(est.CPI, truth.CPI()),
		stats.Deviation(est.L1Hit, truth.L1HitRate()),
		stats.Deviation(est.L2Hit, truth.L2HitRate())
}

// MeasuredRates derives a sampling.TimeModel from this machine's own
// measured simulator rates: it times a short functional run and a
// short detailed run of the given program. Used for the
// measured-rates variant of the speedup tables.
func MeasuredRates(p *prog.Program, cfg cpu.Config, probeInsts uint64) (sampling.TimeModel, error) {
	if probeInsts == 0 {
		probeInsts = 200_000
	}
	m := emu.New(p, 0)
	t0 := time.Now()
	nf, err := m.Run(probeInsts)
	if err != nil {
		return sampling.TimeModel{}, err
	}
	fdur := time.Since(t0)

	m2 := emu.New(p, 0)
	sim, err := cpu.New(cfg)
	if err != nil {
		return sampling.TimeModel{}, err
	}
	t0 = time.Now()
	res, err := sim.Run(m2, probeInsts)
	if err != nil {
		return sampling.TimeModel{}, err
	}
	ddur := time.Since(t0)
	if fdur <= 0 || ddur <= 0 || nf == 0 || res.Insts == 0 {
		return sampling.TimeModel{}, degenerateProbeErr(p.Name, probeInsts, nf, fdur, res.Insts, ddur)
	}
	return sampling.TimeModel{
		Name:           "measured",
		DetailedRate:   float64(res.Insts) / ddur.Seconds(),
		FunctionalRate: float64(nf) / fdur.Seconds(),
	}, nil
}

// degenerateProbeErr reports a rate probe whose functional or detailed
// leg measured no work or no time, including everything that was
// measured so the caller can size the next probe.
func degenerateProbeErr(bench string, probeInsts, nf uint64, fdur time.Duration, nd uint64, ddur time.Duration) error {
	return fmt.Errorf(
		"pipeline: degenerate rate probe on %s (probeInsts %d): functional %d insts in %v, detailed %d insts in %v; raise probeInsts until both runs measure nonzero work and time",
		bench, probeInsts, nf, fdur, nd, ddur)
}
