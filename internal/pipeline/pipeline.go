// Package pipeline orchestrates end-to-end sampled simulation: it
// executes a sampling plan (functional fast-forward between points,
// cold detailed simulation of each point), combines point metrics by
// weight into whole-program estimates, obtains ground truth from a
// full detailed run, and evaluates both the paper's modeled speedups
// and measured wall-clock splits.
package pipeline

import (
	"fmt"
	"time"

	"mlpa/internal/cpu"
	"mlpa/internal/emu"
	"mlpa/internal/obs"
	"mlpa/internal/prog"
	"mlpa/internal/sampling"
	"mlpa/internal/staticanalysis"
	"mlpa/internal/stats"
)

// ExecOptions controls plan execution.
type ExecOptions struct {
	// Warmup, when non-zero, functionally warms caches and predictor
	// over up to this many trailing instructions of each fast-forward
	// gap, and carries microarchitectural state across points
	// (SMARTS-style warmth carryover). When zero, every point runs on
	// a cold context, which is what plain fast-forwarding implies.
	//
	// At this reproduction's nominal-to-emulated scale, interval
	// lengths shrink by the scale factor while cache capacities and
	// miss latencies do not, so cold-start transients that cost a few
	// percent at the paper's 10M-instruction intervals would dominate
	// scaled points entirely. The experiment harness therefore applies
	// the same warmup policy to every method; the cold variant remains
	// available for the cold-start ablation.
	Warmup uint64

	// DetailLeadIn, when non-zero, additionally simulates up to this
	// many instructions in detail immediately before each point with
	// the statistics discarded, so the measured region starts with a
	// filled out-of-order window instead of an empty pipeline
	// (detailed warmup). Scaled-down points are short enough that the
	// pipeline ramp would otherwise bias every point's CPI upward.
	DetailLeadIn uint64

	// RunAhead, when non-zero, continues detailed execution up to this
	// many instructions past each point with the statistics discarded,
	// so the point's trailing memory latencies overlap successor work
	// as they would in continuous simulation instead of draining into
	// the point's own cycle count. Without it, short scaled points
	// containing miss bursts absorb a full drain latency apiece.
	RunAhead uint64

	// Obs, when non-nil, receives per-point journal records, stage
	// spans and pipeline metrics for the run. A nil Obs costs nothing.
	Obs *obs.Runtime
}

// PointRecord is the observable outcome of one executed simulation
// point. ExecutePlan retains one record per point on the Estimate and
// journals it through ExecOptions.Obs, so per-point behaviour — which
// the weighted sums would otherwise discard — stays inspectable. The
// raw hit/access counts are kept alongside the derived rates so the
// whole-program aggregates can be reproduced from the records alone.
type PointRecord struct {
	Index  int     `json:"index"`
	Start  uint64  `json:"start"`
	End    uint64  `json:"end"`
	Weight float64 `json:"weight"`

	// Measured-region metrics.
	Insts  uint64  `json:"insts"`
	Cycles uint64  `json:"cycles"`
	CPI    float64 `json:"cpi"`
	L1Hit  float64 `json:"l1_hit"`
	L2Hit  float64 `json:"l2_hit"`

	// Raw cache counts for exact re-aggregation.
	L1Accesses uint64 `json:"l1_accesses"`
	L1Hits     uint64 `json:"l1_hits"`
	L2Accesses uint64 `json:"l2_accesses"`
	L2Hits     uint64 `json:"l2_hits"`

	// Warmup split: how the gap before the point (and the discarded
	// detailed regions around it) was spent, in instructions.
	FastForward uint64 `json:"ff"`
	Warmed      uint64 `json:"warmed"`
	Lead        uint64 `json:"lead"`
	Tail        uint64 `json:"tail"`

	// Wall-clock split attributable to this point.
	WallFunctional time.Duration `json:"wall_functional_ns"`
	WallDetailed   time.Duration `json:"wall_detailed_ns"`
}

// Estimate is the outcome of executing one sampling plan.
type Estimate struct {
	Benchmark string
	Method    string

	// Weighted whole-program metric estimates (Table II metrics).
	CPI   float64
	L1Hit float64
	L2Hit float64

	// Instruction split (Table III metrics).
	DetailedInsts   uint64
	FunctionalInsts uint64
	TotalInsts      uint64
	Points          int

	// Measured wall-clock split of this reproduction's own simulators.
	WallDetailed   time.Duration
	WallFunctional time.Duration

	// PointRecords holds one record per executed point, in plan order.
	PointRecords []PointRecord
}

// DetailedFraction returns DetailedInsts / TotalInsts.
func (e *Estimate) DetailedFraction() float64 {
	if e.TotalInsts == 0 {
		return 0
	}
	return float64(e.DetailedInsts) / float64(e.TotalInsts)
}

// FunctionalFraction returns FunctionalInsts / TotalInsts.
func (e *Estimate) FunctionalFraction() float64 {
	if e.TotalInsts == 0 {
		return 0
	}
	return float64(e.FunctionalInsts) / float64(e.TotalInsts)
}

// Wall returns the total measured wall time.
func (e *Estimate) Wall() time.Duration { return e.WallDetailed + e.WallFunctional }

// FullDetailed runs the whole program through the detailed simulator
// (the sim-outorder baseline that defines ground truth).
func FullDetailed(p *prog.Program, cfg cpu.Config) (cpu.Result, time.Duration, error) {
	if err := staticanalysis.Preflight(p); err != nil {
		return cpu.Result{}, 0, fmt.Errorf("pipeline: preflight for %s: %w", p.Name, err)
	}
	m := emu.New(p, 0)
	s, err := cpu.New(cfg)
	if err != nil {
		return cpu.Result{}, 0, err
	}
	t0 := time.Now()
	res, err := s.Run(m, 0)
	if err != nil {
		return cpu.Result{}, 0, fmt.Errorf("pipeline: full detailed run of %s: %w", p.Name, err)
	}
	return res, time.Since(t0), nil
}

// ExecutePlan performs the sampled simulation a plan describes and
// returns the weighted estimates. Each point runs on a cold detailed
// context, as the paper's fast-forward methodology implies; pass
// ExecOptions.Warmup to warm structures functionally instead.
func ExecutePlan(p *prog.Program, plan *sampling.Plan, cfg cpu.Config, opts ExecOptions) (*Estimate, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	// Preflight: refuse to spend emulation time on a malformed guest.
	// Memoized per program, so re-executing plans costs nothing extra.
	if err := staticanalysis.Preflight(p); err != nil {
		return nil, fmt.Errorf("pipeline: preflight for %s/%s: %w", plan.Benchmark, plan.Method, err)
	}
	span := opts.Obs.StartSpan("pipeline.execute_plan",
		obs.KV("benchmark", plan.Benchmark),
		obs.KV("method", plan.Method),
		obs.KV("config", cfg.Name),
		obs.KV("points", len(plan.Points)))
	defer span.End()
	reg := opts.Obs.Metrics()
	m := emu.New(p, 0)
	m.Metrics = reg
	est := &Estimate{
		Benchmark:       plan.Benchmark,
		Method:          plan.Method,
		TotalInsts:      plan.TotalInsts,
		DetailedInsts:   plan.DetailedInsts(),
		FunctionalInsts: plan.FunctionalInsts(),
		Points:          len(plan.Points),
	}
	var l1Num, l1Den, l2Num, l2Den float64
	// With warmup, one detailed context carries cache and predictor
	// state across all points; without, every point starts cold on a
	// fresh context.
	var carried *cpu.Sim
	if opts.Warmup > 0 {
		var err error
		carried, err = cpu.New(cfg)
		if err != nil {
			return nil, err
		}
		carried.Metrics = reg
	}
	// seen counts the instructions the (carried) detailed context has
	// observed, via warming or detailed execution.
	var seen uint64
	for pi, pt := range plan.Points {
		if pt.Start < m.Insts {
			return nil, fmt.Errorf("pipeline: plan %s/%s: point %d [%d,%d) overlaps the previous point or is unsorted (machine already at instruction %d)",
				plan.Benchmark, plan.Method, pi, pt.Start, pt.End, m.Insts)
		}
		sim := carried
		if sim == nil {
			var err error
			sim, err = cpu.New(cfg)
			if err != nil {
				return nil, err
			}
			sim.Metrics = reg
		}
		// The gap before the point splits into plain fast-forward,
		// functional warming, and a detailed lead-in region whose
		// statistics are discarded.
		ff := pt.Start - m.Insts
		lead := opts.DetailLeadIn
		if lead > ff {
			lead = ff
		}
		warm := opts.Warmup
		if warm > ff-lead {
			warm = ff - lead
		}
		t0 := time.Now()
		if skip := ff - warm - lead; skip > 0 {
			if _, err := m.Run(skip); err != nil {
				return nil, fmt.Errorf("pipeline: fast-forward in %s: %w", plan.Benchmark, err)
			}
		}
		if warm > 0 {
			if err := sim.Warm(m, warm); err != nil {
				return nil, err
			}
		}
		seen += warm
		if opts.Warmup > 0 && seen < pt.Len() {
			// The context has observed less history than the point is
			// long — typically the first points of a plan, which
			// COASTS places at the very start of the program. Dry-run
			// the point region on a cloned machine to warm the
			// instruction cache and branch predictor (data state is
			// left untouched; see cpu.WarmCode), so the point measures
			// the steady-state behaviour of the phase it represents
			// rather than one-time code-fill transients.
			if err := sim.WarmCode(m.Clone(), pt.Len()); err != nil {
				return nil, err
			}
		}
		wallFunc := time.Since(t0)
		est.WallFunctional += wallFunc

		// Run-ahead is bounded by the distance to the next point (or
		// program end), so the machine never advances into a region
		// another point will measure.
		tail := opts.RunAhead
		limit := plan.TotalInsts
		if pi+1 < len(plan.Points) {
			limit = plan.Points[pi+1].Start
		}
		if avail := limit - pt.End; tail > avail {
			tail = avail
		}

		t0 = time.Now()
		res, err := sim.RunWindow(m, lead, pt.Len(), tail)
		wallDet := time.Since(t0)
		est.WallDetailed += wallDet
		if err != nil {
			return nil, fmt.Errorf("pipeline: detailed point %d [%d,%d) in %s/%s: %w",
				pi, pt.Start, pt.End, plan.Benchmark, plan.Method, err)
		}
		if res.Insts != pt.Len() {
			return nil, fmt.Errorf("pipeline: point %d [%d,%d) in %s/%s simulated %d instructions, want %d",
				pi, pt.Start, pt.End, plan.Benchmark, plan.Method, res.Insts, pt.Len())
		}
		seen += lead + pt.Len() + tail
		est.CPI += pt.Weight * res.CPI()
		// Hit rates are access-weighted: each point contributes its
		// access *density* scaled by its representativeness weight, so
		// phases that barely touch a cache level cannot dominate its
		// estimated hit rate.
		perInst := 1 / float64(res.Insts)
		l1Den += pt.Weight * float64(res.L1.Accesses) * perInst
		l1Num += pt.Weight * float64(res.L1.Hits()) * perInst
		l2Den += pt.Weight * float64(res.L2.Accesses) * perInst
		l2Num += pt.Weight * float64(res.L2.Hits()) * perInst

		rec := PointRecord{
			Index:          pi,
			Start:          pt.Start,
			End:            pt.End,
			Weight:         pt.Weight,
			Insts:          res.Insts,
			Cycles:         res.Cycles,
			CPI:            res.CPI(),
			L1Hit:          res.L1.HitRate(),
			L2Hit:          res.L2.HitRate(),
			L1Accesses:     res.L1.Accesses,
			L1Hits:         res.L1.Hits(),
			L2Accesses:     res.L2.Accesses,
			L2Hits:         res.L2.Hits(),
			FastForward:    ff - warm - lead,
			Warmed:         warm,
			Lead:           lead,
			Tail:           tail,
			WallFunctional: wallFunc,
			WallDetailed:   wallDet,
		}
		est.PointRecords = append(est.PointRecords, rec)
		journalPoint(opts.Obs, plan, cfg.Name, rec)
	}
	reg.Counter("pipeline.points_executed").Add(int64(len(plan.Points)))
	reg.Counter("pipeline.detailed_insts").Add(int64(est.DetailedInsts))
	reg.Counter("pipeline.functional_insts").Add(int64(est.FunctionalInsts))
	est.L1Hit = ratioOr1(l1Num, l1Den)
	est.L2Hit = ratioOr1(l2Num, l2Den)
	opts.Obs.Emit("estimate", map[string]any{
		"benchmark":          est.Benchmark,
		"method":             est.Method,
		"config":             cfg.Name,
		"cpi":                est.CPI,
		"l1_hit":             est.L1Hit,
		"l2_hit":             est.L2Hit,
		"points":             est.Points,
		"detailed_insts":     est.DetailedInsts,
		"functional_insts":   est.FunctionalInsts,
		"total_insts":        est.TotalInsts,
		"wall_detailed_ns":   est.WallDetailed.Nanoseconds(),
		"wall_functional_ns": est.WallFunctional.Nanoseconds(),
	})
	return est, nil
}

// journalPoint emits one per-point journal record. The record carries
// enough raw counts that the plan's whole-program aggregates can be
// recomputed exactly from the journal alone (see docs/OBSERVABILITY.md
// for the schema).
func journalPoint(rt *obs.Runtime, plan *sampling.Plan, cfgName string, rec PointRecord) {
	if rt == nil {
		return
	}
	rt.Metrics().Histogram("pipeline.point_wall_seconds").
		Observe((rec.WallFunctional + rec.WallDetailed).Seconds())
	rt.Emit("point", map[string]any{
		"benchmark":          plan.Benchmark,
		"method":             plan.Method,
		"config":             cfgName,
		"index":              rec.Index,
		"start":              rec.Start,
		"end":                rec.End,
		"weight":             rec.Weight,
		"insts":              rec.Insts,
		"cycles":             rec.Cycles,
		"cpi":                rec.CPI,
		"l1_hit":             rec.L1Hit,
		"l2_hit":             rec.L2Hit,
		"l1_accesses":        rec.L1Accesses,
		"l1_hits":            rec.L1Hits,
		"l2_accesses":        rec.L2Accesses,
		"l2_hits":            rec.L2Hits,
		"ff":                 rec.FastForward,
		"warmed":             rec.Warmed,
		"lead":               rec.Lead,
		"tail":               rec.Tail,
		"wall_functional_ns": rec.WallFunctional.Nanoseconds(),
		"wall_detailed_ns":   rec.WallDetailed.Nanoseconds(),
	})
}

func ratioOr1(num, den float64) float64 {
	if den == 0 {
		return 1
	}
	return num / den
}

// Deviations compares an estimate against ground truth and returns the
// relative errors of the three Table II metrics.
func Deviations(est *Estimate, truth cpu.Result) (cpiDev, l1Dev, l2Dev float64) {
	return stats.Deviation(est.CPI, truth.CPI()),
		stats.Deviation(est.L1Hit, truth.L1HitRate()),
		stats.Deviation(est.L2Hit, truth.L2HitRate())
}

// MeasuredRates derives a sampling.TimeModel from this machine's own
// measured simulator rates: it times a short functional run and a
// short detailed run of the given program. Used for the
// measured-rates variant of the speedup tables.
func MeasuredRates(p *prog.Program, cfg cpu.Config, probeInsts uint64) (sampling.TimeModel, error) {
	if probeInsts == 0 {
		probeInsts = 200_000
	}
	m := emu.New(p, 0)
	t0 := time.Now()
	nf, err := m.Run(probeInsts)
	if err != nil {
		return sampling.TimeModel{}, err
	}
	fdur := time.Since(t0)

	m2 := emu.New(p, 0)
	sim, err := cpu.New(cfg)
	if err != nil {
		return sampling.TimeModel{}, err
	}
	t0 = time.Now()
	res, err := sim.Run(m2, probeInsts)
	if err != nil {
		return sampling.TimeModel{}, err
	}
	ddur := time.Since(t0)
	if fdur <= 0 || ddur <= 0 || nf == 0 || res.Insts == 0 {
		return sampling.TimeModel{}, degenerateProbeErr(p.Name, probeInsts, nf, fdur, res.Insts, ddur)
	}
	return sampling.TimeModel{
		Name:           "measured",
		DetailedRate:   float64(res.Insts) / ddur.Seconds(),
		FunctionalRate: float64(nf) / fdur.Seconds(),
	}, nil
}

// degenerateProbeErr reports a rate probe whose functional or detailed
// leg measured no work or no time, including everything that was
// measured so the caller can size the next probe.
func degenerateProbeErr(bench string, probeInsts, nf uint64, fdur time.Duration, nd uint64, ddur time.Duration) error {
	return fmt.Errorf(
		"pipeline: degenerate rate probe on %s (probeInsts %d): functional %d insts in %v, detailed %d insts in %v; raise probeInsts until both runs measure nonzero work and time",
		bench, probeInsts, nf, fdur, nd, ddur)
}
