package pipeline

import (
	"context"
	"fmt"

	"mlpa/internal/ckpt"
	"mlpa/internal/emu"
	"mlpa/internal/obs"
	"mlpa/internal/prog"
	"mlpa/internal/sampling"
	"mlpa/internal/staticanalysis"
)

// ckptPolicy extracts the warm-policy fingerprint a checkpoint set is
// bound to from execution options. Only the fields that move the warm
// starts participate: workers, caches and observability never change
// what state a point needs.
func ckptPolicy(opts ExecOptions) ckpt.Policy {
	return ckpt.Policy{Warmup: opts.Warmup, DetailLeadIn: opts.DetailLeadIn, RunAhead: opts.RunAhead}
}

// BuildCheckpointSet runs one functional pass over the program and
// captures a portable checkpoint set for (p, plan, opts' warm policy):
// per plan point, the live-in-scrubbed architectural state and touched
// memory footprint at the point's warm start — the position
// ExecutePlan's scheduler materializes machines at. The pass costs one
// fast-forward to the last warm start; every subsequent
// ExecutePlan with ExecOptions.Checkpoints then restores points in
// O(checkpoint size) instead of re-paying fast-forward, and the
// resulting estimates are bit-identical to from-scratch execution.
func BuildCheckpointSet(p *prog.Program, plan *sampling.Plan, opts ExecOptions) (*ckpt.Set, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if err := staticanalysis.Preflight(p); err != nil {
		return nil, fmt.Errorf("pipeline: preflight for %s/%s: %w", plan.Benchmark, plan.Method, err)
	}
	tasks, err := planTasks(plan, opts)
	if err != nil {
		return nil, err
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	span := opts.Obs.StartSpan("pipeline.build_ckpt_set",
		obs.KV("benchmark", plan.Benchmark), obs.KV("method", plan.Method))
	defer span.End()

	m := emu.New(p, 0)
	m.TrackDirtyPages()
	set := &ckpt.Set{
		ProgramName: p.Name,
		ProgramHash: ckpt.ProgramHash(p),
		Assembly:    p.Disassemble(),
		DataSize:    p.DataSize,
		Plan:        plan,
		Policy:      ckptPolicy(opts),
		Program:     p,
	}
	for pi := range plan.Points {
		// Warm starts are nondecreasing (planTasks guarantees each
		// point's warm window begins at or after the previous point's),
		// so one forward pass visits every capture position in order.
		ws := tasks[pi].warmStart
		if m.Insts > ws {
			return nil, fmt.Errorf("pipeline: checkpoint pass for %s/%s overshot point %d: machine at %d, warm start %d",
				plan.Benchmark, plan.Method, pi, m.Insts, ws)
		}
		if m.Insts < ws {
			if err := fastForward(ctx, m, ws); err != nil {
				return nil, fmt.Errorf("pipeline: checkpoint pass: %w", err)
			}
		}
		livein, err := boundaryLiveIn(m)
		if err != nil {
			return nil, fmt.Errorf("pipeline: checkpoint pass live-in at point %d: %w", pi, err)
		}
		st, err := ckpt.Capture(m, pi, livein)
		if err != nil {
			return nil, fmt.Errorf("pipeline: checkpoint pass capture at point %d: %w", pi, err)
		}
		set.States = append(set.States, st)
	}
	if rt := opts.Obs; rt != nil {
		rt.Metrics().Counter("pipeline.ckpt_states_built").Add(int64(len(set.States)))
		rt.Metrics().Gauge("pipeline.ckpt_set_bytes").Set(float64(set.ApproxBytes()))
	}
	return set, nil
}
