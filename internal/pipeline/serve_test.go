package pipeline

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"mlpa/internal/bench"
	"mlpa/internal/config"
	"mlpa/internal/obs"
	"mlpa/internal/simpoint"
)

func scrapeSnapshot(t *testing.T, base string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var s obs.Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatalf("bad /metrics json: %v\n%s", err, body)
	}
	return s
}

func scrapeProgress(t *testing.T, base string) []obs.StageStatus {
	t.Helper()
	resp, err := http.Get(base + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var stages []obs.StageStatus
	if err := json.Unmarshal(body, &stages); err != nil {
		t.Fatalf("bad /progress json: %v\n%s", err, body)
	}
	return stages
}

// TestLiveExportDuringRun serves /metrics and /progress from a runtime
// that a real ExecutePlan is writing into, scraping concurrently with
// the run: every counter must advance monotonically across scrapes,
// and the final progress must account for every plan point. Run under
// -race this is the acceptance check that live export never perturbs
// or races the pipeline.
func TestLiveExportDuringRun(t *testing.T) {
	spec, err := bench.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{
		IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	rt := obs.New(nil)
	srv := httptest.NewServer(obs.Handler(rt))
	defer srv.Close()

	type result struct {
		est *Estimate
		err error
	}
	done := make(chan result, 1)
	go func() {
		est, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{
			Warmup: 2000, DetailLeadIn: 256, Workers: 2, Obs: rt,
		})
		done <- result{est, err}
	}()

	// Scrape while the run is in flight (and at least once after), and
	// assert monotonic counters throughout.
	var prev obs.Snapshot
	check := func() {
		t.Helper()
		cur := scrapeSnapshot(t, srv.URL)
		for name, v := range prev.Counters {
			if cur.Counters[name] < v {
				t.Errorf("counter %s went backwards: %d -> %d", name, v, cur.Counters[name])
			}
		}
		for name, h := range prev.Histograms {
			if cur.Histograms[name].Count < h.Count {
				t.Errorf("histogram %s count went backwards", name)
			}
		}
		prev = cur
	}
	var res result
	for running := true; running; {
		select {
		case res = <-done:
			running = false
		default:
			check()
		}
	}
	if res.err != nil {
		t.Fatal(res.err)
	}
	check() // final state

	if got := prev.Counters["pipeline.points_executed"]; got != int64(res.est.Points) {
		t.Errorf("final pipeline.points_executed = %d, want %d", got, res.est.Points)
	}
	stages := scrapeProgress(t, srv.URL)
	var found bool
	for _, st := range stages {
		if st.Name != "pipeline.points" {
			continue
		}
		found = true
		if st.Total != int64(res.est.Points) || st.Done != st.Total || st.Frac != 1.0 {
			t.Errorf("pipeline.points = %+v, want %d/%d frac 1", st, res.est.Points, res.est.Points)
		}
	}
	if !found {
		t.Errorf("no pipeline.points stage in /progress: %+v", stages)
	}
}

// nullSink swallows sampler records, standing in for a side-channel
// stream that must not reach the journal.
type nullSink struct{}

func (nullSink) Emit(obs.Record) {}

// TestServeAndSamplerDoNotPerturbJournal is the bit-identity
// acceptance check: a run with the live server being scraped and a
// fast sampler attached must produce the same estimate and the same
// journal skeleton as a plain run.
func TestServeAndSamplerDoNotPerturbJournal(t *testing.T) {
	spec, err := bench.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{
		IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	run := func(serve bool) (*Estimate, []map[string]any) {
		t.Helper()
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		rt := obs.New(sink)

		var srv *httptest.Server
		var sampler *obs.Sampler
		var stopScrape chan struct{}
		if serve {
			srv = httptest.NewServer(obs.Handler(rt))
			defer srv.Close()
			// Sampler to a side channel at an aggressive interval, so it
			// snapshots mid-run many times.
			sampler = obs.StartSampler(rt.Metrics(), nullSink{}, obs.SamplerOptions{Interval: time.Millisecond, Delta: true})
			stopScrape = make(chan struct{})
			go func() {
				for {
					select {
					case <-stopScrape:
						return
					default:
						resp, err := http.Get(srv.URL + "/metrics?delta=1")
						if err == nil {
							io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
						}
					}
				}
			}()
		}

		est, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{
			Warmup: 2000, DetailLeadIn: 256, Workers: 2, Obs: rt,
		})
		if serve {
			close(stopScrape)
			sampler.Stop()
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Err(); err != nil {
			t.Fatal(err)
		}
		return stripWall(est), journalSkeleton(t, &buf)
	}

	plainEst, plainJournal := run(false)
	servedEst, servedJournal := run(true)
	if !reflect.DeepEqual(plainEst, servedEst) {
		t.Errorf("estimate changed under live export:\n got %s\nwant %s",
			dumpEstimate(servedEst), dumpEstimate(plainEst))
	}
	if !reflect.DeepEqual(plainJournal, servedJournal) {
		t.Error("journal skeleton changed under live export")
	}
}
