package pipeline

import (
	"math"
	"testing"

	"mlpa/internal/bench"
	"mlpa/internal/config"
	"mlpa/internal/simpoint"
)

func TestCheckpointedExecutionMatchesDirect(t *testing.T) {
	// Checkpoints restore architectural state only, so the comparison
	// needs a workload whose data-side timing is warm-state-invariant
	// — the property the suite kernels guarantee (see DESIGN.md).
	spec, err := bench.ByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	p := spec.MustProgram(bench.SizeTiny)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{
		IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := MakeCheckpoints(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.States) != len(plan.Points) {
		t.Fatalf("checkpoints = %d, points = %d", len(ck.States), len(plan.Points))
	}

	direct, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{Warmup: math.MaxUint32, DetailLeadIn: 512})
	if err != nil {
		t.Fatal(err)
	}
	fromCk, err := ExecuteFromCheckpoints(p, ck, config.BaseA())
	if err != nil {
		t.Fatal(err)
	}
	// Checkpointed execution trades warming for restore; estimates
	// must stay close.
	if rel := (fromCk.CPI - direct.CPI) / direct.CPI; rel > 0.25 || rel < -0.25 {
		t.Errorf("checkpointed CPI %v vs direct %v", fromCk.CPI, direct.CPI)
	}
	if fromCk.Method != plan.Method+"+ckpt" {
		t.Errorf("method = %q", fromCk.Method)
	}
	// The same checkpoints replay under configuration B.
	if _, err := ExecuteFromCheckpoints(p, ck, config.SensitivityB()); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteFromCheckpointsMismatch(t *testing.T) {
	p := phasedProgram(t, 10)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: 2000, Kmax: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := MakeCheckpoints(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	ck.States = ck.States[:len(ck.States)-1]
	if _, err := ExecuteFromCheckpoints(p, ck, config.BaseA()); err == nil {
		t.Error("mismatched checkpoint count accepted")
	}
}
