package pipeline

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"mlpa/internal/bench"
	"mlpa/internal/ckpt"
	"mlpa/internal/config"
	"mlpa/internal/cpu"
	"mlpa/internal/obs"
	"mlpa/internal/simpoint"
)

// ckptExecOpts is the warm policy the checkpoint differential tests
// run under — finite warmup, so checkpoint-backed execution actually
// replaces fast-forward work (Warmup=MaxUint64 would pin every warm
// start to instruction zero).
func ckptExecOpts(workers int) ExecOptions {
	return ExecOptions{Warmup: 2000, DetailLeadIn: 256, RunAhead: 128, Workers: workers}
}

// TestCheckpointBackedBitIdentical is the acceptance harness for
// checkpoint-backed execution: for every suite benchmark under both
// Table I configurations at 1 and 4 workers, ExecutePlan restoring
// from a BuildCheckpointSet set must produce bit-identical estimates,
// point records and journal streams to from-scratch execution
// (wall-clock fields excepted). Run with -race in CI.
func TestCheckpointBackedBitIdentical(t *testing.T) {
	configs := []cpu.Config{config.BaseA(), config.SensitivityB()}
	for _, spec := range bench.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p := spec.MustProgram(bench.SizeTiny)
			plan, _, _, err := simpoint.Select(p, simpoint.Config{
				IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 8, Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			set, err := BuildCheckpointSet(p, plan, ckptExecOpts(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range configs {
				for _, workers := range []int{1, 4} {
					runOne := func(set *ckpt.Set) (*Estimate, []map[string]any) {
						var buf bytes.Buffer
						sink := obs.NewJSONLSink(&buf)
						opts := ckptExecOpts(workers)
						opts.Obs = obs.New(sink)
						opts.Checkpoints = set
						est, err := ExecutePlan(p, plan, cfg, opts)
						if err != nil {
							t.Fatalf("config %s workers %d ckpt=%v: %v", cfg.Name, workers, set != nil, err)
						}
						if err := sink.Err(); err != nil {
							t.Fatal(err)
						}
						return stripWall(est), journalSkeleton(t, &buf)
					}
					wantEst, wantJournal := runOne(nil)
					gotEst, gotJournal := runOne(set)
					if !reflect.DeepEqual(gotEst, wantEst) {
						t.Errorf("config %s workers %d: checkpoint-backed estimate differs from scratch:\n got %s\nwant %s",
							cfg.Name, workers, dumpEstimate(gotEst), dumpEstimate(wantEst))
					}
					if !reflect.DeepEqual(gotJournal, wantJournal) {
						t.Errorf("config %s workers %d: checkpoint-backed journal stream differs from scratch",
							cfg.Name, workers)
					}
				}
			}
		})
	}
}

// TestCheckpointBackedFromDisk: a set that has round-tripped through
// the on-disk layout (Save → Load, program reassembled from the
// embedded image) still drives bit-identical execution.
func TestCheckpointBackedFromDisk(t *testing.T) {
	spec := bench.Suite()[0]
	p := spec.MustProgram(bench.SizeTiny)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{
		IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 6, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	set, err := BuildCheckpointSet(p, plan, ckptExecOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := set.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.BaseA()
	want, err := ExecutePlan(p, plan, cfg, ckptExecOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	// Execute against the loaded set's own reassembled program and plan
	// — the CLI path, where no in-memory originals exist.
	opts := ckptExecOpts(2)
	opts.Checkpoints = loaded
	got, err := ExecutePlan(loaded.Program, loaded.Plan, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(got), stripWall(want)) {
		t.Errorf("disk-loaded checkpoint execution differs from scratch:\n got %s\nwant %s",
			dumpEstimate(stripWall(got)), dumpEstimate(stripWall(want)))
	}
}

// TestExecutePlanRejectsMismatchedSet: a set built for a different
// warm policy, plan or program fails ExecutePlan up front with
// ckpt.ErrMismatch instead of producing wrong estimates.
func TestExecutePlanRejectsMismatchedSet(t *testing.T) {
	suite := bench.Suite()
	p := suite[0].MustProgram(bench.SizeTiny)
	other := suite[1].MustProgram(bench.SizeTiny)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{
		IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 6, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	set, err := BuildCheckpointSet(p, plan, ckptExecOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.BaseA()

	opts := ckptExecOpts(1)
	opts.Warmup = 4000 // different policy than the set was built for
	opts.Checkpoints = set
	if _, err := ExecutePlan(p, plan, cfg, opts); !errors.Is(err, ckpt.ErrMismatch) {
		t.Errorf("policy mismatch: got %v, want ckpt.ErrMismatch", err)
	}

	otherPlan, _, _, err := simpoint.Select(p, simpoint.Config{
		IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts = ckptExecOpts(1)
	opts.Checkpoints = set
	if _, err := ExecutePlan(p, otherPlan, cfg, opts); !errors.Is(err, ckpt.ErrMismatch) {
		t.Errorf("plan mismatch: got %v, want ckpt.ErrMismatch", err)
	}

	if _, err := ExecutePlan(other, plan, cfg, opts); !errors.Is(err, ckpt.ErrMismatch) {
		t.Errorf("program mismatch: got %v, want ckpt.ErrMismatch", err)
	}
}
