package pipeline

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"mlpa/internal/bench"
	"mlpa/internal/config"
	"mlpa/internal/cpu"
	"mlpa/internal/obs"
	"mlpa/internal/parallel"
	"mlpa/internal/simpoint"
)

// stripWall zeroes the wall-clock fields, the only part of an Estimate
// the determinism contract excludes (docs/PARALLELISM.md).
func stripWall(est *Estimate) *Estimate {
	c := *est
	c.WallDetailed, c.WallFunctional = 0, 0
	c.PointRecords = make([]PointRecord, len(est.PointRecords))
	for i, r := range est.PointRecords {
		r.WallFunctional, r.WallDetailed = 0, 0
		c.PointRecords[i] = r
	}
	return &c
}

// journalSkeleton extracts the non-wall payload of every point and
// estimate event, in stream order.
func journalSkeleton(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	recs, err := obs.ReadJournal(buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	for _, rec := range recs {
		ev, _ := rec["ev"].(string)
		if ev != "point" && ev != "estimate" {
			continue
		}
		m := make(map[string]any, len(rec))
		for k, v := range rec {
			switch k {
			case "wall_functional_ns", "wall_detailed_ns", "ts", "dur_ns":
				continue
			}
			m[k] = v
		}
		out = append(out, m)
	}
	return out
}

// TestExecutePlanDeterministicAcrossWorkers is the golden determinism
// test: for every suite benchmark under both Table I configurations,
// ExecutePlan with 1, 2, 4 and 8 workers must produce bit-identical
// estimates, point records and journal streams (wall-clock fields
// excepted). Run it with -race to also exercise the scheduler for data
// races.
func TestExecutePlanDeterministicAcrossWorkers(t *testing.T) {
	configs := []cpu.Config{config.BaseA(), config.SensitivityB()}
	for _, spec := range bench.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p := spec.MustProgram(bench.SizeTiny)
			plan, _, _, err := simpoint.Select(p, simpoint.Config{
				IntervalLen: bench.FineInterval(bench.SizeTiny), Kmax: 8, Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range configs {
				var wantEst *Estimate
				var wantJournal []map[string]any
				for _, workers := range []int{1, 2, 4, 8} {
					var buf bytes.Buffer
					sink := obs.NewJSONLSink(&buf)
					rt := obs.New(sink)
					est, err := ExecutePlan(p, plan, cfg, ExecOptions{
						Warmup:       2000,
						DetailLeadIn: 256,
						RunAhead:     128,
						Workers:      workers,
						Obs:          rt,
					})
					if err != nil {
						t.Fatalf("config %s workers %d: %v", cfg.Name, workers, err)
					}
					if err := sink.Err(); err != nil {
						t.Fatal(err)
					}
					got := stripWall(est)
					journal := journalSkeleton(t, &buf)
					if wantEst == nil {
						wantEst, wantJournal = got, journal
						continue
					}
					if !reflect.DeepEqual(got, wantEst) {
						t.Errorf("config %s: workers=%d estimate differs from workers=1:\n got %s\nwant %s",
							cfg.Name, workers, dumpEstimate(got), dumpEstimate(wantEst))
					}
					if !reflect.DeepEqual(journal, wantJournal) {
						t.Errorf("config %s: workers=%d journal stream differs from workers=1", cfg.Name, workers)
					}
				}
			}
		})
	}
}

// TestExecutePlanSharedCacheDeterministic: reusing one state cache
// across configurations and repeated runs must not change results.
func TestExecutePlanSharedCacheDeterministic(t *testing.T) {
	p := phasedProgram(t, 30)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: 2000, Kmax: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts ExecOptions) *Estimate {
		t.Helper()
		est, err := ExecutePlan(p, plan, config.BaseA(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return stripWall(est)
	}
	base := run(ExecOptions{Warmup: 3000, Workers: 1})
	cache := parallel.NewStateCache(p, 0, nil)
	for _, workers := range []int{1, 4} {
		got := run(ExecOptions{Warmup: 3000, Workers: workers, Cache: cache})
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d with shared cache differs from private-cache run", workers)
		}
	}
	// A second pass over the warm cache must be just as identical.
	if got := run(ExecOptions{Warmup: 3000, Workers: 4, Cache: cache}); !reflect.DeepEqual(got, base) {
		t.Error("second shared-cache pass differs")
	}
}

// TestExecutePlanMismatchedCacheIgnored: a cache built for another
// program must be ignored, not corrupt results.
func TestExecutePlanMismatchedCacheIgnored(t *testing.T) {
	p := phasedProgram(t, 20)
	other := phasedProgram(t, 5)
	plan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: 1000, Kmax: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExecutePlan(p, plan, config.BaseA(), ExecOptions{Workers: 2, Cache: parallel.NewStateCache(other, 0, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(got), stripWall(want)) {
		t.Error("mismatched cache changed results")
	}
}

func dumpEstimate(e *Estimate) string {
	return fmt.Sprintf("{CPI:%v L1:%v L2:%v Points:%d Det:%d Fun:%d recs:%d}",
		e.CPI, e.L1Hit, e.L2Hit, e.Points, e.DetailedInsts, e.FunctionalInsts, len(e.PointRecords))
}
