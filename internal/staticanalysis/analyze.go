package staticanalysis

import (
	"fmt"
	"strings"

	"mlpa/internal/prog"
)

// Analysis bundles every static view of one program. When the verifier
// finds structural problems that make control-flow analysis unsafe
// (bad targets, invalid opcodes), CFG, Dom and Loops are still built —
// the CFG constructor drops malformed edges — so the analyze CLI can
// render whatever structure remains alongside the report.
type Analysis struct {
	Report *Report
	CFG    *CFG
	Dom    *DomTree
	Loops  *Forest
}

// Analyze runs the verifier, builds the CFG and dominator tree, and
// extracts the natural-loop forest of p.
func Analyze(p *prog.Program) *Analysis {
	rep := Verify(p)
	g := BuildCFG(p)
	dom := Dominators(g)
	return &Analysis{
		Report: rep,
		CFG:    g,
		Dom:    dom,
		Loops:  FindLoops(g, dom),
	}
}

// Agreement records how one dynamically-discovered cyclic structure
// compares against the static natural-loop forest. COASTS journals one
// of these per boundary-collection pass.
type Agreement struct {
	// Head is the dynamic structure's head PC.
	Head int64 `json:"head"`
	// InStatic reports whether a static natural loop has this head.
	InStatic bool `json:"in_static"`
	// StaticDepth is the static nesting depth (-1 when InStatic is
	// false); DynamicDepth is the profiler's observed depth.
	StaticDepth  int `json:"static_depth"`
	DynamicDepth int `json:"dynamic_depth"`
}

// DepthMatch reports whether the static and dynamic nesting depths
// agree.
func (a Agreement) DepthMatch() bool { return a.InStatic && a.StaticDepth == a.DynamicDepth }

// CheckDynamic compares dynamically-observed structure heads (with
// their observed nesting depths) against the static loop forest.
func (f *Forest) CheckDynamic(heads []int64, depths []int) []Agreement {
	out := make([]Agreement, len(heads))
	for i, h := range heads {
		a := Agreement{Head: h, StaticDepth: -1, DynamicDepth: depths[i]}
		if l, ok := f.ByHead(h); ok {
			a.InStatic = true
			a.StaticDepth = l.Depth
		}
		out[i] = a
	}
	return out
}

// Summary renders a one-screen digest: verifier verdict, block/edge
// counts, loop count and the outer-loop candidates.
func (a *Analysis) Summary() string {
	var sb strings.Builder
	sb.WriteString(a.Report.String())
	edges := 0
	for _, s := range a.CFG.Succs {
		edges += len(s)
	}
	unreachable := 0
	for _, r := range a.CFG.Reachable {
		if !r {
			unreachable++
		}
	}
	fmt.Fprintf(&sb, "cfg: %d blocks, %d edges, %d unreachable; %d natural loops (%d outermost)\n",
		a.CFG.NumBlocks(), edges, unreachable, len(a.Loops.Loops), len(a.Loops.Roots))
	for i, l := range a.Loops.OuterCandidates() {
		fmt.Fprintf(&sb, "outer candidate %d: head=%d bodyInsts=%d blocks=%d\n",
			i, l.Head, l.BodyInsts, len(l.Blocks))
	}
	return sb.String()
}
