package staticanalysis

import (
	"fmt"
	"strings"
	"sync"

	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

// Rule identifies one verifier check.
type Rule string

// Verifier rules. Each names a distinct class of malformed control or
// data flow that would otherwise only surface (if at all) millions of
// instructions into an emulation run.
const (
	// RuleBadTarget: a direct branch/jump target outside [0, len(code)).
	RuleBadTarget Rule = "bad-target"
	// RuleMissingHalt: no halt instruction is reachable from entry.
	RuleMissingHalt Rule = "missing-halt"
	// RuleFallthroughEnd: a reachable block can fall through past the
	// last instruction of the program.
	RuleFallthroughEnd Rule = "fallthrough-end"
	// RuleUnreachable: a basic block no path from entry reaches.
	RuleUnreachable Rule = "unreachable-block"
	// RuleUninitRead: an instruction reads a register no instruction
	// in the program ever writes (always the architectural zero).
	RuleUninitRead Rule = "uninitialized-read"
	// RuleJrLinkage: a jr through a register no jal ever links, so its
	// target can never be a return address.
	RuleJrLinkage Rule = "broken-jr-linkage"
	// RuleInvalidOpcode: an undefined opcode in the code stream.
	RuleInvalidOpcode Rule = "invalid-opcode"
)

// Diag is one structured verifier finding.
type Diag struct {
	Rule Rule
	// PC is the offending instruction index (-1 for program-wide
	// findings such as a missing halt).
	PC int64
	// Inst is the disassembly of the offending instruction.
	Inst string
	// Label is the nearest label at or before PC ("name" or
	// "name+offset"), for human-readable context.
	Label string
	// Msg explains the finding.
	Msg string
}

func (d Diag) String() string {
	loc := "program"
	if d.PC >= 0 {
		loc = fmt.Sprintf("pc %d", d.PC)
		if d.Label != "" {
			loc += " (" + d.Label + ")"
		}
		if d.Inst != "" {
			loc += ": " + d.Inst
		}
	}
	return fmt.Sprintf("%s: %s: %s", d.Rule, loc, d.Msg)
}

// Report is the outcome of verifying one program.
type Report struct {
	Prog  string
	Diags []Diag
}

// OK reports whether the program passed every check.
func (r *Report) OK() bool { return len(r.Diags) == 0 }

// Err returns nil for a clean report, or an error summarizing every
// diagnostic.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "verify %q: %d finding(s)", r.Prog, len(r.Diags))
	for _, d := range r.Diags {
		sb.WriteString("\n  ")
		sb.WriteString(d.String())
	}
	return fmt.Errorf("%s", sb.String())
}

// String renders the report for the analyze CLI.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("verify %q: ok\n", r.Prog)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "verify %q: %d finding(s)\n", r.Prog, len(r.Diags))
	for _, d := range r.Diags {
		fmt.Fprintf(&sb, "  %s\n", d)
	}
	return sb.String()
}

// add appends a diagnostic anchored at pc with label context.
func (r *Report) add(p *prog.Program, labels *labelIdx, rule Rule, pc int64, format string, args ...any) {
	d := Diag{Rule: rule, PC: pc, Msg: fmt.Sprintf(format, args...)}
	if pc >= 0 && pc < int64(len(p.Code)) {
		d.Inst = p.Code[pc].String()
		d.Label = labels.nearest(pc)
	}
	r.Diags = append(r.Diags, d)
}

// Verify statically checks p and returns a structured report. An empty
// program yields a single program-wide diagnostic.
func Verify(p *prog.Program) *Report {
	r := &Report{Prog: p.Name}
	labels := labelIndex(p)
	n := int64(len(p.Code))
	if n == 0 {
		r.add(p, labels, RuleMissingHalt, -1, "empty program")
		return r
	}

	// Instruction-local checks: opcode validity and direct-target
	// ranges. These must come first — the CFG drops bad edges, so the
	// structural checks below stay meaningful on malformed input.
	for i, in := range p.Code {
		pc := int64(i)
		if !in.Op.Valid() {
			r.add(p, labels, RuleInvalidOpcode, pc, "undefined opcode %d", uint8(in.Op))
			continue
		}
		if in.Op.IsBranch() && in.Op != isa.OpJr {
			if in.Targ < 0 || in.Targ >= n {
				r.add(p, labels, RuleBadTarget, pc, "target %d outside code [0,%d)", in.Targ, n)
			}
		}
	}

	g := BuildCFG(p)

	// Reachability: a halt must be reachable, no reachable block may
	// fall off the end of code, and every block must be reachable.
	haltReachable := false
	for id, b := range g.Blocks {
		if !g.Reachable[id] {
			r.add(p, labels, RuleUnreachable, b.Start,
				"block B%d [%d,%d) is unreachable from entry", id, b.Start, b.End)
			continue
		}
		last := g.Terminator(id)
		for pc := b.Start; pc < b.End; pc++ {
			if p.Code[pc].Op == isa.OpHalt {
				haltReachable = true
			}
		}
		fallsThrough := last.Op != isa.OpHalt && last.Op != isa.OpJmp &&
			last.Op != isa.OpJal && last.Op != isa.OpJr
		if b.End == n && fallsThrough {
			r.add(p, labels, RuleFallthroughEnd, b.End-1,
				"execution can fall through past the last instruction; add halt or an unconditional transfer")
		}
	}
	if !haltReachable {
		r.add(p, labels, RuleMissingHalt, -1, "no halt instruction is reachable from entry")
	}

	// Whole-program register def/use: reads of registers that no
	// instruction writes. The machine zero-fills registers, so such a
	// read is a constant zero — in every observed case a guest-program
	// bug (a counter that was never initialized), so it is rejected.
	var written [int(isa.FPBase) + isa.NumFPRegs]bool
	jalLinks := map[isa.Reg]bool{}
	for _, in := range p.Code {
		if rd, ok := in.Dests(); ok {
			written[rd] = true
		}
		if in.Op == isa.OpJal {
			jalLinks[in.Rd] = true
		}
	}
	var srcs []isa.Reg
	seenUninit := map[isa.Reg]bool{}
	for i := range p.Code {
		in := &p.Code[i]
		srcs = in.Sources(srcs[:0])
		for _, s := range srcs {
			if !written[s] && !seenUninit[s] {
				seenUninit[s] = true
				r.add(p, labels, RuleUninitRead, int64(i),
					"reads %s, which no instruction writes (always zero)", s)
			}
		}
		if in.Op == isa.OpJr && !jalLinks[in.Rs1] {
			r.add(p, labels, RuleJrLinkage, int64(i),
				"jr through %s, but no jal links a return address into %s", in.Rs1, in.Rs1)
		}
	}
	return r
}

// preflightCache memoizes Preflight outcomes per *prog.Program, so the
// pipeline can verify unconditionally without re-walking the code on
// every point execution.
var preflightCache sync.Map // *prog.Program -> error (nil stored as untyped nil)

// Preflight verifies p once and caches the verdict for the lifetime of
// the Program value. It is what execution entry points call before
// spending emulation time on a possibly malformed guest.
func Preflight(p *prog.Program) error {
	if v, ok := preflightCache.Load(p); ok {
		if v == nil {
			return nil
		}
		return v.(error)
	}
	err := Verify(p).Err()
	if err == nil {
		preflightCache.Store(p, nil)
	} else {
		preflightCache.Store(p, err)
	}
	return err
}
