package staticanalysis

import (
	"strings"
	"testing"

	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

// rawProgram builds a Program directly, bypassing Builder/Assemble
// validation, so malformed code can be seeded.
func rawProgram(name string, code []isa.Inst) *prog.Program {
	return &prog.Program{Name: name, Code: code, Labels: map[string]int64{}}
}

func findRule(rep *Report, rule Rule) (Diag, bool) {
	for _, d := range rep.Diags {
		if d.Rule == rule {
			return d, true
		}
	}
	return Diag{}, false
}

// TestVerifyRejectsMalformed seeds the five malformed-program classes
// from the acceptance criteria and checks each is rejected with a
// diagnostic naming the offending instruction.
func TestVerifyRejectsMalformed(t *testing.T) {
	cases := []struct {
		name   string
		code   []isa.Inst
		rule   Rule
		wantPC int64
	}{
		{
			name: "bad_target",
			code: []isa.Inst{
				{Op: isa.OpAddi, Rd: 1, Rs1: isa.RZero, Imm: 3},
				{Op: isa.OpBne, Rs1: 1, Rs2: isa.RZero, Targ: 99},
				{Op: isa.OpHalt},
			},
			rule:   RuleBadTarget,
			wantPC: 1,
		},
		{
			name: "missing_halt",
			code: []isa.Inst{
				{Op: isa.OpAddi, Rd: 1, Rs1: isa.RZero, Imm: 1},
				{Op: isa.OpAddi, Rd: 1, Rs1: 1, Imm: 1},
			},
			rule:   RuleMissingHalt,
			wantPC: -1,
		},
		{
			name: "fallthrough_past_end",
			code: []isa.Inst{
				{Op: isa.OpAddi, Rd: 1, Rs1: isa.RZero, Imm: 2},
				{Op: isa.OpBne, Rs1: 1, Rs2: isa.RZero, Targ: 0},
			},
			rule:   RuleFallthroughEnd,
			wantPC: 1,
		},
		{
			name: "unreachable_block",
			code: []isa.Inst{
				{Op: isa.OpJmp, Targ: 3},
				{Op: isa.OpAddi, Rd: 1, Rs1: isa.RZero, Imm: 1}, // skipped island
				{Op: isa.OpAddi, Rd: 1, Rs1: 1, Imm: 1},
				{Op: isa.OpHalt},
			},
			rule:   RuleUnreachable,
			wantPC: 1,
		},
		{
			name: "uninitialized_read",
			code: []isa.Inst{
				{Op: isa.OpAdd, Rd: 1, Rs1: 7, Rs2: isa.RZero}, // r7 never written
				{Op: isa.OpHalt},
			},
			rule:   RuleUninitRead,
			wantPC: 0,
		},
		{
			name: "broken_jr_linkage",
			code: []isa.Inst{
				{Op: isa.OpAddi, Rd: 5, Rs1: isa.RZero, Imm: 2},
				{Op: isa.OpJr, Rs1: 5}, // no jal ever links r5
				{Op: isa.OpHalt},
			},
			rule:   RuleJrLinkage,
			wantPC: 1,
		},
		{
			name: "invalid_opcode",
			code: []isa.Inst{
				{Op: isa.Op(200)},
				{Op: isa.OpHalt},
			},
			rule:   RuleInvalidOpcode,
			wantPC: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Verify(rawProgram(tc.name, tc.code))
			if rep.OK() {
				t.Fatalf("verifier accepted malformed program %s", tc.name)
			}
			d, ok := findRule(rep, tc.rule)
			if !ok {
				t.Fatalf("no %s diagnostic; got %v", tc.rule, rep.Diags)
			}
			if d.PC != tc.wantPC {
				t.Errorf("%s diagnostic at pc %d, want %d", tc.rule, d.PC, tc.wantPC)
			}
			if tc.wantPC >= 0 && d.Inst == "" {
				t.Errorf("%s diagnostic does not name the offending instruction", tc.rule)
			}
			if rep.Err() == nil {
				t.Error("Err() = nil for failing report")
			}
		})
	}
}

// TestVerifyAcceptsExamples: every builder-generated example program
// is clean.
func TestVerifyAcceptsExamples(t *testing.T) {
	for _, p := range prog.Examples() {
		if rep := Verify(p); !rep.OK() {
			t.Errorf("%s: unexpected findings:\n%s", p.Name, rep)
		}
	}
}

// TestVerifyAcceptsCallLinkage: a proper jal/jr pairing passes both
// the linkage and reachability rules (the callee is only reachable
// through the call edge, the code after jal only through the return
// edge).
func TestVerifyAcceptsCallLinkage(t *testing.T) {
	p, err := prog.Assemble("call", `
        addi r1, r0, 5
        jal  r31, fn
        halt
    fn: addi r1, r1, 1
        jr   r31
`)
	if err != nil {
		t.Fatal(err)
	}
	if rep := Verify(p); !rep.OK() {
		t.Errorf("unexpected findings:\n%s", rep)
	}
}

func TestVerifyDiagnosticContext(t *testing.T) {
	p := rawProgram("ctx", []isa.Inst{
		{Op: isa.OpAddi, Rd: 1, Rs1: isa.RZero, Imm: 3},
		{Op: isa.OpBne, Rs1: 1, Rs2: isa.RZero, Targ: 44},
		{Op: isa.OpHalt},
	})
	p.Labels["top"] = 0
	rep := Verify(p)
	d, ok := findRule(rep, RuleBadTarget)
	if !ok {
		t.Fatalf("no bad-target diagnostic: %v", rep.Diags)
	}
	if d.Label != "top+1" {
		t.Errorf("label context = %q, want top+1", d.Label)
	}
	if !strings.Contains(d.Inst, "bne") {
		t.Errorf("disassembly %q does not mention bne", d.Inst)
	}
	if !strings.Contains(d.String(), "pc 1") {
		t.Errorf("diagnostic %q does not name pc 1", d)
	}
}

func TestPreflightMemoizes(t *testing.T) {
	bad := rawProgram("bad", []isa.Inst{{Op: isa.OpJmp, Targ: -5}, {Op: isa.OpHalt}})
	err1 := Preflight(bad)
	err2 := Preflight(bad)
	if err1 == nil || err2 == nil {
		t.Fatal("preflight accepted a malformed program")
	}
	good := prog.ExampleNested(2, 2)
	if err := Preflight(good); err != nil {
		t.Fatalf("preflight rejected a clean program: %v", err)
	}
	if err := Preflight(good); err != nil {
		t.Fatalf("memoized preflight rejected a clean program: %v", err)
	}
}
