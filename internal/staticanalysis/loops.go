package staticanalysis

import (
	"fmt"
	"sort"
	"strings"
)

// Loop is one natural loop: the strongly-nested region entered through
// a single header block that is the target of at least one back edge.
type Loop struct {
	// Head is the instruction index of the header block's first
	// instruction — the same PC the dynamic LoopProfiler reports as a
	// structure head (backward taken branches land on it).
	Head int64

	// HeadBlock is the header's basic-block ID.
	HeadBlock int

	// Blocks lists the body's basic-block IDs (header included),
	// ascending.
	Blocks []int

	// Latches lists the blocks whose back edges close the loop.
	Latches []int

	// BodyInsts is the static instruction count of the body.
	BodyInsts int64

	// Depth is the nesting depth (0 = outermost); Parent/Children are
	// indices into Forest.Loops (-1 for roots).
	Depth    int
	Parent   int
	Children []int
}

// Contains reports whether block id belongs to the loop body.
func (l *Loop) Contains(id int) bool {
	i := sort.SearchInts(l.Blocks, id)
	return i < len(l.Blocks) && l.Blocks[i] == id
}

// Forest is the natural-loop forest of a program.
type Forest struct {
	cfg *CFG

	// Loops holds every natural loop, ordered by ascending header PC.
	Loops []Loop

	// Roots indexes the outermost loops in Loops.
	Roots []int

	byHead map[int64]int
}

// FindLoops discovers the natural-loop forest: back edges are CFG
// edges u->h where h dominates u; each loop body is the set of blocks
// that reach a latch without passing through the header. Loops sharing
// a header are merged (the classic natural-loop construction).
func FindLoops(g *CFG, dom *DomTree) *Forest {
	// Collect back edges grouped by header.
	latchesOf := make(map[int][]int)
	for u := range g.Blocks {
		if !g.Reachable[u] {
			continue
		}
		for _, h := range g.Succs[u] {
			if dom.Dominates(h, u) {
				latchesOf[h] = append(latchesOf[h], u)
			}
		}
	}

	f := &Forest{cfg: g, byHead: make(map[int64]int)}
	heads := make([]int, 0, len(latchesOf))
	for h := range latchesOf {
		heads = append(heads, h)
	}
	sort.Ints(heads)

	for _, h := range heads {
		body := map[int]bool{h: true}
		var stack []int
		for _, u := range latchesOf[h] {
			if !body[u] {
				body[u] = true
				stack = append(stack, u)
			}
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range g.Preds[b] {
				if g.Reachable[p] && !body[p] {
					body[p] = true
					stack = append(stack, p)
				}
			}
		}
		blocks := make([]int, 0, len(body))
		for b := range body {
			blocks = append(blocks, b)
		}
		sort.Ints(blocks)
		var insts int64
		for _, b := range blocks {
			insts += g.Blocks[b].Len()
		}
		latches := dedupInts(append([]int(nil), latchesOf[h]...))
		f.Loops = append(f.Loops, Loop{
			Head:      g.Blocks[h].Start,
			HeadBlock: h,
			Blocks:    blocks,
			Latches:   latches,
			BodyInsts: insts,
			Parent:    -1,
		})
	}

	// Nesting: the parent of loop l is the smallest loop that strictly
	// contains l's header and is not l itself. Natural loops with
	// distinct headers are either disjoint or nested, so "smallest
	// containing" is well-defined.
	for i := range f.Loops {
		best := -1
		for j := range f.Loops {
			if i == j || !f.Loops[j].Contains(f.Loops[i].HeadBlock) {
				continue
			}
			if f.Loops[j].HeadBlock == f.Loops[i].HeadBlock {
				continue
			}
			if best == -1 || len(f.Loops[j].Blocks) < len(f.Loops[best].Blocks) {
				best = j
			}
		}
		f.Loops[i].Parent = best
	}
	for i := range f.Loops {
		if p := f.Loops[i].Parent; p >= 0 {
			f.Loops[p].Children = append(f.Loops[p].Children, i)
		} else {
			f.Roots = append(f.Roots, i)
		}
		f.byHead[f.Loops[i].Head] = i
	}
	for i := range f.Loops {
		f.Loops[i].Depth = f.depthOf(i)
	}
	return f
}

func (f *Forest) depthOf(i int) int {
	d := 0
	for p := f.Loops[i].Parent; p >= 0; p = f.Loops[p].Parent {
		d++
	}
	return d
}

// ByHead returns the loop whose header starts at instruction index
// head, if any.
func (f *Forest) ByHead(head int64) (Loop, bool) {
	i, ok := f.byHead[head]
	if !ok {
		return Loop{}, false
	}
	return f.Loops[i], true
}

// Heads returns the header PCs of every loop, ascending.
func (f *Forest) Heads() []int64 {
	out := make([]int64, len(f.Loops))
	for i, l := range f.Loops {
		out[i] = l.Head
	}
	return out
}

// OuterCandidates mirrors the dynamic LoopProfiler.SelectCoarse
// preference statically: outermost loops ordered by decreasing static
// body size (the best static prior for "most execution coverage"
// available without trip counts), ties broken by ascending header PC.
func (f *Forest) OuterCandidates() []Loop {
	out := make([]Loop, 0, len(f.Roots))
	for _, i := range f.Roots {
		out = append(out, f.Loops[i])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BodyInsts != out[j].BodyInsts {
			return out[i].BodyInsts > out[j].BodyInsts
		}
		return out[i].Head < out[j].Head
	})
	return out
}

// String renders the forest as an indented tree for the analyze CLI.
func (f *Forest) String() string {
	if len(f.Loops) == 0 {
		return "(no loops)\n"
	}
	labels := labelIndex(f.cfg.Prog)
	var sb strings.Builder
	var walk func(i int)
	walk = func(i int) {
		l := f.Loops[i]
		name := labels.nearest(l.Head)
		if name != "" {
			name = " " + name
		}
		fmt.Fprintf(&sb, "%sloop head=%d%s depth=%d blocks=%d bodyInsts=%d latches=%v\n",
			strings.Repeat("  ", l.Depth), l.Head, name, l.Depth, len(l.Blocks), l.BodyInsts, l.Latches)
		for _, c := range l.Children {
			walk(c)
		}
	}
	for _, r := range f.Roots {
		walk(r)
	}
	return sb.String()
}
