package staticanalysis

import (
	"fmt"
	"strings"
)

// DomTree is the dominator tree of a CFG, computed with the
// Cooper-Harvey-Kennedy iterative algorithm ("A Simple, Fast
// Dominance Algorithm"). Unreachable blocks have no dominator
// information (Idom -1).
type DomTree struct {
	cfg *CFG

	// Idom[b] is the immediate dominator of block b. The entry block
	// is its own idom; unreachable blocks hold -1.
	Idom []int

	// Children[b] lists the blocks immediately dominated by b.
	Children [][]int

	rpoNum []int // block -> reverse-postorder number; -1 if unreachable
}

// Dominators computes the dominator tree of g.
func Dominators(g *CFG) *DomTree {
	rpo := g.RPO()
	d := &DomTree{
		cfg:    g,
		Idom:   make([]int, g.NumBlocks()),
		rpoNum: make([]int, g.NumBlocks()),
	}
	for i := range d.Idom {
		d.Idom[i] = -1
		d.rpoNum[i] = -1
	}
	for i, b := range rpo {
		d.rpoNum[b] = i
	}
	d.Idom[g.Entry] = g.Entry

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			newIdom := -1
			for _, p := range g.Preds[b] {
				if d.Idom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != -1 && d.Idom[b] != newIdom {
				d.Idom[b] = newIdom
				changed = true
			}
		}
	}

	d.Children = make([][]int, g.NumBlocks())
	for b, id := range d.Idom {
		if id >= 0 && b != g.Entry {
			d.Children[id] = append(d.Children[id], b)
		}
	}
	return d
}

// intersect walks two dominator-tree paths up to their common ancestor
// (the "finger" walk of the CHK paper, in RPO numbering).
func (d *DomTree) intersect(b1, b2 int) int {
	for b1 != b2 {
		for d.rpoNum[b1] > d.rpoNum[b2] {
			b1 = d.Idom[b1]
		}
		for d.rpoNum[b2] > d.rpoNum[b1] {
			b2 = d.Idom[b2]
		}
	}
	return b1
}

// Dominates reports whether block a dominates block b (reflexively).
func (d *DomTree) Dominates(a, b int) bool {
	if d.Idom[b] == -1 || d.Idom[a] == -1 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == d.cfg.Entry {
			return false
		}
		b = d.Idom[b]
	}
}

// String renders the tree indented by dominance depth.
func (d *DomTree) String() string {
	var sb strings.Builder
	var walk func(b, depth int)
	walk = func(b, depth int) {
		blk := d.cfg.Blocks[b]
		fmt.Fprintf(&sb, "%sB%d [%d,%d)\n", strings.Repeat("  ", depth), b, blk.Start, blk.End)
		for _, c := range d.Children[b] {
			walk(c, depth+1)
		}
	}
	walk(d.cfg.Entry, 0)
	return sb.String()
}
