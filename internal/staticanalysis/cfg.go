// Package staticanalysis provides static analysis of guest programs:
// a verifier that rejects malformed programs before any emulation, a
// control-flow graph over basic blocks, a dominator tree, and a
// natural-loop forest that mirrors — without executing a single
// instruction — the cyclic structures the dynamic LoopProfiler
// discovers from retired branches. COASTS cross-checks the two views
// so a disagreement between static structure and dynamic boundary
// profiling is surfaced instead of silently mis-sampling.
//
// The package analyzes mini-ISA guest programs (prog.Program), not Go
// source; it deliberately uses none of go/ast.
package staticanalysis

import (
	"fmt"
	"sort"
	"strings"

	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

// CFG is the control-flow graph of a program: one node per basic
// block, with guarded edge construction that tolerates out-of-range
// branch targets (such edges are dropped; the verifier reports them).
type CFG struct {
	Prog   *prog.Program
	Blocks []prog.BasicBlock
	Succs  [][]int
	Preds  [][]int

	// Entry is the block containing instruction 0.
	Entry int

	// Reachable[b] reports whether block b is reachable from Entry.
	Reachable []bool
}

// BuildCFG constructs the control-flow graph. Unlike
// prog.Program.Successors it never panics on malformed branch targets,
// and it models jal/jr call linkage: a jal edge goes to the callee,
// and each jr through register r gains return edges to the
// instruction after every jal that links through r.
func BuildCFG(p *prog.Program) *CFG {
	blocks := p.BasicBlocks()
	n := int64(len(p.Code))
	g := &CFG{
		Prog:   p,
		Blocks: blocks,
		Succs:  make([][]int, len(blocks)),
		Preds:  make([][]int, len(blocks)),
	}

	// Return points of jal instructions, per link register.
	returnsOf := make(map[isa.Reg][]int64)
	for i, in := range p.Code {
		if in.Op == isa.OpJal && int64(i)+1 < n {
			returnsOf[in.Rd] = append(returnsOf[in.Rd], int64(i)+1)
		}
	}

	blockAt := func(pc int64) (int, bool) {
		if pc < 0 || pc >= n {
			return 0, false
		}
		return p.BlockOf(pc), true
	}

	for id, b := range blocks {
		last := p.Code[b.End-1]
		add := func(pc int64) {
			if s, ok := blockAt(pc); ok {
				g.Succs[id] = append(g.Succs[id], s)
			}
		}
		switch {
		case last.Op == isa.OpHalt:
			// terminal
		case last.Op == isa.OpJmp || last.Op == isa.OpJal:
			add(last.Targ)
		case last.Op == isa.OpJr:
			for _, ret := range returnsOf[last.Rs1] {
				add(ret)
			}
		case last.Op.IsCondBranch():
			add(last.Targ)
			add(b.End)
		default:
			add(b.End)
		}
		g.Succs[id] = dedupInts(g.Succs[id])
	}
	for id, succs := range g.Succs {
		for _, s := range succs {
			g.Preds[s] = append(g.Preds[s], id)
		}
	}

	g.Entry = p.BlockOf(0)
	g.Reachable = make([]bool, len(blocks))
	work := []int{g.Entry}
	g.Reachable[g.Entry] = true
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range g.Succs[id] {
			if !g.Reachable[s] {
				g.Reachable[s] = true
				work = append(work, s)
			}
		}
	}
	return g
}

// NumBlocks returns the number of basic blocks.
func (g *CFG) NumBlocks() int { return len(g.Blocks) }

// Terminator returns the last instruction of block id.
func (g *CFG) Terminator(id int) isa.Inst {
	return g.Prog.Code[g.Blocks[id].End-1]
}

// String renders the graph block-by-block for the analyze CLI.
func (g *CFG) String() string {
	var sb strings.Builder
	labels := labelIndex(g.Prog)
	for id, b := range g.Blocks {
		mark := " "
		if !g.Reachable[id] {
			mark = "x"
		}
		fmt.Fprintf(&sb, "%s B%-3d [%4d,%4d)", mark, id, b.Start, b.End)
		if l := labels.at(b.Start); l != "" {
			fmt.Fprintf(&sb, " %-20s", l)
		} else {
			fmt.Fprintf(&sb, " %-20s", "")
		}
		fmt.Fprintf(&sb, " -> %v   ; %s\n", g.Succs[id], g.Terminator(id))
	}
	return sb.String()
}

// RPO returns a reverse postorder of the reachable blocks, starting at
// the entry block.
func (g *CFG) RPO() []int {
	seen := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(id int) {
		seen[id] = true
		for _, s := range g.Succs[id] {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, id)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

func dedupInts(s []int) []int {
	if len(s) < 2 {
		return s
	}
	sort.Ints(s)
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// labelIdx resolves instruction indices to label context.
type labelIdx struct {
	idx   []int64
	names []string
}

func labelIndex(p *prog.Program) *labelIdx {
	type ent struct {
		idx  int64
		name string
	}
	ents := make([]ent, 0, len(p.Labels))
	for name, idx := range p.Labels {
		ents = append(ents, ent{idx, name})
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].idx != ents[j].idx {
			return ents[i].idx < ents[j].idx
		}
		return ents[i].name < ents[j].name
	})
	li := &labelIdx{}
	for _, e := range ents {
		li.idx = append(li.idx, e.idx)
		li.names = append(li.names, e.name)
	}
	return li
}

// at returns the label bound exactly at pc, or "".
func (li *labelIdx) at(pc int64) string {
	i := sort.Search(len(li.idx), func(i int) bool { return li.idx[i] >= pc })
	if i < len(li.idx) && li.idx[i] == pc {
		return li.names[i]
	}
	return ""
}

// nearest returns the closest label at or before pc rendered as
// "name+offset", or "" when no label precedes pc.
func (li *labelIdx) nearest(pc int64) string {
	i := sort.Search(len(li.idx), func(i int) bool { return li.idx[i] > pc })
	if i == 0 {
		return ""
	}
	i--
	if off := pc - li.idx[i]; off > 0 {
		return fmt.Sprintf("%s+%d", li.names[i], off)
	}
	return li.names[i]
}
