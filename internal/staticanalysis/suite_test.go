package staticanalysis_test

import (
	"testing"

	"mlpa/internal/bench"
	"mlpa/internal/staticanalysis"
)

// TestSuiteProgramsPassVerifier: every generated suite benchmark must
// pass preflight — the pipeline now refuses to emulate programs the
// verifier rejects, so a dirty suite program would break every run.
func TestSuiteProgramsPassVerifier(t *testing.T) {
	for _, name := range bench.Names() {
		spec, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := spec.Program(bench.SizeTiny)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep := staticanalysis.Verify(p); !rep.OK() {
			t.Errorf("%s rejected by verifier:\n%s", name, rep)
		}
	}
}

// TestSuiteDynamicHeadsAreStaticLoops: on suite benchmarks the
// dynamic profiler must only ever report heads the static forest
// knows, with nesting no deeper than the static depth.
func TestSuiteDynamicHeadsAreStaticLoops(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles full benchmarks")
	}
	for _, name := range []string{"gzip", "swim", "gcc"} {
		spec, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := spec.Program(bench.SizeTiny)
		if err != nil {
			t.Fatal(err)
		}
		a := analyzeClean(t, p)
		for _, s := range profileHeads(t, p) {
			l, ok := a.Loops.ByHead(s.Head)
			if !ok {
				t.Errorf("%s: dynamic head %d (depth %d) not a static loop head", name, s.Head, s.Depth)
				continue
			}
			if s.Depth > l.Depth {
				t.Errorf("%s: head %d dynamic depth %d exceeds static %d", name, s.Head, s.Depth, l.Depth)
			}
		}
	}
}
