// External test package: emu now imports staticanalysis (via the
// dataflow-backed predecode cross-check), so any test that drives the
// emulator must live outside the package to avoid an import cycle.
package staticanalysis_test

import (
	"testing"

	"mlpa/internal/emu"
	"mlpa/internal/prog"
	"mlpa/internal/staticanalysis"
)

func analyzeClean(t *testing.T, p *prog.Program) *staticanalysis.Analysis {
	t.Helper()
	a := staticanalysis.Analyze(p)
	if !a.Report.OK() {
		t.Fatalf("%s: verifier findings:\n%s", p.Name, a.Report)
	}
	return a
}

// profileHeads runs p to completion under the dynamic loop profiler
// and returns the discovered structures.
func profileHeads(t *testing.T, p *prog.Program) []*emu.LoopStats {
	t.Helper()
	m := emu.New(p, 0)
	lp := emu.NewLoopProfiler(m)
	m.Branch = lp.OnBranch
	if _, err := m.RunToCompletion(1e8); err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	lp.Finish()
	return lp.Structures()
}

// TestStaticDynamicGolden is the golden cross-check from the issue:
// on every builder-generated example program the static natural-loop
// forest and the dynamic LoopProfiler must agree exactly — same loop
// heads, same nesting depths, and no structure only one side sees.
func TestStaticDynamicGolden(t *testing.T) {
	for _, p := range prog.Examples() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			a := analyzeClean(t, p)
			dyn := profileHeads(t, p)

			staticHeads := map[int64]int{}
			for _, l := range a.Loops.Loops {
				staticHeads[l.Head] = l.Depth
			}
			dynHeads := map[int64]int{}
			for _, s := range dyn {
				dynHeads[s.Head] = s.Depth
			}
			if len(staticHeads) != len(dynHeads) {
				t.Fatalf("static found %d loops %v, dynamic found %d %v",
					len(staticHeads), a.Loops.Heads(), len(dynHeads), dynHeads)
			}
			for h, sd := range staticHeads {
				dd, ok := dynHeads[h]
				if !ok {
					t.Errorf("static loop head %d never observed dynamically", h)
					continue
				}
				if sd != dd {
					t.Errorf("head %d: static depth %d, dynamic depth %d", h, sd, dd)
				}
			}

			// The Agreement records COASTS journals must all match too.
			heads := make([]int64, 0, len(dyn))
			depths := make([]int, 0, len(dyn))
			for _, s := range dyn {
				heads = append(heads, s.Head)
				depths = append(depths, s.Depth)
			}
			for _, ag := range a.Loops.CheckDynamic(heads, depths) {
				if !ag.DepthMatch() {
					t.Errorf("agreement record mismatch: %+v", ag)
				}
			}

			// Builder ground truth: every recorded static loop appears
			// in both views.
			for _, want := range p.Loops {
				if _, ok := staticHeads[want.Head]; !ok {
					t.Errorf("builder loop %s at %d missing from static forest", want.Name, want.Head)
				}
				if _, ok := dynHeads[want.Head]; !ok {
					t.Errorf("builder loop %s at %d missing from dynamic profile", want.Name, want.Head)
				}
			}
		})
	}
}

// TestStaticCoversDynamicOnExampleMutations varies trip counts to
// exercise boundary shapes (single outer trip, deep inner trips) and
// checks the static heads always cover the dynamically observed ones.
// Dynamic discovery needs at least one taken back edge, so it can only
// ever see a subset of the static forest — and when an enclosing loop
// runs a single trip it is invisible dynamically, so the dynamic depth
// can undershoot the static one but never exceed it.
func TestStaticCoversDynamicOnExampleMutations(t *testing.T) {
	progs := []*prog.Program{
		prog.ExampleNested(1, 7),
		prog.ExampleNested(30, 1),
		prog.ExampleVariableTrip(3),
		prog.ExampleSequential(1, 1),
	}
	for _, p := range progs {
		a := analyzeClean(t, p)
		for _, s := range profileHeads(t, p) {
			l, ok := a.Loops.ByHead(s.Head)
			if !ok {
				t.Errorf("%s: dynamic head %d not in static forest %v", p.Name, s.Head, a.Loops.Heads())
				continue
			}
			if s.Depth > l.Depth {
				t.Errorf("%s: head %d dynamic depth %d exceeds static depth %d", p.Name, s.Head, s.Depth, l.Depth)
			}
		}
	}
}
