package staticanalysis

import (
	"testing"

	"mlpa/internal/prog"
)

func analyzeClean(t *testing.T, p *prog.Program) *Analysis {
	t.Helper()
	a := Analyze(p)
	if !a.Report.OK() {
		t.Fatalf("%s: verifier findings:\n%s", p.Name, a.Report)
	}
	return a
}

func TestDominatorsStraightLine(t *testing.T) {
	p, err := prog.Assemble("line", `
        addi r1, r0, 1
        beq  r1, r0, done
        addi r1, r1, 1
  done: halt
`)
	if err != nil {
		t.Fatal(err)
	}
	a := analyzeClean(t, p)
	g, d := a.CFG, a.Dom
	// Entry dominates everything; the fallthrough block does not
	// dominate the join (the branch can skip it).
	for id := range g.Blocks {
		if !d.Dominates(g.Entry, id) {
			t.Errorf("entry does not dominate B%d", id)
		}
	}
	join := g.Prog.BlockOf(p.Labels["done"])
	skip := g.Prog.BlockOf(2)
	if d.Dominates(skip, join) {
		t.Errorf("B%d (skippable) should not dominate join B%d", skip, join)
	}
	if d.Idom[join] != g.Entry {
		t.Errorf("idom(join) = B%d, want entry B%d", d.Idom[join], g.Entry)
	}
}

func TestLoopForestNesting(t *testing.T) {
	p := prog.ExampleTripleNested(3, 3, 3)
	a := analyzeClean(t, p)
	f := a.Loops
	if len(f.Loops) != 3 {
		t.Fatalf("found %d loops, want 3:\n%s", len(f.Loops), f)
	}
	if len(f.Roots) != 1 {
		t.Fatalf("found %d roots, want 1", len(f.Roots))
	}
	// Builder LoopInfo is ground truth for heads and depths.
	for _, want := range p.Loops {
		l, ok := f.ByHead(want.Head)
		if !ok {
			t.Errorf("no static loop at head %d (%s)", want.Head, want.Name)
			continue
		}
		if l.Depth != want.Depth {
			t.Errorf("loop %s at %d: static depth %d, want %d", want.Name, want.Head, l.Depth, want.Depth)
		}
	}
	// Inner loops have strictly smaller bodies than their parents.
	for _, l := range f.Loops {
		if l.Parent >= 0 && l.BodyInsts >= f.Loops[l.Parent].BodyInsts {
			t.Errorf("inner loop at %d body %d >= parent body %d",
				l.Head, l.BodyInsts, f.Loops[l.Parent].BodyInsts)
		}
	}
}

func TestLoopForestSequential(t *testing.T) {
	p := prog.ExampleSequential(4, 5)
	f := analyzeClean(t, p).Loops
	if len(f.Loops) != 2 || len(f.Roots) != 2 {
		t.Fatalf("loops=%d roots=%d, want 2/2:\n%s", len(f.Loops), len(f.Roots), f)
	}
	for _, l := range f.Loops {
		if l.Depth != 0 {
			t.Errorf("sequential loop at %d depth %d, want 0", l.Head, l.Depth)
		}
	}
}

func TestOuterCandidatesOrdering(t *testing.T) {
	p := prog.ExampleNested(8, 5)
	f := analyzeClean(t, p).Loops
	cands := f.OuterCandidates()
	if len(cands) != 1 {
		t.Fatalf("outer candidates = %d, want 1", len(cands))
	}
	if cands[0].Depth != 0 {
		t.Errorf("candidate depth = %d, want 0", cands[0].Depth)
	}
	// The outer candidate's body subsumes the inner loop's blocks.
	inner, ok := f.ByHead(p.Loops[1].Head)
	if !ok {
		t.Fatal("inner loop missing from forest")
	}
	for _, b := range inner.Blocks {
		if !cands[0].Contains(b) {
			t.Errorf("outer candidate missing inner block B%d", b)
		}
	}
}

func TestDiamondLoopSingleLoop(t *testing.T) {
	p := prog.ExampleDiamondLoop(6)
	f := analyzeClean(t, p).Loops
	if len(f.Loops) != 1 {
		t.Fatalf("found %d loops, want 1 (diamond must not split the loop):\n%s", len(f.Loops), f)
	}
	if f.Loops[0].Head != p.Loops[0].Head {
		t.Errorf("head %d, want %d", f.Loops[0].Head, p.Loops[0].Head)
	}
}
