package dataflow

import "math/bits"

// DefSet is a bitset over the program's effective definition sites
// (instruction PCs whose write is not discarded), indexed by site
// number. The zero value is the empty set.
type DefSet []uint64

func newDefSet(n int) DefSet { return make(DefSet, (n+63)/64) }

func (s DefSet) clone() DefSet {
	c := make(DefSet, len(s))
	copy(c, s)
	return c
}

func (s DefSet) add(i int)      { s[i>>6] |= 1 << (uint(i) & 63) }
func (s DefSet) Has(i int) bool { return i>>6 < len(s) && s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of sites in the set.
func (s DefSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// or folds x into s and reports whether s changed.
func (s DefSet) or(x DefSet) bool {
	changed := false
	for i, w := range x {
		if nw := s[i] | w; nw != s[i] {
			s[i] = nw
			changed = true
		}
	}
	return changed
}

func (s DefSet) equal(x DefSet) bool {
	for i := range s {
		if s[i] != x[i] {
			return false
		}
	}
	return true
}

// ReachDefs is the reaching-definitions fixpoint: for every block, the
// definition sites whose values may flow to its entry and exit.
type ReachDefs struct {
	// Sites[i] is the PC of definition site i, ascending.
	Sites []int64

	// In/Out are the per-block fixpoint sets over site indices.
	In, Out []DefSet

	siteOf   []int32     // pc -> site index, -1 if the instruction defines nothing
	cellSite [64][]int32 // register cell -> its site indices
}

// solveReach numbers the effective definition sites, builds per-block
// gen/kill sets over them, and runs the forward union fixpoint.
func solveReach(d *Dataflow) *ReachDefs {
	r := &ReachDefs{siteOf: make([]int32, len(d.Prog.Code))}
	for pc := range d.Prog.Code {
		r.siteOf[pc] = -1
		if def := d.Effects[pc].Def; def != 0 {
			i := int32(len(r.Sites))
			r.siteOf[pc] = i
			r.Sites = append(r.Sites, int64(pc))
			r.cellSite[bits.TrailingZeros64(uint64(def))] = append(r.cellSite[bits.TrailingZeros64(uint64(def))], i)
		}
	}
	nSites := len(r.Sites)
	nBlocks := d.CFG.NumBlocks()

	gen := make([]DefSet, nBlocks)
	kill := make([]DefSet, nBlocks)
	for id, b := range d.CFG.Blocks {
		gen[id] = newDefSet(nSites)
		kill[id] = newDefSet(nSites)
		// Walk forward keeping the last def per cell; the survivors are
		// the block's gen set.
		var last [64]int32
		for i := range last {
			last[i] = -1
		}
		for pc := b.Start; pc < b.End; pc++ {
			if def := d.Effects[pc].Def; def != 0 {
				last[bits.TrailingZeros64(uint64(def))] = r.siteOf[pc]
			}
		}
		for c, site := range last {
			if site < 0 {
				continue
			}
			gen[id].add(int(site))
			// Every other site of a cell written here is killed.
			for _, s := range r.cellSite[c] {
				if s != site {
					kill[id].add(int(s))
				}
			}
		}
	}

	r.In, r.Out = Solve(d.CFG, Forward,
		func(int) DefSet { return newDefSet(nSites) },
		func(acc, x DefSet) DefSet {
			if x != nil {
				acc.or(x)
			}
			return acc
		},
		func(b int, in DefSet) DefSet {
			out := in.clone()
			for i, w := range kill[b] {
				out[i] &^= w
			}
			out.or(gen[b])
			return out
		},
		func(a, b DefSet) bool {
			if a == nil || b == nil {
				return a == nil && b == nil
			}
			return a.equal(b)
		},
	)
	return r
}

// DefsReaching returns the definition sites (as instruction PCs, in
// ascending site order) whose values may reach the entry of pc,
// restricted to the register cells in regs (pass AllRegs for all).
func (d *Dataflow) DefsReaching(pc int64, regs RegSet) ([]int64, error) {
	if err := d.checkPC(pc); err != nil {
		return nil, err
	}
	r := d.Reach
	b := d.Prog.BlockOf(pc)
	cur := r.In[b].clone()
	for i := d.CFG.Blocks[b].Start; i < pc; i++ {
		def := d.Effects[i].Def
		if def == 0 {
			continue
		}
		// An in-block def kills every other reaching def of its cell and
		// generates itself.
		for _, s := range r.cellSite[bits.TrailingZeros64(uint64(def))] {
			if r.Sites[s] == i {
				cur.add(int(s))
			} else if cur.Has(int(s)) {
				cur[s>>6] &^= 1 << (uint(s) & 63)
			}
		}
	}
	var out []int64
	for s, site := range r.Sites {
		if cur.Has(s) && d.Effects[site].Def&regs != 0 {
			out = append(out, site)
		}
	}
	return out, nil
}
