// Package dataflow implements register dataflow analysis of guest
// programs on top of the staticanalysis CFG: per-block gen/kill bitset
// summaries over both register files (plus memory-touch flags), a
// generic forward/backward worklist solver, liveness (backward) and
// reaching definitions (forward), and region summaries for
// checkpoint-grade live-in sets.
//
// The per-instruction effects deliberately model the *machine's*
// semantics rather than the assembler's operand syntax: the emulator
// folds both register namespaces onto 32-entry files (reads go through
// r&31) and discards writes whose destination names the wrong file
// (setInt drops R0 and FP-named destinations, setFP drops non-FP
// names), so for example `add f3, r1, r2` reads r1/r2 and writes
// nothing, while `fadd f1, r5, r6` reads FP slots 5 and 6. Liveness
// computed from isa.Inst.Dests/Sources alone would be unsound for such
// cross-namespace operands; EffectOf mirrors emu.Machine.Step exactly,
// and emu's differential validator cross-checks it against the
// predecoded register slots instruction by instruction.
//
// The lattice is the powerset of the 64 register storage cells (bits
// 0..31 = integer file, 32..63 = FP file) ordered by inclusion, with
// union as join; memory is a single may-touch bit carried alongside
// (loads generate, nothing kills, so it needs no kill set). All
// transfer functions are monotone, so the worklist iteration reaches
// the least fixpoint. See docs/STATIC_ANALYSIS.md.
package dataflow

import (
	"fmt"
	"math/bits"
	"strings"

	"mlpa/internal/isa"
	"mlpa/internal/prog"
	"mlpa/internal/staticanalysis"
)

// RegSet is a bitset over the 64 register storage cells: bit i for
// 0 <= i < 32 is integer register ri, bit 32+j is FP register fj. Bit 0
// is never set — IntRegs[0] is unwritable (every write that would land
// there is discarded by the machine), so reads of it are the constant 0
// rather than uses. Sets combine with the ordinary bit operators
// (| union, &^ difference, & intersection).
type RegSet uint64

// AllRegs is every readable register cell: r1..r31 and f0..f31.
const AllRegs = ^RegSet(1)

// cell returns the storage-cell bit register r resolves to: the
// emulator folds reads and writes onto 32-entry files with r&31, and
// the file is chosen by the FP-name predicate (r >= isa.FPBase).
func cell(r isa.Reg) RegSet {
	if r.IsFP() {
		return 1 << (32 | (uint(r) & 31))
	}
	return 1 << (uint(r) & 31)
}

// Of builds a set from register names (r0 contributes nothing: its
// cell is the hard-wired zero).
func Of(regs ...isa.Reg) RegSet {
	var s RegSet
	for _, r := range regs {
		s |= cell(r)
	}
	return s &^ 1
}

// Has reports whether the storage cell of r is in the set.
func (s RegSet) Has(r isa.Reg) bool { return s&cell(r) != 0 }

// Empty reports whether the set has no registers.
func (s RegSet) Empty() bool { return s == 0 }

// Count returns the number of registers in the set.
func (s RegSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Split decomposes the set into the two 32-bit per-file masks used by
// the journal schema (bit i of the first mask = ri, of the second =
// fi).
func (s RegSet) Split() (ints, fps uint32) {
	return uint32(s), uint32(s >> 32)
}

// FromMasks is the inverse of Split.
func FromMasks(ints, fps uint32) RegSet {
	return RegSet(ints) | RegSet(fps)<<32
}

// Regs lists the registers in the set in storage order (integer file
// first, then FP).
func (s RegSet) Regs() []isa.Reg {
	out := make([]isa.Reg, 0, s.Count())
	for v := uint64(s); v != 0; v &= v - 1 {
		out = append(out, isa.Reg(bits.TrailingZeros64(v)))
	}
	return out
}

// String renders the set as "{r1 r5 f0}"; the empty set is "{}".
func (s RegSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, r := range s.Regs() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(r.String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// Effect is the architectural def/use summary of one instruction as
// the machine actually executes it: which register cells it may read
// (Use), the cell it writes (Def, at most one bit — discarded writes
// contribute nothing), and whether it touches data memory.
type Effect struct {
	Use   RegSet
	Def   RegSet
	Load  bool
	Store bool
}

// intUse is a read through the integer file (emu geti): the cell is
// r&31, and cell 0 reads as the constant 0 — not a use.
func intUse(r isa.Reg) RegSet {
	return (1 << (uint(r) & 31)) &^ 1
}

// fpUse is a read through the FP file (emu getf): always cell r&31 of
// the FP file; every FP cell is writable, so every read is a use.
func fpUse(r isa.Reg) RegSet {
	return 1 << (32 | (uint(r) & 31))
}

// intDef is a write through the integer file (emu setInt): discarded
// for R0 and for FP-named destinations.
func intDef(r isa.Reg) RegSet {
	if r == isa.RZero || r.IsFP() {
		return 0
	}
	return 1 << (uint(r) & 31)
}

// fpDef is a write through the FP file (emu setFP): discarded unless
// the destination names an FP register.
func fpDef(r isa.Reg) RegSet {
	if !r.IsFP() {
		return 0
	}
	return 1 << (32 | (uint(r) & 31))
}

// EffectOf computes the effect of one instruction. Invalid opcodes
// (which the emulator refuses to execute) are treated as reading
// everything and writing nothing, the conservative choice for a
// backward may-analysis.
func EffectOf(in isa.Inst) Effect {
	switch in.Op {
	case isa.OpNop, isa.OpHalt, isa.OpJmp:
		return Effect{}
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSlt:
		return Effect{Use: intUse(in.Rs1) | intUse(in.Rs2), Def: intDef(in.Rd)}
	case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpShli, isa.OpShri, isa.OpSlti:
		return Effect{Use: intUse(in.Rs1), Def: intDef(in.Rd)}
	case isa.OpLui:
		return Effect{Def: intDef(in.Rd)}
	case isa.OpLd:
		return Effect{Use: intUse(in.Rs1), Def: intDef(in.Rd), Load: true}
	case isa.OpSt:
		return Effect{Use: intUse(in.Rs1) | intUse(in.Rs2), Store: true}
	case isa.OpFld:
		return Effect{Use: intUse(in.Rs1), Def: fpDef(in.Rd), Load: true}
	case isa.OpFst:
		return Effect{Use: intUse(in.Rs1) | fpUse(in.Rs2), Store: true}
	case isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFdiv:
		return Effect{Use: fpUse(in.Rs1) | fpUse(in.Rs2), Def: fpDef(in.Rd)}
	case isa.OpFneg, isa.OpFmov:
		return Effect{Use: fpUse(in.Rs1), Def: fpDef(in.Rd)}
	case isa.OpCvtIF:
		return Effect{Use: intUse(in.Rs1), Def: fpDef(in.Rd)}
	case isa.OpCvtFI:
		return Effect{Use: fpUse(in.Rs1), Def: intDef(in.Rd)}
	case isa.OpFcmpLt, isa.OpFcmpEq:
		return Effect{Use: fpUse(in.Rs1) | fpUse(in.Rs2), Def: intDef(in.Rd)}
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		return Effect{Use: intUse(in.Rs1) | intUse(in.Rs2)}
	case isa.OpJal:
		return Effect{Def: intDef(in.Rd)}
	case isa.OpJr:
		return Effect{Use: intUse(in.Rs1)}
	default:
		return Effect{Use: AllRegs, Load: true}
	}
}

// Dataflow is the full dataflow solution for one program: per-block
// gen/kill summaries, the liveness fixpoint over both register files
// and memory, and reaching definitions. Build one with New or share the
// per-program cached instance via For.
type Dataflow struct {
	Prog *prog.Program
	CFG  *staticanalysis.CFG

	// Effects[pc] is the effect of instruction pc.
	Effects []Effect

	// Gen[b] is the set of cells block b reads before writing them
	// (upward-exposed uses); Kill[b] the cells it writes. Loads/Stores
	// flag blocks that touch data memory.
	Gen, Kill     []RegSet
	Loads, Stores []bool

	// LiveIn/LiveOut are the liveness fixpoint at block boundaries;
	// MemLiveIn/MemLiveOut carry the may-read-memory bit alongside.
	LiveIn, LiveOut       []RegSet
	MemLiveIn, MemLiveOut []bool

	// Reach is the reaching-definitions fixpoint.
	Reach *ReachDefs
}

type auxKey struct{}

// For returns the dataflow solution of p, computing it on first use and
// caching it on the program (prog.Program.Aux), so per-point liveness
// queries across the pipeline cost one analysis per program.
func For(p *prog.Program) *Dataflow {
	return p.Aux(auxKey{}, func() any { return New(p) }).(*Dataflow)
}

// New computes the dataflow solution of p.
func New(p *prog.Program) *Dataflow {
	d := &Dataflow{Prog: p, CFG: staticanalysis.BuildCFG(p)}
	d.Effects = make([]Effect, len(p.Code))
	for pc, in := range p.Code {
		d.Effects[pc] = EffectOf(in)
	}
	d.summarize()
	d.solveLiveness()
	d.Reach = solveReach(d)
	return d
}

// summarize computes the per-block gen/kill summaries by one forward
// walk per block.
func (d *Dataflow) summarize() {
	n := d.CFG.NumBlocks()
	d.Gen = make([]RegSet, n)
	d.Kill = make([]RegSet, n)
	d.Loads = make([]bool, n)
	d.Stores = make([]bool, n)
	for id, b := range d.CFG.Blocks {
		var gen, kill RegSet
		for pc := b.Start; pc < b.End; pc++ {
			e := d.Effects[pc]
			gen |= e.Use &^ kill
			kill |= e.Def
			d.Loads[id] = d.Loads[id] || e.Load
			d.Stores[id] = d.Stores[id] || e.Store
		}
		d.Gen[id], d.Kill[id] = gen, kill
	}
}

// BlockRange returns the [start, end) instruction range of block id.
func (d *Dataflow) BlockRange(id int) (int64, int64) {
	b := d.CFG.Blocks[id]
	return b.Start, b.End
}

// checkPC validates an instruction index.
func (d *Dataflow) checkPC(pc int64) error {
	if pc < 0 || pc >= int64(len(d.Prog.Code)) {
		return fmt.Errorf("dataflow: program %q: pc %d out of range [0,%d)",
			d.Prog.Name, pc, len(d.Prog.Code))
	}
	return nil
}
