package dataflow_test

// FuzzLiveness is the native fuzz target for the liveness solver:
// arbitrary bytes become a random branchy program (straight-line
// arithmetic, cross-namespace operands, memory traffic, in-range
// conditional branches and jumps) and two soundness properties are
// checked against the interpreter on whatever path the program takes:
//
//  1. every register the interpreter reads before writing it must be
//     in the static live-in set at the entry boundary, and
//  2. fast-forwarding to a random boundary and zeroing every register
//     NOT in the static live-in set there must leave the rest of the
//     execution observably identical.

import (
	"encoding/binary"
	"testing"

	"mlpa/internal/emu"
	"mlpa/internal/isa"
	"mlpa/internal/prog"
	"mlpa/internal/staticanalysis/dataflow"
)

// fuzzOps is the opcode whitelist: every executable opcode except the
// indirect-control pair (jal/jr), so the static CFG covers every path
// the interpreter can take and no run ever leaves the program.
var fuzzOps = []isa.Op{
	isa.OpNop,
	isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem,
	isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSlt,
	isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpShli, isa.OpShri, isa.OpSlti,
	isa.OpLui,
	isa.OpLd, isa.OpSt, isa.OpFld, isa.OpFst,
	isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFdiv, isa.OpFneg, isa.OpFmov,
	isa.OpCvtIF, isa.OpCvtFI, isa.OpFcmpLt, isa.OpFcmpEq,
	isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpJmp,
	isa.OpHalt,
}

// fuzzLivenessProgram decodes data into a program, 8 bytes per
// instruction (opcode index, three register names across the full
// 64-name space, a 16-bit immediate, a branch target) with a halt
// appended so straight-line fall-through always terminates. Branch and
// jump targets are reduced into range, keeping every path inside the
// program.
func fuzzLivenessProgram(data []byte) *prog.Program {
	n := len(data) / 8
	if n == 0 {
		return nil
	}
	code := make([]isa.Inst, n+1)
	for i := 0; i < n; i++ {
		b := data[i*8 : i*8+8]
		code[i] = isa.Inst{
			Op:   fuzzOps[int(b[0])%len(fuzzOps)],
			Rd:   isa.Reg(b[1] & 63),
			Rs1:  isa.Reg(b[2] & 63),
			Rs2:  isa.Reg(b[3] & 63),
			Imm:  int64(int16(binary.LittleEndian.Uint16(b[4:6]))),
			Targ: int64(b[6]) % int64(n+1),
		}
	}
	code[n] = isa.Inst{Op: isa.OpHalt}
	return &prog.Program{Name: "fuzz-liveness", Code: code}
}

func FuzzLiveness(f *testing.F) {
	// Seed a counting loop with a store, an FP/cross-namespace mix, and
	// a branch into dead code.
	f.Add([]byte{
		12, 1, 0, 0, 5, 0, 0, 0, // addi r1, r0, 5
		20, 2, 1, 1, 0, 1, 0, 0, // st   r1, 256(r1)
		12, 1, 1, 0, 0xff, 0xff, 0, 0, // addi r1, r1, -1
		35, 0, 1, 0, 0, 0, 1, 0, // bne  r1, r0, 1
	}, uint16(3))
	f.Add([]byte{
		30, 33, 2, 0, 0, 0, 0, 0, // cvtif f1, r2
		24, 34, 33, 33, 0, 0, 0, 0, // fadd f2, f1, f1
		1, 35, 3, 3, 0, 0, 0, 0, // add f3, r3, r3 (discarded dest)
		31, 4, 34, 0, 0, 0, 0, 0, // cvtfi r4, f2
		38, 0, 0, 0, 0, 0, 9, 0, // jmp past the end -> reduced in range
	}, uint16(2))
	f.Fuzz(func(t *testing.T, data []byte, split uint16) {
		p := fuzzLivenessProgram(data)
		if p == nil {
			return
		}
		const budget = 2048
		d := dataflow.For(p)

		// Property 1: reads observed before any write are in the entry
		// live-in set.
		m := emu.New(p, 1<<10)
		live0, _, err := d.LiveInAt(m.PC)
		if err != nil {
			t.Fatal(err)
		}
		var written dataflow.RegSet
		for !m.Halted && m.Insts < budget {
			eff := dataflow.EffectOf(p.Code[m.PC])
			if leak := eff.Use &^ written &^ live0; leak != 0 {
				t.Fatalf("pc %d reads %v outside live-in %v (written %v)",
					m.PC, leak, live0, written)
			}
			written |= eff.Def
			if _, err := m.Step(); err != nil {
				t.Fatalf("step at pc %d: %v", m.PC, err)
			}
		}

		// Property 2: scrub statically-dead registers at a random
		// boundary along the path; the remainder must be observably
		// identical to the unscrubbed run.
		m = emu.New(p, 1<<10)
		if at := uint64(split) % budget; at > 0 { // Run(0) means run-to-halt
			if _, err := m.Run(at); err != nil {
				t.Fatalf("fast-forward: %v", err)
			}
		}
		if m.Halted {
			return
		}
		live, _, err := d.LiveInAt(m.PC)
		if err != nil {
			t.Fatal(err)
		}
		ref, scrubbed := m.Clone(), m.Clone()
		scrubDead(scrubbed, live)
		if _, err := ref.Run(budget); err != nil {
			t.Fatalf("reference run: %v", err)
		}
		if _, err := scrubbed.Run(budget); err != nil {
			t.Fatalf("scrubbed run at pc %d: %v", m.PC, err)
		}
		machinesEqual(t, p.Name, ref, scrubbed, live)
	})
}
