package dataflow

import "mlpa/internal/staticanalysis"

// Direction orients a dataflow problem: Forward propagates facts along
// CFG edges (reaching definitions), Backward against them (liveness).
type Direction int

// Solver directions.
const (
	Forward Direction = iota
	Backward
)

// Solve runs an iterative worklist fixpoint of a monotone dataflow
// framework over g and returns the per-block entry and exit facts.
//
//   - boundary(b) is the fact flowing into the iteration at blocks with
//     no incoming edges in the chosen direction (and the identity the
//     edge join starts from everywhere else) — for a may-analysis this
//     is the lattice bottom.
//   - join folds one neighbour's fact into an accumulator; it must be
//     the lattice join (commutative, associative, idempotent).
//   - transfer maps a block's incoming fact to its outgoing one
//     (entry→exit for Forward, exit→entry for Backward) and must be
//     monotone with respect to join, or the iteration need not
//     terminate.
//   - equal tests facts for equality; it gates propagation.
//
// Blocks are seeded in reverse postorder for Forward problems and its
// reverse for Backward ones, which makes acyclic regions converge in
// one pass; unreachable blocks are appended so every block receives a
// solution. The worklist is a deterministic FIFO, so the solution —
// already unique as the least fixpoint — is also reproduced by an
// identical visit sequence on every run.
func Solve[F any](
	g *staticanalysis.CFG,
	dir Direction,
	boundary func(b int) F,
	join func(acc, x F) F,
	transfer func(b int, x F) F,
	equal func(a, b F) bool,
) (in, out []F) {
	n := g.NumBlocks()
	in = make([]F, n)
	out = make([]F, n)

	order := make([]int, 0, n)
	seen := make([]bool, n)
	for _, b := range g.RPO() {
		order = append(order, b)
		seen[b] = true
	}
	for b := 0; b < n; b++ {
		if !seen[b] {
			order = append(order, b)
		}
	}
	if dir == Backward {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}

	queue := append(make([]int, 0, n), order...)
	queued := make([]bool, n)
	for _, b := range queue {
		queued[b] = true
	}
	enqueue := func(b int) {
		if !queued[b] {
			queued[b] = true
			queue = append(queue, b)
		}
	}

	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false
		acc := boundary(b)
		if dir == Forward {
			for _, p := range g.Preds[b] {
				acc = join(acc, out[p])
			}
			in[b] = acc
			if next := transfer(b, acc); !equal(next, out[b]) {
				out[b] = next
				for _, s := range g.Succs[b] {
					enqueue(s)
				}
			}
		} else {
			for _, s := range g.Succs[b] {
				acc = join(acc, in[s])
			}
			out[b] = acc
			if next := transfer(b, acc); !equal(next, in[b]) {
				in[b] = next
				for _, p := range g.Preds[b] {
					enqueue(p)
				}
			}
		}
	}
	return in, out
}
