package dataflow

import (
	"reflect"
	"testing"

	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

func mustAssemble(t *testing.T, name, src string) *prog.Program {
	t.Helper()
	p, err := prog.Assemble(name, src)
	if err != nil {
		t.Fatalf("assemble %s: %v", name, err)
	}
	return p
}

func TestRegSetBasics(t *testing.T) {
	s := Of(1, 5, isa.F(0), isa.F(31))
	if got := s.String(); got != "{r1 r5 f0 f31}" {
		t.Errorf("String = %q", got)
	}
	if s.Count() != 4 {
		t.Errorf("Count = %d, want 4", s.Count())
	}
	for _, r := range []isa.Reg{1, 5, isa.F(0), isa.F(31)} {
		if !s.Has(r) {
			t.Errorf("Has(%v) = false", r)
		}
	}
	if s.Has(2) || s.Has(isa.F(5)) {
		t.Error("Has reports absent registers")
	}
	if !Of().Empty() || s.Empty() {
		t.Error("Empty is wrong")
	}
	// r0 is the hard-wired zero: never a member.
	if !Of(isa.RZero).Empty() {
		t.Error("Of(r0) should be empty")
	}
	ints, fps := s.Split()
	if back := FromMasks(ints, fps); back != s {
		t.Errorf("Split/FromMasks round trip: %v != %v", back, s)
	}
	if got := s.Regs(); !reflect.DeepEqual(got, []isa.Reg{1, 5, isa.F(0), isa.F(31)}) {
		t.Errorf("Regs = %v", got)
	}
	if got := RegSet(0).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestEffectOf(t *testing.T) {
	cases := []struct {
		name string
		in   isa.Inst
		want Effect
	}{
		{"add", isa.Inst{Op: isa.OpAdd, Rd: 3, Rs1: 1, Rs2: 2},
			Effect{Use: Of(1, 2), Def: Of(3)}},
		{"add_r0_sources", isa.Inst{Op: isa.OpAdd, Rd: 3, Rs1: 0, Rs2: 0},
			Effect{Def: Of(3)}},
		{"add_r0_dest_discard", isa.Inst{Op: isa.OpAddi, Rd: 0, Rs1: 1, Imm: 1},
			Effect{Use: Of(1)}},
		// Cross-namespace: an integer op writing an FP-named destination
		// is discarded by the machine (setInt drops it); FP-named
		// sources fold onto the *integer* file through r&31.
		{"add_fp_dest_discard", isa.Inst{Op: isa.OpAdd, Rd: isa.F(3), Rs1: 1, Rs2: 2},
			Effect{Use: Of(1, 2)}},
		{"add_fp_source_folds", isa.Inst{Op: isa.OpAdd, Rd: 3, Rs1: isa.F(5), Rs2: 2},
			Effect{Use: Of(5, 2), Def: Of(3)}},
		// Cross-namespace: FP ops read through the FP file regardless of
		// the operand's name, and int-named destinations are discarded.
		{"fadd_int_sources_fold", isa.Inst{Op: isa.OpFadd, Rd: isa.F(1), Rs1: 5, Rs2: 6},
			Effect{Use: Of(isa.F(5), isa.F(6)), Def: Of(isa.F(1))}},
		{"fadd_int_dest_discard", isa.Inst{Op: isa.OpFadd, Rd: 1, Rs1: isa.F(2), Rs2: isa.F(3)},
			Effect{Use: Of(isa.F(2), isa.F(3))}},
		// FP cell 0 is writable, so f0 reads are genuine uses — and so
		// are reads of the FP cell r0 folds to.
		{"fmov_f0", isa.Inst{Op: isa.OpFmov, Rd: isa.F(1), Rs1: isa.F(0)},
			Effect{Use: Of(isa.F(0)), Def: Of(isa.F(1))}},
		{"fmov_r0_source", isa.Inst{Op: isa.OpFmov, Rd: isa.F(1), Rs1: 0},
			Effect{Use: Of(isa.F(0)), Def: Of(isa.F(1))}},
		{"lui", isa.Inst{Op: isa.OpLui, Rd: 4, Imm: 7}, Effect{Def: Of(4)}},
		{"ld", isa.Inst{Op: isa.OpLd, Rd: 2, Rs1: 1, Imm: 8},
			Effect{Use: Of(1), Def: Of(2), Load: true}},
		{"ld_fp_dest_discard", isa.Inst{Op: isa.OpLd, Rd: isa.F(2), Rs1: 1},
			Effect{Use: Of(1), Load: true}},
		{"st", isa.Inst{Op: isa.OpSt, Rs1: 1, Rs2: 2},
			Effect{Use: Of(1, 2), Store: true}},
		{"fld", isa.Inst{Op: isa.OpFld, Rd: isa.F(2), Rs1: 1},
			Effect{Use: Of(1), Def: Of(isa.F(2)), Load: true}},
		{"fld_int_dest_discard", isa.Inst{Op: isa.OpFld, Rd: 2, Rs1: 1},
			Effect{Use: Of(1), Load: true}},
		{"fst", isa.Inst{Op: isa.OpFst, Rs1: 1, Rs2: isa.F(2)},
			Effect{Use: Of(1, isa.F(2)), Store: true}},
		{"cvtif", isa.Inst{Op: isa.OpCvtIF, Rd: isa.F(1), Rs1: 2},
			Effect{Use: Of(2), Def: Of(isa.F(1))}},
		{"cvtfi", isa.Inst{Op: isa.OpCvtFI, Rd: 1, Rs1: isa.F(2)},
			Effect{Use: Of(isa.F(2)), Def: Of(1)}},
		{"fcmplt", isa.Inst{Op: isa.OpFcmpLt, Rd: 1, Rs1: isa.F(2), Rs2: isa.F(3)},
			Effect{Use: Of(isa.F(2), isa.F(3)), Def: Of(1)}},
		{"beq", isa.Inst{Op: isa.OpBeq, Rs1: 1, Rs2: 2, Targ: 0},
			Effect{Use: Of(1, 2)}},
		{"jal", isa.Inst{Op: isa.OpJal, Rd: 31, Targ: 0}, Effect{Def: Of(31)}},
		{"jal_r0_discard", isa.Inst{Op: isa.OpJal, Rd: 0, Targ: 0}, Effect{}},
		{"jr", isa.Inst{Op: isa.OpJr, Rs1: 31}, Effect{Use: Of(31)}},
		{"jmp", isa.Inst{Op: isa.OpJmp, Targ: 0}, Effect{}},
		{"nop", isa.Inst{Op: isa.OpNop}, Effect{}},
		{"halt", isa.Inst{Op: isa.OpHalt}, Effect{}},
		{"invalid", isa.Inst{Op: isa.Op(250)}, Effect{Use: AllRegs, Load: true}},
	}
	for _, tc := range cases {
		if got := EffectOf(tc.in); got != tc.want {
			t.Errorf("%s: EffectOf = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

const asmLoopStore = `
    addi r1, r0, 10
loop:
    add  r3, r1, r2
    addi r1, r1, -1
    bne  r1, r0, loop
    st   r3, (r4)
    addi r5, r0, 7
    halt
`

func TestLivenessLoop(t *testing.T) {
	p := mustAssemble(t, "loopstore", asmLoopStore)
	d := New(p)

	// r2 (read in the loop, never written) and r4 (store address) are
	// the only live-in registers; r1/r3/r5 are defined before use.
	live, mem, err := d.LiveInAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := Of(2, 4); live != want {
		t.Errorf("LiveInAt(0) = %v, want %v", live, want)
	}
	if mem {
		t.Error("LiveInAt(0) mem = true for a load-free program")
	}

	// Inside the loop the counter and accumulator input are live too.
	live, _, err = d.LiveInAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := Of(1, 2, 4); live != want {
		t.Errorf("LiveInAt(1) = %v, want %v", live, want)
	}

	// After the final store nothing is live.
	live, _, err = d.LiveInAt(5)
	if err != nil {
		t.Fatal(err)
	}
	if want := Of(); live != want {
		t.Errorf("LiveInAt(5) = %v, want %v", live, want)
	}

	// The r5 write before halt is never read.
	dead := d.DeadWrites()
	if len(dead) != 1 || dead[0].PC != 5 || dead[0].Reg != Of(5) {
		t.Errorf("DeadWrites = %+v, want one at pc 5 for r5", dead)
	}

	if _, _, err := d.LiveInAt(-1); err == nil {
		t.Error("LiveInAt(-1) did not fail")
	}
	if _, _, err := d.LiveInAt(int64(len(p.Code))); err == nil {
		t.Error("LiveInAt(len) did not fail")
	}
}

func TestLivenessMemoryBit(t *testing.T) {
	p := mustAssemble(t, "memlive", `
    ld   r2, (r1)
    add  r3, r2, r2
    st   r3, (r1)
    halt
`)
	d := New(p)
	if _, mem, _ := d.LiveInAt(0); !mem {
		t.Error("mem live-in at 0 = false, want true (load ahead)")
	}
	if _, mem, _ := d.LiveInAt(1); mem {
		t.Error("mem live-in at 1 = true, want false (only a store ahead)")
	}
	if !d.MemLiveIn[p.BlockOf(0)] {
		t.Error("MemLiveIn[entry block] = false")
	}
}

func TestReachingDefs(t *testing.T) {
	p := mustAssemble(t, "reach", `
    addi r1, r0, 1
    addi r1, r0, 2
    beq  r2, r0, skip
    addi r1, r0, 3
skip:
    add  r4, r1, r0
    halt
`)
	d := New(p)

	// The def at pc 0 is killed by pc 1 inside the entry block; pcs 1
	// and 3 both reach the join.
	defs, err := d.DefsReaching(4, Of(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{1, 3}; !reflect.DeepEqual(defs, want) {
		t.Errorf("DefsReaching(4, r1) = %v, want %v", defs, want)
	}

	// Mid-block query: at pc 1 only the def at pc 0 reaches.
	defs, err = d.DefsReaching(1, Of(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{0}; !reflect.DeepEqual(defs, want) {
		t.Errorf("DefsReaching(1, r1) = %v, want %v", defs, want)
	}

	// Filtering by an unrelated register yields nothing.
	defs, err = d.DefsReaching(4, Of(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 0 {
		t.Errorf("DefsReaching(4, r9) = %v, want empty", defs)
	}

	if _, err := d.DefsReaching(99, AllRegs); err == nil {
		t.Error("DefsReaching(99) did not fail")
	}

	// Site bookkeeping: sites are the PCs with effective defs, ascending.
	if want := []int64{0, 1, 3, 4}; !reflect.DeepEqual(d.Reach.Sites, want) {
		t.Errorf("Sites = %v, want %v", d.Reach.Sites, want)
	}
}

func TestReachingDefsLoop(t *testing.T) {
	p := mustAssemble(t, "reachloop", asmLoopStore)
	d := New(p)
	// At the loop head both the init (pc 0) and the loop decrement
	// (pc 2) reach r1.
	defs, err := d.DefsReaching(1, Of(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{0, 2}; !reflect.DeepEqual(defs, want) {
		t.Errorf("DefsReaching(1, r1) = %v, want %v", defs, want)
	}
}

func TestRegionSummaryStraightLine(t *testing.T) {
	p := mustAssemble(t, "straight", `
    add  r3, r1, r2
    addi r3, r3, 5
    st   r3, (r4)
    halt
`)
	d := New(p)
	rs, err := d.RegionSummary(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Insts != 2 || len(rs.Blocks) != 1 {
		t.Errorf("Insts/Blocks = %d/%v", rs.Insts, rs.Blocks)
	}
	// The region [0,2) reads r1/r2, writes r3, no memory: the store at
	// pc 2 is outside.
	if want := Of(1, 2); rs.LiveIn != want {
		t.Errorf("LiveIn = %v, want %v", rs.LiveIn, want)
	}
	if rs.Defs != Of(3) || rs.Loads || rs.Stores || rs.LiveInMem {
		t.Errorf("Defs/Loads/Stores/mem = %v/%v/%v/%v", rs.Defs, rs.Loads, rs.Stores, rs.LiveInMem)
	}

	if _, err := d.RegionSummary(2, 2); err == nil {
		t.Error("empty same-block region did not fail")
	}
	if _, err := d.RegionSummary(2, 0); err == nil {
		t.Error("backwards same-block region did not fail")
	}
	if _, err := d.RegionSummary(0, 99); err == nil {
		t.Error("out-of-range exit did not fail")
	}
}

func TestRegionSummaryLoop(t *testing.T) {
	p := mustAssemble(t, "regionloop", asmLoopStore)
	d := New(p)

	// Region from the loop head (pc 1) to the store block (pc 4): the
	// whole loop plus nothing of the exit block. r2 feeds the adds, r1
	// counts, r4 is NOT live in (the store at pc 4 is outside the
	// region) but r3 IS defined.
	rs, err := d.RegionSummary(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := Of(1, 2); rs.LiveIn != want {
		t.Errorf("LiveIn = %v, want %v", rs.LiveIn, want)
	}
	if want := Of(1, 3); rs.Defs != want {
		t.Errorf("Defs = %v, want %v", rs.Defs, want)
	}
	if rs.Stores || rs.Loads || rs.LiveInMem {
		t.Errorf("memory flags = %v/%v/%v, want none", rs.Loads, rs.Stores, rs.LiveInMem)
	}
	// Loop block (pcs 1..3) in full plus the empty prefix of the exit
	// block.
	if rs.Insts != 3 {
		t.Errorf("Insts = %d, want 3", rs.Insts)
	}

	// A region whose exit precedes its entry with no path back fails.
	if _, err := d.RegionSummary(4, 1); err == nil {
		t.Error("unreachable exit did not fail")
	}
}

func TestRegionSummaryWholeProgram(t *testing.T) {
	for _, p := range prog.Examples() {
		d := For(p)
		halt := int64(len(p.Code) - 1)
		rs, err := d.RegionSummary(0, halt)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		// The whole-program region live-in must match LiveInAt(0)
		// modulo uses beyond the halt (there are none).
		live, mem, err := d.LiveInAt(0)
		if err != nil {
			t.Fatal(err)
		}
		if rs.LiveIn != live || rs.LiveInMem != mem {
			t.Errorf("%s: region live-in %v/%v != program live-in %v/%v",
				p.Name, rs.LiveIn, rs.LiveInMem, live, mem)
		}
		if rs.Insts <= 0 || len(rs.Blocks) == 0 {
			t.Errorf("%s: degenerate region %+v", p.Name, rs)
		}
	}
}

func TestForCachesPerProgram(t *testing.T) {
	p := prog.ExampleNested(3, 3)
	if For(p) != For(p) {
		t.Error("For returned distinct instances for one program")
	}
	if New(p) == For(p) {
		t.Error("New unexpectedly returned the cached instance")
	}
}

func TestUnreachableBlocksGetFacts(t *testing.T) {
	p := mustAssemble(t, "unreach", `
    jmp end
    add r3, r1, r2
end:
    halt
`)
	d := New(p)
	if n := d.CFG.NumBlocks(); len(d.LiveIn) != n || len(d.LiveOut) != n {
		t.Fatalf("fact slices sized %d/%d, want %d", len(d.LiveIn), len(d.LiveOut), n)
	}
	// The dead add still gets a (locally sound) fact via LiveInAt.
	live, _, err := d.LiveInAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := Of(1, 2); live != want {
		t.Errorf("LiveInAt(dead pc) = %v, want %v", live, want)
	}
	// DeadWrites skips unreachable blocks.
	for _, dw := range d.DeadWrites() {
		if dw.PC == 1 {
			t.Error("DeadWrites reported an unreachable pc")
		}
	}
}

func TestGenKillSummaries(t *testing.T) {
	p := mustAssemble(t, "genkill", `
    add  r3, r1, r2
    add  r4, r3, r3
    ld   r5, (r4)
    halt
`)
	d := New(p)
	b := p.BlockOf(0)
	// r3 is written before its read at pc 1: killed, not gen.
	if want := Of(1, 2); d.Gen[b] != want {
		t.Errorf("Gen = %v, want %v", d.Gen[b], want)
	}
	if want := Of(3, 4, 5); d.Kill[b] != want {
		t.Errorf("Kill = %v, want %v", d.Kill[b], want)
	}
	if !d.Loads[b] || d.Stores[b] {
		t.Errorf("Loads/Stores = %v/%v", d.Loads[b], d.Stores[b])
	}
}
