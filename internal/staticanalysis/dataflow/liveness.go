package dataflow

import "sort"

// liveFact is the liveness lattice element: a set of register cells
// plus the may-read-memory bit. Memory has uses (loads) but no kill —
// the abstraction treats data memory as a single cell stores cannot
// fully overwrite — so its transfer is generate-only.
type liveFact struct {
	regs RegSet
	mem  bool
}

// solveLiveness runs the backward liveness fixpoint over the CFG. The
// boundary (blocks with no successors: halt blocks and jr blocks with
// no matching jal) is the empty set — nothing is live out of the
// program. Jal/jr call linkage is part of the CFG as a path superset
// of real executions, which keeps the may-analysis sound.
func (d *Dataflow) solveLiveness() {
	ins, outs := Solve(d.CFG, Backward,
		func(int) liveFact { return liveFact{} },
		func(acc, x liveFact) liveFact {
			return liveFact{acc.regs | x.regs, acc.mem || x.mem}
		},
		func(b int, out liveFact) liveFact {
			return liveFact{d.Gen[b] | (out.regs &^ d.Kill[b]), d.Loads[b] || out.mem}
		},
		func(a, b liveFact) bool { return a == b },
	)
	n := d.CFG.NumBlocks()
	d.LiveIn = make([]RegSet, n)
	d.LiveOut = make([]RegSet, n)
	d.MemLiveIn = make([]bool, n)
	d.MemLiveOut = make([]bool, n)
	for b := 0; b < n; b++ {
		d.LiveIn[b], d.MemLiveIn[b] = ins[b].regs, ins[b].mem
		d.LiveOut[b], d.MemLiveOut[b] = outs[b].regs, outs[b].mem
	}
}

// LiveInAt refines the block-level fixpoint to one instruction: the
// registers that may be read before being overwritten on some path
// starting at pc, plus whether data memory may be read. Every register
// outside the returned set can be zeroed at pc without changing the
// program's execution — the contract the pipeline's scrub harness and
// FuzzLiveness assert dynamically.
func (d *Dataflow) LiveInAt(pc int64) (RegSet, bool, error) {
	if err := d.checkPC(pc); err != nil {
		return 0, false, err
	}
	b := d.Prog.BlockOf(pc)
	live, mem := d.LiveOut[b], d.MemLiveOut[b]
	for i := d.CFG.Blocks[b].End - 1; i >= pc; i-- {
		e := d.Effects[i]
		live = (live &^ e.Def) | e.Use
		mem = mem || e.Load
	}
	return live, mem, nil
}

// DeadWrite is one statically-dead register write: no path from the
// instruction reads the written value before overwriting it.
type DeadWrite struct {
	PC  int64
	Reg RegSet // the single written cell
}

// DeadWrites scans the reachable blocks for writes that are dead under
// the liveness fixpoint, in ascending PC order. Dead writes are legal —
// jal's link register is often unread, and generators emit them — so
// this is a reporting facility (mlpa analyze -dataflow), not a
// verifier rule.
func (d *Dataflow) DeadWrites() []DeadWrite {
	var out []DeadWrite
	for id, b := range d.CFG.Blocks {
		if !d.CFG.Reachable[id] {
			continue
		}
		live := d.LiveOut[id]
		for pc := b.End - 1; pc >= b.Start; pc-- {
			e := d.Effects[pc]
			if e.Def != 0 && e.Def&live == 0 {
				out = append(out, DeadWrite{PC: pc, Reg: e.Def})
			}
			live = (live &^ e.Def) | e.Use
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PC < out[j].PC })
	return out
}
