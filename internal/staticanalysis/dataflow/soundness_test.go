// Execution-based soundness checks: the static liveness claims are
// validated against the emulator itself. This lives in an external test
// package because emu imports dataflow for its differential validator.
package dataflow_test

import (
	"math"
	"testing"

	"mlpa/internal/emu"
	"mlpa/internal/prog"
	"mlpa/internal/staticanalysis/dataflow"
)

// soundnessPrograms is the corpus: the canonical builder examples plus
// hand-written programs exercising cross-namespace operands, FP
// arithmetic, memory traffic and call linkage.
func soundnessPrograms(t *testing.T) []*prog.Program {
	t.Helper()
	ps := prog.Examples()
	for _, src := range []struct{ name, asm string }{
		{"fp_mix", `
    addi r1, r0, 64
    addi r2, r0, 3
    cvtif f1, r2
    fadd f2, f1, f1
    fmul f3, f2, f1
    fst  f3, (r1)
    fld  f4, (r1)
    fcmplt r3, f1, f4
    beq  r3, r0, done
    addi r4, r4, 1
done:
    halt
`},
		{"cross_ns", `
    addi r5, r0, 9
    add  f3, r5, r5
    fadd f1, r5, r5
    cvtfi r6, f1
    add  r7, r6, r5
    halt
`},
		{"call", `
    addi r1, r0, 4
loop:
    jal  r31, double
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
double:
    add  r2, r2, r2
    addi r2, r2, 1
    jr   r31
`},
		{"memory", `
    addi r1, r0, 128
    addi r2, r0, 5
store:
    st   r2, (r1)
    addi r1, r1, 8
    addi r2, r2, -1
    bne  r2, r0, store
    addi r1, r0, 128
    ld   r3, (r1)
    ld   r4, 8(r1)
    add  r5, r3, r4
    halt
`},
	} {
		p, err := prog.Assemble(src.name, src.asm)
		if err != nil {
			t.Fatalf("assemble %s: %v", src.name, err)
		}
		ps = append(ps, p)
	}
	return ps
}

// scrubDead zeroes every register cell outside live on m.
func scrubDead(m *emu.Machine, live dataflow.RegSet) {
	ints, fps := live.Split()
	for i := 1; i < len(m.IntRegs); i++ {
		if ints&(1<<uint(i)) == 0 {
			m.IntRegs[i] = 0
		}
	}
	for i := range m.FPRegs {
		if fps&(1<<uint(i)) == 0 {
			m.FPRegs[i] = 0
		}
	}
}

// machinesEqual asserts the reference and scrubbed runs are
// observably identical: same control state, instruction count, block
// profile and memory image. Register cells may differ only where the
// scrub zeroed a statically-dead value that was never rewritten — in
// which case the scrubbed cell must still be zero.
func machinesEqual(t *testing.T, name string, ref, scr *emu.Machine, live dataflow.RegSet) {
	t.Helper()
	if ref.PC != scr.PC || ref.Halted != scr.Halted || ref.Insts != scr.Insts {
		t.Fatalf("%s: control state diverged: pc %d/%d halted %v/%v insts %d/%d",
			name, ref.PC, scr.PC, ref.Halted, scr.Halted, ref.Insts, scr.Insts)
	}
	for b := range ref.BlockCounts {
		if ref.BlockCounts[b] != scr.BlockCounts[b] {
			t.Fatalf("%s: block profile diverged at B%d: %d != %d",
				name, b, ref.BlockCounts[b], scr.BlockCounts[b])
		}
	}
	ints, fps := live.Split()
	for i := range ref.IntRegs {
		if ref.IntRegs[i] == scr.IntRegs[i] {
			continue
		}
		if ints&(1<<uint(i)) != 0 || scr.IntRegs[i] != 0 {
			t.Fatalf("%s: live integer register r%d diverged: %d != %d",
				name, i, ref.IntRegs[i], scr.IntRegs[i])
		}
	}
	for i := range ref.FPRegs {
		// Compare bit patterns: NaN == NaN is false, but a NaN that both
		// runs computed identically is not a divergence.
		if math.Float64bits(ref.FPRegs[i]) == math.Float64bits(scr.FPRegs[i]) {
			continue
		}
		if fps&(1<<uint(i)) != 0 || math.Float64bits(scr.FPRegs[i]) != 0 {
			t.Fatalf("%s: live FP register f%d diverged: %v != %v",
				name, i, ref.FPRegs[i], scr.FPRegs[i])
		}
	}
	for w := int64(0); w < ref.MemWords(); w++ {
		if ref.LoadWord(w<<3) != scr.LoadWord(w<<3) {
			t.Fatalf("%s: memory diverged at word %d", name, w)
		}
	}
}

// TestScrubAtBoundariesIsInvisible is the core soundness property: at
// every block boundary the interpreter crosses, zeroing all registers
// NOT in the static live-in set must leave the rest of the execution
// bit-identical (architectural registers, memory, instruction count).
func TestScrubAtBoundariesIsInvisible(t *testing.T) {
	const maxInsts = 20000
	for _, p := range soundnessPrograms(t) {
		d := dataflow.For(p)

		// Collect the boundary PCs this execution actually crosses,
		// with the instruction count at which it first crosses each.
		type boundary struct {
			at uint64
			pc int64
		}
		var boundaries []boundary
		probe := emu.New(p, 1<<12)
		blocks := p.BasicBlocks()
		bt := p.BlockTable()
		seen := map[int64]bool{}
		for !probe.Halted && probe.Insts < maxInsts {
			if blocks[bt[probe.PC]].Start == probe.PC && !seen[probe.PC] {
				seen[probe.PC] = true
				boundaries = append(boundaries, boundary{probe.Insts, probe.PC})
			}
			if _, err := probe.Step(); err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
		}
		if !probe.Halted {
			t.Fatalf("%s: did not halt within %d insts", p.Name, maxInsts)
		}

		for _, bd := range boundaries {
			m := emu.New(p, 1<<12)
			if bd.at > 0 {
				// Run(0) means run-to-halt, so only fast-forward to
				// boundaries past the entry.
				if _, err := m.Run(bd.at); err != nil {
					t.Fatalf("%s: %v", p.Name, err)
				}
			}
			if m.PC != bd.pc {
				t.Fatalf("%s: replay desync: pc %d at inst %d, want %d", p.Name, m.PC, bd.at, bd.pc)
			}
			live, _, err := d.LiveInAt(m.PC)
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			ref, scrubbed := m.Clone(), m.Clone()
			scrubDead(scrubbed, live)
			if _, err := ref.RunToCompletion(maxInsts); err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			if _, err := scrubbed.RunToCompletion(maxInsts); err != nil {
				t.Fatalf("%s: scrubbed run at pc %d: %v", p.Name, bd.pc, err)
			}
			machinesEqual(t, p.Name, ref, scrubbed, live)
		}
	}
}

// TestObservedReadsAreLive checks the per-step formulation: every
// register the interpreter reads that it has not itself written since a
// boundary must be in that boundary's static live-in set.
func TestObservedReadsAreLive(t *testing.T) {
	const maxInsts = 20000
	for _, p := range soundnessPrograms(t) {
		d := dataflow.For(p)
		m := emu.New(p, 1<<12)
		live, _, err := d.LiveInAt(m.PC)
		if err != nil {
			t.Fatal(err)
		}
		var written dataflow.RegSet
		for !m.Halted && m.Insts < maxInsts {
			eff := dataflow.EffectOf(p.Code[m.PC])
			if leak := eff.Use &^ written &^ live; leak != 0 {
				t.Fatalf("%s: pc %d reads %v outside live-in %v (written %v)",
					p.Name, m.PC, leak, live, written)
			}
			written |= eff.Def
			if _, err := m.Step(); err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
		}
		if !m.Halted {
			t.Fatalf("%s: did not halt", p.Name)
		}
	}
}
