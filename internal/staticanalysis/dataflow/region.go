package dataflow

import (
	"fmt"
	"sort"
)

// RegionSummary is the dataflow summary of a single-entry code region:
// all paths from entryPC up to (but not including) the first time
// control reaches exitPC. This is the shape of a selected simulation
// point or a loop body — the unit a portable checkpoint must capture.
type RegionSummary struct {
	EntryPC, ExitPC int64

	// Blocks are the CFG block IDs the region may execute, ascending.
	Blocks []int

	// Insts is the number of static instructions in those blocks
	// (partial entry/exit blocks counted by their in-region ranges).
	Insts int64

	// LiveIn is the set of registers the region may read before
	// writing; LiveInMem is the memory analogue. State outside LiveIn
	// need not be captured for the region to replay bit-identically.
	LiveIn    RegSet
	LiveInMem bool

	// Defs is the set of registers the region may write; Loads/Stores
	// flag memory traffic.
	Defs   RegSet
	Loads  bool
	Stores bool
}

// RegionSummary computes the live-in, defs and footprint of the region
// [entryPC, exitPC). The exit must be forward-reachable from the entry;
// paths that leave the region through exitPC stop contributing there
// (region liveness, unlike whole-program LiveInAt, does not count uses
// beyond the exit). When both PCs fall in the same block the entry must
// precede the exit.
func (d *Dataflow) RegionSummary(entryPC, exitPC int64) (RegionSummary, error) {
	if err := d.checkPC(entryPC); err != nil {
		return RegionSummary{}, err
	}
	if err := d.checkPC(exitPC); err != nil {
		return RegionSummary{}, err
	}
	rs := RegionSummary{EntryPC: entryPC, ExitPC: exitPC}
	eb := d.Prog.BlockOf(entryPC)
	xb := d.Prog.BlockOf(exitPC)

	if eb == xb {
		// Straight-line region: control entering at entryPC runs the
		// block linearly and hits exitPC before any transfer.
		if entryPC >= exitPC {
			return rs, fmt.Errorf("dataflow: program %q: region exit %d does not follow entry %d within block B%d",
				d.Prog.Name, exitPC, entryPC, eb)
		}
		rs.Blocks = []int{eb}
		rs.Insts = exitPC - entryPC
		var live RegSet
		for pc := exitPC - 1; pc >= entryPC; pc-- {
			e := d.Effects[pc]
			live = (live &^ e.Def) | e.Use
			rs.Defs |= e.Def
			rs.Loads = rs.Loads || e.Load
			rs.Stores = rs.Stores || e.Store
		}
		rs.LiveIn = live
		rs.LiveInMem = rs.Loads
		return rs, nil
	}

	// Region discovery: forward closure from the entry block, cut at
	// the exit block — region execution ends inside it at exitPC, so
	// its successors are not part of the region.
	inRegion := make([]bool, d.CFG.NumBlocks())
	stack := []int{eb}
	inRegion[eb] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == xb {
			continue
		}
		for _, s := range d.CFG.Succs[b] {
			if !inRegion[s] {
				inRegion[s] = true
				stack = append(stack, s)
			}
		}
	}
	if !inRegion[xb] {
		return rs, fmt.Errorf("dataflow: program %q: region exit %d (block B%d) is not reachable from entry %d (block B%d)",
			d.Prog.Name, exitPC, xb, entryPC, eb)
	}
	for b, in := range inRegion {
		if in {
			rs.Blocks = append(rs.Blocks, b)
		}
	}
	sort.Ints(rs.Blocks)

	// The exit block participates only up to exitPC: compute its
	// partial gen/kill by a forward prefix walk.
	var xbGen, xbKill RegSet
	xbLoads := false
	for pc := d.CFG.Blocks[xb].Start; pc < exitPC; pc++ {
		e := d.Effects[pc]
		xbGen |= e.Use &^ xbKill
		xbKill |= e.Def
		xbLoads = xbLoads || e.Load
	}

	// Region-local backward liveness. Only the exit block's (cut)
	// edges leave the region, so every join stays inside; the boundary
	// is the empty set — region replay owes nothing past exitPC.
	liveIn := make(map[int]liveFact, len(rs.Blocks))
	liveOut := make(map[int]liveFact, len(rs.Blocks))
	for changed := true; changed; {
		changed = false
		for i := len(rs.Blocks) - 1; i >= 0; i-- {
			b := rs.Blocks[i]
			var out liveFact
			if b != xb {
				for _, s := range d.CFG.Succs[b] {
					f := liveIn[s]
					out.regs |= f.regs
					out.mem = out.mem || f.mem
				}
			}
			var in liveFact
			if b == xb {
				in = liveFact{xbGen, xbLoads}
			} else {
				in = liveFact{d.Gen[b] | (out.regs &^ d.Kill[b]), d.Loads[b] || out.mem}
			}
			if liveOut[b] != out || liveIn[b] != in {
				liveOut[b], liveIn[b] = out, in
				changed = true
			}
		}
	}

	// Refine the entry block's fact to entryPC (its earlier
	// instructions run only if a cycle re-enters the block, which the
	// block-level fixpoint already covers).
	live, mem := liveOut[eb].regs, liveOut[eb].mem
	for pc := d.CFG.Blocks[eb].End - 1; pc >= entryPC; pc-- {
		e := d.Effects[pc]
		live = (live &^ e.Def) | e.Use
		mem = mem || e.Load
	}
	rs.LiveIn, rs.LiveInMem = live, mem

	// Footprint: full blocks, except the exit block's in-region prefix;
	// the entry block counts in full because loops may re-enter it.
	for _, b := range rs.Blocks {
		start, end := d.BlockRange(b)
		if b == xb {
			end = exitPC
		}
		rs.Insts += end - start
		for pc := start; pc < end; pc++ {
			e := d.Effects[pc]
			rs.Defs |= e.Def
			rs.Loads = rs.Loads || e.Load
			rs.Stores = rs.Stores || e.Store
		}
	}
	return rs, nil
}
