package staticanalysis

import (
	"testing"

	"mlpa/internal/prog"
)

// FuzzVerify: the verifier (and the CFG/dominator/loop analyses built
// on top of it) must never panic on any program the assembler accepts
// — it reports structural problems as diagnostics instead.
func FuzzVerify(f *testing.F) {
	for _, p := range prog.Examples() {
		f.Add(p.Disassemble())
	}
	f.Add("start:\n  li r1, 3\n  halt\n")
	f.Add("loop:\n  addi r1, r1, -1\n  bne r1, r0, loop\n  halt\n")
	f.Add("  jmp missing\n")
	f.Add("  ld f1, r2, 8\n  halt\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := prog.Assemble("fuzz", src)
		if err != nil {
			return
		}
		rep := Verify(p)
		if rep == nil {
			t.Fatal("Verify returned nil report")
		}
		// The structural analyses must also hold up on whatever the
		// verifier accepts.
		if rep.OK() {
			cfg := BuildCFG(p)
			doms := Dominators(cfg)
			if len(doms.Idom) != len(cfg.Blocks) {
				t.Fatalf("dominator set size %d != block count %d", len(doms.Idom), len(cfg.Blocks))
			}
			FindLoops(cfg, doms)
		}
	})
}
