// Package sampling defines the common vocabulary of representative
// sampling simulation: simulation points (selected execution regions
// with representativeness weights) and sampling plans (the full
// recipe a sampled simulation executes: fast-forward functionally
// between points, simulate points in cycle-accurate detail, combine
// point metrics by weight).
package sampling

import (
	"fmt"
	"math"
	"sort"
)

// Point is one selected simulation point.
type Point struct {
	Start  uint64  // first instruction of the region
	End    uint64  // exclusive
	Weight float64 // fraction of whole-program behaviour it represents

	// Level records which sampling level selected the point: 1 for
	// first-level (coarse or plain fine-grained) points, 2 for points
	// chosen by re-sampling inside a coarse point.
	Level int

	// Interval is the index of the source interval in its trace
	// (first-level) or within its parent coarse point (second-level).
	Interval int

	// Parent is the first-level interval index this point descends
	// from, or -1 for first-level points.
	Parent int
}

// Len returns the point length in instructions.
func (p Point) Len() uint64 { return p.End - p.Start }

// Plan is a complete sampling recipe for one benchmark.
type Plan struct {
	Benchmark  string
	Method     string
	Points     []Point // sorted by Start, non-overlapping
	TotalInsts uint64
}

// Sort orders points by start position.
func (pl *Plan) Sort() {
	sort.Slice(pl.Points, func(i, j int) bool { return pl.Points[i].Start < pl.Points[j].Start })
}

// Validate checks structural invariants: points sorted, in range,
// non-overlapping, weights positive and summing to ~1.
func (pl *Plan) Validate() error {
	if len(pl.Points) == 0 {
		return fmt.Errorf("sampling plan %s/%s: no points", pl.Benchmark, pl.Method)
	}
	var wsum float64
	var prevEnd uint64
	for i, p := range pl.Points {
		if p.End <= p.Start {
			return fmt.Errorf("sampling plan %s/%s: point %d empty [%d,%d)", pl.Benchmark, pl.Method, i, p.Start, p.End)
		}
		if p.End > pl.TotalInsts {
			return fmt.Errorf("sampling plan %s/%s: point %d exceeds program (%d > %d)", pl.Benchmark, pl.Method, i, p.End, pl.TotalInsts)
		}
		if p.Start < prevEnd {
			return fmt.Errorf("sampling plan %s/%s: point %d overlaps previous (start %d < %d)", pl.Benchmark, pl.Method, i, p.Start, prevEnd)
		}
		if p.Weight <= 0 {
			return fmt.Errorf("sampling plan %s/%s: point %d non-positive weight %v", pl.Benchmark, pl.Method, i, p.Weight)
		}
		prevEnd = p.End
	}
	for _, p := range pl.Points {
		wsum += p.Weight
	}
	if math.Abs(wsum-1) > 1e-6 {
		return fmt.Errorf("sampling plan %s/%s: weights sum to %v", pl.Benchmark, pl.Method, wsum)
	}
	return nil
}

// DetailedInsts returns the instructions simulated in cycle-accurate
// detail (the union of the points).
func (pl *Plan) DetailedInsts() uint64 {
	var n uint64
	for _, p := range pl.Points {
		n += p.Len()
	}
	return n
}

// FunctionalInsts returns the instructions that must be functionally
// fast-forwarded: everything before the end of the last point that is
// not inside a point. Execution after the last point is skipped
// entirely, which is where early simulation points win.
func (pl *Plan) FunctionalInsts() uint64 {
	if len(pl.Points) == 0 {
		return 0
	}
	last := pl.Points[len(pl.Points)-1].End
	return last - pl.DetailedInsts()
}

// LastPosition returns the paper's "position of the last simulation
// point": the instruction count before the last point's final
// instruction over the total.
func (pl *Plan) LastPosition() float64 {
	if len(pl.Points) == 0 || pl.TotalInsts == 0 {
		return 0
	}
	return float64(pl.Points[len(pl.Points)-1].End-1) / float64(pl.TotalInsts)
}

// DetailedFraction returns DetailedInsts / TotalInsts (Table III
// "Mean Detail").
func (pl *Plan) DetailedFraction() float64 {
	if pl.TotalInsts == 0 {
		return 0
	}
	return float64(pl.DetailedInsts()) / float64(pl.TotalInsts)
}

// FunctionalFraction returns FunctionalInsts / TotalInsts (Table III
// "Mean Functional").
func (pl *Plan) FunctionalFraction() float64 {
	if pl.TotalInsts == 0 {
		return 0
	}
	return float64(pl.FunctionalInsts()) / float64(pl.TotalInsts)
}

// MeanPointLen returns the average point length in instructions.
func (pl *Plan) MeanPointLen() float64 {
	if len(pl.Points) == 0 {
		return 0
	}
	return float64(pl.DetailedInsts()) / float64(len(pl.Points))
}

// NormalizeWeights rescales weights to sum to exactly 1.
func (pl *Plan) NormalizeWeights() {
	var sum float64
	for _, p := range pl.Points {
		sum += p.Weight
	}
	if sum == 0 {
		return
	}
	for i := range pl.Points {
		pl.Points[i].Weight /= sum
	}
}

// TimeModel converts a plan's instruction split into simulation time
// using per-mode simulation rates (instructions per second).
type TimeModel struct {
	Name           string
	DetailedRate   float64
	FunctionalRate float64
}

// SimpleScalarRates reflects the SimpleScalar 3.0 toolchain the paper
// evaluates on: sim-outorder detail at ~0.3M inst/s and sim-fastfwd
// functional execution at ~7M inst/s (ratio ~1:23). Speedup *ratios*
// between methods depend only on this ratio, not the absolute rates.
var SimpleScalarRates = TimeModel{Name: "simplescalar", DetailedRate: 0.3e6, FunctionalRate: 7e6}

// Time returns the modeled simulation time in seconds for a given
// instruction split.
func (tm TimeModel) Time(detailed, functional uint64) float64 {
	return float64(detailed)/tm.DetailedRate + float64(functional)/tm.FunctionalRate
}

// PlanTime returns the modeled time to execute a plan.
func (tm TimeModel) PlanTime(pl *Plan) float64 {
	return tm.Time(pl.DetailedInsts(), pl.FunctionalInsts())
}

// FullDetailedTime returns the modeled time for the non-sampled
// baseline: every instruction in detail.
func (tm TimeModel) FullDetailedTime(totalInsts uint64) float64 {
	return tm.Time(totalInsts, 0)
}

// Speedup returns how much faster plan a is than plan b under the
// model (b time / a time).
func (tm TimeModel) Speedup(a, b *Plan) float64 {
	ta := tm.PlanTime(a)
	if ta == 0 {
		return math.Inf(1)
	}
	return tm.PlanTime(b) / ta
}
