package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

func validPlan() *Plan {
	return &Plan{
		Benchmark:  "bm",
		Method:     "m",
		TotalInsts: 1000,
		Points: []Point{
			{Start: 100, End: 200, Weight: 0.5, Level: 1, Parent: -1},
			{Start: 400, End: 450, Weight: 0.5, Level: 1, Parent: -1},
		},
	}
}

func TestValidateAcceptsGoodPlan(t *testing.T) {
	if err := validPlan().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Plan)
	}{
		{"no points", func(p *Plan) { p.Points = nil }},
		{"empty point", func(p *Plan) { p.Points[0].End = p.Points[0].Start }},
		{"out of range", func(p *Plan) { p.Points[1].End = 2000 }},
		{"overlap", func(p *Plan) { p.Points[1].Start = 150 }},
		{"zero weight", func(p *Plan) { p.Points[0].Weight = 0 }},
		{"weights sum", func(p *Plan) { p.Points[0].Weight = 0.9 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := validPlan()
			c.mutate(p)
			if err := p.Validate(); err == nil {
				t.Errorf("%s accepted", c.name)
			}
		})
	}
}

func TestInstructionAccounting(t *testing.T) {
	p := validPlan()
	if got := p.DetailedInsts(); got != 150 {
		t.Errorf("DetailedInsts = %d, want 150", got)
	}
	// Functional: up to end of last point (450) minus detailed (150).
	if got := p.FunctionalInsts(); got != 300 {
		t.Errorf("FunctionalInsts = %d, want 300", got)
	}
	if got := p.DetailedFraction(); got != 0.15 {
		t.Errorf("DetailedFraction = %v", got)
	}
	if got := p.FunctionalFraction(); got != 0.3 {
		t.Errorf("FunctionalFraction = %v", got)
	}
	if got := p.LastPosition(); got != 449.0/1000 {
		t.Errorf("LastPosition = %v", got)
	}
	if got := p.MeanPointLen(); got != 75 {
		t.Errorf("MeanPointLen = %v", got)
	}
}

func TestSort(t *testing.T) {
	p := validPlan()
	p.Points[0], p.Points[1] = p.Points[1], p.Points[0]
	p.Sort()
	if p.Points[0].Start != 100 {
		t.Errorf("Sort failed: %+v", p.Points)
	}
}

func TestNormalizeWeights(t *testing.T) {
	p := validPlan()
	p.Points[0].Weight = 2
	p.Points[1].Weight = 6
	p.NormalizeWeights()
	if math.Abs(p.Points[0].Weight-0.25) > 1e-12 || math.Abs(p.Points[1].Weight-0.75) > 1e-12 {
		t.Errorf("weights = %+v", p.Points)
	}
	empty := &Plan{Points: []Point{{Weight: 0}}}
	empty.NormalizeWeights() // must not divide by zero
}

func TestTimeModel(t *testing.T) {
	tm := TimeModel{DetailedRate: 10, FunctionalRate: 100}
	if got := tm.Time(10, 100); got != 2 {
		t.Errorf("Time = %v, want 2", got)
	}
	p := validPlan()
	want := 150.0/10 + 300.0/100
	if got := tm.PlanTime(p); got != want {
		t.Errorf("PlanTime = %v, want %v", got, want)
	}
	if got := tm.FullDetailedTime(1000); got != 100 {
		t.Errorf("FullDetailedTime = %v", got)
	}
}

func TestSpeedupOrdering(t *testing.T) {
	tm := SimpleScalarRates
	// A late-ending fine plan vs an early coarse plan of the same
	// benchmark: early plan must be faster.
	late := &Plan{TotalInsts: 1_000_000, Points: []Point{
		{Start: 990_000, End: 991_000, Weight: 1},
	}}
	early := &Plan{TotalInsts: 1_000_000, Points: []Point{
		{Start: 10_000, End: 30_000, Weight: 1},
	}}
	s := tm.Speedup(early, late)
	if s <= 1 {
		t.Errorf("early-point speedup = %v, want > 1", s)
	}
}

func TestSpeedupInfiniteOnZeroTime(t *testing.T) {
	tm := SimpleScalarRates
	zero := &Plan{TotalInsts: 10}
	other := validPlan()
	if got := tm.Speedup(zero, other); !math.IsInf(got, 1) {
		t.Errorf("Speedup = %v, want +Inf", got)
	}
}

// Property: for any sorted non-overlapping plan, detailed + functional
// insts never exceed the end of the last point, and fractions are in
// [0,1].
func TestAccountingInvariants(t *testing.T) {
	f := func(startsRaw [5]uint16, lens [5]uint8) bool {
		pl := &Plan{TotalInsts: 1 << 20}
		var cur uint64
		for i := range startsRaw {
			cur += uint64(startsRaw[i]) + 1
			end := cur + uint64(lens[i]) + 1
			pl.Points = append(pl.Points, Point{Start: cur, End: end, Weight: 0.2})
			cur = end
		}
		det, fun := pl.DetailedInsts(), pl.FunctionalInsts()
		last := pl.Points[len(pl.Points)-1].End
		if det+fun != last {
			return false
		}
		return pl.DetailedFraction() >= 0 && pl.DetailedFraction() <= 1 &&
			pl.FunctionalFraction() >= 0 && pl.FunctionalFraction() <= 1 &&
			pl.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
