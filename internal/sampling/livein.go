package sampling

// LiveIn is the static live-in summary of one simulation-point
// boundary: the architectural registers that may be read before being
// overwritten from the boundary onward, as two per-file bitmasks (bit i
// of Int is integer register ri, bit i of FP is fi), plus whether data
// memory may be read. It is the storage schema for portable
// checkpoints: state outside the masks (and, when Mem is false, the
// memory image) need not be captured for the point to replay
// bit-identically. Computed by internal/staticanalysis/dataflow and
// journaled as the "static_livein" event (see docs/OBSERVABILITY.md).
type LiveIn struct {
	// PC is the guest program counter at the boundary the masks were
	// computed for.
	PC int64 `json:"pc"`

	Int uint32 `json:"int"`
	FP  uint32 `json:"fp"`
	Mem bool   `json:"mem"`
}
