package bench

import (
	"fmt"
	"sync"

	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

// Size selects the suite scale. All presets preserve the benchmarks'
// phase *structure*; they differ in how many emulated instructions one
// work quantum expands to (see DESIGN.md on nominal-to-emulated
// scaling).
type Size int

// Suite scale presets.
const (
	// SizeTiny is for unit tests: ~0.3M instructions per benchmark.
	SizeTiny Size = iota
	// SizeSmall is for Go benchmarks: ~1.2M instructions.
	SizeSmall
	// SizeRef is the full harness scale: ~5M instructions.
	SizeRef
)

// String names the preset.
func (s Size) String() string {
	switch s {
	case SizeTiny:
		return "tiny"
	case SizeSmall:
		return "small"
	case SizeRef:
		return "ref"
	}
	return fmt.Sprintf("size(%d)", int(s))
}

type sizeParams struct {
	unit int64 // kernel trip multiplier (quantum ~1500*unit insts)
	// iterScale multiplies each spec's outer iteration count (except
	// fixed-iteration specs like gcc), so coarse points shrink
	// relative to the program the way SPEC2000 iterations relate to
	// full runs. The fine interval is 40*unit, making one outer
	// iteration ~37 fine intervals and pushing iterations above the
	// multi-level re-sampling threshold (30 intervals).
	iterScale int
}

// Kernel working sets are deliberately L1-resident (chase, mixed) or
// warm-state-invariant (stream never revisits a block): at the suite's
// scaled interval lengths, cross-iteration L2 warming would make early
// simulation points systematically unrepresentative, a transient that
// is negligible at the paper's 444M-instruction coarse points.
// The buffers are small (1 KiB) so their one-time fill transient
// spans only a sliver of the first iteration.
const (
	chaseWords = 128 // 1 KiB
	mixedWords = 128 // 1 KiB
)

func params(s Size) sizeParams {
	switch s {
	case SizeSmall:
		return sizeParams{unit: 8, iterScale: 8}
	case SizeRef:
		return sizeParams{unit: 16, iterScale: 12}
	default:
		return sizeParams{unit: 4, iterScale: 1}
	}
}

func (pp sizeParams) fineLen() uint64 { return uint64(40 * pp.unit) }

// FineInterval returns the fine-grained ("10M nominal") interval
// length for a preset.
func FineInterval(s Size) uint64 { return params(s).fineLen() }

// NominalPerInst returns how many of the paper's nominal instructions
// one emulated instruction stands for, defined so that one fine
// interval corresponds to the paper's 10M-instruction SimPoint
// interval.
func NominalPerInst(s Size) float64 { return 10e6 / float64(params(s).fineLen()) }

// epoch assigns a repeating kernel pattern to iterations starting at
// From. Mul scales kernel trip counts within the epoch (gcc's dominant
// iteration uses a large Mul on a one-iteration epoch).
type epoch struct {
	From    int
	Pattern []string // kernel names, cycled by (i-From) % len
	Mul     int64    // 0 means 1
}

// Spec describes one synthetic benchmark and the SPEC2000 traits it
// models.
type Spec struct {
	Name  string
	Model string // which SPEC2000 benchmark's published traits it encodes
	// Iterations is the outer-loop trip count (gcc: 56, as reported).
	Iterations int
	// Epochs is the phase script.
	Epochs []epoch
	// Phases is the number of distinct coarse phases the script
	// creates (paper Section III: avg 3; gzip 4, fma3d 5, equake 6).
	Phases int
	// LastPhasePos is the approximate position (fraction of
	// instructions) where the last coarse phase first appears (paper:
	// avg 17%; gcc 86%, art 47%, bzip2 36%).
	LastPhasePos float64
	// FP marks floating-point-suite models.
	FP bool
	// FixedIterations pins the iteration count across size presets
	// (gcc's 56 reference-input iterations are themselves a reported
	// trait).
	FixedIterations bool
}

// EffectiveIterations returns the outer-loop trip count at a size.
func (s *Spec) EffectiveIterations(size Size) int {
	if s.FixedIterations {
		return s.Iterations
	}
	return s.Iterations * params(size).iterScale
}

func (s *Spec) validate() error {
	if s.Iterations < 2 {
		return fmt.Errorf("bench %s: %d iterations", s.Name, s.Iterations)
	}
	if len(s.Epochs) == 0 || s.Epochs[0].From != 0 {
		return fmt.Errorf("bench %s: first epoch must start at 0", s.Name)
	}
	for i := 1; i < len(s.Epochs); i++ {
		if s.Epochs[i].From <= s.Epochs[i-1].From {
			return fmt.Errorf("bench %s: epochs not increasing", s.Name)
		}
	}
	for _, e := range s.Epochs {
		if len(e.Pattern) == 0 {
			return fmt.Errorf("bench %s: empty pattern", s.Name)
		}
	}
	return nil
}

// Suite returns the benchmark catalog in table order.
func Suite() []*Spec {
	return []*Spec{
		{
			Name: "gzip", Model: "gzip (4 coarse phases)",
			Iterations: 48, Phases: 4, LastPhasePos: 0.08,
			Epochs: []epoch{{From: 0, Pattern: []string{"mixed", "alu", "branchy", "stream"}}},
		},
		{
			Name: "gcc", Model: "gcc (56 variable iterations, one 60% iteration, last phase at 86%)",
			Iterations: 56, Phases: 3, LastPhasePos: 0.86, FixedIterations: true,
			Epochs: []epoch{
				{From: 0, Pattern: []string{"alu"}},
				{From: 20, Pattern: []string{"mixed"}, Mul: 139},
				{From: 21, Pattern: []string{"alu"}},
				{From: 38, Pattern: []string{"branchy"}},
			},
		},
		{
			Name: "vpr", Model: "vpr (place phase, then route joins)",
			Iterations: 48, Phases: 2, LastPhasePos: 0.17,
			Epochs: []epoch{
				{From: 0, Pattern: []string{"mixed"}},
				{From: 8, Pattern: []string{"mixed", "branchy"}},
			},
		},
		{
			Name: "mcf", Model: "mcf (pointer-chasing, 2 phases)",
			Iterations: 48, Phases: 2, LastPhasePos: 0.06,
			Epochs: []epoch{{From: 0, Pattern: []string{"chase", "chase", "mixed"}}},
		},
		{
			Name: "crafty", Model: "crafty (branch-heavy, 2 phases)",
			Iterations: 48, Phases: 2, LastPhasePos: 0.05,
			Epochs: []epoch{{From: 0, Pattern: []string{"branchy", "branchy", "alu"}}},
		},
		{
			Name: "parser", Model: "parser (2 phases)",
			Iterations: 60, Phases: 2, LastPhasePos: 0.03,
			Epochs: []epoch{{From: 0, Pattern: []string{"mixed", "branchy"}}},
		},
		{
			Name: "eon", Model: "eon (flat rendering profile, 2 phases)",
			Iterations: 48, Phases: 2, LastPhasePos: 0.04,
			Epochs: []epoch{{From: 0, Pattern: []string{"alu2", "mixed"}}},
		},
		{
			Name: "perlbmk", Model: "perlbmk (interpreter dispatch, branch-heavy)",
			Iterations: 52, Phases: 2, LastPhasePos: 0.04,
			Epochs: []epoch{{From: 0, Pattern: []string{"branchy", "alu"}}},
		},
		{
			Name: "gap", Model: "gap (computer algebra, 3 phases)",
			Iterations: 48, Phases: 3, LastPhasePos: 0.06,
			Epochs: []epoch{{From: 0, Pattern: []string{"alu", "mixed", "alu2"}}},
		},
		{
			Name: "vortex", Model: "vortex (complex, 3 phases)",
			Iterations: 48, Phases: 3, LastPhasePos: 0.06,
			Epochs: []epoch{{From: 0, Pattern: []string{"mixed", "alu", "ilp"}}},
		},
		{
			Name: "bzip2", Model: "bzip2 (last phase first appears at 36%)",
			Iterations: 48, Phases: 3, LastPhasePos: 0.36,
			Epochs: []epoch{
				{From: 0, Pattern: []string{"stream", "alu"}},
				{From: 17, Pattern: []string{"branchy", "stream", "alu"}},
			},
		},
		{
			Name: "twolf", Model: "twolf (2 phases)",
			Iterations: 48, Phases: 2, LastPhasePos: 0.06,
			Epochs: []epoch{{From: 0, Pattern: []string{"mixed", "mixed", "branchy"}}},
		},
		{
			Name: "wupwise", Model: "wupwise (FP, 2 phases)", FP: true,
			Iterations: 48, Phases: 2, LastPhasePos: 0.04,
			Epochs: []epoch{{From: 0, Pattern: []string{"fp", "alu"}}},
		},
		{
			Name: "swim", Model: "swim (FP streaming, 2 phases)", FP: true,
			Iterations: 48, Phases: 2, LastPhasePos: 0.04,
			Epochs: []epoch{{From: 0, Pattern: []string{"stream", "fp"}}},
		},
		{
			Name: "mgrid", Model: "mgrid (FP multigrid streaming)", FP: true,
			Iterations: 48, Phases: 2, LastPhasePos: 0.04,
			Epochs: []epoch{{From: 0, Pattern: []string{"stream", "fp2"}}},
		},
		{
			Name: "applu", Model: "applu (FP solver, 3 phases)", FP: true,
			Iterations: 48, Phases: 3, LastPhasePos: 0.06,
			Epochs: []epoch{{From: 0, Pattern: []string{"stream", "fp", "mixed"}}},
		},
		{
			Name: "mesa", Model: "mesa (rendering, 2 phases)", FP: true,
			Iterations: 48, Phases: 2, LastPhasePos: 0.04,
			Epochs: []epoch{{From: 0, Pattern: []string{"mixed", "fp"}}},
		},
		{
			Name: "galgel", Model: "galgel (FP fluid dynamics, 2 phases)", FP: true,
			Iterations: 48, Phases: 2, LastPhasePos: 0.04,
			Epochs: []epoch{{From: 0, Pattern: []string{"fp2", "stream"}}},
		},
		{
			Name: "art", Model: "art (last phase first appears at 47%)", FP: true,
			Iterations: 48, Phases: 3, LastPhasePos: 0.47,
			Epochs: []epoch{
				{From: 0, Pattern: []string{"stream", "mixed"}},
				{From: 23, Pattern: []string{"fp", "stream", "mixed"}},
			},
		},
		{
			Name: "equake", Model: "equake (6 coarse phases)", FP: true,
			Iterations: 48, Phases: 6, LastPhasePos: 0.12,
			Epochs: []epoch{{From: 0, Pattern: []string{"fp", "alu", "mixed", "fp2", "alu2", "branchy"}}},
		},
		{
			Name: "fma3d", Model: "fma3d (5 coarse phases)", FP: true,
			Iterations: 50, Phases: 5, LastPhasePos: 0.10,
			Epochs: []epoch{{From: 0, Pattern: []string{"fp", "alu2", "mixed", "fp2", "ilp"}}},
		},
		{
			Name: "lucas", Model: "lucas (chaotic fine-grained, smooth coarse-grained)", FP: true,
			Iterations: 48, Phases: 2, LastPhasePos: 0.15,
			Epochs: []epoch{
				{From: 0, Pattern: []string{"fp"}},
				{From: 7, Pattern: []string{"burst"}},
			},
		},
		{
			Name: "facerec", Model: "facerec (FP image processing, 3 phases)", FP: true,
			Iterations: 48, Phases: 3, LastPhasePos: 0.06,
			Epochs: []epoch{{From: 0, Pattern: []string{"fp", "mixed", "ilp"}}},
		},
		{
			Name: "ammp", Model: "ammp (2 phases)", FP: true,
			Iterations: 48, Phases: 2, LastPhasePos: 0.04,
			Epochs: []epoch{{From: 0, Pattern: []string{"fp", "mixed"}}},
		},
		{
			Name: "sixtrack", Model: "sixtrack (accelerator physics, 2 similar FP phases)", FP: true,
			Iterations: 48, Phases: 2, LastPhasePos: 0.04,
			Epochs: []epoch{{From: 0, Pattern: []string{"fp", "fp2"}}},
		},
		{
			Name: "apsi", Model: "apsi (meteorology, 3 phases)", FP: true,
			Iterations: 48, Phases: 3, LastPhasePos: 0.06,
			Epochs: []epoch{{From: 0, Pattern: []string{"stream", "alu2", "fp"}}},
		},
	}
}

// ByName returns the suite spec with the given name.
func ByName(name string) (*Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}

// Names returns the suite benchmark names in order.
func Names() []string {
	suite := Suite()
	out := make([]string, len(suite))
	for i, s := range suite {
		out[i] = s.Name
	}
	return out
}

var progCache sync.Map // "name/size" -> *prog.Program

// Program generates (and caches) the executable for a spec at a size.
func (s *Spec) Program(size Size) (*prog.Program, error) {
	key := fmt.Sprintf("%s/%d", s.Name, size)
	if p, ok := progCache.Load(key); ok {
		return p.(*prog.Program), nil
	}
	p, err := s.build(size)
	if err != nil {
		return nil, err
	}
	progCache.Store(key, p)
	return p, nil
}

// MustProgram is Program, panicking on generation errors.
func (s *Spec) MustProgram(size Size) *prog.Program {
	p, err := s.Program(size)
	if err != nil {
		panic(err)
	}
	return p
}

func (s *Spec) kernels() map[string]kernel {
	return map[string]kernel{
		"alu":     aluKernel(),
		"alu2":    aluKernel2(),
		"ilp":     ilpKernel(),
		"stream":  streamKernel(),
		"chase":   chaseKernel(chaseWords),
		"branchy": branchyKernel(),
		"fp":      fpKernel(),
		"fp2":     fpKernel2(),
		"mixed":   mixedKernel(mixedWords),
		"burst":   burstKernel(),
	}
}

// build generates the program: kernel init code, then an outer loop
// whose body dispatches on the iteration counter per the phase script.
func (s *Spec) build(size Size) (*prog.Program, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	pp := params(size)
	b := prog.NewBuilder(s.Name)
	g := &gen{b: b, unit: pp.unit, dataCursor: 64}
	kerns := s.kernels()

	// Which kernels does the script use?
	used := map[string]bool{}
	for _, e := range s.Epochs {
		for _, k := range e.Pattern {
			if _, ok := kerns[k]; !ok {
				return nil, fmt.Errorf("bench %s: unknown kernel %q", s.Name, k)
			}
			used[k] = true
		}
	}
	// One-time kernel initialization (chase permutation, buffers).
	order := []string{"alu", "alu2", "ilp", "stream", "chase", "branchy", "fp", "fp2", "mixed", "burst"}
	for _, name := range order {
		if used[name] && kerns[name].init != nil {
			kerns[name].init(g)
		}
	}
	// Cursor for the shared conflict-reuse section, starting in a
	// virtual region far above both the low data region and the
	// stream region.
	conflictCursor := g.reserve(8)
	b.Li(2, 1<<32)
	b.Li(3, conflictCursor)
	b.St(2, 3, 0)

	// Iteration scaling: epoch boundaries scale with the iteration
	// count so phase positions are preserved across presets.
	scale := params(size).iterScale
	if s.FixedIterations {
		scale = 1
	}
	n := s.Iterations * scale

	// Outer loop.
	b.Li(regIter, 0)
	b.Li(regN, int64(n))
	b.Label("outer")

	// Dispatch: locate the active epoch, set the multiplier, pick the
	// pattern entry, jump to the kernel body.
	for ei, e := range s.Epochs {
		epochEnd := n
		if ei+1 < len(s.Epochs) {
			epochEnd = s.Epochs[ei+1].From * scale
		}
		next := b.AutoLabel("epoch")
		b.Slti(2, regIter, int64(epochEnd))
		b.Beq(2, isa.RZero, next)
		mul := e.Mul
		if mul == 0 {
			mul = 1
		}
		b.Li(regMul, mul)
		if len(e.Pattern) == 1 {
			b.Jmp("k_" + e.Pattern[0])
		} else {
			b.Addi(3, regIter, int64(-e.From*scale))
			b.Li(4, int64(len(e.Pattern)))
			b.Rem(3, 3, 4)
			for pi := 0; pi < len(e.Pattern)-1; pi++ {
				b.Addi(4, 3, int64(-pi))
				b.Beq(4, isa.RZero, "k_"+e.Pattern[pi])
			}
			b.Jmp("k_" + e.Pattern[len(e.Pattern)-1])
		}
		b.Label(next)
	}
	// Unreachable fallthrough guard: treat as tail.
	b.Jmp("tail")

	// Kernel bodies, shared across epochs.
	for _, name := range order {
		if !used[name] {
			continue
		}
		b.Label("k_" + name)
		kerns[name].body(g)
		b.Jmp("tail")
	}

	// Variant pad: every iteration additionally runs one of five small
	// distinct code chunks selected by i mod 5 (~7% of an iteration).
	// Real programs' fixed-length intervals fall into many more BBV
	// subclusters than there are coarse phases; the rotating pads
	// recreate that: fine-grained clustering finds the pad subclusters
	// (whose representatives scatter uniformly over the run, putting
	// the last fine point late, as in SPEC2000), while their small
	// share leaves coarse-grained iteration signatures grouped by
	// kernel.
	b.Label("tail")
	conflictReuse(g, conflictCursor)
	b.Li(4, 5)
	b.Rem(3, regIter, 4)
	for v := 0; v < 4; v++ {
		b.Addi(4, 3, int64(-v))
		b.Beq(4, isa.RZero, fmt.Sprintf("pad_%d", v))
	}
	b.Jmp("pad_4")
	padOps := []func(){
		func() { b.Addi(13, 13, 3); b.Addi(14, 14, 5); b.Xor(15, 15, 13) },
		func() { b.Mul(13, 13, 13); b.Addi(13, 13, 1); b.Or(14, 14, 13) },
		func() { b.Shli(13, 14, 2); b.Shri(14, 13, 1); b.Addi(14, 14, 9) },
		func() { b.Xori(13, 13, 255); b.Sub(14, 14, 13); b.Addi(14, 14, 2) },
		func() { b.Slt(13, 14, 15); b.Add(14, 14, 13); b.Xori(15, 15, 7) },
	}
	// Pad sections are ~interval-sized (fine-grained clustering sees
	// them as distinct subphases) but only ~2% of an iteration, so
	// coarse-grained clustering still groups iterations by kernel.
	for v, ops := range padOps {
		b.Label(fmt.Sprintf("pad_%d", v))
		b.Li(5, 6*pp.unit)
		g.loop(fmt.Sprintf("pad%d", v), 5, ops)
		if v < len(padOps)-1 {
			b.Jmp("tail2")
		}
	}

	b.Label("tail2")
	b.Addi(regIter, regIter, 1)
	b.Blt(regIter, regN, "outer")
	b.Halt()

	return b.Build()
}

// OuterLoopHead returns the PC of the generated outer loop head (the
// coarse iteration boundary the dynamic profiler should rediscover).
func OuterLoopHead(p *prog.Program) int64 {
	return p.Labels["outer"]
}
