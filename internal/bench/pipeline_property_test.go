package bench

import (
	"math/rand"
	"testing"

	"mlpa/internal/coasts"
	"mlpa/internal/config"
	"mlpa/internal/cpu"
	"mlpa/internal/emu"
	"mlpa/internal/multilevel"
	"mlpa/internal/simpoint"
	"mlpa/internal/vli"
)

// randomSpec builds a random but well-formed phase script.
func randomSpec(rng *rand.Rand) *Spec {
	kernels := []string{"alu", "alu2", "ilp", "stream", "chase", "branchy", "fp", "fp2", "mixed", "burst"}
	iters := 12 + rng.Intn(36)
	numEpochs := 1 + rng.Intn(3)
	var epochs []epoch
	from := 0
	for e := 0; e < numEpochs; e++ {
		patLen := 1 + rng.Intn(4)
		pat := make([]string, patLen)
		for i := range pat {
			pat[i] = kernels[rng.Intn(len(kernels))]
		}
		mul := int64(0)
		if rng.Intn(4) == 0 {
			mul = int64(1 + rng.Intn(5))
		}
		epochs = append(epochs, epoch{From: from, Pattern: pat, Mul: mul})
		from += 1 + rng.Intn(iters/numEpochs+1)
		if from >= iters {
			break
		}
	}
	return &Spec{
		Name:       "rand",
		Iterations: iters,
		Phases:     1,
		Epochs:     epochs,
	}
}

// TestRandomScriptsFullPipeline is the end-to-end property test: any
// well-formed phase script must yield a program that runs to
// completion deterministically and produces valid sampling plans under
// every method, with multi-level weights descending from the coarse
// plan.
func TestRandomScriptsFullPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		spec := randomSpec(rng)
		p, err := spec.build(SizeTiny)
		if err != nil {
			t.Fatalf("trial %d: build: %v (epochs %+v)", trial, err, spec.Epochs)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m := emu.New(p, 0)
		n1, err := m.RunToCompletion(1 << 30)
		if err != nil {
			t.Fatalf("trial %d: run: %v", trial, err)
		}
		m2 := emu.New(p, 0)
		n2, _ := m2.RunToCompletion(1 << 30)
		if n1 != n2 {
			t.Fatalf("trial %d: nondeterministic length %d vs %d", trial, n1, n2)
		}

		fine := FineInterval(SizeTiny)
		spPlan, _, _, err := simpoint.Select(p, simpoint.Config{IntervalLen: fine, Kmax: 10, Seed: int64(trial)})
		if err != nil {
			t.Fatalf("trial %d: simpoint: %v", trial, err)
		}
		if err := spPlan.Validate(); err != nil {
			t.Fatalf("trial %d: simpoint plan: %v", trial, err)
		}

		coPlan, _, _, err := coasts.Select(p, coasts.Config{Seed: int64(trial)})
		if err != nil {
			t.Fatalf("trial %d: coasts: %v", trial, err)
		}
		if err := coPlan.Validate(); err != nil {
			t.Fatalf("trial %d: coasts plan: %v", trial, err)
		}

		mlPlan, rep, err := multilevel.Select(p, multilevel.Config{
			Coarse: coasts.Config{Seed: int64(trial)},
			Fine:   simpoint.Config{IntervalLen: fine, Kmax: 10, Seed: int64(trial)},
		})
		if err != nil {
			t.Fatalf("trial %d: multilevel: %v", trial, err)
		}
		if err := mlPlan.Validate(); err != nil {
			t.Fatalf("trial %d: multilevel plan: %v", trial, err)
		}
		// Weight conservation across levels.
		var wsum float64
		for _, pt := range mlPlan.Points {
			wsum += pt.Weight
		}
		if wsum < 0.999 || wsum > 1.001 {
			t.Fatalf("trial %d: multilevel weights sum %v", trial, wsum)
		}
		if len(rep.Resampled) != len(rep.CoarsePlan.Points) {
			t.Fatalf("trial %d: report shape mismatch", trial)
		}

		vliPlan, _, _, err := vli.Select(p, vli.Config{TargetLen: fine, Kmax: 10, Seed: int64(trial)})
		if err != nil {
			t.Fatalf("trial %d: vli: %v", trial, err)
		}
		if err := vliPlan.Validate(); err != nil {
			t.Fatalf("trial %d: vli plan: %v", trial, err)
		}
	}
}

// TestRandomProgramsDetailedSim: the detailed timing model must run
// any well-formed suite program to completion without deadlock, with
// exact instruction accounting and CPI in a physical band.
func TestRandomProgramsDetailedSim(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		spec := randomSpec(rng)
		p, err := spec.build(SizeTiny)
		if err != nil {
			t.Fatal(err)
		}
		// Functional reference length.
		mf := emu.New(p, 0)
		want, err := mf.RunToCompletion(1 << 30)
		if err != nil {
			t.Fatal(err)
		}

		m := emu.New(p, 0)
		sim := cpu.MustNew(config.BaseA())
		res, err := sim.Run(m, 0)
		if err != nil {
			t.Fatalf("trial %d: detailed run: %v", trial, err)
		}
		if res.Insts != want {
			t.Fatalf("trial %d: detailed committed %d, functional %d", trial, res.Insts, want)
		}
		if cpi := res.CPI(); cpi < 1.0/8 || cpi > 50 {
			t.Errorf("trial %d: CPI %v outside physical band", trial, cpi)
		}
		if res.Branch.Lookups == 0 {
			t.Errorf("trial %d: no branches observed", trial)
		}
	}
}
