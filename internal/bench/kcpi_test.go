package bench

import (
	"testing"

	"mlpa/internal/config"
	"mlpa/internal/cpu"
	"mlpa/internal/emu"
)

// kernelResult runs a single-kernel probe benchmark under config A.
func kernelResult(t *testing.T, name string) cpu.Result {
	t.Helper()
	spec := &Spec{Name: "probe_" + name, Iterations: 24,
		Epochs: []epoch{{From: 0, Pattern: []string{name}}}}
	p, err := spec.build(SizeTiny)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p, 0)
	sim := cpu.MustNew(config.BaseA())
	res, err := sim.Run(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestKernelSignatures pins the microarchitectural contrasts the suite
// depends on: every kernel lands in a plausible CPI band, the
// streaming kernel is the most memory-bound, the ILP kernel the
// fastest, and the branchy kernel has clearly lower prediction
// accuracy than the biased-loop kernels.
func TestKernelSignatures(t *testing.T) {
	names := []string{"alu", "alu2", "ilp", "stream", "chase", "branchy", "fp", "fp2", "mixed", "burst"}
	res := map[string]cpu.Result{}
	for _, n := range names {
		r := kernelResult(t, n)
		res[n] = r
		t.Logf("%-8s CPI=%.3f L1=%.3f L2=%.3f bracc=%.3f", n, r.CPI(), r.L1HitRate(), r.L2HitRate(), r.Branch.Accuracy())
		if cpi := r.CPI(); cpi < 0.15 || cpi > 3 {
			t.Errorf("%s CPI %v outside plausible band", n, cpi)
		}
	}
	for _, n := range names {
		if n != "stream" && res[n].CPI() >= res["stream"].CPI() {
			t.Errorf("stream should be the slowest kernel; %s CPI %v >= %v", n, res[n].CPI(), res["stream"].CPI())
		}
		if n != "ilp" && res[n].CPI() <= res["ilp"].CPI() {
			t.Errorf("ilp should be the fastest kernel; %s CPI %v <= %v", n, res[n].CPI(), res["ilp"].CPI())
		}
	}
	if res["branchy"].Branch.Accuracy() >= res["alu"].Branch.Accuracy()-0.05 {
		t.Errorf("branchy accuracy %v not clearly below alu %v",
			res["branchy"].Branch.Accuracy(), res["alu"].Branch.Accuracy())
	}
	// Variant kernels match their primaries within a tight band.
	for _, pair := range [][2]string{{"alu", "alu2"}, {"fp", "fp2"}} {
		a, b := res[pair[0]].CPI(), res[pair[1]].CPI()
		if diff := a - b; diff > 0.25 || diff < -0.25 {
			t.Errorf("variant %s CPI %v too far from %s CPI %v", pair[1], b, pair[0], a)
		}
	}
}
