package bench

import (
	"testing"

	"mlpa/internal/coasts"
	"mlpa/internal/emu"
)

func TestSuiteCatalog(t *testing.T) {
	suite := Suite()
	if len(suite) < 12 {
		t.Fatalf("suite has %d benchmarks, want >= 12", len(suite))
	}
	seen := map[string]bool{}
	for _, s := range suite {
		if seen[s.Name] {
			t.Errorf("duplicate benchmark %q", s.Name)
		}
		seen[s.Name] = true
		if err := s.validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	// Paper-reported traits present.
	for _, want := range []struct {
		name   string
		phases int
		pos    float64
	}{
		{"gzip", 4, 0.08},
		{"equake", 6, 0.12},
		{"fma3d", 5, 0.10},
		{"gcc", 3, 0.86},
		{"art", 3, 0.47},
		{"bzip2", 3, 0.36},
	} {
		s, err := ByName(want.name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Phases != want.phases {
			t.Errorf("%s phases = %d, want %d", want.name, s.Phases, want.phases)
		}
		if s.LastPhasePos != want.pos {
			t.Errorf("%s last pos = %v, want %v", want.name, s.LastPhasePos, want.pos)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) succeeded")
	}
	if len(Names()) != len(suite) {
		t.Error("Names length mismatch")
	}
	if s, err := ByName("gcc"); err != nil || s.Iterations != 56 {
		t.Errorf("gcc iterations = %d, want 56 (paper)", s.Iterations)
	}
}

func TestAllProgramsBuildAndRun(t *testing.T) {
	for _, s := range Suite() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			p, err := s.Program(SizeTiny)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			m := emu.New(p, 0)
			n, err := m.RunToCompletion(1 << 28)
			if err != nil {
				t.Fatal(err)
			}
			if n < 50_000 {
				t.Errorf("%s ran only %d instructions", s.Name, n)
			}
			if n > 5_000_000 {
				t.Errorf("%s ran %d instructions at tiny size", s.Name, n)
			}
		})
	}
}

func TestProgramCaching(t *testing.T) {
	s, _ := ByName("gzip")
	p1 := s.MustProgram(SizeTiny)
	p2 := s.MustProgram(SizeTiny)
	if p1 != p2 {
		t.Error("Program not cached")
	}
	p3 := s.MustProgram(SizeSmall)
	if p1 == p3 {
		t.Error("different sizes share a program")
	}
}

func TestOuterLoopDiscovered(t *testing.T) {
	// The dynamic loop profiler must rediscover the generated outer
	// loop as the dominant cyclic structure for every benchmark.
	for _, s := range Suite() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			p := s.MustProgram(SizeTiny)
			m := emu.New(p, 0)
			lp := emu.NewLoopProfiler(m)
			m.Branch = lp.OnBranch
			if _, err := m.RunToCompletion(1 << 28); err != nil {
				t.Fatal(err)
			}
			lp.Finish()
			sel := lp.SelectCoarse(m.Insts, 0.01)
			if sel == nil {
				t.Fatal("no coarse structure found")
			}
			if sel.Head != OuterLoopHead(p) {
				t.Errorf("selected head %d, want outer loop %d", sel.Head, OuterLoopHead(p))
			}
			wantIters := uint64(s.Iterations)
			if sel.Iterations != wantIters {
				t.Errorf("iterations = %d, want %d", sel.Iterations, wantIters)
			}
		})
	}
}

func TestGccDominantIteration(t *testing.T) {
	s, _ := ByName("gcc")
	p := s.MustProgram(SizeTiny)
	bd, err := coasts.CollectBoundaries(p, coasts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := bd.Structure
	if st == nil {
		t.Fatal("no structure")
	}
	// The giant iteration should account for ~60% of execution.
	frac := float64(st.MaxIter) / float64(bd.TotalInsts)
	if frac < 0.5 || frac > 0.7 {
		t.Errorf("dominant iteration fraction = %v, want ~0.6", frac)
	}
}

func TestLastPhasePositions(t *testing.T) {
	// The script-declared first-appearance position of the last phase
	// must match the generated program (within tolerance), for the
	// benchmarks whose positions the paper calls out.
	for _, name := range []string{"gcc", "art", "bzip2"} {
		s, _ := ByName(name)
		p := s.MustProgram(SizeTiny)
		plan, _, _, err := coasts.Select(p, coasts.Config{Seed: 1, Kmax: int64ToInt(int64(s.Phases))})
		if err != nil {
			t.Fatal(err)
		}
		got := plan.LastPosition()
		if diff := got - s.LastPhasePos; diff > 0.15 || diff < -0.15 {
			t.Errorf("%s last point position = %v, spec %v", name, got, s.LastPhasePos)
		}
	}
}

func int64ToInt(v int64) int { return int(v) }

func TestFineIntervalAndScale(t *testing.T) {
	if FineInterval(SizeTiny) >= FineInterval(SizeSmall) || FineInterval(SizeSmall) >= FineInterval(SizeRef) {
		t.Error("fine intervals not increasing with size")
	}
	if NominalPerInst(SizeTiny) <= NominalPerInst(SizeRef) {
		t.Error("nominal scale should shrink as size grows")
	}
	if got := NominalPerInst(SizeRef) * float64(FineInterval(SizeRef)); got != 10e6 {
		t.Errorf("fine interval maps to %v nominal, want 10M", got)
	}
}

func TestSizesOrdering(t *testing.T) {
	s, _ := ByName("swim")
	var prev uint64
	for _, size := range []Size{SizeTiny, SizeSmall, SizeRef} {
		p := s.MustProgram(size)
		m := emu.New(p, 0)
		n, err := m.RunToCompletion(1 << 30)
		if err != nil {
			t.Fatal(err)
		}
		if n <= prev {
			t.Errorf("size %v ran %d instructions, not more than %d", size, n, prev)
		}
		prev = n
	}
}

func TestSizeString(t *testing.T) {
	if SizeTiny.String() != "tiny" || SizeSmall.String() != "small" || SizeRef.String() != "ref" {
		t.Error("Size.String labels wrong")
	}
	if Size(9).String() == "" {
		t.Error("unknown size has empty label")
	}
}
