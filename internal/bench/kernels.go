// Package bench provides the synthetic SPEC2000-model benchmark
// suite. The real SPEC2000 binaries and reference inputs are the
// reproduction's data gate: each suite program is generated from a
// per-benchmark *phase script* that encodes the distributional facts
// the paper reports about its SPEC2000 counterpart (coarse phase
// count, position of the last coarse phase's first appearance, outer
// iteration structure, gcc's dominant iteration), over a library of
// kernels with distinct microarchitectural signatures (ALU-bound,
// ILP-rich, streaming, pointer-chasing, branchy, FP-latency-bound).
//
// Every kernel body is calibrated to one "work quantum" of roughly
// 1500*unit*mul instructions, so phase scripts control instruction
// proportions directly through iteration counts and epoch multipliers.
package bench

import (
	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

// Register conventions inside generated programs:
//
//	r1  outer iteration counter i (0..N-1)
//	r30 outer iteration limit N
//	r11 epoch trip multiplier (set by dispatch)
//	r2-r9, r13-r15, f1-f7 kernel scratch
const (
	regIter = isa.Reg(1)
	regN    = isa.Reg(30)
	regMul  = isa.Reg(11)
)

// gen wraps a program builder with suite conventions.
type gen struct {
	b *prog.Builder
	// unit scales kernel inner trip counts (size preset).
	unit int64
	// next free data byte address.
	dataCursor int64
}

func (g *gen) reserve(bytes int64) int64 {
	base := g.dataCursor
	g.dataCursor += bytes
	g.b.ReserveData(g.dataCursor)
	return base
}

// kernel generates one phase body. Bodies run with regMul holding the
// epoch multiplier and must leave regIter/regN/regMul intact.
type kernel struct {
	name string
	// init emits one-time setup before the outer loop (may be nil).
	init func(g *gen)
	// body emits the per-iteration work (~1500*unit*mul instructions).
	body func(g *gen)
}

// trips emits: rd = n*unit*regMul, for loop bounds.
func (g *gen) trips(rd isa.Reg, n int64) {
	g.b.Li(rd, n*g.unit)
	g.b.Mul(rd, rd, regMul)
}

// loop emits a counted loop with the trip count already in ctr.
func (g *gen) loop(name string, ctr isa.Reg, body func()) {
	b := g.b
	head := b.BeginLoop(name)
	done := b.AutoLabel("done_" + name)
	b.Beq(ctr, isa.RZero, done)
	body()
	b.Addi(ctr, ctr, -1)
	b.Bne(ctr, isa.RZero, head)
	b.EndLoop()
	b.Label(done)
}

// aluKernel: serial integer multiply/add dependence chain — moderate
// CPI bound by the 3-cycle multiplier latency. ~5 insts/trip.
func aluKernel() kernel {
	return kernel{
		name: "alu",
		body: func(g *gen) {
			b := g.b
			g.trips(2, 300)
			b.Ori(3, isa.RZero, 7)
			g.loop("alu", 2, func() {
				b.Mul(3, 3, 3)
				b.Addi(3, 3, 13)
				b.Xor(4, 4, 3)
			})
		},
	}
}

// ilpKernel: seven independent integer streams plus one short
// multiply chain — high but not extreme IPC. ~10 insts/trip.
func ilpKernel() kernel {
	return kernel{
		name: "ilp",
		body: func(g *gen) {
			b := g.b
			g.trips(2, 150)
			b.Ori(3, isa.RZero, 5)
			g.loop("ilp", 2, func() {
				b.Mul(3, 3, 3)
				b.Addi(3, 3, 1)
				b.Addi(5, 5, 3)
				b.Addi(6, 6, 4)
				b.Xori(7, 7, 21)
				b.Xori(8, 8, 17)
				b.Addi(9, 9, 5)
				b.Addi(13, 13, 6)
			})
		},
	}
}

// streamKernel: a true read-only stream — sequential FP loads over a
// monotonically advancing virtual cursor that never revisits a block,
// so every fourth load is a compulsory miss regardless of cache
// warmth. This warm-state invariance is what lets the scaled-down
// earliest-instance simulation points stay microarchitecturally
// representative (see DESIGN.md). The cursor persists across
// iterations in a reserved memory slot. ~5 insts/element.
func streamKernel() kernel {
	var cursorSlot int64
	return kernel{
		name: "stream",
		init: func(g *gen) {
			cursorSlot = g.reserve(8)
			b := g.b
			// Start the stream far above the low data region. Reads
			// of wrapped physical memory are harmless.
			b.Li(2, 1<<22)
			b.Li(3, cursorSlot)
			b.St(2, 3, 0)
		},
		body: func(g *gen) {
			b := g.b
			g.trips(2, 250) // elements this iteration
			b.Li(3, cursorSlot)
			b.Ld(5, 3, 0) // cursor
			g.loop("stream", 2, func() {
				b.Fld(isa.F(1), 5, 0)
				b.Fadd(isa.F(2), isa.F(2), isa.F(1))
				b.Fmul(isa.F(3), isa.F(1), isa.F(1))
				b.Addi(5, 5, 8)
			})
			b.Li(3, cursorSlot)
			b.St(5, 3, 0)
		},
	}
}

// chaseKernel: serialized pointer chase through a pre-built cyclic
// permutation — memory-latency bound, low IPC, poor locality.
// ~6 insts/step.
func chaseKernel(words int64) kernel {
	var base int64
	// Stride through the chase array; coprime with the power-of-two
	// word count so one cycle visits every slot.
	const stride = 97
	return kernel{
		name: "chase",
		init: func(g *gen) {
			base = g.reserve(words * 8)
			b := g.b
			// next[i] = (i + stride) mod words, stored at base + 8i.
			b.Li(2, 0) // i
			b.Li(3, words)
			g.loop("chaseinit", 3, func() {
				b.Addi(4, 2, stride)
				b.Li(5, words)
				b.Rem(4, 4, 5) // (i+stride) mod words
				b.Shli(5, 2, 3)
				b.Li(6, base)
				b.Add(5, 5, 6)
				b.St(4, 5, 0) // mem[base+8i] = next
				b.Addi(2, 2, 1)
			})
		},
		body: func(g *gen) {
			b := g.b
			g.trips(2, 250)
			b.Li(3, 0) // cursor index
			g.loop("chase", 2, func() {
				b.Shli(4, 3, 3)
				b.Li(5, base)
				b.Add(4, 4, 5)
				b.Ld(3, 4, 0) // cursor = next[cursor]: serialized
			})
		},
	}
}

// branchyKernel: xorshift PRNG driving data-dependent branches — high
// misprediction rate. ~15 insts/trip.
func branchyKernel() kernel {
	return kernel{
		name: "branchy",
		body: func(g *gen) {
			b := g.b
			g.trips(2, 100)
			b.Ori(3, isa.RZero, 88172645) // PRNG state (nonzero)
			g.loop("branchy", 2, func() {
				b.Shli(4, 3, 13)
				b.Xor(3, 3, 4)
				b.Shri(4, 3, 7)
				b.Xor(3, 3, 4)
				b.Shli(4, 3, 17)
				b.Xor(3, 3, 4)
				b.Andi(5, 3, 1)
				skip := b.AutoLabel("skip")
				b.Beq(5, isa.RZero, skip)
				b.Addi(6, 6, 1)
				b.Label(skip)
				b.Andi(5, 3, 2)
				skip2 := b.AutoLabel("skip")
				b.Beq(5, isa.RZero, skip2)
				b.Addi(7, 7, 1)
				b.Label(skip2)
			})
		},
	}
}

// fpKernel: floating-point divide/multiply dependence chain — bound by
// the 12-cycle FP divider. ~5 insts/trip.
func fpKernel() kernel {
	return kernel{
		name: "fp",
		body: func(g *gen) {
			b := g.b
			g.trips(2, 300)
			b.Ori(3, isa.RZero, 3)
			b.CvtIF(isa.F(1), 3)
			b.CvtIF(isa.F(2), 3)
			b.Fadd(isa.F(2), isa.F(2), isa.F(1)) // f2 = 6
			g.loop("fp", 2, func() {
				b.Fdiv(isa.F(3), isa.F(2), isa.F(1))
				b.Fmul(isa.F(4), isa.F(3), isa.F(3))
				b.Fadd(isa.F(5), isa.F(5), isa.F(4))
				b.Fsub(isa.F(5), isa.F(5), isa.F(3))
			})
		},
	}
}

// aluKernel2: a second integer-chain kernel with the same latency
// profile as aluKernel but distinct code — a different basic-block
// vector with similar performance, the way distinct phases within one
// SPEC benchmark tend to perform alike. ~5 insts/trip.
func aluKernel2() kernel {
	return kernel{
		name: "alu2",
		body: func(g *gen) {
			b := g.b
			g.trips(2, 300)
			b.Ori(3, isa.RZero, 11)
			g.loop("alu2", 2, func() {
				b.Mul(3, 3, 3)
				b.Xori(3, 3, 9)
				b.Sub(4, 4, 3)
			})
		},
	}
}

// fpKernel2: a second FP kernel matching fpKernel's latency profile
// with distinct code. ~6 insts/trip.
func fpKernel2() kernel {
	return kernel{
		name: "fp2",
		body: func(g *gen) {
			b := g.b
			g.trips(2, 250)
			b.Ori(3, isa.RZero, 7)
			b.CvtIF(isa.F(1), 3)
			b.CvtIF(isa.F(6), 3)
			g.loop("fp2", 2, func() {
				b.Fdiv(isa.F(7), isa.F(1), isa.F(1))
				b.Fadd(isa.F(6), isa.F(6), isa.F(7))
				b.Fsub(isa.F(6), isa.F(6), isa.F(1))
				b.Fmul(isa.F(7), isa.F(7), isa.F(7))
			})
		},
	}
}

// mixedKernel: loads, ALU and branches over a small L1-resident
// working set revisited every iteration — mostly L1 hits once warm.
// ~12 insts/trip.
func mixedKernel(words int64) kernel {
	var base int64
	return kernel{
		name: "mixed",
		init: func(g *gen) {
			base = g.reserve(words * 8)
		},
		body: func(g *gen) {
			b := g.b
			g.trips(2, 125)
			b.Li(3, base)
			b.Li(13, base+words*8)
			g.loop("mixed", 2, func() {
				b.Ld(4, 3, 0)
				b.Addi(4, 4, 1)
				b.St(4, 3, 0)
				b.Addi(3, 3, 64)
				skip := b.AutoLabel("wrap")
				b.Blt(3, 13, skip)
				b.Li(3, base)
				b.Label(skip)
				b.Mul(5, 5, 5)
				b.Addi(5, 5, 3)
				b.Mul(5, 5, 5)
			})
		},
	}
}

// conflictReuse emits the shared per-iteration L2-exercise section:
// every iteration touches a fresh virtual window of 64 blocks laid out
// at 4 KiB stride (one L1 way apart, so they conflict-thrash a few L1
// sets) for several rounds. Round one misses to memory; later rounds
// miss L1 but hit the L2 — warm-state-invariant L2 *hit* traffic,
// since the window is never revisited across iterations. The window
// cursor persists in cursorSlot.
func conflictReuse(g *gen, cursorSlot int64) {
	const (
		conflictBlocks = 64
		conflictStride = 4096 // one L1 way
		conflictRounds = 4
	)
	b := g.b
	b.Li(3, cursorSlot)
	b.Ld(14, 3, 0) // window base
	b.Li(2, conflictRounds)
	g.loop("conflrounds", 2, func() {
		b.Add(5, 14, isa.RZero)
		b.Li(4, conflictBlocks)
		g.loop("confl", 4, func() {
			b.Ld(6, 5, 0)
			b.Addi(5, 5, conflictStride)
		})
	})
	b.Li(4, conflictBlocks*conflictStride)
	b.Add(14, 14, 4)
	b.Li(3, cursorSlot)
	b.St(14, 3, 0)
}

// burstKernel: the lucas-style kernel — inside every iteration it
// alternates rapidly between an integer burst and an FP burst with
// burst lengths keyed to the iteration counter, so fine-grained
// intervals see violent signature changes while every coarse-grained
// iteration has the same aggregate mix. ~280 insts/pair.
func burstKernel() kernel {
	return kernel{
		name: "burst",
		body: func(g *gen) {
			b := g.b
			b.Li(2, 10) // burst pairs per iteration
			b.Mul(2, 2, regMul)
			g.loop("bursts", 2, func() {
				// Integer burst, length varying with the pair index —
				// fine-grained chaos, but the same aggregate mix in
				// every iteration so the coarse trajectory is smooth.
				// Burst lengths scale with the work unit so a burst
				// spans at least a fine-grained interval at every
				// suite scale.
				b.Andi(3, 2, 31)
				b.Addi(3, 3, 24)
				b.Li(13, g.unit)
				b.Mul(3, 3, 13)
				g.loop("iburst", 3, func() {
					b.Mul(4, 4, 4)
					b.Addi(4, 4, 7)
				})
				// FP burst.
				b.Andi(3, 2, 15)
				b.Addi(3, 3, 24)
				b.Li(13, g.unit)
				b.Mul(3, 3, 13)
				b.CvtIF(isa.F(1), 3)
				g.loop("fburst", 3, func() {
					b.Fadd(isa.F(2), isa.F(2), isa.F(1))
					b.Fmul(isa.F(3), isa.F(2), isa.F(1))
				})
			})
		},
	}
}
