// Package ckpt implements portable binary region checkpoints: the
// versioned, content-hash-integrity-checked serialization of the
// architectural state a sampled simulation needs to enter a selected
// point with zero fast-forward. A checkpoint set captures, per plan
// point, the live-in-scrubbed register files (the dataflow masks of
// internal/staticanalysis/dataflow are the storage schema — state
// outside them is provably unreadable), the touched-memory footprint
// (only pages the program wrote, via the emulator's dirty-page
// bitmap), the resume PC/position, and — at set level — the complete
// code image, so a set is a self-contained Nugget-style snippet: any
// machine can run detailed simulation of any point from it. See
// docs/CHECKPOINTS.md for the format specification.
package ckpt

import "errors"

// The package's structured error kinds. Every failure wraps exactly
// one of these sentinels, so callers can distinguish malformed bytes,
// a failed integrity hash, and a checkpoint set that is well-formed
// but belongs to a different (program, plan, warm policy) with
// errors.Is.
var (
	// ErrFormat reports structurally malformed checkpoint bytes: bad
	// magic, unsupported version, truncated or overlong payloads,
	// out-of-range counts.
	ErrFormat = errors.New("malformed checkpoint")

	// ErrIntegrity reports a content-hash mismatch: the bytes parse
	// but are not the bytes that were written (corruption/tampering).
	ErrIntegrity = errors.New("checkpoint integrity check failed")

	// ErrMismatch reports a checkpoint that is internally valid but
	// does not apply here: wrong program, wrong plan, wrong warm
	// policy, or state inconsistent with the target machine.
	ErrMismatch = errors.New("checkpoint does not match")
)
