package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"

	"mlpa/internal/prog"
)

// ProgramHash is the content hash of a guest program: SHA-256 over its
// name, data size and complete disassembly. It is the same key scheme
// the serve daemon caches results under (internal/serve delegates
// here), so checkpoint sets and cached estimates bind to the identical
// program identity.
func ProgramHash(p *prog.Program) string {
	h := sha256.New()
	h.Write([]byte("mlpa-program\x00"))
	h.Write([]byte(p.Name))
	h.Write([]byte{0})
	h.Write([]byte(strconv.FormatInt(p.DataSize, 10)))
	h.Write([]byte{0})
	h.Write([]byte(p.Disassemble()))
	return hex.EncodeToString(h.Sum(nil))
}
