package ckpt

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math"

	"mlpa/internal/emu"
	"mlpa/internal/prog"
	"mlpa/internal/sampling"
)

// stateMagic identifies one serialized point state. It is distinct
// from the emulator's whole-machine snapshot magic (MLPACKP1): that
// format is an internal full-memory image, this one is the portable
// scrubbed-minimal region checkpoint.
var stateMagic = [8]byte{'M', 'L', 'P', 'A', 'C', 'K', 'S', '1'}

// Version is the checkpoint wire-format version. Decoders reject
// anything else with ErrFormat.
const Version = 1

// maxPageIndex bounds page indices at decode time (2^40 pages of 4 KiB
// is far beyond any machine this emulator models); the restore path
// additionally checks the target machine's real memory size.
const maxPageIndex = int64(1) << 40

// Page is one touched 4 KiB data page: PageWords words at word offset
// Index*PageWords. Pages in a State are sorted by Index and each holds
// at least one non-zero word.
type Page struct {
	Index int64
	Words []uint64 // len == emu.PageWords
}

// State is the portable restore image of one simulation point: the
// architectural machine state at the point's warm start, scrubbed to
// the static live-in masks (registers outside LiveIn are stored as
// zero — liveness soundness makes them unreadable) and carrying only
// the touched-memory footprint (no pages at all when LiveIn.Mem says
// memory cannot be read from here on).
type State struct {
	Index  int    // plan point index
	Insts  uint64 // instruction position of the snapshot (the warm start)
	PC     int64
	Halted bool

	// LiveIn is the static live-in summary at PC: the storage schema.
	// Only state inside its masks is meaningful; Capture scrubs the
	// rest and Encode/Decode enforce the scrub.
	LiveIn sampling.LiveIn

	IntRegs [32]int64
	FPRegs  [32]float64

	Pages []Page
}

// Capture snapshots m as a portable point state. The machine must have
// dirty-page tracking enabled (emu.Machine.TrackDirtyPages) since
// before it first ran, so the touched footprint is known; li must be
// the static live-in summary at the machine's current PC.
func Capture(m *emu.Machine, index int, li sampling.LiveIn) (*State, error) {
	if !m.TracksDirtyPages() {
		return nil, fmt.Errorf("ckpt: capture of %s requires dirty-page tracking on the machine", m.Prog.Name)
	}
	if li.PC != m.PC {
		return nil, fmt.Errorf("%w: live-in recorded at pc %d, machine at pc %d", ErrMismatch, li.PC, m.PC)
	}
	s := &State{
		Index:   index,
		Insts:   m.Insts,
		PC:      m.PC,
		Halted:  m.Halted,
		LiveIn:  li,
		IntRegs: m.IntRegs,
		FPRegs:  m.FPRegs,
	}
	scrubState(s)
	if li.Mem {
		for _, pg := range m.DirtyPages() {
			words := make([]uint64, emu.PageWords)
			base := pg * emu.PageWords
			nonZero := false
			for k := range words {
				w := m.LoadWord((base + int64(k)) << 3)
				words[k] = w
				nonZero = nonZero || w != 0
			}
			// Dirty is a superset of non-zero; all-zero pages restore
			// for free from the cleared memory image.
			if nonZero {
				s.Pages = append(s.Pages, Page{Index: pg, Words: words})
			}
		}
	}
	return s, nil
}

// scrubState zeroes every register cell outside the live-in masks —
// the same rule as the pipeline's boundary scrub: integer registers
// from 1 (R0 is architecturally zero), all FP registers.
func scrubState(s *State) {
	for i := 1; i < len(s.IntRegs); i++ {
		if s.LiveIn.Int&(1<<uint(i)) == 0 {
			s.IntRegs[i] = 0
		}
	}
	for i := range s.FPRegs {
		if s.LiveIn.FP&(1<<uint(i)) == 0 {
			s.FPRegs[i] = 0
		}
	}
}

// checkScrubbed verifies the stored register files honour the format's
// scrub invariant.
func checkScrubbed(s *State) error {
	if s.IntRegs[0] != 0 {
		return fmt.Errorf("%w: R0 holds %d, must be zero", ErrFormat, s.IntRegs[0])
	}
	for i := 1; i < len(s.IntRegs); i++ {
		if s.LiveIn.Int&(1<<uint(i)) == 0 && s.IntRegs[i] != 0 {
			return fmt.Errorf("%w: dead integer register %d not scrubbed", ErrFormat, i)
		}
	}
	for i := range s.FPRegs {
		if s.LiveIn.FP&(1<<uint(i)) == 0 && s.FPRegs[i] != 0 {
			return fmt.Errorf("%w: dead FP register %d not scrubbed", ErrFormat, i)
		}
	}
	return nil
}

// Encode serializes the state: magic, version, varint-encoded payload,
// and a SHA-256 trailer over everything preceding it.
func (s *State) Encode() ([]byte, error) {
	if err := checkScrubbed(s); err != nil {
		return nil, err
	}
	w := &wbuf{b: make([]byte, 0, 256+len(s.Pages)*(emu.PageWords+8))}
	w.b = append(w.b, stateMagic[:]...)
	w.u(Version)
	w.u(uint64(s.Index))
	w.u(s.Insts)
	w.i(s.PC)
	w.u(b2u(s.Halted))
	w.i(s.LiveIn.PC)
	w.u(uint64(s.LiveIn.Int))
	w.u(uint64(s.LiveIn.FP))
	w.u(b2u(s.LiveIn.Mem))
	for _, r := range s.IntRegs {
		w.i(r)
	}
	for _, f := range s.FPRegs {
		w.u(math.Float64bits(f))
	}
	w.u(uint64(len(s.Pages)))
	prev := int64(-1)
	for _, pg := range s.Pages {
		if pg.Index <= prev || pg.Index >= maxPageIndex {
			return nil, fmt.Errorf("%w: page index %d not ascending (previous %d)", ErrFormat, pg.Index, prev)
		}
		if len(pg.Words) != emu.PageWords {
			return nil, fmt.Errorf("%w: page %d holds %d words, want %d", ErrFormat, pg.Index, len(pg.Words), emu.PageWords)
		}
		// Delta-encoded ascending indices: first absolute, then gaps.
		if prev < 0 {
			w.u(uint64(pg.Index))
		} else {
			w.u(uint64(pg.Index - prev - 1))
		}
		prev = pg.Index
		encodePageWords(w, pg.Words)
	}
	sum := sha256.Sum256(w.b)
	return append(w.b, sum[:]...), nil
}

// encodePageWords writes one page as alternating (zero-run, literal-
// run, literal values) groups covering exactly PageWords words.
func encodePageWords(w *wbuf, words []uint64) {
	pos := 0
	for pos < len(words) {
		z := pos
		for z < len(words) && words[z] == 0 {
			z++
		}
		l := z
		for l < len(words) && words[l] != 0 {
			l++
		}
		w.u(uint64(z - pos))
		w.u(uint64(l - z))
		for _, v := range words[z:l] {
			w.u(v)
		}
		pos = l
	}
}

// Decode parses and verifies one serialized state. It never panics on
// adversarial input: structural damage returns ErrFormat, a failed
// hash returns ErrIntegrity (FuzzCkptRoundTrip enforces both).
func Decode(data []byte) (*State, error) {
	if len(data) < len(stateMagic)+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes is shorter than magic plus hash trailer", ErrFormat, len(data))
	}
	if !bytes.Equal(data[:len(stateMagic)], stateMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, data[:len(stateMagic)])
	}
	payload, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], trailer) {
		return nil, fmt.Errorf("%w: SHA-256 trailer does not match content", ErrIntegrity)
	}
	r := &rbuf{b: payload, off: len(stateMagic)}
	if v := r.u(); r.err == nil && v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d (decoder speaks %d)", ErrFormat, v, Version)
	}
	s := &State{}
	idx := r.u()
	if r.err == nil && idx > math.MaxInt32 {
		return nil, fmt.Errorf("%w: point index %d out of range", ErrFormat, idx)
	}
	s.Index = int(idx)
	s.Insts = r.u()
	s.PC = r.i()
	s.Halted = r.u() != 0
	s.LiveIn.PC = r.i()
	for _, dst := range []*uint32{&s.LiveIn.Int, &s.LiveIn.FP} {
		v := r.u()
		if r.err == nil && v > math.MaxUint32 {
			return nil, fmt.Errorf("%w: register mask %#x wider than 32 bits", ErrFormat, v)
		}
		*dst = uint32(v)
	}
	s.LiveIn.Mem = r.u() != 0
	for i := range s.IntRegs {
		s.IntRegs[i] = r.i()
	}
	for i := range s.FPRegs {
		s.FPRegs[i] = math.Float64frombits(r.u())
	}
	npages := r.u()
	if r.err != nil {
		return nil, r.err
	}
	// Each page costs at least 3 bytes (index + one run group), so an
	// adversarial count cannot force a large allocation.
	if npages > uint64(r.rest())/3 {
		return nil, fmt.Errorf("%w: page count %d exceeds remaining payload", ErrFormat, npages)
	}
	if npages > 0 {
		s.Pages = make([]Page, 0, npages)
	}
	prev := int64(-1)
	for pi := uint64(0); pi < npages; pi++ {
		delta := r.u()
		var idx int64
		if prev < 0 {
			idx = int64(delta)
		} else {
			idx = prev + 1 + int64(delta)
		}
		if r.err == nil && (idx < 0 || idx >= maxPageIndex) {
			return nil, fmt.Errorf("%w: page index %d out of range", ErrFormat, idx)
		}
		words, err := decodePageWords(r)
		if err != nil {
			return nil, err
		}
		s.Pages = append(s.Pages, Page{Index: idx, Words: words})
		prev = idx
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.rest() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after payload", ErrFormat, r.rest())
	}
	if err := checkScrubbed(s); err != nil {
		return nil, err
	}
	return s, nil
}

func decodePageWords(r *rbuf) ([]uint64, error) {
	words := make([]uint64, emu.PageWords)
	pos := 0
	for pos < len(words) {
		z := r.u()
		l := r.u()
		if r.err != nil {
			return nil, r.err
		}
		if z+l == 0 || z+l > uint64(len(words)-pos) {
			return nil, fmt.Errorf("%w: page run %d+%d overflows page at word %d", ErrFormat, z, l, pos)
		}
		pos += int(z)
		for k := uint64(0); k < l; k++ {
			words[pos] = r.u()
			pos++
		}
	}
	return words, r.err
}

// NewMachine materializes a fresh machine for p positioned at this
// state — the zero-fast-forward entry into the point's warm window.
// The machine comes with dirty-page tracking enabled: its memory is
// all-zero at creation (empty seed set), so this Reset and every later
// RestoreInto of another state cost O(touched pages), not O(memory).
func (s *State) NewMachine(p *prog.Program) (*emu.Machine, error) {
	m := emu.New(p, 0)
	m.TrackDirtyPages()
	if err := s.RestoreInto(m); err != nil {
		return nil, err
	}
	return m, nil
}

// RestoreInto rewinds m and applies the state. The machine must belong
// to a program the state fits (PC in range, pages within memory);
// violations return ErrMismatch.
func (s *State) RestoreInto(m *emu.Machine) error {
	if s.PC < 0 || s.PC > int64(len(m.Prog.Code)) {
		return fmt.Errorf("%w: checkpoint PC %d out of range for %s (%d instructions)",
			ErrMismatch, s.PC, m.Prog.Name, len(m.Prog.Code))
	}
	maxPage := m.MemWords() / emu.PageWords
	for _, pg := range s.Pages {
		if pg.Index < 0 || pg.Index >= maxPage {
			return fmt.Errorf("%w: page %d exceeds machine memory (%d pages)", ErrMismatch, pg.Index, maxPage)
		}
	}
	m.Reset()
	m.IntRegs = s.IntRegs
	m.FPRegs = s.FPRegs
	m.PC = s.PC
	m.Insts = s.Insts
	m.Halted = s.Halted
	for _, pg := range s.Pages {
		base := pg.Index * emu.PageWords
		for k, w := range pg.Words {
			if w != 0 {
				m.StoreWord((base+int64(k))<<3, w)
			}
		}
	}
	return nil
}

// EncodedBytes reports the approximate encoded size (for cache
// accounting without re-encoding).
func (s *State) EncodedBytes() int {
	n := 256
	for _, pg := range s.Pages {
		nz := 0
		for _, w := range pg.Words {
			if w != 0 {
				nz++
			}
		}
		n += 8*nz + 16
	}
	return n
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
