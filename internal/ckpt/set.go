package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mlpa/internal/prog"
	"mlpa/internal/sampling"
)

// Policy is the warm-policy fingerprint a checkpoint set is bound to.
// Point states are captured at each point's warm start, which is a
// pure function of (plan, policy) — replaying under a different policy
// would need state at different positions, so Match rejects it.
type Policy struct {
	Warmup       uint64 `json:"warmup"`
	DetailLeadIn uint64 `json:"detail_lead_in"`
	RunAhead     uint64 `json:"run_ahead"`
}

// Set is a complete checkpoint set for one (program, plan, policy):
// one State per plan point plus everything needed to re-run the plan
// with zero fast-forward on a machine that has never seen the program
// — the code image travels inside the set (Nugget-style self-contained
// snippets).
type Set struct {
	ProgramName string
	ProgramHash string
	// Assembly is the complete disassembled code image; Load
	// reassembles it, so a set is executable from the files alone.
	Assembly string
	DataSize int64
	Plan     *sampling.Plan
	Policy   Policy
	States   []*State

	// Program is the in-memory guest the set was built from (or
	// reassembled by Load). It is identity, not content: ProgramHash
	// is what Match trusts.
	Program *prog.Program
}

// SetFile and point file naming inside a set directory. The layout is
// deterministic: a manifest plus one binary state file per point.
const (
	ManifestFile = "set.json"
	pointFileFmt = "point-%04d.ckpt"
)

// manifest is the JSON structure of ManifestFile. Its own integrity
// hash is computed over the canonical encoding with ManifestSHA256
// set to the empty string.
type manifest struct {
	Format         string       `json:"format"`
	Version        int          `json:"version"`
	ProgramName    string       `json:"program_name"`
	ProgramHash    string       `json:"program_hash"`
	DataSize       int64        `json:"data_size"`
	Assembly       string       `json:"assembly"`
	Plan           planManifest `json:"plan"`
	Policy         Policy       `json:"policy"`
	Points         []pointEntry `json:"points"`
	ManifestSHA256 string       `json:"manifest_sha256"`
}

type planManifest struct {
	Benchmark  string          `json:"benchmark"`
	Method     string          `json:"method"`
	TotalInsts uint64          `json:"total_insts"`
	Points     []pointManifest `json:"points"`
}

type pointManifest struct {
	Start    uint64  `json:"start"`
	End      uint64  `json:"end"`
	Weight   float64 `json:"weight"`
	Level    int     `json:"level"`
	Interval int     `json:"interval"`
	Parent   int     `json:"parent"`
}

type pointEntry struct {
	File   string `json:"file"`
	Bytes  int    `json:"bytes"`
	SHA256 string `json:"sha256"`
	Insts  uint64 `json:"insts"` // snapshot position (the warm start)
}

const manifestFormat = "mlpa-ckpt-set"

// Match verifies the set applies to (p, plan, pol): same program
// content hash, structurally identical plan, identical warm policy,
// and one state per point. Violations wrap ErrMismatch.
func (s *Set) Match(p *prog.Program, plan *sampling.Plan, pol Policy) error {
	if h := ProgramHash(p); h != s.ProgramHash {
		return fmt.Errorf("%w: set built for program %s (%.12s…), executing %s (%.12s…)",
			ErrMismatch, s.ProgramName, s.ProgramHash, p.Name, h)
	}
	if plan.Benchmark != s.Plan.Benchmark || plan.Method != s.Plan.Method ||
		plan.TotalInsts != s.Plan.TotalInsts || len(plan.Points) != len(s.Plan.Points) {
		return fmt.Errorf("%w: set built for plan %s/%s (%d points, %d insts), executing %s/%s (%d points, %d insts)",
			ErrMismatch, s.Plan.Benchmark, s.Plan.Method, len(s.Plan.Points), s.Plan.TotalInsts,
			plan.Benchmark, plan.Method, len(plan.Points), plan.TotalInsts)
	}
	for i, pt := range plan.Points {
		if pt != s.Plan.Points[i] {
			return fmt.Errorf("%w: plan point %d differs: set has [%d,%d) w=%v, plan has [%d,%d) w=%v",
				ErrMismatch, i, s.Plan.Points[i].Start, s.Plan.Points[i].End, s.Plan.Points[i].Weight,
				pt.Start, pt.End, pt.Weight)
		}
	}
	if pol != s.Policy {
		return fmt.Errorf("%w: set captured under policy %+v, executing under %+v", ErrMismatch, s.Policy, pol)
	}
	if len(s.States) != len(plan.Points) {
		return fmt.Errorf("%w: %d states for %d points", ErrMismatch, len(s.States), len(plan.Points))
	}
	for i, st := range s.States {
		if st.Index != i {
			return fmt.Errorf("%w: state %d carries index %d", ErrMismatch, i, st.Index)
		}
	}
	return nil
}

// Save writes the set's deterministic on-disk layout under dir: one
// binary state file per point plus the integrity-hashed manifest.
func (s *Set) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: save: %w", err)
	}
	man := manifest{
		Format:      manifestFormat,
		Version:     Version,
		ProgramName: s.ProgramName,
		ProgramHash: s.ProgramHash,
		DataSize:    s.DataSize,
		Assembly:    s.Assembly,
		Policy:      s.Policy,
		Plan: planManifest{
			Benchmark:  s.Plan.Benchmark,
			Method:     s.Plan.Method,
			TotalInsts: s.Plan.TotalInsts,
		},
	}
	for _, pt := range s.Plan.Points {
		man.Plan.Points = append(man.Plan.Points, pointManifest{
			Start: pt.Start, End: pt.End, Weight: pt.Weight,
			Level: pt.Level, Interval: pt.Interval, Parent: pt.Parent,
		})
	}
	for i, st := range s.States {
		data, err := st.Encode()
		if err != nil {
			return fmt.Errorf("ckpt: save state %d: %w", i, err)
		}
		name := fmt.Sprintf(pointFileFmt, i)
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return fmt.Errorf("ckpt: save: %w", err)
		}
		sum := sha256.Sum256(data)
		man.Points = append(man.Points, pointEntry{
			File: name, Bytes: len(data), SHA256: hex.EncodeToString(sum[:]), Insts: st.Insts,
		})
	}
	body, err := sealManifest(&man)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), body, 0o644); err != nil {
		return fmt.Errorf("ckpt: save: %w", err)
	}
	return nil
}

// sealManifest computes the manifest's self-hash and returns the final
// encoding: the hash field is hashed as empty, then filled in.
func sealManifest(man *manifest) ([]byte, error) {
	man.ManifestSHA256 = ""
	canon, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("ckpt: manifest: %w", err)
	}
	sum := sha256.Sum256(canon)
	man.ManifestSHA256 = hex.EncodeToString(sum[:])
	body, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("ckpt: manifest: %w", err)
	}
	return append(body, '\n'), nil
}

// Load reads, integrity-checks and reassembles a checkpoint set saved
// by Save. Every layer is verified: the manifest's self-hash, each
// state file's manifest-recorded hash and its embedded trailer, the
// reassembled program's content hash, and the plan's structural
// invariants. The returned set carries the reassembled Program.
func Load(dir string) (*Set, error) {
	body, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("ckpt: load: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(body, &man); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrFormat, err)
	}
	if man.Format != manifestFormat || man.Version != Version {
		return nil, fmt.Errorf("%w: manifest format %q version %d (want %q version %d)",
			ErrFormat, man.Format, man.Version, manifestFormat, Version)
	}
	want := man.ManifestSHA256
	man.ManifestSHA256 = ""
	canon, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("ckpt: manifest: %w", err)
	}
	if sum := sha256.Sum256(canon); hex.EncodeToString(sum[:]) != want {
		return nil, fmt.Errorf("%w: manifest self-hash does not match content", ErrIntegrity)
	}
	man.ManifestSHA256 = want

	p, err := prog.Assemble(man.ProgramName, man.Assembly)
	if err != nil {
		return nil, fmt.Errorf("%w: embedded assembly: %v", ErrFormat, err)
	}
	p.DataSize = man.DataSize
	if h := ProgramHash(p); h != man.ProgramHash {
		return nil, fmt.Errorf("%w: embedded assembly hashes to %.12s…, manifest records %.12s…",
			ErrIntegrity, h, man.ProgramHash)
	}

	plan := &sampling.Plan{
		Benchmark:  man.Plan.Benchmark,
		Method:     man.Plan.Method,
		TotalInsts: man.Plan.TotalInsts,
	}
	for _, pt := range man.Plan.Points {
		plan.Points = append(plan.Points, sampling.Point{
			Start: pt.Start, End: pt.End, Weight: pt.Weight,
			Level: pt.Level, Interval: pt.Interval, Parent: pt.Parent,
		})
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("%w: manifest plan: %v", ErrFormat, err)
	}
	if len(man.Points) != len(plan.Points) {
		return nil, fmt.Errorf("%w: manifest lists %d state files for %d plan points",
			ErrFormat, len(man.Points), len(plan.Points))
	}

	set := &Set{
		ProgramName: man.ProgramName,
		ProgramHash: man.ProgramHash,
		Assembly:    man.Assembly,
		DataSize:    man.DataSize,
		Plan:        plan,
		Policy:      man.Policy,
		Program:     p,
	}
	for i, ent := range man.Points {
		data, err := os.ReadFile(filepath.Join(dir, ent.File))
		if err != nil {
			return nil, fmt.Errorf("ckpt: load state %d: %w", i, err)
		}
		if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != ent.SHA256 {
			return nil, fmt.Errorf("%w: state file %s does not match its manifest hash", ErrIntegrity, ent.File)
		}
		st, err := Decode(data)
		if err != nil {
			return nil, fmt.Errorf("ckpt: load state %d (%s): %w", i, ent.File, err)
		}
		if st.Index != i || st.Insts != ent.Insts {
			return nil, fmt.Errorf("%w: state file %s carries index %d at position %d, manifest expects index %d at %d",
				ErrMismatch, ent.File, st.Index, st.Insts, i, ent.Insts)
		}
		set.States = append(set.States, st)
	}
	return set, nil
}

// Verify checks a saved set end to end without keeping it: it is Load
// with the result discarded.
func Verify(dir string) error {
	_, err := Load(dir)
	return err
}

// ApproxBytes estimates the set's in-memory/encoded footprint for
// cache accounting.
func (s *Set) ApproxBytes() int {
	n := len(s.Assembly) + 1024
	for _, st := range s.States {
		n += st.EncodedBytes()
	}
	return n
}
