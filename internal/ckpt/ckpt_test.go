package ckpt_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mlpa/internal/ckpt"
	"mlpa/internal/emu"
	"mlpa/internal/prog"
	"mlpa/internal/sampling"
	"mlpa/internal/staticanalysis/dataflow"
)

// captureAt runs a fresh tracking machine for p to position insts and
// captures the state there.
func captureAt(t *testing.T, p *prog.Program, insts uint64, index int) (*ckpt.State, *emu.Machine) {
	t.Helper()
	m := emu.New(p, 0)
	m.TrackDirtyPages()
	if _, err := m.Run(insts); err != nil {
		t.Fatal(err)
	}
	li, err := liveInAt(p, m.PC)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ckpt.Capture(m, index, li)
	if err != nil {
		t.Fatal(err)
	}
	return st, m
}

func liveInAt(p *prog.Program, pc int64) (sampling.LiveIn, error) {
	live, mem, err := dataflow.For(p).LiveInAt(pc)
	if err != nil {
		return sampling.LiveIn{}, err
	}
	ints, fps := live.Split()
	return sampling.LiveIn{PC: pc, Int: ints, FP: fps, Mem: mem}, nil
}

// TestStateEncodeDecodeRoundTrip: decode∘encode is the identity on
// captured states, for every example program at several positions.
func TestStateEncodeDecodeRoundTrip(t *testing.T) {
	for _, p := range prog.Examples() {
		for _, pos := range []uint64{0, 1, 1000, 37_501} {
			st, _ := captureAt(t, p, pos, 3)
			data, err := st.Encode()
			if err != nil {
				t.Fatalf("%s@%d: encode: %v", p.Name, pos, err)
			}
			back, err := ckpt.Decode(data)
			if err != nil {
				t.Fatalf("%s@%d: decode: %v", p.Name, pos, err)
			}
			if !reflect.DeepEqual(st, back) {
				t.Fatalf("%s@%d: decode(encode(s)) != s", p.Name, pos)
			}
		}
	}
}

// TestRestoreReplaysIdentically: a machine restored from a checkpoint
// must execute exactly like the machine it was captured from —
// identical PC/instruction trajectory, memory image and block counts —
// even though its statically-dead registers were scrubbed.
func TestRestoreReplaysIdentically(t *testing.T) {
	for _, p := range prog.Examples() {
		t.Run(p.Name, func(t *testing.T) {
			st, orig := captureAt(t, p, 20_000, 0)
			restored, err := st.NewMachine(p)
			if err != nil {
				t.Fatal(err)
			}
			if restored.PC != orig.PC || restored.Insts != orig.Insts {
				t.Fatalf("restored at pc=%d insts=%d, captured at pc=%d insts=%d",
					restored.PC, restored.Insts, orig.PC, orig.Insts)
			}
			ref := orig.Clone()
			ref.ResetBlockCounts()
			const forward = 30_000
			if _, err := ref.Run(forward); err != nil && !ref.Halted {
				t.Fatal(err)
			}
			if _, err := restored.Run(forward); err != nil && !restored.Halted {
				t.Fatal(err)
			}
			if restored.PC != ref.PC || restored.Insts != ref.Insts || restored.Halted != ref.Halted {
				t.Fatalf("replay diverged: restored pc=%d insts=%d halted=%v, reference pc=%d insts=%d halted=%v",
					restored.PC, restored.Insts, restored.Halted, ref.PC, ref.Insts, ref.Halted)
			}
			if !reflect.DeepEqual(restored.BlockCounts, ref.BlockCounts) {
				t.Fatal("replay diverged: block counts differ")
			}
			for w := int64(0); w < ref.MemWords(); w++ {
				if restored.LoadWord(w<<3) != ref.LoadWord(w<<3) {
					t.Fatalf("replay diverged: memory word %d differs", w)
				}
			}
		})
	}
}

// TestDecodeRejectsCorruption: flipping any byte of a valid encoding
// must fail decoding with a structured error — ErrIntegrity for
// payload damage, ErrFormat for structural damage — and truncations
// must fail too. No corruption may decode successfully.
func TestDecodeRejectsCorruption(t *testing.T) {
	st, _ := captureAt(t, prog.Examples()[0], 10_000, 0)
	data, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		_, err := ckpt.Decode(bad)
		if err == nil {
			t.Fatalf("byte %d: corruption decoded successfully", i)
		}
		if !errors.Is(err, ckpt.ErrIntegrity) && !errors.Is(err, ckpt.ErrFormat) {
			t.Fatalf("byte %d: unstructured error %v", i, err)
		}
	}
	for _, n := range []int{0, 1, 7, 8, 9, len(data) / 2, len(data) - 1} {
		if _, err := ckpt.Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
}

// TestEncodeRejectsUnscrubbedState: the format's invariant is that
// dead registers are zero; Encode refuses to produce a violating blob
// and Decode refuses to accept one.
func TestEncodeRejectsUnscrubbedState(t *testing.T) {
	st, _ := captureAt(t, prog.Examples()[0], 5_000, 0)
	for i := 1; i < 32; i++ {
		if st.LiveIn.Int&(1<<uint(i)) == 0 {
			st.IntRegs[i] = 99
			break
		}
	}
	if _, err := st.Encode(); !errors.Is(err, ckpt.ErrFormat) {
		t.Fatalf("encode of unscrubbed state: %v, want ErrFormat", err)
	}
}

// testSet builds a small but real set: two points on an example
// program, captured at their warm starts.
func testSet(t *testing.T, p *prog.Program) *ckpt.Set {
	t.Helper()
	plan := &sampling.Plan{
		Benchmark:  p.Name,
		Method:     "test",
		TotalInsts: 60_000,
		Points: []sampling.Point{
			{Start: 10_000, End: 15_000, Weight: 0.5, Level: 1, Parent: -1},
			{Start: 40_000, End: 45_000, Weight: 0.5, Level: 1, Parent: -1},
		},
	}
	set := &ckpt.Set{
		ProgramName: p.Name,
		ProgramHash: ckpt.ProgramHash(p),
		Assembly:    p.Disassemble(),
		DataSize:    p.DataSize,
		Plan:        plan,
		Policy:      ckpt.Policy{Warmup: 4096, DetailLeadIn: 512, RunAhead: 128},
		Program:     p,
	}
	m := emu.New(p, 0)
	m.TrackDirtyPages()
	for i, pt := range plan.Points {
		warmStart := pt.Start - 4096 - 512
		if _, err := m.Run(warmStart - m.Insts); err != nil {
			t.Fatal(err)
		}
		li, err := liveInAt(p, m.PC)
		if err != nil {
			t.Fatal(err)
		}
		st, err := ckpt.Capture(m, i, li)
		if err != nil {
			t.Fatal(err)
		}
		set.States = append(set.States, st)
	}
	return set
}

// TestSetSaveLoadRoundTrip: Save → Load reproduces the set (program
// reassembled from the embedded code image, states bit-equal) and
// Verify passes.
func TestSetSaveLoadRoundTrip(t *testing.T) {
	p := prog.Examples()[0]
	set := testSet(t, p)
	dir := t.TempDir()
	if err := set.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Verify(dir); err != nil {
		t.Fatal(err)
	}
	back, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.ProgramHash != set.ProgramHash || back.DataSize != set.DataSize {
		t.Fatal("program identity did not round-trip")
	}
	if !reflect.DeepEqual(back.Plan, set.Plan) || back.Policy != set.Policy {
		t.Fatal("plan or policy did not round-trip")
	}
	if !reflect.DeepEqual(back.States, set.States) {
		t.Fatal("states did not round-trip")
	}
	if back.Program == nil || ckpt.ProgramHash(back.Program) != set.ProgramHash {
		t.Fatal("reassembled program does not hash to the set's program hash")
	}
	if err := back.Match(p, set.Plan, set.Policy); err != nil {
		t.Fatalf("loaded set does not match its own inputs: %v", err)
	}
}

// TestSetLoadRejectsTampering: one flipped byte anywhere in the layout
// — a state file or the manifest — must be rejected with a structured
// error.
func TestSetLoadRejectsTampering(t *testing.T) {
	p := prog.Examples()[0]
	set := testSet(t, p)
	dir := t.TempDir()
	if err := set.Save(dir); err != nil {
		t.Fatal(err)
	}
	corrupt := func(t *testing.T, name string, flip int) {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		bad := append([]byte(nil), data...)
		bad[flip%len(bad)] ^= 0x01
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.WriteFile(path, data, 0o644) })
		err = ckpt.Verify(dir)
		if err == nil {
			t.Fatalf("tampered %s verified successfully", name)
		}
		if !errors.Is(err, ckpt.ErrIntegrity) && !errors.Is(err, ckpt.ErrFormat) && !errors.Is(err, ckpt.ErrMismatch) {
			t.Fatalf("tampered %s: unstructured error %v", name, err)
		}
	}
	t.Run("state-file", func(t *testing.T) { corrupt(t, "point-0001.ckpt", 100) })
	t.Run("manifest", func(t *testing.T) { corrupt(t, ckpt.ManifestFile, 200) })
	t.Run("truncated-state", func(t *testing.T) {
		path := filepath.Join(dir, "point-0000.ckpt")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.WriteFile(path, data, 0o644) })
		if err := ckpt.Verify(dir); err == nil {
			t.Fatal("truncated state file verified successfully")
		}
	})
}

// TestSetMatchRejectsMismatches: wrong policy, wrong plan and wrong
// program all fail Match with ErrMismatch.
func TestSetMatchRejectsMismatches(t *testing.T) {
	examples := prog.Examples()
	p := examples[0]
	set := testSet(t, p)
	if err := set.Match(p, set.Plan, ckpt.Policy{Warmup: 1}); !errors.Is(err, ckpt.ErrMismatch) {
		t.Fatalf("wrong policy: %v, want ErrMismatch", err)
	}
	otherPlan := *set.Plan
	otherPlan.Points = append([]sampling.Point(nil), set.Plan.Points...)
	otherPlan.Points[1].Weight = 0.25
	if err := set.Match(p, &otherPlan, set.Policy); !errors.Is(err, ckpt.ErrMismatch) {
		t.Fatalf("wrong plan: %v, want ErrMismatch", err)
	}
	if err := set.Match(examples[1], set.Plan, set.Policy); !errors.Is(err, ckpt.ErrMismatch) {
		t.Fatalf("wrong program: %v, want ErrMismatch", err)
	}
}
