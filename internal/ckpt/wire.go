package ckpt

import (
	"encoding/binary"
	"fmt"
)

// The wire layer: LEB128 varints (encoding/binary's varint codec) over
// a flat byte slice. Unsigned values use Uvarint, signed values zigzag
// via Varint, floats travel as their IEEE-754 bit patterns. The reader
// is sticky-error: the first malformed read poisons it and every later
// read returns zero, so decode loops stay linear and check once.

type wbuf struct{ b []byte }

func (w *wbuf) u(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *wbuf) i(v int64)  { w.b = binary.AppendVarint(w.b, v) }

type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrFormat, what, r.off)
	}
}

func (r *rbuf) u() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated or overlong varint")
		return 0
	}
	r.off += n
	return v
}

func (r *rbuf) i() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated or overlong varint")
		return 0
	}
	r.off += n
	return v
}

// rest returns how many bytes remain unread.
func (r *rbuf) rest() int { return len(r.b) - r.off }
