package ckpt_test

import (
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"mlpa/internal/ckpt"
	"mlpa/internal/emu"
	"mlpa/internal/prog"
	"mlpa/internal/sampling"
)

// stateFromSeed deterministically builds a scrub-consistent State from
// fuzz bytes: masks and register values are drawn from the input, dead
// registers stay zero, pages get ascending indices and seeded words.
func stateFromSeed(seed []byte) *ckpt.State {
	next := func() uint64 {
		if len(seed) == 0 {
			return 0
		}
		n := 8
		if len(seed) < n {
			n = len(seed)
		}
		var buf [8]byte
		copy(buf[:], seed[:n])
		seed = seed[n:]
		return binary.LittleEndian.Uint64(buf[:])
	}
	s := &ckpt.State{
		Index:  int(next() % 10_000),
		Insts:  next(),
		PC:     int64(next() % (1 << 30)),
		Halted: next()&1 != 0,
	}
	s.LiveIn = sampling.LiveIn{
		PC:  s.PC,
		Int: uint32(next()),
		FP:  uint32(next()),
		Mem: next()&1 != 0,
	}
	for i := 1; i < 32; i++ {
		if s.LiveIn.Int&(1<<uint(i)) != 0 {
			s.IntRegs[i] = int64(next())
		}
	}
	for i := 0; i < 32; i++ {
		if s.LiveIn.FP&(1<<uint(i)) != 0 {
			// Any bit pattern must round-trip, including NaNs and ±0;
			// travel through the same bits the wire uses.
			s.FPRegs[i] = math.Float64frombits(next())
		}
	}
	npages := int(next() % 4)
	idx := int64(next() % 64)
	for pi := 0; pi < npages; pi++ {
		pg := ckpt.Page{Index: idx, Words: make([]uint64, emu.PageWords)}
		// Guarantee at least one non-zero word so the page is canonical.
		pg.Words[next()%emu.PageWords] = next() | 1
		for k := 0; k < 8; k++ {
			pg.Words[next()%emu.PageWords] = next()
		}
		s.Pages = append(s.Pages, pg)
		idx += 1 + int64(next()%32)
	}
	return s
}

// statesEqual is bit-accurate state equality: FP registers compare by
// bit pattern, because the wire format round-trips any pattern —
// including NaNs, which compare unequal to themselves under == (and
// so under reflect.DeepEqual).
func statesEqual(a, b *ckpt.State) bool {
	if a.Index != b.Index || a.Insts != b.Insts || a.PC != b.PC ||
		a.Halted != b.Halted || a.LiveIn != b.LiveIn || a.IntRegs != b.IntRegs {
		return false
	}
	for i := range a.FPRegs {
		if math.Float64bits(a.FPRegs[i]) != math.Float64bits(b.FPRegs[i]) {
			return false
		}
	}
	return reflect.DeepEqual(a.Pages, b.Pages)
}

// FuzzCkptRoundTrip proves two properties on arbitrary input bytes:
// decode∘encode is the identity on every generated valid state, and
// Decode never panics (and never silently accepts) adversarial bytes —
// any successful decode must itself re-encode and re-decode to an
// equal state.
func FuzzCkptRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("MLPACKS1 not really a checkpoint"))
	for _, p := range prog.Examples()[:2] {
		m := emu.New(p, 0)
		m.TrackDirtyPages()
		if _, err := m.Run(5_000); err != nil {
			f.Fatal(err)
		}
		st, err := ckpt.Capture(m, 0, sampling.LiveIn{PC: m.PC, Int: ^uint32(0), FP: ^uint32(0), Mem: true})
		if err != nil {
			f.Fatal(err)
		}
		if data, err := st.Encode(); err == nil {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: adversarial bytes never panic; accepted bytes
		// describe a state that survives a fresh round trip.
		if s, err := ckpt.Decode(data); err == nil {
			enc, err := s.Encode()
			if err != nil {
				t.Fatalf("decoded state does not re-encode: %v", err)
			}
			back, err := ckpt.Decode(enc)
			if err != nil {
				t.Fatalf("re-encoded state does not decode: %v", err)
			}
			if !statesEqual(s, back) {
				t.Fatal("re-encoded state decodes differently")
			}
		}
		// Property 2: decode∘encode identity on a generated state.
		s := stateFromSeed(data)
		enc, err := s.Encode()
		if err != nil {
			t.Fatalf("generated state does not encode: %v", err)
		}
		back, err := ckpt.Decode(enc)
		if err != nil {
			t.Fatalf("generated state does not decode: %v", err)
		}
		if !statesEqual(s, back) {
			t.Fatal("decode(encode(s)) != s")
		}
	})
}
