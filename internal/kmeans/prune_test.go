package kmeans

// Invariance tests for the pruned distance computations: the partial-
// distance early exits in lloyd, seedPlusPlus, and assignAll must be
// invisible — identical assignments, centroid bits, inertia bits,
// iteration counts, and rng consumption compared to the unpruned
// reference implementation preserved below.

import (
	"math"
	"math/rand"
	"testing"

	"mlpa/internal/linalg"
	"mlpa/internal/obs"
)

// --- Frozen reference implementation (pre-pruning) ---

func refLloyd(points [][]float64, k int, rng *rand.Rand, maxIters int) *Result {
	n := len(points)
	cents := refSeedPlusPlus(points, k, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int, k)

	iters := 0
	converged := false
	for iter := 0; iter < maxIters; iter++ {
		iters = iter + 1
		changed := false
		for i, p := range points {
			bi, bd := 0, math.Inf(1)
			for c := range cents {
				if dd := linalg.Dist2(p, cents[c]); dd < bd {
					bi, bd = c, dd
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		if !changed && iter > 0 {
			converged = true
			break
		}
		for c := range cents {
			for j := range cents[c] {
				cents[c][j] = 0
			}
			sizes[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			sizes[c]++
			linalg.AXPY(cents[c], 1, p)
		}
		for c := range cents {
			if sizes[c] == 0 {
				far, fd := 0, -1.0
				for i, p := range points {
					if dd := linalg.Dist2(p, cents[assign[i]]); dd > fd && sizes[assign[i]] > 1 {
						far, fd = i, dd
					}
				}
				copy(cents[c], points[far])
				sizes[assign[far]]--
				assign[far] = c
				sizes[c] = 1
				continue
			}
			linalg.Scale(cents[c], 1/float64(sizes[c]))
		}
	}

	for c := range sizes {
		sizes[c] = 0
	}
	var inertia float64
	for i, p := range points {
		sizes[assign[i]]++
		inertia += linalg.Dist2(p, cents[assign[i]])
	}
	return &Result{K: k, Assign: assign, Centroids: cents, Sizes: sizes, Inertia: inertia,
		Iters: iters, Converged: converged}
}

func refSeedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	cents := make([][]float64, 0, k)
	first := rng.Intn(n)
	cents = append(cents, append([]float64(nil), points[first]...))
	dists := make([]float64, n)
	for len(cents) < k {
		var total float64
		for i, p := range points {
			dd := math.Inf(1)
			for _, c := range cents {
				if v := linalg.Dist2(p, c); v < dd {
					dd = v
				}
			}
			dists[i] = dd
			total += dd
		}
		if total == 0 {
			cents = append(cents, append([]float64(nil), points[rng.Intn(n)]...))
			continue
		}
		target := rng.Float64() * total
		idx := 0
		for i, dd := range dists {
			target -= dd
			if target <= 0 {
				idx = i
				break
			}
		}
		cents = append(cents, append([]float64(nil), points[idx]...))
	}
	return cents
}

func refAssignAll(points [][]float64, r *Result) *Result {
	out := &Result{
		K:         r.K,
		Assign:    make([]int, len(points)),
		Centroids: r.Centroids,
		Sizes:     make([]int, r.K),
	}
	for i, p := range points {
		bi, bd := 0, math.Inf(1)
		for c := range r.Centroids {
			if dd := linalg.Dist2(p, r.Centroids[c]); dd < bd {
				bi, bd = c, dd
			}
		}
		out.Assign[i] = bi
		out.Sizes[bi]++
		out.Inertia += bd
	}
	return out
}

// --- Data generators: BBV-shaped matrices with heavy ties ---

// syntheticBBVs builds n sparse rows in d dimensions clustered around
// g ground-truth phase signatures, with exact duplicates (common in
// synthetic traces) and a few all-zero rows thrown in so ties and
// degenerate clusters are exercised.
func syntheticBBVs(rng *rand.Rand, n, d, g int) [][]float64 {
	protos := make([][]float64, g)
	for i := range protos {
		protos[i] = make([]float64, d)
		for j := 0; j < d/3+1; j++ {
			protos[i][rng.Intn(d)] = rng.Float64()
		}
		linalg.NormalizeL1(protos[i])
	}
	rows := make([][]float64, n)
	for i := range rows {
		switch {
		case i%17 == 0 && i > 0:
			// Exact duplicate of an earlier row.
			rows[i] = append([]float64(nil), rows[rng.Intn(i)]...)
		case i%23 == 5:
			rows[i] = make([]float64, d) // all-zero row
		default:
			p := protos[rng.Intn(g)]
			r := append([]float64(nil), p...)
			for j := range r {
				r[j] += rng.NormFloat64() * 0.01
				if r[j] < 0 {
					r[j] = 0
				}
			}
			linalg.NormalizeL1(r)
			rows[i] = r
		}
	}
	return rows
}

func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.K != want.K || got.Iters != want.Iters || got.Converged != want.Converged {
		t.Errorf("%s: K/Iters/Converged = %d/%d/%v, want %d/%d/%v",
			label, got.K, got.Iters, got.Converged, want.K, want.Iters, want.Converged)
	}
	if math.Float64bits(got.Inertia) != math.Float64bits(want.Inertia) {
		t.Errorf("%s: Inertia %v != reference %v (not bit-identical)", label, got.Inertia, want.Inertia)
	}
	for i := range want.Assign {
		if got.Assign[i] != want.Assign[i] {
			t.Fatalf("%s: Assign[%d] = %d, want %d", label, i, got.Assign[i], want.Assign[i])
		}
	}
	for c := range want.Centroids {
		for j := range want.Centroids[c] {
			if math.Float64bits(got.Centroids[c][j]) != math.Float64bits(want.Centroids[c][j]) {
				t.Fatalf("%s: Centroids[%d][%d] = %v, want %v (not bit-identical)",
					label, c, j, got.Centroids[c][j], want.Centroids[c][j])
			}
		}
	}
	for c := range want.Sizes {
		if got.Sizes[c] != want.Sizes[c] {
			t.Errorf("%s: Sizes[%d] = %d, want %d", label, c, got.Sizes[c], want.Sizes[c])
		}
	}
}

// TestLloydPruningInvariant checks the pruned lloyd against the frozen
// reference over several data shapes, seeds, and k values.
func TestLloydPruningInvariant(t *testing.T) {
	dataRng := rand.New(rand.NewSource(99))
	shapes := []struct{ n, d, g int }{
		{60, 16, 3},
		{120, 32, 5},
		{200, 24, 8},
		{40, 8, 2},
	}
	for _, sh := range shapes {
		points := syntheticBBVs(dataRng, sh.n, sh.d, sh.g)
		for _, seed := range []int64{1, 7, 12345, -3} {
			for _, k := range []int{1, 2, 3, 7, 15} {
				if k > sh.n {
					continue
				}
				got := lloyd(points, k, rand.New(rand.NewSource(seed)), 100)
				want := refLloyd(points, k, rand.New(rand.NewSource(seed)), 100)
				sameResult(t, "lloyd", got, want)
			}
		}
	}
}

// TestSeedPlusPlusInvariant checks seeding alone: identical centroid
// choices and identical rng stream consumption (probed by drawing one
// value afterwards).
func TestSeedPlusPlusInvariant(t *testing.T) {
	dataRng := rand.New(rand.NewSource(5))
	points := syntheticBBVs(dataRng, 150, 20, 6)
	// Also a degenerate set: every point identical, forcing the
	// total==0 re-seed path and its Intn draw.
	flat := make([][]float64, 30)
	for i := range flat {
		flat[i] = []float64{0.5, 0.25, 0.25}
	}
	for _, pts := range [][][]float64{points, flat} {
		for _, seed := range []int64{0, 3, 999} {
			for _, k := range []int{1, 4, 9} {
				if k > len(pts) {
					continue
				}
				rngA := rand.New(rand.NewSource(seed))
				rngB := rand.New(rand.NewSource(seed))
				got := seedPlusPlus(pts, k, rngA)
				want := refSeedPlusPlus(pts, k, rngB)
				if len(got) != len(want) {
					t.Fatalf("centroid count %d != %d", len(got), len(want))
				}
				for c := range want {
					for j := range want[c] {
						if math.Float64bits(got[c][j]) != math.Float64bits(want[c][j]) {
							t.Fatalf("seed %d k %d: centroid %d dim %d: %v != %v",
								seed, k, c, j, got[c][j], want[c][j])
						}
					}
				}
				if a, b := rngA.Int63(), rngB.Int63(); a != b {
					t.Fatalf("seed %d k %d: rng streams diverged (%d != %d)", seed, k, a, b)
				}
			}
		}
	}
}

// TestAssignAllInvariant checks the sampled-clustering full-assignment
// path.
func TestAssignAllInvariant(t *testing.T) {
	dataRng := rand.New(rand.NewSource(17))
	points := syntheticBBVs(dataRng, 300, 16, 4)
	base := refLloyd(points[:40], 5, rand.New(rand.NewSource(2)), 100)
	got := assignAll(points, base)
	want := refAssignAll(points, base)
	if math.Float64bits(got.Inertia) != math.Float64bits(want.Inertia) {
		t.Errorf("Inertia %v != reference %v", got.Inertia, want.Inertia)
	}
	for i := range want.Assign {
		if got.Assign[i] != want.Assign[i] {
			t.Fatalf("Assign[%d] = %d, want %d", i, got.Assign[i], want.Assign[i])
		}
	}
	for c := range want.Sizes {
		if got.Sizes[c] != want.Sizes[c] {
			t.Errorf("Sizes[%d] = %d, want %d", c, got.Sizes[c], want.Sizes[c])
		}
	}
}

// TestClusterPruningEndToEnd drives the public API with the sampled
// path enabled and telemetry attached: results must match a reference
// built from the frozen pieces, and the kmeans.iterations histogram
// must still fire once per restart.
func TestClusterPruningEndToEnd(t *testing.T) {
	dataRng := rand.New(rand.NewSource(31))
	points := syntheticBBVs(dataRng, 400, 24, 6)
	reg := obs.NewRegistry()
	opts := Options{Seed: 11, Restarts: 3, SampleCap: 100, Metrics: reg}

	got, err := Cluster(points, 6, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: replicate Cluster's control flow with frozen pieces.
	o := opts.withDefaults()
	sampleStride := (len(points) + o.SampleCap - 1) / o.SampleCap
	var sample [][]float64
	for i := 0; i < len(points); i += sampleStride {
		sample = append(sample, points[i])
	}
	var want *Result
	for r := 0; r < o.Restarts; r++ {
		rng := rand.New(rand.NewSource(o.Seed + int64(r)*7919))
		res := refLloyd(sample, 6, rng, o.MaxIters)
		if want == nil || res.Inertia < want.Inertia {
			want = res
		}
	}
	iters, converged := want.Iters, want.Converged
	want = refAssignAll(points, want)
	want.Iters, want.Converged = iters, converged

	sameResult(t, "cluster", &Result{K: got.K, Assign: got.Assign, Centroids: got.Centroids,
		Sizes: got.Sizes, Inertia: got.Inertia, Iters: got.Iters, Converged: got.Converged}, want)

	if n := reg.Counter("kmeans.restarts").Value(); n != int64(o.Restarts) {
		t.Errorf("kmeans.restarts = %d, want %d", n, o.Restarts)
	}
	if st := reg.Histogram("kmeans.iterations").Stat(); st.Count != int64(o.Restarts) {
		t.Errorf("kmeans.iterations observed %d times, want %d", st.Count, o.Restarts)
	}
}
