// Package kmeans implements the clustering stage of the SimPoint
// pipeline: Lloyd's k-means with k-means++ seeding, deterministic
// multi-restart, empty-cluster repair, and Bayesian Information
// Criterion (BIC) model selection over k = 1..Kmax using the
// Pelleg-Moore (X-means) approximation, with SimPoint's rule of
// choosing the smallest k whose BIC reaches a fixed fraction of the
// observed BIC range.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"mlpa/internal/linalg"
	"mlpa/internal/obs"
)

// Options controls clustering.
type Options struct {
	// Seed makes runs deterministic. Two identical calls always
	// return identical results.
	Seed int64
	// MaxIters bounds Lloyd iterations per restart (default 100).
	MaxIters int
	// Restarts is the number of seeded attempts per k; the attempt
	// with the lowest inertia wins (default 3).
	Restarts int
	// BICFraction is the fraction of the BIC range a k must reach to
	// be chosen by Best (default 0.9, the SimPoint setting).
	BICFraction float64
	// SampleCap, when positive, clusters a deterministic stride sample
	// of at most this many points and then assigns every point to the
	// nearest sample centroid — the technique SimPoint uses to bound
	// clustering cost on long traces. 0 clusters all points.
	SampleCap int

	// Metrics, if non-nil, receives clustering telemetry: histogram
	// kmeans.iterations (Lloyd iterations per restart), counter
	// kmeans.restarts, histogram kmeans.chosen_k (Best only) and
	// counter kmeans.unconverged (restarts that hit MaxIters).
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 100
	}
	if o.Restarts <= 0 {
		o.Restarts = 3
	}
	if o.BICFraction <= 0 || o.BICFraction > 1 {
		o.BICFraction = 0.9
	}
	return o
}

// Result is one clustering of the data.
type Result struct {
	K         int
	Assign    []int       // Assign[i] = cluster of point i
	Centroids [][]float64 // K centroids
	Sizes     []int       // points per cluster
	Inertia   float64     // total within-cluster squared distance
	BIC       float64

	// Iters is the number of Lloyd iterations the winning restart ran;
	// Converged reports whether it reached a fixed point before
	// MaxIters (convergence telemetry for the observability layer).
	Iters     int
	Converged bool
}

// Cluster runs k-means for a fixed k.
func Cluster(points [][]float64, k int, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	if k < 1 {
		return nil, fmt.Errorf("kmeans: k = %d < 1", k)
	}
	if k > n {
		k = n
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("kmeans: point %d has dimension %d, want %d", i, len(p), d)
		}
	}

	clusterSet := points
	var sampleStride int
	if opts.SampleCap > 0 && n > opts.SampleCap {
		sampleStride = (n + opts.SampleCap - 1) / opts.SampleCap
		clusterSet = make([][]float64, 0, opts.SampleCap+1)
		for i := 0; i < n; i += sampleStride {
			clusterSet = append(clusterSet, points[i])
		}
		if k > len(clusterSet) {
			k = len(clusterSet)
		}
	}

	var best *Result
	for r := 0; r < opts.Restarts; r++ {
		rng := rand.New(rand.NewSource(opts.Seed + int64(r)*7919))
		res := lloyd(clusterSet, k, rng, opts.MaxIters)
		opts.Metrics.Counter("kmeans.restarts").Inc()
		opts.Metrics.Histogram("kmeans.iterations").Observe(float64(res.Iters))
		if !res.Converged {
			opts.Metrics.Counter("kmeans.unconverged").Inc()
		}
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	if sampleStride > 0 {
		iters, converged := best.Iters, best.Converged
		best = assignAll(points, best)
		best.Iters, best.Converged = iters, converged
	}
	best.BIC = bic(points, best)
	return best, nil
}

// assignAll maps every point to the nearest centroid of a clustering
// computed on a sample, recomputing sizes and inertia.
func assignAll(points [][]float64, r *Result) *Result {
	out := &Result{
		K:         r.K,
		Assign:    make([]int, len(points)),
		Centroids: r.Centroids,
		Sizes:     make([]int, r.K),
	}
	for i, p := range points {
		bi, bd := nearestCentroid(p, r.Centroids)
		out.Assign[i] = bi
		out.Sizes[bi]++
		out.Inertia += bd
	}
	return out
}

// nearestCentroid returns the index of the centroid nearest to p and
// the exact squared distance to it. The scan prunes with
// linalg.Dist2Bounded using the best distance so far as the bound:
// a candidate abandoned early is provably farther than the incumbent,
// and a candidate that survives has its exact Dist2 value, so the
// (index, distance) pair — including first-wins tie-breaking under the
// strict < comparison — is identical to an unpruned scan.
func nearestCentroid(p []float64, cents [][]float64) (int, float64) {
	bi, bd := 0, math.Inf(1)
	for c := range cents {
		if dd := linalg.Dist2Bounded(p, cents[c], bd); dd < bd {
			bi, bd = c, dd
		}
	}
	return bi, bd
}

// lloyd runs one seeded k-means attempt.
func lloyd(points [][]float64, k int, rng *rand.Rand, maxIters int) *Result {
	n := len(points)
	cents := seedPlusPlus(points, k, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int, k)

	iters := 0
	converged := false
	for iter := 0; iter < maxIters; iter++ {
		iters = iter + 1
		changed := false
		for i, p := range points {
			bi, _ := nearestCentroid(p, cents)
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		if !changed && iter > 0 {
			converged = true
			break
		}
		// Recompute centroids.
		for c := range cents {
			for j := range cents[c] {
				cents[c][j] = 0
			}
			sizes[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			sizes[c]++
			linalg.AXPY(cents[c], 1, p)
		}
		for c := range cents {
			if sizes[c] == 0 {
				// Empty cluster: re-seed at the point farthest from
				// its centroid.
				far, fd := 0, -1.0
				for i, p := range points {
					if dd := linalg.Dist2(p, cents[assign[i]]); dd > fd && sizes[assign[i]] > 1 {
						far, fd = i, dd
					}
				}
				copy(cents[c], points[far])
				sizes[assign[far]]--
				assign[far] = c
				sizes[c] = 1
				continue
			}
			linalg.Scale(cents[c], 1/float64(sizes[c]))
		}
	}

	// Final sizes and inertia.
	for c := range sizes {
		sizes[c] = 0
	}
	var inertia float64
	for i, p := range points {
		sizes[assign[i]]++
		inertia += linalg.Dist2(p, cents[assign[i]])
	}
	return &Result{K: k, Assign: assign, Centroids: cents, Sizes: sizes, Inertia: inertia,
		Iters: iters, Converged: converged}
}

// seedPlusPlus picks k initial centroids by k-means++ sampling.
//
// The nearest-centroid distances are maintained incrementally: dists[i]
// already holds point i's minimum distance to every previously chosen
// centroid, so each round only measures against the newest one —
// O(n·k·d) total instead of the naive O(n·k²·d) rescan — and the
// comparison against the incumbent minimum uses the same strict <
// update the rescan applied centroid-by-centroid, with Dist2Bounded
// pruning against the incumbent. Both refinements leave every dists[i]
// value, the round totals, and the rng draw sequence bit-identical to
// the naive version (TestSeedPlusPlusInvariant).
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	cents := make([][]float64, 0, k)
	first := rng.Intn(n)
	cents = append(cents, append([]float64(nil), points[first]...))
	dists := make([]float64, n)
	for i := range dists {
		dists[i] = math.Inf(1)
	}
	for len(cents) < k {
		newest := cents[len(cents)-1]
		var total float64
		for i, p := range points {
			if v := linalg.Dist2Bounded(p, newest, dists[i]); v < dists[i] {
				dists[i] = v
			}
			total += dists[i]
		}
		if total == 0 {
			// All remaining points coincide with existing centroids.
			cents = append(cents, append([]float64(nil), points[rng.Intn(n)]...))
			continue
		}
		target := rng.Float64() * total
		idx := 0
		for i, dd := range dists {
			target -= dd
			if target <= 0 {
				idx = i
				break
			}
		}
		cents = append(cents, append([]float64(nil), points[idx]...))
	}
	return cents
}

// bic scores a clustering with the Pelleg-Moore spherical-Gaussian
// approximation; higher is better.
func bic(points [][]float64, r *Result) float64 {
	n := float64(len(points))
	d := float64(len(points[0]))
	k := float64(r.K)
	variance := r.Inertia / math.Max(n-k, 1)
	if variance < 1e-12 {
		variance = 1e-12
	}
	var ll float64
	for _, sz := range r.Sizes {
		if sz == 0 {
			continue
		}
		rn := float64(sz)
		ll += rn*math.Log(rn) -
			rn*math.Log(n) -
			rn*d/2*math.Log(2*math.Pi*variance) -
			(rn-1)*d/2
	}
	params := k * (d + 1)
	return ll - params/2*math.Log(n)
}

// Best clusters for every k in 1..kmax and applies SimPoint's
// selection rule: the smallest k whose BIC reaches
// min + BICFraction*(max-min) over the scored range.
func Best(points [][]float64, kmax int, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if kmax < 1 {
		return nil, fmt.Errorf("kmeans: kmax = %d < 1", kmax)
	}
	if kmax > len(points) {
		kmax = len(points)
	}
	results := make([]*Result, 0, kmax)
	minBIC, maxBIC := math.Inf(1), math.Inf(-1)
	for k := 1; k <= kmax; k++ {
		r, err := Cluster(points, k, opts)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
		minBIC = math.Min(minBIC, r.BIC)
		maxBIC = math.Max(maxBIC, r.BIC)
	}
	threshold := minBIC + opts.BICFraction*(maxBIC-minBIC)
	chosen := results[len(results)-1]
	for _, r := range results {
		if r.BIC >= threshold {
			chosen = r
			break
		}
	}
	opts.Metrics.Histogram("kmeans.chosen_k").Observe(float64(chosen.K))
	return chosen, nil
}

// NearestToCentroid returns, for each cluster, the index of the point
// closest to its centroid (SimPoint's representative selection).
// Among members indistinguishably close to the centroid — common in
// synthetic traces where many intervals have identical signatures —
// the member at the median candidate position wins, so ties do not
// systematically elect the earliest (often transient-polluted)
// instance.
func NearestToCentroid(points [][]float64, r *Result) []int {
	best := make([]float64, r.K)
	for c := range best {
		best[c] = math.Inf(1)
	}
	for i, p := range points {
		c := r.Assign[i]
		if dd := linalg.Dist2(p, r.Centroids[c]); dd < best[c] {
			best[c] = dd
		}
	}
	// Collect near-ties and pick each cluster's median candidate.
	candidates := make([][]int, r.K)
	for i, p := range points {
		c := r.Assign[i]
		dd := linalg.Dist2(p, r.Centroids[c])
		if dd <= best[c]*(1+1e-9)+1e-18 {
			candidates[c] = append(candidates[c], i)
		}
	}
	reps := make([]int, r.K)
	for c := range reps {
		if len(candidates[c]) == 0 {
			reps[c] = -1
			continue
		}
		reps[c] = candidates[c][len(candidates[c])/2]
	}
	return reps
}

// EarliestInCluster returns, for each cluster, the smallest point
// index assigned to it (COASTS's earliest-instance representative
// selection; point order is execution order).
func EarliestInCluster(r *Result) []int {
	reps := make([]int, r.K)
	for c := range reps {
		reps[c] = -1
	}
	for i, c := range r.Assign {
		if reps[c] == -1 {
			reps[c] = i
		}
	}
	return reps
}
