package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates n points around each of the given centers with the
// given spread.
func blobs(seed int64, centers [][]float64, n int, spread float64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	var out [][]float64
	for _, c := range centers {
		for i := 0; i < n; i++ {
			p := make([]float64, len(c))
			for j := range p {
				p[j] = c[j] + rng.NormFloat64()*spread
			}
			out = append(out, p)
		}
	}
	return out
}

func TestClusterSeparatesBlobs(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	pts := blobs(1, centers, 30, 0.5)
	r, err := Cluster(pts, 3, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 3 {
		t.Fatalf("K = %d", r.K)
	}
	// All points of one blob must share a cluster.
	for b := 0; b < 3; b++ {
		want := r.Assign[b*30]
		for i := 1; i < 30; i++ {
			if r.Assign[b*30+i] != want {
				t.Fatalf("blob %d split across clusters", b)
			}
		}
	}
	// Centroids near the true centers (in some order).
	for _, c := range centers {
		found := false
		for _, got := range r.Centroids {
			if math.Abs(got[0]-c[0]) < 1 && math.Abs(got[1]-c[1]) < 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("no centroid near %v: %v", c, r.Centroids)
		}
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(nil, 2, Options{}); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Cluster([][]float64{{1}}, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Cluster([][]float64{{1}, {1, 2}}, 1, Options{}); err == nil {
		t.Error("ragged data accepted")
	}
}

func TestClusterKLargerThanN(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}}
	r, err := Cluster(pts, 10, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 3 {
		t.Errorf("K = %d, want clamped to 3", r.K)
	}
}

func TestDeterminism(t *testing.T) {
	pts := blobs(2, [][]float64{{0, 0}, {5, 5}}, 50, 1)
	r1, _ := Cluster(pts, 2, Options{Seed: 9})
	r2, _ := Cluster(pts, 2, Options{Seed: 9})
	if r1.Inertia != r2.Inertia {
		t.Fatalf("inertia differs: %v vs %v", r1.Inertia, r2.Inertia)
	}
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatal("assignments differ between identical runs")
		}
	}
}

func TestSizesAndInertiaConsistent(t *testing.T) {
	pts := blobs(3, [][]float64{{0, 0}, {8, 0}}, 40, 1)
	r, err := Cluster(pts, 2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range r.Sizes {
		total += s
	}
	if total != len(pts) {
		t.Errorf("sizes sum to %d, want %d", total, len(pts))
	}
	if r.Inertia < 0 {
		t.Errorf("negative inertia %v", r.Inertia)
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	pts := blobs(4, [][]float64{{0, 0}, {6, 6}, {-6, 6}, {6, -6}}, 25, 1)
	var prev float64 = math.Inf(1)
	for k := 1; k <= 6; k++ {
		r, err := Cluster(pts, k, Options{Seed: 11, Restarts: 5})
		if err != nil {
			t.Fatal(err)
		}
		// Allow tiny non-monotonicity from local optima.
		if r.Inertia > prev*1.05 {
			t.Errorf("inertia rose sharply at k=%d: %v -> %v", k, prev, r.Inertia)
		}
		prev = r.Inertia
	}
}

func TestBestPicksTrueK(t *testing.T) {
	pts := blobs(5, [][]float64{{0, 0}, {20, 0}, {0, 20}}, 40, 0.8)
	r, err := Best(pts, 8, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 3 {
		t.Errorf("Best chose k = %d, want 3", r.K)
	}
}

func TestBestSingleCluster(t *testing.T) {
	// One tight blob: BIC should not over-split badly.
	pts := blobs(6, [][]float64{{0, 0}}, 80, 0.5)
	r, err := Best(pts, 5, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if r.K > 2 {
		t.Errorf("Best chose k = %d for one blob, want <= 2", r.K)
	}
}

func TestBestErrors(t *testing.T) {
	if _, err := Best([][]float64{{1}}, 0, Options{}); err == nil {
		t.Error("kmax=0 accepted")
	}
}

func TestNearestToCentroid(t *testing.T) {
	pts := [][]float64{{0}, {0.1}, {10}, {10.2}, {9.9}}
	r, err := Cluster(pts, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	reps := NearestToCentroid(pts, r)
	if len(reps) != 2 {
		t.Fatalf("reps = %v", reps)
	}
	for c, rep := range reps {
		if rep < 0 {
			t.Fatalf("cluster %d has no representative", c)
		}
		if r.Assign[rep] != c {
			t.Errorf("rep %d not in its cluster %d", rep, c)
		}
	}
	// The representative of the {10,10.2,9.9} cluster is 10 or 9.9
	// (closest to mean 10.03): index 2 or 4.
	bigCluster := r.Assign[2]
	rep := reps[bigCluster]
	if rep != 2 && rep != 4 {
		t.Errorf("big-cluster representative = %d", rep)
	}
}

func TestEarliestInCluster(t *testing.T) {
	r := &Result{K: 2, Assign: []int{1, 1, 0, 1, 0}}
	reps := EarliestInCluster(r)
	if reps[0] != 2 || reps[1] != 0 {
		t.Errorf("reps = %v, want [2 0]", reps)
	}
}

func TestEarliestInClusterEmptyCluster(t *testing.T) {
	r := &Result{K: 3, Assign: []int{0, 0, 1}}
	reps := EarliestInCluster(r)
	if reps[2] != -1 {
		t.Errorf("empty cluster rep = %d, want -1", reps[2])
	}
}

func TestIdenticalPoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	r, err := Cluster(pts, 2, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Inertia != 0 {
		t.Errorf("identical points inertia = %v", r.Inertia)
	}
	b, err := Best(pts, 3, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.K != 1 {
		t.Errorf("Best on identical points chose k = %d", b.K)
	}
}

// Property: every point is assigned to its nearest centroid after
// convergence (Lloyd fixed-point invariant).
func TestAssignmentOptimality(t *testing.T) {
	f := func(seed int64) bool {
		pts := blobs(seed, [][]float64{{0, 0}, {7, 7}}, 20, 1.5)
		r, err := Cluster(pts, 2, Options{Seed: seed})
		if err != nil {
			return false
		}
		for i, p := range pts {
			mine := dist2(p, r.Centroids[r.Assign[i]])
			for c := range r.Centroids {
				if dist2(p, r.Centroids[c]) < mine-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Property: BIC is finite for any well-formed clustering.
func TestBICFinite(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%5) + 1
		pts := blobs(seed, [][]float64{{0}, {3}}, 15, 0.7)
		r, err := Cluster(pts, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		return !math.IsNaN(r.BIC) && !math.IsInf(r.BIC, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
