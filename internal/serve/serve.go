package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"mlpa/internal/bench"
	"mlpa/internal/ckpt"
	"mlpa/internal/coasts"
	"mlpa/internal/config"
	"mlpa/internal/multilevel"
	"mlpa/internal/obs"
	"mlpa/internal/parallel"
	"mlpa/internal/pipeline"
	"mlpa/internal/sampling"
	"mlpa/internal/simpoint"
	"mlpa/internal/smarts"
	"mlpa/internal/staticanalysis"
)

// Execution policy constants. These are part of the service contract:
// together with the request they determine every response bit, so they
// must not vary per request or per deployment without invalidating the
// content-hash cache semantics.
const (
	// execWarmup is the functional-warming window per point (64k
	// instructions, generous next to the service's tiny/small guests).
	// It is finite so every point has a warm start strictly inside the
	// program: that is what lets checkpoint sets replace the functional
	// fast-forward to each point — an unbounded window would pin every
	// warm start to instruction zero and leave nothing for a checkpoint
	// to skip. Like every policy constant it is part of the service
	// contract: changing it changes response bits and the goldens.
	execWarmup = 1 << 16
	// execDetailLeadIn is the detailed-mode lead-in discarded before
	// each point's measurement.
	execDetailLeadIn = 512
)

// Options configures a Server. The zero value is usable: every field
// has a production default.
type Options struct {
	// Obs supplies metrics, tracing and progress. Nil creates a
	// standalone runtime (metrics still served on /metrics).
	Obs *obs.Runtime

	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64

	// MaxProgramInsts bounds the admission probe: guests that do not
	// halt within this many instructions are rejected with 422
	// budget_exceeded before any profiling or simulation is spent on
	// them (default 1<<30).
	MaxProgramInsts uint64

	// MaxProgramCode bounds the static instruction count of submitted
	// assembly (default 1<<16). Static analysis cost grows superlinearly
	// on adversarial control flow, so size is policed before analysis.
	MaxProgramCode int

	// RequestTimeout bounds each computation and each wait on a
	// coalesced in-flight computation (default 2 minutes).
	RequestTimeout time.Duration

	// MaxConcurrent caps pipeline executions across all requests via a
	// shared admission pool (default GOMAXPROCS).
	MaxConcurrent int

	// RequestWorkers is the parallel worker count each admitted
	// execution uses (default 1). Results are bit-identical for any
	// value — the repo-wide determinism contract.
	RequestWorkers int

	// MaxCachedResults bounds the response cache entry count
	// (default 1024).
	MaxCachedResults int

	// MaxCachedPrograms bounds the program registry (default 64).
	MaxCachedPrograms int

	// MaxCachedCkptSets bounds the checkpoint-set cache entry count
	// (default 64). One entry holds a whole plan's portable checkpoints
	// — the fast-forward work every config evaluation of that plan
	// would otherwise re-pay.
	MaxCachedCkptSets int
}

func (o Options) withDefaults() Options {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxProgramInsts == 0 {
		o.MaxProgramInsts = 1 << 30
	}
	if o.MaxProgramCode == 0 {
		o.MaxProgramCode = 1 << 16
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Minute
	}
	if o.RequestWorkers <= 0 {
		o.RequestWorkers = 1
	}
	if o.MaxCachedResults == 0 {
		o.MaxCachedResults = 1024
	}
	if o.MaxCachedPrograms == 0 {
		o.MaxCachedPrograms = 64
	}
	if o.MaxCachedCkptSets == 0 {
		o.MaxCachedCkptSets = 64
	}
	return o
}

// Server is the sampling-as-a-service daemon. Create with New, mount
// Handler (or Start a listener), and Shutdown to drain.
type Server struct {
	opts     Options
	rt       *obs.Runtime
	reg      *obs.Registry
	pool     *parallel.Pool
	results  *resultCache
	programs *programCache
	ckpts    *ckptCache

	gate *gate

	// baseCtx parents every computation, decoupled from any single
	// request: a coalesced computation must survive its leader's
	// disconnect because other waiters share its result.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	muxOnce sync.Once
	mux     *http.ServeMux

	httpMu  sync.Mutex
	httpSrv *http.Server
	addr    net.Addr
	serveCh chan error

	// testHookComputeStart, when set, runs at the start of every
	// cache-miss computation. Tests use it to hold computations open
	// while asserting coalescing and drain behaviour.
	testHookComputeStart func(endpoint string)
}

// New creates a Server with o applied over defaults.
func New(o Options) *Server {
	o = o.withDefaults()
	rt := o.Obs
	if rt == nil {
		rt = obs.New(nil)
	}
	reg := rt.Metrics()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		opts:       o,
		rt:         rt,
		reg:        reg,
		pool:       parallel.NewPool(o.MaxConcurrent, reg),
		results:    newResultCache(o.MaxCachedResults, reg),
		programs:   newProgramCache(o.MaxCachedPrograms, o.MaxProgramCode, reg),
		ckpts:      newCkptCache(o.MaxCachedCkptSets, reg),
		gate:       newGate(),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
}

// Handler returns the daemon's mux: the /v1 API, /healthz, and the obs
// telemetry routes (/metrics, /progress, pprof).
func (s *Server) Handler() http.Handler {
	s.muxOnce.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/analyze", func(w http.ResponseWriter, r *http.Request) { s.handle("analyze", w, r) })
		mux.HandleFunc("/v1/plan", func(w http.ResponseWriter, r *http.Request) { s.handle("plan", w, r) })
		mux.HandleFunc("/v1/estimate", func(w http.ResponseWriter, r *http.Request) { s.handle("estimate", w, r) })
		mux.HandleFunc("/healthz", s.handleHealth)
		obs.Mount(mux, s.rt)
		mux.HandleFunc("/", s.handleIndex)
		s.mux = mux
	})
	return s.mux
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		s.writeError(w, &apiError{Status: http.StatusNotFound, Code: codeNotFound,
			Message: fmt.Sprintf("no route %s (see docs/SERVICE.md)", r.URL.Path)})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "mlpa sampling service\n\nPOST /v1/analyze\nPOST /v1/plan\nPOST /v1/estimate\nGET  /healthz\nGET  /metrics\nGET  /progress\n")
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.gate.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "{\"status\":\"draining\"}\n")
		return
	}
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}

// handle is the shared /v1 endpoint handler: admission, decoding,
// program resolution, single-flight cached computation, reply.
func (s *Server) handle(endpoint string, w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Counter("serve.requests").Inc()
	defer func() {
		s.reg.Histogram("serve." + endpoint + ".seconds").Observe(time.Since(start).Seconds())
	}()

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, &apiError{Status: http.StatusMethodNotAllowed, Code: codeBadMethod,
			Message: fmt.Sprintf("%s requires POST, got %s", r.URL.Path, r.Method)})
		return
	}
	// Drain gate: a request either enters before the drain begins and
	// is then guaranteed to complete, or is refused outright.
	if !s.gate.enter() {
		s.writeError(w, &apiError{Status: http.StatusServiceUnavailable, Code: codeDraining,
			Message: "server is draining; retry against another instance"})
		return
	}
	defer s.gate.exit()

	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, &apiError{Status: http.StatusRequestEntityTooLarge, Code: codeTooLarge,
				Message: fmt.Sprintf("request body exceeds %d bytes", s.opts.MaxBodyBytes)})
			return
		}
		s.writeError(w, badRequest(codeBadJSON, "reading request body: %v", err))
		return
	}
	req, ae := decodeRequest(data)
	if ae != nil {
		s.writeError(w, ae)
		return
	}
	entry, ae := s.programs.resolve(req)
	if ae != nil {
		s.writeError(w, ae)
		return
	}

	// The wait context bounds this caller only; the computation itself
	// runs under the server's base context (see compute).
	waitCtx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	key := keyFor(endpoint, entry.hash, req).hash()
	// ckptDisp is a side channel out of the computation closure: when
	// this request is the leader of an estimate computation, it reports
	// whether the plan's checkpoint set was built or reused. Coalesced
	// and replayed requests did no checkpoint work, so they carry no
	// X-Mlpa-Ckpt header.
	var ckptDisp string
	body, disp, ae := s.results.do(waitCtx, key, func() ([]byte, *apiError) {
		return s.compute(endpoint, entry, req, &ckptDisp)
	})
	if ae != nil {
		s.writeError(w, ae)
		return
	}
	s.reg.Counter("serve.responses.ok").Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Mlpa-Cache", disp)
	if disp == dispMiss && ckptDisp != "" {
		w.Header().Set("X-Mlpa-Ckpt", ckptDisp)
	}
	w.Write(body)
}

// compute executes one cache miss end to end. It runs inside the
// leader request's goroutine but under the server's base context, so
// coalesced waiters are not aborted by the leader hanging up.
func (s *Server) compute(endpoint string, e *programEntry, req Request, ckptDisp *string) ([]byte, *apiError) {
	if s.testHookComputeStart != nil {
		s.testHookComputeStart(endpoint)
	}
	if endpoint == "analyze" {
		// Purely static: no guest execution, no pool slot needed.
		return s.computeAnalyze(e)
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.opts.RequestTimeout)
	defer cancel()
	if err := s.pool.Acquire(ctx); err != nil {
		return nil, asAPIError(err)
	}
	defer s.pool.Release()
	switch endpoint {
	case "plan":
		return s.computePlan(e, req)
	case "estimate":
		return s.computeEstimate(ctx, e, req, ckptDisp)
	}
	return nil, &apiError{Status: http.StatusInternalServerError, Code: codeInternal,
		Message: "unknown endpoint " + endpoint}
}

func (s *Server) programInfo(e *programEntry) ProgramInfo {
	return ProgramInfo{
		Name:         e.prog.Name,
		Hash:         e.hash,
		Instructions: len(e.prog.Code),
		BasicBlocks:  e.prog.NumBlocks(),
		DataSize:     e.prog.DataSize,
	}
}

func (s *Server) computeAnalyze(e *programEntry) ([]byte, *apiError) {
	a := staticanalysis.Analyze(e.prog)
	if !a.Report.OK() {
		return nil, &apiError{Status: http.StatusUnprocessableEntity, Code: codeUnverifiable,
			Message: a.Report.Err().Error()}
	}
	resp := AnalyzeResponse{Program: s.programInfo(e), Verified: true}
	for _, l := range a.Loops.Loops {
		resp.Loops = append(resp.Loops, LoopInfo{Head: l.Head, Depth: l.Depth, Blocks: len(l.Blocks)})
		if l.Depth+1 > resp.MaxDepth {
			resp.MaxDepth = l.Depth + 1
		}
	}
	b, err := marshalBody(resp)
	if err != nil {
		return nil, asAPIError(err)
	}
	return b, nil
}

// selectFor probes the program and runs the request's method selection,
// yielding the plan that both /v1/plan and /v1/estimate execute.
func (s *Server) selectFor(e *programEntry, req Request) (*sampling.Plan, uint64, uint64, *apiError) {
	total, ae := e.measuredLength(s.opts.MaxProgramInsts)
	if ae != nil {
		return nil, 0, 0, ae
	}
	interval := intervalFor(req, total)
	plan, err := s.selectPlan(e, req, interval)
	if err != nil {
		return nil, 0, 0, asAPIError(err)
	}
	return plan, total, interval, nil
}

func (s *Server) computePlan(e *programEntry, req Request) ([]byte, *apiError) {
	plan, total, interval, ae := s.selectFor(e, req)
	if ae != nil {
		return nil, ae
	}
	resp := PlanResponse{
		Program:         s.programInfo(e),
		Benchmark:       plan.Benchmark,
		Method:          plan.Method,
		TotalInsts:      total,
		IntervalLen:     interval,
		Points:          make([]PointJSON, len(plan.Points)),
		DetailedInsts:   plan.DetailedInsts(),
		FunctionalInsts: plan.FunctionalInsts(),
		DetailedFrac:    plan.DetailedFraction(),
		LastPosition:    plan.LastPosition(),
	}
	for i, pt := range plan.Points {
		resp.Points[i] = PointJSON{Start: pt.Start, End: pt.End, Weight: pt.Weight, Level: pt.Level}
	}
	b, err := marshalBody(resp)
	if err != nil {
		return nil, asAPIError(err)
	}
	return b, nil
}

func (s *Server) computeEstimate(ctx context.Context, e *programEntry, req Request, ckptDisp *string) ([]byte, *apiError) {
	plan, _, _, ae := s.selectFor(e, req)
	if ae != nil {
		return nil, ae
	}
	cfg, err := config.ByName(req.Config)
	if err != nil {
		return nil, badRequest(codeBadField, "%v", err)
	}
	// The checkpoint set depends on the plan, never on the config, so
	// its key is the estimate key with the config dropped: a repeat
	// estimate under a new config reuses the set and skips fast-forward
	// entirely. Results are bit-identical either way (the pipeline's
	// differential harness), so the cache can only change wall time.
	ckey := keyFor("ckpt", e.hash, req).hash()
	set, disp, err := s.ckpts.get(ctx, ckey, func() (*ckpt.Set, error) {
		return pipeline.BuildCheckpointSet(e.prog, plan, s.execOptions(ctx, e))
	})
	if err != nil {
		return nil, asAPIError(err)
	}
	*ckptDisp = disp
	s.reg.Counter("serve.executions").Inc()
	opts := s.execOptions(ctx, e)
	opts.Checkpoints = set
	est, err := pipeline.ExecutePlan(e.prog, plan, cfg, opts)
	if err != nil {
		return nil, asAPIError(err)
	}
	b, err := marshalBody(encodeEstimate(s.programInfo(e), req.Config, est))
	if err != nil {
		return nil, asAPIError(err)
	}
	return b, nil
}

// execOptions is the server's fixed execution policy. Everything that
// can influence result bits is a package constant or a server-lifetime
// option, never per-request, so cached replays stay byte-identical
// with fresh executions.
func (s *Server) execOptions(ctx context.Context, e *programEntry) pipeline.ExecOptions {
	return pipeline.ExecOptions{
		Warmup:       execWarmup,
		DetailLeadIn: execDetailLeadIn,
		Workers:      s.opts.RequestWorkers,
		Ctx:          ctx,
		Cache:        e.states,
		Obs:          s.rt,
	}
}

// intervalFor picks the fine interval length: an explicit override, the
// suite scale's published interval, or 1/100 of the measured dynamic
// length for custom programs — clamped into [1, total].
func intervalFor(req Request, total uint64) uint64 {
	iv := req.IntervalLen
	if iv == 0 {
		if req.Benchmark != "" {
			size, err := parseSize(req.Size)
			if err == nil {
				iv = bench.FineInterval(size)
			}
		} else {
			iv = total / 100
			if iv < 1000 {
				iv = 1000
			}
		}
	}
	if iv > total {
		iv = total
	}
	if iv == 0 {
		iv = 1
	}
	return iv
}

func (s *Server) coastsConfig(req Request) coasts.Config {
	return coasts.Config{Kmax: 3, Seed: req.Seed, Obs: s.rt}
}

func (s *Server) simpointConfig(req Request, interval uint64) simpoint.Config {
	return simpoint.Config{
		IntervalLen: interval,
		Kmax:        30,
		Seed:        req.Seed,
		SampleCap:   2000,
		BICFraction: 0.99,
		Obs:         s.rt,
	}
}

func (s *Server) selectPlan(e *programEntry, req Request, interval uint64) (*sampling.Plan, error) {
	p := e.prog
	switch req.Method {
	case coasts.MethodName:
		plan, _, _, err := coasts.Select(p, s.coastsConfig(req))
		return plan, err
	case simpoint.MethodName:
		plan, _, _, err := simpoint.Select(p, s.simpointConfig(req, interval))
		return plan, err
	case multilevel.MethodName:
		plan, _, err := multilevel.Select(p, multilevel.Config{
			Coarse: s.coastsConfig(req),
			Fine:   s.simpointConfig(req, interval),
		})
		return plan, err
	case smarts.MethodName:
		plan, err := smarts.Select(p, smarts.Config{UnitLen: interval, Period: interval * 25})
		return plan, err
	}
	return nil, badRequest(codeBadField, "unknown method %q", req.Method)
}

func (s *Server) writeError(w http.ResponseWriter, ae *apiError) {
	s.reg.Counter("serve.errors").Inc()
	s.reg.Counter("serve.errors." + ae.Code).Inc()
	b, err := marshalBody(errorBody{Error: ae})
	if err != nil {
		// Unreachable for a struct of strings; degrade to plain text.
		http.Error(w, ae.Message, ae.Status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ae.Status)
	w.Write(b)
}

// BeginDrain flips the server into draining mode: requests already
// admitted run to completion, new API requests are refused with 503
// {"code":"draining"}, and telemetry routes stay up.
func (s *Server) BeginDrain() { s.gate.drain() }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.gate.isDraining() }

// InFlight returns the number of admitted API requests still running.
func (s *Server) InFlight() int { return s.gate.inFlight() }

// Start listens on addr and serves the daemon in the background. The
// bound address is available from Addr (useful with ":0").
func (s *Server) Start(addr string) error {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.httpSrv != nil {
		return errors.New("serve: already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	s.httpSrv = srv
	s.addr = ln.Addr()
	s.serveCh = make(chan error, 1)
	go func() { s.serveCh <- srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address, or nil before Start.
func (s *Server) Addr() net.Addr {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	return s.addr
}

// Shutdown drains and stops the server: it refuses new API requests,
// waits for every admitted request to complete (bounded by ctx), then
// closes the listener. On ctx expiry, remaining computations are
// cancelled via the server's base context and ctx.Err() is returned —
// the only path on which an accepted request can be cut short.
func (s *Server) Shutdown(ctx context.Context) error {
	s.gate.drain()
	select {
	case <-s.gate.drained():
	case <-ctx.Done():
		s.baseCancel()
		return ctx.Err()
	}
	var err error
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv != nil {
		err = srv.Shutdown(ctx)
		if serveErr := <-s.serveCh; serveErr != nil && serveErr != http.ErrServerClosed && err == nil {
			err = serveErr
		}
	}
	s.baseCancel()
	return err
}

// gate tracks in-flight API requests and implements the drain
// handshake without WaitGroup add/wait races: entry is atomic with the
// draining check, so every admitted request is awaited and every
// refused request never starts.
type gate struct {
	mu       sync.Mutex
	draining bool
	n        int
	idle     chan struct{}
	closed   bool
}

func newGate() *gate { return &gate{idle: make(chan struct{})} }

// enter admits one request, returning false when draining.
func (g *gate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.n++
	return true
}

func (g *gate) exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n--
	g.maybeCloseLocked()
}

// drain flips to draining mode; idempotent.
func (g *gate) drain() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.draining = true
	g.maybeCloseLocked()
}

// drained returns a channel closed once draining has begun and the
// last admitted request has exited.
func (g *gate) drained() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.idle
}

func (g *gate) maybeCloseLocked() {
	if g.draining && g.n == 0 && !g.closed {
		g.closed = true
		close(g.idle)
	}
}

func (g *gate) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

func (g *gate) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}
