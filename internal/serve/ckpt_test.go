package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"mlpa/internal/obs"
)

// estBody is asmBody with an explicit config.
func estBody(method, cfg string, seed int64) string {
	return fmt.Sprintf(`{"assembly": %q, "method": %q, "config": %q, "seed": %d}`, testAsm, method, cfg, seed)
}

// TestCkptReuseAcrossConfigs is the acceptance test for checkpoint-
// backed sweeps over the wire: the first estimate of a plan builds its
// checkpoint set (X-Mlpa-Ckpt: build), a repeat estimate with a NEW
// config — a different response cache key, so a real computation —
// reuses the set (X-Mlpa-Ckpt: reuse) and skips fast-forward, and a
// byte-replay of a completed response carries no checkpoint header at
// all (no checkpoint work happened).
func TestCkptReuseAcrossConfigs(t *testing.T) {
	rt := obs.New(nil)
	_, ts := newTestServer(t, Options{Obs: rt})
	reg := rt.Metrics()

	respA, bodyA := post(t, ts.URL+"/v1/estimate", estBody("multilevel", "A", 1))
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("config A: status %d: %s", respA.StatusCode, bodyA)
	}
	if got := respA.Header.Get("X-Mlpa-Ckpt"); got != ckptBuild {
		t.Errorf("first estimate: X-Mlpa-Ckpt = %q, want %q", got, ckptBuild)
	}

	respB, bodyB := post(t, ts.URL+"/v1/estimate", estBody("multilevel", "B", 1))
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("config B: status %d: %s", respB.StatusCode, bodyB)
	}
	if got := respB.Header.Get("X-Mlpa-Cache"); got != dispMiss {
		t.Fatalf("config B should be a fresh computation, got disposition %q", got)
	}
	if got := respB.Header.Get("X-Mlpa-Ckpt"); got != ckptReuse {
		t.Errorf("new-config estimate: X-Mlpa-Ckpt = %q, want %q", got, ckptReuse)
	}
	if got := reg.Counter("serve.ckpt.builds").Value(); got != 1 {
		t.Errorf("serve.ckpt.builds = %d, want 1 (one set serves both configs)", got)
	}
	if got := reg.Counter("serve.ckpt.reuses").Value(); got < 1 {
		t.Errorf("serve.ckpt.reuses = %d, want >= 1", got)
	}

	// The two configs must still disagree on the metrics themselves —
	// reuse shares functional state, not results.
	var a, b struct {
		CPI float64 `json:"cpi"`
	}
	if err := json.Unmarshal(bodyA, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodyB, &b); err != nil {
		t.Fatal(err)
	}
	if a.CPI == b.CPI {
		t.Errorf("configs A and B produced identical CPI %v; sensitivity sweep is not sweeping", a.CPI)
	}

	// Replay of config A: served from the response cache byte-for-byte,
	// no computation, so no checkpoint disposition either.
	respA2, bodyA2 := post(t, ts.URL+"/v1/estimate", estBody("multilevel", "A", 1))
	if got := respA2.Header.Get("X-Mlpa-Cache"); got != dispHit {
		t.Fatalf("replay disposition %q, want %q", got, dispHit)
	}
	if got := respA2.Header.Get("X-Mlpa-Ckpt"); got != "" {
		t.Errorf("replay carries X-Mlpa-Ckpt %q, want none", got)
	}
	if string(bodyA2) != string(bodyA) {
		t.Error("replayed body differs from original")
	}

	// A different seed selects a different plan → a different set.
	resp3, body3 := post(t, ts.URL+"/v1/estimate", estBody("multilevel", "A", 2))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("seed 2: status %d: %s", resp3.StatusCode, body3)
	}
	if got := resp3.Header.Get("X-Mlpa-Ckpt"); got != ckptBuild {
		t.Errorf("new-plan estimate: X-Mlpa-Ckpt = %q, want %q", got, ckptBuild)
	}
	if got := reg.Counter("serve.ckpt.builds").Value(); got != 2 {
		t.Errorf("serve.ckpt.builds = %d, want 2", got)
	}
}
