package serve

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden API response files")

// TestGoldenResponses pins the HTTP API schema byte-for-byte. The
// response bodies are pure functions of the request (no wall-clock
// fields), so these goldens are stable across hosts and worker counts;
// any diff here is a deliberate, reviewed schema or semantics change.
// Regenerate with: go test ./internal/serve -run TestGolden -update
func TestGoldenResponses(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		endpoint string
		body     string
		golden   string
	}{
		{"analyze", asmBody("multilevel", 1), "analyze.golden"},
		{"plan", asmBody("multilevel", 1), "plan.golden"},
		{"estimate", asmBody("multilevel", 1), "estimate.golden"},
		// The error envelope is API surface too.
		{"plan", `{"benchmark":"gzip","method":"magic"}`, "error.golden"},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			_, got := post(t, ts.URL+"/v1/"+tc.endpoint, tc.body)
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("response for %s drifted from %s (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
					tc.endpoint, path, got, want)
			}
		})
	}
}

// TestGoldenStability: serving the same golden request twice — cold
// and cached — yields identical bytes, which is the property that
// makes the goldens (and the content-hash cache) sound.
func TestGoldenStability(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := asmBody("multilevel", 1)
	_, first := post(t, ts.URL+"/v1/estimate", body)
	resp, second := post(t, ts.URL+"/v1/estimate", body)
	if resp.Header.Get("X-Mlpa-Cache") != dispHit {
		t.Fatalf("second request disposition %q, want hit", resp.Header.Get("X-Mlpa-Cache"))
	}
	if !bytes.Equal(first, second) {
		t.Error("cached replay differs from cold response")
	}
	// A fresh server instance (cold caches) also reproduces the bytes.
	_, ts2 := newTestServer(t, Options{})
	_, cold := post(t, ts2.URL+"/v1/estimate", body)
	if !bytes.Equal(first, cold) {
		t.Error("fresh instance produced different bytes for the same request")
	}
	if testing.Verbose() {
		fmt.Printf("estimate body: %d bytes\n", len(first))
	}
}
