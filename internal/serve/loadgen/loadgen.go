// Package loadgen is the load harness for the mlpa serve daemon: it
// drives concurrent, duplicate-heavy API traffic against a running
// instance and reports cache effectiveness and failure counts. CI's
// serve-smoke job uses it to assert that coalescing and the
// content-hash cache actually engage under load and that a draining
// server never fails an accepted request.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures one load run.
type Options struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Endpoint is the API endpoint to exercise: analyze, plan or
	// estimate (default plan).
	Endpoint string
	// Clients is the number of concurrent requesters (default 4).
	Clients int
	// Requests is the total request count (default 64).
	Requests int
	// DupFraction in [0,1) shrinks the distinct-request pool: the pool
	// holds about Requests*(1-DupFraction) distinct bodies, so higher
	// values mean more duplicate traffic and more cache hits
	// (default 0.75).
	DupFraction float64
	// Benchmarks cycles the guest programs (default gzip).
	Benchmarks []string
	// Size is the suite scale for every request (default tiny).
	Size string
	// Method is the sampling method for plan/estimate requests
	// (default multilevel).
	Method string
	// Seed bases the per-request seeds; distinct pool entries get
	// distinct seeds so they miss independently (default 1).
	Seed int64
	// Timeout bounds each HTTP request (default 2 minutes).
	Timeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Endpoint == "" {
		o.Endpoint = "plan"
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Requests <= 0 {
		o.Requests = 64
	}
	if o.DupFraction < 0 || o.DupFraction >= 1 {
		o.DupFraction = 0.75
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = []string{"gzip"}
	}
	if o.Size == "" {
		o.Size = "tiny"
	}
	if o.Method == "" {
		o.Method = "multilevel"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Minute
	}
	return o
}

// Report is the harness result, serialized as the serve-smoke CI
// artifact.
type Report struct {
	Endpoint  string `json:"endpoint"`
	Clients   int    `json:"clients"`
	Requests  int    `json:"requests"`
	Distinct  int    `json:"distinct_bodies"`
	OK        int    `json:"ok"`
	Hits      int    `json:"cache_hits"`
	Misses    int    `json:"cache_misses"`
	Coalesced int    `json:"cache_coalesced"`
	// Draining counts 503 {"code":"draining"} refusals — expected when
	// the harness overlaps a shutdown, and not failures: the contract
	// is that refused requests were never accepted.
	Draining int `json:"draining"`
	// Failures counts transport errors and any unexpected status.
	Failures int `json:"failures"`
	// HitRate is (hits+coalesced)/ok: the fraction of successful
	// responses that did not pay for a fresh computation.
	HitRate        float64 `json:"hit_rate"`
	Bytes          int64   `json:"body_bytes"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	PerSecond      float64 `json:"requests_per_second"`
}

// request mirrors the serve API request schema (kept in sync by the
// golden tests on the serve side).
type request struct {
	Benchmark string `json:"benchmark"`
	Size      string `json:"size"`
	Method    string `json:"method,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
}

// Run drives the load and blocks until every request completes or ctx
// is cancelled. A cancelled context abandons unissued requests but
// still reports the issued ones.
func Run(ctx context.Context, o Options) (*Report, error) {
	o = o.withDefaults()

	// Deterministic duplicate-heavy workload: a small pool of distinct
	// bodies, each request drawing from it uniformly.
	distinct := int(float64(o.Requests)*(1-o.DupFraction) + 0.5)
	if distinct < 1 {
		distinct = 1
	}
	if distinct > o.Requests {
		distinct = o.Requests
	}
	bodies := make([][]byte, distinct)
	for i := range bodies {
		b, err := json.Marshal(request{
			Benchmark: o.Benchmarks[i%len(o.Benchmarks)],
			Size:      o.Size,
			Method:    o.Method,
			// Distinct seeds make distinct cache keys for plan and
			// estimate traffic even on the same benchmark.
			Seed: o.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	rng := rand.New(rand.NewSource(o.Seed))
	picks := make([]int, o.Requests)
	for i := range picks {
		picks[i] = rng.Intn(distinct)
	}

	rep := &Report{Endpoint: o.Endpoint, Clients: o.Clients, Requests: o.Requests, Distinct: distinct}
	url := o.BaseURL + "/v1/" + o.Endpoint
	client := &http.Client{Timeout: o.Timeout}

	var mu sync.Mutex
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.Requests || ctx.Err() != nil {
					return
				}
				disp, status, n, err := issue(ctx, client, url, bodies[picks[i]])
				mu.Lock()
				rep.Bytes += n
				switch {
				case err != nil:
					rep.Failures++
				case status == http.StatusOK:
					rep.OK++
					switch disp {
					case "hit":
						rep.Hits++
					case "coalesced":
						rep.Coalesced++
					case "miss":
						rep.Misses++
					}
				case status == http.StatusServiceUnavailable:
					rep.Draining++
				default:
					rep.Failures++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.ElapsedSeconds = time.Since(start).Seconds()
	if rep.OK > 0 {
		rep.HitRate = float64(rep.Hits+rep.Coalesced) / float64(rep.OK)
	}
	if rep.ElapsedSeconds > 0 {
		rep.PerSecond = float64(rep.OK+rep.Draining+rep.Failures) / rep.ElapsedSeconds
	}
	return rep, nil
}

// issue sends one request and returns the cache disposition header,
// status and body size.
func issue(ctx context.Context, client *http.Client, url string, body []byte) (string, int, int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return "", 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return "", 0, 0, err
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		return "", resp.StatusCode, n, fmt.Errorf("reading response: %w", err)
	}
	return resp.Header.Get("X-Mlpa-Cache"), resp.StatusCode, n, nil
}

// Summary renders the one-line human-readable summary the CLI prints.
func (r *Report) Summary() string {
	return fmt.Sprintf("%d requests (%d distinct) in %.2fs: %d ok (%d miss, %d coalesced, %d hit; hit rate %.0f%%), %d draining, %d failures",
		r.Requests, r.Distinct, r.ElapsedSeconds, r.OK, r.Misses, r.Coalesced, r.Hits, 100*r.HitRate, r.Draining, r.Failures)
}
