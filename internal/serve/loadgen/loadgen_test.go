package loadgen

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"mlpa/internal/obs"
	"mlpa/internal/serve"
)

// TestRunAgainstLiveServer drives the harness at an in-process daemon
// with duplicate-heavy traffic and checks the report's arithmetic:
// every request accounted for, no failures, and a duplicate-heavy mix
// must produce cache hits or coalesced responses.
func TestRunAgainstLiveServer(t *testing.T) {
	s := serve.New(serve.Options{Obs: obs.New(nil)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := Run(context.Background(), Options{
		BaseURL:     ts.URL,
		Endpoint:    "plan",
		Clients:     4,
		Requests:    40,
		DupFraction: 0.9,
		Benchmarks:  []string{"gzip"},
		Size:        "tiny",
		Method:      "smarts",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 40 || rep.Failures != 0 || rep.Draining != 0 {
		t.Fatalf("report: %+v, want 40 ok and no failures", rep)
	}
	if rep.Hits+rep.Misses+rep.Coalesced != rep.OK {
		t.Errorf("dispositions %d+%d+%d don't sum to ok=%d",
			rep.Hits, rep.Misses, rep.Coalesced, rep.OK)
	}
	// dup 0.9 over 40 requests leaves only a handful of distinct
	// bodies, so most responses must come from the cache.
	if rep.Hits+rep.Coalesced == 0 {
		t.Error("duplicate-heavy traffic produced zero cache hits")
	}
	if rep.Misses > rep.Distinct {
		t.Errorf("%d misses exceed %d distinct bodies", rep.Misses, rep.Distinct)
	}
	if rep.HitRate <= 0 {
		t.Errorf("hit rate %v, want > 0", rep.HitRate)
	}
	// The report must round-trip as the CI artifact.
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != *rep {
		t.Error("report did not survive a JSON round-trip")
	}
	if rep.Summary() == "" {
		t.Error("empty summary")
	}
}

// TestRunAgainstDrainingServer: refusals during drain are counted as
// draining, not failures — the graceful-shutdown contract seen from
// the client side.
func TestRunAgainstDrainingServer(t *testing.T) {
	s := serve.New(serve.Options{Obs: obs.New(nil)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.BeginDrain()

	rep, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Endpoint: "plan",
		Clients:  2,
		Requests: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Errorf("%d failures against a draining server, want 0", rep.Failures)
	}
	if rep.Draining != 10 {
		t.Errorf("draining = %d, want 10", rep.Draining)
	}
}
