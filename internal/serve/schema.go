// Package serve is the sampling-as-a-service daemon: a long-running
// HTTP/JSON API over the sampled-simulation pipeline. Clients submit a
// guest program (suite benchmark name or assembly source) plus a
// method/config selection and retrieve phase analyses, sampling plans
// and whole-program estimates.
//
// Production behaviour is the design center:
//
//   - Every response body is a pure function of the request: wall-clock
//     and host-dependent fields are excluded from the schema, so a
//     result computed once can be replayed byte-for-byte from the
//     content-hash cache (SHA-256 of the assembled program plus the
//     canonicalized request) and concurrent identical requests coalesce
//     onto a single execution. Cache disposition travels out-of-band in
//     the X-Mlpa-Cache header (miss, coalesced or hit).
//   - A bounded admission pool caps concurrent pipeline executions
//     across requests, and per-program parallel.StateCache instances
//     are shared so requests against the same guest reuse each other's
//     fast-forward work.
//   - Requests are bounded (body size, program instruction budget) and
//     time-limited; failures are structured JSON errors with stable
//     codes, never panics.
//   - Shutdown drains: accepted requests complete, new API requests are
//     rejected with 503 {"code":"draining"}, and the obs telemetry
//     routes (/metrics, /progress, pprof) stay up throughout.
//
// See docs/SERVICE.md for the endpoint and schema reference.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"mlpa/internal/bench"
	"mlpa/internal/ckpt"
	"mlpa/internal/coasts"
	"mlpa/internal/multilevel"
	"mlpa/internal/pipeline"
	"mlpa/internal/prog"
	"mlpa/internal/simpoint"
	"mlpa/internal/smarts"
)

// Request is the JSON body every /v1 endpoint accepts. Exactly one of
// Benchmark and Assembly selects the guest program; the remaining
// fields select what to compute over it. Unset fields take the
// documented defaults, and unknown fields are rejected so schema typos
// fail loudly instead of silently computing something else.
type Request struct {
	// Benchmark names a built-in suite benchmark (see mlpa.Suite).
	Benchmark string `json:"benchmark,omitempty"`
	// Assembly is guest assembly source for a custom program.
	Assembly string `json:"assembly,omitempty"`
	// Name labels a custom Assembly program (default "custom").
	Name string `json:"name,omitempty"`
	// Size is the suite scale for Benchmark programs: tiny, small or
	// ref (default tiny).
	Size string `json:"size,omitempty"`
	// Method selects the sampling method for plan/estimate: coasts,
	// simpoint, multilevel or smarts (default multilevel).
	Method string `json:"method,omitempty"`
	// Config selects the Table I machine configuration for estimate:
	// A or B (default A).
	Config string `json:"config,omitempty"`
	// Seed drives projection and clustering determinism (default 1).
	Seed int64 `json:"seed,omitempty"`
	// IntervalLen overrides the fine-grained interval length in
	// instructions. Zero picks the suite scale's interval for
	// Benchmark programs and 1/100 of the measured dynamic length
	// (minimum 1000) for Assembly programs.
	IntervalLen uint64 `json:"interval_len,omitempty"`
}

// Supported request methods, beyond the paper's three, include SMARTS
// systematic sampling.
var methods = map[string]bool{
	coasts.MethodName:     true,
	simpoint.MethodName:   true,
	multilevel.MethodName: true,
	smarts.MethodName:     true,
}

// apiError is a structured request failure: an HTTP status, a stable
// machine-readable code and a human-readable message.
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// errorBody is the JSON envelope every non-2xx API response carries.
type errorBody struct {
	Error *apiError `json:"error"`
}

func badRequest(code, format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: code, Message: fmt.Sprintf(format, args...)}
}

// Stable error codes (docs/SERVICE.md documents the full table).
const (
	codeBadJSON        = "bad_json"
	codeBadField       = "bad_field"
	codeBadProgram     = "bad_program"
	codeUnverifiable   = "unverifiable_program"
	codeBudgetExceeded = "budget_exceeded"
	codeTooLarge       = "body_too_large"
	codeProgramTooBig  = "program_too_large"
	codeNotFound       = "not_found"
	codeBadMethod      = "method_not_allowed"
	codeDraining       = "draining"
	codeTimeout        = "timeout"
	codeInternal       = "internal"
)

// decodeRequest parses and normalizes a request body. Every failure is
// a structured 4xx apiError; the decoder never panics on any input.
func decodeRequest(data []byte) (Request, *apiError) {
	var req Request
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, badRequest(codeBadJSON, "decoding request body: %v", err)
	}
	// Trailing garbage after the JSON value is a malformed body, not a
	// second request.
	if dec.More() {
		return req, badRequest(codeBadJSON, "trailing data after request object")
	}
	return normalize(req)
}

// normalize applies defaults and validates every enumerated field.
func normalize(req Request) (Request, *apiError) {
	if (req.Benchmark == "") == (req.Assembly == "") {
		return req, badRequest(codeBadField, "exactly one of benchmark and assembly must be set")
	}
	if req.Name == "" {
		req.Name = "custom"
	}
	if req.Benchmark != "" && req.Name != "custom" {
		return req, badRequest(codeBadField, "name is only meaningful with assembly")
	}
	if req.Size == "" {
		req.Size = "tiny"
	}
	if _, err := parseSize(req.Size); err != nil {
		return req, badRequest(codeBadField, "%v", err)
	}
	if req.Method == "" {
		req.Method = multilevel.MethodName
	}
	if !methods[req.Method] {
		return req, badRequest(codeBadField, "unknown method %q (want coasts, simpoint, multilevel or smarts)", req.Method)
	}
	if req.Config == "" {
		req.Config = "A"
	}
	if req.Config != "A" && req.Config != "B" {
		return req, badRequest(codeBadField, "unknown config %q (want A or B)", req.Config)
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	return req, nil
}

func parseSize(s string) (bench.Size, error) {
	switch s {
	case "tiny":
		return bench.SizeTiny, nil
	case "small":
		return bench.SizeSmall, nil
	case "ref":
		return bench.SizeRef, nil
	}
	return 0, fmt.Errorf("unknown size %q (want tiny, small or ref)", s)
}

// progHash is the content hash of a guest program: SHA-256 over its
// name, data size and complete disassembly. Two programs with equal
// hashes produce identical analyses, plans and estimates, which is
// what makes the hash a sound result-cache key component. The
// definition lives in internal/ckpt, so the hash a checkpoint set
// binds its program identity to and the hash this service caches
// under can never drift apart.
func progHash(p *prog.Program) string {
	return ckpt.ProgramHash(p)
}

// cacheKey is the canonicalized request a result is cached under. Only
// the fields that can change the endpoint's response participate:
// analyze ignores the method, config, seed and interval; plan ignores
// the config. The program is represented by its content hash, so a
// suite benchmark and byte-identical resubmissions of the same
// assembly dedupe to one entry.
type cacheKey struct {
	Endpoint string `json:"endpoint"`
	Program  string `json:"program"`
	Method   string `json:"method,omitempty"`
	Config   string `json:"config,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Interval uint64 `json:"interval,omitempty"`
}

// hash returns the key's canonical SHA-256 (hex). The JSON encoding of
// a fixed struct is deterministic, so equal keys always collide.
func (k cacheKey) hash() string {
	b, err := json.Marshal(k)
	if err != nil {
		// A struct of strings and integers cannot fail to marshal; keep
		// the key usable even if it somehow does.
		b = []byte(fmt.Sprintf("%+v", k))
	}
	sum := sha256.Sum256(b)
	return k.Endpoint + ":" + hex.EncodeToString(sum[:])
}

func keyFor(endpoint, programHash string, req Request) cacheKey {
	k := cacheKey{Endpoint: endpoint, Program: programHash}
	switch endpoint {
	case "analyze":
		// Static analysis depends on the program alone.
	case "plan":
		k.Method, k.Seed, k.Interval = req.Method, req.Seed, req.IntervalLen
	case "estimate":
		k.Method, k.Config, k.Seed, k.Interval = req.Method, req.Config, req.Seed, req.IntervalLen
	case "ckpt":
		// Checkpoint sets capture configuration-independent architectural
		// state, so the config is deliberately absent: every sensitivity
		// config of the same plan shares one set.
		k.Method, k.Seed, k.Interval = req.Method, req.Seed, req.IntervalLen
	}
	return k
}

// ProgramInfo describes the resolved guest program; every response
// carries one, so clients can verify which content hash served them.
type ProgramInfo struct {
	Name         string `json:"name"`
	Hash         string `json:"hash"`
	Instructions int    `json:"instructions"`
	BasicBlocks  int    `json:"basic_blocks"`
	DataSize     int64  `json:"data_size"`
}

// LoopInfo is one natural loop of the static forest.
type LoopInfo struct {
	Head   int64 `json:"head"`
	Depth  int   `json:"depth"`
	Blocks int   `json:"blocks"`
}

// AnalyzeResponse is the /v1/analyze response body: the static view of
// the program (verifier, CFG, natural-loop forest). It involves no
// guest execution, so it is cheap enough to serve unauthenticated
// traffic and fuzzers alike.
type AnalyzeResponse struct {
	Program  ProgramInfo `json:"program"`
	Verified bool        `json:"verified"`
	Loops    []LoopInfo  `json:"loops"`
	MaxDepth int         `json:"max_loop_depth"`
}

// PointJSON is one simulation point of a plan.
type PointJSON struct {
	Start  uint64  `json:"start"`
	End    uint64  `json:"end"`
	Weight float64 `json:"weight"`
	Level  int     `json:"level"`
}

// PlanResponse is the /v1/plan response body.
type PlanResponse struct {
	Program         ProgramInfo `json:"program"`
	Benchmark       string      `json:"benchmark"`
	Method          string      `json:"method"`
	TotalInsts      uint64      `json:"total_insts"`
	IntervalLen     uint64      `json:"interval_len"`
	Points          []PointJSON `json:"points"`
	DetailedInsts   uint64      `json:"detailed_insts"`
	FunctionalInsts uint64      `json:"functional_insts"`
	DetailedFrac    float64     `json:"detailed_fraction"`
	LastPosition    float64     `json:"last_position"`
}

// PointRecordJSON is one executed point of an estimate. It mirrors
// pipeline.PointRecord minus the wall-clock fields: the response body
// must stay a pure function of the request so cached replays are
// byte-identical.
type PointRecordJSON struct {
	Index      int     `json:"index"`
	Start      uint64  `json:"start"`
	End        uint64  `json:"end"`
	Weight     float64 `json:"weight"`
	Insts      uint64  `json:"insts"`
	Cycles     uint64  `json:"cycles"`
	CPI        float64 `json:"cpi"`
	L1Hit      float64 `json:"l1_hit"`
	L2Hit      float64 `json:"l2_hit"`
	L1Accesses uint64  `json:"l1_accesses"`
	L1Hits     uint64  `json:"l1_hits"`
	L2Accesses uint64  `json:"l2_accesses"`
	L2Hits     uint64  `json:"l2_hits"`

	// Checkpoint metadata: the static live-in summary at the point
	// boundary (the portable-checkpoint storage schema), so detailed
	// simulation of any point can later be sharded to a worker holding
	// only this state.
	LiveInPC  int64  `json:"livein_pc"`
	LiveInInt uint32 `json:"livein_int"`
	LiveInFP  uint32 `json:"livein_fp"`
	LiveInMem bool   `json:"livein_mem"`
}

// EstimateResponse is the /v1/estimate response body: the weighted
// whole-program estimates and per-point records of one executed plan.
type EstimateResponse struct {
	Program         ProgramInfo       `json:"program"`
	Benchmark       string            `json:"benchmark"`
	Method          string            `json:"method"`
	Config          string            `json:"config"`
	CPI             float64           `json:"cpi"`
	L1Hit           float64           `json:"l1_hit"`
	L2Hit           float64           `json:"l2_hit"`
	Points          int               `json:"points"`
	DetailedInsts   uint64            `json:"detailed_insts"`
	FunctionalInsts uint64            `json:"functional_insts"`
	TotalInsts      uint64            `json:"total_insts"`
	PointRecords    []PointRecordJSON `json:"point_records"`
}

// encodeEstimate builds the deterministic response body for an
// executed plan. Wall-clock fields are deliberately dropped.
func encodeEstimate(info ProgramInfo, cfgName string, est *pipeline.Estimate) EstimateResponse {
	resp := EstimateResponse{
		Program:         info,
		Benchmark:       est.Benchmark,
		Method:          est.Method,
		Config:          cfgName,
		CPI:             est.CPI,
		L1Hit:           est.L1Hit,
		L2Hit:           est.L2Hit,
		Points:          est.Points,
		DetailedInsts:   est.DetailedInsts,
		FunctionalInsts: est.FunctionalInsts,
		TotalInsts:      est.TotalInsts,
		PointRecords:    make([]PointRecordJSON, len(est.PointRecords)),
	}
	for i, r := range est.PointRecords {
		resp.PointRecords[i] = PointRecordJSON{
			Index:      r.Index,
			Start:      r.Start,
			End:        r.End,
			Weight:     r.Weight,
			Insts:      r.Insts,
			Cycles:     r.Cycles,
			CPI:        r.CPI,
			L1Hit:      r.L1Hit,
			L2Hit:      r.L2Hit,
			L1Accesses: r.L1Accesses,
			L1Hits:     r.L1Hits,
			L2Accesses: r.L2Accesses,
			L2Hits:     r.L2Hits,
			LiveInPC:   r.LiveIn.PC,
			LiveInInt:  r.LiveIn.Int,
			LiveInFP:   r.LiveIn.FP,
			LiveInMem:  r.LiveIn.Mem,
		}
	}
	return resp
}

// marshalBody encodes a response value into the canonical body bytes
// the cache stores: indented JSON with a trailing newline.
func marshalBody(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// asAPIError coerces any failure into an apiError: structured errors
// pass through, context failures map to the timeout code, and
// everything else — which for a probed, verified program should not
// happen — is an internal error.
func asAPIError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return &apiError{Status: http.StatusServiceUnavailable, Code: codeTimeout, Message: err.Error()}
	}
	return &apiError{Status: http.StatusInternalServerError, Code: codeInternal, Message: err.Error()}
}
