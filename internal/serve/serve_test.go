package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mlpa/internal/config"
	"mlpa/internal/obs"
	"mlpa/internal/pipeline"
)

// testAsm is the standing test guest: two loop phases with distinct
// instruction mixes (ALU-only, then memory-heavy), long enough to
// yield a multi-interval plan and short enough that estimates run in
// milliseconds.
const testAsm = `
; phase A: arithmetic loop
    addi r1, r0, 3000
loopA:
    addi r2, r2, 3
    addi r3, r3, 5
    addi r1, r1, -1
    bne  r1, r0, loopA
; phase B: memory loop
    addi r1, r0, 3000
loopB:
    ld   r4, (r5)
    st   r4, 8(r5)
    addi r5, r5, 16
    addi r1, r1, -1
    bne  r1, r0, loopB
    halt
`

func newTestServer(t *testing.T, o Options) (*Server, *httptest.Server) {
	t.Helper()
	if o.Obs == nil {
		o.Obs = obs.New(nil)
	}
	s := New(o)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, b
}

func asmBody(method string, seed int64) string {
	return fmt.Sprintf(`{"assembly": %q, "method": %q, "seed": %d}`, testAsm, method, seed)
}

// waitCounter polls a registry counter until it reaches want.
func waitCounter(t *testing.T, reg *obs.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counter(name).Value() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("counter %s = %d, want >= %d", name, reg.Counter(name).Value(), want)
}

// TestCoalescingIdenticalRequests is the tentpole concurrency test: N
// identical concurrent estimate requests produce byte-identical bodies
// and exactly one pipeline execution — one miss, N-1 coalesced — and a
// later identical request replays the cached bytes.
func TestCoalescingIdenticalRequests(t *testing.T) {
	const n = 8
	rt := obs.New(nil)
	s, ts := newTestServer(t, Options{Obs: rt, RequestWorkers: 2})

	// Gate the single expected computation open until every waiter has
	// registered, so coalescing is deterministic, not a lucky race.
	gate := make(chan struct{})
	started := make(chan string, n)
	s.testHookComputeStart = func(endpoint string) {
		started <- endpoint
		<-gate
	}

	body := asmBody("multilevel", 1)
	type result struct {
		status int
		disp   string
		body   []byte
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, b := post(t, ts.URL+"/v1/estimate", body)
			results <- result{resp.StatusCode, resp.Header.Get("X-Mlpa-Cache"), b}
		}()
	}

	// Exactly one computation starts; the other n-1 requests must
	// register as coalesced waiters on it.
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("no computation started")
	}
	waitCounter(t, rt.Metrics(), "serve.cache.coalesced", n-1)
	select {
	case ep := <-started:
		t.Fatalf("second computation started (%s); identical requests must coalesce", ep)
	default:
	}
	close(gate)
	wg.Wait()
	close(results)

	var miss, coalesced int
	var first []byte
	for r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("status %d, body %s", r.status, r.body)
		}
		switch r.disp {
		case dispMiss:
			miss++
		case dispCoalesced:
			coalesced++
		default:
			t.Errorf("disposition %q, want miss or coalesced", r.disp)
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Errorf("response bodies differ across coalesced requests")
		}
	}
	if miss != 1 || coalesced != n-1 {
		t.Errorf("dispositions: %d miss, %d coalesced; want 1 and %d", miss, coalesced, n-1)
	}
	if got := rt.Metrics().Counter("serve.executions").Value(); got != 1 {
		t.Errorf("serve.executions = %d, want exactly 1 for %d identical requests", got, n)
	}

	// A later identical request is a pure cache hit: same bytes, still
	// one execution.
	s.testHookComputeStart = nil
	resp, b := post(t, ts.URL+"/v1/estimate", body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Mlpa-Cache") != dispHit {
		t.Fatalf("replay: status %d, disposition %q", resp.StatusCode, resp.Header.Get("X-Mlpa-Cache"))
	}
	if !bytes.Equal(first, b) {
		t.Errorf("cached replay differs from original body")
	}
	if got := rt.Metrics().Counter("serve.executions").Value(); got != 1 {
		t.Errorf("serve.executions = %d after replay, want 1", got)
	}
}

// TestConcurrentDistinctMatchSingleShot: distinct concurrent requests
// served with RequestWorkers > 1 and a shared state cache are
// bit-identical to a sequential single-shot ExecutePlan with one
// worker and no shared state — the service preserves the repo's
// determinism contract under production concurrency.
func TestConcurrentDistinctMatchSingleShot(t *testing.T) {
	const n = 3
	_, ts := newTestServer(t, Options{RequestWorkers: 3, MaxConcurrent: n})

	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := post(t, ts.URL+"/v1/estimate", asmBody("multilevel", int64(i+1)))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("seed %d: status %d, body %s", i+1, resp.StatusCode, b)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()

	// Reference: an isolated server instance computing each request
	// sequentially via direct single-shot ExecutePlan, Workers = 1, no
	// shared caches, no HTTP.
	ref := New(Options{})
	for i := 0; i < n; i++ {
		req, ae := decodeRequest([]byte(asmBody("multilevel", int64(i+1))))
		if ae != nil {
			t.Fatal(ae)
		}
		entry, ae := ref.programs.resolve(req)
		if ae != nil {
			t.Fatal(ae)
		}
		plan, _, _, ae := ref.selectFor(entry, req)
		if ae != nil {
			t.Fatal(ae)
		}
		cfg, err := config.ByName(req.Config)
		if err != nil {
			t.Fatal(err)
		}
		est, err := pipeline.ExecutePlan(entry.prog, plan, cfg, pipeline.ExecOptions{
			Warmup:       execWarmup,
			DetailLeadIn: execDetailLeadIn,
			Workers:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := marshalBody(encodeEstimate(ref.programInfo(entry), req.Config, est))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bodies[i], want) {
			t.Errorf("seed %d: served body differs from single-shot sequential execution", i+1)
		}
	}
}

// TestErrorPaths pins the structured-error contract: every malformed
// request maps to a stable 4xx code with a JSON envelope.
func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 4096, MaxProgramInsts: 5000, MaxProgramCode: 4})
	cases := []struct {
		name     string
		endpoint string
		body     string
		status   int
		code     string
	}{
		{"bad json", "analyze", "{not json", http.StatusBadRequest, codeBadJSON},
		{"trailing data", "analyze", `{"benchmark":"gzip"} extra`, http.StatusBadRequest, codeBadJSON},
		{"unknown field", "analyze", `{"benchmark":"gzip","frobnicate":1}`, http.StatusBadRequest, codeBadJSON},
		{"neither program", "analyze", `{}`, http.StatusBadRequest, codeBadField},
		{"both programs", "analyze", `{"benchmark":"gzip","assembly":"halt"}`, http.StatusBadRequest, codeBadField},
		{"name without assembly", "analyze", `{"benchmark":"gzip","name":"x"}`, http.StatusBadRequest, codeBadField},
		{"unknown benchmark", "analyze", `{"benchmark":"doom"}`, http.StatusBadRequest, codeBadField},
		{"unknown size", "analyze", `{"benchmark":"gzip","size":"xl"}`, http.StatusBadRequest, codeBadField},
		{"unknown method", "plan", `{"benchmark":"gzip","method":"magic"}`, http.StatusBadRequest, codeBadField},
		{"unknown config", "estimate", `{"benchmark":"gzip","config":"Z"}`, http.StatusBadRequest, codeBadField},
		{"malformed assembly", "analyze", `{"assembly":"bogus r9, q3"}`, http.StatusBadRequest, codeBadProgram},
		{"non-halting guest", "plan", `{"assembly":"loop:\n addi r1, r1, 1\n bne r1, r0, loop\n halt"}`, http.StatusUnprocessableEntity, codeBudgetExceeded},
		{"program too large", "analyze", `{"assembly":"addi r1, r0, 1\n addi r2, r0, 1\n addi r3, r0, 1\n addi r4, r0, 1\n halt"}`, http.StatusUnprocessableEntity, codeProgramTooBig},
		{"oversized body", "analyze", `{"assembly":"` + strings.Repeat("; pad\\n", 2000) + `halt"}`, http.StatusRequestEntityTooLarge, codeTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, b := post(t, ts.URL+"/v1/"+tc.endpoint, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.status, b)
			}
			if want := fmt.Sprintf("%q", tc.code); !strings.Contains(string(b), want) {
				t.Errorf("body %s missing code %s", b, want)
			}
		})
	}

	t.Run("wrong verb", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/analyze")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET status %d, want 405", resp.StatusCode)
		}
	})
	t.Run("unknown route", func(t *testing.T) {
		resp, _ := post(t, ts.URL+"/v1/nope", "{}")
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status %d, want 404", resp.StatusCode)
		}
	})
}

// TestHealthAndTelemetryRoutes: the daemon self-reports and exposes
// the obs registry on its own mux.
func TestHealthAndTelemetryRoutes(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	for _, path := range []string{"/healthz", "/metrics", "/progress", "/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	if s.Draining() {
		t.Error("fresh server reports draining")
	}
}

// TestSuiteBenchmarkRequests: suite programs resolve through the
// registry shortcut and analyze/plan round-trip.
func TestSuiteBenchmarkRequests(t *testing.T) {
	rt := obs.New(nil)
	_, ts := newTestServer(t, Options{Obs: rt})
	body := `{"benchmark":"gzip","size":"tiny","method":"smarts"}`
	resp, b := post(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d, body %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), `"benchmark": "gzip"`) {
		t.Errorf("plan body missing benchmark name: %s", b)
	}
	// Same benchmark again: the program registry must reuse the entry.
	resp, _ = post(t, ts.URL+"/v1/plan", body)
	if got := resp.Header.Get("X-Mlpa-Cache"); got != dispHit {
		t.Errorf("repeat plan disposition %q, want hit", got)
	}
	if rt.Metrics().Counter("serve.programs.reused").Value() == 0 {
		t.Error("program registry reuse counter is zero after repeat request")
	}
}
