package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"mlpa/internal/obs"
)

// TestGracefulShutdownUnderBurst is the drain contract test: with a
// burst of distinct requests held mid-computation, BeginDrain refuses
// new arrivals with 503 {"code":"draining"} while every already
// accepted request runs to completion with a 200, and Shutdown returns
// cleanly once the last one exits. Telemetry routes stay up
// throughout.
func TestGracefulShutdownUnderBurst(t *testing.T) {
	const burst = 4
	rt := obs.New(nil)
	s, ts := newTestServer(t, Options{Obs: rt, MaxConcurrent: burst})

	gate := make(chan struct{})
	started := make(chan string, burst)
	s.testHookComputeStart = func(endpoint string) {
		started <- endpoint
		<-gate
	}

	// Distinct seeds make distinct cache keys, so each burst request is
	// its own held computation.
	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, burst)
	for i := 0; i < burst; i++ {
		go func(i int) {
			resp, b := post(t, ts.URL+"/v1/plan", asmBody("smarts", int64(i+1)))
			results <- result{resp.StatusCode, b}
		}(i)
	}
	for i := 0; i < burst; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d computations started", i, burst)
		}
	}
	if got := s.InFlight(); got != burst {
		t.Fatalf("InFlight = %d mid-burst, want %d", got, burst)
	}

	// Drain begins mid-flight.
	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}

	// Late arrivals are refused up front with the structured code, and
	// never reach a computation.
	resp, b := post(t, ts.URL+"/v1/plan", asmBody("smarts", 99))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("late request: status %d, want 503 (body %s)", resp.StatusCode, b)
	}
	if want := `"code": "draining"`; !strings.Contains(string(b), want) {
		t.Errorf("late request body %s missing %q", b, want)
	}

	// Health flips to draining; metrics stay served.
	for path, want := range map[string]int{"/healthz": http.StatusServiceUnavailable, "/metrics": http.StatusOK} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != want {
			t.Errorf("GET %s while draining: status %d, want %d", path, r.StatusCode, want)
		}
	}

	// Shutdown must block on the held burst...
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned (%v) with %d requests still held", err, burst)
	case <-time.After(50 * time.Millisecond):
	}

	// ...and every accepted request completes successfully once
	// released.
	close(gate)
	for i := 0; i < burst; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Errorf("burst request: status %d, body %s — accepted requests must complete", r.status, r.body)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
	if got := s.InFlight(); got != 0 {
		t.Errorf("InFlight = %d after shutdown, want 0", got)
	}
}

// TestShutdownDeadline: a context that expires mid-drain aborts
// Shutdown with the context error instead of hanging forever.
func TestShutdownDeadline(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	gate := make(chan struct{})
	s.testHookComputeStart = func(string) { <-gate }
	go func() {
		// The request is abandoned mid-drain; transport errors are fine.
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json",
			strings.NewReader(asmBody("smarts", 1)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	close(gate)
}

// TestStartShutdownRealListener exercises the daemon lifecycle over a
// real TCP listener: Start binds, requests flow, Shutdown drains and
// the listener closes.
func TestStartShutdownRealListener(t *testing.T) {
	s := New(Options{Obs: obs.New(nil)})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	url := "http://" + s.Addr().String()
	resp, b := post(t, url+"/v1/analyze", asmBody("multilevel", 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze over TCP: status %d, body %s", resp.StatusCode, b)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
}
