package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"mlpa/internal/bench"
	"mlpa/internal/ckpt"
	"mlpa/internal/obs"
	"mlpa/internal/parallel"
	"mlpa/internal/pipeline"
	"mlpa/internal/prog"
	"mlpa/internal/staticanalysis"
)

// Cache dispositions reported in the X-Mlpa-Cache response header.
const (
	dispMiss      = "miss"      // this request executed the computation
	dispCoalesced = "coalesced" // joined an identical in-flight computation
	dispHit       = "hit"       // served from a completed cache entry
)

// resultCache is the content-hash response cache with single-flight
// coalescing: at most one computation runs per key, waiters share its
// outcome, and completed bodies are replayed byte-for-byte. Failed
// computations are delivered to their waiters but never cached, so a
// transient failure (timeout, cancellation) does not poison the key.
type resultCache struct {
	reg *obs.Registry
	max int

	mu      sync.Mutex
	entries map[string]*resultEntry
	order   []string // completed keys in insertion order, for eviction
	bytes   int64
}

type resultEntry struct {
	done chan struct{}
	body []byte
	err  *apiError
}

func newResultCache(max int, reg *obs.Registry) *resultCache {
	return &resultCache{reg: reg, max: max, entries: make(map[string]*resultEntry)}
}

// do returns the response body for key, computing it single-flight.
// The context only governs how long this caller waits on an in-flight
// computation owned by another request; compute itself carries its own
// deadline so a waiter's disconnection never aborts work other waiters
// share.
func (c *resultCache) do(ctx context.Context, key string, compute func() ([]byte, *apiError)) ([]byte, string, *apiError) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		disp := dispCoalesced
		select {
		case <-e.done:
			disp = dispHit
			c.reg.Counter("serve.cache.hits").Inc()
		default:
			c.reg.Counter("serve.cache.coalesced").Inc()
		}
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, disp, &apiError{Status: http.StatusServiceUnavailable, Code: codeTimeout,
				Message: "request expired while waiting for an in-flight identical computation: " + ctx.Err().Error()}
		}
		return e.body, disp, e.err
	}
	e := &resultEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.reg.Counter("serve.cache.misses").Inc()

	e.body, e.err = compute()
	close(e.done)

	c.mu.Lock()
	if e.err != nil {
		delete(c.entries, key)
	} else {
		c.order = append(c.order, key)
		c.bytes += int64(len(e.body))
		c.evictLocked()
		c.reg.Gauge("serve.cache.entries").Set(float64(len(c.entries)))
		c.reg.Gauge("serve.cache.bytes").Set(float64(c.bytes))
	}
	c.mu.Unlock()
	return e.body, dispMiss, e.err
}

// evictLocked drops the oldest completed entries until the bound
// holds. In-flight entries are never in order, so they survive.
func (c *resultCache) evictLocked() {
	for c.max > 0 && len(c.order) > c.max {
		key := c.order[0]
		c.order = c.order[1:]
		if e, ok := c.entries[key]; ok {
			c.bytes -= int64(len(e.body))
			delete(c.entries, key)
			c.reg.Counter("serve.cache.evictions").Inc()
		}
	}
}

// Checkpoint dispositions reported in the X-Mlpa-Ckpt response header
// (estimate cache misses only: replayed and coalesced responses did no
// checkpoint work).
const (
	ckptBuild = "build" // this request built the plan's checkpoint set
	ckptReuse = "reuse" // the set already existed (or was being built)
)

// ckptCache stores built checkpoint sets under the plan-identity key —
// program content hash plus the plan-determining request fields, the
// config excluded — with single-flight construction: at most one
// builder runs per key and every waiter shares its set. Failed builds
// are not cached. Entries are bounded FIFO like the result cache.
type ckptCache struct {
	reg *obs.Registry
	max int

	mu      sync.Mutex
	entries map[string]*ckptEntry
	order   []string
	bytes   int64
}

type ckptEntry struct {
	done chan struct{}
	set  *ckpt.Set
	err  error
}

func newCkptCache(max int, reg *obs.Registry) *ckptCache {
	return &ckptCache{reg: reg, max: max, entries: make(map[string]*ckptEntry)}
}

// get returns the checkpoint set for key, building it single-flight.
// The disposition is ckptBuild when this caller ran the build and
// ckptReuse when the set already existed or another builder's result
// was shared. The context bounds only this caller's wait on a build in
// flight elsewhere.
func (c *ckptCache) get(ctx context.Context, key string, build func() (*ckpt.Set, error)) (*ckpt.Set, string, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.reg.Counter("serve.ckpt.reuses").Inc()
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, ckptReuse, fmt.Errorf("waiting for in-flight checkpoint build: %w", ctx.Err())
		}
		return e.set, ckptReuse, e.err
	}
	e := &ckptEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.reg.Counter("serve.ckpt.builds").Inc()

	e.set, e.err = build()
	close(e.done)

	c.mu.Lock()
	if e.err != nil {
		delete(c.entries, key)
	} else {
		c.order = append(c.order, key)
		c.bytes += int64(e.set.ApproxBytes())
		c.evictLocked()
		c.reg.Gauge("serve.ckpt.entries").Set(float64(len(c.entries)))
		c.reg.Gauge("serve.ckpt.bytes").Set(float64(c.bytes))
	}
	c.mu.Unlock()
	return e.set, ckptBuild, e.err
}

func (c *ckptCache) evictLocked() {
	for c.max > 0 && len(c.order) > c.max {
		key := c.order[0]
		c.order = c.order[1:]
		if e, ok := c.entries[key]; ok {
			c.bytes -= int64(e.set.ApproxBytes())
			delete(c.entries, key)
			c.reg.Counter("serve.ckpt.evictions").Inc()
		}
	}
}

// programEntry is one resolved guest program and the expensive state
// shared across every request against it: the canonical *prog.Program
// (whose Aux caches hold predecode, CFG and dataflow), the functional
// StateCache, and the memoized admission probe.
type programEntry struct {
	prog *prog.Program
	hash string
	// states is the shared fast-forward cache; concurrent requests
	// against this program reuse each other's functional work.
	states *parallel.StateCache

	probeOnce sync.Once
	length    uint64
	probeErr  *apiError
}

// measuredLength runs the bounded admission probe once per program:
// preflight verification plus a functional run to completion within
// maxInsts. Plan and estimate requests refuse guests that fail it.
func (e *programEntry) measuredLength(maxInsts uint64) (uint64, *apiError) {
	e.probeOnce.Do(func() {
		if err := staticanalysis.Preflight(e.prog); err != nil {
			e.probeErr = &apiError{Status: http.StatusUnprocessableEntity, Code: codeUnverifiable, Message: err.Error()}
			return
		}
		n, err := pipeline.MeasureLength(e.prog, maxInsts)
		if err != nil {
			e.probeErr = &apiError{Status: http.StatusUnprocessableEntity, Code: codeBudgetExceeded, Message: err.Error()}
			return
		}
		e.length = n
	})
	return e.length, e.probeErr
}

// programCache resolves requests to canonical program entries, keyed
// by content hash (with a benchmark/size shortcut so suite programs
// are not rebuilt per request). Bounded: the oldest entries are
// evicted, dropping their state caches with them.
type programCache struct {
	reg *obs.Registry
	max int
	// maxCode bounds the static instruction count of submitted
	// assembly: even purely static analysis is superlinear on
	// pathological control flow, so an untrusted guest's size is
	// capped before any analysis runs. Suite programs are exempt.
	maxCode int

	mu      sync.Mutex
	byHash  map[string]*programEntry
	bySuite map[string]*programEntry
	order   []string // hashes in insertion order
}

func newProgramCache(max, maxCode int, reg *obs.Registry) *programCache {
	return &programCache{
		reg:     reg,
		max:     max,
		maxCode: maxCode,
		byHash:  make(map[string]*programEntry),
		bySuite: make(map[string]*programEntry),
	}
}

// resolve returns the canonical entry for the request's guest program,
// assembling or generating it on first use.
func (pc *programCache) resolve(req Request) (*programEntry, *apiError) {
	if req.Benchmark != "" {
		suiteKey := req.Benchmark + "/" + req.Size
		pc.mu.Lock()
		if e, ok := pc.bySuite[suiteKey]; ok {
			pc.mu.Unlock()
			pc.reg.Counter("serve.programs.reused").Inc()
			return e, nil
		}
		pc.mu.Unlock()
		spec, err := bench.ByName(req.Benchmark)
		if err != nil {
			return nil, badRequest(codeBadField, "%v", err)
		}
		size, serr := parseSize(req.Size)
		if serr != nil {
			return nil, badRequest(codeBadField, "%v", serr)
		}
		p, err := spec.Program(size)
		if err != nil {
			return nil, &apiError{Status: http.StatusUnprocessableEntity, Code: codeBadProgram, Message: err.Error()}
		}
		return pc.intern(p, suiteKey), nil
	}
	p, err := prog.Assemble(req.Name, req.Assembly)
	if err != nil {
		return nil, badRequest(codeBadProgram, "assembling %q: %v", req.Name, err)
	}
	if pc.maxCode > 0 && len(p.Code) > pc.maxCode {
		return nil, &apiError{Status: http.StatusUnprocessableEntity, Code: codeProgramTooBig,
			Message: fmt.Sprintf("program has %d instructions, limit %d", len(p.Code), pc.maxCode)}
	}
	return pc.intern(p, ""), nil
}

// intern dedupes p by content hash, registering it (and the suite
// shortcut, when given) on first sight. Concurrent first sights race
// benignly: one entry wins, the loser's program is garbage.
func (pc *programCache) intern(p *prog.Program, suiteKey string) *programEntry {
	hash := progHash(p)
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.byHash[hash]
	if !ok {
		e = &programEntry{prog: p, hash: hash, states: parallel.NewStateCache(p, 0, pc.reg)}
		pc.byHash[hash] = e
		pc.order = append(pc.order, hash)
		pc.evictLocked()
		pc.reg.Gauge("serve.programs.cached").Set(float64(len(pc.byHash)))
	} else {
		pc.reg.Counter("serve.programs.reused").Inc()
	}
	if suiteKey != "" {
		pc.bySuite[suiteKey] = e
	}
	return e
}

func (pc *programCache) evictLocked() {
	for pc.max > 0 && len(pc.order) > pc.max {
		hash := pc.order[0]
		pc.order = pc.order[1:]
		if victim, ok := pc.byHash[hash]; ok {
			delete(pc.byHash, hash)
			for k, e := range pc.bySuite {
				if e == victim {
					delete(pc.bySuite, k)
				}
			}
			pc.reg.Counter("serve.programs.evicted").Inc()
		}
	}
}
