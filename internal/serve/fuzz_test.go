package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzServeRequest throws arbitrary bytes at the API as request
// bodies: malformed JSON, schema violations, garbage and adversarial
// assembly. The contract under fuzz is the production robustness
// contract — every input maps to a structured response, never a panic
// and never a 5xx. The target uses /v1/analyze because it is purely
// static (no guest execution), so the fuzzer explores the decode,
// normalize, assemble and verify surfaces without paying for
// simulation.
func FuzzServeRequest(f *testing.F) {
	f.Add([]byte(`{"benchmark":"gzip"}`))
	f.Add([]byte(`{"assembly":"halt"}`))
	f.Add([]byte(`{"assembly":"loop:\n addi r1, r1, 1\n bne r1, r0, loop\n halt","seed":7}`))
	f.Add([]byte(`{"benchmark":"gzip","assembly":"halt"}`))
	f.Add([]byte(`{"benchmark":"doom","size":"xl","method":"magic","config":"Z"}`))
	f.Add([]byte(`{not json`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"assembly":"` + "\x00\xff" + `"}`))
	f.Add([]byte(`{"benchmark":"gzip"} trailing`))
	f.Add([]byte(``))

	s := New(Options{MaxBodyBytes: 1 << 14, MaxProgramInsts: 10000, MaxProgramCode: 2048})
	handler := s.Handler()

	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/analyze", bytes.NewReader(data))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		// A panic here fails the fuzz run — that is the assertion.
		handler.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("status %d for body %q — malformed input must be a 4xx, body: %s",
				rec.Code, data, rec.Body.Bytes())
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("non-JSON response for body %q: %s", data, rec.Body.Bytes())
		}
	})
}

// TestFuzzSeedsDirect replays the fuzz seed corpus as a plain test so
// `go test` (without -fuzz) still pins the never-5xx property.
func TestFuzzSeedsDirect(t *testing.T) {
	seeds := [][]byte{
		[]byte(`{"benchmark":"gzip"}`),
		[]byte(`{"assembly":"halt"}`),
		[]byte(`{not json`),
		[]byte(`null`),
		[]byte(``),
		[]byte(`{"benchmark":"gzip","assembly":"halt"}`),
	}
	s := New(Options{MaxBodyBytes: 1 << 16, MaxProgramInsts: 10000})
	handler := s.Handler()
	for _, data := range seeds {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/analyze", bytes.NewReader(data))
		handler.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Errorf("status %d for seed %q", rec.Code, data)
		}
	}
}
