package prog

import (
	"testing"
)

// FuzzAssembleRoundTrip: any source the assembler accepts must
// disassemble to source the assembler accepts again, producing the
// identical instruction stream — the textual form is a lossless
// encoding of the program. The assembler may reject input (that is its
// job); it must never panic, and it must never accept-then-mangle.
func FuzzAssembleRoundTrip(f *testing.F) {
	for _, p := range Examples() {
		f.Add(p.Name, p.Disassemble())
	}
	f.Add("tiny", "start:\n  li r1, 3\n  halt\n")
	f.Add("empty", "")
	f.Add("junk", "not an instruction\n\x00\xff")
	f.Add("label-only", "loop:\n")
	f.Fuzz(func(t *testing.T, name, src string) {
		p, err := Assemble(name, src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		dis := p.Disassemble()
		p2, err := Assemble(name, dis)
		if err != nil {
			t.Fatalf("disassembly of accepted program rejected: %v\nsource:\n%s\ndisassembly:\n%s", err, src, dis)
		}
		if len(p2.Code) != len(p.Code) {
			t.Fatalf("round-trip length %d != %d", len(p2.Code), len(p.Code))
		}
		for i := range p.Code {
			if p2.Code[i] != p.Code[i] {
				t.Fatalf("round-trip instruction %d: %v != %v\ndisassembly:\n%s", i, p2.Code[i], p.Code[i], dis)
			}
		}
		if p2.DataSize != p.DataSize {
			t.Fatalf("round-trip DataSize %d != %d", p2.DataSize, p.DataSize)
		}
		// The round-trip must be a fixed point: disassembling again
		// yields the same text.
		if dis2 := p2.Disassemble(); dis2 != dis {
			t.Fatalf("disassembly not a fixed point:\nfirst:\n%s\nsecond:\n%s", dis, dis2)
		}
	})
}
