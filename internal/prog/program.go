// Package prog represents executable programs for the mini ISA:
// instruction sequences with labels, basic-block decomposition, a
// control-flow graph, and static loop metadata. It also provides a
// structured Builder for generating programs and a text assembler.
package prog

import (
	"fmt"
	"sort"
	"sync"

	"mlpa/internal/isa"
)

// Program is a complete executable for the emulator and the detailed
// simulator.
type Program struct {
	Name   string
	Code   []isa.Inst
	Labels map[string]int64 // label -> instruction index

	// Loops carries static loop metadata recorded by the Builder
	// (ground truth used by tests; the dynamic profiler must discover
	// the same structure on its own).
	Loops []LoopInfo

	// DataSize is the number of bytes of data memory the program
	// expects to be available starting at address 0.
	DataSize int64

	blocks  []BasicBlock
	blockOf []int32 // instruction index -> basic block ID

	// aux caches derived representations keyed by a consumer-specific
	// key (see Aux). Attaching caches to the Program keeps their
	// lifetime tied to the program's instead of pinning dead programs
	// in a global registry.
	aux sync.Map
}

// LoopInfo describes a static loop recorded by the Builder.
type LoopInfo struct {
	Name  string
	Head  int64 // first instruction of the loop body
	End   int64 // first instruction after the loop (backward branch is at End-1)
	Depth int   // nesting depth, 0 = outermost
}

// BasicBlock is a maximal single-entry straight-line code region
// [Start, End) in instruction indices.
type BasicBlock struct {
	ID    int
	Start int64
	End   int64
}

// Len returns the number of instructions in the block.
func (b BasicBlock) Len() int64 { return b.End - b.Start }

// Validate checks structural invariants: branch targets in range, a
// halt instruction reachable, labels consistent.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("prog %q: empty program", p.Name)
	}
	n := int64(len(p.Code))
	haveHalt := false
	for i, in := range p.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("prog %q: instruction %d: invalid opcode", p.Name, i)
		}
		if in.Op == isa.OpHalt {
			haveHalt = true
		}
		if in.Op.IsBranch() && in.Op != isa.OpJr {
			if in.Targ < 0 || in.Targ >= n {
				return fmt.Errorf("prog %q: instruction %d (%s): target %d out of range [0,%d)", p.Name, i, in, in.Targ, n)
			}
		}
	}
	if !haveHalt {
		return fmt.Errorf("prog %q: no halt instruction", p.Name)
	}
	for name, idx := range p.Labels {
		if idx < 0 || idx > n {
			return fmt.Errorf("prog %q: label %q out of range", p.Name, name)
		}
	}
	return nil
}

// BasicBlocks returns the basic-block decomposition, computing and
// caching it on first use.
func (p *Program) BasicBlocks() []BasicBlock {
	if p.blocks == nil {
		p.computeBlocks()
	}
	return p.blocks
}

// NumBlocks returns the number of basic blocks.
func (p *Program) NumBlocks() int { return len(p.BasicBlocks()) }

// BlockOf returns the ID of the basic block containing instruction
// index pc. It panics if pc is out of range.
func (p *Program) BlockOf(pc int64) int {
	if p.blockOf == nil {
		p.computeBlocks()
	}
	return int(p.blockOf[pc])
}

// BlockTable returns the instruction-index-to-block-ID table; entry i
// is the block containing instruction i. The caller must not modify
// the returned slice.
func (p *Program) BlockTable() []int32 {
	if p.blockOf == nil {
		p.computeBlocks()
	}
	return p.blockOf
}

// Aux returns the derived representation of the program registered
// under key, building it with build on first use. The emulator stores
// its predecoded form here; any package deriving an expensive
// per-program structure may do the same with its own unexported key
// type. Concurrent first calls may each invoke build; exactly one
// result is kept and returned to everybody. Like the cached
// basic-block decomposition, cached values assume Code is not mutated
// after the first derivation.
func (p *Program) Aux(key any, build func() any) any {
	if v, ok := p.aux.Load(key); ok {
		return v
	}
	v, _ := p.aux.LoadOrStore(key, build())
	return v
}

func (p *Program) computeBlocks() {
	n := int64(len(p.Code))
	leaders := map[int64]bool{0: true}
	for i, in := range p.Code {
		if !in.Op.IsBranch() {
			continue
		}
		if in.Op != isa.OpJr && in.Targ >= 0 && in.Targ < n {
			leaders[in.Targ] = true
		}
		if int64(i)+1 < n {
			leaders[int64(i)+1] = true
		}
	}
	starts := make([]int64, 0, len(leaders))
	for s := range leaders {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	p.blocks = make([]BasicBlock, len(starts))
	p.blockOf = make([]int32, n)
	for i, s := range starts {
		end := n
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		p.blocks[i] = BasicBlock{ID: i, Start: s, End: end}
		for pc := s; pc < end; pc++ {
			p.blockOf[pc] = int32(i)
		}
	}
}

// Successors returns the IDs of the possible successor blocks of block
// id: fall-through and/or branch target. Indirect jumps (jr) report no
// static successors.
func (p *Program) Successors(id int) []int {
	blocks := p.BasicBlocks()
	b := blocks[id]
	last := p.Code[b.End-1]
	var succ []int
	n := int64(len(p.Code))
	switch {
	case last.Op == isa.OpJmp || last.Op == isa.OpJal:
		succ = append(succ, p.BlockOf(last.Targ))
	case last.Op == isa.OpJr || last.Op == isa.OpHalt:
		// unknown / none
	case last.Op.IsCondBranch():
		succ = append(succ, p.BlockOf(last.Targ))
		if b.End < n {
			succ = append(succ, p.BlockOf(b.End))
		}
	default:
		if b.End < n {
			succ = append(succ, p.BlockOf(b.End))
		}
	}
	return succ
}

// Disassemble renders the whole program, annotating labels.
func (p *Program) Disassemble() string {
	byIdx := make(map[int64][]string)
	for name, idx := range p.Labels {
		byIdx[idx] = append(byIdx[idx], name)
	}
	var out []byte
	for i, in := range p.Code {
		if names, ok := byIdx[int64(i)]; ok {
			sort.Strings(names)
			for _, name := range names {
				out = append(out, (name + ":\n")...)
			}
		}
		out = append(out, fmt.Sprintf("%6d:  %s\n", i, in)...)
	}
	return string(out)
}

// StaticLoopAt returns the innermost static loop containing pc, if the
// Builder recorded any.
func (p *Program) StaticLoopAt(pc int64) (LoopInfo, bool) {
	best := -1
	for i, l := range p.Loops {
		if pc >= l.Head && pc < l.End {
			if best < 0 || l.Depth > p.Loops[best].Depth {
				best = i
			}
		}
	}
	if best < 0 {
		return LoopInfo{}, false
	}
	return p.Loops[best], true
}
