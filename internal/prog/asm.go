package prog

import (
	"fmt"
	"strconv"
	"strings"

	"mlpa/internal/isa"
)

// Assemble parses a textual assembly listing into a Program. The
// syntax matches Disassemble output plus labels and ';' comments:
//
//	init:
//	    addi r1, r0, 100    ; trip count
//	loop:
//	    addi r1, r1, -1
//	    bne  r1, r0, loop
//	    halt
//
// Branch targets may be labels or absolute instruction indices.
func Assemble(name, src string) (*Program, error) {
	type pending struct {
		pc    int64
		label string // empty when the source gave an absolute index
		line  int
	}
	var (
		code    []isa.Inst
		labels  = make(map[string]int64)
		fixes   []pending
		lineNum int
	)
	fail := func(line int, format string, args ...any) error {
		return fmt.Errorf("asm %q line %d: %s", name, line, fmt.Sprintf(format, args...))
	}

	for _, raw := range strings.Split(src, "\n") {
		lineNum++
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// One or more leading labels.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t,()") {
				return nil, fail(lineNum, "bad label %q", label)
			}
			if _, numeric := isIndexPrefix(label); numeric {
				// A pure-numeric prefix is Disassemble's instruction-index
				// annotation, not a label definition: numeric branch
				// targets always resolve as absolute indices, so a numeric
				// label could never be referenced anyway.
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			if _, dup := labels[label]; dup {
				return nil, fail(lineNum, "duplicate label %q", label)
			}
			labels[label] = int64(len(code))
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		mnemonic, rest, _ := strings.Cut(line, " ")
		mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
		operands := splitOperands(rest)

		op, ok := opByName(mnemonic)
		if !ok {
			return nil, fail(lineNum, "unknown mnemonic %q", mnemonic)
		}
		in, labelRef, err := parseOperands(op, operands)
		if err != nil {
			return nil, fail(lineNum, "%v", err)
		}
		// Every control-transfer instruction gets a fixup entry — label
		// references for resolution, absolute targets for the range
		// check below — so a bad target is reported with its line.
		switch {
		case labelRef != "":
			fixes = append(fixes, pending{pc: int64(len(code)), label: labelRef, line: lineNum})
		case op == isa.OpJmp || op == isa.OpJal ||
			op == isa.OpBeq || op == isa.OpBne || op == isa.OpBlt || op == isa.OpBge:
			fixes = append(fixes, pending{pc: int64(len(code)), line: lineNum})
		}
		code = append(code, in)
	}

	for _, f := range fixes {
		if f.label != "" {
			target, ok := labels[f.label]
			if !ok {
				return nil, fail(f.line, "undefined label %q", f.label)
			}
			code[f.pc].Targ = target
		}
		// A label on the last line with no instruction after it resolves
		// to len(code): also past the end.
		if t := code[f.pc].Targ; t < 0 || t >= int64(len(code)) {
			return nil, fail(f.line, "branch target %d outside code [0,%d)", t, len(code))
		}
	}
	p := &Program{Name: name, Code: code, Labels: labels}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// isIndexPrefix reports whether a "label" before ':' is really a
// numeric instruction-index annotation as emitted by Disassemble.
func isIndexPrefix(label string) (int64, bool) {
	v, err := strconv.ParseInt(label, 0, 64)
	return v, err == nil
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

var nameToOp = func() map[string]isa.Op {
	m := make(map[string]isa.Op, isa.NumOps)
	for o := isa.Op(0); int(o) < isa.NumOps; o++ {
		m[o.String()] = o
	}
	return m
}()

func opByName(name string) (isa.Op, bool) {
	o, ok := nameToOp[name]
	return o, ok
}

func parseReg(s string) (isa.Reg, error) {
	if len(s) < 2 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return 0, fmt.Errorf("bad register %q", s)
	}
	switch s[0] {
	case 'r', 'R':
		if n < 0 || n >= isa.NumIntRegs {
			return 0, fmt.Errorf("integer register %q out of range", s)
		}
		return isa.Reg(n), nil
	case 'f', 'F':
		if n < 0 || n >= isa.NumFPRegs {
			return 0, fmt.Errorf("fp register %q out of range", s)
		}
		return isa.F(n), nil
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMem parses "disp(reg)" memory operand syntax.
func parseMem(s string) (base isa.Reg, disp int64, err error) {
	open := strings.IndexByte(s, '(')
	close := strings.IndexByte(s, ')')
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	if d := strings.TrimSpace(s[:open]); d != "" {
		if disp, err = parseImm(d); err != nil {
			return 0, 0, err
		}
	}
	base, err = parseReg(strings.TrimSpace(s[open+1 : close]))
	return base, disp, err
}

// parseTarget parses a branch target: either a label name (returned in
// labelRef) or an absolute index.
func parseTarget(s string) (abs int64, labelRef string, err error) {
	if s == "" {
		return 0, "", fmt.Errorf("missing branch target")
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, "", nil
	}
	return 0, s, nil
}

func parseOperands(op isa.Op, ops []string) (in isa.Inst, labelRef string, err error) {
	in.Op = op
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s expects %d operands, got %d", op, n, len(ops))
		}
		return nil
	}
	switch op {
	case isa.OpNop, isa.OpHalt:
		err = need(0)
	case isa.OpJmp:
		if err = need(1); err == nil {
			in.Targ, labelRef, err = parseTarget(ops[0])
		}
	case isa.OpJal:
		if err = need(2); err == nil {
			if in.Rd, err = parseReg(ops[0]); err == nil {
				in.Targ, labelRef, err = parseTarget(ops[1])
			}
		}
	case isa.OpJr:
		if err = need(1); err == nil {
			in.Rs1, err = parseReg(ops[0])
		}
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		if err = need(3); err == nil {
			if in.Rs1, err = parseReg(ops[0]); err == nil {
				if in.Rs2, err = parseReg(ops[1]); err == nil {
					in.Targ, labelRef, err = parseTarget(ops[2])
				}
			}
		}
	case isa.OpLd, isa.OpFld:
		if err = need(2); err == nil {
			if in.Rd, err = parseReg(ops[0]); err == nil {
				in.Rs1, in.Imm, err = memOperand(ops[1])
			}
		}
	case isa.OpSt, isa.OpFst:
		if err = need(2); err == nil {
			if in.Rs2, err = parseReg(ops[0]); err == nil {
				in.Rs1, in.Imm, err = memOperand(ops[1])
			}
		}
	case isa.OpLui:
		if err = need(2); err == nil {
			if in.Rd, err = parseReg(ops[0]); err == nil {
				in.Imm, err = parseImm(ops[1])
			}
		}
	case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpShli, isa.OpShri, isa.OpSlti:
		if err = need(3); err == nil {
			if in.Rd, err = parseReg(ops[0]); err == nil {
				if in.Rs1, err = parseReg(ops[1]); err == nil {
					in.Imm, err = parseImm(ops[2])
				}
			}
		}
	case isa.OpFneg, isa.OpFmov, isa.OpCvtIF, isa.OpCvtFI:
		if err = need(2); err == nil {
			if in.Rd, err = parseReg(ops[0]); err == nil {
				in.Rs1, err = parseReg(ops[1])
			}
		}
	default: // three-register forms
		if err = need(3); err == nil {
			if in.Rd, err = parseReg(ops[0]); err == nil {
				if in.Rs1, err = parseReg(ops[1]); err == nil {
					in.Rs2, err = parseReg(ops[2])
				}
			}
		}
	}
	return in, labelRef, err
}

func memOperand(s string) (base isa.Reg, disp int64, err error) {
	base, disp, err = parseMem(s)
	return
}
